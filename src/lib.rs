#![warn(missing_docs)]

//! Umbrella crate for the Java_ps reproduction: re-exports the public API of
//! every subsystem so examples and integration tests have a single import
//! surface.
//!
//! See `README.md` for the architecture overview and `DESIGN.md` for the
//! paper-to-code mapping.
pub use psc_codec as codec;
pub use psc_filter as filter;
pub use psc_obvent as obvent;
pub use pubsub_core as pubsub;
pub use psc_simnet as simnet;
pub mod tuples;
pub use psc_group as group;
pub use psc_dace as dace;
pub use psc_net as net;
pub use psc_rmi as rmi;
pub use psc_telemetry as telemetry;
pub use psc_tuplespace as tuplespace;
