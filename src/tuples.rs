//! Tuple-form publish/subscribe — paper §5.5.2 "Tuples: Back to the Roots".
//!
//! The paper sketches extending the primitives to *structural equivalence*:
//!
//! ```java
//! publish (company, price, amount, market);
//! Subscription s = subscribe (String company, float price, int amount, ...)
//! ```
//!
//! so that any publisher/subscriber pair agreeing on the tuple *shape*
//! interacts without sharing a nominal type — "this could lead to a very
//! appealing style of distributed programming, but requires a more complex
//! filtering". This module builds that bridge on top of the nominal system:
//! tuples travel inside a single [`TupleObvent`] class; subscriptions
//! declare a [`Template`] (the formal/actual argument list) applied as a
//! filter; matching is structural (arity + per-position type or value), the
//! tuple-space matching semantics of `psc-tuplespace`.
//!
//! ```
//! use javaps::pubsub::Domain;
//! use javaps::tuplespace::{template, tuple};
//! use javaps::tuples;
//!
//! let domain = Domain::in_process();
//! let seen = std::sync::Arc::new(std::sync::Mutex::new(Vec::new()));
//! let sink = seen.clone();
//! // subscribe (String company, float price, int amount)
//! let sub = tuples::subscribe_tuples(
//!     &domain,
//!     template![str, float, int],
//!     move |t| sink.lock().unwrap().push(t),
//! );
//! sub.activate().unwrap();
//!
//! // publish (company, price, amount);
//! tuples::publish_tuple(&domain, tuple!["Telco", 80.0, 10]).unwrap();
//! // Shape mismatch: not delivered.
//! tuples::publish_tuple(&domain, tuple!["Telco", 80.0]).unwrap();
//! domain.drain();
//! assert_eq!(seen.lock().unwrap().len(), 1);
//! ```

use psc_tuplespace::{Template, Tuple};
use pubsub_core::{obvent, Domain, FilterSpec, PublishError, Subscription};

pub use psc_filter::Value;

obvent! {
    /// The carrier class of tuple-form publish/subscribe: one nominal
    /// obvent kind whose payload is the structural tuple.
    pub class TupleObvent {
        items: Vec<Value>,
    }
}

impl TupleObvent {
    /// Views the carried fields as a [`Tuple`].
    pub fn to_tuple(&self) -> Tuple {
        Tuple::new(self.items().clone())
    }
}

impl From<Tuple> for TupleObvent {
    fn from(tuple: Tuple) -> TupleObvent {
        TupleObvent::new(tuple.fields().to_vec())
    }
}

/// The `publish (a, b, c);` form: publishes a tuple structurally.
///
/// # Errors
///
/// [`PublishError`] as for any publish.
pub fn publish_tuple(domain: &Domain, tuple: Tuple) -> Result<(), PublishError> {
    domain.publish(TupleObvent::from(tuple))
}

/// The `subscribe (String company, float price, …)` form: delivers every
/// published tuple whose shape matches `template` (arity plus per-position
/// actuals/formals/wildcards).
///
/// Returns the usual inactive [`Subscription`] handle.
pub fn subscribe_tuples(
    domain: &Domain,
    template: Template,
    handler: impl Fn(Tuple) + Send + Sync + 'static,
) -> Subscription {
    let filter_template = template.clone();
    domain.subscribe(
        FilterSpec::local(move |o: &TupleObvent| filter_template.matches(&o.to_tuple())),
        move |o: TupleObvent| handler(o.to_tuple()),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use psc_tuplespace::{template, tuple};
    use std::sync::atomic::{AtomicU32, Ordering};
    use std::sync::Arc;

    fn counting_sub(domain: &Domain, template: Template) -> (Subscription, Arc<AtomicU32>) {
        let count = Arc::new(AtomicU32::new(0));
        let c = count.clone();
        let sub = subscribe_tuples(domain, template, move |_t| {
            c.fetch_add(1, Ordering::SeqCst);
        });
        (sub, count)
    }

    #[test]
    fn structural_matching_by_shape() {
        let domain = Domain::in_process();
        let (s1, quotes) = counting_sub(&domain, template![str, float, int]);
        let (s2, alerts) = counting_sub(&domain, template![str, str]);
        s1.activate().unwrap();
        s2.activate().unwrap();

        publish_tuple(&domain, tuple!["Telco", 80.0, 10]).unwrap();
        publish_tuple(&domain, tuple!["disk", "full"]).unwrap();
        publish_tuple(&domain, tuple![1, 2, 3]).unwrap(); // matches neither
        domain.drain();

        assert_eq!(quotes.load(Ordering::SeqCst), 1);
        assert_eq!(alerts.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn actuals_filter_by_value() {
        let domain = Domain::in_process();
        let (sub, count) = counting_sub(&domain, template![= "quote", = "Telco", float]);
        sub.activate().unwrap();
        publish_tuple(&domain, tuple!["quote", "Telco", 80.0]).unwrap();
        publish_tuple(&domain, tuple!["quote", "Banco", 80.0]).unwrap();
        domain.drain();
        assert_eq!(count.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn handler_receives_the_tuple_payload() {
        let domain = Domain::in_process();
        let seen = Arc::new(std::sync::Mutex::new(Vec::new()));
        let sink = seen.clone();
        let sub = subscribe_tuples(&domain, template![str, int], move |t| {
            sink.lock().unwrap().push(t);
        });
        sub.activate().unwrap();
        publish_tuple(&domain, tuple!["n", 42]).unwrap();
        domain.drain();
        let got = seen.lock().unwrap();
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].get(1), Some(&Value::Int(42)));
    }

    #[test]
    fn nominal_and_structural_subscriptions_coexist() {
        // A plain (nominal) subscription to TupleObvent sees everything;
        // the structural one only its shape.
        let domain = Domain::in_process();
        let all = Arc::new(AtomicU32::new(0));
        let a = all.clone();
        let s1 = domain.subscribe(FilterSpec::accept_all(), move |_o: TupleObvent| {
            a.fetch_add(1, Ordering::SeqCst);
        });
        let (s2, shaped) = counting_sub(&domain, template![int]);
        s1.activate().unwrap();
        s2.activate().unwrap();
        publish_tuple(&domain, tuple![1]).unwrap();
        publish_tuple(&domain, tuple!["x", 2]).unwrap();
        domain.drain();
        assert_eq!(all.load(Ordering::SeqCst), 2);
        assert_eq!(shaped.load(Ordering::SeqCst), 1);
    }
}
