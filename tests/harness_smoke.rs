//! Tier-1 entry points of the deterministic simulation harness.
//!
//! - a 50-seed randomized sweep over the group protocols (scenario
//!   generation → execution → invariant oracles), each seed run twice and
//!   compared byte-for-byte (determinism oracle);
//! - a 25-seed full-stack sweep (DACE routing with supertype subscriptions
//!   and remote filters);
//! - a 10-seed durable-restart sweep (certified subscriber crash-restarted
//!   with injected disk faults; cross-restart exactly-once oracle);
//! - a 10-seed snapshot sweep (Chandy–Lamport cuts taken mid-chaos;
//!   byte-stable rendering, clock-consistency / no-ghost / coverage
//!   oracles over the assembled cluster image);
//! - an oracle-sensitivity proof: a deliberately broken FIFO protocol must
//!   be caught and shrunk to a readable, seed-stamped counterexample;
//! - a long fuzz mode gated behind `HARNESS_FUZZ=N` (used by nightly CI).
//!
//! Replay any failing seed with `HARNESS_SEED=<seed> cargo test --test
//! harness_smoke`.

use std::sync::Arc;

use psc_harness::broken::{BrokenFifo, SkewedMarkers, Stalling};
use psc_harness::runner::{self, ProtoFactory};
use psc_harness::{durable, snapshot, stack};
use psc_harness::{Op, ProtocolKind, Scenario, Violation};

#[test]
fn group_layer_smoke_over_50_seeds() {
    let seeds = runner::smoke_seeds(50);
    if let Err(report) = runner::smoke(&seeds) {
        panic!("{report}");
    }
}

#[test]
fn full_stack_routing_smoke_over_25_seeds() {
    for seed in runner::smoke_seeds(25) {
        if let Err(report) = stack::check_stack_seed(seed) {
            panic!("{report}");
        }
    }
}

/// The sharded broker must be deterministic at every shard count: the same
/// seed run twice through the worker pool renders byte-for-byte equal, and
/// the routing oracle holds (satellite of the shard-pool tentpole).
#[test]
fn sharded_stack_is_byte_stable_over_10_seeds_at_2_and_4_shards() {
    for shards in [2usize, 4] {
        for seed in runner::smoke_seeds(10) {
            if let Err(report) = stack::check_stack_seed_sharded(seed, shards) {
                panic!("{report}");
            }
        }
    }
}

/// Differential oracle: routing through 4 shards must deliver exactly the
/// tag multisets the inline (shards=1) engine delivers — the shard count is
/// an execution detail, never a semantics knob.
#[test]
fn sharded_stack_delivers_the_same_tags_as_inline_over_10_seeds() {
    for seed in runner::smoke_seeds(10) {
        let scenario = stack::StackScenario::generate(seed);
        let inline = stack::run_stack(&scenario);
        let sharded = stack::run_stack_sharded(&scenario, 4);
        assert_eq!(
            inline.got, sharded.got,
            "seed {seed}: shards=4 delivered tags diverge from shards=1\n\
             inline:\n{}sharded:\n{}",
            inline.render(),
            sharded.render()
        );
    }
}

/// Durable-restart sweep: a certified subscriber crash-restarted with
/// injected disk faults (lost un-fsynced suffixes, torn tails, dropped
/// segments) must resume its stream exactly once across incarnations, and
/// each seed must render byte-for-byte identically across two runs.
#[test]
fn durable_restart_smoke_over_10_seeds() {
    for seed in runner::smoke_seeds(10) {
        if let Err(report) = durable::check_durable_seed(seed) {
            panic!("{report}");
        }
    }
}

/// Oracle-sensitivity proof for the durability dimension: the same WAL
/// with the fsync barrier disabled (`wal_sync: false`) must lose acked
/// certified publishes under a disk-fault restart, the oracle must say so,
/// and greedy shrinking must keep the counterexample reproducing.
#[test]
fn broken_wal_sync_is_caught_and_shrunk_by_the_durability_oracle() {
    let scenario = durable::DurableScenario::generate(0);

    // Control: the correct fsync discipline sails through this exact
    // schedule, so any finding below is the injected defect.
    let healthy = durable::run_durable(&scenario);
    assert!(
        healthy.violations.is_empty(),
        "wal_sync=true must pass seed 0:\n{}{}",
        scenario.describe(),
        healthy.render()
    );

    let broken = durable::run_durable_config(&scenario, false);
    assert!(
        broken
            .violations
            .iter()
            .any(|v| v.contains("lost across restarts") || v.contains("exactly-once broken")),
        "the durability oracle must catch the disabled fsync barrier:\n{}{}",
        scenario.describe(),
        broken.render()
    );

    let shrunk = durable::shrink_durable(&scenario, false);
    assert!(
        shrunk.pubs.len() <= scenario.pubs.len() && shrunk.restarts.len() <= scenario.restarts.len(),
        "shrinking must never grow the schedule"
    );
    let shrunk_outcome = durable::run_durable_config(&shrunk, false);
    assert!(
        !shrunk_outcome.violations.is_empty(),
        "the shrunk durable schedule must still reproduce:\n{}",
        shrunk.describe()
    );
}

/// Snapshot sweep: a Chandy–Lamport cut taken while certified traffic,
/// loss and (sometimes) a subscriber outage are in flight must complete,
/// render byte-for-byte identically across two runs, and satisfy the
/// global-invariant oracles (clock consistency, no ghosts, three-way
/// publish coverage, end-state exactly-once).
#[test]
fn snapshot_cut_smoke_over_10_seeds() {
    for seed in runner::smoke_seeds(10) {
        if let Err(report) = snapshot::check_snapshot_seed(seed) {
            panic!("{report}");
        }
    }
}

/// Oracle-sensitivity proof for the snapshot dimension: disabling the
/// Lai–Yang capture-before-processing rule (capture on marker arrival
/// only — the classic Chandy–Lamport misuse over non-FIFO links) must be
/// caught by the cut oracles, and greedy shrinking must keep the
/// counterexample reproducing. The race is probabilistic per schedule, so
/// the proof sweeps seeds: the correct discipline passes every one, the
/// broken one must trip on at least one.
#[test]
fn skewed_markers_are_caught_and_shrunk_by_the_cut_oracles() {
    let mut caught = None;
    for seed in 0..10u64 {
        let scenario = snapshot::SnapScenario::generate(seed);

        // Control: the correct discipline sails through this exact
        // schedule, so any finding below is the injected defect.
        let healthy = snapshot::run_snapshot(&scenario);
        assert!(
            healthy.violations.is_empty(),
            "the correct capture discipline must pass seed {seed}:\n{}{}{}",
            scenario.describe(),
            healthy.render(),
            healthy.violations.join("\n")
        );

        let skewed = snapshot::run_snapshot_config(&scenario, SkewedMarkers::config());
        if !skewed.violations.is_empty() && caught.is_none() {
            caught = Some((scenario, skewed));
        }
    }
    let (scenario, skewed) = caught.expect(
        "the cut oracles must catch the skewed marker discipline on at least one of 10 seeds",
    );
    assert!(
        skewed
            .violations
            .iter()
            .any(|v| v.contains("cut inconsistency") || v.contains("ghost")),
        "the defect must manifest as an inconsistent cut or a ghost delivery:\n{}",
        skewed.violations.join("\n")
    );

    let shrunk = snapshot::shrink_snapshot(&scenario, &SkewedMarkers::config());
    assert!(
        shrunk.pubs.len() <= scenario.pubs.len()
            && shrunk.crashes.len() <= scenario.crashes.len(),
        "shrinking must never grow the schedule"
    );
    let shrunk_outcome = snapshot::run_snapshot_config(&shrunk, SkewedMarkers::config());
    assert!(
        !shrunk_outcome.violations.is_empty(),
        "the shrunk snapshot schedule must still reproduce:\n{}",
        shrunk.describe()
    );
}

#[test]
fn churn_storm_matching_smoke_over_10_seeds() {
    for seed in runner::smoke_seeds(10) {
        if let Err(report) = stack::check_churn_seed(seed) {
            panic!("{report}");
        }
    }
}

#[test]
fn same_seed_produces_byte_identical_reports() {
    for seed in [3u64, 17, 29, 41] {
        let (s1, o1) = runner::run_seed(seed);
        let (s2, o2) = runner::run_seed(seed);
        assert_eq!(
            runner::report(&s1, &o1),
            runner::report(&s2, &o2),
            "seed {seed} must replay identically"
        );
    }
}

/// A schedule built to reorder per-publisher messages in flight: one
/// publisher, back-to-back publishes, wide latency jitter.
fn reorder_prone_fifo_scenario() -> Scenario {
    Scenario {
        seed: 7,
        protocol: ProtocolKind::Fifo,
        nodes: 3,
        loss: 0.0,
        latency_ms: (1, 15),
        settle_ms: 2_000,
        ops: (0..8).map(|i| Op::Publish { node: 0, at_ms: 10 + i }).collect(),
    }
}

#[test]
fn broken_fifo_is_caught_and_shrunk_to_a_seed_stamped_counterexample() {
    let scenario = reorder_prone_fifo_scenario();

    // Control: the real FIFO protocol sails through the same schedule, so
    // any finding below is the injected defect, not oracle noise.
    let healthy = runner::run_scenario(&scenario);
    assert!(
        healthy.violations.is_empty(),
        "real Fifo must pass: {}",
        runner::report(&scenario, &healthy)
    );

    let make: ProtoFactory = Arc::new(|| Box::new(BrokenFifo::new()));
    let outcome = runner::run_scenario_with(&scenario, Arc::clone(&make));
    assert!(
        outcome
            .violations
            .iter()
            .any(|v| matches!(v, Violation::FifoOrder { .. })),
        "the FIFO oracle must catch the disabled sequence check: {}",
        runner::report(&scenario, &outcome)
    );

    let shrunk = runner::shrink(&scenario, &make);
    assert!(
        shrunk.ops.len() < scenario.ops.len(),
        "shrinking must remove schedule operations"
    );
    assert!(
        shrunk.ops.len() >= 2,
        "a FIFO inversion needs at least two publishes"
    );
    let shrunk_outcome = runner::run_scenario_with(&shrunk, make);
    assert!(
        !shrunk_outcome.violations.is_empty(),
        "the shrunk schedule must still reproduce"
    );
    let report = runner::report(&shrunk, &shrunk_outcome);
    assert!(
        report.contains("seed=7"),
        "the counterexample must carry its seed:\n{report}"
    );
}

/// The flight-recorder acceptance check: a protocol that parks every
/// foreign message forever must (a) trip the completeness oracle, (b) be
/// flagged by the stall watchdog with the *name* of the stuck queue and the
/// unprogressed publishes, and (c) produce text + JSON post-mortems that
/// are byte-stable across two runs of the same seed.
#[test]
fn stalling_protocol_yields_byte_stable_post_mortem_naming_the_stuck_queue() {
    let scenario = Scenario {
        seed: 11,
        protocol: ProtocolKind::Reliable,
        nodes: 3,
        loss: 0.0,
        latency_ms: (1, 2),
        settle_ms: 2_000,
        ops: vec![
            Op::Publish { node: 0, at_ms: 10 },
            Op::Publish { node: 1, at_ms: 20 },
        ],
    };
    let make: ProtoFactory = Arc::new(|| Box::new(Stalling::new()));
    let first = runner::run_scenario_with(&scenario, Arc::clone(&make));
    let second = runner::run_scenario_with(&scenario, make);

    assert!(
        first
            .violations
            .iter()
            .any(|v| matches!(v, Violation::MissingDelivery { .. })),
        "parked messages must show as missing deliveries: {}",
        runner::report(&scenario, &first)
    );
    assert!(
        first
            .health
            .iter()
            .any(|h| h.name == "health.stall.stalling.buffer" && !h.undelivered.is_empty()),
        "the watchdog must name the stuck queue and the unprogressed publishes: {}",
        runner::report(&scenario, &first)
    );

    let dump = runner::post_mortem(&scenario, &first);
    assert_eq!(
        dump,
        runner::post_mortem(&scenario, &second),
        "text post-mortem must be byte-stable across replays of one seed"
    );
    assert_eq!(
        runner::post_mortem_json(&scenario, &first),
        runner::post_mortem_json(&scenario, &second),
        "JSON post-mortem must be byte-stable across replays of one seed"
    );
    assert!(dump.contains("health.stall.stalling.buffer"), "{dump}");
    assert!(dump.contains("undelivered publishes"), "{dump}");
    assert!(dump.contains("flight-recorder n0"), "{dump}");
}

#[test]
fn long_fuzz_mode_behind_env_var() {
    let Some(seeds) = runner::fuzz_seeds() else {
        return; // HARNESS_FUZZ not set: nothing to do in tier-1 runs
    };
    if let Err(report) = runner::smoke(&seeds) {
        panic!("{report}");
    }
    // Fan a quarter of the budget into the full-stack fuzzer too.
    for &seed in seeds.iter().take(seeds.len() / 4) {
        if let Err(report) = stack::check_stack_seed(seed) {
            panic!("{report}");
        }
    }
    // And the whole budget into the disk-fault dimension: durable runs are
    // cheap (small clusters, short schedules) and the fault space is wide.
    for &seed in &seeds {
        if let Err(report) = durable::check_durable_seed(seed) {
            panic!("{report}");
        }
    }
    // Half the budget into the snapshot dimension: every fuzzed cut is a
    // fresh race between wave-tagged traffic, markers and outages.
    for &seed in seeds.iter().take(seeds.len() / 2) {
        if let Err(report) = snapshot::check_snapshot_seed(seed) {
            panic!("{report}");
        }
    }
}
