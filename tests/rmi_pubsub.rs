//! F8 — paper Fig. 8: RMI and publish/subscribe "hand in hand", plus the
//! §5.4.2 distributed-GC interaction (E7).
//!
//! Quotes are disseminated via pub/sub; purchases go back synchronously
//! through a `StockMarket` remote object whose reference rides inside the
//! obvents. When many subscribers hold proxies and one crashes, strong DGC
//! leaks the market object; lease-based DGC collects it.

use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::{Arc, Mutex};

use javaps::dace::inproc::Bus;
use javaps::pubsub::{obvent, publish, FilterSpec};
use javaps::rmi::{remote_iface, DgcMode, ObjectId, RemoteRefData, RmiError, RmiNetwork};

remote_iface! {
    pub trait StockMarket {
        fn buy(&self, company: String, price: f64, amount: u32, buyer: String) -> bool;
    }
}

obvent! {
    pub class QuoteWithMarket {
        company: String,
        price: f64,
        amount: u32,
        market_node: u64,
        market_object: u64,
    }
}

struct Market {
    sales: AtomicU32,
}

impl StockMarket for Market {
    fn buy(
        &self,
        _company: String,
        _price: f64,
        _amount: u32,
        _buyer: String,
    ) -> Result<bool, RmiError> {
        self.sales.fetch_add(1, Ordering::SeqCst);
        Ok(true)
    }
}

#[test]
fn quotes_carry_market_references_brokers_buy_synchronously() {
    let bus = Bus::new();
    let rmi = RmiNetwork::new(2, DgcMode::Strong);
    let rts = rmi.runtimes();

    let market = Arc::new(Market {
        sales: AtomicU32::new(0),
    });
    let market_ref = StockMarketStub::export(&rts[0], market.clone());
    rts[0].bind("market", market_ref);

    let market_domain = bus.domain_inline();
    let broker_domain = bus.domain_inline();

    let purchases: Arc<Mutex<Vec<f64>>> = Arc::new(Mutex::new(Vec::new()));
    let log = purchases.clone();
    let broker_rt = rts[1].clone();
    let sub = broker_domain.subscribe(
        FilterSpec::remote(javaps::filter::rfilter!(price < 100.0)),
        move |q: QuoteWithMarket| {
            let target = RemoteRefData {
                node: *q.market_node(),
                object: *q.market_object(),
            };
            let stub = StockMarketStub::attach(&broker_rt, target).expect("attach");
            if stub
                .buy(q.company().clone(), *q.price(), *q.amount(), "alice".into())
                .expect("buy")
            {
                log.lock().unwrap().push(*q.price());
            }
        },
    );
    sub.activate().unwrap();

    for price in [80.0, 120.0, 95.0] {
        publish!(
            market_domain,
            QuoteWithMarket::new(
                "Telco".into(),
                price,
                10,
                market_ref.node,
                market_ref.object
            )
        )
        .unwrap();
    }
    market_domain.drain();
    broker_domain.drain();

    assert_eq!(*purchases.lock().unwrap(), vec![80.0, 95.0]);
    assert_eq!(market.sales.load(Ordering::SeqCst), 2);
}

/// §5.4.2: "When publishing an event containing a reference to a remote
/// object, such a proxy is created for each subscriber … if a single
/// subscriber crashes, the remote object will never be garbage collected."
#[test]
fn published_references_leak_under_strong_dgc_when_a_subscriber_crashes() {
    let rmi = RmiNetwork::new(4, DgcMode::Strong);
    let rts = rmi.runtimes();
    let market_ref = StockMarketStub::export(
        &rts[0],
        Arc::new(Market {
            sales: AtomicU32::new(0),
        }),
    );

    // Three subscribers each create a proxy from a published obvent.
    let proxies: Vec<_> = (1..4)
        .map(|i| StockMarketStub::attach(&rts[i], market_ref).unwrap())
        .collect();
    std::thread::sleep(std::time::Duration::from_millis(30));

    let mut proxies = proxies;
    let crasher = proxies.pop().unwrap();
    crasher.leak(); // subscriber 3 crashes without cleaning
    drop(proxies); // the healthy subscribers release properly
    std::thread::sleep(std::time::Duration::from_millis(30));

    rts[0].collect_expired();
    assert!(
        rts[0].is_exported(ObjectId(market_ref.object)),
        "strong DGC must leak the market object"
    );
}

/// The [CNH99] "weaker" RMI circumvents the problem: leases expire.
#[test]
fn lease_mode_collects_after_the_crashed_subscriber_stops_renewing() {
    let rmi = RmiNetwork::new(4, DgcMode::Leases { ttl_ms: 100 });
    let rts = rmi.runtimes();
    let market_ref = StockMarketStub::export(
        &rts[0],
        Arc::new(Market {
            sales: AtomicU32::new(0),
        }),
    );
    let proxies: Vec<_> = (1..4)
        .map(|i| StockMarketStub::attach(&rts[i], market_ref).unwrap())
        .collect();
    std::thread::sleep(std::time::Duration::from_millis(30));
    for stub in proxies {
        stub.leak(); // the worst case: everyone crashes
    }
    rts[0].tick(200); // leases run out
    assert!(
        !rts[0].is_exported(ObjectId(market_ref.object)),
        "lease-based DGC must collect the object"
    );
}
