//! Scheduled fault injection through the public simulator API: crashes and
//! recoveries planned on the virtual timeline, driving the full DACE stack.

use std::sync::{Arc, Mutex};

use javaps::dace::{DaceConfig, DaceNode};
use javaps::obvent::builtin::Certified;
use javaps::pubsub::{obvent, FilterSpec};
use javaps::simnet::{Duration, NodeId, SimConfig, SimNet, SimTime};

obvent! {
    pub class Audit implements [psc_obvent::builtin::Certified] { seq: u64 }
}

#[test]
fn scheduled_crash_and_recovery_on_the_virtual_timeline() {
    let _ = Certified; // marker referenced for clarity
    let mut sim = SimNet::new(SimConfig::with_seed(99));
    let ids: Vec<NodeId> = (0..2u64).map(NodeId).collect();
    for i in 0..2 {
        sim.add_node(
            format!("n{i}"),
            DaceNode::factory(ids.clone(), DaceConfig::default()),
        );
    }
    let seen: Arc<Mutex<Vec<u64>>> = Arc::new(Mutex::new(Vec::new()));
    let sink = seen.clone();
    DaceNode::drive(&mut sim, ids[1], move |domain| {
        let sub = domain.subscribe(FilterSpec::accept_all(), move |a: Audit| {
            sink.lock().unwrap().push(*a.seq());
        });
        sub.activate_with_id(5).unwrap();
        sub.detach();
    });

    // Plan the whole scenario up front, then run once.
    sim.crash_at(SimTime::from_millis(100), ids[1]);
    sim.recover_at(SimTime::from_millis(400), ids[1]);
    sim.run_until(SimTime::from_millis(50));
    DaceNode::publish_from(&mut sim, ids[0], Audit::new(1)); // before crash
    sim.run_until(SimTime::from_millis(200));
    DaceNode::publish_from(&mut sim, ids[0], Audit::new(2)); // while down
    sim.run_until(SimTime::from_millis(450));
    assert!(!seen.lock().unwrap().contains(&2), "down during publish");

    // Re-attach the durable subscription after the scheduled recovery.
    let seen2: Arc<Mutex<Vec<u64>>> = Arc::new(Mutex::new(Vec::new()));
    let sink2 = seen2.clone();
    DaceNode::drive(&mut sim, ids[1], move |domain| {
        let sub = domain.subscribe(FilterSpec::accept_all(), move |a: Audit| {
            sink2.lock().unwrap().push(*a.seq());
        });
        sub.activate_with_id(5).unwrap();
        sub.detach();
    });
    sim.run_until(sim.now() + Duration::from_secs(3));
    assert_eq!(*seen.lock().unwrap(), vec![1]);
    assert_eq!(
        *seen2.lock().unwrap(),
        vec![2],
        "certified retransmission must land after the scheduled recovery"
    );
}

#[test]
fn repeated_crash_cycles_do_not_duplicate_certified_deliveries() {
    let mut sim = SimNet::new(SimConfig::with_seed(123));
    let ids: Vec<NodeId> = (0..2u64).map(NodeId).collect();
    for i in 0..2 {
        sim.add_node(
            format!("n{i}"),
            DaceNode::factory(ids.clone(), DaceConfig::default()),
        );
    }
    let all_seen: Arc<Mutex<Vec<u64>>> = Arc::new(Mutex::new(Vec::new()));

    let install = |sim: &mut SimNet, sink: Arc<Mutex<Vec<u64>>>| {
        DaceNode::drive(sim, NodeId(1), move |domain| {
            let sub = domain.subscribe(FilterSpec::accept_all(), move |a: Audit| {
                sink.lock().unwrap().push(*a.seq());
            });
            sub.activate_with_id(6).unwrap();
            sub.detach();
        });
    };

    install(&mut sim, all_seen.clone());
    sim.run_until(SimTime::from_millis(10));
    DaceNode::publish_from(&mut sim, ids[0], Audit::new(1));
    sim.run_until(sim.now() + Duration::from_millis(300));

    // Three crash/recover cycles; the publisher keeps retransmitting until
    // acked, the subscriber's persistent dedup set must suppress replays.
    for _ in 0..3 {
        sim.crash(ids[1]);
        sim.run_until(sim.now() + Duration::from_millis(100));
        sim.recover(ids[1]);
        install(&mut sim, all_seen.clone());
        sim.run_until(sim.now() + Duration::from_millis(400));
    }
    let got = all_seen.lock().unwrap().clone();
    assert_eq!(got, vec![1], "exactly-once across repeated churn, got {got:?}");
}
