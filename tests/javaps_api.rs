//! F3/F5/F6 — the full `java.pubsub` API surface (paper Figs. 3, 5, 6, 7)
//! exercised end to end through the macros, adapters and handles.

use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::{Arc, Mutex};

use javaps::dace::inproc::Bus;
use javaps::filter::{restrict, rfilter};
use javaps::obvent::builtin;
use javaps::pubsub::{
    obvent, publish, subscribe, Domain, FilterSpec, SubscribeError, UnsubscribeError,
};

obvent! {
    /// Fig. 2.
    pub class StockObvent {
        company: String,
        price: f64,
        amount: u32,
    }
}
obvent! {
    pub class StockQuote extends StockObvent {}
}

fn quote(company: &str, price: f64) -> StockQuote {
    StockQuote::new(StockObvent::new(company.into(), price, 10))
}

#[test]
fn all_three_subscribe_forms_work() {
    let domain = Domain::in_process();
    let all = Arc::new(AtomicU32::new(0));
    let filtered = Arc::new(AtomicU32::new(0));
    let local = Arc::new(AtomicU32::new(0));
    let (a, f, l) = (all.clone(), filtered.clone(), local.clone());

    let s1 = subscribe!(domain, (q: StockQuote) => {
        let _ = q;
        a.fetch_add(1, Ordering::SeqCst);
    });
    let s2 = subscribe!(domain, (q: StockQuote)
        where { price < 100.0 }
        => {
            let _ = q;
            f.fetch_add(1, Ordering::SeqCst);
        });
    let s3 = subscribe!(domain, (q: StockQuote)
        where local |q: &StockQuote| q.company().len() > 5
        => {
            let _ = q;
            l.fetch_add(1, Ordering::SeqCst);
        });
    for s in [&s1, &s2, &s3] {
        s.activate().unwrap();
    }

    publish!(domain, quote("Telco Mobiles", 80.0)).unwrap(); // all three
    publish!(domain, quote("Tel", 200.0)).unwrap(); // s1 only
    domain.drain();

    assert_eq!(all.load(Ordering::SeqCst), 2);
    assert_eq!(filtered.load(Ordering::SeqCst), 1);
    assert_eq!(local.load(Ordering::SeqCst), 1);
}

#[test]
fn subscription_handle_lifecycle_full_protocol() {
    let domain = Domain::in_process();
    let count = Arc::new(AtomicU32::new(0));
    let c = count.clone();
    let s = StockQuoteAdapter::subscribe(&domain, FilterSpec::accept_all(), move |_q| {
        c.fetch_add(1, Ordering::SeqCst);
    });

    // Fig. 3 protocol: activate / double activate / deactivate / double
    // deactivate / reactivate; interleaving unlimited.
    assert!(!s.is_active());
    s.activate().unwrap();
    assert_eq!(s.activate(), Err(SubscribeError::AlreadyActive));
    s.deactivate().unwrap();
    assert_eq!(s.deactivate(), Err(UnsubscribeError::NotActive));
    s.activate_with_id(7).unwrap();
    assert!(s.is_active());
    s.set_single_threading();
    s.set_multi_threading(4);

    StockQuoteAdapter::publish(&domain, quote("T", 1.0)).unwrap();
    domain.drain();
    assert_eq!(count.load(Ordering::SeqCst), 1);
}

#[test]
fn adapters_expose_the_fig6_surface() {
    // Static publish/subscribe entry points per obvent class, named
    // `<Class>Adapter` exactly like psc's generated `TAdapter`.
    let bus = Bus::new();
    let d1 = bus.domain_inline();
    let d2 = bus.domain_inline();
    let hits = Arc::new(AtomicU32::new(0));
    let h = hits.clone();
    let s = StockObventAdapter::subscribe_all(&d2, move |o| {
        assert!(!o.company().is_empty());
        h.fetch_add(1, Ordering::SeqCst);
    });
    s.activate().unwrap();
    StockQuoteAdapter::publish(&d1, quote("T", 9.0)).unwrap();
    assert_eq!(hits.load(Ordering::SeqCst), 1, "supertype adapter receives subtype");
}

#[test]
fn filters_are_inspectable_parse_trees() {
    // §4.4.3: the reified filter exposes its invocation and evaluation
    // trees; the restriction checker mirrors §3.3.4.
    let f = rfilter!(price < 100.0 && company contains "Telco" && market.name == "ZRH");
    assert_eq!(f.predicates().len(), 3);
    let tree = f.invocation_tree();
    assert_eq!(tree.invocation_count(), 4); // price, company, market, market.name
    assert!(restrict::is_migratable(&f, &restrict::Restrictions::default()));
    let display = f.to_string();
    assert!(display.contains("&&"));
}

#[test]
fn qos_markers_compose_and_are_visible_on_kinds() {
    obvent! {
        pub class AuditedTrade implements [
            psc_obvent::builtin::Certified,
            psc_obvent::builtin::TotalOrder
        ] {
            id: u64,
        }
    }
    let kind = AuditedTrade::kind();
    assert!(kind.is_subtype_of(builtin::certified_kind().id()));
    assert!(kind.is_subtype_of(builtin::total_order_kind().id()));
    assert_eq!(kind.qos().delivery, javaps::obvent::qos::Delivery::Certified);
    assert_eq!(kind.qos().ordering, javaps::obvent::qos::Ordering::Total);
}

#[test]
fn view_subscriptions_cover_interface_kinds() {
    obvent! {
        pub class ReliablePing implements [psc_obvent::builtin::Reliable] {
            n: u64,
        }
    }
    let domain = Domain::in_process();
    let seen: Arc<Mutex<Vec<String>>> = Arc::new(Mutex::new(Vec::new()));
    let sink = seen.clone();
    let s = domain.subscribe_view(
        builtin::reliable_kind(),
        FilterSpec::accept_all(),
        move |view| {
            sink.lock().unwrap().push(view.kind_name().to_string());
        },
    );
    s.activate().unwrap();
    publish!(domain, ReliablePing::new(1)).unwrap();
    publish!(domain, quote("NotReliable", 1.0)).unwrap();
    domain.drain();
    let got = seen.lock().unwrap().clone();
    assert_eq!(got.len(), 1);
    assert!(got[0].ends_with("ReliablePing"));
}
