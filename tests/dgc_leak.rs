//! E7 — DESIGN.md §4: the §5.4.2 distributed-GC caveat, end to end.
//!
//! A remote object's reference rides inside a published obvent; every
//! subscriber's handler turns it into a live proxy. One subscriber then
//! crashes without releasing. Under strong DGC the object stays exported
//! forever (the paper's caveat); under [CNH99] lease-based DGC it is
//! collected once the crashed holder stops renewing.

use std::sync::{Arc, Mutex};

use javaps::dace::inproc::Bus;
use javaps::pubsub::{obvent, publish, FilterSpec};
use javaps::rmi::{
    remote_iface, DgcMode, ObjectId, RemoteRefData, RmiError, RmiNetwork, RmiRuntime,
};

remote_iface! {
    pub trait Counter {
        fn get(&self) -> u64;
    }
}

struct CounterImpl;

impl Counter for CounterImpl {
    fn get(&self) -> Result<u64, RmiError> {
        Ok(42)
    }
}

obvent! {
    /// The announcement that distributes the remote reference.
    pub class CounterAnnounce { node: u64, object: u64 }
}

/// Publishes one `CounterAnnounce` to `n_subs` subscribers, each of which
/// attaches a proxy in its handler. Returns the exported reference and the
/// proxies, in subscriber order.
fn distribute_via_obvent(
    rts: &[RmiRuntime],
    n_subs: usize,
) -> (RemoteRefData, Vec<CounterStub>) {
    let bus = Bus::new();
    let publisher = bus.domain_inline();
    let obj = CounterStub::export(&rts[0], Arc::new(CounterImpl));

    let proxies: Arc<Mutex<Vec<CounterStub>>> = Arc::new(Mutex::new(Vec::new()));
    let subs: Vec<_> = (1..=n_subs)
        .map(|i| {
            let rt = rts[i].clone();
            let collected = Arc::clone(&proxies);
            let domain = bus.domain_inline();
            let sub = domain.subscribe(FilterSpec::accept_all(), move |a: CounterAnnounce| {
                let target = RemoteRefData { node: *a.node(), object: *a.object() };
                let stub = CounterStub::attach(&rt, target).expect("attach from obvent");
                collected.lock().unwrap().push(stub);
            });
            sub.activate().unwrap();
            (domain, sub)
        })
        .collect();

    publish!(publisher, CounterAnnounce::new(obj.node, obj.object)).unwrap();
    publisher.drain();
    for (domain, _) in &subs {
        domain.drain();
    }

    let proxies = std::mem::take(&mut *proxies.lock().unwrap());
    assert_eq!(proxies.len(), n_subs, "every subscriber must build a proxy");
    // Each proxy works — they really point at the exported object.
    for stub in &proxies {
        assert_eq!(stub.get().expect("invoke through obvent-carried ref"), 42);
    }
    (obj, proxies)
}

#[test]
fn strong_dgc_leaks_when_one_obvent_subscriber_crashes() {
    let net = RmiNetwork::new(5, DgcMode::Strong);
    let rts = net.runtimes();
    let (obj, mut proxies) = distribute_via_obvent(rts, 4);
    std::thread::sleep(std::time::Duration::from_millis(30));

    let crasher = proxies.pop().unwrap();
    crasher.leak(); // one subscriber crashes without a clean release
    drop(proxies); // the other three release properly
    std::thread::sleep(std::time::Duration::from_millis(30));

    rts[0].tick(10_000);
    rts[0].collect_expired();
    assert!(
        rts[0].is_exported(ObjectId(obj.object)),
        "strong DGC must keep the object alive forever once a holder crashed"
    );
}

#[test]
fn lease_dgc_collects_after_the_crashed_subscriber_stops_renewing() {
    let net = RmiNetwork::new(5, DgcMode::Leases { ttl_ms: 100 });
    let rts = net.runtimes();
    let (obj, mut proxies) = distribute_via_obvent(rts, 4);
    std::thread::sleep(std::time::Duration::from_millis(30));

    let crasher = proxies.pop().unwrap();
    crasher.leak();
    drop(proxies);
    std::thread::sleep(std::time::Duration::from_millis(30));

    // Inside the TTL the crashed holder's lease still protects the object…
    rts[0].tick(50);
    rts[0].collect_expired();
    assert!(
        rts[0].is_exported(ObjectId(obj.object)),
        "the object must survive while the crashed holder's lease is valid"
    );

    // …but once it lapses the object is collected despite the crash.
    rts[0].tick(200);
    rts[0].collect_expired();
    assert!(
        !rts[0].is_exported(ObjectId(obj.object)),
        "lease DGC must collect once the crashed subscriber stops renewing"
    );
}
