//! F1 — paper Fig. 1: type-based publish/subscribe over the stock-trade
//! hierarchy, running across simulated address spaces.
//!
//! "By subscribing to a type StockObvent, p3 receives all instances of its
//! subtypes StockQuote and StockRequest, and hence all objects of type
//! SpotPrice and MarketPrice."

use std::sync::{Arc, Mutex};

use javaps::dace::{DaceConfig, DaceNode};
use javaps::pubsub::{obvent, FilterSpec};
use javaps::simnet::{NodeId, SimConfig, SimNet, SimTime};

obvent! {
    pub class StockObvent {
        company: String,
        price: f64,
        amount: u32,
    }
}
obvent! {
    pub class StockQuote extends StockObvent {}
}
obvent! {
    pub class StockRequest extends StockObvent {
        broker: String,
    }
}
obvent! {
    pub class SpotPrice extends StockRequest {}
}
obvent! {
    pub class MarketPrice extends StockRequest {
        deadline_ms: u64,
    }
}

fn base(company: &str) -> StockObvent {
    StockObvent::new(company.into(), 10.0, 1)
}

#[test]
fn subscribing_to_the_root_captures_the_whole_hierarchy() {
    // Touch all kinds so the publisher-side advertisements are complete
    // before subscriptions are installed (paper: p1..p3 all know the types).
    let _ = (
        StockQuote::kind(),
        SpotPrice::kind(),
        MarketPrice::kind(),
        StockRequest::kind(),
    );

    let mut sim = SimNet::new(SimConfig::with_seed(1));
    let ids: Vec<NodeId> = (0..3u64).map(NodeId).collect();
    for name in ["p1-market", "p2-broker", "p3-bank"] {
        sim.add_node(name, DaceNode::factory(ids.clone(), DaceConfig::default()));
    }
    let (p1, p2, p3) = (ids[0], ids[1], ids[2]);

    // p3 (the bank) subscribes to the root type: sees everything.
    let bank_log: Arc<Mutex<Vec<String>>> = Arc::new(Mutex::new(Vec::new()));
    let sink = bank_log.clone();
    DaceNode::drive(&mut sim, p3, move |domain| {
        let sub = domain.subscribe(FilterSpec::accept_all(), move |o: StockObvent| {
            sink.lock().unwrap().push(o.company().clone());
        });
        sub.activate().unwrap();
        sub.detach();
    });

    // p2 (a broker) subscribes to quotes only.
    let broker_log: Arc<Mutex<Vec<String>>> = Arc::new(Mutex::new(Vec::new()));
    let sink = broker_log.clone();
    DaceNode::drive(&mut sim, p2, move |domain| {
        let sub = domain.subscribe(FilterSpec::accept_all(), move |q: StockQuote| {
            sink.lock().unwrap().push(q.company().clone());
        });
        sub.activate().unwrap();
        sub.detach();
    });
    sim.run_until(SimTime::from_millis(10));

    // p1 publishes one instance of each concrete type.
    DaceNode::publish_from(&mut sim, p1, StockQuote::new(base("quote-co")));
    DaceNode::publish_from(
        &mut sim,
        p1,
        StockRequest::new(base("request-co"), "alice".into()),
    );
    DaceNode::publish_from(
        &mut sim,
        p2,
        SpotPrice::new(StockRequest::new(base("spot-co"), "bob".into())),
    );
    DaceNode::publish_from(
        &mut sim,
        p2,
        MarketPrice::new(StockRequest::new(base("market-co"), "cyd".into()), 999),
    );
    sim.run_until(SimTime::from_millis(600));

    let mut bank = bank_log.lock().unwrap().clone();
    bank.sort();
    assert_eq!(
        bank,
        vec!["market-co", "quote-co", "request-co", "spot-co"],
        "the root subscription must receive every subtype instance"
    );

    let broker = broker_log.lock().unwrap().clone();
    assert_eq!(
        broker,
        vec!["quote-co"],
        "the StockQuote subscription must not receive sibling types"
    );
}

#[test]
fn intermediate_type_subscription_gets_its_subtree_only() {
    let _ = (SpotPrice::kind(), MarketPrice::kind(), StockQuote::kind());
    let mut sim = SimNet::new(SimConfig::with_seed(2));
    let ids: Vec<NodeId> = (0..2u64).map(NodeId).collect();
    for i in 0..2 {
        sim.add_node(
            format!("n{i}"),
            DaceNode::factory(ids.clone(), DaceConfig::default()),
        );
    }
    let log: Arc<Mutex<Vec<String>>> = Arc::new(Mutex::new(Vec::new()));
    let sink = log.clone();
    DaceNode::drive(&mut sim, ids[1], move |domain| {
        let sub = domain.subscribe(FilterSpec::accept_all(), move |r: StockRequest| {
            sink.lock().unwrap().push(format!("{}/{}", r.company(), r.broker()));
        });
        sub.activate().unwrap();
        sub.detach();
    });
    sim.run_until(SimTime::from_millis(10));

    DaceNode::publish_from(&mut sim, ids[0], StockQuote::new(base("not-a-request")));
    DaceNode::publish_from(
        &mut sim,
        ids[0],
        SpotPrice::new(StockRequest::new(base("spot"), "alice".into())),
    );
    sim.run_until(SimTime::from_millis(600));

    assert_eq!(*log.lock().unwrap(), vec!["spot/alice".to_string()]);
}

#[test]
fn content_filters_compose_with_subtype_routing() {
    let _ = (SpotPrice::kind(), MarketPrice::kind());
    let mut sim = SimNet::new(SimConfig::with_seed(3));
    let ids: Vec<NodeId> = (0..2u64).map(NodeId).collect();
    for i in 0..2 {
        sim.add_node(
            format!("n{i}"),
            DaceNode::factory(ids.clone(), DaceConfig::default()),
        );
    }
    // Subscribe to the whole request subtree, filtered on an inherited
    // property: only alice's requests.
    let log: Arc<Mutex<Vec<String>>> = Arc::new(Mutex::new(Vec::new()));
    let sink = log.clone();
    DaceNode::drive(&mut sim, ids[1], move |domain| {
        let sub = domain.subscribe(
            FilterSpec::remote(javaps::filter::rfilter!(broker == "alice")),
            move |r: StockRequest| {
                sink.lock().unwrap().push(r.company().clone());
            },
        );
        sub.activate().unwrap();
        sub.detach();
    });
    sim.run_until(SimTime::from_millis(10));

    DaceNode::publish_from(
        &mut sim,
        ids[0],
        SpotPrice::new(StockRequest::new(base("alices-spot"), "alice".into())),
    );
    DaceNode::publish_from(
        &mut sim,
        ids[0],
        MarketPrice::new(StockRequest::new(base("bobs-market"), "bob".into()), 1),
    );
    sim.run_until(SimTime::from_millis(600));
    assert_eq!(*log.lock().unwrap(), vec!["alices-spot".to_string()]);
}
