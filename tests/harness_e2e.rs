//! End-to-end harness runs: one per §3.1.2 delivery semantics, through the
//! full stack (obvent classes with QoS markers → typed adapters → DACE
//! channels → group protocols → simulated network), with the delivered
//! traces checked by the psc-harness invariant oracles instead of ad-hoc
//! assertions.
//!
//! Every event carries its own bookkeeping (global publish index, origin,
//! per-origin sequence number) so a run maps directly onto the harness
//! [`Trace`] model.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use javaps::dace::{DaceConfig, DaceNode};
use javaps::obvent::builtin::{CausalOrder, Certified, FifoOrder, Reliable, TotalOrder};
use javaps::pubsub::{obvent, FilterSpec};
use javaps::simnet::{NodeId, SimConfig, SimNet};
use psc_harness::{oracle, Delivery, PubRecord, Trace};

obvent! {
    pub class RelEv implements [Reliable] { index: u64, origin: u64, oseq: u64 }
}
obvent! {
    pub class FifoEv implements [FifoOrder] { index: u64, origin: u64, oseq: u64 }
}
obvent! {
    pub class CausEv implements [CausalOrder] { index: u64, origin: u64, oseq: u64 }
}
obvent! {
    pub class TotEv implements [TotalOrder] { index: u64, origin: u64, oseq: u64 }
}
obvent! {
    pub class CertEv implements [Certified] { index: u64, origin: u64, oseq: u64 }
}

type Sink = Arc<Mutex<Vec<(u64, usize)>>>;

fn cluster(n: usize, loss: f64, seed: u64) -> (SimNet, Vec<NodeId>) {
    let mut sim = SimNet::new(SimConfig {
        drop_probability: loss,
        ..SimConfig::with_seed(seed)
    });
    let ids: Vec<NodeId> = (0..n as u64).map(NodeId).collect();
    for i in 0..n {
        sim.add_node(
            format!("e2e{i}"),
            DaceNode::factory(ids.clone(), DaceConfig::default()),
        );
    }
    (sim, ids)
}

fn settle(sim: &mut SimNet, ms: u64) {
    let deadline = sim.now() + javaps::simnet::Duration::from_millis(ms);
    sim.run_until(deadline);
}

/// Assembles a harness trace from per-node sinks (raw node id, log).
fn trace_from(publishes: Vec<PubRecord>, logs: Vec<(u64, Vec<(u64, usize)>)>) -> Trace {
    Trace {
        publishes,
        deliveries: logs
            .into_iter()
            .map(|(node, log)| {
                (
                    node,
                    log.into_iter()
                        .map(|(origin, index)| Delivery { origin, index, incarnation: 0 })
                        .collect(),
                )
            })
            .collect(),
        ..Trace::default()
    }
}

fn assert_clean(violations: Vec<psc_harness::Violation>, trace: &Trace, what: &str) {
    assert!(
        violations.is_empty(),
        "{what}: {:?}\ntrace:\n{}",
        violations,
        trace.render()
    );
}

macro_rules! subscribe_recording {
    ($sim:expr, $node:expr, $ty:ty) => {{
        let sink: Sink = Arc::new(Mutex::new(Vec::new()));
        let recorder = Arc::clone(&sink);
        DaceNode::drive($sim, $node, move |domain| {
            let sub = domain.subscribe(FilterSpec::accept_all(), move |e: $ty| {
                recorder
                    .lock()
                    .unwrap()
                    .push((*e.origin(), *e.index() as usize));
            });
            sub.activate().unwrap();
            sub.detach();
        });
        sink
    }};
}

#[test]
fn reliable_end_to_end_delivers_everything_exactly_once() {
    let (mut sim, ids) = cluster(4, 0.0, 101);
    let sinks: Vec<Sink> = ids
        .iter()
        .map(|&id| subscribe_recording!(&mut sim, id, RelEv))
        .collect();
    settle(&mut sim, 10);

    let mut publishes = Vec::new();
    for i in 0..6u64 {
        let origin = i % 2; // nodes 0 and 1 alternate
        let oseq = i / 2 + 1;
        publishes.push(PubRecord {
            index: i as usize,
            origin,
            origin_seq: oseq,
            incarnation: 0,
            deps: vec![],
        });
        DaceNode::publish_from(&mut sim, ids[origin as usize], RelEv::new(i, origin, oseq));
        settle(&mut sim, 15);
    }
    settle(&mut sim, 1_000);

    let trace = trace_from(
        publishes,
        ids.iter()
            .zip(&sinks)
            .map(|(id, sink)| (id.0, sink.lock().unwrap().clone()))
            .collect(),
    );
    assert_clean(oracle::check_integrity(&trace), &trace, "reliable integrity");
    assert_clean(oracle::check_complete(&trace), &trace, "reliable completeness");
}

#[test]
fn fifo_end_to_end_preserves_publisher_order() {
    let (mut sim, ids) = cluster(3, 0.0, 102);
    let sinks: Vec<Sink> = ids
        .iter()
        .map(|&id| subscribe_recording!(&mut sim, id, FifoEv))
        .collect();
    settle(&mut sim, 10);

    // Back-to-back publishes: the network's latency jitter reorders them
    // in flight; the FIFO channel must restore publisher order.
    let mut publishes = Vec::new();
    for i in 0..8u64 {
        publishes.push(PubRecord {
            index: i as usize,
            origin: 0,
            origin_seq: i + 1,
            incarnation: 0,
            deps: vec![],
        });
        DaceNode::publish_from(&mut sim, ids[0], FifoEv::new(i, 0, i + 1));
    }
    settle(&mut sim, 1_500);

    let trace = trace_from(
        publishes,
        ids.iter()
            .zip(&sinks)
            .map(|(id, sink)| (id.0, sink.lock().unwrap().clone()))
            .collect(),
    );
    assert_clean(oracle::check_integrity(&trace), &trace, "fifo integrity");
    assert_clean(oracle::check_fifo(&trace), &trace, "fifo order");
    assert_clean(oracle::check_complete(&trace), &trace, "fifo completeness");
}

#[test]
fn causal_end_to_end_orders_replies_after_their_causes() {
    let (mut sim, ids) = cluster(3, 0.0, 103);
    let observer = subscribe_recording!(&mut sim, ids[2], CausEv);
    let publisher_view = subscribe_recording!(&mut sim, ids[0], CausEv);

    // Node 1 publishes a causally dependent reply (index 5+i) from inside
    // its handler for each original (index i < 5).
    let replier: Sink = Arc::new(Mutex::new(Vec::new()));
    let recorder = Arc::clone(&replier);
    let reply_seq = Arc::new(AtomicU64::new(0));
    let seq = Arc::clone(&reply_seq);
    DaceNode::drive(&mut sim, ids[1], move |domain| {
        let d = domain.clone();
        let sub = domain.subscribe(FilterSpec::accept_all(), move |e: CausEv| {
            recorder
                .lock()
                .unwrap()
                .push((*e.origin(), *e.index() as usize));
            if *e.index() < 5 {
                let oseq = seq.fetch_add(1, Ordering::SeqCst) + 1;
                d.publish(CausEv::new(*e.index() + 5, 1, oseq)).unwrap();
            }
        });
        sub.activate().unwrap();
        sub.detach();
    });
    settle(&mut sim, 10);

    let mut publishes = Vec::new();
    for i in 0..5u64 {
        publishes.push(PubRecord {
            index: i as usize,
            origin: 0,
            origin_seq: i + 1,
            incarnation: 0,
            deps: vec![],
        });
        DaceNode::publish_from(&mut sim, ids[0], CausEv::new(i, 0, i + 1));
        settle(&mut sim, 20);
    }
    settle(&mut sim, 1_500);
    for i in 0..5usize {
        // Reply 5+i happened after node 1 delivered original i.
        publishes.push(PubRecord {
            index: 5 + i,
            origin: 1,
            origin_seq: i as u64 + 1,
            incarnation: 0,
            deps: vec![i],
        });
    }

    let trace = trace_from(
        publishes,
        vec![
            (ids[0].0, publisher_view.lock().unwrap().clone()),
            (ids[1].0, replier.lock().unwrap().clone()),
            (ids[2].0, observer.lock().unwrap().clone()),
        ],
    );
    assert_clean(oracle::check_integrity(&trace), &trace, "causal integrity");
    assert_clean(oracle::check_fifo(&trace), &trace, "causal implies fifo");
    assert_clean(oracle::check_causal(&trace), &trace, "causal precedence");
    assert_clean(oracle::check_complete(&trace), &trace, "causal completeness");
}

#[test]
fn total_order_end_to_end_all_nodes_agree() {
    let (mut sim, ids) = cluster(4, 0.0, 104);
    let sinks: Vec<Sink> = ids
        .iter()
        .map(|&id| subscribe_recording!(&mut sim, id, TotEv))
        .collect();
    settle(&mut sim, 10);

    // Two publishers contend without settling in between: arrival order at
    // the sequencer is the only order, and everyone must agree on it.
    let mut publishes = Vec::new();
    for i in 0..5u64 {
        for origin in 0..2u64 {
            let index = (i * 2 + origin) as usize;
            publishes.push(PubRecord {
                index,
                origin,
                origin_seq: i + 1,
                incarnation: 0,
                deps: vec![],
            });
            DaceNode::publish_from(
                &mut sim,
                ids[origin as usize],
                TotEv::new(index as u64, origin, i + 1),
            );
        }
    }
    settle(&mut sim, 2_500);

    let trace = trace_from(
        publishes,
        ids.iter()
            .zip(&sinks)
            .map(|(id, sink)| (id.0, sink.lock().unwrap().clone()))
            .collect(),
    );
    assert_clean(oracle::check_integrity(&trace), &trace, "total integrity");
    assert_clean(oracle::check_total(&trace), &trace, "total-order agreement");
    assert_clean(oracle::check_complete(&trace), &trace, "total completeness");
}

#[test]
fn certified_end_to_end_survives_subscriber_crash_exactly_once() {
    let (mut sim, ids) = cluster(3, 0.05, 105);
    let install = |sim: &mut SimNet, node: NodeId| -> Sink {
        let sink: Sink = Arc::new(Mutex::new(Vec::new()));
        let recorder = Arc::clone(&sink);
        DaceNode::drive(sim, node, move |domain| {
            let sub = domain.subscribe(FilterSpec::accept_all(), move |e: CertEv| {
                recorder
                    .lock()
                    .unwrap()
                    .push((*e.origin(), *e.index() as usize));
            });
            sub.activate_with_id(7).unwrap();
            sub.detach();
        });
        sink
    };
    let steady = install(&mut sim, ids[1]);
    let before_crash = install(&mut sim, ids[2]);
    settle(&mut sim, 800);

    let mut publishes = Vec::new();
    let mut publish = |sim: &mut SimNet, index: u64| {
        publishes.push(PubRecord {
            index: index as usize,
            origin: 0,
            origin_seq: index + 1,
            incarnation: 0,
            deps: vec![],
        });
        DaceNode::publish_from(sim, ids[0], CertEv::new(index, 0, index + 1));
    };
    publish(&mut sim, 0);
    settle(&mut sim, 400);

    sim.crash(ids[2]);
    publish(&mut sim, 1);
    publish(&mut sim, 2);
    settle(&mut sim, 400);

    sim.recover(ids[2]);
    let after_crash = install(&mut sim, ids[2]);
    settle(&mut sim, 4_000);

    // Node 2's delivery log spans both incarnations; the duplicate oracle
    // across the concatenation is the exactly-once-across-recovery check.
    let mut node2_log = before_crash.lock().unwrap().clone();
    node2_log.extend(after_crash.lock().unwrap().iter().copied());

    let trace = trace_from(
        publishes,
        vec![
            (ids[1].0, steady.lock().unwrap().clone()),
            (ids[2].0, node2_log),
        ],
    );
    assert_clean(oracle::check_integrity(&trace), &trace, "certified exactly-once");
    assert_clean(
        oracle::check_complete(&trace),
        &trace,
        "certified durability across crash/recovery",
    );
}
