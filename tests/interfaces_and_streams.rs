//! Cross-crate coverage for the two secondary subscription surfaces:
//! interface (view) subscriptions routed across simulated nodes, and the
//! §5.1 pull-style streams over the live bus, plus the §5.5.2 tuple form
//! across the network.

use std::sync::{Arc, Mutex};

use javaps::dace::inproc::Bus;
use javaps::dace::{DaceConfig, DaceNode};
use javaps::obvent::builtin;
use javaps::pubsub::{obvent, publish, FilterSpec};
use javaps::simnet::{Duration, NodeId, SimConfig, SimNet};
use javaps::tuples::{self, TupleObvent};
use javaps::tuplespace::{template, tuple};

obvent! {
    pub class MetricSample implements [psc_obvent::builtin::Reliable] {
        host: String,
        value: f64,
    }
}

obvent! {
    pub class LogLine {
        host: String,
        line: String,
    }
}

fn settle(sim: &mut SimNet, ms: u64) {
    let deadline = sim.now() + Duration::from_millis(ms);
    sim.run_until(deadline);
}

fn two_nodes() -> (SimNet, Vec<NodeId>) {
    let mut sim = SimNet::new(SimConfig::with_seed(77));
    let ids: Vec<NodeId> = (0..2u64).map(NodeId).collect();
    for i in 0..2 {
        sim.add_node(
            format!("n{i}"),
            DaceNode::factory(ids.clone(), DaceConfig::default()),
        );
    }
    (sim, ids)
}

#[test]
fn interface_view_subscription_routes_across_nodes() {
    // Touch the kinds so the marker ancestry is resolvable everywhere.
    let _ = (MetricSample::kind(), LogLine::kind());
    let (mut sim, ids) = two_nodes();
    // Subscribe to the *Reliable* marker interface: a QoS-level firehose.
    let seen: Arc<Mutex<Vec<String>>> = Arc::new(Mutex::new(Vec::new()));
    let sink = seen.clone();
    DaceNode::drive(&mut sim, ids[1], move |domain| {
        let sub = domain.subscribe_view(
            builtin::reliable_kind(),
            FilterSpec::accept_all(),
            move |view| {
                sink.lock().unwrap().push(
                    view.string_at("host").unwrap_or_default(),
                );
            },
        );
        sub.activate().unwrap();
        sub.detach();
    });
    settle(&mut sim, 10);
    DaceNode::publish_from(
        &mut sim,
        ids[0],
        MetricSample::new("web-1".into(), 0.93),
    );
    // Unreliable LogLine does not subtype Reliable: must not reach the view.
    DaceNode::publish_from(&mut sim, ids[0], LogLine::new("web-1".into(), "GET /".into()));
    settle(&mut sim, 600);
    assert_eq!(*seen.lock().unwrap(), vec!["web-1".to_string()]);
}

#[test]
fn view_subscription_with_content_filter_across_nodes() {
    let _ = MetricSample::kind();
    let (mut sim, ids) = two_nodes();
    let seen: Arc<Mutex<Vec<f64>>> = Arc::new(Mutex::new(Vec::new()));
    let sink = seen.clone();
    DaceNode::drive(&mut sim, ids[1], move |domain| {
        let sub = domain.subscribe_view(
            builtin::reliable_kind(),
            FilterSpec::remote(javaps::filter::rfilter!(value > 0.9)),
            move |view| {
                sink.lock().unwrap().push(view.number_at("value").unwrap());
            },
        );
        sub.activate().unwrap();
        sub.detach();
    });
    settle(&mut sim, 10);
    DaceNode::publish_from(&mut sim, ids[0], MetricSample::new("a".into(), 0.95));
    DaceNode::publish_from(&mut sim, ids[0], MetricSample::new("b".into(), 0.10));
    settle(&mut sim, 600);
    assert_eq!(*seen.lock().unwrap(), vec![0.95]);
}

#[test]
fn tuple_form_pubsub_crosses_the_network() {
    let _ = TupleObvent::kind();
    let (mut sim, ids) = two_nodes();
    let seen: Arc<Mutex<Vec<javaps::tuples::Value>>> = Arc::new(Mutex::new(Vec::new()));
    let sink = seen.clone();
    DaceNode::drive(&mut sim, ids[1], move |domain| {
        let sub = tuples::subscribe_tuples(domain, template![= "quote", str, float], move |t| {
            sink.lock().unwrap().push(t.get(2).cloned().unwrap());
        });
        sub.activate().unwrap();
        sub.detach();
    });
    settle(&mut sim, 10);
    DaceNode::drive(&mut sim, ids[0], |domain| {
        tuples::publish_tuple(domain, tuple!["quote", "Telco", 80.0]).unwrap();
        tuples::publish_tuple(domain, tuple!["order", "Telco", 80.0]).unwrap();
    });
    settle(&mut sim, 600);
    let got = seen.lock().unwrap();
    assert_eq!(got.len(), 1);
    assert_eq!(got[0].as_f64(), Some(80.0));
}

#[test]
fn streams_pull_from_the_live_bus() {
    let bus = Bus::new();
    let publisher = bus.domain_inline();
    let consumer = bus.domain_inline();
    let (sub, stream) = consumer
        .subscribe_stream::<MetricSample>(FilterSpec::remote(javaps::filter::rfilter!(value >= 0.5)));
    sub.activate().unwrap();
    for v in [0.2, 0.6, 0.9] {
        publish!(publisher, MetricSample::new("h".into(), v)).unwrap();
    }
    publisher.drain();
    consumer.drain();
    let got: Vec<f64> = stream.drain().iter().map(|m| *m.value()).collect();
    assert_eq!(got, vec![0.6, 0.9]);
    // Pausing from outside the stream (the §5.1 critique, solved).
    sub.deactivate().unwrap();
    publish!(publisher, MetricSample::new("h".into(), 0.7)).unwrap();
    publisher.drain();
    consumer.drain();
    assert!(stream.try_recv().is_none());
}
