//! Observability end-to-end: the wire-carried trace id survives every hop
//! of a multi-node run, and the metric counters agree with the harness
//! oracles' ground truth.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use javaps::dace::{DaceConfig, DaceNode};
use javaps::obvent::builtin::Reliable;
use javaps::pubsub::{obvent, FilterSpec};
use javaps::simnet::{Duration, NodeId, SimConfig, SimNet};
use javaps::telemetry::span::stage_order;
use javaps::telemetry::{record_tracer_spans, Registry, TraceStage, Tracer};
use psc_harness::{run_scenario, Op, ProtocolKind, Scenario};

obvent! {
    pub class TracedEvent implements [Reliable] { n: u64 }
}

/// One publish on a 3-node cluster: the minted [`TraceId`] rides the wire
/// envelope through the group protocol to both remote nodes, and every
/// recorded hop carries the same id.
#[test]
fn trace_id_propagates_across_a_three_node_run() {
    let mut sim = SimNet::new(SimConfig::with_seed(11));
    let ids: Vec<NodeId> = (0..3).map(NodeId).collect();
    let telemetry = Arc::new(Registry::new());
    let tracer = Arc::new(Tracer::default());
    for i in 0..3 {
        sim.add_node(
            format!("n{i}"),
            DaceNode::factory_with_telemetry(
                ids.clone(),
                DaceConfig::default(),
                Arc::clone(&telemetry),
                Arc::clone(&tracer),
            ),
        );
    }
    let got = Arc::new(AtomicU64::new(0));
    for &id in &ids[1..] {
        let got = Arc::clone(&got);
        DaceNode::drive(&mut sim, id, move |domain| {
            let sub = domain.subscribe(FilterSpec::accept_all(), move |e: TracedEvent| {
                got.fetch_add(*e.n(), Ordering::Relaxed);
            });
            sub.activate().unwrap();
            sub.detach();
        });
    }
    sim.run_until(sim.now() + Duration::from_millis(50));

    DaceNode::publish_from(&mut sim, ids[0], TracedEvent::new(7));
    let trace = DaceNode::last_trace_of(&mut sim, ids[0]);
    assert!(!trace.is_none());
    assert_eq!(trace.origin(), 0);
    sim.run_until(sim.now() + Duration::from_secs(1));
    assert_eq!(got.load(Ordering::Relaxed), 14, "both subscribers handled it");

    let events = tracer.events_for(trace);
    let path = tracer.render_path(trace);
    assert!(
        events.iter().all(|e| e.trace == trace),
        "foreign hop in path:\n{path}"
    );
    let stage_count =
        |s: TraceStage| events.iter().filter(|e| e.stage == s).count();
    assert!(stage_count(TraceStage::Publish) == 1, "path:\n{path}");
    assert!(stage_count(TraceStage::GroupBroadcast) == 1, "path:\n{path}");
    let group_hops: Vec<&str> = events
        .iter()
        .filter(|e| e.stage == TraceStage::GroupDeliver)
        .map(|e| e.detail.as_str())
        .collect();
    assert!(
        group_hops.iter().any(|d| d.contains("at=n1"))
            && group_hops.iter().any(|d| d.contains("at=n2")),
        "expected group hops on n1 and n2, path:\n{path}"
    );
    assert!(stage_count(TraceStage::Deliver) >= 2, "path:\n{path}");

    // The counters tell the same story as the trace.
    let snap = telemetry.snapshot();
    assert_eq!(snap.counter("dace.published"), 1);
    assert_eq!(snap.counter("dace.delivered"), 2);
    assert!(snap.counter("group.reliable.broadcasts") >= 1);
}

/// Spans derived from the trace stream of a 3-node run are well-formed
/// pipelines — publish first, virtual timestamps monotone, same-instant
/// hops in pipeline order — and their end-to-end samples agree with the
/// per-node `group.delivered` counters: one sample per group-layer
/// delivery, attributed to the right node.
#[test]
fn derived_spans_are_ordered_and_match_per_node_delivery_counters() {
    let mut sim = SimNet::new(SimConfig::with_seed(23));
    let ids: Vec<NodeId> = (0..3).map(NodeId).collect();
    let tracer = Arc::new(Tracer::default());
    // Per-node registries, so `group.delivered` can be read node by node.
    let registries: Vec<Arc<Registry>> =
        (0..3).map(|_| Arc::new(Registry::new())).collect();
    for (i, registry) in registries.iter().enumerate() {
        sim.add_node(
            format!("n{i}"),
            DaceNode::factory_with_telemetry(
                ids.clone(),
                DaceConfig::default(),
                Arc::clone(registry),
                Arc::clone(&tracer),
            ),
        );
    }
    for &id in &ids[1..] {
        DaceNode::drive(&mut sim, id, move |domain| {
            let sub = domain.subscribe(FilterSpec::accept_all(), move |_e: TracedEvent| {});
            sub.activate().unwrap();
            sub.detach();
        });
    }
    sim.run_until(sim.now() + Duration::from_millis(50));
    for n in 0..3u64 {
        DaceNode::publish_from(&mut sim, ids[0], TracedEvent::new(n));
        sim.run_until(sim.now() + Duration::from_millis(5));
    }
    sim.run_until(sim.now() + Duration::from_secs(1));

    let span_registry = Registry::new();
    let spans = record_tracer_spans(&tracer, &span_registry);
    assert_eq!(spans.len(), 3, "one span per published obvent");

    for span in &spans {
        assert_eq!(span.class, "reliable", "QoS class from the sem= token");
        let first = span.hops.first().expect("span has hops");
        assert_eq!(first.stage, TraceStage::Publish, "publish opens the span");
        assert_eq!(first.delta_us, 0, "no dwell before the first hop");
        assert_eq!(first.at_us, span.publish_us);
        for pair in span.hops.windows(2) {
            assert!(
                pair[0].at_us <= pair[1].at_us,
                "virtual timestamps must be monotone:\n{}",
                span.render()
            );
            if pair[0].at_us == pair[1].at_us {
                assert!(
                    stage_order(pair[0].stage) <= stage_order(pair[1].stage),
                    "same-instant hops must follow pipeline order:\n{}",
                    span.render()
                );
            }
            assert_eq!(
                pair[1].delta_us,
                pair[1].at_us - pair[0].at_us,
                "dwell is the gap to the previous hop:\n{}",
                span.render()
            );
        }
    }

    // Every end-to-end sample names its delivering node; per node, the
    // sample count equals that node's group-layer delivery counter.
    for (n, registry) in registries.iter().enumerate() {
        let samples: usize = spans
            .iter()
            .flat_map(|s| &s.e2e)
            .filter(|(node, _)| *node == Some(n as u64))
            .count();
        assert_eq!(
            samples as u64,
            registry.snapshot().counter("group.delivered"),
            "node n{n}: span.e2e samples vs group.delivered"
        );
    }
    let total: usize = spans.iter().map(|s| s.e2e.len()).sum();
    assert_eq!(total, 6, "3 publishes × 2 subscriber nodes");
    let hist = span_registry.snapshot();
    let e2e = hist
        .histogram("span.e2e.reliable")
        .expect("e2e histogram recorded");
    assert_eq!(e2e.count, total as u64);
    assert!(e2e.percentile(0.50) <= e2e.percentile(0.99));
    assert!(e2e.percentile(0.99) <= e2e.max);
}

/// The per-protocol wire counters folded into the harness trace agree with
/// the oracle-checked delivery logs, node by node and in total.
#[test]
fn harness_wire_counters_match_oracle_delivery_counts() {
    let scenario = Scenario {
        seed: 5,
        protocol: ProtocolKind::Reliable,
        nodes: 3,
        loss: 0.1,
        latency_ms: (1, 4),
        settle_ms: 500,
        ops: vec![
            Op::Publish { node: 0, at_ms: 10 },
            Op::Publish { node: 1, at_ms: 20 },
            Op::Publish { node: 2, at_ms: 30 },
            Op::Publish { node: 0, at_ms: 40 },
        ],
    };
    let outcome = run_scenario(&scenario);
    assert!(
        outcome.violations.is_empty(),
        "oracles flagged: {:?}",
        outcome.violations
    );
    let trace = &outcome.trace;
    let total: u64 = trace.deliveries.values().map(|log| log.len() as u64).sum();
    assert!(total > 0, "nothing delivered");
    assert_eq!(trace.wire.get("group.delivered").copied(), Some(total));
    for (node, log) in &trace.deliveries {
        assert_eq!(
            trace.wire_delivered.get(node).copied(),
            Some(log.len() as u64),
            "node {node} counter vs delivery log"
        );
    }
    assert_eq!(
        trace.wire.get("group.reliable.broadcasts").copied(),
        Some(scenario.ops.len() as u64),
        "one broadcast counter tick per publish op"
    );
}
