//! E3 end-to-end: the §3.1.2 delivery-semantics ladder under failures,
//! exercised through the full stack (macro → domain → DACE → protocols →
//! simulated network).

use std::sync::{Arc, Mutex};

use javaps::obvent::builtin::{CausalOrder, Certified, Reliable};
use javaps::pubsub::{obvent, FilterSpec};
use javaps::dace::{DaceConfig, DaceNode};
use javaps::simnet::{NodeId, SimConfig, SimNet};

obvent! {
    pub class BestEffortEvent { n: u64 }
}
obvent! {
    pub class ReliableEvent implements [Reliable] { n: u64 }
}
obvent! {
    pub class CausalEvent implements [CausalOrder] { n: u64 }
}
obvent! {
    pub class CertifiedEvent implements [Certified] { n: u64 }
}

type Seen = Arc<Mutex<Vec<u64>>>;

fn cluster(n: usize, loss: f64, seed: u64) -> (SimNet, Vec<NodeId>) {
    let mut sim = SimNet::new(SimConfig {
        seed,
        drop_probability: loss,
        ..SimConfig::default()
    });
    let ids: Vec<NodeId> = (0..n as u64).map(NodeId).collect();
    for i in 0..n {
        sim.add_node(
            format!("n{i}"),
            DaceNode::factory(ids.clone(), DaceConfig::default()),
        );
    }
    (sim, ids)
}

fn settle(sim: &mut SimNet, ms: u64) {
    let deadline = sim.now() + javaps::simnet::Duration::from_millis(ms);
    sim.run_until(deadline);
}

#[test]
fn unreliable_drops_under_loss_reliable_does_not() {
    let run = |reliable: bool| -> usize {
        let (mut sim, ids) = cluster(4, 0.25, 99);
        let seen: Seen = Arc::new(Mutex::new(Vec::new()));
        let sink = seen.clone();
        if reliable {
            DaceNode::drive(&mut sim, ids[1], move |domain| {
                let sub = domain.subscribe(FilterSpec::accept_all(), move |e: ReliableEvent| {
                    sink.lock().unwrap().push(*e.n());
                });
                sub.activate().unwrap();
                sub.detach();
            });
        } else {
            DaceNode::drive(&mut sim, ids[1], move |domain| {
                let sub = domain.subscribe(FilterSpec::accept_all(), move |e: BestEffortEvent| {
                    sink.lock().unwrap().push(*e.n());
                });
                sub.activate().unwrap();
                sub.detach();
            });
        }
        // Anti-entropy converges the (lossy) control plane first.
        settle(&mut sim, 800);
        for i in 0..40u64 {
            if reliable {
                DaceNode::publish_from(&mut sim, ids[0], ReliableEvent::new(i));
            } else {
                DaceNode::publish_from(&mut sim, ids[0], BestEffortEvent::new(i));
            }
        }
        settle(&mut sim, 1_500);
        let delivered = seen.lock().unwrap().len();
        delivered
    };
    let unreliable = run(false);
    let reliable = run(true);
    assert!(
        unreliable < 40,
        "25% loss must drop some best-effort obvents (got {unreliable}/40)"
    );
    assert_eq!(reliable, 40, "reliable delivery must be complete");
}

#[test]
fn causal_order_holds_across_the_full_stack() {
    let (mut sim, ids) = cluster(3, 0.0, 11);
    let seen: Seen = Arc::new(Mutex::new(Vec::new()));
    let sink = seen.clone();
    DaceNode::drive(&mut sim, ids[2], move |domain| {
        let sub = domain.subscribe(FilterSpec::accept_all(), move |e: CausalEvent| {
            sink.lock().unwrap().push(*e.n());
        });
        sub.activate().unwrap();
        sub.detach();
    });
    // Node 1 reacts to node 0's events by publishing a causally dependent
    // follow-up (n+100).
    let relay: Seen = Arc::new(Mutex::new(Vec::new()));
    let relay_sink = relay.clone();
    DaceNode::drive(&mut sim, ids[1], move |domain| {
        let d = domain.clone();
        let sub = domain.subscribe(FilterSpec::accept_all(), move |e: CausalEvent| {
            relay_sink.lock().unwrap().push(*e.n());
            if *e.n() < 100 {
                d.publish(CausalEvent::new(*e.n() + 100)).unwrap();
            }
        });
        sub.activate().unwrap();
        sub.detach();
    });
    settle(&mut sim, 10);
    for i in 0..5u64 {
        DaceNode::publish_from(&mut sim, ids[0], CausalEvent::new(i));
        settle(&mut sim, 20);
    }
    settle(&mut sim, 1_000);
    let got = seen.lock().unwrap().clone();
    assert_eq!(got.len(), 10, "5 originals + 5 causally dependent replies");
    // Causality: every reply n+100 must come after its cause n.
    for n in 0..5u64 {
        let cause = got.iter().position(|&x| x == n).unwrap();
        let effect = got.iter().position(|&x| x == n + 100).unwrap();
        assert!(cause < effect, "event {n} delivered after its effect");
    }
}

#[test]
fn certified_delivery_spans_subscriber_downtime() {
    let (mut sim, ids) = cluster(2, 0.1, 17);
    let install = |sim: &mut SimNet, node: NodeId| -> Seen {
        let seen: Seen = Arc::new(Mutex::new(Vec::new()));
        let sink = seen.clone();
        DaceNode::drive(sim, node, move |domain| {
            let sub = domain.subscribe(FilterSpec::accept_all(), move |e: CertifiedEvent| {
                sink.lock().unwrap().push(*e.n());
            });
            sub.activate_with_id(42).unwrap();
            sub.detach();
        });
        seen
    };
    let before = install(&mut sim, ids[1]);
    settle(&mut sim, 800);
    DaceNode::publish_from(&mut sim, ids[0], CertifiedEvent::new(1));
    settle(&mut sim, 400);
    assert_eq!(*before.lock().unwrap(), vec![1]);

    sim.crash(ids[1]);
    DaceNode::publish_from(&mut sim, ids[0], CertifiedEvent::new(2));
    DaceNode::publish_from(&mut sim, ids[0], CertifiedEvent::new(3));
    settle(&mut sim, 400);

    sim.recover(ids[1]);
    let after = install(&mut sim, ids[1]);
    settle(&mut sim, 3_000);
    let mut got = after.lock().unwrap().clone();
    got.sort_unstable();
    assert_eq!(
        got,
        vec![2, 3],
        "both certified obvents published during downtime must arrive, once each"
    );
}
