//! E8 — paper §2.1.2: obvent global and local uniqueness.
//!
//! "Suppose an obvent o1 published from an address space a1: if an address
//! space a2 contains two notifiables n1 and n2, these will receive
//! references to two new distinct clones of o1 … if the address space a1
//! also contains a notifiable n3, then n3 will receive a reference to a new
//! obvent o4. … if the same obvent is published twice, two distinct copies
//! will be created again for every subscriber."

use std::sync::{Arc, Mutex};

use javaps::dace::{DaceConfig, DaceNode};
use javaps::pubsub::{obvent, FilterSpec};
use javaps::simnet::{NodeId, SimConfig, SimNet, SimTime};

obvent! {
    pub class Payload {
        body: String,
    }
}

/// Keeps the received obvents alive so their buffers can be compared by
/// address: distinct live allocations prove each notifiable got its own
/// clone, not a shared reference.
type Received = Arc<Mutex<Vec<Payload>>>;

fn subscribe_recording(sim: &mut SimNet, node: NodeId) -> Received {
    let received: Received = Arc::new(Mutex::new(Vec::new()));
    let sink = received.clone();
    DaceNode::drive(sim, node, move |domain| {
        let sub = domain.subscribe(FilterSpec::accept_all(), move |p: Payload| {
            sink.lock().unwrap().push(p);
        });
        sub.activate().unwrap();
        sub.detach();
    });
    received
}

#[test]
fn each_notifiable_receives_a_distinct_clone() {
    let mut sim = SimNet::new(SimConfig::with_seed(4));
    let ids: Vec<NodeId> = (0..2u64).map(NodeId).collect();
    for i in 0..2 {
        sim.add_node(
            format!("a{i}"),
            DaceNode::factory(ids.clone(), DaceConfig::default()),
        );
    }
    // a2 hosts two notifiables (n1, n2); a1 hosts one (n3) plus publishes.
    let n1 = subscribe_recording(&mut sim, ids[1]);
    let n2 = subscribe_recording(&mut sim, ids[1]);
    let n3 = subscribe_recording(&mut sim, ids[0]);
    sim.run_until(SimTime::from_millis(10));

    DaceNode::publish_from(&mut sim, ids[0], Payload::new("o1".into()));
    sim.run_until(SimTime::from_millis(500));

    let (g1, g2, g3) = (n1.lock().unwrap(), n2.lock().unwrap(), n3.lock().unwrap());
    // Everyone got exactly one copy with the right content.
    for (name, r) in [("n1", &g1), ("n2", &g2), ("n3", &g3)] {
        assert_eq!(r.len(), 1, "{name}");
        assert_eq!(r[0].body(), "o1", "{name}");
    }
    // Global + local uniqueness: the three simultaneously live copies are
    // pairwise distinct allocations.
    let addrs = [
        g1[0].body().as_ptr() as usize,
        g2[0].body().as_ptr() as usize,
        g3[0].body().as_ptr() as usize,
    ];
    assert_ne!(addrs[0], addrs[1], "n1 and n2 must hold distinct clones");
    assert_ne!(addrs[0], addrs[2]);
    assert_ne!(addrs[1], addrs[2]);
}

#[test]
fn republishing_creates_fresh_copies_again() {
    let mut sim = SimNet::new(SimConfig::with_seed(5));
    let ids: Vec<NodeId> = (0..2u64).map(NodeId).collect();
    for i in 0..2 {
        sim.add_node(
            format!("a{i}"),
            DaceNode::factory(ids.clone(), DaceConfig::default()),
        );
    }
    let n1 = subscribe_recording(&mut sim, ids[1]);
    sim.run_until(SimTime::from_millis(10));

    // "The same obvent published twice": same value, two publishes.
    let o = Payload::new("twice".into());
    DaceNode::publish_from(&mut sim, ids[0], o.clone());
    sim.run_until(SimTime::from_millis(200));
    DaceNode::publish_from(&mut sim, ids[0], o);
    sim.run_until(SimTime::from_millis(500));

    let received = n1.lock().unwrap();
    assert_eq!(received.len(), 2);
    assert_eq!(received[0].body(), "twice");
    assert_eq!(received[1].body(), "twice");
    assert_ne!(
        received[0].body().as_ptr(),
        received[1].body().as_ptr(),
        "the second delivery must be a new distinct copy"
    );
}

#[test]
fn mutating_a_received_clone_does_not_affect_other_subscribers() {
    // The strongest observable consequence of per-subscriber clones: a
    // handler may consume/mutate its copy freely.
    let mut sim = SimNet::new(SimConfig::with_seed(6));
    let ids: Vec<NodeId> = vec![NodeId(0)];
    sim.add_node("solo", DaceNode::factory(ids.clone(), DaceConfig::default()));

    let collected: Arc<Mutex<Vec<String>>> = Arc::new(Mutex::new(Vec::new()));
    let (c1, c2) = (collected.clone(), collected.clone());
    DaceNode::drive(&mut sim, ids[0], move |domain| {
        // First subscriber consumes and mangles its copy.
        let s1 = domain.subscribe(FilterSpec::accept_all(), move |p: Payload| {
            let mut owned = p;
            owned = Payload::new(format!("{}-mangled", owned.body()));
            c1.lock().unwrap().push(owned.body().clone());
        });
        s1.activate().unwrap();
        s1.detach();
        // Second subscriber must still see the original content.
        let s2 = domain.subscribe(FilterSpec::accept_all(), move |p: Payload| {
            c2.lock().unwrap().push(p.body().clone());
        });
        s2.activate().unwrap();
        s2.detach();
    });
    sim.run_until(SimTime::from_millis(10));
    DaceNode::publish_from(&mut sim, ids[0], Payload::new("pristine".into()));
    sim.run_until(SimTime::from_millis(200));

    let mut got = collected.lock().unwrap().clone();
    got.sort();
    assert_eq!(got, vec!["pristine".to_string(), "pristine-mangled".to_string()]);
}
