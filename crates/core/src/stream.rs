//! The paper's first design alternative, made workable (§5.1).
//!
//! §5.1 explores binding notifications to an *obvent variable* —
//! `t = subscribe {...} {...};` — a coroutine/fork-flavoured pull model.
//! The paper rejects the syntax because "by the absence of a subscription
//! handle, a subscription can not be referred to from outside of its
//! expression", leaving only awkward in-handler unsubscription.
//!
//! [`Domain::subscribe_stream`] reproduces the *interaction style* (pulling
//! successive obvents from a variable) while keeping the handle — each call
//! returns the ordinary [`Subscription`] alongside the [`ObventStream`], so
//! activation, deactivation and thread policies work exactly as in the
//! primary design. This is the "what if" of §5.1 with its stated defect
//! repaired.

use std::time::Duration;

use crossbeam::channel::{unbounded, Receiver};

use psc_obvent::Obvent;

use crate::domain::Domain;
use crate::spec::FilterSpec;
use crate::subscription::Subscription;

/// A pull-style stream of obvents produced by a subscription.
///
/// Iterating blocks until the next obvent arrives or every producer is gone
/// (domain closed / subscription dropped).
#[derive(Debug)]
pub struct ObventStream<O> {
    rx: Receiver<O>,
}

impl<O: Obvent> ObventStream<O> {
    /// Blocks for the next obvent; `None` once the subscription's domain is
    /// gone.
    pub fn recv(&self) -> Option<O> {
        self.rx.recv().ok()
    }

    /// Non-blocking poll.
    pub fn try_recv(&self) -> Option<O> {
        self.rx.try_recv().ok()
    }

    /// Blocks up to `timeout` for the next obvent.
    pub fn recv_timeout(&self, timeout: Duration) -> Option<O> {
        self.rx.recv_timeout(timeout).ok()
    }

    /// Number of obvents buffered and not yet pulled.
    pub fn pending(&self) -> usize {
        self.rx.len()
    }

    /// Drains everything currently buffered.
    pub fn drain(&self) -> Vec<O> {
        let mut out = Vec::new();
        while let Some(obvent) = self.try_recv() {
            out.push(obvent);
        }
        out
    }
}

impl<O: Obvent> Iterator for &ObventStream<O> {
    type Item = O;

    fn next(&mut self) -> Option<O> {
        self.recv()
    }
}

impl Domain {
    /// Subscribes in the pull style of §5.1: matching obvents are buffered
    /// and consumed from the returned [`ObventStream`] instead of running a
    /// handler.
    ///
    /// The returned [`Subscription`] handle is inactive, exactly like
    /// [`Domain::subscribe`] — activate it to start the flow, deactivate to
    /// pause, drop to cancel. This restores the control the paper found
    /// missing in the obvent-variable syntax.
    ///
    /// ```
    /// use pubsub_core::{obvent, publish, Domain, FilterSpec};
    ///
    /// obvent! { pub class Tick { n: u64 } }
    ///
    /// let domain = Domain::in_process();
    /// let (sub, stream) = domain.subscribe_stream::<Tick>(FilterSpec::accept_all());
    /// sub.activate().unwrap();
    /// publish!(domain, Tick::new(7)).unwrap();
    /// domain.drain();
    /// assert_eq!(*stream.recv().unwrap().n(), 7);
    /// ```
    pub fn subscribe_stream<O: Obvent>(
        &self,
        filter: FilterSpec<O>,
    ) -> (Subscription, ObventStream<O>) {
        let (tx, rx) = unbounded();
        let subscription = self.subscribe(filter, move |obvent: O| {
            let _ = tx.send(obvent);
        });
        (subscription, ObventStream { rx })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{obvent, publish};

    obvent! {
        pub class StreamTick { n: u64 }
    }

    #[test]
    fn pull_style_consumption() {
        let domain = Domain::in_process();
        let (sub, stream) =
            domain.subscribe_stream::<StreamTick>(FilterSpec::remote(psc_filter::rfilter!(n < 10)));
        sub.activate().unwrap();
        for n in [1u64, 50, 2, 3] {
            publish!(domain, StreamTick::new(n)).unwrap();
        }
        domain.drain();
        assert_eq!(stream.pending(), 3);
        let got: Vec<u64> = stream.drain().iter().map(|t| *t.n()).collect();
        assert_eq!(got, vec![1, 2, 3]);
        assert!(stream.try_recv().is_none());
    }

    #[test]
    fn the_handle_solves_the_papers_critique() {
        // §5.1: "a subscription can not be referred to from outside of its
        // expression" — here it can: pause and resume from outside.
        let domain = Domain::in_process();
        let (sub, stream) = domain.subscribe_stream::<StreamTick>(FilterSpec::accept_all());
        sub.activate().unwrap();
        publish!(domain, StreamTick::new(1)).unwrap();
        domain.drain();
        sub.deactivate().unwrap();
        publish!(domain, StreamTick::new(2)).unwrap();
        domain.drain();
        sub.activate().unwrap();
        publish!(domain, StreamTick::new(3)).unwrap();
        domain.drain();
        let got: Vec<u64> = stream.drain().iter().map(|t| *t.n()).collect();
        assert_eq!(got, vec![1, 3], "the deactivated window must be skipped");
    }

    #[test]
    fn iteration_ends_when_the_subscription_dies() {
        let domain = Domain::in_process();
        let (sub, stream) = domain.subscribe_stream::<StreamTick>(FilterSpec::accept_all());
        sub.activate().unwrap();
        publish!(domain, StreamTick::new(1)).unwrap();
        domain.drain();
        drop(sub); // cancels the subscription, dropping the sender
        let collected: Vec<StreamTick> = (&stream).collect();
        assert_eq!(collected.len(), 1);
    }

    #[test]
    fn recv_timeout_expires() {
        let domain = Domain::in_process();
        let (sub, stream) = domain.subscribe_stream::<StreamTick>(FilterSpec::accept_all());
        sub.activate().unwrap();
        assert!(stream.recv_timeout(Duration::from_millis(20)).is_none());
    }
}
