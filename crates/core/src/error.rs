//! The pub/sub error types (paper Fig. 3's `NotificationException`s).

use std::fmt;

use psc_obvent::ObventError;

/// Raised by `publish` — the paper's `CannotPublishException`.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum PublishError {
    /// The obvent could not be serialized.
    Encode(ObventError),
    /// The dissemination fabric rejected the obvent.
    Backend(String),
    /// The domain has been shut down.
    DomainClosed,
}

impl fmt::Display for PublishError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PublishError::Encode(err) => write!(f, "cannot publish: {err}"),
            PublishError::Backend(msg) => write!(f, "cannot publish: {msg}"),
            PublishError::DomainClosed => write!(f, "cannot publish: domain closed"),
        }
    }
}

impl std::error::Error for PublishError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            PublishError::Encode(err) => Some(err),
            _ => None,
        }
    }
}

impl From<ObventError> for PublishError {
    fn from(err: ObventError) -> Self {
        PublishError::Encode(err)
    }
}

/// Raised by `Subscription::activate` — the paper's
/// `CannotSubscribeException`.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum SubscribeError {
    /// "…if the subscription is already activated" (§3.4.1).
    AlreadyActive,
    /// The requested durable id is already bound to an active subscription.
    DurableIdInUse(u64),
    /// The dissemination fabric rejected the subscription.
    Backend(String),
    /// The domain has been shut down.
    DomainClosed,
}

impl fmt::Display for SubscribeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SubscribeError::AlreadyActive => write!(f, "cannot subscribe: already active"),
            SubscribeError::DurableIdInUse(id) => {
                write!(f, "cannot subscribe: durable id {id} already in use")
            }
            SubscribeError::Backend(msg) => write!(f, "cannot subscribe: {msg}"),
            SubscribeError::DomainClosed => write!(f, "cannot subscribe: domain closed"),
        }
    }
}

impl std::error::Error for SubscribeError {}

/// Raised by `Subscription::deactivate` — the paper's
/// `CannotUnsubscribeException`.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum UnsubscribeError {
    /// The subscription is not currently active.
    NotActive,
    /// The dissemination fabric rejected the unsubscription.
    Backend(String),
    /// The domain has been shut down.
    DomainClosed,
}

impl fmt::Display for UnsubscribeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            UnsubscribeError::NotActive => write!(f, "cannot unsubscribe: not active"),
            UnsubscribeError::Backend(msg) => write!(f, "cannot unsubscribe: {msg}"),
            UnsubscribeError::DomainClosed => write!(f, "cannot unsubscribe: domain closed"),
        }
    }
}

impl std::error::Error for UnsubscribeError {}
