#![warn(missing_docs)]

//! # pubsub-core — the `publish` / `subscribe` primitives (the paper's
//! contribution)
//!
//! This crate is the Rust rendition of **Java_ps** (paper §3): type-based
//! publish/subscribe as language-level primitives, implemented by generated
//! typed adapters instead of virtual-machine changes (§4).
//!
//! | paper construct | here |
//! |---|---|
//! | `publish o;` (§3.2) | [`publish!`] / [`Domain::publish`] |
//! | `subscribe (T t) {filter} {handler}` (§3.3, Fig. 5) | [`subscribe!`] / [`Domain::subscribe`] |
//! | `Subscription` handle (Fig. 3) | [`Subscription`]: `activate`, `activate_with_id`, `deactivate`, `set_single_threading`, `set_multi_threading` |
//! | `CannotPublishException` etc. (Fig. 3) | [`PublishError`], [`SubscribeError`], [`UnsubscribeError`] |
//! | generated `TAdapter` (§4.3, Fig. 6) | `TAdapter` emitted by [`obvent!`] |
//! | filters: migratable vs local (§3.3.4, §4.4.3) | [`FilterSpec`]: `Remote(RemoteFilter)` or `Local(closure)` |
//! | thread policies (§3.3.5) | [`ThreadPolicy`]: multi-threading by default, single-threading / bounded on request |
//!
//! A [`Domain`] is one address space's pub/sub endpoint. It dispatches
//! obvents to the subscriptions whose **type** they conform to (dynamic kind
//! is a subtype of the subscribed kind) and whose **filter** they pass; each
//! matching handler receives its own fresh clone (§2.1.2 uniqueness). The
//! distribution fabric behind a domain is pluggable through
//! [`Dissemination`]: this crate ships the in-process [`loopback`] fabric,
//! and `psc-dace` provides the networked class-based dissemination.
//!
//! ```
//! use pubsub_core::{obvent, publish, subscribe, Domain};
//!
//! obvent! {
//!     /// Paper Fig. 2.
//!     pub class StockQuote {
//!         company: String,
//!         price: f64,
//!         amount: u32,
//!     }
//! }
//!
//! let domain = Domain::in_process();
//! let seen = std::sync::Arc::new(std::sync::Mutex::new(Vec::new()));
//! let sink = seen.clone();
//!
//! // The paper's §2.3.3 subscription, almost verbatim:
//! let s = subscribe!(domain, (q: StockQuote)
//!     where { price < 100.0 && company contains "Telco" }
//!     => {
//!         sink.lock().unwrap().push(q.price().to_owned());
//!     });
//! s.activate().unwrap();
//!
//! publish!(domain, StockQuote::new("Telco Mobiles".into(), 80.0, 10)).unwrap();
//! publish!(domain, StockQuote::new("Banco".into(), 80.0, 10)).unwrap();
//! domain.drain();
//! assert_eq!(*seen.lock().unwrap(), vec![80.0]);
//! s.deactivate().unwrap();
//! ```

mod domain;
mod error;
mod executor;
mod macros;
mod spec;
mod stream;
mod subscription;

pub use domain::{DeliverySink, Dissemination, Domain, SubId, SubscriptionRecord};
pub use error::{PublishError, SubscribeError, UnsubscribeError};
pub use executor::{ExecMode, ThreadPolicy};
pub use spec::FilterSpec;
pub use stream::ObventStream;
pub use subscription::Subscription;

/// The in-process dissemination fabric (single address space).
pub mod loopback {
    pub use crate::domain::Loopback;
}

// Re-exported so a single `pubsub-core` dependency suffices for users of
// the macros.
pub use psc_filter;
pub use psc_obvent;

// Macro internals.
#[doc(hidden)]
pub mod __private {
    pub use psc_paste;
}

#[cfg(test)]
mod tests;
