//! Filter specifications attached to subscriptions.

use std::fmt;

use psc_filter::typed::Expr;
use psc_filter::{LocalFilter, RemoteFilter};

/// The filter half of a subscription (paper §3.3.3–§3.3.4).
///
/// A `Remote` filter is reified data: the dissemination layer can migrate it
/// to filtering hosts and factor it with other subscriptions. A `Local`
/// filter is an opaque closure, applied at the subscriber only — the paper's
/// fallback for filter code that violates the mobility restrictions. A
/// subscription may carry both (the conforming part migrated, the rest
/// local).
pub struct FilterSpec<O: ?Sized> {
    pub(crate) remote: Option<RemoteFilter>,
    pub(crate) local: Option<LocalFilter<O>>,
}

impl<O: ?Sized> FilterSpec<O> {
    /// Accept every obvent of the subscribed type (`return true;`).
    pub fn accept_all() -> Self {
        FilterSpec {
            remote: None,
            local: None,
        }
    }

    /// A migratable, factorable content filter.
    pub fn remote(filter: impl Into<RemoteFilter>) -> Self {
        FilterSpec {
            remote: Some(filter.into()),
            local: None,
        }
    }

    /// An opaque subscriber-side filter closure.
    pub fn local(filter: impl Fn(&O) -> bool + Send + Sync + 'static) -> Self
    where
        O: 'static,
    {
        FilterSpec {
            remote: None,
            local: Some(LocalFilter::new(filter)),
        }
    }

    /// Adds a local closure on top of an existing spec (both must pass).
    pub fn and_local(mut self, filter: impl Fn(&O) -> bool + Send + Sync + 'static) -> Self
    where
        O: 'static,
    {
        match self.local.take() {
            None => self.local = Some(LocalFilter::new(filter)),
            Some(existing) => {
                self.local = Some(LocalFilter::new(move |o: &O| {
                    existing.eval(o) && filter(o)
                }));
            }
        }
        self
    }

    /// The migratable part, if any.
    pub fn remote_part(&self) -> Option<&RemoteFilter> {
        self.remote.as_ref()
    }

    /// True when no filtering is requested at all.
    pub fn is_accept_all(&self) -> bool {
        self.local.is_none()
            && self
                .remote
                .as_ref()
                .is_none_or(RemoteFilter::is_pass_all)
    }
}

impl<O: ?Sized> Clone for FilterSpec<O> {
    fn clone(&self) -> Self {
        FilterSpec {
            remote: self.remote.clone(),
            local: self.local.clone(),
        }
    }
}

impl<O: ?Sized> Default for FilterSpec<O> {
    fn default() -> Self {
        FilterSpec::accept_all()
    }
}

impl<O: ?Sized> fmt::Debug for FilterSpec<O> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("FilterSpec")
            .field("remote", &self.remote)
            .field("local", &self.local.as_ref().map(|_| "<closure>"))
            .finish()
    }
}

impl<O: ?Sized> From<RemoteFilter> for FilterSpec<O> {
    fn from(filter: RemoteFilter) -> Self {
        FilterSpec::remote(filter)
    }
}

impl<O: ?Sized> From<Expr> for FilterSpec<O> {
    fn from(expr: Expr) -> Self {
        FilterSpec::remote(expr.into_filter())
    }
}
