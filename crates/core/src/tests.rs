use std::sync::atomic::{AtomicU32, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

use psc_filter::rfilter;
use psc_obvent::builtin;

use crate::{obvent, publish, subscribe, Domain, FilterSpec, PublishError, SubscribeError, UnsubscribeError};

obvent! {
    /// Fig. 2 base class.
    pub class StockObvent {
        company: String,
        price: f64,
        amount: u32,
    }
}

obvent! {
    pub class StockQuote extends StockObvent {}
}

obvent! {
    pub class StockRequest extends StockObvent {
        broker: String,
    }
}

fn quote(company: &str, price: f64, amount: u32) -> StockQuote {
    StockQuote::new(StockObvent::new(company.into(), price, amount))
}

fn counter_sub<O: psc_obvent::Obvent>(
    domain: &Domain,
    filter: FilterSpec<O>,
) -> (crate::Subscription, Arc<AtomicU32>) {
    let count = Arc::new(AtomicU32::new(0));
    let c = count.clone();
    let sub = domain.subscribe(filter, move |_o: O| {
        c.fetch_add(1, Ordering::SeqCst);
    });
    (sub, count)
}

mod primitives {
    use super::*;

    #[test]
    fn paper_section_2_3_3_example() {
        // "an interest in all stock quotes of the Telco group with a price
        // less than 100$"
        let domain = Domain::in_process();
        let offers = Arc::new(Mutex::new(Vec::new()));
        let sink = offers.clone();
        let s = subscribe!(domain, (q: StockQuote)
            where { price < 100.0 && company contains "Telco" }
            => {
                sink.lock().unwrap().push(*q.price());
            });
        s.activate().unwrap();

        publish!(domain, quote("Telco Mobiles", 80.0, 10)).unwrap();
        publish!(domain, quote("Telco Mobiles", 130.0, 10)).unwrap();
        publish!(domain, quote("Banco", 70.0, 10)).unwrap();
        domain.drain();
        assert_eq!(*offers.lock().unwrap(), vec![80.0]);
    }

    #[test]
    fn subscribe_without_filter_receives_everything() {
        let domain = Domain::in_process();
        let (s, count) = counter_sub::<StockQuote>(&domain, FilterSpec::accept_all());
        s.activate().unwrap();
        for i in 0..5 {
            publish!(domain, quote("X", i as f64, 1)).unwrap();
        }
        domain.drain();
        assert_eq!(count.load(Ordering::SeqCst), 5);
    }

    #[test]
    fn local_filters_run_subscriber_side() {
        let domain = Domain::in_process();
        let hits = Arc::new(AtomicU32::new(0));
        let h = hits.clone();
        // A filter the rfilter! grammar cannot express: non-constant logic.
        let s = subscribe!(domain, (q: StockQuote)
            where local |q: &StockQuote| q.company().len().is_multiple_of(2)
            => {
                let _ = q;
                h.fetch_add(1, Ordering::SeqCst);
            });
        s.activate().unwrap();
        publish!(domain, quote("ab", 1.0, 1)).unwrap(); // len 2: pass
        publish!(domain, quote("abc", 1.0, 1)).unwrap(); // len 3: reject
        domain.drain();
        assert_eq!(hits.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn remote_and_local_filters_compose() {
        let domain = Domain::in_process();
        let (s, count) = counter_sub::<StockQuote>(
            &domain,
            FilterSpec::remote(rfilter!(price < 100.0))
                .and_local(|q: &StockQuote| q.company().starts_with('T')),
        );
        s.activate().unwrap();
        publish!(domain, quote("Telco", 50.0, 1)).unwrap(); // both pass
        publish!(domain, quote("Telco", 150.0, 1)).unwrap(); // remote fails
        publish!(domain, quote("Banco", 50.0, 1)).unwrap(); // local fails
        domain.drain();
        assert_eq!(count.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn handler_receives_owned_clone_per_delivery() {
        // §2.1.2 local uniqueness: two notifiables in the same address
        // space each get their own copy.
        let domain = Domain::in_process();
        let seen1 = Arc::new(Mutex::new(Vec::new()));
        let seen2 = Arc::new(Mutex::new(Vec::new()));
        let (c1, c2) = (seen1.clone(), seen2.clone());
        let s1 = domain.subscribe(FilterSpec::accept_all(), move |q: StockQuote| {
            c1.lock().unwrap().push(q); // takes ownership — it's a clone
        });
        let s2 = domain.subscribe(FilterSpec::accept_all(), move |q: StockQuote| {
            c2.lock().unwrap().push(q);
        });
        s1.activate().unwrap();
        s2.activate().unwrap();
        publish!(domain, quote("T", 1.0, 1)).unwrap();
        domain.drain();
        assert_eq!(seen1.lock().unwrap().len(), 1);
        assert_eq!(seen2.lock().unwrap().len(), 1);
        // Republish: new copies again.
        publish!(domain, quote("T", 1.0, 1)).unwrap();
        domain.drain();
        assert_eq!(seen1.lock().unwrap().len(), 2);
    }
}

mod type_based_dispatch {
    use super::*;

    #[test]
    fn supertype_subscription_receives_subtypes() {
        // Fig. 1: subscribing to StockObvent captures quotes and requests.
        let domain = Domain::in_process();
        let kinds = Arc::new(Mutex::new(Vec::new()));
        let sink = kinds.clone();
        let s = domain.subscribe(FilterSpec::accept_all(), move |o: StockObvent| {
            sink.lock().unwrap().push(o.company().clone());
        });
        s.activate().unwrap();
        publish!(domain, quote("FromQuote", 1.0, 1)).unwrap();
        publish!(
            domain,
            StockRequest::new(StockObvent::new("FromRequest".into(), 2.0, 2), "bob".into())
        )
        .unwrap();
        publish!(domain, StockObvent::new("FromBase".into(), 3.0, 3)).unwrap();
        domain.drain();
        let got = kinds.lock().unwrap().clone();
        assert_eq!(got.len(), 3);
        assert!(got.contains(&"FromQuote".to_string()));
        assert!(got.contains(&"FromRequest".to_string()));
    }

    #[test]
    fn sibling_subscription_does_not_receive() {
        let domain = Domain::in_process();
        let (s, count) = counter_sub::<StockRequest>(&domain, FilterSpec::accept_all());
        s.activate().unwrap();
        publish!(domain, quote("T", 1.0, 1)).unwrap();
        domain.drain();
        assert_eq!(count.load(Ordering::SeqCst), 0);
    }

    #[test]
    fn filters_apply_to_inherited_properties() {
        let domain = Domain::in_process();
        let (s, count) = counter_sub::<StockRequest>(
            &domain,
            FilterSpec::remote(rfilter!(price > 10.0 && broker == "alice")),
        );
        s.activate().unwrap();
        publish!(
            domain,
            StockRequest::new(StockObvent::new("X".into(), 20.0, 1), "alice".into())
        )
        .unwrap();
        publish!(
            domain,
            StockRequest::new(StockObvent::new("X".into(), 20.0, 1), "bob".into())
        )
        .unwrap();
        domain.drain();
        assert_eq!(count.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn view_subscription_to_interface_kind() {
        obvent! {
            pub class ReliableAlert implements [psc_obvent::builtin::Reliable] {
                message: String,
            }
        }
        let domain = Domain::in_process();
        let seen = Arc::new(Mutex::new(Vec::new()));
        let sink = seen.clone();
        let s = domain.subscribe_view(
            builtin::reliable_kind(),
            FilterSpec::accept_all(),
            move |view| {
                sink.lock().unwrap().push(view.string_at("message").unwrap());
            },
        );
        s.activate().unwrap();
        publish!(domain, ReliableAlert::new("disk full".into())).unwrap();
        publish!(domain, quote("NotReliable", 1.0, 1)).unwrap();
        domain.drain();
        assert_eq!(*seen.lock().unwrap(), vec!["disk full".to_string()]);
    }

    #[test]
    fn view_subscription_with_remote_filter() {
        let domain = Domain::in_process();
        let count = Arc::new(AtomicU32::new(0));
        let c = count.clone();
        let s = domain.subscribe_view(
            StockObvent::kind(),
            FilterSpec::remote(rfilter!(price >= 5.0)),
            move |_view| {
                c.fetch_add(1, Ordering::SeqCst);
            },
        );
        s.activate().unwrap();
        publish!(domain, quote("A", 10.0, 1)).unwrap();
        publish!(domain, quote("B", 1.0, 1)).unwrap();
        domain.drain();
        assert_eq!(count.load(Ordering::SeqCst), 1);
    }
}

mod handles {
    use super::*;

    #[test]
    fn activation_lifecycle_matches_paper_semantics() {
        let domain = Domain::in_process();
        let (s, count) = counter_sub::<StockQuote>(&domain, FilterSpec::accept_all());

        // Inactive until activate(): no deliveries.
        publish!(domain, quote("T", 1.0, 1)).unwrap();
        domain.drain();
        assert_eq!(count.load(Ordering::SeqCst), 0);
        assert!(!s.is_active());

        s.activate().unwrap();
        assert!(s.is_active());
        // Double activation: CannotSubscribe.
        assert_eq!(s.activate(), Err(SubscribeError::AlreadyActive));

        publish!(domain, quote("T", 1.0, 1)).unwrap();
        domain.drain();
        assert_eq!(count.load(Ordering::SeqCst), 1);

        s.deactivate().unwrap();
        assert!(!s.is_active());
        // Double deactivation: CannotUnsubscribe.
        assert_eq!(s.deactivate(), Err(UnsubscribeError::NotActive));

        // "interleavingly performed an unlimited number of times" (§3.4.2).
        s.activate().unwrap();
        publish!(domain, quote("T", 1.0, 1)).unwrap();
        domain.drain();
        assert_eq!(count.load(Ordering::SeqCst), 2);
    }

    #[test]
    fn durable_ids_are_exclusive_while_active() {
        let domain = Domain::in_process();
        let (s1, _c1) = counter_sub::<StockQuote>(&domain, FilterSpec::accept_all());
        let (s2, _c2) = counter_sub::<StockQuote>(&domain, FilterSpec::accept_all());
        s1.activate_with_id(77).unwrap();
        assert_eq!(s2.activate_with_id(77), Err(SubscribeError::DurableIdInUse(77)));
        s1.deactivate().unwrap();
        s2.activate_with_id(77).unwrap();
    }

    #[test]
    fn dropping_the_handle_unsubscribes() {
        let domain = Domain::in_process();
        let (s, count) = counter_sub::<StockQuote>(&domain, FilterSpec::accept_all());
        s.activate().unwrap();
        assert_eq!(domain.active_subscriptions(), 1);
        drop(s);
        assert_eq!(domain.active_subscriptions(), 0);
        publish!(domain, quote("T", 1.0, 1)).unwrap();
        domain.drain();
        assert_eq!(count.load(Ordering::SeqCst), 0);
    }

    #[test]
    fn detach_keeps_the_subscription() {
        let domain = Domain::in_process();
        let (s, count) = counter_sub::<StockQuote>(&domain, FilterSpec::accept_all());
        s.activate().unwrap();
        s.detach();
        publish!(domain, quote("T", 1.0, 1)).unwrap();
        domain.drain();
        assert_eq!(count.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn deactivation_from_inside_a_handler_is_possible() {
        // §3.4.2: "subscriptions can be cancelled also from inside a
        // subscription" — the handle lives outside the handler's block.
        let domain = Domain::in_process();
        let slot: Arc<Mutex<Option<crate::Subscription>>> = Arc::new(Mutex::new(None));
        let slot2 = slot.clone();
        let count = Arc::new(AtomicU32::new(0));
        let c = count.clone();
        let s = domain.subscribe(FilterSpec::accept_all(), move |_q: StockQuote| {
            c.fetch_add(1, Ordering::SeqCst);
            // First event supersedes all following ones: unsubscribe.
            if let Some(handle) = slot2.lock().unwrap().as_ref() {
                let _ = handle.deactivate();
            }
        });
        s.activate().unwrap();
        *slot.lock().unwrap() = Some(s);
        publish!(domain, quote("T", 1.0, 1)).unwrap();
        domain.drain();
        publish!(domain, quote("T", 2.0, 1)).unwrap();
        domain.drain();
        assert_eq!(count.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn closed_domain_rejects_operations() {
        let domain = Domain::in_process();
        let (s, _count) = counter_sub::<StockQuote>(&domain, FilterSpec::accept_all());
        domain.close();
        assert_eq!(
            publish!(domain, quote("T", 1.0, 1)),
            Err(PublishError::DomainClosed)
        );
        assert_eq!(s.activate(), Err(SubscribeError::DomainClosed));
    }
}

mod adapters {
    use super::*;

    #[test]
    fn generated_adapter_mirrors_fig6() {
        let domain = Domain::in_process();
        let count = Arc::new(AtomicU32::new(0));
        let c = count.clone();
        let s = StockQuoteAdapter::subscribe(
            &domain,
            FilterSpec::remote(rfilter!(amount >= 5)),
            move |_q| {
                c.fetch_add(1, Ordering::SeqCst);
            },
        );
        s.activate().unwrap();
        StockQuoteAdapter::publish(&domain, quote("T", 1.0, 10)).unwrap();
        StockQuoteAdapter::publish(&domain, quote("T", 1.0, 1)).unwrap();
        domain.drain();
        assert_eq!(count.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn subscribe_all_shorthand() {
        let domain = Domain::in_process();
        let count = Arc::new(AtomicU32::new(0));
        let c = count.clone();
        let s = StockObventAdapter::subscribe_all(&domain, move |_o| {
            c.fetch_add(1, Ordering::SeqCst);
        });
        s.activate().unwrap();
        publish!(domain, quote("T", 1.0, 1)).unwrap();
        domain.drain();
        assert_eq!(count.load(Ordering::SeqCst), 1);
    }
}

mod thread_policies {
    use super::*;
    use std::time::Duration;

    /// Measures the peak number of concurrently running handler
    /// executions for the given policy setup.
    fn peak_concurrency(configure: impl Fn(&crate::Subscription), events: u32) -> usize {
        let domain = Domain::in_process_pooled(8);
        let current = Arc::new(AtomicUsize::new(0));
        let peak = Arc::new(AtomicUsize::new(0));
        let (cur, pk) = (current.clone(), peak.clone());
        let s = domain.subscribe(FilterSpec::accept_all(), move |_q: StockQuote| {
            let now = cur.fetch_add(1, Ordering::SeqCst) + 1;
            pk.fetch_max(now, Ordering::SeqCst);
            std::thread::sleep(Duration::from_millis(5));
            cur.fetch_sub(1, Ordering::SeqCst);
        });
        configure(&s);
        s.activate().unwrap();
        for i in 0..events {
            publish!(domain, quote("T", i as f64, 1)).unwrap();
        }
        domain.drain();
        peak.load(Ordering::SeqCst)
    }

    #[test]
    fn multi_threading_is_the_default_and_runs_concurrently() {
        let peak = peak_concurrency(|_s| {}, 8);
        assert!(peak > 1, "default policy should be concurrent, peak {peak}");
    }

    #[test]
    fn single_threading_serializes_the_handler() {
        let peak = peak_concurrency(|s| s.set_single_threading(), 8);
        assert_eq!(peak, 1);
    }

    #[test]
    fn bounded_policy_caps_concurrency() {
        let peak = peak_concurrency(|s| s.set_multi_threading(2), 12);
        assert!(peak <= 2, "bounded(2) exceeded: {peak}");
        assert!(peak >= 1);
    }

    #[test]
    fn policies_are_per_subscription() {
        let domain = Domain::in_process_pooled(8);
        let single_peak = Arc::new(AtomicUsize::new(0));
        let multi_peak = Arc::new(AtomicUsize::new(0));

        let make = |peak: Arc<AtomicUsize>| {
            let current = Arc::new(AtomicUsize::new(0));
            move |_q: StockQuote| {
                let now = current.fetch_add(1, Ordering::SeqCst) + 1;
                peak.fetch_max(now, Ordering::SeqCst);
                std::thread::sleep(Duration::from_millis(5));
                current.fetch_sub(1, Ordering::SeqCst);
            }
        };
        let s1 = domain.subscribe(FilterSpec::accept_all(), make(single_peak.clone()));
        let s2 = domain.subscribe(FilterSpec::accept_all(), make(multi_peak.clone()));
        s1.set_single_threading();
        s1.activate().unwrap();
        s2.activate().unwrap();
        for i in 0..8 {
            publish!(domain, quote("T", i as f64, 1)).unwrap();
        }
        domain.drain();
        assert_eq!(single_peak.load(Ordering::SeqCst), 1);
        assert!(multi_peak.load(Ordering::SeqCst) > 1);
    }
}

mod obvents_publishing_obvents {
    use super::*;

    #[test]
    fn handlers_may_publish_further_obvents() {
        // §5.3: "How about an obvent publishing obvents …? The former case
        // does not bear any particular dangers."
        let domain = Domain::in_process_pooled(2);
        let relayed = Arc::new(AtomicU32::new(0));
        let r = relayed.clone();
        let d2 = domain.clone();
        let s1 = domain.subscribe(FilterSpec::remote(rfilter!(price >= 100.0)), move |q: StockQuote| {
            // Re-publish a derived, cheaper quote.
            let cheaper = StockQuote::new(StockObvent::new(
                q.company().clone(),
                q.price() / 2.0,
                *q.amount(),
            ));
            let _ = d2.publish(cheaper);
        });
        let s2 = domain.subscribe(FilterSpec::remote(rfilter!(price < 100.0)), move |_q: StockQuote| {
            r.fetch_add(1, Ordering::SeqCst);
        });
        s1.activate().unwrap();
        s2.activate().unwrap();
        publish!(domain, quote("T", 120.0, 1)).unwrap();
        // Wait for the cascade (pool mode).
        for _ in 0..200 {
            if relayed.load(Ordering::SeqCst) == 1 {
                break;
            }
            std::thread::sleep(std::time::Duration::from_millis(2));
        }
        assert_eq!(relayed.load(Ordering::SeqCst), 1);
    }
}

mod routing_property {
    use super::*;
    use proptest::prelude::*;
    use psc_filter::{CmpOp, Predicate, RemoteFilter};
    use psc_obvent::Obvent;

    fn arb_filter() -> impl Strategy<Value = RemoteFilter> {
        let pred = (
            prop_oneof![Just("price"), Just("amount"), Just("company")],
            prop_oneof![
                Just(CmpOp::Lt),
                Just(CmpOp::Ge),
                Just(CmpOp::Eq),
                Just(CmpOp::Contains),
            ],
            prop_oneof![
                (0.0f64..100.0).prop_map(psc_filter::Value::from),
                (0u32..100).prop_map(psc_filter::Value::from),
                "[a-c]{0,2}".prop_map(psc_filter::Value::from),
            ],
        )
            .prop_map(|(path, op, operand)| Predicate::new(path, op, operand));
        proptest::collection::vec(pred, 0..3).prop_map(RemoteFilter::conjunction)
    }

    fn arb_quote() -> impl Strategy<Value = StockQuote> {
        ("[a-c]{0,3}", 0.0f64..120.0, 0u32..120).prop_map(|(company, price, amount)| {
            StockQuote::new(StockObvent::new(company, price, amount))
        })
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]

        /// End-to-end routing oracle: for arbitrary remote filters and
        /// obvents, what the Domain delivers equals direct filter
        /// evaluation over the obvent's properties.
        #[test]
        fn prop_domain_routing_matches_direct_evaluation(
            filters in proptest::collection::vec(arb_filter(), 1..5),
            quotes in proptest::collection::vec(arb_quote(), 1..6),
        ) {
            let domain = Domain::in_process();
            let counters: Vec<Arc<AtomicU32>> = filters
                .iter()
                .map(|filter| {
                    let count = Arc::new(AtomicU32::new(0));
                    let c = count.clone();
                    let sub = domain.subscribe(
                        FilterSpec::remote(filter.clone()),
                        move |_q: StockQuote| {
                            c.fetch_add(1, Ordering::SeqCst);
                        },
                    );
                    sub.activate().unwrap();
                    sub.detach();
                    count
                })
                .collect();
            for q in &quotes {
                domain.publish(q.clone()).unwrap();
            }
            domain.drain();
            for (filter, counter) in filters.iter().zip(&counters) {
                let expected = quotes
                    .iter()
                    .filter(|q| filter.matches(&q.properties()))
                    .count() as u32;
                prop_assert_eq!(
                    counter.load(Ordering::SeqCst),
                    expected,
                    "filter {} diverged",
                    filter
                );
            }
        }
    }
}

mod concurrency_smoke {
    use super::*;

    /// Publishing from many threads concurrently must deliver everything
    /// exactly once per subscription.
    #[test]
    fn concurrent_publishers_are_safe() {
        let domain = Domain::in_process_pooled(4);
        let (sub, count) = counter_sub::<StockQuote>(&domain, FilterSpec::accept_all());
        sub.activate().unwrap();
        let threads: Vec<_> = (0..4)
            .map(|t| {
                let domain = domain.clone();
                std::thread::spawn(move || {
                    for i in 0..50 {
                        domain
                            .publish(quote(&format!("c{t}"), i as f64, 1))
                            .unwrap();
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        domain.drain();
        assert_eq!(count.load(Ordering::SeqCst), 200);
    }

    /// Subscribing and unsubscribing while publishes are in flight must not
    /// deadlock or double-deliver after deactivation completes.
    #[test]
    fn subscription_churn_under_load() {
        let domain = Domain::in_process_pooled(4);
        let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
        let publisher = {
            let domain = domain.clone();
            let stop = stop.clone();
            std::thread::spawn(move || {
                let mut n = 0u64;
                // Publish a minimum batch even if the churn loop finishes
                // first, so the test always overlaps load with churn.
                while !stop.load(Ordering::SeqCst) || n < 100 {
                    let _ = domain.publish(quote("churn", n as f64, 1));
                    n += 1;
                }
                n
            })
        };
        for _ in 0..50 {
            let (sub, _count) = counter_sub::<StockQuote>(&domain, FilterSpec::accept_all());
            sub.activate().unwrap();
            sub.deactivate().unwrap();
            drop(sub);
        }
        stop.store(true, Ordering::SeqCst);
        let published = publisher.join().unwrap();
        domain.drain();
        assert!(published > 0);
        assert_eq!(domain.active_subscriptions(), 0);
    }
}
