//! The [`Subscription`] handle (paper Fig. 3).
//!
//! "A subscription handle is returned by a subscription expression. It gives
//! the possibility to identify a subscription, activate and deactivate it"
//! (§2.3.2). Activation and deactivation can be interleaved any number of
//! times; double activation/deactivation raises the corresponding error
//! (§3.4.2); the `activate(long)` variant attaches a durable identity for
//! certified subscriptions whose lifetime exceeds the hosting process
//! (§3.4.1).

use std::sync::Weak;

use crate::domain::{DomainInner, SubId};
use crate::error::{SubscribeError, UnsubscribeError};
use crate::executor::ThreadPolicy;

/// Handle to one subscription. Dropping the handle removes the
/// subscription entirely (deactivating it if needed) — the Rust analogue of
/// the handle going unreachable.
#[derive(Debug)]
pub struct Subscription {
    domain: Weak<DomainInner>,
    id: SubId,
    /// Keep the subscription alive in the domain after this handle drops.
    detached: bool,
}

impl Subscription {
    pub(crate) fn new(domain: Weak<DomainInner>, id: SubId) -> Self {
        Subscription {
            domain,
            id,
            detached: false,
        }
    }

    /// The subscription's id within its domain.
    pub fn id(&self) -> SubId {
        self.id
    }

    /// Activates the subscription: the effective action of subscribing.
    ///
    /// # Errors
    ///
    /// [`SubscribeError::AlreadyActive`] on double activation; fabric
    /// errors; [`SubscribeError::DomainClosed`] when the domain is gone.
    pub fn activate(&self) -> Result<(), SubscribeError> {
        let domain = self.domain.upgrade().ok_or(SubscribeError::DomainClosed)?;
        domain.activate(self.id, None)
    }

    /// Activates with a durable identity — the paper's `activate(long id)`,
    /// "used in combination with certified events" (§3.4.1): after a crash,
    /// re-subscribing with the same id resumes the old subscription.
    ///
    /// # Errors
    ///
    /// As [`Subscription::activate`], plus
    /// [`SubscribeError::DurableIdInUse`] if another active subscription
    /// holds the id.
    pub fn activate_with_id(&self, durable_id: u64) -> Result<(), SubscribeError> {
        let domain = self.domain.upgrade().ok_or(SubscribeError::DomainClosed)?;
        domain.activate(self.id, Some(durable_id))
    }

    /// Deactivates the subscription: the action of unsubscribing. The
    /// handle can be activated again later.
    ///
    /// # Errors
    ///
    /// [`UnsubscribeError::NotActive`] on double deactivation; fabric
    /// errors; [`UnsubscribeError::DomainClosed`] when the domain is gone.
    pub fn deactivate(&self) -> Result<(), UnsubscribeError> {
        let domain = self.domain.upgrade().ok_or(UnsubscribeError::DomainClosed)?;
        domain.deactivate(self.id)
    }

    /// True while the subscription is active.
    pub fn is_active(&self) -> bool {
        self.domain
            .upgrade()
            .is_some_and(|domain| domain.is_active(self.id))
    }

    /// Requests single-threaded handler execution: "a handler never
    /// processes more than one obvent at a time" (§3.3.5).
    pub fn set_single_threading(&self) {
        self.set_policy(ThreadPolicy::Single);
    }

    /// Requests multi-threaded handler execution bounded by `max_nb`
    /// concurrent invocations (Fig. 3's `setMultiThreading(int maxNb)`).
    pub fn set_multi_threading(&self, max_nb: usize) {
        self.set_policy(ThreadPolicy::Bounded(max_nb));
    }

    /// Sets the thread policy directly.
    pub fn set_policy(&self, policy: ThreadPolicy) {
        if let Some(domain) = self.domain.upgrade() {
            domain.set_policy(self.id, policy);
        }
    }

    /// Detaches the handle: the subscription stays in the domain for the
    /// domain's lifetime even after this handle is dropped (for
    /// subscriptions installed at startup and never managed again).
    pub fn detach(mut self) {
        self.detached = true;
    }
}

impl Drop for Subscription {
    fn drop(&mut self) {
        if self.detached {
            return;
        }
        if let Some(domain) = self.domain.upgrade() {
            if domain.is_active(self.id) {
                let _ = domain.deactivate(self.id);
            }
            domain.drop_subscription(self.id);
        }
    }
}
