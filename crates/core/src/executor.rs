//! Handler execution and thread policies (paper §3.3.5).
//!
//! "Multi-threading: a handler can be executed concurrently for any number
//! of obvents. These semantics are assumed by default … Single-threading: a
//! handler never processes more than one obvent at a time." Policies attach
//! to the subscription handle (`setSingleThreading` / `setMultiThreading`,
//! Fig. 3) and are enforced here: each subscription owns a queue with a
//! concurrency bound; a shared worker pool drains the queues.
//!
//! Two execution modes exist because the workspace has two runtimes: the
//! deterministic simulator needs inline (same-thread) execution, while live
//! examples use the pool.

use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use crossbeam::channel::{unbounded, Receiver, Sender};
use parking_lot::Mutex;
use psc_telemetry::{Gauge, Registry};

use crate::domain::SubId;

/// Concurrency policy of one subscription's handler (paper §3.3.5).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ThreadPolicy {
    /// Any number of concurrent handler executions (the default).
    Multi,
    /// At most `max` concurrent executions.
    Bounded(usize),
    /// At most one execution at a time.
    Single,
}

impl ThreadPolicy {
    fn limit(self) -> usize {
        match self {
            ThreadPolicy::Multi => usize::MAX,
            ThreadPolicy::Bounded(max) => max.max(1),
            ThreadPolicy::Single => 1,
        }
    }
}

/// How a domain runs handlers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExecMode {
    /// Run handlers synchronously on the delivering thread (used inside the
    /// deterministic simulator; thread policies are trivially satisfied).
    Inline,
    /// Run handlers on a pool of `threads` workers, honouring per-
    /// subscription thread policies.
    Pool {
        /// Number of worker threads.
        threads: usize,
    },
}

type Job = Box<dyn FnOnce() + Send>;

#[derive(Default)]
struct SubQueue {
    running: usize,
    pending: VecDeque<Job>,
    policy_limit: usize,
}

/// Executor gauges: thread-policy backlog (`core.exec.queue_depth`, jobs
/// held back by a policy limit) and total in-flight work
/// (`core.exec.in_flight`). Noop until a registry is attached.
#[derive(Clone)]
struct ExecGauges {
    queue_depth: Gauge,
    in_flight: Gauge,
}

impl Default for ExecGauges {
    fn default() -> Self {
        ExecGauges {
            queue_depth: Gauge::noop(),
            in_flight: Gauge::noop(),
        }
    }
}

pub(crate) struct Executor {
    mode: ExecMode,
    queues: Arc<Mutex<HashMap<SubId, SubQueue>>>,
    injector: Option<Sender<Job>>,
    workers: Vec<std::thread::JoinHandle<()>>,
    in_flight: Arc<AtomicUsize>,
    gauges: Arc<Mutex<ExecGauges>>,
}

impl Executor {
    pub(crate) fn new(mode: ExecMode) -> Self {
        let queues = Arc::new(Mutex::new(HashMap::new()));
        let in_flight = Arc::new(AtomicUsize::new(0));
        let (injector, workers) = match mode {
            ExecMode::Inline => (None, Vec::new()),
            ExecMode::Pool { threads } => {
                let (tx, rx): (Sender<Job>, Receiver<Job>) = unbounded();
                let workers = (0..threads.max(1))
                    .map(|i| {
                        let rx = rx.clone();
                        std::thread::Builder::new()
                            .name(format!("pubsub-worker-{i}"))
                            .spawn(move || {
                                while let Ok(job) = rx.recv() {
                                    job();
                                }
                            })
                            .expect("spawn pubsub worker")
                    })
                    .collect();
                (Some(tx), workers)
            }
        };
        Executor {
            mode,
            queues,
            injector,
            workers,
            in_flight,
            gauges: Arc::new(Mutex::new(ExecGauges::default())),
        }
    }

    /// Swaps in live gauges recording into `registry`.
    pub(crate) fn attach_telemetry(&self, registry: &Registry) {
        *self.gauges.lock() = ExecGauges {
            queue_depth: registry.gauge("core.exec.queue_depth"),
            in_flight: registry.gauge("core.exec.in_flight"),
        };
    }

    pub(crate) fn set_policy(&self, sub: SubId, policy: ThreadPolicy) {
        let mut queues = self.queues.lock();
        queues.entry(sub).or_insert_with(|| SubQueue {
            policy_limit: ThreadPolicy::Multi.limit(),
            ..SubQueue::default()
        });
        queues.get_mut(&sub).expect("just inserted").policy_limit = policy.limit();
    }

    pub(crate) fn remove_sub(&self, sub: SubId) {
        self.queues.lock().remove(&sub);
    }

    /// Submits one handler execution for `sub`.
    pub(crate) fn submit(&self, sub: SubId, job: impl FnOnce() + Send + 'static) {
        match self.mode {
            ExecMode::Inline => job(),
            ExecMode::Pool { .. } => {
                let injector = self.injector.as_ref().expect("pool mode has injector");
                let mut queues = self.queues.lock();
                let queue = queues.entry(sub).or_insert_with(|| SubQueue {
                    policy_limit: ThreadPolicy::Multi.limit(),
                    ..SubQueue::default()
                });
                if queue.running < queue.policy_limit {
                    queue.running += 1;
                    drop(queues);
                    self.in_flight.fetch_add(1, Ordering::SeqCst);
                    self.gauges.lock().in_flight.add(1);
                    let wrapped = self.wrap(sub, Box::new(job));
                    let _ = injector.send(wrapped);
                } else {
                    queue.pending.push_back(Box::new(job));
                    // Account queued-but-not-running work so `drain` waits
                    // for it too.
                    self.in_flight.fetch_add(1, Ordering::SeqCst);
                    let gauges = self.gauges.lock();
                    gauges.in_flight.add(1);
                    gauges.queue_depth.add(1);
                }
            }
        }
    }

    /// Wraps a job so that, on completion, the subscription's queue is
    /// re-examined (continuation scheduling).
    fn wrap(&self, sub: SubId, job: Job) -> Job {
        rewrap(
            sub,
            job,
            Arc::clone(&self.queues),
            self.injector.clone().expect("pool mode has injector"),
            Arc::clone(&self.in_flight),
            Arc::clone(&self.gauges),
        )
    }

    /// Number of submitted-but-not-finished handler executions.
    pub(crate) fn in_flight(&self) -> usize {
        self.in_flight.load(Ordering::SeqCst)
    }

    /// Blocks until all submitted handlers have run (pool mode); immediate
    /// in inline mode.
    pub(crate) fn drain(&self) {
        while self.in_flight() > 0 {
            std::thread::yield_now();
        }
    }
}

/// Wraps a job so that, on completion, the subscription's queue is
/// re-examined (continuation scheduling). Free function because worker
/// continuations have no `&Executor`.
fn rewrap(
    sub: SubId,
    job: Job,
    queues: Arc<Mutex<HashMap<SubId, SubQueue>>>,
    injector: Sender<Job>,
    in_flight: Arc<AtomicUsize>,
    gauges: Arc<Mutex<ExecGauges>>,
) -> Job {
    Box::new(move || {
        job();
        in_flight.fetch_sub(1, Ordering::SeqCst);
        gauges.lock().in_flight.sub(1);
        let next = {
            let mut guard = queues.lock();
            match guard.get_mut(&sub) {
                Some(queue) => match queue.pending.pop_front() {
                    Some(next) => Some(next),
                    None => {
                        queue.running = queue.running.saturating_sub(1);
                        None
                    }
                },
                None => None,
            }
        };
        if let Some(next) = next {
            gauges.lock().queue_depth.sub(1);
            let rewrapped = rewrap(sub, next, queues, injector.clone(), in_flight, gauges);
            let _ = injector.send(rewrapped);
        }
    })
}

impl Drop for Executor {
    fn drop(&mut self) {
        // Disconnect the channel so workers exit, then join them.
        self.injector = None;
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

impl std::fmt::Debug for Executor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Executor")
            .field("mode", &self.mode)
            .field("in_flight", &self.in_flight())
            .finish()
    }
}
