//! The [`Domain`]: one address space's publish/subscribe endpoint.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Weak};

use parking_lot::RwLock;

use psc_filter::RemoteFilter;
use psc_obvent::{KindId, Obvent, ObventKind, ObventView, WireObvent};
use psc_telemetry::{Counter, Registry};

use crate::error::{PublishError, SubscribeError, UnsubscribeError};
use crate::executor::{ExecMode, Executor, ThreadPolicy};
use crate::spec::FilterSpec;
use crate::subscription::Subscription;

/// Identifier of a subscription within its domain.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SubId(pub u64);

/// What the dissemination fabric needs to know about an activated
/// subscription: its id, subscribed kind, the migratable filter part, and a
/// durable id for certified re-attachment (paper §3.4.1's
/// `activate(long id)`).
#[derive(Debug, Clone)]
pub struct SubscriptionRecord {
    /// Domain-local subscription id.
    pub id: SubId,
    /// Subscribed obvent kind (instances of subtypes match).
    pub kind: KindId,
    /// The migratable filter part, if any (may be factored/migrated by the
    /// fabric); the local closure part always runs subscriber-side.
    pub remote_filter: Option<RemoteFilter>,
    /// Durable identity for subscriptions outliving the process.
    pub durable_id: Option<u64>,
}

/// A pluggable distribution fabric behind a [`Domain`].
///
/// `pubsub-core` ships [`Loopback`]; `psc-dace` provides the networked
/// class-based dissemination. Implementations receive the domain's
/// [`DeliverySink`] at construction time and call
/// [`DeliverySink::deliver`] for every obvent that reaches this address
/// space.
pub trait Dissemination: Send + Sync {
    /// Disseminates a published obvent.
    ///
    /// # Errors
    ///
    /// Fabric-specific failures, surfaced as `CannotPublish`.
    fn publish(&self, wire: WireObvent) -> Result<(), PublishError>;

    /// Registers an activated subscription.
    ///
    /// # Errors
    ///
    /// Fabric-specific failures, surfaced as `CannotSubscribe`.
    fn subscribe(&self, record: SubscriptionRecord) -> Result<(), SubscribeError>;

    /// Withdraws a subscription.
    ///
    /// # Errors
    ///
    /// Fabric-specific failures, surfaced as `CannotUnsubscribe`.
    fn unsubscribe(&self, id: SubId) -> Result<(), UnsubscribeError>;
}

/// Erased decode + local-filter + handler pipeline.
type Dispatch = Arc<dyn Fn(&WireObvent) + Send + Sync>;

struct SubEntry {
    kind: KindId,
    remote_filter: Option<RemoteFilter>,
    dispatch: Dispatch,
    active: bool,
    durable_id: Option<u64>,
}

/// Telemetry handles of one domain; noop until
/// [`Domain::attach_telemetry`] swaps in live handles.
struct CoreMetrics {
    published: Counter,
    delivered: Counter,
    matched: Counter,
    subs_activated: Counter,
    subs_deactivated: Counter,
    subs_dropped: Counter,
}

impl Default for CoreMetrics {
    fn default() -> Self {
        CoreMetrics {
            published: Counter::noop(),
            delivered: Counter::noop(),
            matched: Counter::noop(),
            subs_activated: Counter::noop(),
            subs_deactivated: Counter::noop(),
            subs_dropped: Counter::noop(),
        }
    }
}

pub(crate) struct DomainInner {
    subs: RwLock<HashMap<SubId, SubEntry>>,
    next_id: AtomicU64,
    backend: RwLock<Option<Box<dyn Dissemination>>>,
    executor: Executor,
    delivered_count: AtomicU64,
    metrics: RwLock<CoreMetrics>,
}

/// One address space's pub/sub endpoint: create with
/// [`Domain::in_process`] (loopback fabric) or [`Domain::with_backend`]
/// (custom fabric, e.g. DACE). Cloning is cheap and shares the endpoint.
#[derive(Clone)]
pub struct Domain {
    inner: Arc<DomainInner>,
}

/// Handle the fabric uses to deliver obvents into a domain; holds the
/// domain weakly so fabrics don't keep dead domains alive.
#[derive(Clone)]
pub struct DeliverySink {
    inner: Weak<DomainInner>,
}

impl DeliverySink {
    /// Delivers an obvent to every matching active subscription of the
    /// domain. Returns the number of subscriptions that accepted it (0 when
    /// the domain is gone).
    pub fn deliver(&self, wire: &WireObvent) -> usize {
        match self.inner.upgrade() {
            Some(inner) => inner.deliver(wire),
            None => 0,
        }
    }

    /// True while the domain behind this sink is alive.
    pub fn is_alive(&self) -> bool {
        self.inner.strong_count() > 0
    }
}

impl std::fmt::Debug for DeliverySink {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DeliverySink")
            .field("alive", &self.is_alive())
            .finish()
    }
}

/// The in-process fabric: publishing delivers straight back into the same
/// domain. This is the degenerate single-address-space deployment the paper
/// uses to introduce the primitives before distribution enters the picture.
pub struct Loopback {
    sink: DeliverySink,
}

impl Dissemination for Loopback {
    fn publish(&self, wire: WireObvent) -> Result<(), PublishError> {
        self.sink.deliver(&wire);
        Ok(())
    }

    fn subscribe(&self, _record: SubscriptionRecord) -> Result<(), SubscribeError> {
        Ok(())
    }

    fn unsubscribe(&self, _id: SubId) -> Result<(), UnsubscribeError> {
        Ok(())
    }
}

impl Domain {
    /// Creates a domain over the in-process [`Loopback`] fabric with inline
    /// handler execution.
    pub fn in_process() -> Domain {
        Domain::with_backend(ExecMode::Inline, |sink| Box::new(Loopback { sink }))
    }

    /// Creates a domain over the in-process [`Loopback`] fabric with a
    /// worker pool of `threads` (for thread-policy semantics).
    pub fn in_process_pooled(threads: usize) -> Domain {
        Domain::with_backend(ExecMode::Pool { threads }, |sink| {
            Box::new(Loopback { sink })
        })
    }

    /// Creates a domain whose fabric is built by `make_backend`, which
    /// receives the domain's [`DeliverySink`].
    pub fn with_backend(
        mode: ExecMode,
        make_backend: impl FnOnce(DeliverySink) -> Box<dyn Dissemination>,
    ) -> Domain {
        let inner = Arc::new(DomainInner {
            subs: RwLock::new(HashMap::new()),
            next_id: AtomicU64::new(1),
            backend: RwLock::new(None),
            executor: Executor::new(mode),
            delivered_count: AtomicU64::new(0),
            metrics: RwLock::new(CoreMetrics::default()),
        });
        let sink = DeliverySink {
            inner: Arc::downgrade(&inner),
        };
        let backend = make_backend(sink);
        *inner.backend.write() = Some(backend);
        Domain { inner }
    }

    /// Connects the domain to a telemetry registry. Publish, delivery and
    /// subscription-lifecycle counters (`core.*`) plus the executor's
    /// thread-policy queue gauges (`core.exec.*`) record into `registry`
    /// from then on; without this call all instrumentation stays noop.
    pub fn attach_telemetry(&self, registry: &Registry) {
        *self.inner.metrics.write() = CoreMetrics {
            published: registry.counter("core.published"),
            delivered: registry.counter("core.delivered"),
            matched: registry.counter("core.matched"),
            subs_activated: registry.counter("core.subs.activated"),
            subs_deactivated: registry.counter("core.subs.deactivated"),
            subs_dropped: registry.counter("core.subs.dropped"),
        };
        self.inner.executor.attach_telemetry(registry);
    }

    /// A sink for delivering obvents into this domain (used by fabrics and
    /// tests).
    pub fn sink(&self) -> DeliverySink {
        DeliverySink {
            inner: Arc::downgrade(&self.inner),
        }
    }

    /// Publishes an obvent — the `publish o;` primitive (§3.2). The obvent
    /// is serialized once; every matching subscriber (local and, with a
    /// networked fabric, remote) receives a fresh clone.
    ///
    /// # Errors
    ///
    /// [`PublishError`] when encoding fails or the fabric rejects the
    /// obvent.
    pub fn publish<O: Obvent>(&self, obvent: O) -> Result<(), PublishError> {
        // Ensure the kind (and its decoder) is registered before the wire
        // obvent circulates.
        let _ = O::kind();
        let wire = WireObvent::encode(&obvent)?;
        self.publish_wire(wire)
    }

    /// Publishes an already-encoded obvent (relay paths).
    ///
    /// # Errors
    ///
    /// [`PublishError`] when the fabric rejects the obvent.
    pub fn publish_wire(&self, wire: WireObvent) -> Result<(), PublishError> {
        self.inner.metrics.read().published.inc();
        let backend = self.inner.backend.read();
        match backend.as_ref() {
            Some(backend) => backend.publish(wire),
            None => Err(PublishError::DomainClosed),
        }
    }

    /// Creates a subscription to obvent class `O` — the
    /// `subscribe (T t) {filter} {handler}` primitive (§3.3). The returned
    /// handle is **inactive**; call [`Subscription::activate`].
    ///
    /// The handler receives an owned, fresh clone per delivery (§2.1.2).
    pub fn subscribe<O: Obvent>(
        &self,
        filter: FilterSpec<O>,
        handler: impl Fn(O) + Send + Sync + 'static,
    ) -> Subscription {
        let kind = O::kind();
        let local = filter.local.clone();
        let dispatch: Dispatch = Arc::new(move |wire| {
            if let Ok(obvent) = wire.decode_as::<O>() {
                if local.as_ref().is_none_or(|f| f.eval(&obvent)) {
                    handler(obvent);
                }
            }
        });
        self.subscribe_erased(kind, filter.remote, dispatch)
    }

    /// Creates a subscription to an obvent **kind** (typically an
    /// interface, including the QoS markers), delivering dynamic
    /// [`ObventView`]s — the §5.5.1 reflection-style variant.
    pub fn subscribe_view(
        &self,
        kind: &'static ObventKind,
        filter: FilterSpec<ObventView>,
        handler: impl Fn(ObventView) + Send + Sync + 'static,
    ) -> Subscription {
        let local = filter.local.clone();
        let dispatch: Dispatch = Arc::new(move |wire| {
            if let Ok(view) = wire.view() {
                if local.as_ref().is_none_or(|f| f.eval(&view)) {
                    handler(view);
                }
            }
        });
        self.subscribe_erased(kind, filter.remote, dispatch)
    }

    fn subscribe_erased(
        &self,
        kind: &'static ObventKind,
        remote_filter: Option<RemoteFilter>,
        dispatch: Dispatch,
    ) -> Subscription {
        let id = SubId(self.inner.next_id.fetch_add(1, Ordering::SeqCst));
        let entry = SubEntry {
            kind: kind.id(),
            remote_filter,
            dispatch,
            active: false,
            durable_id: None,
        };
        self.inner.subs.write().insert(id, entry);
        Subscription::new(Arc::downgrade(&self.inner), id)
    }

    /// Blocks until all in-flight handler executions finish (pool mode);
    /// immediate with inline execution. Deterministic tests call this after
    /// publishing.
    pub fn drain(&self) {
        self.inner.executor.drain();
    }

    /// Total obvents delivered to handlers of this domain.
    pub fn delivered_count(&self) -> u64 {
        self.inner.delivered_count.load(Ordering::SeqCst)
    }

    /// Number of currently active subscriptions.
    pub fn active_subscriptions(&self) -> usize {
        self.inner.subs.read().values().filter(|e| e.active).count()
    }

    /// Shuts the domain down: deactivates everything and detaches the
    /// fabric. Publishing afterwards fails with
    /// [`PublishError::DomainClosed`].
    pub fn close(&self) {
        self.inner.subs.write().clear();
        *self.inner.backend.write() = None;
    }
}

impl std::fmt::Debug for Domain {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Domain")
            .field("subscriptions", &self.inner.subs.read().len())
            .field("delivered", &self.delivered_count())
            .finish()
    }
}

impl DomainInner {
    /// Core dispatch: kind conformance → remote filter → handler (which
    /// applies the local filter after decoding). Returns how many
    /// subscriptions matched.
    fn deliver(&self, wire: &WireObvent) -> usize {
        let mut matched = 0;
        // Lazily computed dynamic view shared by all remote filters.
        let mut view: Option<Option<ObventView>> = None;
        let subs = self.subs.read();
        let mut jobs: Vec<(SubId, Dispatch)> = Vec::new();
        for (&id, entry) in subs.iter() {
            if !entry.active {
                continue;
            }
            if !psc_obvent::registry::is_subtype(wire.kind_id(), entry.kind) {
                continue;
            }
            if let Some(filter) = &entry.remote_filter {
                let view = view.get_or_insert_with(|| wire.view().ok());
                match view {
                    Some(view) => {
                        if !filter.matches(view) {
                            continue;
                        }
                    }
                    // No decoder for this kind here: cannot evaluate the
                    // content filter, so the conservative choice is to
                    // deliver nothing.
                    None => continue,
                }
            }
            matched += 1;
            jobs.push((id, Arc::clone(&entry.dispatch)));
        }
        drop(subs);
        {
            let metrics = self.metrics.read();
            metrics.matched.add(matched as u64);
            metrics.delivered.add(jobs.len() as u64);
        }
        for (id, dispatch) in jobs {
            self.delivered_count.fetch_add(1, Ordering::SeqCst);
            let wire = wire.clone();
            self.executor.submit(id, move || dispatch(&wire));
        }
        matched
    }

    // ---- subscription handle operations ----

    pub(crate) fn activate(&self, id: SubId, durable_id: Option<u64>) -> Result<(), SubscribeError> {
        let record = {
            let mut subs = self.subs.write();
            if let Some(durable) = durable_id {
                let clash = subs
                    .iter()
                    .any(|(&other, e)| other != id && e.active && e.durable_id == Some(durable));
                if clash {
                    return Err(SubscribeError::DurableIdInUse(durable));
                }
            }
            let entry = subs.get_mut(&id).ok_or(SubscribeError::DomainClosed)?;
            if entry.active {
                return Err(SubscribeError::AlreadyActive);
            }
            entry.active = true;
            entry.durable_id = durable_id;
            SubscriptionRecord {
                id,
                kind: entry.kind,
                remote_filter: entry.remote_filter.clone(),
                durable_id,
            }
        };
        let backend = self.backend.read();
        let backend = backend.as_ref().ok_or(SubscribeError::DomainClosed)?;
        match backend.subscribe(record) {
            Ok(()) => {
                self.metrics.read().subs_activated.inc();
                Ok(())
            }
            Err(err) => {
                // Roll back the activation.
                if let Some(entry) = self.subs.write().get_mut(&id) {
                    entry.active = false;
                }
                Err(err)
            }
        }
    }

    pub(crate) fn deactivate(&self, id: SubId) -> Result<(), UnsubscribeError> {
        {
            let mut subs = self.subs.write();
            let entry = subs.get_mut(&id).ok_or(UnsubscribeError::DomainClosed)?;
            if !entry.active {
                return Err(UnsubscribeError::NotActive);
            }
            entry.active = false;
        }
        let backend = self.backend.read();
        let backend = backend.as_ref().ok_or(UnsubscribeError::DomainClosed)?;
        backend.unsubscribe(id)?;
        self.metrics.read().subs_deactivated.inc();
        Ok(())
    }

    pub(crate) fn is_active(&self, id: SubId) -> bool {
        self.subs.read().get(&id).is_some_and(|e| e.active)
    }

    pub(crate) fn set_policy(&self, id: SubId, policy: ThreadPolicy) {
        self.executor.set_policy(id, policy);
    }

    pub(crate) fn drop_subscription(&self, id: SubId) {
        if self.subs.write().remove(&id).is_some() {
            self.metrics.read().subs_dropped.inc();
        }
        self.executor.remove_sub(id);
    }
}
