//! The per-process RMI runtime: export table, registry, invocation plumbing
//! and distributed garbage collection.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use crossbeam::channel::{bounded, Sender};
use parking_lot::Mutex;
use serde::{Deserialize, Serialize};

use psc_simnet::inproc::{self, EndpointHandle, EndpointSender};
use psc_simnet::NodeId;

use crate::error::RmiError;

/// Identifier of an exported object within its runtime.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ObjectId(pub u64);

/// A location-independent remote object reference — serializable, so it can
/// travel **inside obvents** (the Fig. 8 collaboration).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct RemoteRefData {
    /// Hosting node.
    pub node: u64,
    /// Exported object id at that node.
    pub object: u64,
}

/// Distributed garbage-collection mode.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DgcMode {
    /// Classic Java-RMI reference counting: an object lives while any proxy
    /// holds a reference. A crashed proxy holder never sends `clean`, so
    /// the object leaks (paper §5.4.2).
    Strong,
    /// Lease-based references ([CNH99]): a reference expires after
    /// `ttl_ms` of the runtime's logical clock unless renewed; crashed
    /// holders stop renewing and the object is collected.
    Leases {
        /// Lease validity in logical milliseconds.
        ttl_ms: u64,
    },
}

#[derive(Debug, Serialize, Deserialize)]
enum RmiMsg {
    Call {
        call: u64,
        object: u64,
        method: String,
        args: Vec<u8>,
    },
    Reply {
        call: u64,
        result: Result<Vec<u8>, String>,
    },
    Dirty {
        object: u64,
    },
    Clean {
        object: u64,
    },
    Lookup {
        call: u64,
        name: String,
    },
    LookupReply {
        call: u64,
        found: Option<RemoteRefData>,
    },
}

type DispatchFn = Arc<dyn Fn(&str, &[u8]) -> Result<Vec<u8>, RmiError> + Send + Sync>;

struct Exported {
    dispatch: DispatchFn,
    /// Strong mode: outstanding remote references.
    refcount: u64,
    /// Lease mode: holder node → logical expiry (ms).
    leases: HashMap<u64, u64>,
    /// Pinned objects (e.g. registry-bound roots) are never collected.
    pinned: bool,
}

/// Reply channel of one in-flight remote call.
type CallReply = Sender<Result<Vec<u8>, String>>;

struct RtInner {
    node: NodeId,
    sender: EndpointSender,
    dgc: DgcMode,
    /// Logical clock for leases (ms); advanced by tests/hosts via
    /// [`RmiRuntime::tick`].
    clock_ms: AtomicU64,
    next_call: AtomicU64,
    next_object: AtomicU64,
    exported: Mutex<HashMap<u64, Exported>>,
    pending: Mutex<HashMap<u64, CallReply>>,
    pending_lookups: Mutex<HashMap<u64, Sender<Option<RemoteRefData>>>>,
    names: Mutex<HashMap<String, RemoteRefData>>,
    call_timeout: Duration,
}

/// A set of connected RMI runtimes (one per simulated process), built over
/// the in-process transport.
pub struct RmiNetwork {
    runtimes: Vec<RmiRuntime>,
}

impl RmiNetwork {
    /// Creates `n` connected runtimes with the given DGC mode.
    pub fn new(n: usize, dgc: DgcMode) -> RmiNetwork {
        let endpoints = inproc::network(n);
        let runtimes = endpoints
            .into_iter()
            .map(|ep| RmiRuntime::over_endpoint(ep, dgc))
            .collect();
        RmiNetwork { runtimes }
    }

    /// The runtimes, index = node id.
    pub fn runtimes(&self) -> &[RmiRuntime] {
        &self.runtimes
    }

    /// Takes ownership of the runtimes.
    pub fn into_runtimes(self) -> Vec<RmiRuntime> {
        self.runtimes
    }
}

/// One process's RMI runtime. Cloning shares the runtime.
#[derive(Clone)]
pub struct RmiRuntime {
    inner: Arc<RtInner>,
    // Keeps the receiver thread alive for the runtime's lifetime.
    _receiver: Arc<EndpointHandle>,
}

impl RmiRuntime {
    fn over_endpoint(endpoint: inproc::Endpoint, dgc: DgcMode) -> RmiRuntime {
        let node = endpoint.id();
        let inner_slot: Arc<Mutex<Option<Arc<RtInner>>>> = Arc::new(Mutex::new(None));
        let slot = Arc::clone(&inner_slot);
        let handle = endpoint.spawn_receiver(move |incoming| {
            let inner = slot.lock().clone();
            if let Some(inner) = inner {
                inner.handle(incoming.from, &incoming.payload);
            }
        });
        let inner = Arc::new(RtInner {
            node,
            sender: handle.sender(),
            dgc,
            clock_ms: AtomicU64::new(0),
            next_call: AtomicU64::new(1),
            next_object: AtomicU64::new(1),
            exported: Mutex::new(HashMap::new()),
            pending: Mutex::new(HashMap::new()),
            pending_lookups: Mutex::new(HashMap::new()),
            names: Mutex::new(HashMap::new()),
            call_timeout: Duration::from_secs(5),
        });
        *inner_slot.lock() = Some(Arc::clone(&inner));
        RmiRuntime {
            inner,
            _receiver: Arc::new(handle),
        }
    }

    /// This runtime's node id.
    pub fn node(&self) -> NodeId {
        self.inner.node
    }

    /// Advances the logical lease clock by `ms` and collects expired
    /// references (lease mode only).
    pub fn tick(&self, ms: u64) {
        self.inner.clock_ms.fetch_add(ms, Ordering::SeqCst);
        if let DgcMode::Leases { .. } = self.inner.dgc {
            self.collect_expired();
        }
    }

    /// Exports an object with a raw dispatch function; generated skeletons
    /// call this. Returns the reference to hand out.
    pub fn export_raw(&self, dispatch: DispatchFn) -> RemoteRefData {
        let object = self.inner.next_object.fetch_add(1, Ordering::SeqCst);
        self.inner.exported.lock().insert(
            object,
            Exported {
                dispatch,
                refcount: 0,
                leases: HashMap::new(),
                pinned: false,
            },
        );
        RemoteRefData {
            node: self.inner.node.0,
            object,
        }
    }

    /// Pins an exported object so DGC never collects it (registry roots).
    pub fn pin(&self, object: ObjectId) {
        if let Some(entry) = self.inner.exported.lock().get_mut(&object.0) {
            entry.pinned = true;
        }
    }

    /// True while the object is exported (not collected).
    pub fn is_exported(&self, object: ObjectId) -> bool {
        self.inner.exported.lock().contains_key(&object.0)
    }

    /// Binds `name` to a reference in this runtime's registry and pins the
    /// object if it is local.
    pub fn bind(&self, name: impl Into<String>, ref_: RemoteRefData) {
        if ref_.node == self.inner.node.0 {
            self.pin(ObjectId(ref_.object));
        }
        self.inner.names.lock().insert(name.into(), ref_);
    }

    /// Looks a name up in a (possibly remote) runtime's registry.
    ///
    /// # Errors
    ///
    /// [`RmiError::NotBound`] when the name is unknown; transport and
    /// timeout failures otherwise.
    pub fn lookup(&self, node: NodeId, name: &str) -> Result<RemoteRefData, RmiError> {
        if node == self.inner.node {
            return self
                .inner
                .names
                .lock()
                .get(name)
                .copied()
                .ok_or_else(|| RmiError::NotBound(name.to_string()));
        }
        let call = self.inner.next_call.fetch_add(1, Ordering::SeqCst);
        let (tx, rx) = bounded(1);
        self.inner.pending_lookups.lock().insert(call, tx);
        self.send(
            node,
            &RmiMsg::Lookup {
                call,
                name: name.to_string(),
            },
        )?;
        match rx.recv_timeout(self.inner.call_timeout) {
            Ok(Some(found)) => Ok(found),
            Ok(None) => Err(RmiError::NotBound(name.to_string())),
            Err(_) => {
                self.inner.pending_lookups.lock().remove(&call);
                Err(RmiError::Timeout)
            }
        }
    }

    /// Performs a blocking remote invocation; generated stubs call this.
    ///
    /// # Errors
    ///
    /// Any [`RmiError`]; `NoSuchObject` when DGC already collected the
    /// target.
    pub fn invoke(
        &self,
        target: RemoteRefData,
        method: &str,
        args: Vec<u8>,
    ) -> Result<Vec<u8>, RmiError> {
        if target.node == self.inner.node.0 {
            // Local fast path, still through the dispatch for uniformity.
            let dispatch = {
                let exported = self.inner.exported.lock();
                let entry = exported
                    .get(&target.object)
                    .ok_or(RmiError::NoSuchObject(target.object))?;
                Arc::clone(&entry.dispatch)
            };
            return dispatch(method, &args);
        }
        let call = self.inner.next_call.fetch_add(1, Ordering::SeqCst);
        let (tx, rx) = bounded(1);
        self.inner.pending.lock().insert(call, tx);
        self.send(
            NodeId(target.node),
            &RmiMsg::Call {
                call,
                object: target.object,
                method: method.to_string(),
                args,
            },
        )?;
        match rx.recv_timeout(self.inner.call_timeout) {
            Ok(Ok(bytes)) => Ok(bytes),
            Ok(Err(msg)) => Err(decode_remote_error(&msg, target.object)),
            Err(_) => {
                self.inner.pending.lock().remove(&call);
                Err(RmiError::Timeout)
            }
        }
    }

    /// Registers interest in a remote object (RMI `dirty`), returning a
    /// [`Proxy`] guard whose drop sends `clean`. This is the step a crashed
    /// subscriber never completes — the root of the §5.4.2 leak in strong
    /// mode.
    ///
    /// # Errors
    ///
    /// Transport failures.
    pub fn attach(&self, target: RemoteRefData) -> Result<Proxy, RmiError> {
        if target.node != self.inner.node.0 {
            self.send(NodeId(target.node), &RmiMsg::Dirty { object: target.object })?;
        } else {
            self.local_dirty(target.object, self.inner.node.0);
        }
        Ok(Proxy {
            runtime: self.clone(),
            target,
            disarmed: false,
        })
    }

    /// Renews the lease on a remote object (lease mode; no-op in strong
    /// mode beyond a duplicate `dirty`).
    ///
    /// # Errors
    ///
    /// Transport failures.
    pub fn renew(&self, target: RemoteRefData) -> Result<(), RmiError> {
        if target.node != self.inner.node.0 {
            self.send(NodeId(target.node), &RmiMsg::Dirty { object: target.object })
        } else {
            self.local_dirty(target.object, self.inner.node.0);
            Ok(())
        }
    }

    /// Collects every unpinned object with no live references (zero
    /// refcount in strong mode; all leases expired in lease mode). Returns
    /// the collected object ids.
    pub fn collect_expired(&self) -> Vec<ObjectId> {
        self.inner.collect_now()
    }

    /// Number of currently exported (uncollected) objects.
    pub fn exported_count(&self) -> usize {
        self.inner.exported.lock().len()
    }

    fn send(&self, to: NodeId, msg: &RmiMsg) -> Result<(), RmiError> {
        self.inner.send(to, msg)
    }

    fn local_dirty(&self, object: u64, from: u64) {
        self.inner.local_dirty(object, from);
    }

}

impl RtInner {
    fn send(&self, to: NodeId, msg: &RmiMsg) -> Result<(), RmiError> {
        let bytes = psc_codec::to_bytes(msg)?;
        self.sender
            .send(to, bytes)
            .map_err(|e| RmiError::Transport(e.to_string()))
    }

    fn local_dirty(&self, object: u64, from: u64) {
        let now = self.clock_ms.load(Ordering::SeqCst);
        let mut exported = self.exported.lock();
        if let Some(entry) = exported.get_mut(&object) {
            match self.dgc {
                DgcMode::Strong => entry.refcount += 1,
                DgcMode::Leases { ttl_ms } => {
                    entry.leases.insert(from, now + ttl_ms);
                }
            }
        }
    }

    fn local_clean(&self, object: u64, from: u64) {
        let mut exported = self.exported.lock();
        if let Some(entry) = exported.get_mut(&object) {
            match self.dgc {
                DgcMode::Strong => entry.refcount = entry.refcount.saturating_sub(1),
                DgcMode::Leases { .. } => {
                    entry.leases.remove(&from);
                }
            }
        }
        drop(exported);
        // Strong mode collects eagerly on clean; lease mode collects on
        // tick.
        if matches!(self.dgc, DgcMode::Strong) {
            self.collect_now();
        }
    }

    fn collect_now(&self) -> Vec<ObjectId> {
        let now = self.clock_ms.load(Ordering::SeqCst);
        let mut collected = Vec::new();
        let mut exported = self.exported.lock();
        exported.retain(|&object, entry| {
            if entry.pinned {
                return true;
            }
            let live = match self.dgc {
                DgcMode::Strong => entry.refcount > 0,
                DgcMode::Leases { .. } => {
                    entry.leases.retain(|_, &mut expiry| expiry > now);
                    !entry.leases.is_empty() || entry.refcount > 0
                }
            };
            if !live {
                collected.push(ObjectId(object));
            }
            live
        });
        collected
    }

    fn handle(self: &Arc<Self>, from: NodeId, payload: &[u8]) {
        let Ok(msg) = psc_codec::from_bytes::<RmiMsg>(payload) else {
            return;
        };
        match msg {
            RmiMsg::Call {
                call,
                object,
                method,
                args,
            } => {
                let dispatch = {
                    let exported = self.exported.lock();
                    exported.get(&object).map(|e| Arc::clone(&e.dispatch))
                };
                // Dispatch on its own thread so a server method can itself
                // perform remote invocations (nested callbacks, e.g. the
                // market invoking the buyer passed to Fig. 8's `buy`)
                // without deadlocking the receiver loop.
                let inner = Arc::clone(self);
                std::thread::Builder::new()
                    .name(format!("rmi-dispatch-{call}"))
                    .spawn(move || {
                        let result = match dispatch {
                            Some(dispatch) => {
                                dispatch(&method, &args).map_err(|e| encode_remote_error(&e))
                            }
                            None => Err(format!("__no_such_object:{object}")),
                        };
                        let _ = inner.send(from, &RmiMsg::Reply { call, result });
                    })
                    .expect("spawn rmi dispatch thread");
            }
            RmiMsg::Reply { call, result } => {
                if let Some(tx) = self.pending.lock().remove(&call) {
                    let _ = tx.send(result);
                }
            }
            RmiMsg::Dirty { object } => self.local_dirty(object, from.0),
            RmiMsg::Clean { object } => self.local_clean(object, from.0),
            RmiMsg::Lookup { call, name } => {
                let found = self.names.lock().get(&name).copied();
                let _ = self.send(from, &RmiMsg::LookupReply { call, found });
            }
            RmiMsg::LookupReply { call, found } => {
                if let Some(tx) = self.pending_lookups.lock().remove(&call) {
                    let _ = tx.send(found);
                }
            }
        }
    }
}

impl std::fmt::Debug for RmiRuntime {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RmiRuntime")
            .field("node", &self.inner.node)
            .field("exported", &self.exported_count())
            .finish()
    }
}

/// A held reference to a remote object; dropping it releases the reference
/// (RMI `clean`). "Crashing" a proxy holder in tests is simulated with
/// [`Proxy::leak`] — the clean is never sent, exactly like a process that
/// died.
#[derive(Debug)]
pub struct Proxy {
    runtime: RmiRuntime,
    target: RemoteRefData,
    disarmed: bool,
}

impl Proxy {
    /// The referenced remote object.
    pub fn target(&self) -> RemoteRefData {
        self.target
    }

    /// Renews the lease (lease mode).
    ///
    /// # Errors
    ///
    /// Transport failures.
    pub fn renew(&self) -> Result<(), RmiError> {
        self.runtime.renew(self.target)
    }

    /// Simulates the holder crashing: the reference is abandoned without a
    /// `clean`.
    pub fn leak(mut self) {
        self.disarmed = true;
    }
}

impl Drop for Proxy {
    fn drop(&mut self) {
        if self.disarmed {
            return;
        }
        let target = self.target;
        if target.node != self.runtime.inner.node.0 {
            let _ = self
                .runtime
                .inner
                .send(NodeId(target.node), &RmiMsg::Clean { object: target.object });
        } else {
            self.runtime.inner.local_clean(target.object, target.node);
        }
    }
}

fn encode_remote_error(err: &RmiError) -> String {
    match err {
        RmiError::NoSuchMethod(name) => format!("__no_such_method:{name}"),
        other => other.to_string(),
    }
}

fn decode_remote_error(msg: &str, object: u64) -> RmiError {
    if let Some(rest) = msg.strip_prefix("__no_such_object:") {
        return RmiError::NoSuchObject(rest.parse().unwrap_or(object));
    }
    if let Some(rest) = msg.strip_prefix("__no_such_method:") {
        return RmiError::NoSuchMethod(rest.to_string());
    }
    RmiError::Remote(msg.to_string())
}
