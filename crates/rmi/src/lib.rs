#![warn(missing_docs)]

//! # psc-rmi — remote method invocation, the complementary paradigm
//!
//! The paper positions pub/sub and RMI as complements, not competitors
//! (§5.4): "a combination of both represents a very powerful tool for
//! devising distributed applications, e.g., by passing object references
//! with obvents" (Fig. 8). This crate supplies that other half:
//!
//! - [`remote_iface!`] — the `rmic` analogue: from one trait declaration it
//!   generates the typed client **stub** and server **skeleton** (dispatch),
//!   exactly as the paper's `psc` is "the publish/subscribe counterpart to
//!   the Java RMI compiler";
//! - [`RmiRuntime`] — per-process runtime: object export, a name
//!   [`registry`](RmiRuntime::bind), blocking invocations over the
//!   in-process transport;
//! - **distributed garbage collection** with two modes ([`DgcMode`]):
//!   - [`DgcMode::Strong`] — reference counting exactly like classic Java
//!     RMI, which exhibits the caveat of §5.4.2: "if a single subscriber
//!     crashes, the remote object will never be garbage collected";
//!   - [`DgcMode::Leases`] — the "weaker implementation … proposed in
//!     [CNH99]": references expire unless renewed, so crashed proxy holders
//!     cannot pin objects forever.
//!
//! Experiment E7 reproduces the leak and its fix; `examples/stock_trading`
//! reproduces Fig. 8 end to end (quotes carrying a `StockMarket` reference
//! that brokers invoke synchronously).
//!
//! Remote methods are fallible — the Rust rendition of Java's mandatory
//! `throws RemoteException`: every generated trait method returns
//! `Result<R, RmiError>`.

mod error;
mod macros;
mod runtime;

pub use error::RmiError;
pub use runtime::{DgcMode, ObjectId, Proxy, RemoteRefData, RmiNetwork, RmiRuntime};

#[doc(hidden)]
pub mod __private {
    pub use psc_codec;
    pub use psc_paste;
}

#[cfg(test)]
mod tests;
