use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::Arc;

use psc_simnet::NodeId;

use crate::{remote_iface, DgcMode, ObjectId, RmiError, RmiNetwork};

remote_iface! {
    /// The paper's Fig. 8 remote interface.
    pub trait StockMarket {
        fn buy(&self, company: String, price: f64, amount: u32) -> bool;
        fn quote_count(&self) -> u32;
    }
}

struct Market {
    buys: AtomicU32,
}

impl StockMarket for Market {
    fn buy(&self, company: String, price: f64, _amount: u32) -> Result<bool, RmiError> {
        assert!(!company.is_empty());
        self.buys.fetch_add(1, Ordering::SeqCst);
        Ok(price < 1_000.0)
    }

    fn quote_count(&self) -> Result<u32, RmiError> {
        Ok(self.buys.load(Ordering::SeqCst))
    }
}

fn market() -> Arc<Market> {
    Arc::new(Market {
        buys: AtomicU32::new(0),
    })
}

mod invocation {
    use super::*;

    #[test]
    fn remote_call_roundtrip() {
        let net = RmiNetwork::new(2, DgcMode::Strong);
        let rts = net.runtimes();
        let m = market();
        let ref_ = StockMarketStub::export(&rts[0], m.clone());
        let stub = StockMarketStub::attach(&rts[1], ref_).unwrap();
        assert!(stub.buy("Telco".into(), 80.0, 10).unwrap());
        assert!(!stub.buy("Telco".into(), 5_000.0, 1).unwrap());
        assert_eq!(stub.quote_count().unwrap(), 2);
        assert_eq!(m.buys.load(Ordering::SeqCst), 2);
    }

    #[test]
    fn local_invocation_uses_the_same_path() {
        let net = RmiNetwork::new(1, DgcMode::Strong);
        let rts = net.runtimes();
        let ref_ = StockMarketStub::export(&rts[0], market());
        let stub = StockMarketStub::attach(&rts[0], ref_).unwrap();
        assert!(stub.buy("T".into(), 1.0, 1).unwrap());
    }

    #[test]
    fn invoking_a_collected_object_fails_cleanly() {
        let net = RmiNetwork::new(2, DgcMode::Strong);
        let rts = net.runtimes();
        let ref_ = StockMarketStub::export(&rts[0], market());
        let stub = StockMarketStub::attach(&rts[1], ref_).unwrap();
        // Drop the only reference: strong DGC collects the object.
        let target = stub.target();
        drop(stub);
        wait_until(|| !rts[0].is_exported(ObjectId(target.object)));
        let stub2 = StockMarketStub::attach(&rts[1], target).unwrap();
        let err = stub2.buy("T".into(), 1.0, 1).unwrap_err();
        assert!(matches!(err, RmiError::NoSuchObject(_)), "got {err:?}");
    }

    #[test]
    fn unknown_method_is_reported() {
        remote_iface! {
            pub trait OtherIface {
                fn other(&self) -> u8;
            }
        }
        let net = RmiNetwork::new(2, DgcMode::Strong);
        let rts = net.runtimes();
        let ref_ = StockMarketStub::export(&rts[0], market());
        // Attach the WRONG stub type to the reference.
        let stub = OtherIfaceStub::attach(&rts[1], ref_).unwrap();
        let err = stub.other().unwrap_err();
        assert!(matches!(err, RmiError::NoSuchMethod(_)), "got {err:?}");
    }
}

mod registry {
    use super::*;

    #[test]
    fn bind_and_remote_lookup() {
        let net = RmiNetwork::new(3, DgcMode::Strong);
        let rts = net.runtimes();
        let ref_ = StockMarketStub::export(&rts[0], market());
        rts[0].bind("markets/zurich", ref_);
        let stub = StockMarketStub::lookup(&rts[2], NodeId(0), "markets/zurich").unwrap();
        assert!(stub.buy("T".into(), 10.0, 1).unwrap());
    }

    #[test]
    fn missing_name_is_not_bound() {
        let net = RmiNetwork::new(2, DgcMode::Strong);
        let rts = net.runtimes();
        let err = rts[1].lookup(NodeId(0), "nope").unwrap_err();
        assert!(matches!(err, RmiError::NotBound(_)));
    }

    #[test]
    fn bound_objects_are_pinned_against_dgc() {
        let net = RmiNetwork::new(2, DgcMode::Strong);
        let rts = net.runtimes();
        let ref_ = StockMarketStub::export(&rts[0], market());
        rts[0].bind("pinned", ref_);
        // No proxies at all, but the binding pins the object.
        rts[0].collect_expired();
        assert!(rts[0].is_exported(ObjectId(ref_.object)));
    }
}

mod dgc {
    use super::*;

    /// §5.4.2: "if a single subscriber crashes, the remote object will
    /// never be garbage collected" — strong mode leaks.
    #[test]
    fn strong_mode_leaks_on_crashed_proxy_holder() {
        let net = RmiNetwork::new(3, DgcMode::Strong);
        let rts = net.runtimes();
        let ref_ = StockMarketStub::export(&rts[0], market());
        let healthy = StockMarketStub::attach(&rts[1], ref_).unwrap();
        let crasher = StockMarketStub::attach(&rts[2], ref_).unwrap();

        // Node 2 "crashes": its clean is never sent.
        crasher.leak();
        // Node 1 releases properly.
        drop(healthy);
        wait_for_messages();
        rts[0].collect_expired();
        assert!(
            rts[0].is_exported(ObjectId(ref_.object)),
            "strong DGC must leak the object (the paper's caveat)"
        );
    }

    /// The [CNH99] fix: leases expire, the object is collected despite the
    /// crashed holder.
    #[test]
    fn lease_mode_collects_despite_crashed_holder() {
        let net = RmiNetwork::new(3, DgcMode::Leases { ttl_ms: 100 });
        let rts = net.runtimes();
        let ref_ = StockMarketStub::export(&rts[0], market());
        let crasher = StockMarketStub::attach(&rts[2], ref_).unwrap();
        wait_for_messages();
        crasher.leak(); // crash: no clean, no renewals
        rts[0].tick(50);
        assert!(rts[0].is_exported(ObjectId(ref_.object)), "lease still valid");
        rts[0].tick(100);
        assert!(
            !rts[0].is_exported(ObjectId(ref_.object)),
            "expired lease must let DGC collect"
        );
    }

    #[test]
    fn renewals_keep_the_lease_alive() {
        let net = RmiNetwork::new(2, DgcMode::Leases { ttl_ms: 100 });
        let rts = net.runtimes();
        let ref_ = StockMarketStub::export(&rts[0], market());
        let stub = StockMarketStub::attach(&rts[1], ref_).unwrap();
        wait_for_messages();
        for _ in 0..5 {
            rts[0].tick(60);
            rts[1].renew(ref_).unwrap();
            wait_for_messages();
        }
        assert!(rts[0].is_exported(ObjectId(ref_.object)));
        assert!(stub.buy("T".into(), 1.0, 1).unwrap());
    }

    #[test]
    fn clean_release_collects_in_strong_mode() {
        let net = RmiNetwork::new(2, DgcMode::Strong);
        let rts = net.runtimes();
        let ref_ = StockMarketStub::export(&rts[0], market());
        let stub = StockMarketStub::attach(&rts[1], ref_).unwrap();
        wait_for_messages();
        assert!(rts[0].is_exported(ObjectId(ref_.object)));
        drop(stub);
        wait_until(|| !rts[0].is_exported(ObjectId(ref_.object)));
    }

    #[test]
    fn multiple_holders_strong_mode_counts_references() {
        let net = RmiNetwork::new(3, DgcMode::Strong);
        let rts = net.runtimes();
        let ref_ = StockMarketStub::export(&rts[0], market());
        let a = StockMarketStub::attach(&rts[1], ref_).unwrap();
        let b = StockMarketStub::attach(&rts[2], ref_).unwrap();
        wait_for_messages();
        drop(a);
        wait_for_messages();
        rts[0].collect_expired();
        assert!(rts[0].is_exported(ObjectId(ref_.object)), "b still holds it");
        drop(b);
        wait_until(|| !rts[0].is_exported(ObjectId(ref_.object)));
    }
}

/// Marshalling edge cases through the generated stubs.
mod marshalling {
    use super::*;

    remote_iface! {
        pub trait Echo {
            fn echo_vec(&self, xs: Vec<String>) -> Vec<String>;
            fn no_args(&self) -> u64;
            fn unit_result(&self, n: u32) -> ();
        }
    }

    struct EchoImpl;
    impl Echo for EchoImpl {
        fn echo_vec(&self, xs: Vec<String>) -> Result<Vec<String>, RmiError> {
            Ok(xs.into_iter().rev().collect())
        }
        fn no_args(&self) -> Result<u64, RmiError> {
            Ok(42)
        }
        fn unit_result(&self, _n: u32) -> Result<(), RmiError> {
            Ok(())
        }
    }

    #[test]
    fn varied_signatures_roundtrip() {
        let net = RmiNetwork::new(2, DgcMode::Strong);
        let rts = net.runtimes();
        let ref_ = EchoStub::export(&rts[0], Arc::new(EchoImpl));
        let stub = EchoStub::attach(&rts[1], ref_).unwrap();
        assert_eq!(
            stub.echo_vec(vec!["a".into(), "b".into()]).unwrap(),
            vec!["b".to_string(), "a".to_string()]
        );
        assert_eq!(stub.no_args().unwrap(), 42);
        stub.unit_result(9).unwrap();
    }
}

mod properties {
    use super::*;
    use proptest::prelude::*;

    remote_iface! {
        pub trait KvEcho {
            fn echo(&self, payload: String) -> String;
        }
    }

    struct KvEchoImpl;
    impl KvEcho for KvEchoImpl {
        fn echo(&self, payload: String) -> Result<String, RmiError> {
            Ok(format!("ok:{payload}"))
        }
    }

    fn registry_name(parts: &[u8]) -> String {
        let mut name = String::from("svc");
        for &p in parts {
            name.push('/');
            name.push((b'a' + p % 26) as char);
        }
        name
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        /// Any set of bound names can be looked up from any peer and the
        /// resulting stub round-trips an invocation; unbound names fail
        /// with `NotBound`.
        #[test]
        fn registry_lookup_and_stub_roundtrip(
            names in proptest::collection::vec(
                proptest::collection::vec(0u8..26, 1..4),
                1..6,
            ),
            peer in 1usize..3,
            payloads in proptest::collection::vec("[a-z]*", 1..6),
        ) {
            let net = RmiNetwork::new(3, DgcMode::Strong);
            let rts = net.runtimes();
            let mut bound = Vec::new();
            for parts in &names {
                let name = registry_name(parts);
                if bound.contains(&name) {
                    continue; // registry names are unique keys
                }
                let ref_ = KvEchoStub::export(&rts[0], Arc::new(KvEchoImpl));
                rts[0].bind(&name, ref_);
                bound.push(name);
            }

            for (name, payload) in bound.iter().zip(payloads.iter().cycle()) {
                let stub = KvEchoStub::lookup(&rts[peer], NodeId(0), name).unwrap();
                prop_assert_eq!(
                    stub.echo(payload.clone()).unwrap(),
                    format!("ok:{payload}"),
                    "stub from registry name {} must invoke the bound object",
                    name
                );
            }

            // A name never bound must fail cleanly from every peer.
            let missing = "svc/__definitely_not_bound__";
            prop_assert!(!bound.iter().any(|n| n == missing));
            let err = rts[peer].lookup(NodeId(0), missing).unwrap_err();
            prop_assert!(matches!(err, RmiError::NotBound(_)), "got {:?}", err);
        }
    }
}

fn wait_for_messages() {
    std::thread::sleep(std::time::Duration::from_millis(30));
}

fn wait_until(cond: impl Fn() -> bool) {
    for _ in 0..200 {
        if cond() {
            return;
        }
        std::thread::sleep(std::time::Duration::from_millis(5));
    }
    panic!("condition not reached within 1s");
}

/// Fig. 8 passes the buyer (`StockBroker buyer`) into `buy`: the server
/// invokes the *caller's* remote object mid-call. Nested callbacks require
/// dispatch off the receiver thread.
mod callbacks {
    use super::*;
    use crate::RemoteRefData;

    remote_iface! {
        pub trait Broker {
            fn confirm(&self, company: String) -> String;
        }
    }

    remote_iface! {
        pub trait CallbackMarket {
            fn buy(&self, company: String, buyer_node: u64, buyer_object: u64) -> String;
        }
    }

    struct BrokerImpl {
        name: String,
    }

    impl Broker for BrokerImpl {
        fn confirm(&self, company: String) -> Result<String, RmiError> {
            Ok(format!("{} confirms {company}", self.name))
        }
    }

    struct MarketWithCallback {
        runtime: crate::RmiRuntime,
    }

    impl CallbackMarket for MarketWithCallback {
        fn buy(
            &self,
            company: String,
            buyer_node: u64,
            buyer_object: u64,
        ) -> Result<String, RmiError> {
            // Call BACK into the buyer while the buyer's `buy` call is
            // still outstanding.
            let buyer = BrokerStub::attach(
                &self.runtime,
                RemoteRefData {
                    node: buyer_node,
                    object: buyer_object,
                },
            )?;
            buyer.confirm(company)
        }
    }

    #[test]
    fn server_invokes_caller_callback_mid_call() {
        let net = RmiNetwork::new(2, DgcMode::Strong);
        let rts = net.runtimes();
        let market_ref = CallbackMarketStub::export(
            &rts[0],
            Arc::new(MarketWithCallback {
                runtime: rts[0].clone(),
            }),
        );
        let broker_ref = BrokerStub::export(
            &rts[1],
            Arc::new(BrokerImpl {
                name: "alice".into(),
            }),
        );
        let market = CallbackMarketStub::attach(&rts[1], market_ref).unwrap();
        let receipt = market
            .buy("Telco".into(), broker_ref.node, broker_ref.object)
            .unwrap();
        assert_eq!(receipt, "alice confirms Telco");
    }

    #[test]
    fn deep_nesting_does_not_deadlock() {
        // a -> b -> a -> b: two levels of mutual callbacks.
        remote_iface! {
            pub trait Echoer {
                fn echo(&self, depth: u32, peer_node: u64, peer_object: u64) -> u32;
            }
        }
        struct EchoImpl {
            runtime: crate::RmiRuntime,
        }
        impl Echoer for EchoImpl {
            fn echo(&self, depth: u32, peer_node: u64, peer_object: u64) -> Result<u32, RmiError> {
                if depth == 0 {
                    return Ok(0);
                }
                let me_ref = RemoteRefData {
                    node: peer_node,
                    object: peer_object,
                };
                let peer = EchoerStub::attach(&self.runtime, me_ref)?;
                Ok(peer.echo(depth - 1, peer_node, peer_object)? + 1)
            }
        }
        let net = RmiNetwork::new(2, DgcMode::Strong);
        let rts = net.runtimes();
        let a_ref = EchoerStub::export(
            &rts[0],
            Arc::new(EchoImpl {
                runtime: rts[0].clone(),
            }),
        );
        let stub = EchoerStub::attach(&rts[1], a_ref).unwrap();
        // Bounce within node 0's own object 4 times.
        assert_eq!(stub.echo(4, a_ref.node, a_ref.object).unwrap(), 4);
    }
}
