//! The remote-invocation error type (Java's `RemoteException`).

use std::fmt;

use psc_codec::CodecError;

/// Failure of a remote method invocation.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum RmiError {
    /// The target object is not (or no longer) exported — e.g. it was
    /// garbage-collected after its references expired.
    NoSuchObject(u64),
    /// The target object does not implement the named method.
    NoSuchMethod(String),
    /// Argument or result (de)serialization failed.
    Codec(CodecError),
    /// No reply within the invocation timeout.
    Timeout,
    /// The transport could not reach the remote node.
    Transport(String),
    /// The server-side method panicked or reported an application error.
    Remote(String),
    /// A registry lookup found no binding.
    NotBound(String),
}

impl fmt::Display for RmiError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RmiError::NoSuchObject(id) => write!(f, "no exported object {id}"),
            RmiError::NoSuchMethod(name) => write!(f, "no remote method `{name}`"),
            RmiError::Codec(err) => write!(f, "rmi marshalling failure: {err}"),
            RmiError::Timeout => write!(f, "remote invocation timed out"),
            RmiError::Transport(msg) => write!(f, "rmi transport failure: {msg}"),
            RmiError::Remote(msg) => write!(f, "remote failure: {msg}"),
            RmiError::NotBound(name) => write!(f, "name `{name}` is not bound"),
        }
    }
}

impl std::error::Error for RmiError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            RmiError::Codec(err) => Some(err),
            _ => None,
        }
    }
}

impl From<CodecError> for RmiError {
    fn from(err: CodecError) -> Self {
        RmiError::Codec(err)
    }
}
