//! Behavioural tests for the identifier-pasting macro.

use psc_paste::paste;

#[test]
fn pastes_two_idents() {
    paste! {
        struct [<Foo Bar>];
        impl [<Foo Bar>] {
            fn answer() -> u32 {
                42
            }
        }
    }
    assert_eq!(FooBar::answer(), 42);
}

#[test]
fn pastes_ident_and_literal_suffix() {
    paste! {
        const [<LIMIT _ 2>]: u32 = 7;
    }
    assert_eq!(LIMIT_2, 7);
}

#[test]
fn pastes_string_literal_segments() {
    paste! {
        fn [<get_ "price">]() -> f64 { 1.5 }
    }
    assert_eq!(get_price(), 1.5);
}

#[test]
fn recurses_into_nested_groups() {
    paste! {
        mod generated {
            pub fn [<nested fn_>]() -> bool {
                true
            }
        }
    }
    assert!(generated::nestedfn_());
}

#[test]
fn passes_ordinary_brackets_through() {
    paste! {
        fn first(xs: &[u32]) -> u32 {
            xs[0]
        }
    }
    assert_eq!(first(&[9, 8]), 9);
}

#[test]
fn works_inside_macro_rules_expansion() {
    macro_rules! make_adapter {
        ($name:ident) => {
            paste! {
                struct [<$name Adapter>];
                impl [<$name Adapter>] {
                    fn name() -> &'static str {
                        stringify!([<$name Adapter>])
                    }
                }
            }
        };
    }
    make_adapter!(Stock);
    assert_eq!(StockAdapter::name(), "StockAdapter");
}
