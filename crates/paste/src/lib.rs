#![warn(missing_docs)]

//! # psc-paste — identifier pasting for the obvent "precompiler"
//!
//! The paper's `psc` precompiler derives generated-artifact names from the
//! obvent class name: for a class `C` it emits `CAdapter` (§4.3, Fig. 6).
//! Declarative macros cannot concatenate identifiers, so this crate provides
//! the one proc macro the reproduction needs: [`paste!`], a minimal clone of
//! the well-known `paste` crate's `[<a b>]` syntax, implemented directly on
//! `proc_macro` with no dependencies.
//!
//! Inside the macro body, a bracket group of the form `[<seg seg …>]` is
//! replaced by a single identifier formed by concatenating the segments
//! (identifiers, integer literals, or string literals). Everything else is
//! passed through unchanged, recursively.
//!
//! ```ignore
//! psc_paste::paste! {
//!     struct [<Stock Quote Adapter>]; // expands to `struct StockQuoteAdapter;`
//! }
//! ```

use proc_macro::{Delimiter, Group, Ident, Span, TokenStream, TokenTree};

/// Pastes `[<…>]` identifier groups inside the body; see the crate docs.
#[proc_macro]
pub fn paste(input: TokenStream) -> TokenStream {
    transform(input)
}

fn transform(input: TokenStream) -> TokenStream {
    let mut out = Vec::<TokenTree>::new();
    for tree in input {
        match tree {
            TokenTree::Group(group) => {
                if let Some(ident) = try_paste_group(&group) {
                    out.push(TokenTree::Ident(ident));
                } else {
                    let mut new_group =
                        Group::new(group.delimiter(), transform(group.stream()));
                    new_group.set_span(group.span());
                    out.push(TokenTree::Group(new_group));
                }
            }
            other => out.push(other),
        }
    }
    out.into_iter().collect()
}

/// Recognises `[< seg seg … >]` and returns the concatenated identifier.
fn try_paste_group(group: &Group) -> Option<Ident> {
    if group.delimiter() != Delimiter::Bracket {
        return None;
    }
    let tokens: Vec<TokenTree> = group.stream().into_iter().collect();
    if tokens.len() < 2 {
        return None;
    }
    match (&tokens[0], &tokens[tokens.len() - 1]) {
        (TokenTree::Punct(open), TokenTree::Punct(close))
            if open.as_char() == '<' && close.as_char() == '>' => {}
        _ => return None,
    }

    let mut name = String::new();
    let mut span: Option<Span> = None;
    for token in &tokens[1..tokens.len() - 1] {
        match token {
            TokenTree::Ident(ident) => {
                name.push_str(&ident.to_string());
                span.get_or_insert_with(|| ident.span());
            }
            TokenTree::Literal(lit) => {
                let text = lit.to_string();
                // Strip quotes off string literals so `[<prefix "x">]` works.
                let text = text.trim_matches('"');
                name.push_str(text);
                span.get_or_insert_with(|| lit.span());
            }
            TokenTree::Punct(p) if p.as_char() == '_' => {
                name.push('_');
            }
            _ => return None,
        }
    }
    if name.is_empty() {
        return None;
    }
    Some(Ident::new(&name, span.unwrap_or_else(Span::call_site)))
}
