//! E5 report — §3.3.5 thread policies: wall-clock completion time of a
//! burst of latency-bound handler executions under each policy.
//!
//! Run with `cargo run --release -p psc-bench --bin exp_thread_policy`.

use std::time::Instant;

use psc_bench::{fmt_f, quote_obvents, BenchQuote, Table};
use pubsub_core::{Domain, FilterSpec, ThreadPolicy};

/// A latency-bound handler body (5 ms wait — the profile of a handler that
/// performs I/O or a remote invocation, like Fig. 8's broker calling
/// `buy`). Waits overlap under multi-threading even on a single CPU, which
/// is precisely the §3.3.5 motivation.
fn handler_work() {
    std::thread::sleep(std::time::Duration::from_millis(5));
}

fn run(policy: ThreadPolicy, events: usize, workers: usize) -> f64 {
    let quotes = quote_obvents(21, events);
    let domain = Domain::in_process_pooled(workers);
    let sub = domain.subscribe(FilterSpec::accept_all(), |q: BenchQuote| {
        let _ = q.amount();
        handler_work();
    });
    sub.set_policy(policy);
    sub.activate().expect("activate");
    sub.detach();
    let start = Instant::now();
    for q in quotes {
        domain.publish(q).expect("publish");
    }
    domain.drain();
    start.elapsed().as_secs_f64() * 1e3
}

fn main() {
    println!("E5: thread policies — ms to drain a burst of 5 ms latency-bound handlers");
    println!("(8 worker threads; policy set per subscription, Fig. 3 setters)\n");
    let mut table = Table::new(&["events", "multi ms", "bounded(2) ms", "single ms"]);
    for &events in &[8usize, 32, 64] {
        let multi = run(ThreadPolicy::Multi, events, 8);
        let bounded = run(ThreadPolicy::Bounded(2), events, 8);
        let single = run(ThreadPolicy::Single, events, 8);
        table.row(&[
            events.to_string(),
            fmt_f(multi),
            fmt_f(bounded),
            fmt_f(single),
        ]);
    }
    table.print();
    println!(
        "\nexpected shape: multi overlaps all waits (~events/workers x 5 ms), single\n\
         serializes (~events x 5 ms), bounded(2) sits at ~single/2."
    );
}
