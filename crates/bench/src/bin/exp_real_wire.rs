//! E12 report — the real wire against the simulator: harness-generated
//! publish schedules replayed over loopback TCP clusters.
//!
//! Three runs of the *same* [`StackScenario`] per seed:
//!
//! 1. **simnet** — the deterministic oracle ([`run_stack`]): what the
//!    routing layer promises every subscription receives.
//! 2. **single-process real** — N `DaceEndpoint`s on ephemeral loopback
//!    ports in this process, full mesh, the identical subscription set
//!    and publish schedule; per-publish `codec.encodes`, `net.msgs_sent`
//!    and `net.bytes_sent` deltas quantify the serialize-once fan-out on
//!    an actual socket (one encode per publish, one frame per interested
//!    peer — reference-cloned `WireBytes`, never re-encoded).
//! 3. **multi-process real** — the same scenario again, but every node is
//!    its own OS process (`psc-bench` re-executing itself in `--worker`
//!    mode), meshed over a static loopback port map exactly like a
//!    `psc-node --cluster` deployment. Delivered tag sets must match the
//!    simulator byte for byte.
//!
//! Run with `cargo run --release -p psc-bench --bin exp_real_wire`.
//! Set `BENCH_QUICK=1` for a seconds-scale smoke configuration.

use std::io::Write as _;
use std::sync::{Arc, Mutex};
use std::time::{Duration as StdDuration, Instant};

use psc_bench::{fmt_f, write_bench_json, Table};
use psc_dace::DaceConfig;
use psc_harness::stack::{
    run_stack, FilterKind, FuzzBase, FuzzLeaf, FuzzMid, FuzzSide, Level, StackScenario,
};
use psc_net::{ClusterSpec, DaceEndpoint, NetConfig};
use psc_simnet::NodeId;
use psc_telemetry::json::JsonValue;
use psc_telemetry::Snapshot;

type Sink = Arc<Mutex<Vec<u64>>>;

fn counter_delta(before: &Snapshot, after: &Snapshot, name: &str) -> u64 {
    after.counter(name) - before.counter(name)
}

/// A publish window long enough for loopback delivery, short enough that
/// the 30s announce interval keeps anti-entropy re-floods out of the
/// measured counter deltas.
fn quiet_config() -> DaceConfig {
    DaceConfig {
        announce_interval: psc_simnet::Duration::from_secs(30),
        ..DaceConfig::default()
    }
}

fn install(endpoint: &DaceEndpoint, level: Level, filter: FilterKind) -> Sink {
    let sink: Sink = Arc::new(Mutex::new(Vec::new()));
    let recorder = Arc::clone(&sink);
    endpoint.with_domain(move |domain| {
        let sub = match level {
            Level::Base => domain.subscribe(filter.spec(), move |e: FuzzBase| {
                recorder.lock().unwrap().push(*e.tag());
            }),
            Level::Mid => domain.subscribe(filter.spec(), move |e: FuzzMid| {
                recorder.lock().unwrap().push(*e.tag());
            }),
            Level::Leaf => domain.subscribe(filter.spec(), move |e: FuzzLeaf| {
                recorder.lock().unwrap().push(*e.tag());
            }),
            Level::Side => domain.subscribe(filter.spec(), move |e: FuzzSide| {
                recorder.lock().unwrap().push(*e.tag());
            }),
        };
        sub.activate().expect("activate");
        sub.detach();
    });
    sink
}

fn publish(endpoint: &DaceEndpoint, level: Level, tag: u64, value: i64) {
    let base = FuzzBase::new(tag, value);
    endpoint.with_domain(move |domain| {
        match level {
            Level::Base => domain.publish(base).expect("publish"),
            Level::Mid => domain.publish(FuzzMid::new(base)).expect("publish"),
            Level::Leaf => domain.publish(FuzzLeaf::new(FuzzMid::new(base))).expect("publish"),
            Level::Side => domain.publish(FuzzSide::new(base)).expect("publish"),
        };
    });
}

fn drain(sinks: &[Sink]) -> Vec<Vec<u64>> {
    sinks
        .iter()
        .map(|sink| {
            let mut tags = sink.lock().unwrap().clone();
            tags.sort_unstable();
            tags
        })
        .collect()
}

/// How many subscriptions ended up with a tag set different from the
/// simulator's. Zero is the only acceptable baseline.
fn mismatches(got: &[Vec<u64>], oracle: &[Vec<u64>]) -> u64 {
    got.iter().zip(oracle).filter(|(g, o)| g != o).count() as u64
}

struct SingleRun {
    got: Vec<Vec<u64>>,
    delivered: u64,
    encodes: u64,
    msgs_sent: u64,
    bytes_sent: u64,
    wall_ms: f64,
}

/// The single-process real run: same process, real sockets.
fn run_single_process(scenario: &StackScenario) -> SingleRun {
    let ids: Vec<NodeId> = (0..scenario.nodes as u64).map(NodeId).collect();
    let endpoints: Vec<DaceEndpoint> = ids
        .iter()
        .map(|&id| {
            let mut net = NetConfig::new(id, "127.0.0.1:0");
            net.seed = id.0;
            DaceEndpoint::start(net, ids.clone(), quiet_config()).expect("bind endpoint")
        })
        .collect();
    let addrs: Vec<String> = endpoints.iter().map(|e| e.local_addr().to_string()).collect();
    for endpoint in &endpoints {
        for (&id, addr) in ids.iter().zip(&addrs) {
            if id != endpoint.id() {
                endpoint.transport().add_peer(id, addr);
            }
        }
    }
    for endpoint in &endpoints {
        assert!(endpoint.wait_connected(StdDuration::from_secs(10)), "cluster failed to mesh");
    }

    let sinks: Vec<Sink> = scenario
        .subs
        .iter()
        .map(|s| install(&endpoints[s.node], s.level, s.filter))
        .collect();
    // Let the subscription control floods land before the measured window
    // opens (the 30s announce interval means no re-floods inside it).
    std::thread::sleep(StdDuration::from_millis(500));

    let expected = scenario.expected();
    let before = psc_telemetry::global().snapshot();
    let net_before: Vec<Snapshot> = endpoints.iter().map(|e| e.metrics()).collect();
    let start = Instant::now();
    for plan in &scenario.pubs {
        publish(&endpoints[plan.node], plan.level, plan.tag, plan.value);
        std::thread::sleep(StdDuration::from_millis(5));
    }
    let deadline = Instant::now() + StdDuration::from_secs(20);
    loop {
        let done = sinks
            .iter()
            .zip(&expected)
            .all(|(sink, exp)| sink.lock().unwrap().len() >= exp.len());
        if done || Instant::now() >= deadline {
            break;
        }
        std::thread::sleep(StdDuration::from_millis(10));
    }
    let wall_ms = start.elapsed().as_secs_f64() * 1e3;
    std::thread::sleep(StdDuration::from_millis(200)); // catch late duplicates
    let after = psc_telemetry::global().snapshot();
    let net_after: Vec<Snapshot> = endpoints.iter().map(|e| e.metrics()).collect();

    let got = drain(&sinks);
    let sum = |name: &str| -> u64 {
        net_before
            .iter()
            .zip(&net_after)
            .map(|(b, a)| counter_delta(b, a, name))
            .sum()
    };
    let run = SingleRun {
        delivered: got.iter().map(|g| g.len() as u64).sum(),
        encodes: counter_delta(&before, &after, "codec.encodes"),
        msgs_sent: sum("net.msgs_sent"),
        bytes_sent: sum("net.bytes_sent"),
        wall_ms,
        got,
    };
    for endpoint in &endpoints {
        endpoint.shutdown();
    }
    run
}

// ---------------------------------------------------------------------------
// Multi-process: the parent reserves loopback ports, re-executes itself once
// per node in `--worker` mode, and collects delivered tag sets from result
// files — the same static `--cluster` map a psc-node deployment uses.
// ---------------------------------------------------------------------------

/// Reserve `n` distinct loopback ports by binding ephemeral listeners and
/// recording their addresses. The listeners are dropped just before the
/// workers bind; on loopback CI the window for another process to steal a
/// port is negligible.
fn reserve_addrs(n: usize) -> Vec<String> {
    let listeners: Vec<std::net::TcpListener> = (0..n)
        .map(|_| std::net::TcpListener::bind("127.0.0.1:0").expect("reserve port"))
        .collect();
    listeners
        .iter()
        .map(|l| l.local_addr().expect("local addr").to_string())
        .collect()
}

struct MultiRun {
    got: Vec<Vec<u64>>,
    delivered: u64,
    wall_ms: f64,
}

fn run_multi_process(scenario: &StackScenario) -> MultiRun {
    let addrs = reserve_addrs(scenario.nodes);
    let cluster: String = addrs
        .iter()
        .enumerate()
        .map(|(i, a)| format!("{i}={a}"))
        .collect::<Vec<_>>()
        .join(",");
    let exe = std::env::current_exe().expect("current exe");
    let out_dir = std::env::temp_dir();
    let run_tag = std::process::id();

    let start = Instant::now();
    let mut children = Vec::new();
    let mut out_paths = Vec::new();
    for i in 0..scenario.nodes {
        let out = out_dir.join(format!("exp_real_wire.{run_tag}.n{i}.txt"));
        let _ = std::fs::remove_file(&out);
        let child = std::process::Command::new(&exe)
            .arg("--worker")
            .arg("--id")
            .arg(i.to_string())
            .arg("--cluster")
            .arg(&cluster)
            .arg("--seed")
            .arg(scenario.seed.to_string())
            .arg("--out")
            .arg(&out)
            .spawn()
            .expect("spawn worker");
        children.push(child);
        out_paths.push(out);
    }

    let deadline = Instant::now() + StdDuration::from_secs(60);
    for child in &mut children {
        loop {
            match child.try_wait().expect("wait worker") {
                Some(status) => {
                    assert!(status.success(), "worker exited with {status}");
                    break;
                }
                None if Instant::now() >= deadline => {
                    let _ = child.kill();
                    panic!("worker timed out");
                }
                None => std::thread::sleep(StdDuration::from_millis(25)),
            }
        }
    }
    let wall_ms = start.elapsed().as_secs_f64() * 1e3;

    // Assemble the per-subscription tag sets from the workers' result files.
    let mut got: Vec<Vec<u64>> = vec![Vec::new(); scenario.subs.len()];
    for path in &out_paths {
        let text = std::fs::read_to_string(path).expect("worker result file");
        for line in text.lines() {
            let mut parts = line.split_whitespace();
            if parts.next() != Some("sub") {
                continue;
            }
            let idx: usize = parts.next().expect("sub index").parse().expect("sub index");
            let tags = parts.next().unwrap_or("-");
            if tags != "-" {
                got[idx] = tags.split(',').map(|t| t.parse().expect("tag")).collect();
            }
        }
        let _ = std::fs::remove_file(path);
    }
    MultiRun {
        delivered: got.iter().map(|g| g.len() as u64).sum(),
        wall_ms,
        got,
    }
}

/// Worker mode: host one node of the scenario in this process, deliver its
/// share of the publish schedule, and write the tag sets its subscriptions
/// received to `--out`.
fn worker(args: &[String]) {
    let mut id = None;
    let mut cluster = None;
    let mut seed = None;
    let mut out = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--id" => id = it.next().map(|v| v.parse::<u64>().expect("--id")),
            "--cluster" => cluster = it.next().cloned(),
            "--seed" => seed = it.next().map(|v| v.parse::<u64>().expect("--seed")),
            "--out" => out = it.next().cloned(),
            other => panic!("unknown worker arg {other}"),
        }
    }
    let id = NodeId(id.expect("--id"));
    let spec = ClusterSpec::parse(&cluster.expect("--cluster")).expect("cluster spec");
    let seed = seed.expect("--seed");
    let out = out.expect("--out");
    let scenario = StackScenario::generate(seed);

    let endpoint = DaceEndpoint::start(spec.config_for(id).expect("own id in cluster"), spec.ids(), DaceConfig::default())
        .expect("bind endpoint");
    assert!(endpoint.wait_connected(StdDuration::from_secs(30)), "worker failed to mesh");

    // This node's share of the subscription set, keyed by global index.
    let sinks: Vec<(usize, Sink)> = scenario
        .subs
        .iter()
        .enumerate()
        .filter(|(_, s)| s.node == id.0 as usize)
        .map(|(i, s)| (i, install(&endpoint, s.level, s.filter)))
        .collect();
    // All workers sleep the same settle before publishing, so every
    // subscription's control flood lands first (the 200ms announce
    // anti-entropy is the second chance).
    std::thread::sleep(StdDuration::from_millis(700));

    // Walk the global publish schedule on a shared cadence, acting only on
    // this node's slots — the interleaving approximates the simulator's
    // without any cross-process coordination.
    for plan in &scenario.pubs {
        if plan.node == id.0 as usize {
            publish(&endpoint, plan.level, plan.tag, plan.value);
        }
        std::thread::sleep(StdDuration::from_millis(15));
    }

    let expected = scenario.expected();
    let deadline = Instant::now() + StdDuration::from_secs(20);
    loop {
        let done = sinks
            .iter()
            .all(|(i, sink)| sink.lock().unwrap().len() >= expected[*i].len());
        if done || Instant::now() >= deadline {
            break;
        }
        std::thread::sleep(StdDuration::from_millis(10));
    }
    std::thread::sleep(StdDuration::from_millis(300)); // catch late duplicates

    let mut file = std::fs::File::create(&out).expect("create result file");
    for (i, sink) in &sinks {
        let mut tags = sink.lock().unwrap().clone();
        tags.sort_unstable();
        let rendered = if tags.is_empty() {
            "-".to_string()
        } else {
            tags.iter().map(|t| t.to_string()).collect::<Vec<_>>().join(",")
        };
        writeln!(file, "sub {i} {rendered}").expect("write result");
    }
    endpoint.shutdown();
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.first().map(String::as_str) == Some("--worker") {
        worker(&args[1..]);
        return;
    }

    psc_telemetry::set_global_enabled(true);
    let quick = std::env::var_os("BENCH_QUICK").is_some();
    let seeds: &[u64] = if quick { &[7] } else { &[7, 21, 42] };
    // The multi-process cluster always runs at three nodes — the canonical
    // psc-node deployment shape — so pick the first seed that generates one.
    let multi_seed = (1u64..200)
        .find(|&s| StackScenario::generate(s).nodes == 3)
        .expect("a 3-node scenario in the first 200 seeds");

    println!("E12: the real wire vs the simulator — harness schedules over loopback TCP\n");

    println!("single-process: N endpoints, one process, real sockets");
    let mut table = Table::new(&[
        "seed",
        "nodes",
        "pubs",
        "delivered",
        "mismatches",
        "encodes/pub",
        "msgs/pub",
        "bytes/pub",
        "wall ms",
    ]);
    let mut single_rows = JsonValue::arr();
    for &seed in seeds {
        let scenario = StackScenario::generate(seed);
        let sim = run_stack(&scenario);
        assert!(sim.violations.is_empty(), "oracle run failed for seed {seed}");
        let real = run_single_process(&scenario);
        let bad = mismatches(&real.got, &sim.got);
        if bad > 0 {
            eprintln!("WARNING seed {seed}: {bad} subscription(s) diverged from the simulator");
        }
        let pubs = scenario.pubs.len() as f64;
        table.row(&[
            seed.to_string(),
            scenario.nodes.to_string(),
            scenario.pubs.len().to_string(),
            real.delivered.to_string(),
            bad.to_string(),
            fmt_f(real.encodes as f64 / pubs),
            fmt_f(real.msgs_sent as f64 / pubs),
            fmt_f(real.bytes_sent as f64 / pubs),
            fmt_f(real.wall_ms),
        ]);
        single_rows = single_rows.push(
            JsonValue::obj()
                .set("seed", seed)
                .set("nodes", scenario.nodes as u64)
                .set("publishes", scenario.pubs.len() as u64)
                .set("expected_deliveries", sim.got.iter().map(|g| g.len() as u64).sum::<u64>())
                .set("delivered", real.delivered)
                .set("delivery_mismatches", bad)
                .set("encodes_per_publish", real.encodes as f64 / pubs)
                .set("msgs_per_publish", real.msgs_sent as f64 / pubs)
                .set("bytes_per_publish", real.bytes_sent as f64 / pubs)
                .set("wall_ms", real.wall_ms),
        );
    }
    table.print();

    println!("\nmulti-process: every node its own OS process, static --cluster port map");
    let scenario = StackScenario::generate(multi_seed);
    let sim = run_stack(&scenario);
    assert!(sim.violations.is_empty(), "oracle run failed for seed {multi_seed}");
    let multi = run_multi_process(&scenario);
    let bad = mismatches(&multi.got, &sim.got);
    if bad > 0 {
        eprintln!("WARNING seed {multi_seed}: {bad} subscription(s) diverged from the simulator");
    }
    let mut table = Table::new(&["seed", "nodes", "pubs", "delivered", "mismatches", "wall ms"]);
    table.row(&[
        multi_seed.to_string(),
        scenario.nodes.to_string(),
        scenario.pubs.len().to_string(),
        multi.delivered.to_string(),
        bad.to_string(),
        fmt_f(multi.wall_ms),
    ]);
    table.print();
    let multi_rows = JsonValue::arr().push(
        JsonValue::obj()
            .set("seed", multi_seed)
            .set("nodes", scenario.nodes as u64)
            .set("publishes", scenario.pubs.len() as u64)
            .set("expected_deliveries", sim.got.iter().map(|g| g.len() as u64).sum::<u64>())
            .set("delivered", multi.delivered)
            .set("delivery_mismatches", bad)
            .set("wall_ms", multi.wall_ms),
    );

    let doc = JsonValue::obj()
        .set("experiment", "real_wire")
        .set("quick", quick)
        .set("single_process", single_rows)
        .set("multi_process", multi_rows)
        .set("metrics", psc_telemetry::global().snapshot().to_json());
    let path = write_bench_json("exp_real_wire", &doc).expect("write BENCH json");
    println!("\nmetrics snapshot written to {}", path.display());
    println!(
        "\nexpected shape: delivered tag sets identical to the simulator in both real\n\
         deployments (mismatches = 0); encodes per publish flat and small — the\n\
         serialize-once fan-out survives onto the socket, where per-peer frames are\n\
         reference clones of one WireBytes, never re-encodings."
    );
}
