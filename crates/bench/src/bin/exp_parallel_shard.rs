//! E13 report — sharded parallel broker hot path: deliveries/sec scaling
//! over the per-channel worker pool (`DaceConfig::shards`).
//!
//! Two workloads, each swept over the shard count:
//!
//! 1. **fanout** — 1 publisher, F subscribers each holding an
//!    accept-all subscription on all 8 tick kinds; a burst of publishes
//!    round-robins the kinds, so every publish reaches all F subscribers
//!    (the fan-out 512 configuration of the full run).
//! 2. **match** — a small cluster whose channels carry a ~100k-filter
//!    remote-subscription population (the `scaled_filters` counting-engine
//!    workload); a large publish burst measures the matching stage the
//!    worker pool parallelises.
//!
//! The *route* wall is the publisher's burst callback: staging, the
//! cross-shard dispatch, the (shard, sequence) merge and transmit
//! enqueueing — this is the section the shard pool actually runs
//! concurrently. The *total* wall adds the simulated network settle, which
//! is inherently sequential in `psc-simnet`, so end-to-end deliveries/sec
//! is reported as the honest systems figure while the route throughput
//! carries the scaling gate in `bench_compare`.
//!
//! The shard seed for each run is chosen (deterministically, via the
//! public [`psc_dace::shard_assignment`]) so the 8 kinds spread evenly
//! across the shards — the operator-facing tuning knob `shard_seed`
//! exists for exactly this.
//!
//! The container running the committed baseline may be single-core; the
//! report records `cores` (`std::thread::available_parallelism`) and the
//! compare gate only enforces the speedup floor when the fresh run had ≥4
//! cores. Run with `cargo run --release -p psc-bench --bin
//! exp_parallel_shard`; set `BENCH_QUICK=1` for a seconds-scale smoke.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

use psc_bench::{fmt_f, scaled_filters, write_bench_json, Table, SCALE_VOCAB};
use psc_dace::{shard_assignment, DaceConfig, DaceNode};
use psc_filter::RemoteFilter;
use psc_obvent::{declare_obvent_model, Obvent};
use psc_simnet::{NodeId, SimConfig, SimNet, SimTime};
use psc_telemetry::json::JsonValue;
use psc_telemetry::{Registry, Snapshot, Tracer};
use pubsub_core::FilterSpec;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Number of distinct obvent kinds (= dissemination channels = the units
/// the shard router distributes over workers).
const KINDS: usize = 8;
/// Numeric attributes per tick (matches `scaled_filters(_, _, ATTRS)`).
const ATTRS: usize = 4;

declare_obvent_model! {
    /// Tick kind 0 of the sharding workload: a symbol plus four numeric
    /// attributes, the shape `psc_bench::scaled_filters` predicates over.
    pub class ShardTick0 { sym: String, f0: f64, f1: f64, f2: f64, f3: f64 }
}
declare_obvent_model! {
    /// Tick kind 1.
    pub class ShardTick1 { sym: String, f0: f64, f1: f64, f2: f64, f3: f64 }
}
declare_obvent_model! {
    /// Tick kind 2.
    pub class ShardTick2 { sym: String, f0: f64, f1: f64, f2: f64, f3: f64 }
}
declare_obvent_model! {
    /// Tick kind 3.
    pub class ShardTick3 { sym: String, f0: f64, f1: f64, f2: f64, f3: f64 }
}
declare_obvent_model! {
    /// Tick kind 4.
    pub class ShardTick4 { sym: String, f0: f64, f1: f64, f2: f64, f3: f64 }
}
declare_obvent_model! {
    /// Tick kind 5.
    pub class ShardTick5 { sym: String, f0: f64, f1: f64, f2: f64, f3: f64 }
}
declare_obvent_model! {
    /// Tick kind 6.
    pub class ShardTick6 { sym: String, f0: f64, f1: f64, f2: f64, f3: f64 }
}
declare_obvent_model! {
    /// Tick kind 7.
    pub class ShardTick7 { sym: String, f0: f64, f1: f64, f2: f64, f3: f64 }
}

/// Runs `$body` with `$k` aliased to the concrete tick class `$idx % 8`
/// names — the typed subscribe/publish calls need a compile-time class.
macro_rules! with_kind {
    ($idx:expr, $k:ident => $body:expr) => {
        match ($idx) % KINDS {
            0 => {
                type $k = ShardTick0;
                $body
            }
            1 => {
                type $k = ShardTick1;
                $body
            }
            2 => {
                type $k = ShardTick2;
                $body
            }
            3 => {
                type $k = ShardTick3;
                $body
            }
            4 => {
                type $k = ShardTick4;
                $body
            }
            5 => {
                type $k = ShardTick5;
                $body
            }
            6 => {
                type $k = ShardTick6;
                $body
            }
            _ => {
                type $k = ShardTick7;
                $body
            }
        }
    };
}

fn kind_ids() -> Vec<u64> {
    (0..KINDS)
        .map(|k| with_kind!(k, K => K::kind_id().as_u64()))
        .collect()
}

/// Smallest shard seed spreading the workload's kinds evenly across
/// `shards` workers. Deterministic (pure search over the public hash), so
/// two runs of the bench agree; falls back to 0 when no perfect split
/// exists in the search window.
fn balanced_shard_seed(kind_ids: &[u64], shards: usize) -> u64 {
    if shards <= 1 {
        return 0;
    }
    let want = kind_ids.len() / shards;
    (0..100_000u64)
        .find(|&seed| {
            let mut counts = vec![0usize; shards];
            for &k in kind_ids {
                counts[shard_assignment(k, shards as u64, seed) as usize] += 1;
            }
            counts.iter().all(|&c| c == want)
        })
        .unwrap_or(0)
}

/// Deterministic publish stream: symbol from the shared vocabulary plus
/// `ATTRS` uniform attributes (the event shape `scaled_filters` expects).
fn tick_events(seed: u64, n: usize) -> Vec<(String, [f64; ATTRS])> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| {
            let sym = format!("s{}", rng.gen_range(0..SCALE_VOCAB));
            let mut f = [0.0; ATTRS];
            for slot in &mut f {
                *slot = rng.gen_range(0.0..100.0);
            }
            (sym, f)
        })
        .collect()
}

struct RunResult {
    shard_seed: u64,
    setup_wall_ms: f64,
    route_wall_ms: f64,
    total_wall_ms: f64,
    delivered: u64,
    snapshot: Snapshot,
}

/// One deployment run: `subscribers` nodes subscribe on every kind
/// (`filters_per_node_per_kind == 0` → one accept-all subscription per
/// kind; otherwise that many `scaled_filters` remote subscriptions per
/// kind), then the publisher fires `publishes` ticks in a single burst.
fn run(
    subscribers: usize,
    filters_per_node_per_kind: usize,
    publishes: usize,
    shards: usize,
    settle_ms: u64,
) -> RunResult {
    let shard_seed = balanced_shard_seed(&kind_ids(), shards);
    let mut sim = SimNet::new(SimConfig::with_seed(23));
    let ids: Vec<NodeId> = (0..(subscribers as u64 + 1)).map(NodeId).collect();
    let config = DaceConfig {
        // Keep periodic re-announcements out of the measurement window.
        announce_interval: psc_simnet::Duration::from_secs(30),
        shards,
        shard_seed,
        ..DaceConfig::default()
    };
    let registry = Arc::new(Registry::new());
    let tracer = Arc::new(Tracer::default());
    tracer.set_enabled(false);
    for (i, _) in ids.iter().enumerate() {
        sim.add_node(
            format!("n{i}"),
            DaceNode::factory_with_telemetry(
                ids.clone(),
                config.clone(),
                Arc::clone(&registry),
                Arc::clone(&tracer),
            ),
        );
    }

    let delivered = Arc::new(AtomicU64::new(0));
    let setup_start = Instant::now();
    if filters_per_node_per_kind == 0 {
        for &id in &ids[1..] {
            let d = delivered.clone();
            DaceNode::drive(&mut sim, id, move |domain| {
                for k in 0..KINDS {
                    let d = d.clone();
                    with_kind!(k, K => {
                        let sub = domain.subscribe(FilterSpec::accept_all(), move |_t: K| {
                            d.fetch_add(1, Ordering::Relaxed);
                        });
                        sub.activate().unwrap();
                        sub.detach();
                    });
                }
            });
        }
    } else {
        let total = subscribers * KINDS * filters_per_node_per_kind;
        let mut pool = scaled_filters(5, total, ATTRS).into_iter();
        for &id in &ids[1..] {
            let d = delivered.clone();
            let slab: Vec<RemoteFilter> =
                pool.by_ref().take(KINDS * filters_per_node_per_kind).collect();
            DaceNode::drive(&mut sim, id, move |domain| {
                for (j, filter) in slab.into_iter().enumerate() {
                    let d = d.clone();
                    with_kind!(j / filters_per_node_per_kind, K => {
                        let sub = domain.subscribe(FilterSpec::remote(filter), move |_t: K| {
                            d.fetch_add(1, Ordering::Relaxed);
                        });
                        sub.activate().unwrap();
                        sub.detach();
                    });
                }
            });
        }
    }
    sim.run_until(SimTime::from_millis(40));
    let setup_wall_ms = setup_start.elapsed().as_secs_f64() * 1e3;

    // The measured burst: every publish is staged, then one cross-shard
    // dispatch matches/encodes them in parallel and the merge applies the
    // effects in canonical (shard, sequence) order.
    let events = tick_events(11, publishes);
    let route_start = Instant::now();
    DaceNode::drive(&mut sim, ids[0], move |domain| {
        for (i, (sym, f)) in events.into_iter().enumerate() {
            with_kind!(i, K => {
                domain
                    .publish(K::new(sym, f[0], f[1], f[2], f[3]))
                    .expect("publish tick");
            });
        }
    });
    let route_wall_ms = route_start.elapsed().as_secs_f64() * 1e3;
    let deadline = sim.now() + psc_simnet::Duration::from_millis(settle_ms);
    sim.run_until(deadline);
    let total_wall_ms = route_start.elapsed().as_secs_f64() * 1e3;

    RunResult {
        shard_seed,
        setup_wall_ms,
        route_wall_ms,
        total_wall_ms,
        delivered: delivered.load(Ordering::Relaxed),
        snapshot: registry.snapshot(),
    }
}

fn row_json(shards: usize, publishes: usize, r: &RunResult) -> JsonValue {
    JsonValue::obj()
        .set("shards", shards as u64)
        .set("shard_seed", r.shard_seed)
        .set("publishes", publishes as u64)
        .set("setup_wall_ms", r.setup_wall_ms)
        .set("route_wall_ms", r.route_wall_ms)
        .set("route_us_per_publish", r.route_wall_ms * 1e3 / publishes as f64)
        .set("total_wall_ms", r.total_wall_ms)
        .set("deliveries", r.delivered)
        .set(
            "deliveries_per_sec",
            r.delivered as f64 / (r.total_wall_ms / 1e3).max(1e-9),
        )
        .set("shard_batches", r.snapshot.counter("shard.batches"))
        .set("shard_items", r.snapshot.counter("shard.items"))
        .set("shard_merge_waits", r.snapshot.counter("shard.merge.waits"))
        .set("shard_imbalance", r.snapshot.counter("shard.imbalance"))
}

fn sweep(
    title: &str,
    shard_counts: &[usize],
    subscribers: usize,
    filters_per_node_per_kind: usize,
    publishes: usize,
    settle_ms: u64,
) -> JsonValue {
    println!("{title}");
    let mut table = Table::new(&[
        "shards",
        "route ms",
        "route us/pub",
        "total ms",
        "deliveries",
        "deliv/s",
        "shard items",
        "imbalance",
    ]);
    let mut rows = JsonValue::arr();
    let mut base_route = None;
    for &shards in shard_counts {
        let r = run(subscribers, filters_per_node_per_kind, publishes, shards, settle_ms);
        let base = *base_route.get_or_insert(r.route_wall_ms);
        table.row(&[
            format!("{shards} ({:.2}x)", base / r.route_wall_ms.max(1e-9)),
            fmt_f(r.route_wall_ms),
            fmt_f(r.route_wall_ms * 1e3 / publishes as f64),
            fmt_f(r.total_wall_ms),
            r.delivered.to_string(),
            fmt_f(r.delivered as f64 / (r.total_wall_ms / 1e3).max(1e-9)),
            r.snapshot.counter("shard.items").to_string(),
            r.snapshot.counter("shard.imbalance").to_string(),
        ]);
        rows = rows.push(row_json(shards, publishes, &r));
    }
    table.print();
    println!();
    rows
}

fn main() {
    psc_telemetry::set_global_enabled(true);
    let quick = std::env::var_os("BENCH_QUICK").is_some();
    let cores = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    let shard_counts: &[usize] = if quick { &[1, 2] } else { &[1, 2, 4] };
    let (fanout, fanout_pubs, fanout_settle) = if quick { (16, 16, 800) } else { (512, 64, 3_000) };
    let (match_nodes, per_node_kind, match_pubs, match_settle) =
        if quick { (4, 32, 64, 500) } else { (4, 3_072, 8_192, 1_500) };
    let match_subs = match_nodes * KINDS * per_node_kind;

    println!(
        "E13: sharded parallel broker — worker-pool scaling over {KINDS} kinds ({cores} core(s))\n"
    );
    let fanout_rows = sweep(
        &format!(
            "fanout: 1 publisher, {fanout} all-kind subscribers, {fanout_pubs}-publish burst"
        ),
        shard_counts,
        fanout,
        0,
        fanout_pubs,
        fanout_settle,
    );
    let match_rows = sweep(
        &format!(
            "match: {match_nodes} subscriber nodes, {match_subs} filtered subscriptions, \
             {match_pubs}-publish burst"
        ),
        shard_counts,
        match_nodes,
        per_node_kind,
        match_pubs,
        match_settle,
    );

    let doc = JsonValue::obj()
        .set("experiment", "parallel_shard")
        .set("quick", quick)
        .set("cores", cores as u64)
        .set("kinds", KINDS as u64)
        .set(
            "fanout",
            JsonValue::obj()
                .set("subscribers", fanout as u64)
                .set("publishes", fanout_pubs as u64)
                .set("rows", fanout_rows),
        )
        .set(
            "match",
            JsonValue::obj()
                .set("subscriptions", match_subs as u64)
                .set("publishes", match_pubs as u64)
                .set("rows", match_rows),
        )
        .set("metrics", psc_telemetry::global().snapshot().to_json());
    let path = write_bench_json("exp_parallel_shard", &doc).expect("write BENCH json");
    println!("metrics snapshot written to {}", path.display());
    println!(
        "\nexpected shape: route throughput scales with the shard count up to the core\n\
         count (the match workload is the parallel section; the fan-out workload is\n\
         dominated by the sequential simulated network); shards=1 runs the inline\n\
         engine, so its shard.* counters are zero."
    );
}
