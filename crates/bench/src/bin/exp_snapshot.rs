//! E15 report — consistent cluster snapshots: capture cost, wave latency
//! under loss, and byte stability of the rendered cluster image.
//!
//! Three claims, one section each:
//!
//! 1. **capture** — a 3-node cluster delivers a 256-publish certified
//!    burst; the snapshot wave is initiated while the tail of the burst
//!    is still in flight. The row reports the wall cost of the initiate
//!    call (local fragment capture + marker flood — the only part that
//!    runs on the caller), the virtual time until the cut assembles, the
//!    deterministic marker/fragment message counts, and how many in-flight
//!    obvents the cut recorded. Swept over `shards` ∈ {1, 4}: the sharded
//!    row exercises the worker-pool capture merge, which must not change
//!    the economics.
//! 2. **byte stability** — every capture row runs its workload twice and
//!    diffs the rendered cluster images; `byte_mismatch` must be 0 (the
//!    rendering is the determinism oracle, same as the harness uses).
//! 3. **loss** — the same wave with the chaos window kept lossy through
//!    marker delivery, swept over drop probabilities. Liveness comes from
//!    the `SnapRetry` re-floods; the row reports the virtual completion
//!    time and the retry/force-close counts, all deterministic for the
//!    fixed seed and therefore gated.
//!
//! Run with `cargo run --release -p psc-bench --bin exp_snapshot`. The
//! workload is fixed-size in quick and full mode (the simulator costs
//! milliseconds), so every deterministic count is directly comparable
//! across scales.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

use psc_bench::{fmt_f, write_bench_json, Table};
use psc_dace::{DaceConfig, DaceNode};
use psc_obvent::builtin::Certified;
use psc_obvent::declare_obvent_model;
use psc_simnet::{
    Duration as SimDuration, LatencyModel, NodeId, SimConfig, SimNet, SimTime,
};
use psc_telemetry::json::JsonValue;
use psc_telemetry::{Registry, Tracer};
use pubsub_core::FilterSpec;

declare_obvent_model! {
    /// The snapshot workload: a certified tick, so the capture carries a
    /// real delivered set and a live retransmission log.
    pub class SnapBenchTick implements [Certified] { n: u64 }
}

const PUBLISHES: u64 = 256;

/// Tail burst published by n1 at the cut instant: pre-cut traffic still in
/// flight toward the initiator when it captures, so the cut's in-flight
/// recordings are exercised (the initiator's own outbound burst can never
/// land in its *incoming* recording window).
const TAIL: u64 = 32;

fn attach(sim: &mut SimNet, id: NodeId) -> Arc<AtomicU64> {
    let delivered = Arc::new(AtomicU64::new(0));
    let counter = Arc::clone(&delivered);
    DaceNode::drive(sim, id, move |domain| {
        let sub = domain.subscribe(FilterSpec::accept_all(), move |_t: SnapBenchTick| {
            counter.fetch_add(1, Ordering::Relaxed);
        });
        sub.activate().expect("attach subscriber");
        sub.detach();
    });
    delivered
}

struct WaveRun {
    capture_wall_ms: f64,
    wave_virtual_ms: u64,
    completed: bool,
    markers_sent: u64,
    frags_received: u64,
    inflight_recorded: u64,
    retries: u64,
    forced: u64,
    render: String,
}

/// One full wave: warm up, burst the certified workload, initiate the
/// snapshot with the tail of the burst (and `loss`) still in flight, and
/// step virtual time until the cut assembles.
fn run_wave(shards: usize, loss: f64) -> WaveRun {
    let mut sim = SimNet::new(SimConfig {
        seed: 15,
        latency: LatencyModel::Uniform {
            min: SimDuration::from_millis(1),
            max: SimDuration::from_millis(5),
        },
        drop_probability: 0.0,
    });
    let ids: Vec<NodeId> = (0..3u64).map(NodeId).collect();
    let registry = Arc::new(Registry::new());
    let tracer = Arc::new(Tracer::default());
    tracer.set_enabled(false);
    let config = DaceConfig { shards, ..DaceConfig::default() };
    for (i, _) in ids.iter().enumerate() {
        sim.add_node(
            format!("n{i}"),
            DaceNode::factory_with_telemetry(
                ids.clone(),
                config.clone(),
                Arc::clone(&registry),
                Arc::clone(&tracer),
            ),
        );
    }
    let sinks = [attach(&mut sim, ids[1]), attach(&mut sim, ids[2])];
    sim.run_until(SimTime::from_millis(40));

    DaceNode::drive(&mut sim, ids[0], move |domain| {
        for n in 0..PUBLISHES {
            domain.publish(SnapBenchTick::new(n)).expect("publish tick");
        }
    });
    // Let part of the burst drain, then cut while the rest (plus the
    // certified ack machinery) is in flight, under the section's loss.
    sim.set_drop_probability(loss);
    let mid = sim.now() + SimDuration::from_millis(2);
    sim.run_until(mid);
    DaceNode::drive(&mut sim, ids[1], move |domain| {
        for n in 0..TAIL {
            domain.publish(SnapBenchTick::new(PUBLISHES + n)).expect("publish tail");
        }
    });

    let capture_start = Instant::now();
    DaceNode::snapshot_from(&mut sim, ids[0]);
    let capture_wall_ms = capture_start.elapsed().as_secs_f64() * 1e3;

    let wave_start = sim.now();
    let deadline = wave_start + SimDuration::from_millis(10_000);
    while DaceNode::snapshot_cut_of(&mut sim, ids[0]).is_none() && sim.now() < deadline {
        let step = sim.now() + SimDuration::from_millis(1);
        sim.run_until(step);
    }
    let wave_virtual_ms = (sim.now().as_micros() - wave_start.as_micros()) / 1_000;

    // Lossless settle so the delivery sanity check below is meaningful.
    sim.set_drop_probability(0.0);
    let settle = sim.now() + SimDuration::from_millis(3_000);
    sim.run_until(settle);
    for sink in &sinks {
        assert_eq!(
            sink.load(Ordering::Relaxed),
            PUBLISHES + TAIL,
            "the snapshot plane must not perturb certified delivery"
        );
    }

    let cut = DaceNode::snapshot_cut_of(&mut sim, ids[0]);
    let snapshot = registry.snapshot();
    WaveRun {
        capture_wall_ms,
        wave_virtual_ms,
        completed: cut.is_some(),
        markers_sent: snapshot.counter("snapshot.markers.sent"),
        frags_received: snapshot.counter("snapshot.frags.received"),
        inflight_recorded: snapshot.counter("snapshot.inflight.recorded"),
        retries: snapshot.counter("snapshot.retries"),
        forced: snapshot.counter("snapshot.forced"),
        render: cut.map(|c| c.render()).unwrap_or_default(),
    }
}

fn wave_row(key: &str, value: u64, first: &WaveRun, replay: &WaveRun) -> JsonValue {
    JsonValue::obj()
        .set(key, value)
        .set("publishes", PUBLISHES)
        .set("capture_wall_ms", first.capture_wall_ms)
        .set("wave_virtual_ms", first.wave_virtual_ms)
        .set("incomplete", u64::from(!first.completed))
        .set("byte_mismatch", u64::from(first.render != replay.render))
        .set("render_bytes", first.render.len() as u64)
        .set("markers_sent", first.markers_sent)
        .set("frags_received", first.frags_received)
        .set("inflight_recorded", first.inflight_recorded)
        .set("retries", first.retries)
        .set("forced", first.forced)
}

fn main() {
    psc_telemetry::set_global_enabled(true);
    let quick = std::env::var_os("BENCH_QUICK").is_some();

    println!("E15: consistent cluster snapshots — capture cost, wave latency, byte stability\n");

    let mut capture_table = Table::new(&[
        "shards",
        "capture ms",
        "wave virt ms",
        "complete",
        "byte-stable",
        "markers",
        "inflight rec",
    ]);
    let mut capture_rows = JsonValue::arr();
    for &shards in &[1usize, 4] {
        let first = run_wave(shards, 0.0);
        let replay = run_wave(shards, 0.0);
        capture_table.row(&[
            shards.to_string(),
            fmt_f(first.capture_wall_ms),
            first.wave_virtual_ms.to_string(),
            u64::from(first.completed).to_string(),
            u64::from(first.render == replay.render).to_string(),
            first.markers_sent.to_string(),
            first.inflight_recorded.to_string(),
        ]);
        capture_rows = capture_rows.push(wave_row("shards", shards as u64, &first, &replay));
    }
    capture_table.print();
    println!();

    let mut loss_table = Table::new(&[
        "loss %",
        "wave virt ms",
        "complete",
        "retries",
        "forced",
        "markers",
    ]);
    let mut loss_rows = JsonValue::arr();
    for &loss in &[0.0f64, 0.1, 0.3] {
        let first = run_wave(1, loss);
        let replay = run_wave(1, loss);
        loss_table.row(&[
            format!("{:.0}", loss * 100.0),
            first.wave_virtual_ms.to_string(),
            u64::from(first.completed).to_string(),
            first.retries.to_string(),
            u64::from(first.forced > 0).to_string(),
            first.markers_sent.to_string(),
        ]);
        loss_rows =
            loss_rows.push(wave_row("loss_pct", (loss * 100.0) as u64, &first, &replay));
    }
    loss_table.print();

    let doc = JsonValue::obj()
        .set("experiment", "snapshot")
        .set("quick", quick)
        .set("publishes", PUBLISHES)
        .set("capture", capture_rows)
        .set("loss", loss_rows)
        .set("metrics", psc_telemetry::global().snapshot().to_json());
    let path = write_bench_json("exp_snapshot", &doc).expect("write BENCH json");
    println!("\nmetrics snapshot written to {}", path.display());
    println!(
        "\nexpected shape: the capture call costs well under a millisecond and the wave\n\
         assembles within a few virtual round trips at loss 0; every row is complete\n\
         and byte-stable across replays (the render is the determinism oracle); under\n\
         loss the SnapRetry re-floods keep the wave live at a bounded retry count, and\n\
         the sharded capture changes none of the deterministic message counts."
    );
}
