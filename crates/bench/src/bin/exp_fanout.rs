//! E6 report — pub/sub vs sequential RMI for 1→N notification (§5.4).
//!
//! Wall-clock time to notify N receivers of one quote: a single publish on
//! the bus versus N blocking remote invocations. Run with
//! `cargo run --release -p psc-bench --bin exp_fanout`.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

use psc_bench::{fmt_f, quote_obvents, write_bench_json, BenchQuote, Table};
use psc_dace::inproc::Bus;
use psc_rmi::{remote_iface, DgcMode, RmiError, RmiNetwork};
use psc_telemetry::{json::JsonValue, Registry};
use pubsub_core::FilterSpec;

remote_iface! {
    pub trait QuoteSink {
        fn notify(&self, company: String, price: f64, amount: u32) -> ();
    }
}

struct Sink {
    count: Arc<AtomicU64>,
}

impl QuoteSink for Sink {
    fn notify(&self, _c: String, _p: f64, _a: u32) -> Result<(), RmiError> {
        self.count.fetch_add(1, Ordering::Relaxed);
        Ok(())
    }
}

fn main() {
    // The codec's encode/pool counters live in the process-global registry;
    // the per-deployment registry below only sees core.* counters.
    psc_telemetry::set_global_enabled(true);
    let quick = std::env::var_os("BENCH_QUICK").is_some();
    println!("E6: 1-to-N notification — one publish vs N sequential remote invocations\n");
    let quotes = quote_obvents(5, 64);
    let rounds = if quick { 20usize } else { 200usize };
    // The sequential-RMI side spawns one runtime thread per receiver, so the
    // list stops at 128; the 512-way fan-out point is measured on the DACE
    // publish path by `exp_serialize_once` (E8), where serialize-once applies.
    let receivers: &[usize] = if quick {
        &[1, 4]
    } else {
        &[1, 4, 16, 64, 128]
    };
    let mut table = Table::new(&[
        "receivers",
        "pubsub us/round",
        "rmi us/round",
        "rmi/pubsub",
    ]);

    let mut json_rows = JsonValue::arr();
    for &n in receivers {
        let global_before = psc_telemetry::global().snapshot();
        // pub/sub — all domains record into one registry, so the snapshot's
        // `core.published` / `core.delivered` cover the whole fan-out.
        let registry = Registry::new();
        let bus = Bus::new();
        let publisher = bus.domain_inline();
        publisher.attach_telemetry(&registry);
        let received = Arc::new(AtomicU64::new(0));
        let domains: Vec<_> = (0..n)
            .map(|_| {
                let d = bus.domain_inline();
                d.attach_telemetry(&registry);
                let r = received.clone();
                let sub = d.subscribe(FilterSpec::accept_all(), move |_q: BenchQuote| {
                    r.fetch_add(1, Ordering::Relaxed);
                });
                sub.activate().unwrap();
                sub.detach();
                d
            })
            .collect();
        let start = Instant::now();
        for i in 0..rounds {
            publisher.publish(quotes[i % quotes.len()].clone()).unwrap();
        }
        let pubsub_us = start.elapsed().as_secs_f64() * 1e6 / rounds as f64;
        assert_eq!(received.load(Ordering::Relaxed) as usize, rounds * n);
        drop(domains);

        // sequential RMI
        let net = RmiNetwork::new(n + 1, DgcMode::Strong);
        let rts = net.runtimes();
        let count = Arc::new(AtomicU64::new(0));
        let stubs: Vec<QuoteSinkStub> = (1..=n)
            .map(|i| {
                let r = QuoteSinkStub::export(
                    &rts[i],
                    Arc::new(Sink {
                        count: count.clone(),
                    }),
                );
                QuoteSinkStub::attach(&rts[0], r).unwrap()
            })
            .collect();
        let start = Instant::now();
        for i in 0..rounds {
            let q = &quotes[i % quotes.len()];
            for stub in &stubs {
                stub.notify(q.company().clone(), *q.price(), *q.amount())
                    .unwrap();
            }
        }
        let rmi_us = start.elapsed().as_secs_f64() * 1e6 / rounds as f64;
        assert_eq!(count.load(Ordering::Relaxed) as usize, rounds * n);

        table.row(&[
            n.to_string(),
            fmt_f(pubsub_us),
            fmt_f(rmi_us),
            format!("{:.1}x", rmi_us / pubsub_us),
        ]);
        // Per-row delta of the global codec counters (encode traffic and
        // buffer-pool effectiveness across both transports).
        let global_after = psc_telemetry::global().snapshot();
        let mut codec = JsonValue::obj();
        for (name, &after) in &global_after.counters {
            if name.starts_with("codec.") {
                codec = codec.set(name.clone(), after - global_before.counter(name));
            }
        }
        json_rows = json_rows.push(
            JsonValue::obj()
                .set("receivers", n)
                .set("pubsub_us_per_round", pubsub_us)
                .set("rmi_us_per_round", rmi_us)
                .set("rmi_over_pubsub", rmi_us / pubsub_us)
                .set("codec", codec)
                .set("metrics", registry.snapshot().to_json()),
        );
    }
    table.print();
    let doc = JsonValue::obj()
        .set("experiment", "fanout")
        .set("rounds", rounds as u64)
        .set("rows", json_rows)
        .set("global_metrics", psc_telemetry::global().snapshot().to_json());
    let path = write_bench_json("fanout", &doc).expect("write BENCH json");
    println!("\nmetrics snapshot written to {}", path.display());
    println!(
        "\nexpected shape: RMI cost grows linearly in N (one synchronous round-trip per\n\
         receiver); pub/sub grows far more slowly (single publish, fabric fan-out) —\n\
         the decoupling argument for disseminating quotes via pub/sub."
    );
}
