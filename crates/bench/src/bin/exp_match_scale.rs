//! E11 report — million-subscription matching: the attribute-indexed
//! counting engine vs naive per-filter evaluation.
//!
//! Sweeps the live-subscription count (1k → 1M) against the event width
//! (attributes per obvent) and reports events/sec through
//! [`FilterIndex::matching`], the per-event telemetry of the counting
//! engine (`filter.index.probes` / `candidates` / `shortcircuits`) and the
//! speedup over `naive_matching` where the naive pass is affordable (the
//! naive baseline is skipped at 1M subscriptions — it is the point of the
//! index that nobody should run that).
//!
//! Run with `cargo run --release -p psc-bench --bin exp_match_scale`.
//! Set `BENCH_QUICK=1` for a seconds-scale smoke configuration.

use std::time::Instant;

use psc_bench::{fmt_f, scaled_filters, wide_events, write_bench_json, Table};
use psc_filter::{FilterIndex, Value};
use psc_telemetry::json::JsonValue;
use psc_telemetry::Snapshot;

fn counter_delta(before: &Snapshot, after: &Snapshot, name: &str) -> u64 {
    after.counter(name) - before.counter(name)
}

/// Times `matching` over `events` (one warm-up pass, then timed passes)
/// and returns (µs per event, matches on the last event).
fn measure_indexed(index: &FilterIndex, events: &[Value], passes: usize) -> (f64, usize) {
    let mut matches = 0usize;
    for event in events {
        matches = index.matching(event).len();
    }
    let start = Instant::now();
    for _ in 0..passes {
        for event in events {
            matches = index.matching(event).len();
        }
    }
    let micros = start.elapsed().as_secs_f64() * 1e6 / (events.len() * passes) as f64;
    (micros, matches)
}

fn measure_naive(index: &FilterIndex, events: &[Value]) -> (f64, usize) {
    let mut matches = 0usize;
    let start = Instant::now();
    for event in events {
        matches = index.naive_matching(event).len();
    }
    let micros = start.elapsed().as_secs_f64() * 1e6 / events.len() as f64;
    (micros, matches)
}

fn main() {
    psc_telemetry::set_global_enabled(true);
    let quick = std::env::var_os("BENCH_QUICK").is_some();
    let sweep: &[(usize, usize)] = if quick {
        &[(1_000, 8), (10_000, 8)]
    } else {
        &[
            (1_000, 8),
            (10_000, 8),
            (100_000, 8),
            (1_000_000, 8),
            (1_000, 32),
            (10_000, 32),
            (100_000, 32),
            (1_000_000, 32),
        ]
    };
    let events_n = 200usize;
    // Naive is O(filters) per event: cap the population it runs against and
    // the events it chews through so the report stays minutes-scale.
    let naive_max_subs = 100_000usize;
    let naive_events = 20usize;

    println!("E11: match scale — attribute-indexed counting engine vs naive evaluation");
    println!("workload: wide numeric events; filters = narrow band + guard conjunctions\n");

    let mut table = Table::new(&[
        "subscriptions",
        "attrs",
        "build ms",
        "us/event",
        "events/sec",
        "probes/event",
        "candidates/event",
        "shortcircuit %",
        "naive us/event",
        "speedup",
    ]);
    let mut rows = JsonValue::arr();
    for &(subs, attrs) in sweep {
        let events = wide_events(0xeb11, events_n, attrs);
        let build_start = Instant::now();
        let mut index = FilterIndex::new();
        for f in scaled_filters(1, subs, attrs) {
            index.insert(f);
        }
        let build_ms = build_start.elapsed().as_secs_f64() * 1e3;

        let passes = if subs >= 1_000_000 { 2 } else { 5 };
        let before = psc_telemetry::global().snapshot();
        let (us, _) = measure_indexed(&index, &events, passes);
        let after = psc_telemetry::global().snapshot();
        let calls = counter_delta(&before, &after, "filter.matching_calls").max(1) as f64;
        let probes = counter_delta(&before, &after, "filter.index.probes") as f64 / calls;
        let candidates = counter_delta(&before, &after, "filter.index.candidates") as f64 / calls;
        let shortcircuits =
            counter_delta(&before, &after, "filter.index.shortcircuits") as f64 / calls;
        let shortcircuit_pct = 100.0 * shortcircuits / subs as f64;

        let (naive_cells, naive_json) = if subs <= naive_max_subs {
            let probe_events = &events[..naive_events.min(events.len())];
            let (naive_us, naive_m) = measure_naive(&index, probe_events);
            // Honest speedup: the indexed figure over the same event subset.
            let (indexed_us, indexed_m) = measure_indexed(&index, probe_events, 1);
            assert_eq!(naive_m, indexed_m, "indexed and naive must agree");
            let speedup = naive_us / indexed_us;
            (
                (fmt_f(naive_us), format!("{speedup:.0}x")),
                Some((naive_us, speedup)),
            )
        } else {
            (("-".to_string(), "-".to_string()), None)
        };

        table.row(&[
            subs.to_string(),
            attrs.to_string(),
            fmt_f(build_ms),
            fmt_f(us),
            fmt_f(1e6 / us),
            fmt_f(probes),
            fmt_f(candidates),
            format!("{shortcircuit_pct:.1}"),
            naive_cells.0,
            naive_cells.1,
        ]);
        let mut row = JsonValue::obj()
            // Composite sweep key for the regression gate (subscription
            // count and attribute width are both part of the identity).
            .set("key", (subs * 100 + attrs) as u64)
            .set("subscriptions", subs as u64)
            .set("attrs", attrs as u64)
            .set("build_ms", build_ms)
            .set("us_per_event", us)
            .set("events_per_sec", 1e6 / us)
            .set("probes_per_event", probes)
            .set("candidates_per_event", candidates)
            .set("shortcircuits_per_event", shortcircuits);
        if let Some((naive_us, speedup)) = naive_json {
            row = row.set("naive_us_per_event", naive_us).set("speedup", speedup);
        }
        rows = rows.push(row);
    }
    table.print();

    let doc = JsonValue::obj()
        .set("experiment", "match_scale")
        .set("quick", quick)
        .set("events", events_n as u64)
        .set("rows", rows);
    let path = write_bench_json("exp_match_scale", &doc).expect("write BENCH json");
    println!("\nmetrics written to {}", path.display());
    println!(
        "\nexpected shape: probes/event tracks the attribute count, not the\n\
         subscription count; candidates/event stays a tiny fraction of the\n\
         population, so us/event grows sub-linearly while naive grows linearly —\n\
         the speedup column should clear 50x by 100k subscriptions."
    );
}
