//! E9 report — §6.3: pub/sub vs tuple space.
//!
//! The same 1→N event-notification workload on three mechanisms, plus the
//! semantic comparison the paper draws (copies vs consumption, push vs
//! pull). Run with `cargo run --release -p psc-bench --bin exp_tuplespace`.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

use psc_bench::{fmt_f, quote_obvents, BenchQuote, Table};
use psc_dace::inproc::Bus;
use psc_tuplespace::{template, tuple, TupleSpace};
use pubsub_core::FilterSpec;

fn main() {
    println!("E9: pub/sub vs tuple space — 1 producer, N consumers, 500 events\n");
    let quotes = quote_obvents(13, 64);
    let rounds = 500usize;
    let mut table = Table::new(&[
        "consumers",
        "pubsub us/event",
        "space react us/event",
        "space rd-poll us/event",
    ]);

    for &n in &[1usize, 4, 16] {
        // pub/sub push
        let bus = Bus::new();
        let publisher = bus.domain_inline();
        let received = Arc::new(AtomicU64::new(0));
        let _domains: Vec<_> = (0..n)
            .map(|_| {
                let d = bus.domain_inline();
                let r = received.clone();
                let sub = d.subscribe(FilterSpec::accept_all(), move |_q: BenchQuote| {
                    r.fetch_add(1, Ordering::Relaxed);
                });
                sub.activate().unwrap();
                sub.detach();
                d
            })
            .collect();
        let start = Instant::now();
        for i in 0..rounds {
            publisher.publish(quotes[i % quotes.len()].clone()).unwrap();
        }
        let pubsub_us = start.elapsed().as_secs_f64() * 1e6 / rounds as f64;

        // space with reactions (push-like)
        let space = TupleSpace::new();
        let reacted = Arc::new(AtomicU64::new(0));
        let _reactions: Vec<_> = (0..n)
            .map(|_| {
                let r = reacted.clone();
                space.react(template![= "quote", str, float, int], move |_t| {
                    r.fetch_add(1, Ordering::Relaxed);
                })
            })
            .collect();
        let start = Instant::now();
        for i in 0..rounds {
            let q = &quotes[i % quotes.len()];
            space.out(tuple![
                "quote",
                q.company().as_str(),
                *q.price(),
                *q.amount() as i64
            ]);
        }
        let react_us = start.elapsed().as_secs_f64() * 1e6 / rounds as f64;

        // space with polling readers (the original pull)
        let space2 = TupleSpace::new();
        let start = Instant::now();
        for i in 0..rounds {
            let q = &quotes[i % quotes.len()];
            space2.out(tuple![
                "quote",
                q.company().as_str(),
                *q.price(),
                *q.amount() as i64
            ]);
            for _ in 0..n {
                std::hint::black_box(space2.rd(&template![= "quote", str, float, int]));
            }
            space2.take(&template![= "quote", str, float, int]);
        }
        let poll_us = start.elapsed().as_secs_f64() * 1e6 / rounds as f64;

        table.row(&[
            n.to_string(),
            fmt_f(pubsub_us),
            fmt_f(react_us),
            fmt_f(poll_us),
        ]);
    }
    table.print();

    println!("\nsemantic comparison (paper §6.3.3):");
    let space = TupleSpace::new();
    space.out(tuple!["job", 1]);
    let a = space.take(&template![= "job", int]);
    let b = space.take(&template![= "job", int]);
    println!(
        "  tuple space `in`: first taker gets the tuple ({}), second gets nothing ({}) — consumption",
        a.is_some(),
        b.is_none()
    );
    println!("  pub/sub publish: every subscriber gets its own clone — multicast semantics");
    println!(
        "  flow: rd/in block or poll (coupled); handlers are invoked asynchronously (decoupled)"
    );
}
