//! E2 report — §3.3: applying filters on (remote) filtering hosts avoids
//! wasting network bandwidth.
//!
//! One publisher, S subscribers with filters of controlled selectivity.
//! Compares the three placements (subscriber-side, publisher-side, broker)
//! by messages on the wire and bytes sent. Run with
//! `cargo run --release -p psc-bench --bin exp_filter_placement`.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use psc_bench::{fmt_f, quote_obvents, write_bench_json, BenchQuote, Table};
use psc_dace::{DaceConfig, DaceNode, Placement};
use psc_filter::{CmpOp, Predicate, RemoteFilter};
use psc_simnet::{NodeId, SimConfig, SimNet, SimTime};
use psc_telemetry::{json::JsonValue, Registry, Snapshot, Tracer};
use pubsub_core::FilterSpec;

fn run(placement: Placement, selectivity: f64, subscribers: usize) -> (u64, u64, u64, Snapshot) {
    let mut sim = SimNet::new(SimConfig::with_seed(42));
    let ids: Vec<NodeId> = (0..(subscribers as u64 + 1)).map(NodeId).collect();
    let config = DaceConfig {
        placement,
        // Keep periodic control re-announcements out of the measurement
        // window so the counts isolate data traffic.
        announce_interval: psc_simnet::Duration::from_secs(30),
        ..DaceConfig::default()
    };
    // Whole-deployment registry; tracing is off (pure counting run).
    let registry = Arc::new(Registry::new());
    let tracer = Arc::new(Tracer::default());
    tracer.set_enabled(false);
    for i in 0..=subscribers {
        sim.add_node(
            format!("n{i}"),
            DaceNode::factory_with_telemetry(
                ids.clone(),
                config.clone(),
                Arc::clone(&registry),
                Arc::clone(&tracer),
            ),
        );
    }
    let delivered = Arc::new(AtomicU64::new(0));
    // price uniform in 1..200: threshold = selectivity * 199 + 1.
    let threshold = 1.0 + 199.0 * selectivity;
    for &id in &ids[1..] {
        let d = delivered.clone();
        let filter = RemoteFilter::conjunction(vec![Predicate::new(
            "price",
            CmpOp::Lt,
            threshold,
        )]);
        DaceNode::drive(&mut sim, id, move |domain| {
            let sub = domain.subscribe(FilterSpec::remote(filter), move |_q: BenchQuote| {
                d.fetch_add(1, Ordering::Relaxed);
            });
            sub.activate().unwrap();
            sub.detach();
        });
    }
    sim.run_until(SimTime::from_millis(20));
    sim.reset_stats();

    for q in quote_obvents(9, 100) {
        DaceNode::publish_from(&mut sim, ids[0], q);
    }
    let deadline = sim.now() + psc_simnet::Duration::from_millis(600);
    sim.run_until(deadline);
    let stats = sim.stats();
    (
        stats.sent,
        stats.bytes_sent,
        delivered.load(Ordering::Relaxed),
        registry.snapshot(),
    )
}

fn main() {
    // Expose the factoring engine's counters (filter.factored_evals_saved)
    // and codec pool counters alongside the per-deployment registries.
    psc_telemetry::set_global_enabled(true);
    println!("E2: remote-filter placement vs bandwidth");
    println!("1 publisher, S subscribers, 100 quotes; control traffic excluded by reset\n");

    let mut json_rows = JsonValue::arr();
    for subscribers in [4usize, 16] {
        println!("S = {subscribers} subscribers");
        let mut table = Table::new(&[
            "selectivity",
            "placement",
            "msgs sent",
            "KiB sent",
            "delivered",
        ]);
        for selectivity in [0.01, 0.1, 0.5, 1.0] {
            for (name, placement) in [
                ("subscriber", Placement::Subscriber),
                ("publisher", Placement::Publisher),
                ("broker(n1)", Placement::Broker(NodeId(1))),
            ] {
                let (sent, bytes, delivered, wire) = run(placement, selectivity, subscribers);
                table.row(&[
                    fmt_f(selectivity),
                    name.to_string(),
                    sent.to_string(),
                    fmt_f(bytes as f64 / 1024.0),
                    delivered.to_string(),
                ]);
                json_rows = json_rows.push(
                    JsonValue::obj()
                        .set("subscribers", subscribers)
                        .set("selectivity", selectivity)
                        .set("placement", name)
                        .set("msgs_sent", sent)
                        .set("bytes_sent", bytes)
                        .set("delivered", delivered)
                        .set("metrics", wire.to_json()),
                );
            }
        }
        table.print();
        println!();
    }
    println!(
        "expected shape: publisher-side sends ~selectivity * S data messages per quote;\n\
         subscriber-side always sends S; broker sends 1 upstream + matching fan-out."
    );
    let global = psc_telemetry::global().snapshot();
    println!(
        "factoring: {} matching calls saved {} predicate/sub-expression evaluations",
        global.counter("filter.matching_calls"),
        global.counter("filter.factored_evals_saved"),
    );
    let doc = JsonValue::obj()
        .set("experiment", "filter_placement")
        .set("quotes", 100u64)
        .set("rows", json_rows)
        .set("global_metrics", global.to_json());
    let path = write_bench_json("filter_placement", &doc).expect("write BENCH json");
    println!("metrics snapshot written to {}", path.display());
}
