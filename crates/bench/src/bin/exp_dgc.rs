//! E7 report — §5.4.2: the distributed-GC caveat and the [CNH99] fix.
//!
//! A remote object's reference is published to S subscribers (each creates
//! a proxy). A fraction of subscribers crash without releasing. Strong DGC
//! keeps the object alive forever; lease DGC collects once leases lapse.
//!
//! Run with `cargo run --release -p psc-bench --bin exp_dgc`.

use std::sync::Arc;

use psc_bench::Table;
use psc_rmi::{remote_iface, DgcMode, ObjectId, RmiError, RmiNetwork};

remote_iface! {
    pub trait Token {
        fn ping(&self) -> u64;
    }
}

struct TokenImpl;

impl Token for TokenImpl {
    fn ping(&self) -> Result<u64, RmiError> {
        Ok(1)
    }
}

fn run(dgc: DgcMode, subscribers: usize, crashers: usize) -> (bool, bool) {
    let net = RmiNetwork::new(subscribers + 1, dgc);
    let rts = net.runtimes();
    let obj = TokenStub::export(&rts[0], Arc::new(TokenImpl));

    let mut healthy = Vec::new();
    for (i, rt) in rts.iter().enumerate().skip(1).take(subscribers) {
        let stub = TokenStub::attach(rt, obj).expect("attach");
        if i <= crashers {
            stub.leak(); // crashed: never cleans, never renews
        } else {
            healthy.push(stub);
        }
    }
    std::thread::sleep(std::time::Duration::from_millis(30));
    let alive_with_holders = {
        rts[0].tick(50); // within lease TTL
        rts[0].collect_expired();
        rts[0].is_exported(ObjectId(obj.object))
    };
    // All healthy subscribers release; leases run out.
    drop(healthy);
    std::thread::sleep(std::time::Duration::from_millis(30));
    rts[0].tick(500);
    rts[0].collect_expired();
    let alive_after_release = rts[0].is_exported(ObjectId(obj.object));
    (alive_with_holders, alive_after_release)
}

fn main() {
    println!("E7: distributed GC — published references vs crashed subscribers");
    println!("S subscribers hold proxies from a published obvent; C of them crash\n");
    let mut table = Table::new(&[
        "dgc mode",
        "S",
        "crashed",
        "alive (holders active)",
        "alive (all released/expired)",
    ]);
    for (name, dgc) in [
        ("strong", DgcMode::Strong),
        ("leases(100ms)", DgcMode::Leases { ttl_ms: 100 }),
    ] {
        for (s, c) in [(8usize, 0usize), (8, 1), (64, 1), (64, 16)] {
            let (with_holders, after) = run(dgc, s, c);
            table.row(&[
                name.to_string(),
                s.to_string(),
                c.to_string(),
                with_holders.to_string(),
                after.to_string(),
            ]);
        }
    }
    table.print();
    println!(
        "\nexpected shape: with any crashed subscriber, strong mode never collects\n\
         (alive=true forever — the paper's caveat); lease mode always collects after\n\
         expiry (alive=false), even when every subscriber crashed."
    );
}
