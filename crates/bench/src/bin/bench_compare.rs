//! Bench-regression gate: diffs freshly emitted `BENCH_*.json` reports
//! against the committed baselines and fails (non-zero exit) on a
//! regression beyond tolerance.
//!
//! ```text
//! cargo run --release -p psc-bench --bin bench_compare -- <fresh_dir> [baseline_dir]
//! ```
//!
//! `baseline_dir` defaults to the current directory (the repository root in
//! CI, where the baselines are committed). Only **scale-invariant**
//! per-publish / per-round metrics are compared, matched by their
//! `fanout` / `receivers` keys — CI emits the fresh reports in
//! `BENCH_QUICK` mode, whose absolute counts differ from the full-size
//! committed runs, but whose amortized costs must not. Rows present on one
//! side only (a quick run covering fewer fan-out points) are skipped.
//!
//! Tolerance: a fresh value may exceed its baseline by at most
//! `BENCH_COMPARE_TOLERANCE` (fractional, default `0.25` — i.e. +25%).
//! Improvements never fail. Deterministic count metrics (encodes per
//! publish) use the same gate, so a lost serialize-once fan-out shows up as
//! an 8× "regression" long before wall-clock noise matters.

use std::process::ExitCode;

use psc_telemetry::json::JsonValue;

struct Gate {
    tolerance: f64,
    failures: Vec<String>,
    compared: usize,
}

impl Gate {
    fn new(tolerance: f64) -> Gate {
        Gate { tolerance, failures: Vec::new(), compared: 0 }
    }

    /// One metric comparison: fail when `fresh > base * (1 + tolerance)`.
    /// Baselines of zero only fail if the fresh value is positive (a
    /// metric that was free and no longer is).
    fn check(&mut self, label: &str, base: f64, fresh: f64) {
        self.compared += 1;
        let limit = if base == 0.0 { 0.0 } else { base * (1.0 + self.tolerance) };
        if fresh > limit {
            self.failures.push(format!(
                "{label}: {fresh:.4} exceeds baseline {base:.4} by more than {:.0}%",
                self.tolerance * 100.0
            ));
        } else {
            println!("ok   {label}: baseline {base:.4}, fresh {fresh:.4}");
        }
    }

    /// A wall-clock-derived comparison. Wall metrics only gate when both
    /// runs were the same size (`same_scale`): a `BENCH_QUICK` run
    /// amortizes its fixed setup over far fewer iterations than the
    /// committed full-size baseline, so a cross-scale wall diff measures
    /// the amortization, not a regression. Cross-scale results are printed
    /// as advisory so the trend stays visible in CI logs; the
    /// deterministic count metrics carry the gate there.
    fn check_wall(&mut self, label: &str, base: f64, fresh: f64, same_scale: bool) {
        if same_scale {
            self.check(label, base, fresh);
        } else {
            println!("note {label}: baseline {base:.4}, fresh {fresh:.4} (scale differs; advisory)");
        }
    }
}

fn load(dir: &str, name: &str) -> Option<JsonValue> {
    let path = std::path::Path::new(dir).join(name);
    let text = match std::fs::read_to_string(&path) {
        Ok(text) => text,
        Err(err) => {
            eprintln!("skip {}: {err}", path.display());
            return None;
        }
    };
    match JsonValue::parse(&text) {
        Ok(doc) => Some(doc),
        Err(err) => {
            eprintln!("skip {}: parse error: {err}", path.display());
            None
        }
    }
}

fn field_f64(row: &JsonValue, key: &str) -> Option<f64> {
    row.get(key).and_then(JsonValue::as_f64)
}

/// Index `rows` by an integer key (`fanout`, `receivers`), so quick and
/// full runs match only on the sizes both measured.
fn by_key<'a>(rows: &'a JsonValue, key: &str) -> Vec<(u64, &'a JsonValue)> {
    rows.items()
        .iter()
        .filter_map(|row| row.get(key).and_then(JsonValue::as_u64).map(|k| (k, row)))
        .collect()
}

/// Metric over one keyed row: extractor plus whether it is wall-clock
/// derived (gated only at matching scale) or a deterministic count (always
/// gated).
struct Metric {
    name: &'static str,
    wall: bool,
    extract: fn(&JsonValue) -> Option<f64>,
}

fn compare_keyed(
    gate: &mut Gate,
    context: &str,
    key: &str,
    base: &JsonValue,
    fresh: &JsonValue,
    same_scale: bool,
    metrics: &[Metric],
) {
    let base_rows = by_key(base, key);
    for (k, fresh_row) in by_key(fresh, key) {
        let Some((_, base_row)) = base_rows.iter().find(|(bk, _)| *bk == k) else {
            continue;
        };
        for metric in metrics {
            let label = format!("{context}[{key}={k}] {}", metric.name);
            match ((metric.extract)(base_row), (metric.extract)(fresh_row)) {
                (Some(b), Some(f)) if metric.wall => gate.check_wall(&label, b, f, same_scale),
                (Some(b), Some(f)) => gate.check(&label, b, f),
                _ => eprintln!("skip {label}: missing on one side"),
            }
        }
    }
}

fn compare_serialize_once(gate: &mut Gate, base: &JsonValue, fresh: &JsonValue) {
    let file = "BENCH_exp_serialize_once.json";
    let same_scale = base.get("quick").map(|v| v.render()) == fresh.get("quick").map(|v| v.render());
    if let (Some(b), Some(f)) = (base.get("mechanism"), fresh.get("mechanism")) {
        compare_keyed(
            gate,
            &format!("{file} mechanism"),
            "fanout",
            b,
            f,
            same_scale,
            &[
                // The mechanism micro-bench is per-publish by construction,
                // so its wall figure is scale-free: always gate it.
                Metric {
                    name: "shared_us_per_publish",
                    wall: false,
                    extract: |r| field_f64(r, "shared_us_per_publish"),
                },
                Metric {
                    name: "shared_encodes_per_publish",
                    wall: false,
                    extract: |r| field_f64(r, "shared_encodes_per_publish"),
                },
            ],
        );
    }
    if let (Some(b), Some(f)) = (base.get("end_to_end"), fresh.get("end_to_end")) {
        compare_keyed(
            gate,
            &format!("{file} end_to_end"),
            "fanout",
            b,
            f,
            same_scale,
            &[
                Metric {
                    name: "wall_ms_per_publish",
                    wall: true,
                    extract: |r| Some(field_f64(r, "wall_ms")? / field_f64(r, "publishes")?),
                },
                Metric {
                    name: "codec_encodes_per_publish",
                    wall: false,
                    extract: |r| Some(field_f64(r, "codec_encodes")? / field_f64(r, "publishes")?),
                },
            ],
        );
    }
}

fn compare_fanout(gate: &mut Gate, base: &JsonValue, fresh: &JsonValue) {
    let file = "BENCH_fanout.json";
    let rounds = |doc: &JsonValue| doc.get("rounds").and_then(JsonValue::as_f64);
    let (Some(base_rounds), Some(fresh_rounds)) = (rounds(base), rounds(fresh)) else {
        eprintln!("skip {file}: rounds missing");
        return;
    };
    let same_scale = base_rounds == fresh_rounds;
    let (Some(b), Some(f)) = (base.get("rows"), fresh.get("rows")) else {
        eprintln!("skip {file}: rows missing");
        return;
    };
    let base_rows = by_key(b, "receivers");
    for (k, fresh_row) in by_key(f, "receivers") {
        let Some((_, base_row)) = base_rows.iter().find(|(bk, _)| *bk == k) else {
            continue;
        };
        if let (Some(bv), Some(fv)) = (
            field_f64(base_row, "pubsub_us_per_round"),
            field_f64(fresh_row, "pubsub_us_per_round"),
        ) {
            gate.check_wall(
                &format!("{file} rows[receivers={k}] pubsub_us_per_round"),
                bv,
                fv,
                same_scale,
            );
        }
        let encodes = |row: &JsonValue, rounds: f64| {
            row.get("codec")
                .and_then(|c| c.get("codec.encodes"))
                .and_then(JsonValue::as_f64)
                .map(|e| e / rounds)
        };
        if let (Some(bv), Some(fv)) = (
            encodes(base_row, base_rounds),
            encodes(fresh_row, fresh_rounds),
        ) {
            gate.check(&format!("{file} rows[receivers={k}] codec_encodes_per_round"), bv, fv);
        }
    }
}

fn compare_match_scale(gate: &mut Gate, base: &JsonValue, fresh: &JsonValue) {
    let file = "BENCH_exp_match_scale.json";
    let same_scale = base.get("quick").map(|v| v.render()) == fresh.get("quick").map(|v| v.render());
    let (Some(b), Some(f)) = (base.get("rows"), fresh.get("rows")) else {
        eprintln!("skip {file}: rows missing");
        return;
    };
    compare_keyed(
        gate,
        &format!("{file} rows"),
        "key",
        b,
        f,
        same_scale,
        &[
            Metric {
                name: "us_per_event",
                wall: true,
                extract: |r| field_f64(r, "us_per_event"),
            },
            // Probe and candidate counts are deterministic functions of the
            // seeded workload: losing the attribute index (probes blow up to
            // the predicate population) or the access-predicate gating
            // (candidates blow up to the satisfied-filter population) trips
            // these regardless of machine speed.
            Metric {
                name: "probes_per_event",
                wall: false,
                extract: |r| field_f64(r, "probes_per_event"),
            },
            Metric {
                name: "candidates_per_event",
                wall: false,
                extract: |r| field_f64(r, "candidates_per_event"),
            },
        ],
    );
}

fn compare_real_wire(gate: &mut Gate, base: &JsonValue, fresh: &JsonValue) {
    let file = "BENCH_exp_real_wire.json";
    let same_scale = base.get("quick").map(|v| v.render()) == fresh.get("quick").map(|v| v.render());
    if let (Some(b), Some(f)) = (base.get("single_process"), fresh.get("single_process")) {
        compare_keyed(
            gate,
            &format!("{file} single_process"),
            "seed",
            b,
            f,
            same_scale,
            &[
                // A baseline of zero mismatches means any fresh mismatch
                // fails outright: the real wire diverging from the
                // simulator is a correctness regression, not noise.
                Metric {
                    name: "delivery_mismatches",
                    wall: false,
                    extract: |r| field_f64(r, "delivery_mismatches"),
                },
                // Deterministic functions of the seeded scenario: losing
                // serialize-once (encodes grow with fan-out) or flooding
                // the wire (msgs/bytes per publish grow) trips these on
                // any machine.
                Metric {
                    name: "encodes_per_publish",
                    wall: false,
                    extract: |r| field_f64(r, "encodes_per_publish"),
                },
                Metric {
                    name: "msgs_per_publish",
                    wall: false,
                    extract: |r| field_f64(r, "msgs_per_publish"),
                },
                Metric {
                    name: "bytes_per_publish",
                    wall: false,
                    extract: |r| field_f64(r, "bytes_per_publish"),
                },
                // The publish window is paced by real sleeps, so its wall
                // figure is scale-free per publish but still machine-bound:
                // advisory across scales.
                Metric {
                    name: "wall_ms_per_publish",
                    wall: true,
                    extract: |r| Some(field_f64(r, "wall_ms")? / field_f64(r, "publishes")?),
                },
            ],
        );
    }
    if let (Some(b), Some(f)) = (base.get("multi_process"), fresh.get("multi_process")) {
        compare_keyed(
            gate,
            &format!("{file} multi_process"),
            "seed",
            b,
            f,
            same_scale,
            &[
                Metric {
                    name: "delivery_mismatches",
                    wall: false,
                    extract: |r| field_f64(r, "delivery_mismatches"),
                },
                Metric {
                    name: "wall_ms_per_publish",
                    wall: true,
                    extract: |r| Some(field_f64(r, "wall_ms")? / field_f64(r, "publishes")?),
                },
            ],
        );
    }
}

fn compare_parallel_shard(gate: &mut Gate, base: &JsonValue, fresh: &JsonValue) {
    let file = "BENCH_exp_parallel_shard.json";
    let same_scale = base.get("quick").map(|v| v.render()) == fresh.get("quick").map(|v| v.render());
    for section in ["fanout", "match"] {
        let (Some(b), Some(f)) = (
            base.get(section).and_then(|s| s.get("rows")),
            fresh.get(section).and_then(|s| s.get("rows")),
        ) else {
            eprintln!("skip {file} {section}: rows missing");
            continue;
        };
        compare_keyed(
            gate,
            &format!("{file} {section}"),
            "shards",
            b,
            f,
            same_scale,
            &[
                // Delivered counts are a deterministic function of the
                // seeded workload — the shard count must not change them.
                Metric {
                    name: "deliveries",
                    wall: false,
                    extract: |r| field_f64(r, "deliveries"),
                },
                Metric {
                    name: "route_us_per_publish",
                    wall: true,
                    extract: |r| field_f64(r, "route_us_per_publish"),
                },
            ],
        );
        // Sharded rows must actually exercise the worker pool: zero
        // shard.items on a shards>1 row means the engine silently fell
        // back to the inline path (telemetry or routing regression).
        for (k, row) in by_key(f, "shards") {
            if k <= 1 {
                continue;
            }
            let items = field_f64(row, "shard_items").unwrap_or(0.0);
            gate.compared += 1;
            if items <= 0.0 {
                gate.failures.push(format!(
                    "{file} {section}[shards={k}]: shard_items is 0 — worker pool not engaged"
                ));
            } else {
                println!("ok   {file} {section}[shards={k}] shard_items: {items:.0}");
            }
        }
    }
    // Scaling floor: route-stage speedup at the highest shard count vs
    // shards=1 on the matching-heavy workload. Wall-clock parallelism
    // needs the cores to exist, so the floor is enforced only when the
    // fresh run reports >= 4 cores and swept up to 4 shards; otherwise
    // the measured ratio is printed as advisory.
    let cores = fresh.get("cores").and_then(JsonValue::as_u64).unwrap_or(1);
    if let Some(rows) = fresh.get("match").and_then(|s| s.get("rows")) {
        let keyed = by_key(rows, "shards");
        let wall = |k: u64| {
            keyed
                .iter()
                .find(|(bk, _)| *bk == k)
                .and_then(|(_, r)| field_f64(r, "route_wall_ms"))
        };
        let max_shards = keyed.iter().map(|(k, _)| *k).max().unwrap_or(1);
        if let (Some(w1), Some(wn)) = (wall(1), wall(max_shards)) {
            if max_shards > 1 {
                let speedup = w1 / wn.max(1e-9);
                let floor: f64 = std::env::var("BENCH_SHARD_SPEEDUP_FLOOR")
                    .ok()
                    .and_then(|v| v.trim().parse().ok())
                    .unwrap_or(2.5);
                let label = format!("{file} match route speedup shards={max_shards} vs 1");
                if cores >= 4 && max_shards >= 4 {
                    gate.compared += 1;
                    if speedup < floor {
                        gate.failures.push(format!(
                            "{label}: {speedup:.2}x below the {floor:.1}x floor ({cores} cores)"
                        ));
                    } else {
                        println!("ok   {label}: {speedup:.2}x (floor {floor:.1}x, {cores} cores)");
                    }
                } else {
                    println!(
                        "note {label}: {speedup:.2}x ({cores} core(s); floor enforced at >= 4 cores and a 4-shard sweep)"
                    );
                }
            }
        }
    }
}

fn compare_durable_log(gate: &mut Gate, base: &JsonValue, fresh: &JsonValue) {
    let file = "BENCH_exp_durable_log.json";
    let same_scale = base.get("quick").map(|v| v.render()) == fresh.get("quick").map(|v| v.render());
    if let (Some(b), Some(f)) = (base.get("append"), fresh.get("append")) {
        compare_keyed(
            gate,
            &format!("{file} append"),
            "wal",
            b,
            f,
            same_scale,
            &[
                // The simulated sections run a fixed-size workload in both
                // quick and full mode, so the per-publish record counts are
                // deterministic and always gated: appends/pub growing means
                // the log schema got chattier, syncs/pub growing means the
                // fsync barrier lost its batching.
                Metric {
                    name: "appends_per_publish",
                    wall: false,
                    extract: |r| field_f64(r, "appends_per_publish"),
                },
                Metric {
                    name: "syncs_per_publish",
                    wall: false,
                    extract: |r| field_f64(r, "syncs_per_publish"),
                },
                // Baseline 0: any fresh mismatch is a lost or duplicated
                // certified delivery, which fails outright.
                Metric {
                    name: "delivery_mismatches",
                    wall: false,
                    extract: |r| field_f64(r, "delivery_mismatches"),
                },
                Metric {
                    name: "route_us_per_publish",
                    wall: true,
                    extract: |r| field_f64(r, "route_us_per_publish"),
                },
            ],
        );
    }
    if let (Some(b), Some(f)) = (base.get("recovery"), fresh.get("recovery")) {
        for (name, wall) in [
            ("replay_records", false),
            ("redeliveries", false),
            ("replay_wall_ms", true),
        ] {
            let label = format!("{file} recovery {name}");
            match (field_f64(b, name), field_f64(f, name)) {
                (Some(bv), Some(fv)) if wall => gate.check_wall(&label, bv, fv, same_scale),
                (Some(bv), Some(fv)) => gate.check(&label, bv, fv),
                _ => eprintln!("skip {label}: missing on one side"),
            }
        }
    }
    if let (Some(b), Some(f)) = (base.get("fsync"), fresh.get("fsync")) {
        compare_keyed(
            gate,
            &format!("{file} fsync"),
            "batch",
            b,
            f,
            same_scale,
            &[Metric {
                name: "us_per_append",
                wall: true,
                extract: |r| field_f64(r, "us_per_append"),
            }],
        );
    }
}

fn compare_snapshot(gate: &mut Gate, base: &JsonValue, fresh: &JsonValue) {
    let file = "BENCH_exp_snapshot.json";
    let same_scale = base.get("quick").map(|v| v.render()) == fresh.get("quick").map(|v| v.render());
    // Both sections share the row shape, so they share the metric set.
    // Baselines of zero for `incomplete` and `byte_mismatch` mean any
    // fresh occurrence fails outright: a wave that stops completing or a
    // cluster image that stops being byte-stable is a correctness
    // regression, not noise.
    let correctness = [
        Metric {
            name: "incomplete",
            wall: false,
            extract: |r| field_f64(r, "incomplete"),
        },
        Metric {
            name: "byte_mismatch",
            wall: false,
            extract: |r| field_f64(r, "byte_mismatch"),
        },
        // Deterministic functions of the seeded workload: the marker
        // flood growing means the wave protocol got chattier; the wave's
        // virtual completion time growing means markers or fragments
        // started needing retries they didn't before.
        Metric {
            name: "markers_sent",
            wall: false,
            extract: |r| field_f64(r, "markers_sent"),
        },
        Metric {
            name: "wave_virtual_ms",
            wall: false,
            extract: |r| field_f64(r, "wave_virtual_ms"),
        },
        Metric {
            name: "retries",
            wall: false,
            extract: |r| field_f64(r, "retries"),
        },
        Metric {
            name: "capture_wall_ms",
            wall: true,
            extract: |r| field_f64(r, "capture_wall_ms"),
        },
    ];
    if let (Some(b), Some(f)) = (base.get("capture"), fresh.get("capture")) {
        compare_keyed(gate, &format!("{file} capture"), "shards", b, f, same_scale, &correctness);
    }
    if let (Some(b), Some(f)) = (base.get("loss"), fresh.get("loss")) {
        compare_keyed(gate, &format!("{file} loss"), "loss_pct", b, f, same_scale, &correctness);
    }
}

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    let Some(fresh_dir) = args.next() else {
        eprintln!("usage: bench_compare <fresh_dir> [baseline_dir]");
        return ExitCode::from(2);
    };
    let base_dir = args.next().unwrap_or_else(|| ".".to_string());
    let tolerance: f64 = std::env::var("BENCH_COMPARE_TOLERANCE")
        .ok()
        .and_then(|v| v.trim().parse().ok())
        .unwrap_or(0.25);
    println!(
        "bench_compare: fresh={fresh_dir} baseline={base_dir} tolerance=+{:.0}%",
        tolerance * 100.0
    );

    let mut gate = Gate::new(tolerance);
    if let (Some(base), Some(fresh)) = (
        load(&base_dir, "BENCH_exp_serialize_once.json"),
        load(&fresh_dir, "BENCH_exp_serialize_once.json"),
    ) {
        compare_serialize_once(&mut gate, &base, &fresh);
    }
    if let (Some(base), Some(fresh)) = (
        load(&base_dir, "BENCH_fanout.json"),
        load(&fresh_dir, "BENCH_fanout.json"),
    ) {
        compare_fanout(&mut gate, &base, &fresh);
    }
    if let (Some(base), Some(fresh)) = (
        load(&base_dir, "BENCH_exp_match_scale.json"),
        load(&fresh_dir, "BENCH_exp_match_scale.json"),
    ) {
        compare_match_scale(&mut gate, &base, &fresh);
    }
    if let (Some(base), Some(fresh)) = (
        load(&base_dir, "BENCH_exp_real_wire.json"),
        load(&fresh_dir, "BENCH_exp_real_wire.json"),
    ) {
        compare_real_wire(&mut gate, &base, &fresh);
    }
    if let (Some(base), Some(fresh)) = (
        load(&base_dir, "BENCH_exp_parallel_shard.json"),
        load(&fresh_dir, "BENCH_exp_parallel_shard.json"),
    ) {
        compare_parallel_shard(&mut gate, &base, &fresh);
    }
    if let (Some(base), Some(fresh)) = (
        load(&base_dir, "BENCH_exp_durable_log.json"),
        load(&fresh_dir, "BENCH_exp_durable_log.json"),
    ) {
        compare_durable_log(&mut gate, &base, &fresh);
    }
    if let (Some(base), Some(fresh)) = (
        load(&base_dir, "BENCH_exp_snapshot.json"),
        load(&fresh_dir, "BENCH_exp_snapshot.json"),
    ) {
        compare_snapshot(&mut gate, &base, &fresh);
    }

    if gate.compared == 0 {
        eprintln!("bench_compare: nothing compared — treat as failure");
        return ExitCode::from(2);
    }
    if gate.failures.is_empty() {
        println!("bench_compare: {} metric(s) within tolerance", gate.compared);
        ExitCode::SUCCESS
    } else {
        eprintln!("bench_compare: {} regression(s):", gate.failures.len());
        for failure in &gate.failures {
            eprintln!("  REGRESSION {failure}");
        }
        ExitCode::FAILURE
    }
}
