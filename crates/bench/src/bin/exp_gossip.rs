//! E4 report — §4.2: the gossip substrate (lpbcast) scales.
//!
//! Sweeps group size and fanout, reporting delivery ratio and per-node
//! message load. The classic result: delivery ratio approaches 1 once
//! fanout ≈ ln(n) + c, with per-node load independent of n (that is the
//! scalability argument of [EGH+01]).
//!
//! Run with `cargo run --release -p psc-bench --bin exp_gossip`.

use psc_bench::{fmt_f, Table};
use psc_group::{sim_host::GroupNode, Lpbcast, LpbcastConfig};
use psc_simnet::{NodeId, SimConfig, SimNet, SimTime};

fn run(n: usize, fanout: usize, seed: u64) -> (f64, f64) {
    let config = LpbcastConfig {
        fanout,
        ..LpbcastConfig::default()
    };
    let mut sim = SimNet::new(SimConfig::with_seed(seed));
    let ids: Vec<NodeId> = (0..n as u64).map(NodeId).collect();
    for i in 0..n {
        sim.add_node(format!("n{i}"), move || {
            GroupNode::boxed(Lpbcast::new(config))
        });
    }
    for &id in &ids {
        GroupNode::set_members(&mut sim, id, ids.clone());
    }
    sim.run_until(SimTime::from_millis(1));
    sim.reset_stats();
    // 10 rumors from random origins.
    for m in 0..10usize {
        GroupNode::broadcast(&mut sim, ids[(m * 7) % n], vec![m as u8; 32]);
    }
    sim.run_until(SimTime::from_millis(400));

    let delivered: usize = ids
        .iter()
        .map(|&id| GroupNode::delivered(&mut sim, id).len())
        .sum();
    let ratio = delivered as f64 / (10 * n) as f64;
    let per_node_msgs = sim.stats().sent as f64 / n as f64;
    (ratio, per_node_msgs)
}

fn main() {
    println!("E4: lpbcast gossip — delivery ratio vs group size and fanout");
    println!("(10 rumors, 400 ms of gossip; per-node msgs counts all gossip packets)\n");
    let mut table = Table::new(&["nodes", "fanout", "ln(n)", "delivery ratio", "msgs/node"]);
    for &n in &[16usize, 64, 128, 256] {
        for &fanout in &[1usize, 2, 3, 5, 8] {
            // Average 3 seeds to smooth gossip variance.
            let mut ratio = 0.0;
            let mut load = 0.0;
            for seed in 0..3 {
                let (r, l) = run(n, fanout, 100 + seed);
                ratio += r;
                load += l;
            }
            table.row(&[
                n.to_string(),
                fanout.to_string(),
                fmt_f((n as f64).ln()),
                format!("{:.3}", ratio / 3.0),
                fmt_f(load / 3.0),
            ]);
        }
    }
    table.print();
    println!(
        "\nexpected shape: ratio -> 1.0 once fanout exceeds ~ln(n); per-node load grows\n\
         with fanout but stays flat in n (the scalability property)."
    );
}
