//! E8 report — serialize-once fan-out: shared wire buffers vs per-member
//! encoding on the hot publish path.
//!
//! Two measurements, both over fan-out ∈ {8, 64, 512}:
//!
//! 1. **mechanism** — the transport envelope of one publish is either
//!    re-encoded for every destination (the pre-refactor behaviour) or
//!    encoded once into a pooled [`psc_codec::WireBytes`] and shared by
//!    reference; wall-clock and `codec.encodes` quantify the gap.
//! 2. **end-to-end** — a simulated DACE deployment (1 publisher, F
//!    all-accepting subscribers, publisher-side placement) publishing a
//!    quote stream; the global telemetry delta shows how many encodes,
//!    pool hits and coalesced control batches the whole stack performs.
//!
//! Run with `cargo run --release -p psc-bench --bin exp_serialize_once`.
//! Set `BENCH_QUICK=1` for a seconds-scale smoke configuration.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

use psc_bench::{fmt_f, quote_obvents, write_bench_json, BenchQuote, Table};
use psc_codec::WireBytes;
use psc_dace::{DaceConfig, DaceNode};
use psc_obvent::WireObvent;
use psc_simnet::{NodeId, SimConfig, SimNet, SimTime};
use psc_telemetry::json::JsonValue;
use psc_telemetry::{Registry, Snapshot, Tracer};
use pubsub_core::FilterSpec;
use serde::{Deserialize, Serialize};

/// Stand-in for the per-destination transport envelope (`NodeMsg::Data`
/// carries exactly this shape: a channel id plus the protocol bytes).
#[derive(Serialize, Deserialize)]
struct Envelope {
    channel: u64,
    bytes: WireBytes,
}

fn counter_delta(before: &Snapshot, after: &Snapshot, name: &str) -> u64 {
    after.counter(name) - before.counter(name)
}

/// The mechanism comparison: encode the envelope per destination (cloned)
/// vs encode once and share the buffer (shared). Returns (µs per publish,
/// codec.encodes per publish).
fn mechanism(fanout: usize, rounds: usize, shared: bool) -> (f64, f64) {
    let payload: WireBytes = psc_codec::to_wire_bytes(
        &WireObvent::encode(&BenchQuote::new("Telco Mobiles".into(), 80.0, 10)).unwrap(),
    )
    .unwrap();
    let mut sink: Vec<WireBytes> = Vec::with_capacity(fanout);
    let before = psc_telemetry::global().snapshot();
    let start = Instant::now();
    for _ in 0..rounds {
        sink.clear();
        if shared {
            let encoded = psc_codec::to_wire_bytes(&Envelope {
                channel: 7,
                bytes: payload.clone(),
            })
            .unwrap();
            for _ in 0..fanout {
                sink.push(encoded.clone());
            }
        } else {
            for _ in 0..fanout {
                let encoded = psc_codec::to_wire_bytes(&Envelope {
                    channel: 7,
                    bytes: payload.clone(),
                })
                .unwrap();
                sink.push(encoded);
            }
        }
    }
    let us = start.elapsed().as_secs_f64() * 1e6 / rounds as f64;
    let after = psc_telemetry::global().snapshot();
    let encodes = counter_delta(&before, &after, "codec.encodes") as f64 / rounds as f64;
    (us, encodes)
}

/// End-to-end DACE fan-out in the simulator. Returns (wall-clock ms for the
/// publish phase, global-counter deltas of the publish phase, delivered).
fn end_to_end(fanout: usize, publishes: usize) -> (f64, Snapshot, Snapshot, u64, u64) {
    let mut sim = SimNet::new(SimConfig::with_seed(7));
    let ids: Vec<NodeId> = (0..(fanout as u64 + 1)).map(NodeId).collect();
    let config = DaceConfig {
        // Keep periodic re-announcements out of the publish window.
        announce_interval: psc_simnet::Duration::from_secs(30),
        ..DaceConfig::default()
    };
    let registry = Arc::new(Registry::new());
    let tracer = Arc::new(Tracer::default());
    tracer.set_enabled(false);
    for (i, _) in ids.iter().enumerate() {
        sim.add_node(
            format!("n{i}"),
            DaceNode::factory_with_telemetry(
                ids.clone(),
                config.clone(),
                Arc::clone(&registry),
                Arc::clone(&tracer),
            ),
        );
    }
    let delivered = Arc::new(AtomicU64::new(0));
    for &id in &ids[1..] {
        let d = delivered.clone();
        // Three subscriptions per node, activated in one callback: their
        // control floods to each peer coalesce into a single batch frame.
        DaceNode::drive(&mut sim, id, move |domain| {
            for _ in 0..3 {
                let d = d.clone();
                let sub = domain.subscribe(FilterSpec::accept_all(), move |_q: BenchQuote| {
                    d.fetch_add(1, Ordering::Relaxed);
                });
                sub.activate().unwrap();
                sub.detach();
            }
        });
    }
    sim.run_until(SimTime::from_millis(50));

    let before = psc_telemetry::global().snapshot();
    let start = Instant::now();
    for q in quote_obvents(11, publishes) {
        DaceNode::publish_from(&mut sim, ids[0], q);
    }
    let deadline = sim.now() + psc_simnet::Duration::from_secs(2);
    sim.run_until(deadline);
    let wall_ms = start.elapsed().as_secs_f64() * 1e3;
    let after = psc_telemetry::global().snapshot();
    // Let one periodic announce round fire: each node re-floods all its
    // subscriptions in one timer callback, which is where the per-peer
    // control batching takes effect. Coalescing is counted in the
    // deployment registry (covering setup, publish and announce phases).
    let announce_deadline = sim.now() + psc_simnet::Duration::from_secs(31);
    sim.run_until(announce_deadline);
    let coalesced = registry.snapshot().counter("dace.batch.coalesced");
    (wall_ms, before, after, delivered.load(Ordering::Relaxed), coalesced)
}

fn main() {
    psc_telemetry::set_global_enabled(true);
    let quick = std::env::var_os("BENCH_QUICK").is_some();
    let fanouts: &[usize] = if quick { &[8] } else { &[8, 64, 512] };
    let rounds = if quick { 200 } else { 2000 };
    let publishes = if quick { 5 } else { 20 };

    println!("E8: serialize-once fan-out — shared wire buffers vs per-member encoding\n");

    println!("mechanism: one publish envelope to F destinations ({rounds} rounds)");
    let mut table = Table::new(&[
        "fanout",
        "cloned us/pub",
        "shared us/pub",
        "speedup",
        "cloned encodes/pub",
        "shared encodes/pub",
    ]);
    let mut mech_rows = JsonValue::arr();
    for &f in fanouts {
        let (cloned_us, cloned_encodes) = mechanism(f, rounds, false);
        let (shared_us, shared_encodes) = mechanism(f, rounds, true);
        table.row(&[
            f.to_string(),
            fmt_f(cloned_us),
            fmt_f(shared_us),
            format!("{:.1}x", cloned_us / shared_us),
            fmt_f(cloned_encodes),
            fmt_f(shared_encodes),
        ]);
        mech_rows = mech_rows.push(
            JsonValue::obj()
                .set("fanout", f)
                .set("cloned_us_per_publish", cloned_us)
                .set("shared_us_per_publish", shared_us)
                .set("cloned_encodes_per_publish", cloned_encodes)
                .set("shared_encodes_per_publish", shared_encodes),
        );
    }
    table.print();

    println!("\nend-to-end: DACE publisher-placement fan-out ({publishes} publishes)");
    let mut table = Table::new(&[
        "fanout",
        "wall ms",
        "encodes/pub",
        "pool hit rate",
        "ctl batched",
        "delivered",
    ]);
    let mut e2e_rows = JsonValue::arr();
    for &f in fanouts {
        let (wall_ms, before, after, delivered, coalesced) = end_to_end(f, publishes);
        let encodes = counter_delta(&before, &after, "codec.encodes");
        let hits = counter_delta(&before, &after, "codec.pool.hits");
        let misses = counter_delta(&before, &after, "codec.pool.misses");
        let hit_rate = hits as f64 / (hits + misses).max(1) as f64;
        table.row(&[
            f.to_string(),
            fmt_f(wall_ms),
            fmt_f(encodes as f64 / publishes as f64),
            format!("{:.0}%", hit_rate * 100.0),
            coalesced.to_string(),
            delivered.to_string(),
        ]);
        e2e_rows = e2e_rows.push(
            JsonValue::obj()
                .set("fanout", f)
                .set("publishes", publishes as u64)
                .set("wall_ms", wall_ms)
                .set("codec_encodes", encodes)
                .set("codec_pool_hits", hits)
                .set("codec_pool_misses", misses)
                .set("dace_batch_coalesced", coalesced)
                .set("delivered", delivered),
        );
    }
    table.print();

    let doc = JsonValue::obj()
        .set("experiment", "serialize_once")
        .set("quick", quick)
        .set("mechanism", mech_rows)
        .set("end_to_end", e2e_rows)
        .set("metrics", psc_telemetry::global().snapshot().to_json());
    let path = write_bench_json("exp_serialize_once", &doc).expect("write BENCH json");
    println!("\nmetrics snapshot written to {}", path.display());
    println!(
        "\nexpected shape: cloned encoding grows linearly in F while shared encoding is\n\
         flat (one envelope encode per publish, F reference clones); end-to-end encodes\n\
         per publish stay near-constant in F under the serialize-once fan-out."
    );
}
