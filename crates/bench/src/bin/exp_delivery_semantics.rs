//! E3 report — the §3.1.2 delivery-semantics ladder: message overhead,
//! delivery ratio and latency per protocol, with and without loss, plus
//! certified's behaviour across a subscriber crash.
//!
//! Run with `cargo run --release -p psc-bench --bin exp_delivery_semantics`.

use std::sync::Arc;

use psc_bench::{fmt_f, write_bench_json, Table};
use psc_group::{
    sim_host::GroupNode, BestEffort, Causal, Certified, Fifo, GroupIo, Multicast, Reliable,
    TimerToken, Total,
};
use psc_simnet::{NodeId, SimConfig, SimNet, SimTime};
use psc_telemetry::span::span_buckets;
use psc_telemetry::{json::JsonValue, HistogramSnapshot, Registry, Snapshot};

type MakeProto = fn() -> Box<dyn Multicast>;

struct Boxed(Box<dyn Multicast>);

impl Multicast for Boxed {
    fn broadcast(&mut self, io: &mut dyn GroupIo, payload: psc_codec::WireBytes) {
        self.0.broadcast(io, payload);
    }
    fn on_message(&mut self, io: &mut dyn GroupIo, from: NodeId, bytes: &[u8]) {
        self.0.on_message(io, from, bytes);
    }
    fn on_timer(&mut self, io: &mut dyn GroupIo, token: TimerToken) {
        self.0.on_timer(io, token);
    }
    fn on_start(&mut self, io: &mut dyn GroupIo) {
        self.0.on_start(io);
    }
    fn on_recover(&mut self, io: &mut dyn GroupIo) {
        self.0.on_recover(io);
    }
    fn proto_name(&self) -> &'static str {
        self.0.proto_name()
    }
    fn queue_depths(&self) -> Vec<(&'static str, u64)> {
        self.0.queue_depths()
    }
    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self.0.as_any_mut()
    }
}

fn cluster(
    n: usize,
    loss: f64,
    seed: u64,
    make: impl Fn() -> Box<dyn Multicast> + Clone + 'static,
) -> (SimNet, Vec<NodeId>, Arc<Registry>) {
    let mut sim = SimNet::new(SimConfig {
        seed,
        drop_probability: loss,
        ..SimConfig::default()
    });
    // One registry for the whole cluster: the `group.*` wire counters in
    // the JSON report aggregate over every node of the run.
    let registry = Arc::new(Registry::new());
    let ids: Vec<NodeId> = (0..n as u64).map(NodeId).collect();
    for i in 0..n {
        let make = make.clone();
        let registry = Arc::clone(&registry);
        sim.add_node(format!("n{i}"), move || {
            GroupNode::boxed_with_telemetry(Boxed(make()), Arc::clone(&registry))
        });
    }
    for &id in &ids {
        GroupNode::set_members(&mut sim, id, ids.clone());
    }
    (sim, ids, registry)
}

struct Row {
    proto: &'static str,
    loss: f64,
    msgs_per_bcast: f64,
    bytes_per_bcast: f64,
    delivery_ratio: f64,
    /// End-to-end publish→deliver virtual latency of this QoS class
    /// (`span.e2e.<protocol>` histogram over every delivery of the run).
    latency: HistogramSnapshot,
    /// Protocol telemetry (`group.*` counters aggregated over the cluster).
    wire: Snapshot,
}

fn run(proto: &'static str, make: MakeProto, loss: f64) -> Row {
    let n = 8usize;
    let msgs = 20usize;
    let (mut sim, ids, registry) = cluster(n, loss, 1234, make);
    sim.run_until(SimTime::from_millis(1));
    sim.reset_stats();
    // Publishes land on a known virtual-time grid; the payload's first byte
    // is the message index, so each delivery's end-to-end latency is its
    // timestamp minus the recorded publish instant.
    let mut publish_at_us = vec![0u64; msgs];
    for m in 0..msgs {
        publish_at_us[m] = sim.now().as_micros();
        GroupNode::broadcast(&mut sim, ids[m % n], vec![m as u8; 32]);
        let next = sim.now() + psc_simnet::Duration::from_millis(5);
        sim.run_until(next);
    }
    sim.run_until(sim.now() + psc_simnet::Duration::from_secs(3));

    let latency = registry.histogram(&format!("span.e2e.{proto}"), &span_buckets());
    let mut total_deliveries = 0usize;
    for &id in &ids {
        for (_origin, payload, at) in GroupNode::delivered_timed(&mut sim, id) {
            total_deliveries += 1;
            let m = payload[0] as usize;
            latency.record(at.as_micros().saturating_sub(publish_at_us[m]));
        }
    }
    let expected = msgs * n;
    let snapshot = registry.snapshot();
    Row {
        proto,
        loss,
        msgs_per_bcast: sim.stats().sent as f64 / msgs as f64,
        bytes_per_bcast: sim.stats().bytes_sent as f64 / msgs as f64,
        delivery_ratio: total_deliveries as f64 / expected as f64,
        latency: snapshot
            .histogram(&format!("span.e2e.{proto}"))
            .cloned()
            .expect("latency histogram recorded"),
        wire: snapshot,
    }
}

/// Crash BOTH the subscriber (before the broadcast) and the publisher
/// (after it): a volatile retransmission log dies with the publisher, a
/// persistent one (certified) survives.
fn crash_recovery_run(proto: &'static str, make: MakeProto) -> (usize, usize) {
    let (mut sim, ids, _registry) = cluster(3, 0.0, 7, make);
    sim.run_until(SimTime::from_millis(1));
    sim.crash(ids[2]);
    GroupNode::broadcast(&mut sim, ids[0], b"while-down".to_vec());
    sim.run_until(sim.now() + psc_simnet::Duration::from_millis(300));
    sim.crash(ids[0]);
    sim.recover(ids[0]);
    sim.recover(ids[2]);
    sim.run_until(sim.now() + psc_simnet::Duration::from_secs(3));
    let during = GroupNode::delivered(&mut sim, ids[1]).len();
    let recovered = GroupNode::delivered(&mut sim, ids[2]).len();
    let _ = proto;
    (during, recovered)
}

fn main() {
    println!("E3: delivery semantics — overhead, completeness, latency (8 nodes, 20 broadcasts)\n");
    let protos: [(&'static str, MakeProto); 6] = [
        ("besteffort", || Box::new(BestEffort::new())),
        ("reliable", || Box::new(Reliable::new())),
        ("fifo", || Box::new(Fifo::new())),
        ("causal", || Box::new(Causal::new())),
        ("total", || Box::new(Total::new())),
        ("certified", || Box::new(Certified::new())),
    ];

    let mut table = Table::new(&[
        "protocol",
        "loss",
        "msgs/bcast",
        "bytes/bcast",
        "delivery ratio",
        "p50 µs",
        "p90 µs",
        "p99 µs",
    ]);
    let mut json_rows = JsonValue::arr();
    for loss in [0.0, 0.05, 0.20] {
        for (name, make) in protos {
            let row = run(name, make, loss);
            table.row(&[
                row.proto.to_string(),
                format!("{:.0}%", row.loss * 100.0),
                fmt_f(row.msgs_per_bcast),
                fmt_f(row.bytes_per_bcast),
                format!("{:.3}", row.delivery_ratio),
                row.latency.percentile(0.50).to_string(),
                row.latency.percentile(0.90).to_string(),
                row.latency.percentile(0.99).to_string(),
            ]);
            json_rows = json_rows.push(
                JsonValue::obj()
                    .set("protocol", row.proto)
                    .set("loss", row.loss)
                    .set("msgs_per_bcast", row.msgs_per_bcast)
                    .set("bytes_per_bcast", row.bytes_per_bcast)
                    .set("delivery_ratio", row.delivery_ratio)
                    .set(
                        "latency_us",
                        JsonValue::obj()
                            .set("count", row.latency.count)
                            .set("mean", row.latency.mean())
                            .set("p50", row.latency.percentile(0.50))
                            .set("p90", row.latency.percentile(0.90))
                            .set("p99", row.latency.percentile(0.99))
                            .set("max", row.latency.max),
                    )
                    .set("metrics", row.wire.to_json()),
            );
        }
    }
    table.print();

    println!("\ncrash/recovery: subscriber down during broadcast; publisher then crashes");
    println!("(volatile retransmission state dies with the publisher; certified persists)");
    let mut table = Table::new(&["protocol", "live node delivered", "crashed node after recovery"]);
    let mut json_crash = JsonValue::arr();
    for (name, make) in [
        ("reliable", protos[1].1),
        ("certified", protos[5].1),
    ] {
        let (during, recovered) = crash_recovery_run(name, make);
        table.row(&[name.to_string(), during.to_string(), recovered.to_string()]);
        json_crash = json_crash.push(
            JsonValue::obj()
                .set("protocol", name)
                .set("live_delivered", during)
                .set("recovered_delivered", recovered),
        );
    }
    table.print();
    println!(
        "\nexpected shape: overhead rises up the ladder; only certified delivers to the\n\
         crashed subscriber after both recoveries (reliable retransmission state is\n\
         volatile and died with the publisher)."
    );

    let doc = JsonValue::obj()
        .set("experiment", "delivery_semantics")
        .set("nodes", 8u64)
        .set("broadcasts", 20u64)
        .set("rows", json_rows)
        .set("crash_recovery", json_crash);
    let path = write_bench_json("delivery_semantics", &doc).expect("write BENCH json");
    println!("\nmetrics snapshot written to {}", path.display());
}
