//! E1 report — compound-filter factoring vs naive per-filter matching.
//!
//! Regenerates the EXPERIMENTS.md series: matching time per obvent and the
//! predicate-sharing statistics, for overlapping and disjoint subscription
//! populations. Run with `cargo run --release -p psc-bench --bin
//! exp_factoring`.

use std::time::Instant;

use psc_bench::{disjoint_filters, fmt_f, overlapping_filters, quote_values, Table};
use psc_filter::{FilterIndex, IndexOptions};

fn measure(index: &mut FilterIndex, events: &[psc_filter::Value], naive: bool) -> (f64, usize) {
    // One full warm-up pass, then time several passes for stable numbers.
    let mut matches = 0usize;
    for event in events {
        matches = if naive {
            index.naive_matching(event).len()
        } else {
            index.matching(event).len()
        };
    }
    let passes = 5usize;
    let start = Instant::now();
    for _ in 0..passes {
        for event in events {
            matches = if naive {
                index.naive_matching(event).len()
            } else {
                index.matching(event).len()
            };
        }
    }
    let micros = start.elapsed().as_secs_f64() * 1e6 / (events.len() * passes) as f64;
    (micros, matches)
}

fn main() {
    println!("E1: filter factoring (ASS+99-style compound index vs naive evaluation)");
    println!("workload: stock quotes; filters = conjunctions on price/company\n");

    for (pop, make) in [
        (
            "overlapping (coarse price grid, shared tickers)",
            overlapping_filters as fn(u64, usize) -> Vec<psc_filter::RemoteFilter>,
        ),
        ("disjoint (unique price bands)", disjoint_filters),
    ] {
        println!("population: {pop}");
        let mut table = Table::new(&[
            "subscriptions",
            "unique preds",
            "naive us/event",
            "factored us/event",
            "speedup",
        ]);
        let events = quote_values(7, 512);
        for &n in &[10usize, 100, 1_000, 5_000, 10_000] {
            let mut index = FilterIndex::new();
            for f in make(1, n) {
                index.insert(f);
            }
            let stats = index.stats();
            let (naive_us, m1) = measure(&mut index, &events, true);
            let (fact_us, m2) = measure(&mut index, &events, false);
            assert_eq!(m1, m2, "factored and naive must agree on the last event");
            table.row(&[
                n.to_string(),
                stats.unique_predicates.to_string(),
                fmt_f(naive_us),
                fmt_f(fact_us),
                format!("{:.1}x", naive_us / fact_us),
            ]);
        }
        table.print();
        println!();
    }

    // Ablation: which mechanism buys the speedup? (overlapping population)
    println!("ablation (overlapping population): contribution of each mechanism");
    let mut table = Table::new(&[
        "subscriptions",
        "full us/event",
        "no-batch us/event",
        "no-dedup us/event",
        "neither us/event",
        "naive us/event",
    ]);
    let events = quote_values(7, 512);
    for &n in &[1_000usize, 10_000] {
        let filters = overlapping_filters(1, n);
        let configs = [
            IndexOptions { dedup: true, batch: true },
            IndexOptions { dedup: true, batch: false },
            IndexOptions { dedup: false, batch: true },
            IndexOptions { dedup: false, batch: false },
        ];
        let mut cells = vec![n.to_string()];
        let mut reference = None;
        for options in configs {
            let mut index = FilterIndex::with_options(options);
            for f in &filters {
                index.insert(f.clone());
            }
            let (us, matches) = measure(&mut index, &events, false);
            match reference {
                None => reference = Some(matches),
                Some(r) => assert_eq!(r, matches, "ablation variants must agree"),
            }
            cells.push(fmt_f(us));
        }
        let mut index = FilterIndex::new();
        for f in &filters {
            index.insert(f.clone());
        }
        let (naive_us, _) = measure(&mut index, &events, true);
        cells.push(fmt_f(naive_us));
        table.row(&cells);
    }
    table.print();
    println!(
        "\nexpected shape: disabling batching costs the most on threshold-heavy\n\
         workloads; disabling dedup multiplies predicate evaluations; with both off\n\
         only the shared property fetch remains."
    );
}
