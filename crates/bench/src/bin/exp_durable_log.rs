//! E14 report — the durable channel write-ahead log: append-path cost,
//! crash-recovery replay, and real-disk fsync batching.
//!
//! Three sections:
//!
//! 1. **append** — one publisher bursts certified obvents at a durable
//!    subscriber, with the WAL off (`DaceConfig::wal = false`, the
//!    pre-durability baseline) and on. The delta in the route wall is the
//!    full bookkeeping cost of durability on the publish hot path:
//!    CRC framing, per-channel log routing, rotation. The WAL rows also
//!    export the deterministic per-publish record counts — `wal.appends`
//!    and `wal.syncs` per publish are the fsync-batching figures (one
//!    barrier per flush, not per record).
//! 2. **recovery** — the subscriber from the WAL run is crashed
//!    ([`DiskFault::None`]: the log survives in full) and restarted; the
//!    first callback of the new incarnation replays its segments. The
//!    section reports replayed records, replay wall, and — because the
//!    durable subscription re-attaches under the same identity —
//!    `redeliveries`, which must be 0: recovery restores the delivered
//!    set, so nothing is handed to the application twice.
//! 3. **fsync** — [`psc_net::FileWal`] driven directly on a temp
//!    directory: N appends per `fsync`, swept over the batch size. This
//!    is the real-disk half of the fsync-batching story; the simulator
//!    charges nothing for a sync barrier, a disk charges a lot.
//!
//! Run with `cargo run --release -p psc-bench --bin exp_durable_log`; set
//! `BENCH_QUICK=1` to shrink the (real-disk) fsync sweep. The simulated
//! sections run the same fixed workload in both modes, so their
//! deterministic counts are directly comparable across scales.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

use psc_bench::{fmt_f, write_bench_json, Table};
use psc_dace::{DaceConfig, DaceNode};
use psc_net::FileWal;
use psc_obvent::builtin::Certified;
use psc_obvent::declare_obvent_model;
use psc_simnet::{DiskFault, NodeId, SimConfig, SimNet, SimTime, WalOp};
use psc_telemetry::json::JsonValue;
use psc_telemetry::{Registry, Snapshot, Tracer};
use pubsub_core::FilterSpec;

declare_obvent_model! {
    /// The durability workload: a certified tick, so every publish crosses
    /// the WAL (parked for retransmission on the publisher, delivered +
    /// deduplicated on the subscriber).
    pub class DurableTick implements [Certified] { n: u64 }
}

/// Fixed size of the simulated workload (identical in quick and full
/// runs: the sim costs milliseconds, and fixed size keeps the per-publish
/// counts exactly comparable for the regression gate).
const PUBLISHES: u64 = 256;
const DURABLE_ID: u64 = 0xE14;

fn durable_config(wal: bool) -> DaceConfig {
    DaceConfig {
        wal,
        // Small segments so the burst exercises rotation; compaction held
        // off so the recovery section replays the full history.
        wal_segment_bytes: 4 * 1024,
        wal_compact_threshold: 1 << 20,
        ..DaceConfig::default()
    }
}

fn attach(sim: &mut SimNet, id: NodeId) -> Arc<AtomicU64> {
    let delivered = Arc::new(AtomicU64::new(0));
    let counter = Arc::clone(&delivered);
    DaceNode::drive(sim, id, move |domain| {
        let sub = domain.subscribe(FilterSpec::accept_all(), move |_t: DurableTick| {
            counter.fetch_add(1, Ordering::Relaxed);
        });
        sub.activate_with_id(DURABLE_ID).expect("durable attach");
        sub.detach();
    });
    delivered
}

struct AppendRun {
    route_wall_ms: f64,
    delivered: u64,
    snapshot: Snapshot,
    /// Kept alive for the recovery section (WAL run only).
    sim: SimNet,
    ids: Vec<NodeId>,
    registry: Arc<Registry>,
}

/// The append workload: publisher node 0 bursts `PUBLISHES` certified
/// ticks at a durable subscriber on node 1, then the network settles.
fn run_append(wal: bool) -> AppendRun {
    let mut sim = SimNet::new(SimConfig::with_seed(14));
    let ids = vec![NodeId(0), NodeId(1)];
    let registry = Arc::new(Registry::new());
    let tracer = Arc::new(Tracer::default());
    tracer.set_enabled(false);
    for (i, _) in ids.iter().enumerate() {
        sim.add_node(
            format!("n{i}"),
            DaceNode::factory_with_telemetry(
                ids.clone(),
                durable_config(wal),
                Arc::clone(&registry),
                Arc::clone(&tracer),
            ),
        );
    }
    let delivered = attach(&mut sim, ids[1]);
    sim.run_until(SimTime::from_millis(40));

    let route_start = Instant::now();
    DaceNode::drive(&mut sim, ids[0], move |domain| {
        for n in 0..PUBLISHES {
            domain.publish(DurableTick::new(n)).expect("publish tick");
        }
    });
    let route_wall_ms = route_start.elapsed().as_secs_f64() * 1e3;
    let deadline = sim.now() + psc_simnet::Duration::from_millis(2_000);
    sim.run_until(deadline);

    AppendRun {
        route_wall_ms,
        delivered: delivered.load(Ordering::Relaxed),
        snapshot: registry.snapshot(),
        sim,
        ids,
        registry,
    }
}

fn append_row(wal: bool, r: &AppendRun) -> JsonValue {
    let mismatches = r.delivered.abs_diff(PUBLISHES);
    JsonValue::obj()
        .set("wal", u64::from(wal))
        .set("publishes", PUBLISHES)
        .set("route_wall_ms", r.route_wall_ms)
        .set("route_us_per_publish", r.route_wall_ms * 1e3 / PUBLISHES as f64)
        .set("deliveries", r.delivered)
        .set("delivery_mismatches", mismatches)
        .set("wal_appends", r.snapshot.counter("wal.appends"))
        .set("wal_bytes", r.snapshot.counter("wal.bytes"))
        .set("wal_syncs", r.snapshot.counter("wal.syncs"))
        .set("wal_rotations", r.snapshot.counter("wal.rotations"))
        .set(
            "appends_per_publish",
            r.snapshot.counter("wal.appends") as f64 / PUBLISHES as f64,
        )
        .set(
            "syncs_per_publish",
            r.snapshot.counter("wal.syncs") as f64 / PUBLISHES as f64,
        )
}

/// The recovery workload: crash the WAL run's subscriber with its disk
/// intact, restart it, and time the first callback of the new incarnation
/// — that is where the segment replay runs.
fn run_recovery(r: &mut AppendRun) -> JsonValue {
    let before = r.registry.snapshot();
    let delivered_before = r.delivered;
    r.sim.crash_with_fault(r.ids[1], DiskFault::None);
    let step = r.sim.now() + psc_simnet::Duration::from_millis(20);
    r.sim.run_until(step);
    r.sim.recover(r.ids[1]);

    let replay_start = Instant::now();
    let delivered = attach(&mut r.sim, r.ids[1]);
    let replay_wall_ms = replay_start.elapsed().as_secs_f64() * 1e3;
    let settle = r.sim.now() + psc_simnet::Duration::from_millis(1_000);
    r.sim.run_until(settle);

    let after = r.registry.snapshot();
    let records =
        after.counter("wal.replay.records") - before.counter("wal.replay.records");
    // The durable identity restored its delivered set from the log, so the
    // only legitimate post-recovery deliveries are publishes the first
    // incarnation never saw; anything beyond that is a redelivery.
    let owed = PUBLISHES.saturating_sub(delivered_before);
    let redeliveries = delivered.load(Ordering::Relaxed).saturating_sub(owed);
    println!(
        "recovery: {records} records replayed in {} ms, {redeliveries} redeliveries\n",
        fmt_f(replay_wall_ms)
    );
    JsonValue::obj()
        .set("replay_records", records)
        .set("replay_wall_ms", replay_wall_ms)
        .set(
            "replay_records_per_sec",
            records as f64 / (replay_wall_ms / 1e3).max(1e-9),
        )
        .set("replay_torn", after.counter("wal.replay.torn"))
        .set("replay_corrupt", after.counter("wal.replay.corrupt"))
        .set("redeliveries", redeliveries)
}

/// The real-disk fsync curve: `appends` records through [`FileWal`], one
/// `sync_data` every `batch` appends.
fn run_fsync(appends: usize, batch: usize, payload: usize) -> JsonValue {
    let root = std::env::temp_dir()
        .join(format!("psc-bench-durable-{}-{batch}", std::process::id()));
    let _ = std::fs::remove_dir_all(&root);
    let (_, mut wal) = FileWal::open(&root).expect("open bench data dir");

    // Pre-frame one record shape; the op stream reuses it (the bench
    // measures the disk, not the allocator).
    let mut framed = Vec::new();
    psc_codec::frame::encode_crc(&vec![0xE1u8; payload], &mut framed);
    let append = WalOp::Append { log: "ch/bench".into(), bytes: framed.clone() };
    let sync = WalOp::Sync { log: "ch/bench".into() };

    let start = Instant::now();
    for i in 0..appends {
        wal.apply(std::slice::from_ref(&append)).expect("append");
        if (i + 1) % batch == 0 {
            wal.apply(std::slice::from_ref(&sync)).expect("sync");
        }
    }
    let wall_ms = start.elapsed().as_secs_f64() * 1e3;
    let _ = std::fs::remove_dir_all(&root);

    let bytes = (framed.len() * appends) as f64;
    JsonValue::obj()
        .set("batch", batch as u64)
        .set("appends", appends as u64)
        .set("record_bytes", framed.len() as u64)
        .set("wall_ms", wall_ms)
        .set("us_per_append", wall_ms * 1e3 / appends as f64)
        .set("mb_per_sec", bytes / 1e6 / (wall_ms / 1e3).max(1e-9))
}

fn main() {
    psc_telemetry::set_global_enabled(true);
    let quick = std::env::var_os("BENCH_QUICK").is_some();
    let fsync_appends = if quick { 128 } else { 1_024 };

    println!("E14: durable channel WAL — append cost, recovery replay, fsync batching\n");

    let mut table = Table::new(&[
        "wal",
        "route ms",
        "route us/pub",
        "deliveries",
        "appends/pub",
        "syncs/pub",
        "rotations",
    ]);
    let mut append_rows = JsonValue::arr();
    let mut wal_run = None;
    for wal in [false, true] {
        let r = run_append(wal);
        table.row(&[
            u64::from(wal).to_string(),
            fmt_f(r.route_wall_ms),
            fmt_f(r.route_wall_ms * 1e3 / PUBLISHES as f64),
            r.delivered.to_string(),
            fmt_f(r.snapshot.counter("wal.appends") as f64 / PUBLISHES as f64),
            fmt_f(r.snapshot.counter("wal.syncs") as f64 / PUBLISHES as f64),
            r.snapshot.counter("wal.rotations").to_string(),
        ]);
        append_rows = append_rows.push(append_row(wal, &r));
        if wal {
            wal_run = Some(r);
        }
    }
    table.print();
    println!();

    let recovery = run_recovery(&mut wal_run.expect("wal run present"));

    let mut fsync_table =
        Table::new(&["batch", "appends", "wall ms", "us/append", "MB/s"]);
    let mut fsync_rows = JsonValue::arr();
    for &batch in &[1usize, 8, 64] {
        let row = run_fsync(fsync_appends, batch, 256);
        fsync_table.row(&[
            batch.to_string(),
            fsync_appends.to_string(),
            fmt_f(row.get("wall_ms").and_then(JsonValue::as_f64).unwrap_or(0.0)),
            fmt_f(row.get("us_per_append").and_then(JsonValue::as_f64).unwrap_or(0.0)),
            fmt_f(row.get("mb_per_sec").and_then(JsonValue::as_f64).unwrap_or(0.0)),
        ]);
        fsync_rows = fsync_rows.push(row);
    }
    println!("fsync batching ({fsync_appends} x 256B records through FileWal):");
    fsync_table.print();

    let doc = JsonValue::obj()
        .set("experiment", "durable_log")
        .set("quick", quick)
        .set("publishes", PUBLISHES)
        .set("append", append_rows)
        .set("recovery", recovery)
        .set("fsync", fsync_rows)
        .set("metrics", psc_telemetry::global().snapshot().to_json());
    let path = write_bench_json("exp_durable_log", &doc).expect("write BENCH json");
    println!("\nmetrics snapshot written to {}", path.display());
    println!(
        "\nexpected shape: the WAL row pays a bounded per-publish premium over wal=0\n\
         (CRC framing + log routing); syncs/pub stays a small constant — one barrier\n\
         per touched log per flush, not one per record; recovery replays every record\n\
         with 0 redeliveries; the real-disk fsync curve improves steeply with the\n\
         batch size."
    );
}
