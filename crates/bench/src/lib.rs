//! Shared workload generators for the benchmark harness.
//!
//! Every experiment binary and criterion bench builds its inputs from these
//! helpers, so the workloads stay comparable across experiments: a stock
//! ticker in the paper's own domain (quotes with company / price / amount),
//! plus subscription populations with controllable overlap and
//! selectivity.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use psc_filter::{rfilter, CmpOp, Predicate, RemoteFilter, Value};
use psc_obvent::declare_obvent_model;

declare_obvent_model! {
    /// The workload obvent: a stock quote (paper Fig. 2).
    pub class BenchQuote {
        company: String,
        price: f64,
        amount: u32,
    }
}

/// Ticker symbols used by the generators.
pub const COMPANIES: [&str; 8] = [
    "Telco Mobiles",
    "Telco Fixed",
    "Banco Verde",
    "Banco Azul",
    "Aero Dynamics",
    "Hydro Power",
    "Agri Foods",
    "Micro Devices",
];

/// Deterministic stream of quote property records (for filter benches).
pub fn quote_values(seed: u64, n: usize) -> Vec<Value> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| {
            Value::record([
                (
                    "company",
                    Value::from(COMPANIES[rng.gen_range(0..COMPANIES.len())]),
                ),
                ("price", Value::from(rng.gen_range(1.0..200.0))),
                ("amount", Value::from(rng.gen_range(1u32..1000))),
            ])
        })
        .collect()
}

/// Deterministic stream of quote obvents (for end-to-end benches).
pub fn quote_obvents(seed: u64, n: usize) -> Vec<BenchQuote> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| {
            BenchQuote::new(
                COMPANIES[rng.gen_range(0..COMPANIES.len())].to_string(),
                rng.gen_range(1.0..200.0),
                rng.gen_range(1u32..1000),
            )
        })
        .collect()
}

/// A population of `n` subscriptions with heavy predicate overlap — the
/// factoring-friendly case the paper's brokers exhibit (everyone watches
/// similar price bands on the same tickers).
pub fn overlapping_filters(seed: u64, n: usize) -> Vec<RemoteFilter> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| {
            // Thresholds snap to a coarse grid so many subscriptions share
            // predicates verbatim.
            let threshold = (rng.gen_range(1..20) * 10) as f64;
            let company = COMPANIES[rng.gen_range(0..COMPANIES.len())];
            RemoteFilter::conjunction(vec![
                Predicate::new("price", CmpOp::Lt, threshold),
                Predicate::new("company", CmpOp::Eq, company),
            ])
        })
        .collect()
}

/// A population of `n` subscriptions with unique, non-overlapping
/// predicates — the factoring-hostile case.
pub fn disjoint_filters(seed: u64, n: usize) -> Vec<RemoteFilter> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|i| {
            let lo = rng.gen_range(0.0..190.0) + (i as f64) * 1e-7;
            RemoteFilter::conjunction(vec![
                Predicate::new("price", CmpOp::Ge, lo),
                Predicate::new("price", CmpOp::Lt, lo + rng.gen_range(1.0..10.0)),
            ])
        })
        .collect()
}

/// Symbol vocabulary size for the match-scale workload (events and
/// filters draw from the same `s0..s999` pool).
pub const SCALE_VOCAB: usize = 1_000;

/// Deterministic stream of wide property records for the match-scale
/// experiment: a symbol drawn from a [`SCALE_VOCAB`]-wide vocabulary plus
/// `attrs` numeric attributes `f0..f{attrs-1}`, uniform in `0..100`.
pub fn wide_events(seed: u64, n: usize, attrs: usize) -> Vec<Value> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| {
            let sym = format!("s{}", rng.gen_range(0..SCALE_VOCAB));
            Value::record(
                std::iter::once(("sym".to_string(), Value::from(sym))).chain(
                    (0..attrs).map(|a| (format!("f{a}"), Value::from(rng.gen_range(0.0..100.0)))),
                ),
            )
        })
        .collect()
}

/// A population of `n` subscriptions over `attrs` attributes: each pins
/// one symbol from the shared vocabulary and adds a narrow numeric band on
/// one random attribute plus a half-open guard on another. This is the
/// counting engine's target workload: the equality predicate is the access
/// gate (hash-bucket probe touches only the ~`n`/[`SCALE_VOCAB`] filters
/// on the event's symbol), and the wide numeric predicates are verified
/// only on those candidates instead of being counted across the whole
/// population.
pub fn scaled_filters(seed: u64, n: usize, attrs: usize) -> Vec<RemoteFilter> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| {
            let sym = format!("s{}", rng.gen_range(0..SCALE_VOCAB));
            let band_attr = format!("f{}", rng.gen_range(0..attrs));
            let guard_attr = format!("f{}", rng.gen_range(0..attrs));
            let lo = rng.gen_range(0.0..95.0);
            let width = rng.gen_range(0.5..5.0);
            RemoteFilter::conjunction(vec![
                Predicate::new("sym", CmpOp::Eq, sym.as_str()),
                Predicate::new(band_attr.as_str(), CmpOp::Ge, lo),
                Predicate::new(band_attr.as_str(), CmpOp::Lt, lo + width),
                Predicate::new(guard_attr.as_str(), CmpOp::Lt, rng.gen_range(5.0..100.0)),
            ])
        })
        .collect()
}

/// A filter with the given match probability against [`quote_values`]
/// (price is uniform in 1..200).
pub fn filter_with_selectivity(selectivity: f64) -> RemoteFilter {
    let threshold = 1.0 + 199.0 * selectivity.clamp(0.0, 1.0);
    rfilter!(price < 100.0).and(RemoteFilter::conjunction(vec![Predicate::new(
        "price",
        CmpOp::Lt,
        threshold,
    )]))
}

/// Simple text table printer for the experiment report binaries.
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new(headers: &[&str]) -> Table {
        Table {
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends one row (stringified cells).
    pub fn row(&mut self, cells: &[String]) {
        assert_eq!(cells.len(), self.headers.len(), "row arity mismatch");
        self.rows.push(cells.to_vec());
    }

    /// Renders the table to stdout.
    pub fn print(&self) {
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let line = |cells: &[String]| {
            let mut out = String::new();
            for (w, cell) in widths.iter().zip(cells) {
                out.push_str(&format!("{cell:>w$}  ", w = w));
            }
            println!("{}", out.trim_end());
        };
        line(&self.headers);
        println!(
            "{}",
            widths
                .iter()
                .map(|w| "-".repeat(*w + 2))
                .collect::<String>()
                .trim_end()
        );
        for row in &self.rows {
            line(row);
        }
    }
}

/// Writes `doc` as `BENCH_<name>.json` next to the text report, so the
/// experiment series doubles as a machine-readable perf trajectory. The
/// target directory comes from `BENCH_JSON_DIR` (default: the current
/// directory). Returns the path written.
pub fn write_bench_json(
    name: &str,
    doc: &psc_telemetry::json::JsonValue,
) -> std::io::Result<std::path::PathBuf> {
    let dir = std::env::var_os("BENCH_JSON_DIR")
        .map(std::path::PathBuf::from)
        .unwrap_or_else(|| std::path::PathBuf::from("."));
    let path = dir.join(format!("BENCH_{name}.json"));
    std::fs::write(&path, format!("{}\n", doc.render()))?;
    Ok(path)
}

/// Formats a float compactly for tables.
pub fn fmt_f(x: f64) -> String {
    if x >= 100.0 {
        format!("{x:.0}")
    } else if x >= 1.0 {
        format!("{x:.2}")
    } else {
        format!("{x:.4}")
    }
}
