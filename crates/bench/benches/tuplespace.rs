//! E9 — §6.3: pub/sub versus tuple space for event dissemination.
//!
//! The same notify-N-consumers workload expressed three ways: pub/sub
//! (asynchronous push, one copy per subscriber), tuple-space reactions
//! (JavaSpaces-style callbacks), and tuple-space polling (`rd`-loop — the
//! flow-coupled original).

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use psc_bench::{quote_obvents, BenchQuote};
use psc_dace::inproc::Bus;
use psc_tuplespace::{template, tuple, TupleSpace};
use pubsub_core::FilterSpec;

fn bench_paradigms(c: &mut Criterion) {
    let quotes = quote_obvents(13, 64);
    let mut group = c.benchmark_group("event_dissemination");
    group.sample_size(20);
    let n_consumers = 8usize;

    // --- pub/sub bus ---
    let bus = Bus::new();
    let publisher = bus.domain_inline();
    let received = Arc::new(AtomicU64::new(0));
    let _domains: Vec<_> = (0..n_consumers)
        .map(|_| {
            let d = bus.domain_inline();
            let r = received.clone();
            let sub = d.subscribe(FilterSpec::accept_all(), move |_q: BenchQuote| {
                r.fetch_add(1, Ordering::Relaxed);
            });
            sub.activate().unwrap();
            sub.detach();
            d
        })
        .collect();
    group.bench_with_input(BenchmarkId::new("pubsub_publish", n_consumers), &0, |b, _| {
        let mut i = 0;
        b.iter(|| {
            publisher.publish(quotes[i % quotes.len()].clone()).unwrap();
            i += 1;
        });
    });

    // --- tuple space with reactions ---
    let space = TupleSpace::new();
    let reacted = Arc::new(AtomicU64::new(0));
    let _reactions: Vec<_> = (0..n_consumers)
        .map(|_| {
            let r = reacted.clone();
            space.react(template![= "quote", str, float, int], move |_t| {
                r.fetch_add(1, Ordering::Relaxed);
            })
        })
        .collect();
    group.bench_with_input(BenchmarkId::new("space_out_react", n_consumers), &0, |b, _| {
        let mut i = 0;
        b.iter(|| {
            let q = &quotes[i % quotes.len()];
            i += 1;
            space.out(tuple!["quote", q.company().as_str(), *q.price(), *q.amount() as i64]);
        });
    });

    // --- tuple space, poll-based consumption (out + n × rd) ---
    let space2 = TupleSpace::new();
    group.bench_with_input(BenchmarkId::new("space_out_rd_poll", n_consumers), &0, |b, _| {
        let mut i = 0;
        b.iter(|| {
            let q = &quotes[i % quotes.len()];
            i += 1;
            space2.out(tuple!["quote", q.company().as_str(), *q.price(), *q.amount() as i64]);
            for _ in 0..n_consumers {
                std::hint::black_box(space2.rd(&template![= "quote", str, float, int]));
            }
            space2.take(&template![= "quote", str, float, int]);
        });
    });
    group.finish();
}

criterion_group!(benches, bench_paradigms);
criterion_main!(benches);
