//! E10 — LM1: serialization cost of the default mechanism.
//!
//! Encoding/decoding obvents, prefix (supertype) decoding, and dynamic-view
//! construction — the per-message CPU the dissemination layer pays.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};

use psc_bench::{quote_obvents, BenchQuote};
use psc_obvent::{Obvent, WireObvent};

fn bench_codec(c: &mut Criterion) {
    let quotes = quote_obvents(3, 64);
    let wires: Vec<WireObvent> = quotes.iter().map(|q| WireObvent::encode(q).unwrap()).collect();
    let avg_len: usize = wires.iter().map(WireObvent::wire_len).sum::<usize>() / wires.len();
    println!("average wire size: {avg_len} bytes");

    let mut group = c.benchmark_group("codec");
    group.throughput(Throughput::Elements(1));
    group.bench_function("encode_obvent", |b| {
        let mut i = 0;
        b.iter(|| {
            let q = &quotes[i % quotes.len()];
            i += 1;
            std::hint::black_box(WireObvent::encode(q).unwrap())
        });
    });
    group.bench_function("decode_exact", |b| {
        let mut i = 0;
        b.iter(|| {
            let w = &wires[i % wires.len()];
            i += 1;
            std::hint::black_box(w.decode_exact::<BenchQuote>().unwrap())
        });
    });
    group.bench_function("decode_view", |b| {
        let mut i = 0;
        b.iter(|| {
            let w = &wires[i % wires.len()];
            i += 1;
            std::hint::black_box(w.view().unwrap())
        });
    });
    group.bench_function("properties_record", |b| {
        let mut i = 0;
        b.iter(|| {
            let q = &quotes[i % quotes.len()];
            i += 1;
            std::hint::black_box(q.properties())
        });
    });
    group.finish();
}

criterion_group!(benches, bench_codec);
criterion_main!(benches);
