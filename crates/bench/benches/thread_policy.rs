//! E5 — §3.3.5 thread policies: multi-threaded handlers exploit the worker
//! pool for CPU-bound work; single-threading serializes (the price of the
//! one-obvent-at-a-time guarantee).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use psc_bench::{quote_obvents, BenchQuote};
use pubsub_core::{Domain, FilterSpec, ThreadPolicy};

/// A small CPU-bound handler body (checksum loop).
fn burn(seed: u64) -> u64 {
    let mut x = seed.wrapping_add(0x9e3779b97f4a7c15);
    for _ in 0..20_000 {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
    }
    x
}

fn bench_policies(c: &mut Criterion) {
    let quotes = quote_obvents(11, 64);
    let mut group = c.benchmark_group("thread_policy");
    group.sample_size(10);

    for (name, policy) in [
        ("multi", ThreadPolicy::Multi),
        ("bounded2", ThreadPolicy::Bounded(2)),
        ("single", ThreadPolicy::Single),
    ] {
        group.bench_with_input(BenchmarkId::new(name, 16), &policy, |b, &policy| {
            b.iter_batched(
                || {
                    let domain = Domain::in_process_pooled(8);
                    let sub = domain.subscribe(FilterSpec::accept_all(), |q: BenchQuote| {
                        std::hint::black_box(burn(*q.amount() as u64));
                    });
                    sub.set_policy(policy);
                    sub.activate().unwrap();
                    sub.detach();
                    domain
                },
                |domain| {
                    for q in &quotes[..16] {
                        domain.publish(q.clone()).unwrap();
                    }
                    domain.drain();
                },
                criterion::BatchSize::PerIteration,
            );
        });
    }
    group.finish();
}

criterion_group!(benches, bench_policies);
criterion_main!(benches);
