//! E6 — §5.4: pub/sub "scales easily to many brokers" for 1→N
//! dissemination, versus N sequential remote invocations.
//!
//! One publisher notifies N receivers of a quote: once through the pub/sub
//! bus (single publish, fabric fans out), once by invoking a remote
//! `notify` on each receiver in turn (the RPC shape of the same
//! interaction).

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use psc_bench::{quote_obvents, BenchQuote};
use psc_dace::inproc::Bus;
use psc_rmi::{remote_iface, DgcMode, RmiError, RmiNetwork};
use pubsub_core::{Domain, FilterSpec};

remote_iface! {
    pub trait QuoteSink {
        fn notify(&self, company: String, price: f64, amount: u32) -> ();
    }
}

struct Sink {
    count: Arc<AtomicU64>,
}

impl QuoteSink for Sink {
    fn notify(&self, _company: String, _price: f64, _amount: u32) -> Result<(), RmiError> {
        self.count.fetch_add(1, Ordering::Relaxed);
        Ok(())
    }
}

fn bench_fanout(c: &mut Criterion) {
    let quotes = quote_obvents(5, 32);
    let mut group = c.benchmark_group("fanout_1_to_n");
    group.sample_size(20);

    for &n in &[1usize, 8, 32, 128] {
        // --- pub/sub: one publish, the fabric fans out ---
        let bus = Bus::new();
        let publisher = bus.domain_inline();
        let received = Arc::new(AtomicU64::new(0));
        let _domains: Vec<Domain> = (0..n)
            .map(|_| {
                let d = bus.domain_inline();
                let r = received.clone();
                let sub = d.subscribe(FilterSpec::accept_all(), move |_q: BenchQuote| {
                    r.fetch_add(1, Ordering::Relaxed);
                });
                sub.activate().unwrap();
                sub.detach();
                d
            })
            .collect();
        group.bench_with_input(BenchmarkId::new("pubsub", n), &n, |b, _| {
            let mut i = 0;
            b.iter(|| {
                publisher.publish(quotes[i % quotes.len()].clone()).unwrap();
                i += 1;
            });
        });

        // --- RMI: N sequential invocations ---
        let net = RmiNetwork::new(n + 1, DgcMode::Strong);
        let rts = net.runtimes();
        let count = Arc::new(AtomicU64::new(0));
        let stubs: Vec<QuoteSinkStub> = (1..=n)
            .map(|i| {
                let r = QuoteSinkStub::export(
                    &rts[i],
                    Arc::new(Sink {
                        count: count.clone(),
                    }),
                );
                QuoteSinkStub::attach(&rts[0], r).unwrap()
            })
            .collect();
        group.bench_with_input(BenchmarkId::new("rmi_sequential", n), &n, |b, _| {
            let mut i = 0;
            b.iter(|| {
                let q = &quotes[i % quotes.len()];
                i += 1;
                for stub in &stubs {
                    stub.notify(q.company().clone(), *q.price(), *q.amount())
                        .unwrap();
                }
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_fanout);
criterion_main!(benches);
