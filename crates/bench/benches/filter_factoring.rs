//! E1 — the §2.3.2/[ASS+99] claim: factoring redundancies between the
//! filters of many subscribers significantly improves matching performance.
//!
//! Compares `FilterIndex::matching` (compound, factored) against
//! `FilterIndex::naive_matching` (every filter evaluated independently)
//! over overlapping and disjoint subscription populations.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

use psc_bench::{disjoint_filters, overlapping_filters, quote_values};
use psc_filter::FilterIndex;

fn bench_factoring(c: &mut Criterion) {
    let events = quote_values(7, 256);
    for (pop_name, make) in [
        (
            "overlapping",
            overlapping_filters as fn(u64, usize) -> Vec<psc_filter::RemoteFilter>,
        ),
        ("disjoint", disjoint_filters),
    ] {
        let mut group = c.benchmark_group(format!("filter_matching/{pop_name}"));
        for &n in &[100usize, 1_000, 5_000] {
            let mut index = FilterIndex::new();
            for f in make(1, n) {
                index.insert(f);
            }
            group.throughput(Throughput::Elements(events.len() as u64));
            group.bench_with_input(BenchmarkId::new("factored", n), &n, |b, _| {
                let mut i = 0;
                b.iter(|| {
                    let event = &events[i % events.len()];
                    i += 1;
                    std::hint::black_box(index.matching(event))
                });
            });
            group.bench_with_input(BenchmarkId::new("naive", n), &n, |b, _| {
                let mut i = 0;
                b.iter(|| {
                    let event = &events[i % events.len()];
                    i += 1;
                    std::hint::black_box(index.naive_matching(event))
                });
            });
        }
        group.finish();
    }
}

criterion_group!(benches, bench_factoring);
criterion_main!(benches);
