//! E3 (timing face) — CPU cost of the delivery-semantics ladder: how much
//! compute one broadcast round costs per protocol, driving the simulated
//! cluster to quiescence. (Message counts and delivery ratios — the other
//! face of E3 — come from `exp_delivery_semantics`.)

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use psc_group::{
    sim_host::GroupNode, BestEffort, Causal, Certified, Fifo, Multicast, Reliable, Total,
};
use psc_simnet::{NodeId, SimConfig, SimNet, SimTime};

fn run_round(make: &dyn Fn() -> Box<dyn Multicast>, n: usize, msgs: usize) -> u64 {
    struct Boxed(Box<dyn Multicast>);
    impl Multicast for Boxed {
        fn broadcast(&mut self, io: &mut dyn psc_group::GroupIo, payload: psc_codec::WireBytes) {
            self.0.broadcast(io, payload);
        }
        fn on_message(&mut self, io: &mut dyn psc_group::GroupIo, from: NodeId, bytes: &[u8]) {
            self.0.on_message(io, from, bytes);
        }
        fn on_timer(&mut self, io: &mut dyn psc_group::GroupIo, token: psc_group::TimerToken) {
            self.0.on_timer(io, token);
        }
        fn on_start(&mut self, io: &mut dyn psc_group::GroupIo) {
            self.0.on_start(io);
        }
        fn on_recover(&mut self, io: &mut dyn psc_group::GroupIo) {
            self.0.on_recover(io);
        }
        fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
            self.0.as_any_mut()
        }
    }

    let mut sim = SimNet::new(SimConfig::with_seed(17));
    let ids: Vec<NodeId> = (0..n as u64).map(NodeId).collect();
    for i in 0..n {
        let proto = make();
        let _ = i;
        sim.add_node(format!("n{i}"), {
            let cell = std::cell::RefCell::new(Some(proto));
            move || GroupNode::boxed(Boxed(cell.borrow_mut().take().expect("single build")))
        });
    }
    for &id in &ids {
        GroupNode::set_members(&mut sim, id, ids.clone());
    }
    for m in 0..msgs {
        GroupNode::broadcast(&mut sim, ids[m % n], vec![m as u8; 64]);
    }
    sim.run_until(SimTime::from_secs(2));
    sim.stats().sent
}

type ProtoFactory = Box<dyn Fn() -> Box<dyn Multicast>>;

fn bench_protocols(c: &mut Criterion) {
    let mut group = c.benchmark_group("protocol_round");
    group.sample_size(10);
    let n = 8;
    let msgs = 16;
    let protos: Vec<(&str, ProtoFactory)> = vec![
        ("besteffort", Box::new(|| Box::new(BestEffort::new()))),
        ("reliable", Box::new(|| Box::new(Reliable::new()))),
        ("fifo", Box::new(|| Box::new(Fifo::new()))),
        ("causal", Box::new(|| Box::new(Causal::new()))),
        ("total", Box::new(|| Box::new(Total::new()))),
        ("certified", Box::new(|| Box::new(Certified::new()))),
    ];
    for (name, make) in &protos {
        group.bench_with_input(BenchmarkId::new(*name, n), &n, |b, _| {
            b.iter(|| std::hint::black_box(run_round(make.as_ref(), n, msgs)));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_protocols);
criterion_main!(benches);
