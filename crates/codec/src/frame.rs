//! Length-delimited framing for stream transports.
//!
//! The simulated network delivers whole datagrams, but the in-process
//! threaded transport and the RMI substrate move byte streams around; frames
//! give them message boundaries. A frame is a `u32` little-endian length
//! followed by that many payload bytes.
//!
//! Real sockets additionally want corruption detection at the framing
//! layer: a flipped length byte otherwise desynchronizes the stream and
//! every later "frame" is garbage. The checksummed variant
//! ([`encode_crc`] / [`FrameReassembler`]) prepends
//! `[len u32le][crc32 u32le]` and verifies the CRC32 (IEEE) of the payload
//! before handing the frame up.

use crate::CodecError;

/// Hard upper bound on a single frame's payload, guarding against corrupt
/// length prefixes (16 MiB).
pub const MAX_FRAME_LEN: usize = 16 * 1024 * 1024;

/// Appends a frame containing `payload` to `out`.
///
/// # Panics
///
/// Panics if `payload` exceeds [`MAX_FRAME_LEN`]; obvents are small by
/// design (paper §2.1.1: "small unbound objects").
pub fn encode(payload: &[u8], out: &mut Vec<u8>) {
    assert!(
        payload.len() <= MAX_FRAME_LEN,
        "frame payload of {} bytes exceeds MAX_FRAME_LEN",
        payload.len()
    );
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(payload);
    crate::metrics::metrics().frame_encodes.inc();
}

/// Appends one frame per payload to `out`, producing a batch that
/// [`split_frames`](crate::split_frames) (or repeated [`decode`]) takes
/// apart again. Coalescing several small messages to one destination into a
/// single batch frame is what the DACE transmit path uses to amortize
/// per-message delivery overhead.
///
/// # Panics
///
/// Panics if any payload exceeds [`MAX_FRAME_LEN`].
pub fn encode_batch<'a, I>(payloads: I, out: &mut Vec<u8>)
where
    I: IntoIterator<Item = &'a [u8]>,
{
    for payload in payloads {
        encode(payload, out);
    }
}

/// Attempts to split one frame off the front of `input`.
///
/// Returns `Ok(None)` when the buffer does not yet hold a complete frame
/// (the caller should read more bytes), or `Ok(Some((payload, consumed)))`
/// when a frame is available.
///
/// # Errors
///
/// Returns [`CodecError::LengthOverflow`] if the length prefix exceeds
/// [`MAX_FRAME_LEN`].
pub fn decode(input: &[u8]) -> Result<Option<(&[u8], usize)>, CodecError> {
    if input.len() < 4 {
        return Ok(None);
    }
    let len = u32::from_le_bytes(input[..4].try_into().expect("4 bytes")) as usize;
    if len > MAX_FRAME_LEN {
        return Err(CodecError::LengthOverflow {
            claimed: len as u64,
            remaining: MAX_FRAME_LEN,
        });
    }
    if input.len() < 4 + len {
        return Ok(None);
    }
    crate::metrics::metrics().frame_decodes.inc();
    Ok(Some((&input[4..4 + len], 4 + len)))
}

/// Incremental frame reassembler for byte-stream inputs.
///
/// Feed arbitrary chunks with [`FrameBuffer::extend`] and drain complete
/// frames with [`FrameBuffer::next_frame`].
#[derive(Debug, Default)]
pub struct FrameBuffer {
    buf: Vec<u8>,
    cursor: usize,
}

impl FrameBuffer {
    /// Creates an empty reassembly buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends raw stream bytes to the buffer.
    pub fn extend(&mut self, chunk: &[u8]) {
        self.buf.extend_from_slice(chunk);
    }

    /// Removes and returns the next complete frame payload, if any.
    ///
    /// # Errors
    ///
    /// Propagates [`CodecError::LengthOverflow`] for corrupt prefixes.
    pub fn next_frame(&mut self) -> Result<Option<Vec<u8>>, CodecError> {
        let result = match decode(&self.buf[self.cursor..])? {
            None => None,
            Some((payload, consumed)) => {
                let owned = payload.to_vec();
                self.cursor += consumed;
                Some(owned)
            }
        };
        // Compact once the consumed prefix dominates the buffer.
        if self.cursor > 4096 && self.cursor * 2 > self.buf.len() {
            self.buf.drain(..self.cursor);
            self.cursor = 0;
        }
        Ok(result)
    }

    /// Number of buffered bytes not yet returned as frames.
    pub fn pending_len(&self) -> usize {
        self.buf.len() - self.cursor
    }
}

/// CRC32 (IEEE 802.3, reflected polynomial `0xEDB88320`) — the classic
/// table-driven byte-at-a-time implementation, built once on demand.
pub fn crc32(data: &[u8]) -> u32 {
    use std::sync::OnceLock;
    static TABLE: OnceLock<[u32; 256]> = OnceLock::new();
    let table = TABLE.get_or_init(|| {
        let mut table = [0u32; 256];
        for (i, entry) in table.iter_mut().enumerate() {
            let mut crc = i as u32;
            for _ in 0..8 {
                crc = if crc & 1 != 0 { (crc >> 1) ^ 0xEDB8_8320 } else { crc >> 1 };
            }
            *entry = crc;
        }
        table
    });
    let mut crc = !0u32;
    for &byte in data {
        crc = table[((crc ^ byte as u32) & 0xFF) as usize] ^ (crc >> 8);
    }
    !crc
}

/// Byte length of the checksummed frame header (`len` + `crc`).
pub const CRC_HEADER_LEN: usize = 8;

/// Appends a checksummed frame (`[len u32le][crc32 u32le][payload]`) to
/// `out`. The counterpart of [`FrameReassembler`]; the wire format for the
/// socket transport.
///
/// # Panics
///
/// Panics if `payload` exceeds [`MAX_FRAME_LEN`].
pub fn encode_crc(payload: &[u8], out: &mut Vec<u8>) {
    assert!(
        payload.len() <= MAX_FRAME_LEN,
        "frame payload of {} bytes exceeds MAX_FRAME_LEN",
        payload.len()
    );
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(&crc32(payload).to_le_bytes());
    out.extend_from_slice(payload);
    crate::metrics::metrics().frame_encodes.inc();
}

/// Incremental decoder for the checksummed frame format, built for socket
/// readers: feed whatever chunk `read()` returned — a split may land
/// mid-length-prefix, mid-CRC, or mid-payload — and drain complete,
/// verified frames.
///
/// Errors are sticky: a length overflow or CRC mismatch means the stream
/// has lost sync and no later byte can be trusted, so every subsequent
/// [`next_frame`](FrameReassembler::next_frame) call repeats the error and
/// the connection must be dropped.
#[derive(Debug, Default)]
pub struct FrameReassembler {
    buf: Vec<u8>,
    cursor: usize,
    poisoned: Option<CodecError>,
}

impl FrameReassembler {
    /// Creates an empty reassembler.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends raw stream bytes (any split, including mid-header).
    pub fn extend(&mut self, chunk: &[u8]) {
        self.buf.extend_from_slice(chunk);
    }

    /// Removes and returns the next complete, CRC-verified frame payload,
    /// or `None` when the buffered bytes end mid-frame (read more).
    ///
    /// # Errors
    ///
    /// [`CodecError::LengthOverflow`] for a corrupt length prefix,
    /// [`CodecError::CrcMismatch`] when the payload fails its checksum.
    /// Both poison the reassembler (see type docs).
    pub fn next_frame(&mut self) -> Result<Option<Vec<u8>>, CodecError> {
        if let Some(err) = &self.poisoned {
            return Err(err.clone());
        }
        let pending = &self.buf[self.cursor..];
        if pending.len() < CRC_HEADER_LEN {
            return Ok(None);
        }
        let len = u32::from_le_bytes(pending[..4].try_into().expect("4 bytes")) as usize;
        if len > MAX_FRAME_LEN {
            let err = CodecError::LengthOverflow {
                claimed: len as u64,
                remaining: MAX_FRAME_LEN,
            };
            self.poisoned = Some(err.clone());
            return Err(err);
        }
        let expected = u32::from_le_bytes(pending[4..8].try_into().expect("4 bytes"));
        if pending.len() < CRC_HEADER_LEN + len {
            return Ok(None);
        }
        let payload = &pending[CRC_HEADER_LEN..CRC_HEADER_LEN + len];
        let actual = crc32(payload);
        if actual != expected {
            let err = CodecError::CrcMismatch { expected, actual };
            self.poisoned = Some(err.clone());
            return Err(err);
        }
        let owned = payload.to_vec();
        self.cursor += CRC_HEADER_LEN + len;
        crate::metrics::metrics().frame_decodes.inc();
        if self.cursor > 4096 && self.cursor * 2 > self.buf.len() {
            self.buf.drain(..self.cursor);
            self.cursor = 0;
        }
        Ok(Some(owned))
    }

    /// Number of buffered bytes not yet returned as frames. Non-zero after
    /// the peer closed the stream means it hung up mid-frame (a truncated
    /// tail).
    pub fn pending_len(&self) -> usize {
        self.buf.len() - self.cursor
    }
}

/// How a [`scan_crc_frames`] pass over a stored log buffer ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScanEnd {
    /// The buffer ends exactly on a frame boundary.
    Clean,
    /// The buffer ends mid-frame — a torn tail write. `valid_len` is the
    /// byte offset of the last complete, verified frame; everything past it
    /// is a partial record to be discarded.
    Truncated {
        /// Offset up to which the buffer holds complete, verified frames.
        valid_len: usize,
    },
    /// A structurally complete frame failed verification (impossible length
    /// prefix or CRC mismatch) at `valid_len` — bit rot rather than a torn
    /// write, so later bytes cannot be trusted either.
    Corrupt {
        /// Offset up to which the buffer holds complete, verified frames.
        valid_len: usize,
    },
}

impl ScanEnd {
    /// The verified prefix length: the whole buffer for [`ScanEnd::Clean`],
    /// the reported offset otherwise.
    pub fn valid_len(self, total: usize) -> usize {
        match self {
            ScanEnd::Clean => total,
            ScanEnd::Truncated { valid_len } | ScanEnd::Corrupt { valid_len } => valid_len,
        }
    }
}

/// Scans a buffer of checksummed frames (the [`encode_crc`] format) and
/// returns every complete, CRC-verified payload plus how the buffer ended.
///
/// Unlike [`FrameReassembler`] — which poisons itself on the first bad byte
/// because a live socket stream past corruption is unusable — this scanner
/// is the *recovery* path for write-ahead logs: a crash legitimately leaves
/// a torn partial record at the tail, and recovery must keep every record
/// before it. It never panics on any input.
pub fn scan_crc_frames(bytes: &[u8]) -> (Vec<Vec<u8>>, ScanEnd) {
    let mut frames = Vec::new();
    let mut offset = 0;
    loop {
        let pending = &bytes[offset..];
        if pending.is_empty() {
            return (frames, ScanEnd::Clean);
        }
        if pending.len() < CRC_HEADER_LEN {
            return (frames, ScanEnd::Truncated { valid_len: offset });
        }
        let len = u32::from_le_bytes(pending[..4].try_into().expect("4 bytes")) as usize;
        if len > MAX_FRAME_LEN {
            return (frames, ScanEnd::Corrupt { valid_len: offset });
        }
        if pending.len() < CRC_HEADER_LEN + len {
            return (frames, ScanEnd::Truncated { valid_len: offset });
        }
        let expected = u32::from_le_bytes(pending[4..8].try_into().expect("4 bytes"));
        let payload = &pending[CRC_HEADER_LEN..CRC_HEADER_LEN + len];
        if crc32(payload) != expected {
            return (frames, ScanEnd::Corrupt { valid_len: offset });
        }
        frames.push(payload.to_vec());
        offset += CRC_HEADER_LEN + len;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_single_frame() {
        let mut out = Vec::new();
        encode(b"hello", &mut out);
        let (payload, consumed) = decode(&out).unwrap().unwrap();
        assert_eq!(payload, b"hello");
        assert_eq!(consumed, out.len());
    }

    #[test]
    fn empty_payload_is_a_valid_frame() {
        let mut out = Vec::new();
        encode(b"", &mut out);
        let (payload, consumed) = decode(&out).unwrap().unwrap();
        assert!(payload.is_empty());
        assert_eq!(consumed, 4);
    }

    #[test]
    fn incomplete_frames_return_none() {
        let mut out = Vec::new();
        encode(b"hello", &mut out);
        assert!(decode(&out[..3]).unwrap().is_none());
        assert!(decode(&out[..6]).unwrap().is_none());
    }

    #[test]
    fn oversized_length_prefix_is_rejected() {
        let bad = (MAX_FRAME_LEN as u32 + 1).to_le_bytes();
        assert!(matches!(
            decode(&bad),
            Err(CodecError::LengthOverflow { .. })
        ));
    }

    #[test]
    fn frame_buffer_reassembles_across_chunks() {
        let mut stream = Vec::new();
        encode(b"one", &mut stream);
        encode(b"two", &mut stream);
        encode(b"three", &mut stream);

        let mut fb = FrameBuffer::new();
        let mut frames = Vec::new();
        // Feed the stream two bytes at a time.
        for chunk in stream.chunks(2) {
            fb.extend(chunk);
            while let Some(frame) = fb.next_frame().unwrap() {
                frames.push(frame);
            }
        }
        assert_eq!(frames, vec![b"one".to_vec(), b"two".to_vec(), b"three".to_vec()]);
        assert_eq!(fb.pending_len(), 0);
    }

    #[test]
    fn crc32_known_vector() {
        // The canonical IEEE check value.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn crc_frame_roundtrips_byte_at_a_time() {
        let mut stream = Vec::new();
        encode_crc(b"", &mut stream);
        encode_crc(b"hello", &mut stream);
        encode_crc(&[0xAAu8; 300], &mut stream);

        let mut fr = FrameReassembler::new();
        let mut frames = Vec::new();
        for byte in &stream {
            fr.extend(std::slice::from_ref(byte));
            while let Some(frame) = fr.next_frame().unwrap() {
                frames.push(frame);
            }
        }
        assert_eq!(frames, vec![b"".to_vec(), b"hello".to_vec(), vec![0xAAu8; 300]]);
        assert_eq!(fr.pending_len(), 0);
    }

    #[test]
    fn crc_mismatch_is_detected_and_sticky() {
        let mut stream = Vec::new();
        encode_crc(b"payload", &mut stream);
        let last = stream.len() - 1;
        stream[last] ^= 0x01; // flip one payload bit
        let mut fr = FrameReassembler::new();
        fr.extend(&stream);
        assert!(matches!(fr.next_frame(), Err(CodecError::CrcMismatch { .. })));
        // Poisoned: the error repeats even after more (valid) bytes arrive.
        let mut good = Vec::new();
        encode_crc(b"next", &mut good);
        fr.extend(&good);
        assert!(matches!(fr.next_frame(), Err(CodecError::CrcMismatch { .. })));
    }

    #[test]
    fn crc_corrupt_length_prefix_is_rejected() {
        let mut stream = Vec::new();
        encode_crc(b"x", &mut stream);
        stream[3] = 0xFF; // high length byte → > MAX_FRAME_LEN
        let mut fr = FrameReassembler::new();
        fr.extend(&stream);
        assert!(matches!(fr.next_frame(), Err(CodecError::LengthOverflow { .. })));
    }

    #[test]
    fn crc_truncated_tail_stays_pending() {
        let mut stream = Vec::new();
        encode_crc(b"complete", &mut stream);
        encode_crc(b"cut short", &mut stream);
        let mut fr = FrameReassembler::new();
        fr.extend(&stream[..stream.len() - 3]);
        assert_eq!(fr.next_frame().unwrap().unwrap(), b"complete");
        assert!(fr.next_frame().unwrap().is_none());
        assert!(fr.pending_len() > 0); // truncated tail is visible, not silently lost
    }

    #[test]
    fn scan_recovers_all_frames_from_a_clean_log() {
        let mut log = Vec::new();
        encode_crc(b"", &mut log);
        encode_crc(b"alpha", &mut log);
        encode_crc(&[0x5Au8; 300], &mut log);
        let (frames, end) = scan_crc_frames(&log);
        assert_eq!(frames, vec![b"".to_vec(), b"alpha".to_vec(), vec![0x5Au8; 300]]);
        assert_eq!(end, ScanEnd::Clean);
        assert_eq!(end.valid_len(log.len()), log.len());
    }

    #[test]
    fn scan_truncation_at_every_byte_offset_recovers_the_valid_prefix() {
        // The tentpole torn-write property: cutting the log at *any* byte
        // must recover exactly the records whose frames fit before the cut,
        // flag the tear, and never panic or mis-frame.
        let payloads: Vec<Vec<u8>> = vec![
            b"".to_vec(),
            b"x".to_vec(),
            vec![0xABu8; 37],
            (0u8..=255).collect(),
        ];
        let mut log = Vec::new();
        let mut boundaries = vec![0usize];
        for p in &payloads {
            encode_crc(p, &mut log);
            boundaries.push(log.len());
        }
        for cut in 0..=log.len() {
            let (frames, end) = scan_crc_frames(&log[..cut]);
            let complete = boundaries.iter().filter(|&&b| b > 0 && b <= cut).count();
            assert_eq!(frames, payloads[..complete].to_vec(), "cut at {cut}");
            let expected_end = if boundaries.contains(&cut) {
                ScanEnd::Clean
            } else {
                ScanEnd::Truncated { valid_len: boundaries[complete] }
            };
            assert_eq!(end, expected_end, "cut at {cut}");
            assert_eq!(end.valid_len(cut), boundaries[complete].min(cut), "cut at {cut}");
        }
    }

    #[test]
    fn scan_flags_a_bit_flip_as_corruption_and_keeps_earlier_frames() {
        let mut log = Vec::new();
        encode_crc(b"keep me", &mut log);
        let corrupt_start = log.len();
        encode_crc(b"damaged", &mut log);
        encode_crc(b"unreachable", &mut log);
        // Flip one payload bit of the middle record.
        log[corrupt_start + CRC_HEADER_LEN] ^= 0x40;
        let (frames, end) = scan_crc_frames(&log);
        assert_eq!(frames, vec![b"keep me".to_vec()]);
        assert_eq!(end, ScanEnd::Corrupt { valid_len: corrupt_start });
    }

    #[test]
    fn scan_flags_an_impossible_length_prefix_as_corruption() {
        let mut log = Vec::new();
        encode_crc(b"ok", &mut log);
        let bad_start = log.len();
        log.extend_from_slice(&(MAX_FRAME_LEN as u32 + 1).to_le_bytes());
        log.extend_from_slice(&[0u8; 12]);
        let (frames, end) = scan_crc_frames(&log);
        assert_eq!(frames, vec![b"ok".to_vec()]);
        assert_eq!(end, ScanEnd::Corrupt { valid_len: bad_start });
    }

    mod scan_props {
        use super::super::*;
        use proptest::prelude::*;

        proptest! {
            /// Random batches roundtrip losslessly through encode + scan.
            #[test]
            fn random_batches_roundtrip(
                payloads in proptest::collection::vec(
                    proptest::collection::vec(any::<u8>(), 0..200),
                    0..20,
                )
            ) {
                let mut log = Vec::new();
                for p in &payloads {
                    encode_crc(p, &mut log);
                }
                let (frames, end) = scan_crc_frames(&log);
                prop_assert_eq!(frames, payloads);
                prop_assert_eq!(end, ScanEnd::Clean);
            }

            /// Any truncation point yields a prefix of the records and a
            /// non-Corrupt verdict — a torn write is recoverable, never
            /// reported as bit rot.
            #[test]
            fn random_truncation_recovers_a_clean_prefix(
                payloads in proptest::collection::vec(
                    proptest::collection::vec(any::<u8>(), 0..64),
                    1..10,
                ),
                cut_fraction in 0.0f64..1.0,
            ) {
                let mut log = Vec::new();
                for p in &payloads {
                    encode_crc(p, &mut log);
                }
                let cut = ((log.len() as f64) * cut_fraction) as usize;
                let (frames, end) = scan_crc_frames(&log[..cut]);
                prop_assert!(frames.len() <= payloads.len());
                prop_assert_eq!(&frames[..], &payloads[..frames.len()]);
                prop_assert!(!matches!(end, ScanEnd::Corrupt { .. }));
                // Rescanning only the verified prefix is clean and stable.
                let valid = end.valid_len(cut);
                let (again, end2) = scan_crc_frames(&log[..valid]);
                prop_assert_eq!(again, frames);
                prop_assert_eq!(end2, ScanEnd::Clean);
            }

            /// A single flipped bit anywhere in a record's frame is always
            /// rejected: scanning stops at or before the damaged record and
            /// never yields a payload that differs from what was written.
            #[test]
            fn random_bit_flip_never_yields_a_corrupted_payload(
                payloads in proptest::collection::vec(
                    proptest::collection::vec(any::<u8>(), 1..64),
                    1..6,
                ),
                flip_byte_fraction in 0.0f64..1.0,
                flip_bit in 0u8..8,
            ) {
                let mut log = Vec::new();
                for p in &payloads {
                    encode_crc(p, &mut log);
                }
                let index = (((log.len() - 1) as f64) * flip_byte_fraction) as usize;
                log[index] ^= 1 << flip_bit;
                let (frames, _end) = scan_crc_frames(&log);
                // Every recovered frame must be byte-identical to a written
                // one at its position; the flip may only cut the list short
                // (or, when it lands in a length prefix, resync is refused
                // rather than inventing frames past the damage).
                prop_assert!(frames.len() <= payloads.len());
                for (got, want) in frames.iter().zip(&payloads) {
                    if got != want {
                        // The only way a payload changes is the flip landing
                        // inside it with a colliding CRC — impossible for a
                        // single bit flip under CRC32.
                        prop_assert!(false, "corrupted payload surfaced");
                    }
                }
            }
        }
    }

    #[test]
    fn frame_buffer_compacts_consumed_prefix() {
        let mut fb = FrameBuffer::new();
        let mut stream = Vec::new();
        encode(&vec![7u8; 2048], &mut stream);
        for _ in 0..8 {
            fb.extend(&stream);
            assert!(fb.next_frame().unwrap().is_some());
        }
        assert_eq!(fb.pending_len(), 0);
    }
}
