//! Length-delimited framing for stream transports.
//!
//! The simulated network delivers whole datagrams, but the in-process
//! threaded transport and the RMI substrate move byte streams around; frames
//! give them message boundaries. A frame is a `u32` little-endian length
//! followed by that many payload bytes.

use crate::CodecError;

/// Hard upper bound on a single frame's payload, guarding against corrupt
/// length prefixes (16 MiB).
pub const MAX_FRAME_LEN: usize = 16 * 1024 * 1024;

/// Appends a frame containing `payload` to `out`.
///
/// # Panics
///
/// Panics if `payload` exceeds [`MAX_FRAME_LEN`]; obvents are small by
/// design (paper §2.1.1: "small unbound objects").
pub fn encode(payload: &[u8], out: &mut Vec<u8>) {
    assert!(
        payload.len() <= MAX_FRAME_LEN,
        "frame payload of {} bytes exceeds MAX_FRAME_LEN",
        payload.len()
    );
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(payload);
    crate::metrics::metrics().frame_encodes.inc();
}

/// Appends one frame per payload to `out`, producing a batch that
/// [`split_frames`](crate::split_frames) (or repeated [`decode`]) takes
/// apart again. Coalescing several small messages to one destination into a
/// single batch frame is what the DACE transmit path uses to amortize
/// per-message delivery overhead.
///
/// # Panics
///
/// Panics if any payload exceeds [`MAX_FRAME_LEN`].
pub fn encode_batch<'a, I>(payloads: I, out: &mut Vec<u8>)
where
    I: IntoIterator<Item = &'a [u8]>,
{
    for payload in payloads {
        encode(payload, out);
    }
}

/// Attempts to split one frame off the front of `input`.
///
/// Returns `Ok(None)` when the buffer does not yet hold a complete frame
/// (the caller should read more bytes), or `Ok(Some((payload, consumed)))`
/// when a frame is available.
///
/// # Errors
///
/// Returns [`CodecError::LengthOverflow`] if the length prefix exceeds
/// [`MAX_FRAME_LEN`].
pub fn decode(input: &[u8]) -> Result<Option<(&[u8], usize)>, CodecError> {
    if input.len() < 4 {
        return Ok(None);
    }
    let len = u32::from_le_bytes(input[..4].try_into().expect("4 bytes")) as usize;
    if len > MAX_FRAME_LEN {
        return Err(CodecError::LengthOverflow {
            claimed: len as u64,
            remaining: MAX_FRAME_LEN,
        });
    }
    if input.len() < 4 + len {
        return Ok(None);
    }
    crate::metrics::metrics().frame_decodes.inc();
    Ok(Some((&input[4..4 + len], 4 + len)))
}

/// Incremental frame reassembler for byte-stream inputs.
///
/// Feed arbitrary chunks with [`FrameBuffer::extend`] and drain complete
/// frames with [`FrameBuffer::next_frame`].
#[derive(Debug, Default)]
pub struct FrameBuffer {
    buf: Vec<u8>,
    cursor: usize,
}

impl FrameBuffer {
    /// Creates an empty reassembly buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends raw stream bytes to the buffer.
    pub fn extend(&mut self, chunk: &[u8]) {
        self.buf.extend_from_slice(chunk);
    }

    /// Removes and returns the next complete frame payload, if any.
    ///
    /// # Errors
    ///
    /// Propagates [`CodecError::LengthOverflow`] for corrupt prefixes.
    pub fn next_frame(&mut self) -> Result<Option<Vec<u8>>, CodecError> {
        let result = match decode(&self.buf[self.cursor..])? {
            None => None,
            Some((payload, consumed)) => {
                let owned = payload.to_vec();
                self.cursor += consumed;
                Some(owned)
            }
        };
        // Compact once the consumed prefix dominates the buffer.
        if self.cursor > 4096 && self.cursor * 2 > self.buf.len() {
            self.buf.drain(..self.cursor);
            self.cursor = 0;
        }
        Ok(result)
    }

    /// Number of buffered bytes not yet returned as frames.
    pub fn pending_len(&self) -> usize {
        self.buf.len() - self.cursor
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_single_frame() {
        let mut out = Vec::new();
        encode(b"hello", &mut out);
        let (payload, consumed) = decode(&out).unwrap().unwrap();
        assert_eq!(payload, b"hello");
        assert_eq!(consumed, out.len());
    }

    #[test]
    fn empty_payload_is_a_valid_frame() {
        let mut out = Vec::new();
        encode(b"", &mut out);
        let (payload, consumed) = decode(&out).unwrap().unwrap();
        assert!(payload.is_empty());
        assert_eq!(consumed, 4);
    }

    #[test]
    fn incomplete_frames_return_none() {
        let mut out = Vec::new();
        encode(b"hello", &mut out);
        assert!(decode(&out[..3]).unwrap().is_none());
        assert!(decode(&out[..6]).unwrap().is_none());
    }

    #[test]
    fn oversized_length_prefix_is_rejected() {
        let bad = (MAX_FRAME_LEN as u32 + 1).to_le_bytes();
        assert!(matches!(
            decode(&bad),
            Err(CodecError::LengthOverflow { .. })
        ));
    }

    #[test]
    fn frame_buffer_reassembles_across_chunks() {
        let mut stream = Vec::new();
        encode(b"one", &mut stream);
        encode(b"two", &mut stream);
        encode(b"three", &mut stream);

        let mut fb = FrameBuffer::new();
        let mut frames = Vec::new();
        // Feed the stream two bytes at a time.
        for chunk in stream.chunks(2) {
            fb.extend(chunk);
            while let Some(frame) = fb.next_frame().unwrap() {
                frames.push(frame);
            }
        }
        assert_eq!(frames, vec![b"one".to_vec(), b"two".to_vec(), b"three".to_vec()]);
        assert_eq!(fb.pending_len(), 0);
    }

    #[test]
    fn frame_buffer_compacts_consumed_prefix() {
        let mut fb = FrameBuffer::new();
        let mut stream = Vec::new();
        encode(&vec![7u8; 2048], &mut stream);
        for _ in 0..8 {
            fb.extend(&stream);
            assert!(fb.next_frame().unwrap().is_some());
        }
        assert_eq!(fb.pending_len(), 0);
    }
}
