use std::fmt;

/// Error produced while encoding or decoding a value.
///
/// A single error type covers both directions: the serializer can only fail
/// on custom messages and writer errors, while the deserializer adds the
/// malformed-input variants.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum CodecError {
    /// The input ended before the value was fully decoded.
    UnexpectedEof {
        /// Byte offset at which more input was required.
        offset: usize,
    },
    /// A varint ran past its maximum encoded length or overflowed.
    InvalidVarint {
        /// Byte offset of the first varint byte.
        offset: usize,
    },
    /// A boolean byte was neither `0` nor `1`.
    InvalidBool {
        /// Offending byte value.
        value: u8,
    },
    /// A `char` was decoded from an invalid Unicode scalar value.
    InvalidChar {
        /// Offending code point.
        value: u32,
    },
    /// A string's bytes were not valid UTF-8.
    InvalidUtf8,
    /// An `Option` tag byte was neither `0` nor `1`.
    InvalidOptionTag {
        /// Offending byte value.
        value: u8,
    },
    /// A length prefix exceeded the remaining input, indicating corruption.
    LengthOverflow {
        /// Claimed length.
        claimed: u64,
        /// Bytes actually remaining.
        remaining: usize,
    },
    /// An integer did not fit the target type.
    IntegerOutOfRange,
    /// The format does not support the requested serde feature.
    Unsupported(&'static str),
    /// Trailing bytes remained after a whole-buffer decode.
    TrailingBytes {
        /// Number of bytes left over.
        remaining: usize,
    },
    /// A checksummed frame's CRC32 did not match its payload.
    CrcMismatch {
        /// Checksum claimed by the frame header.
        expected: u32,
        /// Checksum computed over the received payload.
        actual: u32,
    },
    /// Custom message raised by a `Serialize`/`Deserialize` implementation.
    Message(String),
    /// An underlying writer failed.
    Io(String),
}

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodecError::UnexpectedEof { offset } => {
                write!(f, "unexpected end of input at byte {offset}")
            }
            CodecError::InvalidVarint { offset } => {
                write!(f, "invalid varint encoding at byte {offset}")
            }
            CodecError::InvalidBool { value } => write!(f, "invalid bool byte {value:#04x}"),
            CodecError::InvalidChar { value } => {
                write!(f, "invalid unicode scalar value {value:#x}")
            }
            CodecError::InvalidUtf8 => write!(f, "string bytes were not valid utf-8"),
            CodecError::InvalidOptionTag { value } => {
                write!(f, "invalid option tag byte {value:#04x}")
            }
            CodecError::LengthOverflow { claimed, remaining } => write!(
                f,
                "length prefix {claimed} exceeds {remaining} remaining bytes"
            ),
            CodecError::IntegerOutOfRange => write!(f, "integer out of range for target type"),
            CodecError::Unsupported(what) => write!(f, "unsupported serde feature: {what}"),
            CodecError::TrailingBytes { remaining } => {
                write!(f, "{remaining} trailing bytes after value")
            }
            CodecError::CrcMismatch { expected, actual } => write!(
                f,
                "frame crc mismatch: header claims {expected:#010x}, payload hashes to {actual:#010x}"
            ),
            CodecError::Message(msg) => f.write_str(msg),
            CodecError::Io(msg) => write!(f, "io error: {msg}"),
        }
    }
}

impl std::error::Error for CodecError {}

impl serde::ser::Error for CodecError {
    fn custom<T: fmt::Display>(msg: T) -> Self {
        CodecError::Message(msg.to_string())
    }
}

impl serde::de::Error for CodecError {
    fn custom<T: fmt::Display>(msg: T) -> Self {
        CodecError::Message(msg.to_string())
    }
}

impl From<std::io::Error> for CodecError {
    fn from(err: std::io::Error) -> Self {
        CodecError::Io(err.to_string())
    }
}
