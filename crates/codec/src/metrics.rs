//! Codec instrumentation: counters in the process-global telemetry
//! registry (`psc_telemetry::global()`), which starts **disabled** — until a
//! host opts in with `psc_telemetry::set_global_enabled(true)`, each site
//! costs one relaxed load and a branch.
//!
//! The codec has no per-component registry to record into (serialization is
//! a free function, not a node-owned service), which is exactly what the
//! global registry exists for.

use std::sync::OnceLock;

use psc_telemetry::Counter;

pub(crate) struct CodecMetrics {
    /// `codec.encodes` — successful `to_bytes` calls.
    pub encodes: Counter,
    /// `codec.encode_bytes` — total bytes produced by `to_bytes`.
    pub encode_bytes: Counter,
    /// `codec.decodes` — successful `from_bytes_prefix` calls (whole-buffer
    /// decodes route through the prefix path).
    pub decodes: Counter,
    /// `codec.decode_bytes` — total bytes consumed by decodes.
    pub decode_bytes: Counter,
    /// `codec.frame_encodes` — frames written by `frame::encode`.
    pub frame_encodes: Counter,
    /// `codec.frame_decodes` — complete frames split off by `frame::decode`.
    pub frame_decodes: Counter,
    /// `codec.pool.hits` — encoder buffers served from the thread-local pool.
    pub pool_hits: Counter,
    /// `codec.pool.misses` — encoder buffers that had to be freshly allocated.
    pub pool_misses: Counter,
    /// `codec.pool.recycled` — buffers returned to the pool on drop.
    pub pool_recycled: Counter,
}

/// Handles are created once and cached; the hot path never touches the
/// registry's name map.
pub(crate) fn metrics() -> &'static CodecMetrics {
    static METRICS: OnceLock<CodecMetrics> = OnceLock::new();
    METRICS.get_or_init(|| {
        let global = psc_telemetry::global();
        CodecMetrics {
            encodes: global.counter("codec.encodes"),
            encode_bytes: global.counter("codec.encode_bytes"),
            decodes: global.counter("codec.decodes"),
            decode_bytes: global.counter("codec.decode_bytes"),
            frame_encodes: global.counter("codec.frame_encodes"),
            frame_decodes: global.counter("codec.frame_decodes"),
            pool_hits: global.counter("codec.pool.hits"),
            pool_misses: global.counter("codec.pool.misses"),
            pool_recycled: global.counter("codec.pool.recycled"),
        }
    })
}
