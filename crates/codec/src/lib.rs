#![warn(missing_docs)]

//! # psc-codec — the default serialization mechanism (paper LM1)
//!
//! The paper's first language mechanism (LM1) is a *default serialization
//! mechanism*: "a language-provided serialization/deserialization mechanism
//! eases the transformation of event objects into conveyable low-level
//! messages". Java provides `java.io.Serializable`; this crate provides the
//! Rust-side equivalent for the reproduction: a compact, self-contained binary
//! format implemented as a [serde](https://serde.rs) data format.
//!
//! ## Format
//!
//! - integers: unsigned LEB128 varints; signed integers are zigzag-encoded
//! - floats: IEEE-754 little-endian
//! - `bool`: one byte (`0`/`1`)
//! - strings / byte strings: varint length followed by the raw bytes
//! - options: one tag byte followed by the value if present
//! - sequences and maps: varint length followed by the elements
//! - structs and tuples: the fields in declaration order, **with no field
//!   names, tags, or lengths**
//! - enums: varint variant index followed by the variant content
//!
//! The struct rule is the load-bearing one for the obvent model: an obvent
//! subclass embeds its superclass as its first field (see `psc-obvent`), so
//! the wire image of a subtype *begins with* the complete wire image of its
//! supertype. A subscriber to type `K` can therefore decode any published
//! subtype as a fresh `K` clone by reading a prefix of the payload — this is
//! exactly the paper's per-subscriber clone semantics (§2.1.2) realised
//! without reflection.
//!
//! ## Entry points
//!
//! - [`to_bytes`] / [`from_bytes`] — whole-buffer encode/decode
//! - [`to_wire_bytes`] — encode into a pooled, `Arc`-shared [`WireBytes`]
//!   buffer; the serialize-once entry point for fan-out paths
//! - [`from_bytes_prefix`] — decode a value from a prefix of the buffer,
//!   returning the number of bytes consumed (used for supertype decoding)
//! - [`frame`] — length-delimited framing for stream transports
//!
//! ```
//! use serde::{Serialize, Deserialize};
//!
//! #[derive(Serialize, Deserialize, PartialEq, Debug)]
//! struct Quote { company: String, price: f64, amount: u32 }
//!
//! # fn main() -> Result<(), psc_codec::CodecError> {
//! let q = Quote { company: "Telco".into(), price: 80.0, amount: 10 };
//! let bytes = psc_codec::to_bytes(&q)?;
//! let back: Quote = psc_codec::from_bytes(&bytes)?;
//! assert_eq!(q, back);
//! # Ok(())
//! # }
//! ```

mod bytes;
mod de;
mod error;
pub mod frame;
mod metrics;
mod ser;
pub mod varint;

pub use bytes::{batch_frames, split_frames, to_wire_bytes, WireBytes};
pub use de::{from_bytes, from_bytes_prefix, Deserializer};
pub use error::CodecError;
pub use ser::{to_bytes, to_writer, Serializer};

#[cfg(test)]
mod tests;
