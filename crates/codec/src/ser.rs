//! The serializer half of the format; see the crate docs for the wire layout.

use serde::ser::{self, Serialize};

use crate::{varint, CodecError};

/// Serializes `value` into a freshly allocated byte vector.
///
/// # Errors
///
/// Returns an error only if the value's `Serialize` implementation raises a
/// custom error or uses an unsupported feature (there are none for the
/// standard derive).
pub fn to_bytes<T: Serialize + ?Sized>(value: &T) -> Result<Vec<u8>, CodecError> {
    let mut ser = Serializer::new();
    value.serialize(&mut ser)?;
    let bytes = ser.into_bytes();
    let m = crate::metrics::metrics();
    m.encodes.inc();
    m.encode_bytes.add(bytes.len() as u64);
    Ok(bytes)
}

/// Serializes `value` and writes the bytes to `writer`.
///
/// A `&mut W` can be passed wherever `W: Write` is expected.
///
/// # Errors
///
/// Propagates serialization errors and writer I/O errors.
pub fn to_writer<T: Serialize + ?Sized, W: std::io::Write>(
    value: &T,
    mut writer: W,
) -> Result<(), CodecError> {
    let bytes = to_bytes(value)?;
    writer.write_all(&bytes)?;
    Ok(())
}

/// Streaming serializer producing the psc-codec wire format.
///
/// Most callers should use [`to_bytes`]; the type is public so that higher
/// layers can reuse one output buffer across many messages.
#[derive(Debug, Default)]
pub struct Serializer {
    out: Vec<u8>,
}

impl Serializer {
    /// Creates a serializer with an empty output buffer.
    pub fn new() -> Self {
        Serializer { out: Vec::new() }
    }

    /// Creates a serializer that appends to `buf`, reusing its capacity.
    pub fn with_buffer(buf: Vec<u8>) -> Self {
        Serializer { out: buf }
    }

    /// Consumes the serializer, returning the encoded bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.out
    }

    fn put_u64(&mut self, v: u64) {
        varint::encode_u64(v, &mut self.out);
    }

    fn put_i64(&mut self, v: i64) {
        varint::encode_i64(v, &mut self.out);
    }
}

impl<'a> ser::Serializer for &'a mut Serializer {
    type Ok = ();
    type Error = CodecError;
    type SerializeSeq = Compound<'a>;
    type SerializeTuple = Compound<'a>;
    type SerializeTupleStruct = Compound<'a>;
    type SerializeTupleVariant = Compound<'a>;
    type SerializeMap = Compound<'a>;
    type SerializeStruct = Compound<'a>;
    type SerializeStructVariant = Compound<'a>;

    fn serialize_bool(self, v: bool) -> Result<(), CodecError> {
        self.out.push(v as u8);
        Ok(())
    }

    fn serialize_i8(self, v: i8) -> Result<(), CodecError> {
        self.put_i64(v as i64);
        Ok(())
    }

    fn serialize_i16(self, v: i16) -> Result<(), CodecError> {
        self.put_i64(v as i64);
        Ok(())
    }

    fn serialize_i32(self, v: i32) -> Result<(), CodecError> {
        self.put_i64(v as i64);
        Ok(())
    }

    fn serialize_i64(self, v: i64) -> Result<(), CodecError> {
        self.put_i64(v);
        Ok(())
    }

    fn serialize_u8(self, v: u8) -> Result<(), CodecError> {
        self.put_u64(v as u64);
        Ok(())
    }

    fn serialize_u16(self, v: u16) -> Result<(), CodecError> {
        self.put_u64(v as u64);
        Ok(())
    }

    fn serialize_u32(self, v: u32) -> Result<(), CodecError> {
        self.put_u64(v as u64);
        Ok(())
    }

    fn serialize_u64(self, v: u64) -> Result<(), CodecError> {
        self.put_u64(v);
        Ok(())
    }

    fn serialize_f32(self, v: f32) -> Result<(), CodecError> {
        self.out.extend_from_slice(&v.to_le_bytes());
        Ok(())
    }

    fn serialize_f64(self, v: f64) -> Result<(), CodecError> {
        self.out.extend_from_slice(&v.to_le_bytes());
        Ok(())
    }

    fn serialize_char(self, v: char) -> Result<(), CodecError> {
        self.put_u64(v as u64);
        Ok(())
    }

    fn serialize_str(self, v: &str) -> Result<(), CodecError> {
        self.put_u64(v.len() as u64);
        self.out.extend_from_slice(v.as_bytes());
        Ok(())
    }

    fn serialize_bytes(self, v: &[u8]) -> Result<(), CodecError> {
        self.put_u64(v.len() as u64);
        self.out.extend_from_slice(v);
        Ok(())
    }

    fn serialize_none(self) -> Result<(), CodecError> {
        self.out.push(0);
        Ok(())
    }

    fn serialize_some<T: Serialize + ?Sized>(self, value: &T) -> Result<(), CodecError> {
        self.out.push(1);
        value.serialize(self)
    }

    fn serialize_unit(self) -> Result<(), CodecError> {
        Ok(())
    }

    fn serialize_unit_struct(self, _name: &'static str) -> Result<(), CodecError> {
        Ok(())
    }

    fn serialize_unit_variant(
        self,
        _name: &'static str,
        variant_index: u32,
        _variant: &'static str,
    ) -> Result<(), CodecError> {
        self.put_u64(variant_index as u64);
        Ok(())
    }

    fn serialize_newtype_struct<T: Serialize + ?Sized>(
        self,
        _name: &'static str,
        value: &T,
    ) -> Result<(), CodecError> {
        value.serialize(self)
    }

    fn serialize_newtype_variant<T: Serialize + ?Sized>(
        self,
        _name: &'static str,
        variant_index: u32,
        _variant: &'static str,
        value: &T,
    ) -> Result<(), CodecError> {
        self.put_u64(variant_index as u64);
        value.serialize(self)
    }

    fn serialize_seq(self, len: Option<usize>) -> Result<Compound<'a>, CodecError> {
        let len = len.ok_or(CodecError::Unsupported("sequences of unknown length"))?;
        self.put_u64(len as u64);
        Ok(Compound { ser: self })
    }

    fn serialize_tuple(self, _len: usize) -> Result<Compound<'a>, CodecError> {
        Ok(Compound { ser: self })
    }

    fn serialize_tuple_struct(
        self,
        _name: &'static str,
        _len: usize,
    ) -> Result<Compound<'a>, CodecError> {
        Ok(Compound { ser: self })
    }

    fn serialize_tuple_variant(
        self,
        _name: &'static str,
        variant_index: u32,
        _variant: &'static str,
        _len: usize,
    ) -> Result<Compound<'a>, CodecError> {
        self.put_u64(variant_index as u64);
        Ok(Compound { ser: self })
    }

    fn serialize_map(self, len: Option<usize>) -> Result<Compound<'a>, CodecError> {
        let len = len.ok_or(CodecError::Unsupported("maps of unknown length"))?;
        self.put_u64(len as u64);
        Ok(Compound { ser: self })
    }

    fn serialize_struct(
        self,
        _name: &'static str,
        _len: usize,
    ) -> Result<Compound<'a>, CodecError> {
        Ok(Compound { ser: self })
    }

    fn serialize_struct_variant(
        self,
        _name: &'static str,
        variant_index: u32,
        _variant: &'static str,
        _len: usize,
    ) -> Result<Compound<'a>, CodecError> {
        self.put_u64(variant_index as u64);
        Ok(Compound { ser: self })
    }

    fn is_human_readable(&self) -> bool {
        false
    }
}

/// In-progress compound value (seq, map, tuple, struct, or variant).
#[derive(Debug)]
pub struct Compound<'a> {
    ser: &'a mut Serializer,
}

impl ser::SerializeSeq for Compound<'_> {
    type Ok = ();
    type Error = CodecError;

    fn serialize_element<T: Serialize + ?Sized>(&mut self, value: &T) -> Result<(), CodecError> {
        value.serialize(&mut *self.ser)
    }

    fn end(self) -> Result<(), CodecError> {
        Ok(())
    }
}

impl ser::SerializeTuple for Compound<'_> {
    type Ok = ();
    type Error = CodecError;

    fn serialize_element<T: Serialize + ?Sized>(&mut self, value: &T) -> Result<(), CodecError> {
        value.serialize(&mut *self.ser)
    }

    fn end(self) -> Result<(), CodecError> {
        Ok(())
    }
}

impl ser::SerializeTupleStruct for Compound<'_> {
    type Ok = ();
    type Error = CodecError;

    fn serialize_field<T: Serialize + ?Sized>(&mut self, value: &T) -> Result<(), CodecError> {
        value.serialize(&mut *self.ser)
    }

    fn end(self) -> Result<(), CodecError> {
        Ok(())
    }
}

impl ser::SerializeTupleVariant for Compound<'_> {
    type Ok = ();
    type Error = CodecError;

    fn serialize_field<T: Serialize + ?Sized>(&mut self, value: &T) -> Result<(), CodecError> {
        value.serialize(&mut *self.ser)
    }

    fn end(self) -> Result<(), CodecError> {
        Ok(())
    }
}

impl ser::SerializeMap for Compound<'_> {
    type Ok = ();
    type Error = CodecError;

    fn serialize_key<T: Serialize + ?Sized>(&mut self, key: &T) -> Result<(), CodecError> {
        key.serialize(&mut *self.ser)
    }

    fn serialize_value<T: Serialize + ?Sized>(&mut self, value: &T) -> Result<(), CodecError> {
        value.serialize(&mut *self.ser)
    }

    fn end(self) -> Result<(), CodecError> {
        Ok(())
    }
}

impl ser::SerializeStruct for Compound<'_> {
    type Ok = ();
    type Error = CodecError;

    fn serialize_field<T: Serialize + ?Sized>(
        &mut self,
        _key: &'static str,
        value: &T,
    ) -> Result<(), CodecError> {
        value.serialize(&mut *self.ser)
    }

    fn end(self) -> Result<(), CodecError> {
        Ok(())
    }
}

impl ser::SerializeStructVariant for Compound<'_> {
    type Ok = ();
    type Error = CodecError;

    fn serialize_field<T: Serialize + ?Sized>(
        &mut self,
        _key: &'static str,
        value: &T,
    ) -> Result<(), CodecError> {
        value.serialize(&mut *self.ser)
    }

    fn end(self) -> Result<(), CodecError> {
        Ok(())
    }
}
