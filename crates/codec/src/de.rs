//! The deserializer half of the format; see the crate docs for the wire
//! layout.
//!
//! Because the format is not self-describing, `deserialize_any` is not
//! supported; values must be decoded into a statically known shape. That is
//! by design — the obvent model always knows the subscribed type (paper LP1).

use serde::de::{self, DeserializeOwned, Visitor};

use crate::{varint, CodecError};

/// Deserializes a value of type `T` from `input`, requiring that the whole
/// buffer is consumed.
///
/// # Errors
///
/// Returns [`CodecError::TrailingBytes`] when `input` holds more than one
/// value, plus any decoding error for malformed input.
pub fn from_bytes<T: DeserializeOwned>(input: &[u8]) -> Result<T, CodecError> {
    let (value, consumed) = from_bytes_prefix(input)?;
    if consumed != input.len() {
        return Err(CodecError::TrailingBytes {
            remaining: input.len() - consumed,
        });
    }
    Ok(value)
}

/// Deserializes a value of type `T` from a *prefix* of `input`, returning the
/// value and the number of bytes consumed.
///
/// This is the primitive behind supertype decoding in the obvent model: the
/// wire image of a subtype starts with the image of its superclass, so
/// decoding the superclass type from the subtype's payload succeeds and
/// simply leaves the subtype's extra fields unread.
///
/// # Errors
///
/// Any decoding error for malformed input.
pub fn from_bytes_prefix<T: DeserializeOwned>(input: &[u8]) -> Result<(T, usize), CodecError> {
    let mut de = Deserializer::new(input);
    let value = T::deserialize(&mut de)?;
    let m = crate::metrics::metrics();
    m.decodes.inc();
    m.decode_bytes.add(de.offset as u64);
    Ok((value, de.offset))
}

/// Streaming deserializer over a byte slice.
#[derive(Debug)]
pub struct Deserializer<'de> {
    input: &'de [u8],
    offset: usize,
}

impl<'de> Deserializer<'de> {
    /// Creates a deserializer reading from the start of `input`.
    pub fn new(input: &'de [u8]) -> Self {
        Deserializer { input, offset: 0 }
    }

    /// Byte offset of the next unread byte.
    pub fn offset(&self) -> usize {
        self.offset
    }

    fn take(&mut self, n: usize) -> Result<&'de [u8], CodecError> {
        if self.input.len() - self.offset < n {
            return Err(CodecError::UnexpectedEof {
                offset: self.input.len(),
            });
        }
        let slice = &self.input[self.offset..self.offset + n];
        self.offset += n;
        Ok(slice)
    }

    fn take_byte(&mut self) -> Result<u8, CodecError> {
        Ok(self.take(1)?[0])
    }

    fn take_u64(&mut self) -> Result<u64, CodecError> {
        let (value, len) = varint::decode_u64(self.input, self.offset)?;
        self.offset += len;
        Ok(value)
    }

    fn take_i64(&mut self) -> Result<i64, CodecError> {
        let (value, len) = varint::decode_i64(self.input, self.offset)?;
        self.offset += len;
        Ok(value)
    }

    fn take_len(&mut self) -> Result<usize, CodecError> {
        let claimed = self.take_u64()?;
        let remaining = self.input.len() - self.offset;
        // Each element of any collection occupies at least one byte, so a
        // length beyond the remaining byte count is necessarily corrupt.
        if claimed > remaining as u64 {
            return Err(CodecError::LengthOverflow { claimed, remaining });
        }
        Ok(claimed as usize)
    }
}

macro_rules! impl_deserialize_uint {
    ($method:ident, $visit:ident, $ty:ty) => {
        fn $method<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, CodecError> {
            let raw = self.take_u64()?;
            let value = <$ty>::try_from(raw).map_err(|_| CodecError::IntegerOutOfRange)?;
            visitor.$visit(value)
        }
    };
}

macro_rules! impl_deserialize_int {
    ($method:ident, $visit:ident, $ty:ty) => {
        fn $method<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, CodecError> {
            let raw = self.take_i64()?;
            let value = <$ty>::try_from(raw).map_err(|_| CodecError::IntegerOutOfRange)?;
            visitor.$visit(value)
        }
    };
}

impl<'de> de::Deserializer<'de> for &mut Deserializer<'de> {
    type Error = CodecError;

    fn deserialize_any<V: Visitor<'de>>(self, _visitor: V) -> Result<V::Value, CodecError> {
        Err(CodecError::Unsupported(
            "deserialize_any: the format is not self-describing",
        ))
    }

    fn deserialize_bool<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, CodecError> {
        match self.take_byte()? {
            0 => visitor.visit_bool(false),
            1 => visitor.visit_bool(true),
            value => Err(CodecError::InvalidBool { value }),
        }
    }

    impl_deserialize_int!(deserialize_i8, visit_i8, i8);
    impl_deserialize_int!(deserialize_i16, visit_i16, i16);
    impl_deserialize_int!(deserialize_i32, visit_i32, i32);

    fn deserialize_i64<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, CodecError> {
        let value = self.take_i64()?;
        visitor.visit_i64(value)
    }

    impl_deserialize_uint!(deserialize_u8, visit_u8, u8);
    impl_deserialize_uint!(deserialize_u16, visit_u16, u16);
    impl_deserialize_uint!(deserialize_u32, visit_u32, u32);

    fn deserialize_u64<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, CodecError> {
        let value = self.take_u64()?;
        visitor.visit_u64(value)
    }

    fn deserialize_f32<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, CodecError> {
        let bytes = self.take(4)?;
        visitor.visit_f32(f32::from_le_bytes(bytes.try_into().expect("4 bytes")))
    }

    fn deserialize_f64<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, CodecError> {
        let bytes = self.take(8)?;
        visitor.visit_f64(f64::from_le_bytes(bytes.try_into().expect("8 bytes")))
    }

    fn deserialize_char<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, CodecError> {
        let raw = self.take_u64()?;
        let code = u32::try_from(raw).map_err(|_| CodecError::InvalidChar { value: u32::MAX })?;
        let ch = char::from_u32(code).ok_or(CodecError::InvalidChar { value: code })?;
        visitor.visit_char(ch)
    }

    fn deserialize_str<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, CodecError> {
        let len = self.take_len()?;
        let bytes = self.take(len)?;
        let s = std::str::from_utf8(bytes).map_err(|_| CodecError::InvalidUtf8)?;
        visitor.visit_borrowed_str(s)
    }

    fn deserialize_string<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, CodecError> {
        self.deserialize_str(visitor)
    }

    fn deserialize_bytes<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, CodecError> {
        let len = self.take_len()?;
        let bytes = self.take(len)?;
        visitor.visit_borrowed_bytes(bytes)
    }

    fn deserialize_byte_buf<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, CodecError> {
        self.deserialize_bytes(visitor)
    }

    fn deserialize_option<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, CodecError> {
        match self.take_byte()? {
            0 => visitor.visit_none(),
            1 => visitor.visit_some(self),
            value => Err(CodecError::InvalidOptionTag { value }),
        }
    }

    fn deserialize_unit<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, CodecError> {
        visitor.visit_unit()
    }

    fn deserialize_unit_struct<V: Visitor<'de>>(
        self,
        _name: &'static str,
        visitor: V,
    ) -> Result<V::Value, CodecError> {
        visitor.visit_unit()
    }

    fn deserialize_newtype_struct<V: Visitor<'de>>(
        self,
        _name: &'static str,
        visitor: V,
    ) -> Result<V::Value, CodecError> {
        visitor.visit_newtype_struct(self)
    }

    fn deserialize_seq<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, CodecError> {
        let len = self.take_len()?;
        visitor.visit_seq(CountedAccess {
            de: self,
            remaining: len,
        })
    }

    fn deserialize_tuple<V: Visitor<'de>>(
        self,
        len: usize,
        visitor: V,
    ) -> Result<V::Value, CodecError> {
        visitor.visit_seq(CountedAccess {
            de: self,
            remaining: len,
        })
    }

    fn deserialize_tuple_struct<V: Visitor<'de>>(
        self,
        _name: &'static str,
        len: usize,
        visitor: V,
    ) -> Result<V::Value, CodecError> {
        self.deserialize_tuple(len, visitor)
    }

    fn deserialize_map<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, CodecError> {
        let len = self.take_len()?;
        visitor.visit_map(CountedAccess {
            de: self,
            remaining: len,
        })
    }

    fn deserialize_struct<V: Visitor<'de>>(
        self,
        _name: &'static str,
        fields: &'static [&'static str],
        visitor: V,
    ) -> Result<V::Value, CodecError> {
        self.deserialize_tuple(fields.len(), visitor)
    }

    fn deserialize_enum<V: Visitor<'de>>(
        self,
        _name: &'static str,
        _variants: &'static [&'static str],
        visitor: V,
    ) -> Result<V::Value, CodecError> {
        visitor.visit_enum(EnumAccess { de: self })
    }

    fn deserialize_identifier<V: Visitor<'de>>(self, _visitor: V) -> Result<V::Value, CodecError> {
        Err(CodecError::Unsupported("identifiers are not encoded"))
    }

    fn deserialize_ignored_any<V: Visitor<'de>>(
        self,
        _visitor: V,
    ) -> Result<V::Value, CodecError> {
        Err(CodecError::Unsupported(
            "ignored_any: the format is not self-describing",
        ))
    }

    fn is_human_readable(&self) -> bool {
        false
    }
}

struct CountedAccess<'a, 'de> {
    de: &'a mut Deserializer<'de>,
    remaining: usize,
}

impl<'de> de::SeqAccess<'de> for CountedAccess<'_, 'de> {
    type Error = CodecError;

    fn next_element_seed<T: de::DeserializeSeed<'de>>(
        &mut self,
        seed: T,
    ) -> Result<Option<T::Value>, CodecError> {
        if self.remaining == 0 {
            return Ok(None);
        }
        self.remaining -= 1;
        seed.deserialize(&mut *self.de).map(Some)
    }

    fn size_hint(&self) -> Option<usize> {
        Some(self.remaining)
    }
}

impl<'de> de::MapAccess<'de> for CountedAccess<'_, 'de> {
    type Error = CodecError;

    fn next_key_seed<K: de::DeserializeSeed<'de>>(
        &mut self,
        seed: K,
    ) -> Result<Option<K::Value>, CodecError> {
        if self.remaining == 0 {
            return Ok(None);
        }
        self.remaining -= 1;
        seed.deserialize(&mut *self.de).map(Some)
    }

    fn next_value_seed<V: de::DeserializeSeed<'de>>(
        &mut self,
        seed: V,
    ) -> Result<V::Value, CodecError> {
        seed.deserialize(&mut *self.de)
    }

    fn size_hint(&self) -> Option<usize> {
        Some(self.remaining)
    }
}

struct EnumAccess<'a, 'de> {
    de: &'a mut Deserializer<'de>,
}

impl<'de> de::EnumAccess<'de> for EnumAccess<'_, 'de> {
    type Error = CodecError;
    type Variant = Self;

    fn variant_seed<V: de::DeserializeSeed<'de>>(
        self,
        seed: V,
    ) -> Result<(V::Value, Self), CodecError> {
        let index = self.de.take_u64()?;
        let index = u32::try_from(index).map_err(|_| CodecError::IntegerOutOfRange)?;
        let value = seed.deserialize(de::value::U32Deserializer::<CodecError>::new(index))?;
        Ok((value, self))
    }
}

impl<'de> de::VariantAccess<'de> for EnumAccess<'_, 'de> {
    type Error = CodecError;

    fn unit_variant(self) -> Result<(), CodecError> {
        Ok(())
    }

    fn newtype_variant_seed<T: de::DeserializeSeed<'de>>(
        self,
        seed: T,
    ) -> Result<T::Value, CodecError> {
        seed.deserialize(self.de)
    }

    fn tuple_variant<V: Visitor<'de>>(self, len: usize, visitor: V) -> Result<V::Value, CodecError> {
        de::Deserializer::deserialize_tuple(self.de, len, visitor)
    }

    fn struct_variant<V: Visitor<'de>>(
        self,
        fields: &'static [&'static str],
        visitor: V,
    ) -> Result<V::Value, CodecError> {
        de::Deserializer::deserialize_tuple(self.de, fields.len(), visitor)
    }
}
