use std::collections::BTreeMap;

use proptest::prelude::*;
use serde::{Deserialize, Serialize};

use crate::{from_bytes, from_bytes_prefix, to_bytes, CodecError};

fn roundtrip<T: Serialize + serde::de::DeserializeOwned + PartialEq + std::fmt::Debug>(value: &T) {
    let bytes = to_bytes(value).expect("encode");
    let back: T = from_bytes(&bytes).expect("decode");
    assert_eq!(&back, value);
}

#[derive(Serialize, Deserialize, PartialEq, Debug, Clone)]
struct Simple {
    a: u32,
    b: String,
    c: bool,
}

#[derive(Serialize, Deserialize, PartialEq, Debug, Clone)]
struct Nested {
    inner: Simple,
    list: Vec<i64>,
    map: BTreeMap<String, f64>,
    opt: Option<Box<Nested>>,
}

#[derive(Serialize, Deserialize, PartialEq, Debug, Clone)]
enum Mixed {
    Unit,
    One(u8),
    Pair(String, i32),
    Struct { x: f32, y: f32 },
}

#[derive(Serialize, Deserialize, PartialEq, Debug)]
struct UnitStruct;

#[derive(Serialize, Deserialize, PartialEq, Debug)]
struct NewType(u64);

#[test]
fn primitives_roundtrip() {
    roundtrip(&true);
    roundtrip(&false);
    roundtrip(&0u8);
    roundtrip(&u8::MAX);
    roundtrip(&i8::MIN);
    roundtrip(&u16::MAX);
    roundtrip(&i16::MIN);
    roundtrip(&u32::MAX);
    roundtrip(&i32::MIN);
    roundtrip(&u64::MAX);
    roundtrip(&i64::MIN);
    roundtrip(&1.5f32);
    roundtrip(&-2.25f64);
    roundtrip(&'x');
    roundtrip(&'\u{1F600}');
    roundtrip(&String::from("hello world"));
    roundtrip(&String::new());
}

#[test]
fn f64_nan_payload_survives() {
    let bytes = to_bytes(&f64::NAN).unwrap();
    let back: f64 = from_bytes(&bytes).unwrap();
    assert!(back.is_nan());
}

#[test]
fn collections_roundtrip() {
    roundtrip(&vec![1u32, 2, 3]);
    roundtrip(&Vec::<u32>::new());
    roundtrip(&vec![vec![1u8], vec![], vec![2, 3]]);
    let mut map = BTreeMap::new();
    map.insert("a".to_string(), 1i64);
    map.insert("b".to_string(), -2);
    roundtrip(&map);
    roundtrip(&(1u8, "two".to_string(), 3.0f64));
    roundtrip(&Some(42u64));
    roundtrip(&Option::<u64>::None);
    roundtrip(&UnitStruct);
    roundtrip(&NewType(99));
}

#[test]
fn structs_and_enums_roundtrip() {
    let simple = Simple {
        a: 7,
        b: "seven".into(),
        c: true,
    };
    roundtrip(&simple);
    let nested = Nested {
        inner: simple.clone(),
        list: vec![-1, 0, i64::MAX],
        map: BTreeMap::from([("pi".to_string(), 3.5)]),
        opt: Some(Box::new(Nested {
            inner: simple,
            list: vec![],
            map: BTreeMap::new(),
            opt: None,
        })),
    };
    roundtrip(&nested);
    roundtrip(&Mixed::Unit);
    roundtrip(&Mixed::One(9));
    roundtrip(&Mixed::Pair("p".into(), -9));
    roundtrip(&Mixed::Struct { x: 1.0, y: 2.0 });
}

#[test]
fn struct_encoding_has_no_field_names() {
    // A struct must encode exactly as the tuple of its fields: this is the
    // prefix-layout property the obvent model depends on.
    let s = Simple {
        a: 300,
        b: "x".into(),
        c: false,
    };
    let as_struct = to_bytes(&s).unwrap();
    let as_tuple = to_bytes(&(300u32, "x", false)).unwrap();
    assert_eq!(as_struct, as_tuple);
}

#[test]
fn prefix_decoding_reads_leading_fields_only() {
    #[derive(Serialize, Deserialize, PartialEq, Debug)]
    struct Base {
        company: String,
        price: f64,
    }
    #[derive(Serialize, Deserialize, PartialEq, Debug)]
    struct Extended {
        base: Base,
        amount: u32,
        venue: String,
    }

    let ext = Extended {
        base: Base {
            company: "Telco".into(),
            price: 80.0,
        },
        amount: 10,
        venue: "ZRH".into(),
    };
    let bytes = to_bytes(&ext).unwrap();
    let (base, consumed): (Base, usize) = from_bytes_prefix(&bytes).unwrap();
    assert_eq!(base.company, "Telco");
    assert_eq!(base.price, 80.0);
    assert!(consumed < bytes.len());
    // The full decode still works on the same buffer.
    let full: Extended = from_bytes(&bytes).unwrap();
    assert_eq!(full, ext);
}

#[test]
fn whole_buffer_decode_rejects_trailing_bytes() {
    let mut bytes = to_bytes(&5u32).unwrap();
    bytes.push(0xAA);
    let err = from_bytes::<u32>(&bytes).unwrap_err();
    assert!(matches!(err, CodecError::TrailingBytes { remaining: 1 }));
}

#[test]
fn truncated_input_reports_eof() {
    // Truncating inside the string body looks like a length overflow (the
    // sanity check fires before the body read); truncating a fixed-width
    // float reports a plain EOF.
    let bytes = to_bytes(&"hello world".to_string()).unwrap();
    let err = from_bytes::<String>(&bytes[..5]).unwrap_err();
    assert!(matches!(err, CodecError::LengthOverflow { .. }));

    let bytes = to_bytes(&1.0f64).unwrap();
    let err = from_bytes::<f64>(&bytes[..4]).unwrap_err();
    assert!(matches!(err, CodecError::UnexpectedEof { .. }));
}

#[test]
fn corrupt_length_prefix_is_rejected_without_allocation() {
    // Claim a 2^60-element vector in a 3-byte buffer.
    let mut bytes = Vec::new();
    crate::varint::encode_u64(1 << 60, &mut bytes);
    let err = from_bytes::<Vec<u8>>(&bytes).unwrap_err();
    assert!(matches!(err, CodecError::LengthOverflow { .. }));
}

#[test]
fn invalid_bool_and_option_tags_are_rejected() {
    assert!(matches!(
        from_bytes::<bool>(&[2]),
        Err(CodecError::InvalidBool { value: 2 })
    ));
    assert!(matches!(
        from_bytes::<Option<u8>>(&[7]),
        Err(CodecError::InvalidOptionTag { value: 7 })
    ));
}

#[test]
fn invalid_utf8_is_rejected() {
    // length 2, bytes [0xff, 0xff]
    let bytes = vec![2, 0xff, 0xff];
    assert!(matches!(
        from_bytes::<String>(&bytes),
        Err(CodecError::InvalidUtf8)
    ));
}

#[test]
fn invalid_char_is_rejected() {
    let bytes = to_bytes(&0xD800u32).unwrap(); // a surrogate code point
    assert!(matches!(
        from_bytes::<char>(&bytes),
        Err(CodecError::InvalidChar { .. })
    ));
}

#[test]
fn out_of_range_integer_is_rejected() {
    let bytes = to_bytes(&300u32).unwrap();
    assert!(matches!(
        from_bytes::<u8>(&bytes),
        Err(CodecError::IntegerOutOfRange)
    ));
}

#[test]
fn unknown_enum_variant_index_is_rejected() {
    let bytes = to_bytes(&9u32).unwrap();
    assert!(from_bytes::<Mixed>(&bytes).is_err());
}

#[test]
fn error_display_is_lowercase_and_nonempty() {
    let errs: Vec<CodecError> = vec![
        CodecError::UnexpectedEof { offset: 3 },
        CodecError::InvalidVarint { offset: 0 },
        CodecError::InvalidBool { value: 9 },
        CodecError::InvalidUtf8,
        CodecError::TrailingBytes { remaining: 2 },
        CodecError::Message("boom".into()),
    ];
    for err in errs {
        let msg = err.to_string();
        assert!(!msg.is_empty());
        assert!(!msg.chars().next().unwrap().is_uppercase());
    }
}

fn arb_mixed() -> impl Strategy<Value = Mixed> {
    prop_oneof![
        Just(Mixed::Unit),
        any::<u8>().prop_map(Mixed::One),
        (".*", any::<i32>()).prop_map(|(s, i)| Mixed::Pair(s, i)),
        (any::<f32>(), any::<f32>()).prop_map(|(x, y)| Mixed::Struct { x, y }),
    ]
}

proptest! {
    #[test]
    fn prop_u64_roundtrip(v: u64) { roundtrip(&v); }

    #[test]
    fn prop_i64_roundtrip(v: i64) { roundtrip(&v); }

    #[test]
    fn prop_string_roundtrip(s in ".*") { roundtrip(&s); }

    #[test]
    fn prop_bytes_roundtrip(b in proptest::collection::vec(any::<u8>(), 0..256)) {
        roundtrip(&b);
    }

    #[test]
    fn prop_struct_roundtrip(a: u32, b in ".*", c: bool) {
        roundtrip(&Simple { a, b, c });
    }

    #[test]
    fn prop_enum_roundtrip(m in arb_mixed()) {
        let bytes = to_bytes(&m).unwrap();
        let back: Mixed = from_bytes(&bytes).unwrap();
        // NaN-safe comparison for the float variant.
        match (&m, &back) {
            (Mixed::Struct { x: x1, y: y1 }, Mixed::Struct { x: x2, y: y2 }) => {
                prop_assert!(x1.to_bits() == x2.to_bits() && y1.to_bits() == y2.to_bits());
            }
            _ => prop_assert_eq!(&m, &back),
        }
    }

    #[test]
    fn prop_decoding_arbitrary_bytes_never_panics(
        bytes in proptest::collection::vec(any::<u8>(), 0..128)
    ) {
        let _ = from_bytes::<Nested>(&bytes);
        let _ = from_bytes::<Mixed>(&bytes);
        let _ = from_bytes::<Vec<String>>(&bytes);
    }

    #[test]
    fn prop_prefix_decode_consumed_matches_encoding(a: u32, b in ".*", c: bool, extra in proptest::collection::vec(any::<u8>(), 0..32)) {
        let s = Simple { a, b, c };
        let mut bytes = to_bytes(&s).unwrap();
        let encoded_len = bytes.len();
        bytes.extend_from_slice(&extra);
        let (back, consumed): (Simple, usize) = from_bytes_prefix(&bytes).unwrap();
        prop_assert_eq!(back, s);
        prop_assert_eq!(consumed, encoded_len);
    }

    /// CRC frame streams reassemble byte-exactly when split at EVERY
    /// position: each single split point lands somewhere — possibly
    /// mid-length-prefix (offset 1..4) or mid-CRC (offset 4..8) of some
    /// frame — and the reassembler must not care.
    #[test]
    fn prop_crc_stream_every_split_point(
        payloads in proptest::collection::vec(
            proptest::collection::vec(any::<u8>(), 0..40), 1..5)
    ) {
        let mut stream = Vec::new();
        for p in &payloads {
            crate::frame::encode_crc(p, &mut stream);
        }
        for split in 0..=stream.len() {
            let mut fr = crate::frame::FrameReassembler::new();
            let mut frames = Vec::new();
            fr.extend(&stream[..split]);
            while let Some(f) = fr.next_frame().unwrap() {
                frames.push(f);
            }
            fr.extend(&stream[split..]);
            while let Some(f) = fr.next_frame().unwrap() {
                frames.push(f);
            }
            prop_assert_eq!(&frames, &payloads, "split at byte {}", split);
            prop_assert_eq!(fr.pending_len(), 0);
        }
    }

    /// Random multi-way chunkings (including 1-byte chunks) reassemble the
    /// same frame sequence as a single-shot feed.
    #[test]
    fn prop_crc_stream_random_chunking(
        payloads in proptest::collection::vec(
            proptest::collection::vec(any::<u8>(), 0..64), 1..6),
        chunk_sizes in proptest::collection::vec(1usize..9, 1..64)
    ) {
        let mut stream = Vec::new();
        for p in &payloads {
            crate::frame::encode_crc(p, &mut stream);
        }
        let mut fr = crate::frame::FrameReassembler::new();
        let mut frames = Vec::new();
        let mut offset = 0;
        let mut sizes = chunk_sizes.iter().cycle();
        while offset < stream.len() {
            let take = (*sizes.next().unwrap()).min(stream.len() - offset);
            fr.extend(&stream[offset..offset + take]);
            offset += take;
            while let Some(f) = fr.next_frame().unwrap() {
                frames.push(f);
            }
        }
        prop_assert_eq!(&frames, &payloads);
        prop_assert_eq!(fr.pending_len(), 0);
    }

    /// Flipping any single bit in a frame stream is rejected cleanly: every
    /// intact frame before the damage comes out byte-exact, and the
    /// damaged region surfaces as an error (never a panic, never a bogus
    /// frame accepted with a matching checksum).
    #[test]
    fn prop_crc_single_bit_corruption_rejected(
        payloads in proptest::collection::vec(
            proptest::collection::vec(any::<u8>(), 1..32), 1..4),
        bit in any::<u64>()
    ) {
        let mut stream = Vec::new();
        for p in &payloads {
            crate::frame::encode_crc(p, &mut stream);
        }
        let flip = (bit % (stream.len() as u64 * 8)) as usize;
        stream[flip / 8] ^= 1 << (flip % 8);
        let mut fr = crate::frame::FrameReassembler::new();
        fr.extend(&stream);
        let mut intact = 0usize;
        loop {
            match fr.next_frame() {
                Ok(Some(f)) => {
                    prop_assert_eq!(&f, &payloads[intact], "pre-damage frame altered");
                    intact += 1;
                }
                // A flipped length-prefix bit can shrink a frame so the
                // stream ends mid-frame instead of erroring: that must
                // leave a visible truncated tail (or desync into a later
                // CRC failure), never a wrongly-accepted full sequence.
                Ok(None) => {
                    prop_assert!(
                        intact < payloads.len() && fr.pending_len() > 0,
                        "corruption vanished: {} of {} frames accepted",
                        intact, payloads.len()
                    );
                    break;
                }
                Err(_) => break,
            }
        }
        prop_assert!(intact < payloads.len(), "all frames accepted despite corruption");
    }

    /// Truncating the stream anywhere strictly inside the final frame
    /// yields every earlier frame plus a pending (never silently dropped,
    /// never fabricated) tail.
    #[test]
    fn prop_crc_truncated_tail_never_fabricates(
        payloads in proptest::collection::vec(
            proptest::collection::vec(any::<u8>(), 0..32), 1..4),
        cut in any::<u64>()
    ) {
        let mut stream = Vec::new();
        let mut starts = Vec::new();
        for p in &payloads {
            starts.push(stream.len());
            crate::frame::encode_crc(p, &mut stream);
        }
        let last_start = *starts.last().unwrap();
        // Cut strictly inside the last frame.
        let cut_at = last_start + (cut % (stream.len() - last_start) as u64) as usize;
        let mut fr = crate::frame::FrameReassembler::new();
        fr.extend(&stream[..cut_at]);
        let mut frames = Vec::new();
        while let Some(f) = fr.next_frame().unwrap() {
            frames.push(f);
        }
        prop_assert_eq!(&frames[..], &payloads[..payloads.len() - 1]);
        prop_assert_eq!(fr.pending_len(), cut_at - last_start);
    }
}

#[test]
fn to_writer_writes_the_same_bytes() {
    let value = Simple {
        a: 7,
        b: "w".into(),
        c: true,
    };
    let direct = to_bytes(&value).unwrap();
    let mut sink = Vec::new();
    crate::to_writer(&value, &mut sink).unwrap();
    assert_eq!(sink, direct);
}

#[test]
fn serializer_with_buffer_reuses_capacity() {
    let buf = Vec::with_capacity(1024);
    let mut ser = crate::Serializer::with_buffer(buf);
    use serde::Serialize;
    42u8.serialize(&mut ser).unwrap();
    let out = ser.into_bytes();
    assert_eq!(out, vec![42]);
    assert!(out.capacity() >= 1024);
}

#[test]
fn deserializer_reports_offset() {
    let bytes = to_bytes(&(1u8, 2u8)).unwrap();
    let mut de = crate::Deserializer::new(&bytes);
    use serde::Deserialize;
    let _first = u8::deserialize(&mut de).unwrap();
    assert_eq!(de.offset(), 1);
}
