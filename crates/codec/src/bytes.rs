//! Shared wire buffers: serialize once, fan out everywhere.
//!
//! A [`WireBytes`] is an immutable, cheaply clonable byte buffer backed by an
//! `Arc`: cloning one for another destination, a retransmit queue, or a parked
//! obvent is a reference-count bump, not a memcpy. [`WireBytes::slice`] carves
//! zero-copy sub-ranges out of a buffer, which is what the batched frame
//! decode path uses to hand each sub-message out without re-allocating.
//!
//! The backing buffers come from (and return to) a thread-local freelist: when
//! the last `WireBytes` referencing a buffer drops, the allocation is recycled
//! and the next [`to_wire_bytes`] call reuses its capacity. The pool's
//! effectiveness is observable as `codec.pool.hits` / `codec.pool.misses` in
//! the process-global telemetry registry.

use std::cell::RefCell;
use std::fmt;
use std::ops::{Deref, Range};
use std::sync::{Arc, OnceLock};

use serde::de::{Error as DeError, Visitor};
use serde::{Deserialize, Deserializer, Serialize, Serializer as SerdeSerializer};

use crate::{CodecError, Serializer};

/// Buffers kept per thread; beyond this, dropped buffers are freed normally.
const MAX_POOLED_BUFFERS: usize = 64;
/// Buffers with more capacity than this are not retained (a single giant
/// message must not pin its allocation forever).
const MAX_POOLED_CAPACITY: usize = 1 << 20;

thread_local! {
    static POOL: RefCell<Vec<Vec<u8>>> = const { RefCell::new(Vec::new()) };
}

/// Takes a recycled buffer from the thread-local pool, or allocates.
pub(crate) fn acquire_buffer() -> Vec<u8> {
    let m = crate::metrics::metrics();
    match POOL.with(|pool| pool.borrow_mut().pop()) {
        Some(mut buf) => {
            buf.clear();
            m.pool_hits.inc();
            buf
        }
        None => {
            m.pool_misses.inc();
            Vec::new()
        }
    }
}

/// Returns a buffer's allocation to the thread-local pool.
pub(crate) fn release_buffer(buf: Vec<u8>) {
    if buf.capacity() == 0 || buf.capacity() > MAX_POOLED_CAPACITY {
        return;
    }
    POOL.with(|pool| {
        let mut pool = pool.borrow_mut();
        if pool.len() < MAX_POOLED_BUFFERS {
            crate::metrics::metrics().pool_recycled.inc();
            pool.push(buf);
        }
    });
}

/// The shared backing store of one or more [`WireBytes`]. Recycles its
/// allocation into the thread-local pool when the last reference drops.
struct Chunk {
    buf: Vec<u8>,
}

impl Drop for Chunk {
    fn drop(&mut self) {
        release_buffer(std::mem::take(&mut self.buf));
    }
}

/// An immutable, `Arc`-backed byte buffer with zero-copy slicing.
///
/// This is the unit of sharing on the hot publish path: encode a message once
/// with [`to_wire_bytes`], then clone the handle per destination — every copy
/// refers to the same allocation.
///
/// ```
/// let bytes = psc_codec::to_wire_bytes(&("quote", 80.0_f64)).unwrap();
/// let for_dest_a = bytes.clone(); // refcount bump, no memcpy
/// assert_eq!(&*for_dest_a, &*bytes);
/// let prefix = bytes.slice(0..4); // zero-copy sub-range
/// assert_eq!(&*prefix, &bytes[0..4]);
/// ```
#[derive(Clone)]
pub struct WireBytes {
    chunk: Arc<Chunk>,
    start: usize,
    end: usize,
}

impl WireBytes {
    /// The empty buffer (shared; allocation-free to clone).
    pub fn empty() -> WireBytes {
        static EMPTY: OnceLock<Arc<Chunk>> = OnceLock::new();
        let chunk = EMPTY.get_or_init(|| Arc::new(Chunk { buf: Vec::new() }));
        WireBytes {
            chunk: Arc::clone(chunk),
            start: 0,
            end: 0,
        }
    }

    /// Wraps an owned vector without copying. The allocation joins the
    /// recycling pool once the last referencing `WireBytes` drops.
    pub fn from_vec(buf: Vec<u8>) -> WireBytes {
        let end = buf.len();
        WireBytes {
            chunk: Arc::new(Chunk { buf }),
            start: 0,
            end,
        }
    }

    /// Copies a slice into a pooled buffer.
    pub fn copy_from_slice(bytes: &[u8]) -> WireBytes {
        let mut buf = acquire_buffer();
        buf.extend_from_slice(bytes);
        WireBytes::from_vec(buf)
    }

    /// The viewed bytes.
    pub fn as_slice(&self) -> &[u8] {
        &self.chunk.buf[self.start..self.end]
    }

    /// Length of the viewed range.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// True when the viewed range is empty.
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// A zero-copy sub-range sharing this buffer's allocation.
    ///
    /// # Panics
    ///
    /// Panics if the range is out of bounds.
    pub fn slice(&self, range: Range<usize>) -> WireBytes {
        assert!(
            range.start <= range.end && range.end <= self.len(),
            "slice {}..{} out of bounds for WireBytes of length {}",
            range.start,
            range.end,
            self.len()
        );
        WireBytes {
            chunk: Arc::clone(&self.chunk),
            start: self.start + range.start,
            end: self.start + range.end,
        }
    }

    /// Copies the viewed bytes into a fresh vector.
    pub fn to_vec(&self) -> Vec<u8> {
        self.as_slice().to_vec()
    }

    /// Number of `WireBytes` handles sharing this allocation (diagnostics).
    pub fn ref_count(&self) -> usize {
        Arc::strong_count(&self.chunk)
    }

    /// True when both handles view the same range of the same allocation.
    ///
    /// O(1) buffer identity (not content equality): hosts use it to memoize
    /// per-buffer work across a fan-out, e.g. encoding a transport envelope
    /// once for the N members a protocol sends the same bytes to.
    pub fn ptr_eq(&self, other: &WireBytes) -> bool {
        Arc::ptr_eq(&self.chunk, &other.chunk)
            && self.start == other.start
            && self.end == other.end
    }
}

impl Deref for WireBytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl AsRef<[u8]> for WireBytes {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl From<Vec<u8>> for WireBytes {
    fn from(buf: Vec<u8>) -> WireBytes {
        WireBytes::from_vec(buf)
    }
}

impl From<&[u8]> for WireBytes {
    fn from(bytes: &[u8]) -> WireBytes {
        WireBytes::copy_from_slice(bytes)
    }
}

impl<const N: usize> From<&[u8; N]> for WireBytes {
    fn from(bytes: &[u8; N]) -> WireBytes {
        WireBytes::copy_from_slice(bytes)
    }
}

impl PartialEq for WireBytes {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Eq for WireBytes {}

impl PartialEq<[u8]> for WireBytes {
    fn eq(&self, other: &[u8]) -> bool {
        self.as_slice() == other
    }
}

impl PartialEq<Vec<u8>> for WireBytes {
    fn eq(&self, other: &Vec<u8>) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl std::hash::Hash for WireBytes {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.as_slice().hash(state);
    }
}

impl Default for WireBytes {
    fn default() -> WireBytes {
        WireBytes::empty()
    }
}

impl fmt::Debug for WireBytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "WireBytes({} bytes", self.len())?;
        if self.ref_count() > 1 {
            write!(f, ", {} refs", self.ref_count())?;
        }
        write!(f, ")")
    }
}

/// On the wire a `WireBytes` is a plain byte string (varint length + raw
/// bytes), indistinguishable from `serialize_bytes` of the viewed slice.
impl Serialize for WireBytes {
    fn serialize<S: SerdeSerializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_bytes(self.as_slice())
    }
}

impl<'de> Deserialize<'de> for WireBytes {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<WireBytes, D::Error> {
        struct BytesVisitor;

        impl<'de> Visitor<'de> for BytesVisitor {
            type Value = WireBytes;

            fn expecting(&self, formatter: &mut fmt::Formatter<'_>) -> fmt::Result {
                formatter.write_str("a byte string")
            }

            fn visit_bytes<E: DeError>(self, v: &[u8]) -> Result<WireBytes, E> {
                Ok(WireBytes::copy_from_slice(v))
            }

            fn visit_byte_buf<E: DeError>(self, v: Vec<u8>) -> Result<WireBytes, E> {
                Ok(WireBytes::from_vec(v))
            }
        }

        deserializer.deserialize_byte_buf(BytesVisitor)
    }
}

/// Serializes `value` into a pooled buffer and freezes it as a [`WireBytes`].
///
/// This is the entry point for the serialize-once fan-out discipline: encode
/// here, then clone the returned handle for every destination instead of
/// re-encoding or deep-copying.
///
/// # Errors
///
/// Same failure modes as [`to_bytes`](crate::to_bytes).
pub fn to_wire_bytes<T: Serialize + ?Sized>(value: &T) -> Result<WireBytes, CodecError> {
    let mut ser = Serializer::with_buffer(acquire_buffer());
    value.serialize(&mut ser)?;
    let bytes = ser.into_bytes();
    let m = crate::metrics::metrics();
    m.encodes.inc();
    m.encode_bytes.add(bytes.len() as u64);
    Ok(WireBytes::from_vec(bytes))
}

/// Frame-concatenates several payloads into one pooled buffer: the
/// coalescing half of small-message batching. [`split_frames`] takes the
/// result apart again with zero-copy slices.
pub fn batch_frames<'a, I>(payloads: I) -> WireBytes
where
    I: IntoIterator<Item = &'a [u8]>,
{
    let mut buf = acquire_buffer();
    crate::frame::encode_batch(payloads, &mut buf);
    WireBytes::from_vec(buf)
}

/// Splits a frame-concatenated buffer (as produced by
/// [`frame::encode_batch`](crate::frame::encode_batch)) into zero-copy
/// sub-buffers, one per frame.
///
/// # Errors
///
/// Propagates corrupt length prefixes; trailing bytes that do not form a
/// complete frame are an error too (a batch is written atomically, so a
/// partial trailing frame means corruption, not a short read).
pub fn split_frames(bytes: &WireBytes) -> Result<Vec<WireBytes>, CodecError> {
    let mut out = Vec::new();
    let mut offset = 0usize;
    while offset < bytes.len() {
        match crate::frame::decode(&bytes[offset..])? {
            Some((payload, consumed)) => {
                let header = consumed - payload.len();
                out.push(bytes.slice(offset + header..offset + consumed));
                offset += consumed;
            }
            None => {
                return Err(CodecError::LengthOverflow {
                    claimed: (bytes.len() - offset) as u64,
                    remaining: 0,
                });
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clone_shares_the_allocation() {
        let a = WireBytes::from_vec(vec![1, 2, 3, 4]);
        let b = a.clone();
        assert_eq!(a, b);
        assert_eq!(a.ref_count(), 2);
        assert_eq!(a.as_slice().as_ptr(), b.as_slice().as_ptr());
    }

    #[test]
    fn slice_is_zero_copy() {
        let a = WireBytes::from_vec((0u8..32).collect());
        let mid = a.slice(8..24);
        assert_eq!(&*mid, &(8u8..24).collect::<Vec<_>>()[..]);
        assert_eq!(mid.as_slice().as_ptr(), a[8..].as_ptr());
        let nested = mid.slice(4..8);
        assert_eq!(&*nested, &[12, 13, 14, 15]);
        assert_eq!(nested.ref_count(), 3);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn slice_out_of_bounds_panics() {
        WireBytes::from_vec(vec![0; 4]).slice(2..6);
    }

    #[test]
    fn serde_roundtrip_matches_vec_encoding_of_bytes() {
        let original = WireBytes::from_vec(vec![200u8, 1, 2, 255]);
        let encoded = crate::to_bytes(&original).unwrap();
        // Raw-bytes layout: varint length then the bytes verbatim.
        assert_eq!(encoded, vec![4, 200, 1, 2, 255]);
        let back: WireBytes = crate::from_bytes(&encoded).unwrap();
        assert_eq!(back, original);
    }

    #[test]
    fn to_wire_bytes_matches_to_bytes() {
        let value = ("Telco", 80.0_f64, 10u32);
        assert_eq!(
            *to_wire_bytes(&value).unwrap(),
            *crate::to_bytes(&value).unwrap()
        );
    }

    #[test]
    fn pool_recycles_dropped_buffers() {
        // Warm: drop a buffer with real capacity, then re-acquire.
        let mut warm = Vec::with_capacity(512);
        warm.extend_from_slice(&[7u8; 64]);
        let ptr = warm.as_ptr() as usize;
        drop(WireBytes::from_vec(warm));
        let reused = acquire_buffer();
        assert_eq!(reused.as_ptr() as usize, ptr, "expected pooled reuse");
        assert!(reused.is_empty());
        assert!(reused.capacity() >= 512);
        release_buffer(reused);
    }

    #[test]
    fn pool_reuse_waits_for_last_reference() {
        let mut buf = Vec::with_capacity(256);
        buf.push(1u8);
        let a = WireBytes::from_vec(buf);
        let b = a.slice(0..1);
        drop(a);
        // `b` still references the chunk: the allocation must not be handed
        // out while a view is live.
        assert_eq!(&*b, &[1]);
        drop(b);
        let _ = acquire_buffer();
    }

    #[test]
    fn split_frames_roundtrip_zero_copy() {
        let parts: [&[u8]; 3] = [b"one", b"", b"three"];
        let mut buf = acquire_buffer();
        crate::frame::encode_batch(parts.iter().copied(), &mut buf);
        let batch = WireBytes::from_vec(buf);
        let frames = split_frames(&batch).unwrap();
        assert_eq!(frames.len(), 3);
        for (frame, part) in frames.iter().zip(parts) {
            assert_eq!(&**frame, part);
            // Zero-copy: every frame points into the batch allocation.
            assert_eq!(frame.ref_count(), batch.ref_count());
        }
        assert_eq!(frames[0].as_slice().as_ptr(), batch[4..].as_ptr());
    }

    #[test]
    fn split_frames_rejects_truncated_tail() {
        let mut buf = Vec::new();
        crate::frame::encode(b"whole", &mut buf);
        buf.extend_from_slice(&[9, 0, 0]); // partial length prefix
        assert!(split_frames(&WireBytes::from_vec(buf)).is_err());
    }
}
