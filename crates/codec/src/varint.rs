//! LEB128 variable-length integers and zigzag mapping.
//!
//! Unsigned integers are encoded 7 bits at a time, least-significant group
//! first, with the high bit of each byte signalling continuation. Signed
//! integers are first zigzag-mapped so that small-magnitude values (positive
//! or negative) encode to few bytes.

use crate::CodecError;

/// Maximum number of bytes a `u64` LEB128 varint can occupy.
pub const MAX_VARINT_LEN: usize = 10;

/// Appends the LEB128 encoding of `value` to `out`.
///
/// ```
/// let mut buf = Vec::new();
/// psc_codec::varint::encode_u64(300, &mut buf);
/// assert_eq!(buf, [0xac, 0x02]);
/// ```
pub fn encode_u64(mut value: u64, out: &mut Vec<u8>) {
    loop {
        let byte = (value & 0x7f) as u8;
        value >>= 7;
        if value == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

/// Decodes a LEB128 varint from `input` starting at `offset`.
///
/// Returns the decoded value and the number of bytes consumed.
///
/// # Errors
///
/// Returns [`CodecError::UnexpectedEof`] if the input ends mid-varint and
/// [`CodecError::InvalidVarint`] if the encoding overflows 64 bits.
pub fn decode_u64(input: &[u8], offset: usize) -> Result<(u64, usize), CodecError> {
    let mut value: u64 = 0;
    let mut shift: u32 = 0;
    for (i, &byte) in input.iter().skip(offset).take(MAX_VARINT_LEN).enumerate() {
        let group = u64::from(byte & 0x7f);
        if shift == 63 && group > 1 {
            return Err(CodecError::InvalidVarint { offset });
        }
        value |= group << shift;
        if byte & 0x80 == 0 {
            return Ok((value, i + 1));
        }
        shift += 7;
    }
    if input.len().saturating_sub(offset) >= MAX_VARINT_LEN {
        Err(CodecError::InvalidVarint { offset })
    } else {
        Err(CodecError::UnexpectedEof {
            offset: input.len(),
        })
    }
}

/// Maps a signed integer to an unsigned one such that values of small
/// magnitude map to small codes: `0 → 0, -1 → 1, 1 → 2, -2 → 3, …`.
#[inline]
pub fn zigzag_encode(value: i64) -> u64 {
    ((value << 1) ^ (value >> 63)) as u64
}

/// Inverse of [`zigzag_encode`].
#[inline]
pub fn zigzag_decode(value: u64) -> i64 {
    ((value >> 1) as i64) ^ -((value & 1) as i64)
}

/// Appends the zigzag + LEB128 encoding of `value` to `out`.
pub fn encode_i64(value: i64, out: &mut Vec<u8>) {
    encode_u64(zigzag_encode(value), out);
}

/// Decodes a zigzag + LEB128 signed varint; see [`decode_u64`] for errors.
pub fn decode_i64(input: &[u8], offset: usize) -> Result<(i64, usize), CodecError> {
    let (raw, len) = decode_u64(input, offset)?;
    Ok((zigzag_decode(raw), len))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_values_are_single_bytes() {
        for v in 0..128u64 {
            let mut buf = Vec::new();
            encode_u64(v, &mut buf);
            assert_eq!(buf.len(), 1);
            assert_eq!(decode_u64(&buf, 0).unwrap(), (v, 1));
        }
    }

    #[test]
    fn boundary_values_roundtrip() {
        for v in [
            0u64,
            127,
            128,
            16_383,
            16_384,
            u32::MAX as u64,
            u64::MAX - 1,
            u64::MAX,
        ] {
            let mut buf = Vec::new();
            encode_u64(v, &mut buf);
            let (back, len) = decode_u64(&buf, 0).unwrap();
            assert_eq!(back, v);
            assert_eq!(len, buf.len());
        }
    }

    #[test]
    fn zigzag_maps_small_magnitudes_to_small_codes() {
        assert_eq!(zigzag_encode(0), 0);
        assert_eq!(zigzag_encode(-1), 1);
        assert_eq!(zigzag_encode(1), 2);
        assert_eq!(zigzag_encode(-2), 3);
        assert_eq!(zigzag_decode(zigzag_encode(i64::MIN)), i64::MIN);
        assert_eq!(zigzag_decode(zigzag_encode(i64::MAX)), i64::MAX);
    }

    #[test]
    fn signed_roundtrip() {
        for v in [i64::MIN, -1_000_000, -1, 0, 1, 1_000_000, i64::MAX] {
            let mut buf = Vec::new();
            encode_i64(v, &mut buf);
            let (back, len) = decode_i64(&buf, 0).unwrap();
            assert_eq!(back, v);
            assert_eq!(len, buf.len());
        }
    }

    #[test]
    fn truncated_varint_reports_eof() {
        let mut buf = Vec::new();
        encode_u64(u64::MAX, &mut buf);
        buf.pop();
        assert!(matches!(
            decode_u64(&buf, 0),
            Err(CodecError::UnexpectedEof { .. })
        ));
    }

    #[test]
    fn overlong_varint_is_rejected() {
        // Eleven continuation bytes can never be a valid u64 varint.
        let buf = [0xffu8; 11];
        assert!(matches!(
            decode_u64(&buf, 0),
            Err(CodecError::InvalidVarint { .. })
        ));
    }

    #[test]
    fn overflowing_final_group_is_rejected() {
        // 10 bytes whose last group contributes more than the 1 remaining bit.
        let buf = [0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x02];
        assert!(matches!(
            decode_u64(&buf, 0),
            Err(CodecError::InvalidVarint { .. })
        ));
    }

    #[test]
    fn decode_respects_offset() {
        let mut buf = vec![0xde, 0xad];
        encode_u64(300, &mut buf);
        let (v, len) = decode_u64(&buf, 2).unwrap();
        assert_eq!(v, 300);
        assert_eq!(len, 2);
    }
}
