//! A networked tuple space: one server process, blocking clients.
//!
//! Linda's space was conceived as distributed shared memory; this module
//! provides the minimal distributed deployment the comparison experiment
//! (E9) needs: a server hosting a [`TupleSpace`] and clients performing
//! `out`/`rd`/`in` over the in-process transport. Blocking reads poll with
//! the server (bounded retries), preserving Linda's synchronous pull —
//! which is precisely the *flow coupling* the paper says pub/sub removes
//! (§6.3.3).

use std::time::Duration;

use crossbeam::channel::{bounded, Sender};
use parking_lot::Mutex;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use psc_simnet::inproc::{self, EndpointHandle, EndpointSender};
use psc_simnet::NodeId;

use crate::{Template, Tuple, TupleSpace};

#[derive(Debug, Serialize, Deserialize)]
enum SpaceMsg {
    Out {
        tuple: Tuple,
    },
    Rd {
        call: u64,
        template: Template,
    },
    Take {
        call: u64,
        template: Template,
    },
    Reply {
        call: u64,
        tuple: Option<Tuple>,
    },
}

/// Error talking to the space server.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpaceError(String);

impl std::fmt::Display for SpaceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "tuple space error: {}", self.0)
    }
}

impl std::error::Error for SpaceError {}

/// The server half: hosts the space, answers client requests.
pub struct SpaceServer {
    space: TupleSpace,
    node: NodeId,
    _receiver: EndpointHandle,
}

impl SpaceServer {
    /// Spawns the server over `endpoint`.
    pub fn spawn(endpoint: inproc::Endpoint) -> SpaceServer {
        let space = TupleSpace::new();
        let node = endpoint.id();
        let space2 = space.clone();
        let sender_slot: Arc<Mutex<Option<EndpointSender>>> = Arc::new(Mutex::new(None));
        let slot = Arc::clone(&sender_slot);
        let receiver = endpoint.spawn_receiver(move |incoming| {
            let Ok(msg) = psc_codec::from_bytes::<SpaceMsg>(&incoming.payload) else {
                return;
            };
            let reply = |call: u64, tuple: Option<Tuple>| {
                if let Some(sender) = slot.lock().as_ref() {
                    let bytes = psc_codec::to_bytes(&SpaceMsg::Reply { call, tuple })
                        .expect("space replies encode");
                    let _ = sender.send(incoming.from, bytes);
                }
            };
            match msg {
                SpaceMsg::Out { tuple } => space2.out(tuple),
                SpaceMsg::Rd { call, template } => reply(call, space2.rd(&template)),
                SpaceMsg::Take { call, template } => reply(call, space2.take(&template)),
                SpaceMsg::Reply { .. } => {}
            }
        });
        *sender_slot.lock() = Some(receiver.sender());
        SpaceServer {
            space,
            node,
            _receiver: receiver,
        }
    }

    /// The server's node id (clients address this).
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// Direct access to the hosted space (server-local operations).
    pub fn space(&self) -> &TupleSpace {
        &self.space
    }
}

/// The client half: blocking Linda operations against a remote server.
pub struct SpaceClient {
    server: NodeId,
    sender: EndpointSender,
    pending: Arc<Mutex<HashMap<u64, Sender<Option<Tuple>>>>>,
    next_call: Arc<AtomicU64>,
    _receiver: EndpointHandle,
}

impl SpaceClient {
    /// Connects a client endpoint to the server at `server`.
    pub fn connect(endpoint: inproc::Endpoint, server: NodeId) -> SpaceClient {
        let pending: Arc<Mutex<HashMap<u64, Sender<Option<Tuple>>>>> =
            Arc::new(Mutex::new(HashMap::new()));
        let pending2 = Arc::clone(&pending);
        let receiver = endpoint.spawn_receiver(move |incoming| {
            if let Ok(SpaceMsg::Reply { call, tuple }) =
                psc_codec::from_bytes::<SpaceMsg>(&incoming.payload)
            {
                if let Some(tx) = pending2.lock().remove(&call) {
                    let _ = tx.send(tuple);
                }
            }
        });
        SpaceClient {
            server,
            sender: receiver.sender(),
            pending,
            next_call: Arc::new(AtomicU64::new(1)),
            _receiver: receiver,
        }
    }

    /// Remote `out`.
    ///
    /// # Errors
    ///
    /// Transport failures.
    pub fn out(&self, tuple: Tuple) -> Result<(), SpaceError> {
        let bytes =
            psc_codec::to_bytes(&SpaceMsg::Out { tuple }).expect("space requests encode");
        self.sender
            .send(self.server, bytes)
            .map_err(|e| SpaceError(e.to_string()))
    }

    /// Remote non-blocking `rd`.
    ///
    /// # Errors
    ///
    /// Transport failures or a lost reply.
    pub fn rd(&self, template: &Template) -> Result<Option<Tuple>, SpaceError> {
        self.request(|call| SpaceMsg::Rd {
            call,
            template: template.clone(),
        })
    }

    /// Remote non-blocking `in`.
    ///
    /// # Errors
    ///
    /// Transport failures or a lost reply.
    pub fn take(&self, template: &Template) -> Result<Option<Tuple>, SpaceError> {
        self.request(|call| SpaceMsg::Take {
            call,
            template: template.clone(),
        })
    }

    /// Remote blocking `in`: polls the server until a tuple arrives or the
    /// timeout expires. The polling is the flow coupling pub/sub removes.
    ///
    /// # Errors
    ///
    /// Transport failures.
    pub fn take_wait(
        &self,
        template: &Template,
        timeout: Duration,
    ) -> Result<Option<Tuple>, SpaceError> {
        let deadline = std::time::Instant::now() + timeout;
        loop {
            if let Some(tuple) = self.take(template)? {
                return Ok(Some(tuple));
            }
            if std::time::Instant::now() >= deadline {
                return Ok(None);
            }
            std::thread::sleep(Duration::from_millis(2));
        }
    }

    fn request(
        &self,
        make: impl FnOnce(u64) -> SpaceMsg,
    ) -> Result<Option<Tuple>, SpaceError> {
        let call = self.next_call.fetch_add(1, Ordering::SeqCst);
        let (tx, rx) = bounded(1);
        self.pending.lock().insert(call, tx);
        let bytes = psc_codec::to_bytes(&make(call)).expect("space requests encode");
        self.sender
            .send(self.server, bytes)
            .map_err(|e| SpaceError(e.to_string()))?;
        rx.recv_timeout(Duration::from_secs(5))
            .map_err(|_| SpaceError("reply timed out".into()))
    }
}
