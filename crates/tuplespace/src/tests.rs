use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::Arc;
use std::time::Duration;

use proptest::prelude::*;

use crate::{Slot, Template, Tuple, TupleSpace, TypeTag, Value};

mod matching {
    use super::*;

    #[test]
    fn actuals_match_by_value_with_numeric_coercion() {
        let t = tuple!["quote", 80.0, 10];
        assert!(template![= "quote", = 80, = 10].matches(&t));
        assert!(!template![= "order", = 80, = 10].matches(&t));
        assert!(!template![= "quote", = 81, = 10].matches(&t));
    }

    #[test]
    fn formals_match_by_type() {
        let t = tuple!["quote", "Telco", 80.0, 10, true];
        assert!(template![str, str, float, int, bool].matches(&t));
        assert!(!template![str, str, str, int, bool].matches(&t));
        // Float formals admit integers (widening), int formals reject
        // floats.
        assert!(template![str, str, float, float, bool].matches(&t));
        assert!(!template![str, str, int, int, bool].matches(&t));
    }

    #[test]
    fn arity_must_match_exactly() {
        let t = tuple![1, 2];
        assert!(!template![int].matches(&t));
        assert!(!template![int, int, int].matches(&t));
        assert!(template![int, int].matches(&t));
    }

    #[test]
    fn wildcards_match_anything() {
        let t = tuple![1, "x", false];
        assert!(template![_, _, _].matches(&t));
        assert!(template![= 1, _, bool].matches(&t));
    }

    #[test]
    fn structured_fields_match() {
        let t = Tuple::new(vec![
            Value::from(vec!["a", "b"]),
            Value::record([("k", Value::Int(1))]),
        ]);
        assert!(template![list, record].matches(&t));
        assert!(Template::new(vec![
            Slot::Actual(Value::from(vec!["a", "b"])),
            Slot::Formal(TypeTag::Record)
        ])
        .matches(&t));
    }

    #[test]
    fn empty_template_matches_only_empty_tuple() {
        assert!(template![].matches(&Tuple::default()));
        assert!(!template![].matches(&tuple![1]));
    }
}

mod space_ops {
    use super::*;

    #[test]
    fn rd_is_nondestructive_take_is_destructive() {
        let space = TupleSpace::new();
        space.out(tuple!["a", 1]);
        assert_eq!(space.len(), 1);
        assert!(space.rd(&template![= "a", int]).is_some());
        assert_eq!(space.len(), 1);
        assert!(space.take(&template![= "a", int]).is_some());
        assert!(space.is_empty());
        assert!(space.take(&template![= "a", int]).is_none());
    }

    #[test]
    fn matching_is_fifo_among_candidates() {
        let space = TupleSpace::new();
        space.out(tuple!["x", 1]);
        space.out(tuple!["x", 2]);
        let first = space.take(&template![= "x", int]).unwrap();
        assert_eq!(first.get(1).unwrap(), &Value::Int(1));
    }

    #[test]
    fn blocking_take_wakes_on_out() {
        let space = TupleSpace::new();
        let space2 = space.clone();
        let waiter = std::thread::spawn(move || {
            space2.take_wait(&template![= "late", int], Duration::from_secs(2))
        });
        std::thread::sleep(Duration::from_millis(30));
        space.out(tuple!["late", 9]);
        let got = waiter.join().unwrap().expect("tuple arrives");
        assert_eq!(got.get(1).unwrap(), &Value::Int(9));
        assert!(space.is_empty());
    }

    #[test]
    fn blocking_take_times_out() {
        let space = TupleSpace::new();
        let got = space.take_wait(&template![= "never", int], Duration::from_millis(40));
        assert!(got.is_none());
    }

    #[test]
    fn one_tuple_wakes_exactly_one_taker() {
        let space = TupleSpace::new();
        let winners = Arc::new(AtomicU32::new(0));
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let space = space.clone();
                let winners = winners.clone();
                std::thread::spawn(move || {
                    if space
                        .take_wait(&template![= "one", int], Duration::from_millis(500))
                        .is_some()
                    {
                        winners.fetch_add(1, Ordering::SeqCst);
                    }
                })
            })
            .collect();
        std::thread::sleep(Duration::from_millis(20));
        space.out(tuple!["one", 1]);
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(winners.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn rd_wait_sees_existing_tuple_immediately() {
        let space = TupleSpace::new();
        space.out(tuple!["now", 1]);
        let got = space.rd_wait(&template![= "now", int], Duration::from_millis(10));
        assert!(got.is_some());
        assert_eq!(space.len(), 1);
    }
}

mod reactions {
    use super::*;

    #[test]
    fn reactions_fire_on_matching_out_only() {
        let space = TupleSpace::new();
        let hits = Arc::new(AtomicU32::new(0));
        let h = hits.clone();
        let _reaction = space.react(template![= "quote", float], move |t| {
            assert!(t.get(1).unwrap().as_f64().is_some());
            h.fetch_add(1, Ordering::SeqCst);
        });
        space.out(tuple!["quote", 80.0]);
        space.out(tuple!["order", 80.0]);
        space.out(tuple!["quote", 90.0]);
        assert_eq!(hits.load(Ordering::SeqCst), 2);
        // The reacted tuples stay available (unlike `in`).
        assert_eq!(space.len(), 3);
    }

    #[test]
    fn dropping_the_reaction_unregisters_it() {
        let space = TupleSpace::new();
        let hits = Arc::new(AtomicU32::new(0));
        let h = hits.clone();
        let reaction = space.react(template![str], move |_| {
            h.fetch_add(1, Ordering::SeqCst);
        });
        space.out(tuple!["a"]);
        drop(reaction);
        space.out(tuple!["b"]);
        assert_eq!(hits.load(Ordering::SeqCst), 1);
    }
}

mod remote {
    use super::*;
    use crate::remote::{SpaceClient, SpaceServer};
    use psc_simnet::inproc;

    fn setup() -> (SpaceServer, SpaceClient, SpaceClient) {
        let mut eps = inproc::network(3);
        let c2 = eps.pop().unwrap();
        let c1 = eps.pop().unwrap();
        let s = eps.pop().unwrap();
        let server = SpaceServer::spawn(s);
        let node = server.node();
        (server, SpaceClient::connect(c1, node), SpaceClient::connect(c2, node))
    }

    #[test]
    fn remote_out_rd_take() {
        let (server, producer, consumer) = setup();
        producer.out(tuple!["job", 1]).unwrap();
        // Wait for the out to land.
        let got = consumer
            .take_wait(&template![= "job", int], Duration::from_secs(2))
            .unwrap()
            .expect("job arrives");
        assert_eq!(got.get(1).unwrap(), &Value::Int(1));
        assert!(server.space().is_empty());
        assert_eq!(consumer.rd(&template![= "job", int]).unwrap(), None);
    }

    #[test]
    fn producer_consumer_pipeline() {
        let (_server, producer, consumer) = setup();
        let n = 50;
        let handle = std::thread::spawn(move || {
            let mut got = Vec::new();
            for _ in 0..n {
                let t = consumer
                    .take_wait(&template![= "work", int], Duration::from_secs(5))
                    .unwrap()
                    .expect("work item");
                if let Some(Value::Int(i)) = t.get(1).cloned() {
                    got.push(i);
                }
            }
            got
        });
        for i in 0..n {
            producer.out(tuple!["work", i]).unwrap();
        }
        let mut got = handle.join().unwrap();
        got.sort_unstable();
        assert_eq!(got, (0..n as i64).collect::<Vec<_>>());
    }
}

fn arb_value() -> impl Strategy<Value = Value> {
    prop_oneof![
        any::<bool>().prop_map(Value::Bool),
        (-50i64..50).prop_map(Value::Int),
        (-10.0f64..10.0).prop_map(Value::Float),
        "[a-c]{0,3}".prop_map(Value::Str),
    ]
}

proptest! {
    /// A template built from a tuple's own fields (as actuals) matches it.
    #[test]
    fn prop_self_template_matches(fields in proptest::collection::vec(arb_value(), 0..5)) {
        let t = Tuple::new(fields.clone());
        let template = Template::new(fields.into_iter().map(Slot::Actual).collect());
        prop_assert!(template.matches(&t));
    }

    /// All-wildcard templates match exactly tuples of equal arity.
    #[test]
    fn prop_wildcards_match_by_arity(
        fields in proptest::collection::vec(arb_value(), 0..5),
        arity in 0usize..5,
    ) {
        let t = Tuple::new(fields);
        let template = Template::new(vec![Slot::Wildcard; arity]);
        prop_assert_eq!(template.matches(&t), arity == t.len());
    }

    /// Tuples round-trip through the codec.
    #[test]
    fn prop_tuple_codec_roundtrip(fields in proptest::collection::vec(arb_value(), 0..5)) {
        let t = Tuple::new(fields);
        let bytes = psc_codec::to_bytes(&t).unwrap();
        let back: Tuple = psc_codec::from_bytes(&bytes).unwrap();
        prop_assert_eq!(back, t);
    }
}
