#![warn(missing_docs)]

//! # psc-tuplespace — the Linda substrate
//!
//! The paper treats the tuple space as pub/sub's closest relative and
//! spiritual ancestor (§6.3): `out` corresponds to `publish`, templates
//! with formal and actual arguments are the original content-based
//! subscription scheme, and "very recently, callback mechanisms have also
//! been added (e.g. JavaSpaces …) supporting a publish/subscribe-like
//! interaction". §5.5.2 sketches tuples as an alternative obvent surface.
//!
//! This crate implements the paradigm from scratch:
//!
//! - [`Tuple`] — an ordered sequence of [`Value`]s;
//! - [`Template`] — per-position [`Slot`]s: an *actual* (a value that must
//!   match), a *formal* (a typed placeholder), or a wildcard;
//! - [`TupleSpace`] — a concurrent space with the three Linda primitives
//!   (`out`, `rd`, `in`), their blocking variants, and JavaSpaces-style
//!   *reactions* (callbacks on insertion — the bridge to pub/sub);
//! - [`remote`] — a space server plus blocking clients over the in-process
//!   transport, for the pub/sub-vs-tuple-space comparison (experiment E9).
//!
//! ```
//! use psc_tuplespace::{tuple, template, TupleSpace};
//!
//! let space = TupleSpace::new();
//! space.out(tuple!["quote", "Telco", 80.0]);
//! space.out(tuple!["quote", "Banco", 120.0]);
//!
//! // rd: non-destructive match with an actual and two formals.
//! let t = space.rd(&template![= "quote", str, float]).unwrap();
//! assert_eq!(t.len(), 3);
//!
//! // in: destructive withdrawal of the Telco quote only.
//! let t = space.take(&template![= "quote", = "Telco", float]).unwrap();
//! assert_eq!(t.get(2).unwrap().as_f64(), Some(80.0));
//! assert!(space.take(&template![= "quote", = "Telco", float]).is_none());
//! ```

pub mod remote;

use std::collections::VecDeque;
use std::fmt;
use std::sync::Arc;
use std::time::{Duration, Instant};

use parking_lot::{Condvar, Mutex};
use serde::{Deserialize, Serialize};

pub use psc_filter::Value;

/// An ordered, immutable sequence of values — Linda's data unit.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize, Default)]
pub struct Tuple {
    fields: Vec<Value>,
}

impl Tuple {
    /// Creates a tuple from values.
    pub fn new(fields: Vec<Value>) -> Tuple {
        Tuple { fields }
    }

    /// Number of fields.
    pub fn len(&self) -> usize {
        self.fields.len()
    }

    /// True for the empty tuple.
    pub fn is_empty(&self) -> bool {
        self.fields.is_empty()
    }

    /// The field at `index`.
    pub fn get(&self, index: usize) -> Option<&Value> {
        self.fields.get(index)
    }

    /// All fields.
    pub fn fields(&self) -> &[Value] {
        &self.fields
    }
}

impl fmt::Display for Tuple {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, v) in self.fields.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{v}")?;
        }
        write!(f, ")")
    }
}

/// The dynamic type a formal slot requires.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum TypeTag {
    /// Booleans.
    Bool,
    /// Signed or unsigned integers.
    Int,
    /// Floats (and integers, which widen).
    Float,
    /// Strings.
    Str,
    /// Lists.
    List,
    /// Records.
    Record,
}

impl TypeTag {
    fn admits(self, value: &Value) -> bool {
        match self {
            TypeTag::Bool => matches!(value, Value::Bool(_)),
            TypeTag::Int => matches!(value, Value::Int(_) | Value::UInt(_)),
            TypeTag::Float => value.as_f64().is_some(),
            TypeTag::Str => matches!(value, Value::Str(_)),
            TypeTag::List => matches!(value, Value::List(_)),
            TypeTag::Record => matches!(value, Value::Record(_)),
        }
    }
}

/// One position of a template.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Slot {
    /// An *actual*: the candidate field must equal this value (numeric
    /// coercion applies, as in [`Value::loose_eq`]).
    Actual(Value),
    /// A *formal*: the candidate field must have this type.
    Formal(TypeTag),
    /// Matches anything.
    Wildcard,
}

/// An anti-tuple: what `rd`/`in` match against.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct Template {
    slots: Vec<Slot>,
}

impl Template {
    /// Creates a template from slots.
    pub fn new(slots: Vec<Slot>) -> Template {
        Template { slots }
    }

    /// Number of slots (required tuple arity).
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// True for the empty template (matches only the empty tuple).
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// The slots.
    pub fn slots(&self) -> &[Slot] {
        &self.slots
    }

    /// True when `tuple` matches: same arity, every slot admits the
    /// corresponding field.
    pub fn matches(&self, tuple: &Tuple) -> bool {
        self.slots.len() == tuple.len()
            && self.slots.iter().zip(tuple.fields()).all(|(slot, field)| {
                match slot {
                    Slot::Actual(v) => v.loose_eq(field),
                    Slot::Formal(tag) => tag.admits(field),
                    Slot::Wildcard => true,
                }
            })
    }
}

/// Builds a [`Tuple`] from expressions convertible to [`Value`].
///
/// ```
/// use psc_tuplespace::tuple;
/// let t = tuple!["quote", 80.0, 10];
/// assert_eq!(t.len(), 3);
/// ```
#[macro_export]
macro_rules! tuple {
    ($($field:expr),* $(,)?) => {
        $crate::Tuple::new(vec![$($crate::Value::from($field)),*])
    };
}

/// Builds a [`Template`]: `= expr` for actuals, a type keyword (`bool`,
/// `int`, `float`, `str`, `list`, `record`) for formals, `_` for wildcards.
///
/// ```
/// use psc_tuplespace::{template, tuple};
/// let t = template![= "quote", str, float, _];
/// assert!(t.matches(&tuple!["quote", "Telco", 80.0, true]));
/// assert!(!t.matches(&tuple!["order", "Telco", 80.0, true]));
/// ```
#[macro_export]
macro_rules! template {
    ($($slot:tt)*) => {
        $crate::Template::new($crate::__template_slots!([] $($slot)*))
    };
}

/// Internal slot muncher for [`template!`]; not public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __template_slots {
    ([$($acc:expr,)*]) => { vec![$($acc,)*] };
    ([$($acc:expr,)*] = $value:expr) => {
        vec![$($acc,)* $crate::Slot::Actual($crate::Value::from($value))]
    };
    ([$($acc:expr,)*] = $value:expr, $($rest:tt)*) => {
        $crate::__template_slots!([$($acc,)* $crate::Slot::Actual($crate::Value::from($value)),] $($rest)*)
    };
    ([$($acc:expr,)*] _ $(, $($rest:tt)*)?) => {
        $crate::__template_slots!([$($acc,)* $crate::Slot::Wildcard,] $($($rest)*)?)
    };
    ([$($acc:expr,)*] bool $(, $($rest:tt)*)?) => {
        $crate::__template_slots!([$($acc,)* $crate::Slot::Formal($crate::TypeTag::Bool),] $($($rest)*)?)
    };
    ([$($acc:expr,)*] int $(, $($rest:tt)*)?) => {
        $crate::__template_slots!([$($acc,)* $crate::Slot::Formal($crate::TypeTag::Int),] $($($rest)*)?)
    };
    ([$($acc:expr,)*] float $(, $($rest:tt)*)?) => {
        $crate::__template_slots!([$($acc,)* $crate::Slot::Formal($crate::TypeTag::Float),] $($($rest)*)?)
    };
    ([$($acc:expr,)*] str $(, $($rest:tt)*)?) => {
        $crate::__template_slots!([$($acc,)* $crate::Slot::Formal($crate::TypeTag::Str),] $($($rest)*)?)
    };
    ([$($acc:expr,)*] list $(, $($rest:tt)*)?) => {
        $crate::__template_slots!([$($acc,)* $crate::Slot::Formal($crate::TypeTag::List),] $($($rest)*)?)
    };
    ([$($acc:expr,)*] record $(, $($rest:tt)*)?) => {
        $crate::__template_slots!([$($acc,)* $crate::Slot::Formal($crate::TypeTag::Record),] $($($rest)*)?)
    };
}

/// Handle to a registered reaction; dropping it unregisters the callback.
#[derive(Debug)]
pub struct Reaction {
    space: TupleSpace,
    id: u64,
}

impl Drop for Reaction {
    fn drop(&mut self) {
        self.space.inner.state.lock().reactions.retain(|r| r.id != self.id);
    }
}

type ReactionFn = Arc<dyn Fn(&Tuple) + Send + Sync>;

struct ReactionEntry {
    id: u64,
    template: Template,
    callback: ReactionFn,
}

#[derive(Default)]
struct SpaceState {
    tuples: VecDeque<Tuple>,
    reactions: Vec<ReactionEntry>,
    next_reaction: u64,
}

struct SpaceInner {
    state: Mutex<SpaceState>,
    changed: Condvar,
}

/// A concurrent Linda tuple space; cloning shares the space.
#[derive(Clone)]
pub struct TupleSpace {
    inner: Arc<SpaceInner>,
}

impl Default for TupleSpace {
    fn default() -> Self {
        TupleSpace::new()
    }
}

impl TupleSpace {
    /// Creates an empty space.
    pub fn new() -> TupleSpace {
        TupleSpace {
            inner: Arc::new(SpaceInner {
                state: Mutex::new(SpaceState::default()),
                changed: Condvar::new(),
            }),
        }
    }

    /// Linda `out`: inserts a tuple, waking blocked readers and firing
    /// matching reactions (outside the lock).
    pub fn out(&self, tuple: Tuple) {
        let fired: Vec<ReactionFn> = {
            let mut state = self.inner.state.lock();
            let fired = state
                .reactions
                .iter()
                .filter(|r| r.template.matches(&tuple))
                .map(|r| Arc::clone(&r.callback))
                .collect();
            state.tuples.push_back(tuple.clone());
            self.inner.changed.notify_all();
            fired
        };
        for callback in fired {
            callback(&tuple);
        }
    }

    /// Linda `rd`: non-destructive, non-blocking match (oldest first).
    pub fn rd(&self, template: &Template) -> Option<Tuple> {
        let state = self.inner.state.lock();
        state.tuples.iter().find(|t| template.matches(t)).cloned()
    }

    /// Linda `in`: destructive, non-blocking withdrawal (oldest first).
    /// Named `take` because `in` is a Rust keyword (JavaSpaces made the
    /// same rename).
    pub fn take(&self, template: &Template) -> Option<Tuple> {
        let mut state = self.inner.state.lock();
        let pos = state.tuples.iter().position(|t| template.matches(t))?;
        state.tuples.remove(pos)
    }

    /// Blocking `rd` with a timeout.
    pub fn rd_wait(&self, template: &Template, timeout: Duration) -> Option<Tuple> {
        let deadline = Instant::now() + timeout;
        let mut state = self.inner.state.lock();
        loop {
            if let Some(t) = state.tuples.iter().find(|t| template.matches(t)) {
                return Some(t.clone());
            }
            let now = Instant::now();
            if now >= deadline {
                return None;
            }
            if self
                .inner
                .changed
                .wait_until(&mut state, deadline)
                .timed_out()
            {
                return state.tuples.iter().find(|t| template.matches(t)).cloned();
            }
        }
    }

    /// Blocking `in` with a timeout. Exactly one blocked taker wins any
    /// given tuple.
    pub fn take_wait(&self, template: &Template, timeout: Duration) -> Option<Tuple> {
        let deadline = Instant::now() + timeout;
        let mut state = self.inner.state.lock();
        loop {
            if let Some(pos) = state.tuples.iter().position(|t| template.matches(t)) {
                return state.tuples.remove(pos);
            }
            let now = Instant::now();
            if now >= deadline {
                return None;
            }
            if self
                .inner
                .changed
                .wait_until(&mut state, deadline)
                .timed_out()
            {
                let pos = state.tuples.iter().position(|t| template.matches(t))?;
                return state.tuples.remove(pos);
            }
        }
    }

    /// Registers a JavaSpaces-style reaction: `callback` runs for every
    /// subsequently inserted tuple matching `template` (the pub/sub-like
    /// callback of §6.3.3). The tuple stays in the space.
    pub fn react(
        &self,
        template: Template,
        callback: impl Fn(&Tuple) + Send + Sync + 'static,
    ) -> Reaction {
        let mut state = self.inner.state.lock();
        state.next_reaction += 1;
        let id = state.next_reaction;
        state.reactions.push(ReactionEntry {
            id,
            template,
            callback: Arc::new(callback),
        });
        Reaction {
            space: self.clone(),
            id,
        }
    }

    /// Number of stored tuples.
    pub fn len(&self) -> usize {
        self.inner.state.lock().tuples.len()
    }

    /// True when the space holds no tuples.
    pub fn is_empty(&self) -> bool {
        self.inner.state.lock().tuples.is_empty()
    }
}

impl fmt::Debug for TupleSpace {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("TupleSpace")
            .field("tuples", &self.len())
            .finish()
    }
}

#[cfg(test)]
mod tests;
