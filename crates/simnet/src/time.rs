//! Virtual time.
//!
//! The simulator's clock is a plain microsecond counter; nothing in the
//! workspace reads wall-clock time inside simulated protocols, which is what
//! makes runs reproducible.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

use serde::{Deserialize, Serialize};

/// A point in virtual time (microseconds since simulation start).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimTime(u64);

/// A span of virtual time (microseconds).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct Duration(u64);

impl SimTime {
    /// Simulation start.
    pub const ZERO: SimTime = SimTime(0);

    /// Constructs from microseconds.
    pub const fn from_micros(us: u64) -> SimTime {
        SimTime(us)
    }

    /// Constructs from milliseconds.
    pub const fn from_millis(ms: u64) -> SimTime {
        SimTime(ms * 1_000)
    }

    /// Constructs from seconds.
    pub const fn from_secs(s: u64) -> SimTime {
        SimTime(s * 1_000_000)
    }

    /// The time as microseconds.
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// The time as (truncated) milliseconds.
    pub const fn as_millis(self) -> u64 {
        self.0 / 1_000
    }

    /// Saturating difference `self - earlier`.
    pub fn since(self, earlier: SimTime) -> Duration {
        Duration(self.0.saturating_sub(earlier.0))
    }
}

impl Duration {
    /// The zero duration.
    pub const ZERO: Duration = Duration(0);

    /// Constructs from microseconds.
    pub const fn from_micros(us: u64) -> Duration {
        Duration(us)
    }

    /// Constructs from milliseconds.
    pub const fn from_millis(ms: u64) -> Duration {
        Duration(ms * 1_000)
    }

    /// Constructs from seconds.
    pub const fn from_secs(s: u64) -> Duration {
        Duration(s * 1_000_000)
    }

    /// The span as microseconds.
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// The span as (truncated) milliseconds.
    pub const fn as_millis(self) -> u64 {
        self.0 / 1_000
    }

    /// Scales the duration by an integer factor.
    pub const fn times(self, n: u64) -> Duration {
        Duration(self.0 * n)
    }
}

impl Add<Duration> for SimTime {
    type Output = SimTime;

    fn add(self, rhs: Duration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<Duration> for SimTime {
    fn add_assign(&mut self, rhs: Duration) {
        self.0 += rhs.0;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = Duration;

    fn sub(self, rhs: SimTime) -> Duration {
        Duration(self.0.saturating_sub(rhs.0))
    }
}

impl Add for Duration {
    type Output = Duration;

    fn add(self, rhs: Duration) -> Duration {
        Duration(self.0 + rhs.0)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t={}us", self.0)
    }
}

impl fmt::Display for Duration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}us", self.0)
    }
}
