//! Threaded in-process transport.
//!
//! The simulator runs protocols deterministically; examples want the real
//! thing — actual threads, blocking handlers, thread policies (paper
//! §3.3.5). This module wires N endpoints all-to-all with unbounded
//! channels; each endpoint either polls explicitly or spawns a receiver
//! thread that invokes a handler per message.

use std::collections::HashMap;
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use crossbeam::channel::{unbounded, Receiver, RecvTimeoutError, Sender};

use crate::node::NodeId;

/// A message as received from the transport.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Incoming {
    /// Sending endpoint.
    pub from: NodeId,
    /// Raw payload.
    pub payload: Vec<u8>,
}

/// One endpoint of a fully connected in-process network.
pub struct Endpoint {
    id: NodeId,
    peers: Arc<HashMap<NodeId, Sender<Incoming>>>,
    rx: Receiver<Incoming>,
}

/// Creates `n` endpoints wired all-to-all.
///
/// ```
/// use psc_simnet::inproc;
///
/// let mut eps = inproc::network(2);
/// let b = eps.pop().unwrap();
/// let a = eps.pop().unwrap();
/// a.send(b.id(), b"hi".to_vec()).unwrap();
/// let msg = b.recv_timeout(std::time::Duration::from_secs(1)).unwrap();
/// assert_eq!(msg.payload, b"hi");
/// assert_eq!(msg.from, a.id());
/// ```
pub fn network(n: usize) -> Vec<Endpoint> {
    let mut senders = HashMap::new();
    let mut receivers = Vec::new();
    for i in 0..n {
        let (tx, rx) = unbounded();
        senders.insert(NodeId(i as u64), tx);
        receivers.push(rx);
    }
    let senders = Arc::new(senders);
    receivers
        .into_iter()
        .enumerate()
        .map(|(i, rx)| Endpoint {
            id: NodeId(i as u64),
            peers: Arc::clone(&senders),
            rx,
        })
        .collect()
}

/// Error returned when sending to an unknown or disconnected endpoint.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SendError {
    /// The endpoint the send targeted.
    pub to: NodeId,
}

impl std::fmt::Display for SendError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "endpoint {} is unknown or disconnected", self.to)
    }
}

impl std::error::Error for SendError {}

impl Endpoint {
    /// This endpoint's id.
    pub fn id(&self) -> NodeId {
        self.id
    }

    /// Ids of all endpoints in the network (including this one).
    pub fn peer_ids(&self) -> Vec<NodeId> {
        let mut ids: Vec<NodeId> = self.peers.keys().copied().collect();
        ids.sort();
        ids
    }

    /// Sends `payload` to `to` (self-sends allowed).
    ///
    /// # Errors
    ///
    /// [`SendError`] when the peer does not exist or its receiver is gone.
    pub fn send(&self, to: NodeId, payload: Vec<u8>) -> Result<(), SendError> {
        let sender = self.peers.get(&to).ok_or(SendError { to })?;
        sender
            .send(Incoming {
                from: self.id,
                payload,
            })
            .map_err(|_| SendError { to })
    }

    /// Sends `payload` to every other endpoint.
    ///
    /// # Errors
    ///
    /// Returns the first failing peer, after attempting all sends.
    pub fn broadcast(&self, payload: &[u8]) -> Result<(), SendError> {
        let mut first_err = None;
        for (&to, sender) in self.peers.iter() {
            if to == self.id {
                continue;
            }
            let result = sender.send(Incoming {
                from: self.id,
                payload: payload.to_vec(),
            });
            if result.is_err() && first_err.is_none() {
                first_err = Some(SendError { to });
            }
        }
        match first_err {
            None => Ok(()),
            Some(err) => Err(err),
        }
    }

    /// Blocking receive.
    ///
    /// # Errors
    ///
    /// Returns `Err` when every sender is gone.
    pub fn recv(&self) -> Result<Incoming, crossbeam::channel::RecvError> {
        self.rx.recv()
    }

    /// Blocking receive with a timeout.
    ///
    /// # Errors
    ///
    /// Timeout or disconnection.
    pub fn recv_timeout(&self, timeout: Duration) -> Result<Incoming, RecvTimeoutError> {
        self.rx.recv_timeout(timeout)
    }

    /// Non-blocking receive.
    pub fn try_recv(&self) -> Option<Incoming> {
        self.rx.try_recv().ok()
    }

    /// Consumes the endpoint, spawning a receiver thread that calls
    /// `handler` for every incoming message until all senders disconnect or
    /// [`EndpointHandle::shutdown`] is called. Sending from inside the
    /// handler is possible through the returned handle's
    /// [`EndpointHandle::sender`].
    pub fn spawn_receiver(
        self,
        mut handler: impl FnMut(Incoming) + Send + 'static,
    ) -> EndpointHandle {
        let id = self.id;
        let peers = Arc::clone(&self.peers);
        let (stop_tx, stop_rx) = unbounded::<()>();
        let rx = self.rx;
        let thread = std::thread::Builder::new()
            .name(format!("inproc-{id}"))
            .spawn(move || loop {
                crossbeam::channel::select! {
                    recv(rx) -> msg => match msg {
                        Ok(incoming) => handler(incoming),
                        Err(_) => break,
                    },
                    recv(stop_rx) -> _ => break,
                }
            })
            .expect("spawn inproc receiver thread");
        EndpointHandle {
            id,
            peers,
            stop: stop_tx,
            thread: Some(thread),
        }
    }
}

impl std::fmt::Debug for Endpoint {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Endpoint")
            .field("id", &self.id)
            .field("peers", &self.peers.len())
            .finish()
    }
}

/// Sending half of an endpoint whose receiver runs on a thread.
#[derive(Clone)]
pub struct EndpointSender {
    id: NodeId,
    peers: Arc<HashMap<NodeId, Sender<Incoming>>>,
}

impl EndpointSender {
    /// This endpoint's id.
    pub fn id(&self) -> NodeId {
        self.id
    }

    /// Ids of all endpoints in the network (including this one).
    pub fn peer_ids(&self) -> Vec<NodeId> {
        let mut ids: Vec<NodeId> = self.peers.keys().copied().collect();
        ids.sort();
        ids
    }

    /// Sends `payload` to `to`.
    ///
    /// # Errors
    ///
    /// [`SendError`] when the peer does not exist or its receiver is gone.
    pub fn send(&self, to: NodeId, payload: Vec<u8>) -> Result<(), SendError> {
        let sender = self.peers.get(&to).ok_or(SendError { to })?;
        sender
            .send(Incoming {
                from: self.id,
                payload,
            })
            .map_err(|_| SendError { to })
    }
}

impl std::fmt::Debug for EndpointSender {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EndpointSender").field("id", &self.id).finish()
    }
}

/// Handle to a spawned receiver thread.
#[derive(Debug)]
pub struct EndpointHandle {
    id: NodeId,
    peers: Arc<HashMap<NodeId, Sender<Incoming>>>,
    stop: Sender<()>,
    thread: Option<JoinHandle<()>>,
}

impl EndpointHandle {
    /// This endpoint's id.
    pub fn id(&self) -> NodeId {
        self.id
    }

    /// A cloneable sender usable from any thread (including the handler).
    pub fn sender(&self) -> EndpointSender {
        EndpointSender {
            id: self.id,
            peers: Arc::clone(&self.peers),
        }
    }

    /// Stops the receiver thread and joins it.
    pub fn shutdown(mut self) {
        let _ = self.stop.send(());
        if let Some(thread) = self.thread.take() {
            let _ = thread.join();
        }
    }
}

impl Drop for EndpointHandle {
    fn drop(&mut self) {
        let _ = self.stop.send(());
        if let Some(thread) = self.thread.take() {
            let _ = thread.join();
        }
    }
}
