//! Driving a [`Node`] outside the simulator.
//!
//! The sans-io contract says a node is a plain state machine: every
//! callback receives a [`Ctx`] and queues effects instead of doing I/O.
//! Inside [`crate::SimNet`] those effects feed the virtual-time event
//! queue; a *real* transport needs the same callbacks but wants to apply
//! the effects itself (write sockets, arm wall-clock timers). `Ctx` is
//! deliberately not constructible from outside this crate, so the bridge
//! lives here: [`NodeHost`] owns one node plus its stable storage and
//! RNG, runs callbacks at host-supplied timestamps, and hands the queued
//! effects back as [`HostEffect`]s for the caller to execute.
//!
//! Timer-cancellation semantics match the simulator exactly: a cancelled
//! timer that is already queued is suppressed *at fire time* (the host
//! keeps calling [`NodeHost::timer`]; cancelled ids are dropped here), so
//! a protocol observes the same schedule under both drivers.

use std::any::Any;
use std::collections::HashSet;

use psc_codec::WireBytes;
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::node::{Ctx, Effect, Node, NodeId, TimerId};
use crate::storage::Storage;
use crate::time::{Duration, SimTime};

/// An effect a hosted node requested from its transport.
///
/// Sends and timer arms are returned to the caller; timer *cancels* are
/// absorbed by the host (see [`NodeHost::timer`]), mirroring the
/// simulator's fire-time suppression.
#[derive(Debug)]
pub enum HostEffect {
    /// Deliver `payload` to node `to`. `to` may equal the hosted node's
    /// own id — the simulator loops self-sends back, and transports must
    /// do the same.
    Send {
        /// Destination node.
        to: NodeId,
        /// Shared encoded buffer (clone the handle per destination).
        payload: WireBytes,
    },
    /// Arm a timer to fire `after` the current callback's timestamp.
    SetTimer {
        /// Timer id to report back via [`NodeHost::timer`].
        id: TimerId,
        /// Delay relative to the callback timestamp.
        after: Duration,
    },
}

/// Hosts one [`Node`] outside the simulator: same callbacks, same effect
/// semantics, caller-supplied clock.
pub struct NodeHost {
    id: NodeId,
    node: Box<dyn Node>,
    storage: Storage,
    rng: StdRng,
    next_timer: u64,
    cancelled: HashSet<TimerId>,
    scratch: Vec<Effect>,
}

impl NodeHost {
    /// Creates a host for `node`, identified as `id`, with a seeded RNG
    /// (deterministic given the same seed and call sequence).
    pub fn new(id: NodeId, node: Box<dyn Node>, seed: u64) -> NodeHost {
        NodeHost {
            id,
            node,
            storage: Storage::new(),
            rng: StdRng::seed_from_u64(seed),
            next_timer: 0,
            cancelled: HashSet::new(),
            scratch: Vec::new(),
        }
    }

    /// Creates a host whose stable storage is pre-populated — how a real
    /// transport hands back state reloaded from disk before the node's
    /// first callback runs.
    pub fn with_storage(id: NodeId, node: Box<dyn Node>, seed: u64, storage: Storage) -> NodeHost {
        let mut host = NodeHost::new(id, node, seed);
        host.storage = storage;
        host
    }

    /// The hosted node's id.
    pub fn id(&self) -> NodeId {
        self.id
    }

    /// The hosted node's stable storage (e.g. to drain the WAL journal a
    /// file backend mirrors to disk after each callback).
    pub fn storage_mut(&mut self) -> &mut Storage {
        &mut self.storage
    }

    fn run(&mut self, now: SimTime, f: impl FnOnce(&mut dyn Node, &mut Ctx<'_>)) -> Vec<HostEffect> {
        debug_assert!(self.scratch.is_empty());
        let mut ctx = Ctx {
            node: self.id,
            now,
            effects: &mut self.scratch,
            storage: &mut self.storage,
            rng: &mut self.rng,
            next_timer: &mut self.next_timer,
        };
        f(self.node.as_mut(), &mut ctx);
        let mut out = Vec::with_capacity(self.scratch.len());
        for effect in self.scratch.drain(..) {
            match effect {
                Effect::Send { to, payload, .. } => out.push(HostEffect::Send { to, payload }),
                Effect::SetTimer { id, after, .. } => {
                    // Re-arming an id that was cancelled earlier must fire.
                    self.cancelled.remove(&id);
                    out.push(HostEffect::SetTimer { id, after });
                }
                Effect::CancelTimer { id, .. } => {
                    self.cancelled.insert(id);
                }
            }
        }
        out
    }

    /// Runs `on_start` at `now`.
    pub fn start(&mut self, now: SimTime) -> Vec<HostEffect> {
        self.run(now, |node, ctx| node.on_start(ctx))
    }

    /// Delivers `payload` from `from` at `now`.
    pub fn message(&mut self, now: SimTime, from: NodeId, payload: &[u8]) -> Vec<HostEffect> {
        self.run(now, |node, ctx| node.on_message(ctx, from, payload))
    }

    /// Fires timer `id` at `now`. Returns `None` (and runs nothing) if the
    /// timer was cancelled since it was armed — the caller does not need
    /// to track cancellation itself, matching [`crate::SimNet`]'s
    /// fire-time suppression.
    pub fn timer(&mut self, now: SimTime, id: TimerId) -> Option<Vec<HostEffect>> {
        if self.cancelled.remove(&id) {
            return None;
        }
        Some(self.run(now, |node, ctx| node.on_timer(ctx, id)))
    }

    /// Runs `on_recover` at `now` (the node value itself must already be
    /// the post-crash rebuild; storage is preserved by this host).
    pub fn recover(&mut self, now: SimTime) -> Vec<HostEffect> {
        self.run(now, |node, ctx| node.on_recover(ctx))
    }

    /// Runs an arbitrary closure against the node with a live `Ctx` —
    /// the out-of-band injection hook transports use for local API calls
    /// (publish, subscribe) that must queue effects like any callback.
    pub fn act(
        &mut self,
        now: SimTime,
        f: impl FnOnce(&mut dyn Node, &mut Ctx<'_>),
    ) -> Vec<HostEffect> {
        self.run(now, f)
    }

    /// Downcasts the hosted node to a concrete type (read/modify without a
    /// `Ctx`; effects cannot be queued here).
    pub fn node_mut<T: Any>(&mut self) -> Option<&mut T> {
        self.node.as_any_mut().downcast_mut::<T>()
    }
}
