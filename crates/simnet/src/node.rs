//! The node interface: what a simulated address space implements.

use std::any::Any;
use std::fmt;

use psc_codec::WireBytes;
use rand::RngCore;
use serde::{Deserialize, Serialize};

use crate::storage::Storage;
use crate::time::{Duration, SimTime};

/// Identifier of a simulated node (address space / process).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize,
)]
pub struct NodeId(pub u64);

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// Identifier of a pending timer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TimerId(pub u64);

/// Behaviour of a simulated node. Implementations are plain state machines:
/// all I/O goes through the [`Ctx`] passed to each callback, which is what
/// keeps protocols testable step by step and the schedule deterministic.
pub trait Node: Send {
    /// Called once when the node is added (and *not* on recovery).
    fn on_start(&mut self, _ctx: &mut Ctx<'_>) {}

    /// Called for every delivered message.
    fn on_message(&mut self, ctx: &mut Ctx<'_>, from: NodeId, payload: &[u8]);

    /// Called when a timer set through [`Ctx::set_timer`] fires.
    fn on_timer(&mut self, _ctx: &mut Ctx<'_>, _timer: TimerId) {}

    /// Called on the **fresh** node value after a crash–recover cycle;
    /// volatile state is gone, [`Ctx::storage`] persists.
    fn on_recover(&mut self, _ctx: &mut Ctx<'_>) {}

    /// Downcast support so tests and drivers can reach the concrete node
    /// type behind `dyn Node`. Implement as `fn as_any_mut(&mut self) ->
    /// &mut dyn Any { self }`.
    fn as_any_mut(&mut self) -> &mut dyn Any;
}

/// Side-effect interface handed to node callbacks.
///
/// All sends, timers, randomness and stable storage go through the context;
/// the simulator applies latency/loss/partitions and keeps the global event
/// order deterministic.
pub struct Ctx<'a> {
    pub(crate) node: NodeId,
    pub(crate) now: SimTime,
    pub(crate) effects: &'a mut Vec<Effect>,
    pub(crate) storage: &'a mut Storage,
    pub(crate) rng: &'a mut dyn RngCore,
    pub(crate) next_timer: &'a mut u64,
}

/// An effect queued by a node callback, applied by the simulator afterwards.
#[derive(Debug)]
pub(crate) enum Effect {
    Send {
        from: NodeId,
        to: NodeId,
        payload: WireBytes,
    },
    SetTimer {
        node: NodeId,
        id: TimerId,
        after: Duration,
    },
    CancelTimer {
        node: NodeId,
        id: TimerId,
    },
}

impl Ctx<'_> {
    /// This node's id.
    pub fn id(&self) -> NodeId {
        self.node
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Sends `payload` to `to` (possibly to itself). Delivery is subject to
    /// the simulation's latency, loss and partition configuration.
    ///
    /// Fan-out callers should pass a shared [`WireBytes`] (clone the handle
    /// per destination) so the encoded buffer is never deep-copied.
    pub fn send(&mut self, to: NodeId, payload: impl Into<WireBytes>) {
        self.effects.push(Effect::Send {
            from: self.node,
            to,
            payload: payload.into(),
        });
    }

    /// Arms a timer that fires on this node after `after`.
    pub fn set_timer(&mut self, after: Duration) -> TimerId {
        *self.next_timer += 1;
        let id = TimerId(*self.next_timer);
        self.effects.push(Effect::SetTimer {
            node: self.node,
            id,
            after,
        });
        id
    }

    /// Cancels a pending timer; firing of already-queued timers is
    /// suppressed.
    pub fn cancel_timer(&mut self, id: TimerId) {
        self.effects.push(Effect::CancelTimer {
            node: self.node,
            id,
        });
    }

    /// This node's stable storage: survives crashes, not visible to other
    /// nodes.
    pub fn storage(&mut self) -> &mut Storage {
        self.storage
    }

    /// Deterministic randomness (one generator per simulation).
    pub fn rng(&mut self) -> &mut dyn RngCore {
        self.rng
    }
}
