use std::any::Any;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use proptest::prelude::*;

use crate::{Ctx, Duration, LatencyModel, Node, NodeId, SimConfig, SimNet, SimTime, TimerId};

/// Records everything that happens to it.
#[derive(Default)]
struct Recorder {
    messages: Vec<(NodeId, Vec<u8>)>,
    timers: Vec<TimerId>,
    recovered: usize,
    started: usize,
}

impl Node for Recorder {
    fn on_start(&mut self, _ctx: &mut Ctx<'_>) {
        self.started += 1;
    }

    fn on_message(&mut self, _ctx: &mut Ctx<'_>, from: NodeId, payload: &[u8]) {
        self.messages.push((from, payload.to_vec()));
    }

    fn on_timer(&mut self, _ctx: &mut Ctx<'_>, timer: TimerId) {
        self.timers.push(timer);
    }

    fn on_recover(&mut self, _ctx: &mut Ctx<'_>) {
        self.recovered += 1;
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

/// Forwards every message to a fixed target.
struct Forwarder {
    target: NodeId,
}

impl Node for Forwarder {
    fn on_message(&mut self, ctx: &mut Ctx<'_>, _from: NodeId, payload: &[u8]) {
        ctx.send(self.target, payload.to_vec());
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

#[test]
fn messages_are_delivered_with_latency() {
    let mut sim = SimNet::new(SimConfig::default());
    let a = sim.add_node("a", || Box::<Recorder>::default());
    let b = sim.add_node("b", || Box::<Recorder>::default());
    sim.send_external(a, b, b"hello".to_vec());
    sim.run_to_quiescence();
    assert!(sim.now() > SimTime::ZERO);
    let rec: &mut Recorder = sim.node_mut(b).unwrap();
    assert_eq!(rec.messages, vec![(a, b"hello".to_vec())]);
    assert_eq!(rec.started, 1);
}

#[test]
fn identical_seeds_produce_identical_schedules() {
    fn run(seed: u64) -> (u64, u64, u64) {
        let mut sim = SimNet::new(SimConfig {
            seed,
            drop_probability: 0.3,
            ..SimConfig::default()
        });
        let a = sim.add_node("a", || Box::<Recorder>::default());
        let b = sim.add_node("b", move || Box::new(Forwarder { target: a }));
        for i in 0..50u8 {
            sim.send_external(a, b, vec![i]);
        }
        sim.run_to_quiescence();
        let stats = sim.stats();
        (stats.delivered, stats.dropped_loss, sim.now().as_micros())
    }
    assert_eq!(run(7), run(7));
    assert_ne!(run(7), run(8)); // overwhelmingly likely with 30% loss
}

#[test]
fn loss_rate_is_respected_approximately() {
    let mut sim = SimNet::new(SimConfig {
        drop_probability: 0.5,
        ..SimConfig::default()
    });
    let a = sim.add_node("a", || Box::<Recorder>::default());
    let b = sim.add_node("b", || Box::<Recorder>::default());
    for _ in 0..1000 {
        sim.send_external(a, b, vec![0]);
    }
    sim.run_to_quiescence();
    let stats = sim.stats();
    assert_eq!(stats.delivered + stats.dropped_loss, 1000);
    assert!(
        (350..=650).contains(&stats.dropped_loss),
        "loss {} outside tolerance",
        stats.dropped_loss
    );
}

#[test]
fn self_sends_are_never_dropped() {
    let mut sim = SimNet::new(SimConfig {
        drop_probability: 1.0,
        ..SimConfig::default()
    });
    let a = sim.add_node("a", || Box::<Recorder>::default());
    sim.send_external(a, a, b"self".to_vec());
    sim.run_to_quiescence();
    let rec: &mut Recorder = sim.node_mut(a).unwrap();
    assert_eq!(rec.messages.len(), 1);
}

#[test]
fn partitions_block_and_heal() {
    let mut sim = SimNet::new(SimConfig::default());
    let a = sim.add_node("a", || Box::<Recorder>::default());
    let b = sim.add_node("b", || Box::<Recorder>::default());
    sim.partition(&[&[a], &[b]]);
    sim.send_external(a, b, b"blocked".to_vec());
    sim.run_to_quiescence();
    assert_eq!(sim.stats().dropped_partition, 1);
    sim.heal_partition();
    sim.send_external(a, b, b"through".to_vec());
    sim.run_to_quiescence();
    let rec: &mut Recorder = sim.node_mut(b).unwrap();
    assert_eq!(rec.messages, vec![(a, b"through".to_vec())]);
}

#[test]
fn timers_fire_in_order_and_cancel() {
    struct TimerNode {
        fired: Vec<u64>,
        cancel_me: Option<TimerId>,
    }
    impl Node for TimerNode {
        fn on_start(&mut self, ctx: &mut Ctx<'_>) {
            let _t1 = ctx.set_timer(Duration::from_millis(10));
            let t2 = ctx.set_timer(Duration::from_millis(5));
            let t3 = ctx.set_timer(Duration::from_millis(20));
            self.cancel_me = Some(t3);
            let _ = t2;
        }
        fn on_message(&mut self, _ctx: &mut Ctx<'_>, _from: NodeId, _payload: &[u8]) {}
        fn on_timer(&mut self, ctx: &mut Ctx<'_>, timer: TimerId) {
            self.fired.push(ctx.now().as_millis());
            if let Some(t) = self.cancel_me.take() {
                ctx.cancel_timer(t);
            }
            let _ = timer;
        }
        fn as_any_mut(&mut self) -> &mut dyn Any {
            self
        }
    }
    let mut sim = SimNet::new(SimConfig::default());
    let a = sim.add_node("a", || {
        Box::new(TimerNode {
            fired: vec![],
            cancel_me: None,
        })
    });
    sim.run_to_quiescence();
    let node: &mut TimerNode = sim.node_mut(a).unwrap();
    // The 20ms timer was cancelled by the first firing (5ms).
    assert_eq!(node.fired, vec![5, 10]);
}

#[test]
fn crash_drops_messages_and_recover_rebuilds_with_storage() {
    struct Persistent;
    impl Node for Persistent {
        fn on_message(&mut self, ctx: &mut Ctx<'_>, _from: NodeId, payload: &[u8]) {
            let count: u64 = ctx.storage().get("count").unwrap().unwrap_or(0);
            ctx.storage().put("count", &(count + 1)).unwrap();
            let _ = payload;
        }
        fn as_any_mut(&mut self) -> &mut dyn Any {
            self
        }
    }

    let mut sim = SimNet::new(SimConfig::default());
    let a = sim.add_node("a", || Box::<Recorder>::default());
    let b = sim.add_node("b", || Box::new(Persistent));

    sim.send_external(a, b, vec![1]);
    sim.run_to_quiescence();
    assert_eq!(sim.storage(b).unwrap().get::<u64>("count").unwrap(), Some(1));

    sim.crash(b);
    assert!(!sim.is_up(b));
    sim.send_external(a, b, vec![2]);
    sim.run_to_quiescence();
    assert_eq!(sim.stats().dropped_crashed, 1);

    sim.recover(b);
    assert!(sim.is_up(b));
    // Storage survived the crash; volatile state was rebuilt.
    assert_eq!(sim.storage(b).unwrap().get::<u64>("count").unwrap(), Some(1));
    sim.send_external(a, b, vec![3]);
    sim.run_to_quiescence();
    assert_eq!(sim.storage(b).unwrap().get::<u64>("count").unwrap(), Some(2));
}

#[test]
fn recover_on_running_node_is_a_noop() {
    let mut sim = SimNet::new(SimConfig::default());
    let a = sim.add_node("a", || Box::<Recorder>::default());
    sim.recover(a);
    sim.run_to_quiescence();
    let rec: &mut Recorder = sim.node_mut(a).unwrap();
    assert_eq!(rec.recovered, 0);
    assert_eq!(rec.started, 1);
}

#[test]
fn scheduled_actions_run_at_their_time() {
    let mut sim = SimNet::new(SimConfig::default());
    let a = sim.add_node("a", || Box::<Recorder>::default());
    let b = sim.add_node("b", || Box::<Recorder>::default());
    sim.at(SimTime::from_millis(50), a, move |_node, ctx| {
        ctx.send(b, b"late".to_vec());
    });
    sim.run_until(SimTime::from_millis(40));
    let rec: &mut Recorder = sim.node_mut(b).unwrap();
    assert!(rec.messages.is_empty());
    sim.run_to_quiescence();
    let rec: &mut Recorder = sim.node_mut(b).unwrap();
    assert_eq!(rec.messages.len(), 1);
    assert!(sim.now() >= SimTime::from_millis(50));
}

#[test]
fn run_until_advances_clock_even_when_idle() {
    let mut sim = SimNet::new(SimConfig::default());
    sim.run_until(SimTime::from_millis(100));
    assert_eq!(sim.now(), SimTime::from_millis(100));
}

#[test]
fn fixed_latency_is_exact() {
    let mut sim = SimNet::new(SimConfig {
        latency: LatencyModel::Fixed(Duration::from_millis(7)),
        ..SimConfig::default()
    });
    let a = sim.add_node("a", || Box::<Recorder>::default());
    let b = sim.add_node("b", || Box::<Recorder>::default());
    sim.send_external(a, b, vec![1]);
    sim.run_to_quiescence();
    assert_eq!(sim.now(), SimTime::from_millis(7));
}

#[test]
fn stats_count_bytes() {
    let mut sim = SimNet::new(SimConfig::default());
    let a = sim.add_node("a", || Box::<Recorder>::default());
    let b = sim.add_node("b", || Box::<Recorder>::default());
    sim.send_external(a, b, vec![0; 100]);
    sim.send_external(a, b, vec![0; 28]);
    sim.run_to_quiescence();
    assert_eq!(sim.stats().bytes_sent, 128);
    sim.reset_stats();
    assert_eq!(sim.stats().sent, 0);
}

mod inproc {
    use super::*;
    use crate::inproc;

    #[test]
    fn point_to_point_and_broadcast() {
        let eps = inproc::network(3);
        let ids: Vec<NodeId> = eps.iter().map(|e| e.id()).collect();
        eps[0].send(ids[1], b"one".to_vec()).unwrap();
        eps[0].broadcast(b"all").unwrap();
        let m = eps[1]
            .recv_timeout(std::time::Duration::from_secs(1))
            .unwrap();
        assert_eq!(m.payload, b"one");
        let m = eps[1]
            .recv_timeout(std::time::Duration::from_secs(1))
            .unwrap();
        assert_eq!(m.payload, b"all");
        let m = eps[2]
            .recv_timeout(std::time::Duration::from_secs(1))
            .unwrap();
        assert_eq!(m.payload, b"all");
        // Broadcast does not loop back.
        assert!(eps[0].try_recv().is_none());
    }

    #[test]
    fn unknown_peer_is_an_error() {
        let eps = inproc::network(1);
        let err = eps[0].send(NodeId(99), vec![]).unwrap_err();
        assert_eq!(err.to_string(), "endpoint n99 is unknown or disconnected");
    }

    #[test]
    fn receiver_threads_handle_messages() {
        let mut eps = inproc::network(2);
        let b = eps.pop().unwrap();
        let a = eps.pop().unwrap();
        let count = Arc::new(AtomicUsize::new(0));
        let count2 = Arc::clone(&count);
        let handle = b.spawn_receiver(move |incoming| {
            assert_eq!(incoming.payload, b"ping");
            count2.fetch_add(1, Ordering::SeqCst);
        });
        for _ in 0..10 {
            a.send(handle.id(), b"ping".to_vec()).unwrap();
        }
        // Wait for drainage.
        for _ in 0..200 {
            if count.load(Ordering::SeqCst) == 10 {
                break;
            }
            std::thread::sleep(std::time::Duration::from_millis(5));
        }
        assert_eq!(count.load(Ordering::SeqCst), 10);
        handle.shutdown();
    }

    #[test]
    fn handler_can_reply_through_sender() {
        let mut eps = inproc::network(2);
        let b = eps.pop().unwrap();
        let a = eps.pop().unwrap();
        let a_id = a.id();
        // First build the handle so the handler can capture a sender.
        let (tx, rx) = crossbeam::channel::unbounded::<inproc::Incoming>();
        let handle = b.spawn_receiver(move |incoming| {
            tx.send(incoming).unwrap();
        });
        let replier = handle.sender();
        a.send(handle.id(), b"ping".to_vec()).unwrap();
        let incoming = rx.recv_timeout(std::time::Duration::from_secs(1)).unwrap();
        replier.send(incoming.from, b"pong".to_vec()).unwrap();
        let m = a.recv_timeout(std::time::Duration::from_secs(1)).unwrap();
        assert_eq!(m.payload, b"pong");
        assert_eq!(m.from, handle.id());
        assert_eq!(incoming.from, a_id);
        handle.shutdown();
    }
}

proptest! {
    /// Virtual time is monotone and every sent message is accounted for
    /// exactly once, under arbitrary loss rates and payload batches.
    #[test]
    fn prop_message_accounting(
        seed in 0u64..1000,
        loss in 0.0f64..1.0,
        batch in 1usize..60,
    ) {
        let mut sim = SimNet::new(SimConfig { seed, drop_probability: loss, ..SimConfig::default() });
        let a = sim.add_node("a", || Box::<Recorder>::default());
        let b = sim.add_node("b", || Box::<Recorder>::default());
        for i in 0..batch {
            sim.send_external(a, b, vec![i as u8]);
        }
        sim.run_to_quiescence();
        let stats = sim.stats();
        prop_assert_eq!(stats.sent as usize, batch);
        prop_assert_eq!(
            (stats.delivered + stats.dropped_loss + stats.dropped_partition + stats.dropped_crashed) as usize,
            batch
        );
    }
}
