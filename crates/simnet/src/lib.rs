#![warn(missing_docs)]

//! # psc-simnet — the network substrate
//!
//! The paper evaluates its runtime (DACE) on real networks and defers
//! performance to companion publications; this reproduction needs a network
//! it can measure, so it builds one: a **deterministic discrete-event
//! simulator** for protocol experiments, plus a **threaded in-process
//! transport** for live examples (real concurrency, real thread policies).
//!
//! ## Simulated network
//!
//! - [`SimNet`] owns a set of [`Node`]s (address spaces) and a virtual
//!   clock; events (message deliveries, timers, injected actions) execute in
//!   deterministic timestamp order from a seeded RNG.
//! - [`SimConfig`] controls latency distribution, message loss, and the
//!   random seed; partitions are installed and healed at runtime.
//! - Nodes crash and recover ([`SimNet::crash`] / [`SimNet::recover`]):
//!   a crashed node loses its volatile state (the node value is rebuilt by
//!   its factory) but keeps its [`Storage`] — the stable storage that
//!   certified delivery (paper §3.1.2) relies on.
//! - [`NetStats`] counts messages/bytes sent, delivered and dropped, so
//!   experiments can report protocol overhead precisely.
//!
//! ## Threaded transport
//!
//! [`inproc`] provides N endpoints wired all-to-all with channels; each
//! endpoint can run a receiver thread. `psc-dace` builds its live runtime on
//! top of it.
//!
//! ```
//! use psc_simnet::{Ctx, Node, NodeId, SimConfig, SimNet};
//!
//! struct Echo;
//! impl Node for Echo {
//!     fn on_message(&mut self, ctx: &mut Ctx<'_>, from: NodeId, payload: &[u8]) {
//!         if payload == b"ping" {
//!             ctx.send(from, b"pong".to_vec());
//!         }
//!     }
//!     fn as_any_mut(&mut self) -> &mut dyn std::any::Any { self }
//! }
//!
//! let mut sim = SimNet::new(SimConfig::default());
//! let a = sim.add_node("a", || Box::new(Echo));
//! let b = sim.add_node("b", || Box::new(Echo));
//! sim.send_external(a, b, b"ping".to_vec());
//! sim.run_to_quiescence();
//! assert_eq!(sim.stats().delivered, 2); // ping and pong
//! ```

mod config;
mod host;
pub mod inproc;
mod node;
mod sim;
mod storage;
mod time;

pub use config::{LatencyModel, SimConfig};
pub use host::{HostEffect, NodeHost};
pub use node::{Ctx, Node, NodeId, TimerId};
pub use sim::{NetStats, SimNet};
pub use storage::{DiskFault, ScopedStorage, Storage, StorageOp, WalOp, WalSegment};
pub use time::{Duration, SimTime};

#[cfg(test)]
mod tests;
