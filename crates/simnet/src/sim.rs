//! The discrete-event simulation engine.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap, HashSet};

use psc_codec::WireBytes;
use psc_telemetry::{Counter, Registry};
use rand::rngs::StdRng;
use rand::{Rng, RngCore, SeedableRng};

use crate::config::{LatencyModel, SimConfig};
use crate::node::{Ctx, Effect, Node, NodeId, TimerId};
use crate::storage::Storage;
use crate::time::{Duration, SimTime};

/// Aggregate traffic counters; read with [`SimNet::stats`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct NetStats {
    /// Remote messages handed to the network (self-sends excluded).
    pub sent: u64,
    /// Bytes across all sent messages.
    pub bytes_sent: u64,
    /// Messages delivered to a running node (including self-sends).
    pub delivered: u64,
    /// Messages dropped by random loss.
    pub dropped_loss: u64,
    /// Messages dropped by a partition.
    pub dropped_partition: u64,
    /// Messages that arrived at a crashed node.
    pub dropped_crashed: u64,
}

/// Telemetry mirror of [`NetStats`] plus fault-schedule counters, recorded
/// into the simulation's own [`Registry`] under `simnet.*` names.
struct SimMetrics {
    sent: Counter,
    bytes_sent: Counter,
    delivered: Counter,
    dropped_loss: Counter,
    dropped_partition: Counter,
    dropped_crashed: Counter,
    crashes: Counter,
    recoveries: Counter,
}

impl SimMetrics {
    fn new(registry: &Registry) -> SimMetrics {
        SimMetrics {
            sent: registry.counter("simnet.sent"),
            bytes_sent: registry.counter("simnet.bytes_sent"),
            delivered: registry.counter("simnet.delivered"),
            dropped_loss: registry.counter("simnet.dropped_loss"),
            dropped_partition: registry.counter("simnet.dropped_partition"),
            dropped_crashed: registry.counter("simnet.dropped_crashed"),
            crashes: registry.counter("simnet.crashes"),
            recoveries: registry.counter("simnet.recoveries"),
        }
    }
}

type NodeFactory = Box<dyn FnMut() -> Box<dyn Node>>;
type Action = Box<dyn FnOnce(&mut dyn Node, &mut Ctx<'_>)>;

struct NodeSlot {
    name: String,
    factory: NodeFactory,
    /// `None` while crashed.
    node: Option<Box<dyn Node>>,
    storage: Storage,
}

enum EventKind {
    Deliver {
        from: NodeId,
        to: NodeId,
        payload: WireBytes,
    },
    Timer {
        node: NodeId,
        id: TimerId,
    },
    Start {
        node: NodeId,
    },
    Action {
        node: NodeId,
        f: Action,
    },
    Crash {
        node: NodeId,
    },
    Recover {
        node: NodeId,
    },
}

struct QueuedEvent {
    time: SimTime,
    seq: u64,
    kind: EventKind,
}

impl PartialEq for QueuedEvent {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl Eq for QueuedEvent {}
impl PartialOrd for QueuedEvent {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for QueuedEvent {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.time, self.seq).cmp(&(other.time, other.seq))
    }
}

/// The deterministic simulated network; see the crate docs for an example.
pub struct SimNet {
    config: SimConfig,
    rng: StdRng,
    now: SimTime,
    queue: BinaryHeap<Reverse<QueuedEvent>>,
    seq: u64,
    nodes: HashMap<NodeId, NodeSlot>,
    node_order: Vec<NodeId>,
    next_node: u64,
    next_timer: u64,
    /// Node → partition group; messages across groups are dropped.
    partition: Option<HashMap<NodeId, u32>>,
    cancelled_timers: HashSet<(NodeId, TimerId)>,
    stats: NetStats,
    telemetry: Registry,
    metrics: SimMetrics,
}

impl SimNet {
    /// Creates an empty simulation.
    pub fn new(config: SimConfig) -> Self {
        let rng = StdRng::seed_from_u64(config.seed);
        let telemetry = Registry::new();
        let metrics = SimMetrics::new(&telemetry);
        SimNet {
            config,
            rng,
            now: SimTime::ZERO,
            queue: BinaryHeap::new(),
            seq: 0,
            nodes: HashMap::new(),
            node_order: Vec::new(),
            next_node: 0,
            next_timer: 0,
            partition: None,
            cancelled_timers: HashSet::new(),
            stats: NetStats::default(),
            telemetry,
            metrics,
        }
    }

    /// The simulation's own telemetry registry (`simnet.*` counters mirror
    /// [`NetStats`]; hosts may record their metrics here too so one snapshot
    /// covers the whole run).
    pub fn telemetry(&self) -> &Registry {
        &self.telemetry
    }

    /// Adds a node built by `factory`; the factory is kept so the node can
    /// be rebuilt after a crash. `on_start` runs at the current virtual
    /// time.
    pub fn add_node(
        &mut self,
        name: impl Into<String>,
        mut factory: impl FnMut() -> Box<dyn Node> + 'static,
    ) -> NodeId {
        let id = NodeId(self.next_node);
        self.next_node += 1;
        let node = factory();
        self.nodes.insert(
            id,
            NodeSlot {
                name: name.into(),
                factory: Box::new(factory),
                node: Some(node),
                storage: Storage::new(),
            },
        );
        self.node_order.push(id);
        self.push(self.now, EventKind::Start { node: id });
        id
    }

    /// Ids of all nodes, in creation order.
    pub fn node_ids(&self) -> Vec<NodeId> {
        self.node_order.clone()
    }

    /// The node's display name.
    pub fn node_name(&self, id: NodeId) -> Option<&str> {
        self.nodes.get(&id).map(|slot| slot.name.as_str())
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Traffic counters since the last [`SimNet::reset_stats`].
    pub fn stats(&self) -> NetStats {
        self.stats
    }

    /// Zeroes the traffic counters.
    pub fn reset_stats(&mut self) {
        self.stats = NetStats::default();
    }

    /// True when the node is currently running (not crashed).
    pub fn is_up(&self, id: NodeId) -> bool {
        self.nodes.get(&id).is_some_and(|slot| slot.node.is_some())
    }

    /// Read access to a node's stable storage (test inspection).
    pub fn storage(&self, id: NodeId) -> Option<&Storage> {
        self.nodes.get(&id).map(|slot| &slot.storage)
    }

    /// Downcasts a running node to its concrete type for inspection.
    pub fn node_mut<T: 'static>(&mut self, id: NodeId) -> Option<&mut T> {
        self.nodes
            .get_mut(&id)?
            .node
            .as_mut()?
            .as_any_mut()
            .downcast_mut::<T>()
    }

    /// Schedules `f` to run on `node` at absolute time `time` (skipped if
    /// the node is down when the time comes).
    pub fn at(
        &mut self,
        time: SimTime,
        node: NodeId,
        f: impl FnOnce(&mut dyn Node, &mut Ctx<'_>) + 'static,
    ) {
        assert!(time >= self.now, "cannot schedule in the past");
        self.push(time, EventKind::Action { node, f: Box::new(f) });
    }

    /// Schedules `f` to run on `node` after `delay`.
    pub fn after(
        &mut self,
        delay: Duration,
        node: NodeId,
        f: impl FnOnce(&mut dyn Node, &mut Ctx<'_>) + 'static,
    ) {
        self.at(self.now + delay, node, f);
    }

    /// Runs `f` on `node` immediately (at the current virtual time),
    /// processing any effects it queues. Returns false if the node is down.
    pub fn act_now(
        &mut self,
        node: NodeId,
        f: impl FnOnce(&mut dyn Node, &mut Ctx<'_>) + 'static,
    ) -> bool {
        if !self.is_up(node) {
            return false;
        }
        self.dispatch(EventKind::Action {
            node,
            f: Box::new(f),
        });
        true
    }

    /// Injects a message from `from` to `to` as if `from` had sent it.
    pub fn send_external(&mut self, from: NodeId, to: NodeId, payload: impl Into<WireBytes>) {
        let mut effects = vec![Effect::Send {
            from,
            to,
            payload: payload.into(),
        }];
        self.apply_effects(&mut effects);
    }

    /// Crashes the node at the current time: volatile state is dropped,
    /// stable storage kept; queued deliveries will find it down.
    pub fn crash(&mut self, id: NodeId) {
        if let Some(slot) = self.nodes.get_mut(&id) {
            if slot.node.take().is_some() {
                self.metrics.crashes.inc();
            }
        }
    }

    /// Crashes the node AND applies a disk fault to its stable storage:
    /// the key–value map is wiped and the write-ahead logs damaged per
    /// `fault` (see [`crate::DiskFault`]), so recovery must rebuild from
    /// whatever the fsync barriers actually protected.
    /// `DiskFault::None` is exactly [`SimNet::crash`].
    pub fn crash_with_fault(&mut self, id: NodeId, fault: crate::DiskFault) {
        if let Some(slot) = self.nodes.get_mut(&id) {
            slot.storage.power_loss(&fault);
        }
        self.crash(id);
    }

    /// Schedules a crash at absolute time `time`.
    pub fn crash_at(&mut self, time: SimTime, id: NodeId) {
        assert!(time >= self.now, "cannot schedule in the past");
        self.push(time, EventKind::Crash { node: id });
    }

    /// Recovers a crashed node at the current time: the factory rebuilds it
    /// and `on_recover` runs with the preserved storage. No-op if up.
    pub fn recover(&mut self, id: NodeId) {
        self.dispatch(EventKind::Recover { node: id });
    }

    /// Schedules a recovery at absolute time `time`.
    pub fn recover_at(&mut self, time: SimTime, id: NodeId) {
        assert!(time >= self.now, "cannot schedule in the past");
        self.push(time, EventKind::Recover { node: id });
    }

    /// Installs a partition: nodes in different groups cannot exchange
    /// messages. Unlisted nodes form an implicit extra group.
    pub fn partition(&mut self, groups: &[&[NodeId]]) {
        let mut map = HashMap::new();
        for (g, members) in groups.iter().enumerate() {
            for &id in *members {
                map.insert(id, g as u32);
            }
        }
        let implicit = groups.len() as u32;
        for &id in &self.node_order {
            map.entry(id).or_insert(implicit);
        }
        self.partition = Some(map);
    }

    /// Removes any partition.
    pub fn heal_partition(&mut self) {
        self.partition = None;
    }

    /// Changes the message-loss probability mid-run. Fault-injection
    /// harnesses use this to phase their chaos: a lossless warmup (so
    /// control traffic converges), a lossy fault window, then a lossless
    /// settle during which eventual-delivery oracles become sound.
    pub fn set_drop_probability(&mut self, p: f64) {
        assert!((0.0..=1.0).contains(&p), "loss probability out of range");
        self.config.drop_probability = p;
    }

    /// Processes a single event; false when the queue is empty.
    pub fn step(&mut self) -> bool {
        let Some(Reverse(event)) = self.queue.pop() else {
            return false;
        };
        debug_assert!(event.time >= self.now, "time went backwards");
        self.now = event.time;
        self.dispatch(event.kind);
        true
    }

    /// Runs until the queue is empty (protocols with periodic timers never
    /// quiesce — use [`SimNet::run_until`] for those). Returns the number of
    /// events processed.
    pub fn run_to_quiescence(&mut self) -> usize {
        let mut n = 0;
        while self.step() {
            n += 1;
        }
        n
    }

    /// Runs events with timestamps `<= deadline`, then sets the clock to
    /// `deadline`. Returns the number of events processed.
    pub fn run_until(&mut self, deadline: SimTime) -> usize {
        let mut n = 0;
        while let Some(Reverse(head)) = self.queue.peek() {
            if head.time > deadline {
                break;
            }
            self.step();
            n += 1;
        }
        if deadline > self.now {
            self.now = deadline;
        }
        n
    }

    /// Runs for `d` of virtual time from now.
    pub fn run_for(&mut self, d: Duration) -> usize {
        self.run_until(self.now + d)
    }

    fn push(&mut self, time: SimTime, kind: EventKind) {
        self.seq += 1;
        self.queue.push(Reverse(QueuedEvent {
            time,
            seq: self.seq,
            kind,
        }));
    }

    fn dispatch(&mut self, kind: EventKind) {
        let mut effects = Vec::new();
        match kind {
            EventKind::Start { node } => {
                self.with_node(node, &mut effects, |n, ctx| n.on_start(ctx));
            }
            EventKind::Deliver { from, to, payload } => {
                let up = self.is_up(to);
                if !up {
                    self.stats.dropped_crashed += 1;
                    self.metrics.dropped_crashed.inc();
                } else {
                    self.stats.delivered += 1;
                    self.metrics.delivered.inc();
                    self.with_node(to, &mut effects, |n, ctx| n.on_message(ctx, from, &payload));
                }
            }
            EventKind::Timer { node, id } => {
                if self.cancelled_timers.remove(&(node, id)) {
                    // cancelled; skip
                } else {
                    self.with_node(node, &mut effects, |n, ctx| n.on_timer(ctx, id));
                }
            }
            EventKind::Action { node, f } => {
                self.with_node(node, &mut effects, |n, ctx| f(n, ctx));
            }
            EventKind::Crash { node } => {
                self.crash(node);
            }
            EventKind::Recover { node } => {
                let rebuilt = match self.nodes.get_mut(&node) {
                    Some(slot) if slot.node.is_none() => {
                        slot.node = Some((slot.factory)());
                        true
                    }
                    _ => false,
                };
                if rebuilt {
                    self.metrics.recoveries.inc();
                    self.with_node(node, &mut effects, |n, ctx| n.on_recover(ctx));
                }
            }
        }
        self.apply_effects(&mut effects);
    }

    fn with_node(
        &mut self,
        id: NodeId,
        effects: &mut Vec<Effect>,
        f: impl FnOnce(&mut dyn Node, &mut Ctx<'_>),
    ) {
        let Some(slot) = self.nodes.get_mut(&id) else {
            return;
        };
        let Some(node) = slot.node.as_mut() else {
            return;
        };
        let mut ctx = Ctx {
            node: id,
            now: self.now,
            effects,
            storage: &mut slot.storage,
            rng: &mut self.rng,
            next_timer: &mut self.next_timer,
        };
        f(node.as_mut(), &mut ctx);
    }

    fn apply_effects(&mut self, effects: &mut Vec<Effect>) {
        for effect in effects.drain(..) {
            match effect {
                Effect::Send { from, to, payload } => self.route(from, to, payload),
                Effect::SetTimer { node, id, after } => {
                    self.push(self.now + after, EventKind::Timer { node, id });
                }
                Effect::CancelTimer { node, id } => {
                    self.cancelled_timers.insert((node, id));
                }
            }
        }
    }

    fn route(&mut self, from: NodeId, to: NodeId, payload: WireBytes) {
        if from == to {
            // Loopback: no loss, negligible latency.
            self.stats.sent += 1;
            self.stats.bytes_sent += payload.len() as u64;
            self.metrics.sent.inc();
            self.metrics.bytes_sent.add(payload.len() as u64);
            let time = self.now + Duration::from_micros(1);
            self.push(time, EventKind::Deliver { from, to, payload });
            return;
        }
        self.stats.sent += 1;
        self.stats.bytes_sent += payload.len() as u64;
        self.metrics.sent.inc();
        self.metrics.bytes_sent.add(payload.len() as u64);
        if let Some(groups) = &self.partition {
            if groups.get(&from) != groups.get(&to) {
                self.stats.dropped_partition += 1;
                self.metrics.dropped_partition.inc();
                return;
            }
        }
        if self.config.drop_probability > 0.0
            && self.rng.gen_bool(self.config.drop_probability)
        {
            self.stats.dropped_loss += 1;
            self.metrics.dropped_loss.inc();
            return;
        }
        let latency = self.sample_latency();
        self.push(self.now + latency, EventKind::Deliver { from, to, payload });
    }

    fn sample_latency(&mut self) -> Duration {
        match self.config.latency {
            LatencyModel::Fixed(d) => d,
            LatencyModel::Uniform { min, max } => {
                let (lo, hi) = (min.as_micros(), max.as_micros());
                if hi <= lo {
                    min
                } else {
                    Duration::from_micros(self.rng.gen_range(lo..=hi))
                }
            }
        }
    }

    /// Raw randomness from the simulation RNG (for workload generators that
    /// want to stay deterministic under the simulation seed).
    pub fn rng(&mut self) -> &mut dyn RngCore {
        &mut self.rng
    }
}

impl std::fmt::Debug for SimNet {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SimNet")
            .field("now", &self.now)
            .field("nodes", &self.node_order.len())
            .field("queued", &self.queue.len())
            .field("stats", &self.stats)
            .finish()
    }
}
