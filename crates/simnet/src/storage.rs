//! Per-node stable storage.
//!
//! Certified delivery (paper §3.1.2) requires state that outlives process
//! failures: "even if a notifiable temporarily disconnects or fails, it will
//! eventually deliver the obvent". [`Storage`] models each node's disk: a
//! key–value map the simulator preserves across [`crash`]/[`recover`]
//! cycles while the node's in-memory state is discarded.
//!
//! [`crash`]: crate::SimNet::crash
//! [`recover`]: crate::SimNet::recover

use std::collections::BTreeMap;

use serde::de::DeserializeOwned;
use serde::Serialize;

use psc_codec::CodecError;

/// One recorded mutation of a journaled [`Storage`]; see
/// [`Storage::enable_journal`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StorageOp {
    /// `put_raw`/`put` of the given key and encoded value.
    Put(String, Vec<u8>),
    /// `remove` of the given key.
    Remove(String),
}

/// A disk-fault profile applied when a node is crashed with
/// [`crash_with_fault`](crate::SimNet::crash_with_fault). Faults model what
/// a real power loss does to an append-only log: fsynced bytes are durable
/// by contract, everything after the last sync barrier is fair game.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DiskFault {
    /// No disk damage: the classic [`crate::SimNet::crash`] — the key–value
    /// map and WAL survive byte-for-byte.
    None,
    /// Power loss: the in-memory key–value map is wiped and every WAL
    /// segment is truncated to its last sync barrier. Recovery sees exactly
    /// what was fsynced, nothing more.
    LoseUnsynced,
    /// Torn tail write: the map is wiped and the *active* segment loses its
    /// last `drop_bytes` unsynced bytes — usually cutting mid-record, so
    /// recovery must stop cleanly at the last complete frame.
    TornTail {
        /// How many bytes of the unsynced tail are lost (clamped so fsynced
        /// bytes are never touched).
        drop_bytes: usize,
    },
    /// The map is wiped and every segment that was never fsynced disappears
    /// whole (the file's directory entry itself was not durable yet).
    DropUnsyncedSegments,
}

/// One recorded WAL mutation; see [`Storage::enable_wal_journal`]. A real
/// file backend replays these onto segment files — the `Append` bytes are
/// the exact framed bytes the in-memory log holds, so the two stay
/// byte-equivalent by construction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WalOp {
    /// Framed bytes appended to the log's active segment.
    Append {
        /// Log name.
        log: String,
        /// The framed record bytes exactly as appended.
        bytes: Vec<u8>,
    },
    /// Sync barrier: everything appended to the log so far is durable.
    Sync {
        /// Log name.
        log: String,
    },
    /// A new active segment was started.
    Rotate {
        /// Log name.
        log: String,
        /// Index of the new active segment.
        index: u64,
    },
    /// Segments with `index <= upto` were dropped (compaction).
    DropThrough {
        /// Log name.
        log: String,
        /// Highest dropped segment index.
        upto: u64,
    },
}

/// One append-only segment of a [`Storage`] write-ahead log.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WalSegment {
    /// Monotonic segment index within its log.
    pub index: u64,
    /// CRC-framed record bytes ([`psc_codec::frame::encode_crc`] format).
    pub bytes: Vec<u8>,
    /// Bytes up to this offset are fsynced (durable under any
    /// [`DiskFault`]).
    pub synced_len: usize,
}

#[derive(Debug, Default, Clone)]
struct WalLog {
    segments: Vec<WalSegment>,
}

impl WalLog {
    fn active(&mut self) -> &mut WalSegment {
        if self.segments.is_empty() {
            self.segments.push(WalSegment { index: 0, bytes: Vec::new(), synced_len: 0 });
        }
        self.segments.last_mut().expect("non-empty")
    }
}

/// A node's crash-surviving key–value store.
#[derive(Debug, Default, Clone)]
pub struct Storage {
    entries: BTreeMap<String, Vec<u8>>,
    /// When present, every mutation is also appended here (in order), so a
    /// detached fragment — e.g. a shard worker's private copy — can be
    /// replayed onto an authoritative store. `None` costs nothing.
    journal: Option<Vec<StorageOp>>,
    /// Named write-ahead logs: the durable substrate under the key–value
    /// map. The map is the live read path; under a [`DiskFault`] only what
    /// the logs captured (and fsynced) survives.
    wal: BTreeMap<String, WalLog>,
    /// When present, every WAL mutation is recorded for a file backend to
    /// mirror; see [`Storage::enable_wal_journal`].
    wal_journal: Option<Vec<WalOp>>,
}

impl Storage {
    /// Creates empty storage.
    pub fn new() -> Self {
        Storage::default()
    }

    /// Starts recording every mutation; see [`Storage::take_journal`].
    pub fn enable_journal(&mut self) {
        if self.journal.is_none() {
            self.journal = Some(Vec::new());
        }
    }

    /// Drains the mutations recorded since the last call (empty when
    /// journaling is off). The ops replay in order via [`Storage::apply`].
    pub fn take_journal(&mut self) -> Vec<StorageOp> {
        match self.journal.as_mut() {
            Some(journal) => std::mem::take(journal),
            None => Vec::new(),
        }
    }

    /// Replays journaled mutations (in order) onto this store.
    pub fn apply(&mut self, ops: Vec<StorageOp>) {
        for op in ops {
            match op {
                StorageOp::Put(key, value) => self.put_raw(key, value),
                StorageOp::Remove(key) => {
                    self.remove(&key);
                }
            }
        }
    }

    /// Stores raw bytes under `key`, replacing any previous value.
    pub fn put_raw(&mut self, key: impl Into<String>, value: Vec<u8>) {
        let key = key.into();
        if let Some(journal) = self.journal.as_mut() {
            journal.push(StorageOp::Put(key.clone(), value.clone()));
        }
        self.entries.insert(key, value);
    }

    /// Reads raw bytes stored under `key`.
    pub fn get_raw(&self, key: &str) -> Option<&[u8]> {
        self.entries.get(key).map(Vec::as_slice)
    }

    /// Serializes `value` with `psc-codec` and stores it under `key`.
    ///
    /// # Errors
    ///
    /// Propagates serialization failures.
    pub fn put<T: Serialize>(&mut self, key: impl Into<String>, value: &T) -> Result<(), CodecError> {
        let bytes = psc_codec::to_bytes(value)?;
        self.put_raw(key, bytes);
        Ok(())
    }

    /// Reads and deserializes the value under `key`; `Ok(None)` when absent.
    ///
    /// # Errors
    ///
    /// Propagates deserialization failures (corrupt entries).
    pub fn get<T: DeserializeOwned>(&self, key: &str) -> Result<Option<T>, CodecError> {
        match self.entries.get(key) {
            None => Ok(None),
            Some(bytes) => Ok(Some(psc_codec::from_bytes(bytes)?)),
        }
    }

    /// Removes the entry under `key`, returning whether it existed.
    pub fn remove(&mut self, key: &str) -> bool {
        if let Some(journal) = self.journal.as_mut() {
            journal.push(StorageOp::Remove(key.to_string()));
        }
        self.entries.remove(key).is_some()
    }

    /// Iterates keys with the given prefix (sorted).
    pub fn keys_with_prefix<'a>(&'a self, prefix: &'a str) -> impl Iterator<Item = &'a str> + 'a {
        self.entries
            .range(prefix.to_string()..)
            .take_while(move |(k, _)| k.starts_with(prefix))
            .map(|(k, _)| k.as_str())
    }

    /// Clones the `(key, value)` pairs under `prefix` (sorted by key) —
    /// how a detached fragment is seeded from the authoritative store.
    pub fn entries_with_prefix(&self, prefix: &str) -> Vec<(String, Vec<u8>)> {
        self.entries
            .range(prefix.to_string()..)
            .take_while(move |(k, _)| k.starts_with(prefix))
            .map(|(k, v)| (k.clone(), v.clone()))
            .collect()
    }

    /// Number of stored entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when nothing is stored.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Total stored bytes (for experiments accounting for log sizes).
    pub fn size_bytes(&self) -> usize {
        self.entries.values().map(Vec::len).sum()
    }

    /// A view of this storage under a key prefix, so independent components
    /// (e.g. one protocol instance per multicast class) share one disk
    /// without key collisions.
    pub fn scoped(&mut self, prefix: impl Into<String>) -> ScopedStorage<'_> {
        ScopedStorage {
            inner: self,
            prefix: prefix.into(),
        }
    }

    /// Stores raw bytes under `key` WITHOUT journaling — for seeding a
    /// detached fragment from already-authoritative state. Seeded entries
    /// must not flow back through [`Storage::take_journal`], or redundant
    /// re-puts would reach the authoritative store (and its WAL) only in
    /// sharded runs, breaking shard-count determinism.
    pub fn seed_raw(&mut self, key: impl Into<String>, value: Vec<u8>) {
        self.entries.insert(key.into(), value);
    }

    // ---- Write-ahead logs -------------------------------------------------

    /// Starts recording WAL mutations; see [`Storage::take_wal_journal`].
    pub fn enable_wal_journal(&mut self) {
        if self.wal_journal.is_none() {
            self.wal_journal = Some(Vec::new());
        }
    }

    /// Drains the WAL mutations recorded since the last call (empty when
    /// WAL journaling is off). A file backend replays these onto segment
    /// files to stay byte-equivalent with the in-memory log.
    pub fn take_wal_journal(&mut self) -> Vec<WalOp> {
        match self.wal_journal.as_mut() {
            Some(journal) => std::mem::take(journal),
            None => Vec::new(),
        }
    }

    /// Appends one CRC-framed record to `log`'s active segment and returns
    /// the framed byte count. The payload is framed with
    /// [`psc_codec::frame::encode_crc`], so recovery can scan segments with
    /// `scan_crc_frames` and stop cleanly at a torn tail.
    pub fn wal_append(&mut self, log: &str, record: &[u8]) -> usize {
        let mut framed = Vec::with_capacity(record.len() + 8);
        psc_codec::frame::encode_crc(record, &mut framed);
        let len = framed.len();
        if let Some(journal) = self.wal_journal.as_mut() {
            journal.push(WalOp::Append { log: log.to_string(), bytes: framed.clone() });
        }
        self.wal.entry(log.to_string()).or_default().active().bytes.extend_from_slice(&framed);
        len
    }

    /// Sync barrier: marks every byte of every segment of `log` durable.
    /// Models `fsync` on the active file (older segments were synced at
    /// rotation time on a real disk; marking them again is idempotent).
    pub fn wal_sync(&mut self, log: &str) {
        if let Some(journal) = self.wal_journal.as_mut() {
            journal.push(WalOp::Sync { log: log.to_string() });
        }
        if let Some(wal_log) = self.wal.get_mut(log) {
            for segment in &mut wal_log.segments {
                segment.synced_len = segment.bytes.len();
            }
        }
    }

    /// Closes `log`'s active segment and opens a fresh one, returning the
    /// new segment's index.
    pub fn wal_rotate(&mut self, log: &str) -> u64 {
        let wal_log = self.wal.entry(log.to_string()).or_default();
        let index = wal_log.active().index + 1;
        wal_log.segments.push(WalSegment { index, bytes: Vec::new(), synced_len: 0 });
        if let Some(journal) = self.wal_journal.as_mut() {
            journal.push(WalOp::Rotate { log: log.to_string(), index });
        }
        index
    }

    /// Drops every segment of `log` with `index <= upto` (compaction after
    /// a checkpoint record lands in a newer segment).
    pub fn wal_drop_through(&mut self, log: &str, upto: u64) {
        if let Some(journal) = self.wal_journal.as_mut() {
            journal.push(WalOp::DropThrough { log: log.to_string(), upto });
        }
        if let Some(wal_log) = self.wal.get_mut(log) {
            wal_log.segments.retain(|s| s.index > upto);
        }
    }

    /// Names of all write-ahead logs (sorted).
    pub fn wal_logs(&self) -> Vec<String> {
        self.wal.keys().cloned().collect()
    }

    /// The segments of `log` in index order (empty when the log is absent).
    pub fn wal_segments(&self, log: &str) -> &[WalSegment] {
        self.wal.get(log).map(|l| l.segments.as_slice()).unwrap_or(&[])
    }

    /// Installs a segment loaded from an external backend (a real file).
    /// Not journaled — this IS the mirror catching up. Loaded bytes are
    /// marked fully synced: they survived a real restart, so they are
    /// durable by demonstration.
    pub fn wal_load_segment(&mut self, log: &str, index: u64, bytes: Vec<u8>) {
        let synced_len = bytes.len();
        let wal_log = self.wal.entry(log.to_string()).or_default();
        wal_log.segments.push(WalSegment { index, bytes, synced_len });
        wal_log.segments.sort_by_key(|s| s.index);
    }

    /// Simulates power loss: wipes the key–value map (it models in-memory
    /// page cache plus un-checkpointed state — only the WAL is truly on
    /// disk), clears both journals, and damages the WAL per `fault`.
    /// [`DiskFault::None`] leaves everything intact (classic crash).
    pub fn power_loss(&mut self, fault: &DiskFault) {
        if matches!(fault, DiskFault::None) {
            return;
        }
        self.entries.clear();
        if let Some(journal) = self.journal.as_mut() {
            journal.clear();
        }
        if let Some(journal) = self.wal_journal.as_mut() {
            journal.clear();
        }
        match fault {
            DiskFault::None => {}
            DiskFault::LoseUnsynced => {
                for wal_log in self.wal.values_mut() {
                    for segment in &mut wal_log.segments {
                        segment.bytes.truncate(segment.synced_len);
                    }
                    wal_log.segments.retain(|s| !s.bytes.is_empty());
                }
            }
            DiskFault::TornTail { drop_bytes } => {
                for wal_log in self.wal.values_mut() {
                    if let Some(segment) = wal_log.segments.last_mut() {
                        let keep = segment.bytes.len().saturating_sub(*drop_bytes).max(segment.synced_len);
                        segment.bytes.truncate(keep);
                    }
                }
            }
            DiskFault::DropUnsyncedSegments => {
                for wal_log in self.wal.values_mut() {
                    wal_log.segments.retain(|s| s.synced_len > 0);
                }
            }
        }
    }
}

/// A prefixed view of a [`Storage`]; see [`Storage::scoped`].
#[derive(Debug)]
pub struct ScopedStorage<'a> {
    inner: &'a mut Storage,
    prefix: String,
}

impl ScopedStorage<'_> {
    fn full_key(&self, key: &str) -> String {
        format!("{}{}", self.prefix, key)
    }

    /// Stores raw bytes under the scoped `key`.
    pub fn put_raw(&mut self, key: &str, value: Vec<u8>) {
        let full = self.full_key(key);
        self.inner.put_raw(full, value);
    }

    /// Reads raw bytes stored under the scoped `key`.
    pub fn get_raw(&self, key: &str) -> Option<&[u8]> {
        self.inner.get_raw(&self.full_key(key))
    }

    /// Serializes and stores `value` under the scoped `key`.
    ///
    /// # Errors
    ///
    /// Propagates serialization failures.
    pub fn put<T: Serialize>(&mut self, key: &str, value: &T) -> Result<(), CodecError> {
        let full = self.full_key(key);
        self.inner.put(full, value)
    }

    /// Reads and deserializes the value under the scoped `key`.
    ///
    /// # Errors
    ///
    /// Propagates deserialization failures.
    pub fn get<T: DeserializeOwned>(&self, key: &str) -> Result<Option<T>, CodecError> {
        self.inner.get(&self.full_key(key))
    }

    /// Removes the scoped entry, returning whether it existed.
    pub fn remove(&mut self, key: &str) -> bool {
        let full = self.full_key(key);
        self.inner.remove(&full)
    }

    /// Scoped keys (with the scope prefix stripped) starting with `prefix`.
    pub fn keys_with_prefix(&self, prefix: &str) -> Vec<String> {
        let full = self.full_key(prefix);
        self.inner
            .keys_with_prefix(&full)
            .map(|k| k[self.prefix.len()..].to_string())
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn typed_roundtrip() {
        let mut s = Storage::new();
        s.put("seq", &42u64).unwrap();
        assert_eq!(s.get::<u64>("seq").unwrap(), Some(42));
        assert_eq!(s.get::<u64>("missing").unwrap(), None);
    }

    #[test]
    fn corrupt_entry_is_an_error_not_a_panic() {
        let mut s = Storage::new();
        s.put_raw("x", vec![0xff]);
        assert!(s.get::<String>("x").is_err());
    }

    #[test]
    fn prefix_iteration_is_sorted_and_bounded() {
        let mut s = Storage::new();
        s.put_raw("log/2", vec![2]);
        s.put_raw("log/1", vec![1]);
        s.put_raw("meta", vec![0]);
        let keys: Vec<&str> = s.keys_with_prefix("log/").collect();
        assert_eq!(keys, ["log/1", "log/2"]);
    }

    #[test]
    fn journal_records_and_replays_in_order() {
        let mut fragment = Storage::new();
        fragment.enable_journal();
        fragment.put("seq", &7u64).unwrap();
        fragment.put_raw("log/1", vec![1]);
        fragment.remove("log/1");
        fragment.put_raw("log/2", vec![2]);

        let ops = fragment.take_journal();
        assert_eq!(ops.len(), 4);
        assert!(fragment.take_journal().is_empty());

        let mut authoritative = Storage::new();
        authoritative.apply(ops);
        assert_eq!(authoritative.get::<u64>("seq").unwrap(), Some(7));
        assert_eq!(authoritative.get_raw("log/1"), None);
        assert_eq!(authoritative.get_raw("log/2"), Some(&[2u8][..]));
    }

    #[test]
    fn scoped_mutations_are_journaled_with_full_keys() {
        let mut s = Storage::new();
        s.enable_journal();
        s.scoped("ch/9/").put_raw("state", vec![3]);
        assert_eq!(
            s.take_journal(),
            vec![StorageOp::Put("ch/9/state".to_string(), vec![3])]
        );
        assert_eq!(
            s.entries_with_prefix("ch/"),
            vec![("ch/9/state".to_string(), vec![3])]
        );
    }

    #[test]
    fn remove_and_sizes() {
        let mut s = Storage::new();
        s.put_raw("a", vec![1, 2, 3]);
        assert_eq!(s.size_bytes(), 3);
        assert!(s.remove("a"));
        assert!(!s.remove("a"));
        assert!(s.is_empty());
    }

    #[test]
    fn seed_raw_bypasses_the_journal() {
        let mut s = Storage::new();
        s.enable_journal();
        s.seed_raw("ch/1/state", vec![9]);
        assert!(s.take_journal().is_empty());
        assert_eq!(s.get_raw("ch/1/state"), Some(&[9u8][..]));
    }

    fn scan(bytes: &[u8]) -> Vec<Vec<u8>> {
        psc_codec::frame::scan_crc_frames(bytes).0
    }

    #[test]
    fn wal_append_frames_records_recoverably() {
        let mut s = Storage::new();
        let n = s.wal_append("ch/1", b"alpha");
        s.wal_append("ch/1", b"beta");
        assert!(n > 5, "framing adds a header");
        let segments = s.wal_segments("ch/1");
        assert_eq!(segments.len(), 1);
        assert_eq!(segments[0].index, 0);
        assert_eq!(segments[0].synced_len, 0);
        assert_eq!(scan(&segments[0].bytes), vec![b"alpha".to_vec(), b"beta".to_vec()]);
        assert_eq!(s.wal_logs(), vec!["ch/1".to_string()]);
    }

    #[test]
    fn wal_sync_rotate_and_drop_through() {
        let mut s = Storage::new();
        s.wal_append("node", b"one");
        s.wal_sync("node");
        assert_eq!(s.wal_segments("node")[0].synced_len, s.wal_segments("node")[0].bytes.len());
        assert_eq!(s.wal_rotate("node"), 1);
        s.wal_append("node", b"two");
        assert_eq!(s.wal_rotate("node"), 2);
        s.wal_append("node", b"three");
        assert_eq!(
            s.wal_segments("node").iter().map(|seg| seg.index).collect::<Vec<_>>(),
            vec![0, 1, 2]
        );
        s.wal_drop_through("node", 1);
        let segments = s.wal_segments("node");
        assert_eq!(segments.len(), 1);
        assert_eq!(segments[0].index, 2);
        assert_eq!(scan(&segments[0].bytes), vec![b"three".to_vec()]);
    }

    #[test]
    fn wal_journal_mirrors_every_mutation_in_order() {
        let mut s = Storage::new();
        s.enable_wal_journal();
        s.wal_append("ch/1", b"rec");
        s.wal_sync("ch/1");
        s.wal_rotate("ch/1");
        s.wal_drop_through("ch/1", 0);
        let ops = s.take_wal_journal();
        assert_eq!(ops.len(), 4);
        match &ops[0] {
            WalOp::Append { log, bytes } => {
                assert_eq!(log, "ch/1");
                assert_eq!(scan(bytes), vec![b"rec".to_vec()]);
            }
            other => panic!("expected Append, got {other:?}"),
        }
        assert_eq!(ops[1], WalOp::Sync { log: "ch/1".to_string() });
        assert_eq!(ops[2], WalOp::Rotate { log: "ch/1".to_string(), index: 1 });
        assert_eq!(ops[3], WalOp::DropThrough { log: "ch/1".to_string(), upto: 0 });
        assert!(s.take_wal_journal().is_empty());
    }

    #[test]
    fn wal_load_segment_sorts_and_marks_synced() {
        let mut s = Storage::new();
        s.wal_load_segment("node", 3, vec![1, 2]);
        s.wal_load_segment("node", 1, vec![3]);
        let segments = s.wal_segments("node");
        assert_eq!(segments.iter().map(|seg| seg.index).collect::<Vec<_>>(), vec![1, 3]);
        assert!(segments.iter().all(|seg| seg.synced_len == seg.bytes.len()));
    }

    #[test]
    fn power_loss_none_preserves_everything() {
        let mut s = Storage::new();
        s.put_raw("k", vec![1]);
        s.wal_append("ch/1", b"rec");
        s.power_loss(&DiskFault::None);
        assert_eq!(s.get_raw("k"), Some(&[1u8][..]));
        assert_eq!(s.wal_segments("ch/1").len(), 1);
    }

    #[test]
    fn lose_unsynced_keeps_only_fsynced_bytes() {
        let mut s = Storage::new();
        s.put_raw("k", vec![1]);
        s.wal_append("ch/1", b"durable");
        s.wal_sync("ch/1");
        s.wal_append("ch/1", b"volatile");
        s.wal_rotate("ch/1");
        s.wal_append("ch/1", b"also-volatile");
        s.power_loss(&DiskFault::LoseUnsynced);
        assert_eq!(s.get_raw("k"), None, "kv map is wiped");
        let segments = s.wal_segments("ch/1");
        assert_eq!(segments.len(), 1, "unsynced segment dropped whole");
        assert_eq!(scan(&segments[0].bytes), vec![b"durable".to_vec()]);
    }

    #[test]
    fn torn_tail_cuts_mid_record_but_never_past_the_sync_barrier() {
        let mut s = Storage::new();
        s.wal_append("ch/1", b"durable");
        s.wal_sync("ch/1");
        let synced = s.wal_segments("ch/1")[0].synced_len;
        s.wal_append("ch/1", b"torn-record");
        s.power_loss(&DiskFault::TornTail { drop_bytes: 3 });
        let segment = &s.wal_segments("ch/1")[0];
        assert!(segment.bytes.len() >= synced);
        assert_eq!(scan(&segment.bytes), vec![b"durable".to_vec()], "torn record unreadable");

        // A huge drop_bytes clamps at the barrier instead of eating fsynced data.
        let mut s2 = Storage::new();
        s2.wal_append("ch/1", b"durable");
        s2.wal_sync("ch/1");
        s2.wal_append("ch/1", b"tail");
        s2.power_loss(&DiskFault::TornTail { drop_bytes: usize::MAX });
        assert_eq!(scan(&s2.wal_segments("ch/1")[0].bytes), vec![b"durable".to_vec()]);
    }

    #[test]
    fn drop_unsynced_segments_loses_whole_files() {
        let mut s = Storage::new();
        s.wal_append("ch/1", b"durable");
        s.wal_sync("ch/1");
        s.wal_rotate("ch/1");
        s.wal_append("ch/1", b"never-synced");
        s.power_loss(&DiskFault::DropUnsyncedSegments);
        let segments = s.wal_segments("ch/1");
        assert_eq!(segments.len(), 1);
        assert_eq!(segments[0].index, 0);
    }
}
