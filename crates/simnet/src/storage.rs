//! Per-node stable storage.
//!
//! Certified delivery (paper §3.1.2) requires state that outlives process
//! failures: "even if a notifiable temporarily disconnects or fails, it will
//! eventually deliver the obvent". [`Storage`] models each node's disk: a
//! key–value map the simulator preserves across [`crash`]/[`recover`]
//! cycles while the node's in-memory state is discarded.
//!
//! [`crash`]: crate::SimNet::crash
//! [`recover`]: crate::SimNet::recover

use std::collections::BTreeMap;

use serde::de::DeserializeOwned;
use serde::Serialize;

use psc_codec::CodecError;

/// One recorded mutation of a journaled [`Storage`]; see
/// [`Storage::enable_journal`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StorageOp {
    /// `put_raw`/`put` of the given key and encoded value.
    Put(String, Vec<u8>),
    /// `remove` of the given key.
    Remove(String),
}

/// A node's crash-surviving key–value store.
#[derive(Debug, Default, Clone)]
pub struct Storage {
    entries: BTreeMap<String, Vec<u8>>,
    /// When present, every mutation is also appended here (in order), so a
    /// detached fragment — e.g. a shard worker's private copy — can be
    /// replayed onto an authoritative store. `None` costs nothing.
    journal: Option<Vec<StorageOp>>,
}

impl Storage {
    /// Creates empty storage.
    pub fn new() -> Self {
        Storage::default()
    }

    /// Starts recording every mutation; see [`Storage::take_journal`].
    pub fn enable_journal(&mut self) {
        if self.journal.is_none() {
            self.journal = Some(Vec::new());
        }
    }

    /// Drains the mutations recorded since the last call (empty when
    /// journaling is off). The ops replay in order via [`Storage::apply`].
    pub fn take_journal(&mut self) -> Vec<StorageOp> {
        match self.journal.as_mut() {
            Some(journal) => std::mem::take(journal),
            None => Vec::new(),
        }
    }

    /// Replays journaled mutations (in order) onto this store.
    pub fn apply(&mut self, ops: Vec<StorageOp>) {
        for op in ops {
            match op {
                StorageOp::Put(key, value) => self.put_raw(key, value),
                StorageOp::Remove(key) => {
                    self.remove(&key);
                }
            }
        }
    }

    /// Stores raw bytes under `key`, replacing any previous value.
    pub fn put_raw(&mut self, key: impl Into<String>, value: Vec<u8>) {
        let key = key.into();
        if let Some(journal) = self.journal.as_mut() {
            journal.push(StorageOp::Put(key.clone(), value.clone()));
        }
        self.entries.insert(key, value);
    }

    /// Reads raw bytes stored under `key`.
    pub fn get_raw(&self, key: &str) -> Option<&[u8]> {
        self.entries.get(key).map(Vec::as_slice)
    }

    /// Serializes `value` with `psc-codec` and stores it under `key`.
    ///
    /// # Errors
    ///
    /// Propagates serialization failures.
    pub fn put<T: Serialize>(&mut self, key: impl Into<String>, value: &T) -> Result<(), CodecError> {
        let bytes = psc_codec::to_bytes(value)?;
        self.put_raw(key, bytes);
        Ok(())
    }

    /// Reads and deserializes the value under `key`; `Ok(None)` when absent.
    ///
    /// # Errors
    ///
    /// Propagates deserialization failures (corrupt entries).
    pub fn get<T: DeserializeOwned>(&self, key: &str) -> Result<Option<T>, CodecError> {
        match self.entries.get(key) {
            None => Ok(None),
            Some(bytes) => Ok(Some(psc_codec::from_bytes(bytes)?)),
        }
    }

    /// Removes the entry under `key`, returning whether it existed.
    pub fn remove(&mut self, key: &str) -> bool {
        if let Some(journal) = self.journal.as_mut() {
            journal.push(StorageOp::Remove(key.to_string()));
        }
        self.entries.remove(key).is_some()
    }

    /// Iterates keys with the given prefix (sorted).
    pub fn keys_with_prefix<'a>(&'a self, prefix: &'a str) -> impl Iterator<Item = &'a str> + 'a {
        self.entries
            .range(prefix.to_string()..)
            .take_while(move |(k, _)| k.starts_with(prefix))
            .map(|(k, _)| k.as_str())
    }

    /// Clones the `(key, value)` pairs under `prefix` (sorted by key) —
    /// how a detached fragment is seeded from the authoritative store.
    pub fn entries_with_prefix(&self, prefix: &str) -> Vec<(String, Vec<u8>)> {
        self.entries
            .range(prefix.to_string()..)
            .take_while(move |(k, _)| k.starts_with(prefix))
            .map(|(k, v)| (k.clone(), v.clone()))
            .collect()
    }

    /// Number of stored entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when nothing is stored.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Total stored bytes (for experiments accounting for log sizes).
    pub fn size_bytes(&self) -> usize {
        self.entries.values().map(Vec::len).sum()
    }

    /// A view of this storage under a key prefix, so independent components
    /// (e.g. one protocol instance per multicast class) share one disk
    /// without key collisions.
    pub fn scoped(&mut self, prefix: impl Into<String>) -> ScopedStorage<'_> {
        ScopedStorage {
            inner: self,
            prefix: prefix.into(),
        }
    }
}

/// A prefixed view of a [`Storage`]; see [`Storage::scoped`].
#[derive(Debug)]
pub struct ScopedStorage<'a> {
    inner: &'a mut Storage,
    prefix: String,
}

impl ScopedStorage<'_> {
    fn full_key(&self, key: &str) -> String {
        format!("{}{}", self.prefix, key)
    }

    /// Stores raw bytes under the scoped `key`.
    pub fn put_raw(&mut self, key: &str, value: Vec<u8>) {
        let full = self.full_key(key);
        self.inner.put_raw(full, value);
    }

    /// Reads raw bytes stored under the scoped `key`.
    pub fn get_raw(&self, key: &str) -> Option<&[u8]> {
        self.inner.get_raw(&self.full_key(key))
    }

    /// Serializes and stores `value` under the scoped `key`.
    ///
    /// # Errors
    ///
    /// Propagates serialization failures.
    pub fn put<T: Serialize>(&mut self, key: &str, value: &T) -> Result<(), CodecError> {
        let full = self.full_key(key);
        self.inner.put(full, value)
    }

    /// Reads and deserializes the value under the scoped `key`.
    ///
    /// # Errors
    ///
    /// Propagates deserialization failures.
    pub fn get<T: DeserializeOwned>(&self, key: &str) -> Result<Option<T>, CodecError> {
        self.inner.get(&self.full_key(key))
    }

    /// Removes the scoped entry, returning whether it existed.
    pub fn remove(&mut self, key: &str) -> bool {
        let full = self.full_key(key);
        self.inner.remove(&full)
    }

    /// Scoped keys (with the scope prefix stripped) starting with `prefix`.
    pub fn keys_with_prefix(&self, prefix: &str) -> Vec<String> {
        let full = self.full_key(prefix);
        self.inner
            .keys_with_prefix(&full)
            .map(|k| k[self.prefix.len()..].to_string())
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn typed_roundtrip() {
        let mut s = Storage::new();
        s.put("seq", &42u64).unwrap();
        assert_eq!(s.get::<u64>("seq").unwrap(), Some(42));
        assert_eq!(s.get::<u64>("missing").unwrap(), None);
    }

    #[test]
    fn corrupt_entry_is_an_error_not_a_panic() {
        let mut s = Storage::new();
        s.put_raw("x", vec![0xff]);
        assert!(s.get::<String>("x").is_err());
    }

    #[test]
    fn prefix_iteration_is_sorted_and_bounded() {
        let mut s = Storage::new();
        s.put_raw("log/2", vec![2]);
        s.put_raw("log/1", vec![1]);
        s.put_raw("meta", vec![0]);
        let keys: Vec<&str> = s.keys_with_prefix("log/").collect();
        assert_eq!(keys, ["log/1", "log/2"]);
    }

    #[test]
    fn journal_records_and_replays_in_order() {
        let mut fragment = Storage::new();
        fragment.enable_journal();
        fragment.put("seq", &7u64).unwrap();
        fragment.put_raw("log/1", vec![1]);
        fragment.remove("log/1");
        fragment.put_raw("log/2", vec![2]);

        let ops = fragment.take_journal();
        assert_eq!(ops.len(), 4);
        assert!(fragment.take_journal().is_empty());

        let mut authoritative = Storage::new();
        authoritative.apply(ops);
        assert_eq!(authoritative.get::<u64>("seq").unwrap(), Some(7));
        assert_eq!(authoritative.get_raw("log/1"), None);
        assert_eq!(authoritative.get_raw("log/2"), Some(&[2u8][..]));
    }

    #[test]
    fn scoped_mutations_are_journaled_with_full_keys() {
        let mut s = Storage::new();
        s.enable_journal();
        s.scoped("ch/9/").put_raw("state", vec![3]);
        assert_eq!(
            s.take_journal(),
            vec![StorageOp::Put("ch/9/state".to_string(), vec![3])]
        );
        assert_eq!(
            s.entries_with_prefix("ch/"),
            vec![("ch/9/state".to_string(), vec![3])]
        );
    }

    #[test]
    fn remove_and_sizes() {
        let mut s = Storage::new();
        s.put_raw("a", vec![1, 2, 3]);
        assert_eq!(s.size_bytes(), 3);
        assert!(s.remove("a"));
        assert!(!s.remove("a"));
        assert!(s.is_empty());
    }
}
