//! Simulation parameters.

use crate::time::Duration;

/// Distribution of one-way message latencies.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum LatencyModel {
    /// Every message takes exactly this long.
    Fixed(Duration),
    /// Latency uniform in `[min, max]`.
    Uniform {
        /// Lower bound.
        min: Duration,
        /// Upper bound (inclusive).
        max: Duration,
    },
}

impl Default for LatencyModel {
    /// LAN-ish default: uniform 0.5–2 ms.
    fn default() -> Self {
        LatencyModel::Uniform {
            min: Duration::from_micros(500),
            max: Duration::from_millis(2),
        }
    }
}

/// Configuration of a [`SimNet`](crate::SimNet).
#[derive(Debug, Clone, PartialEq)]
pub struct SimConfig {
    /// Seed of the simulation RNG — two runs with equal seeds and equal
    /// inputs produce identical schedules.
    pub seed: u64,
    /// One-way latency distribution.
    pub latency: LatencyModel,
    /// Independent per-message drop probability in `[0, 1]` (self-sends are
    /// never dropped).
    pub drop_probability: f64,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            seed: 42,
            latency: LatencyModel::default(),
            drop_probability: 0.0,
        }
    }
}

impl SimConfig {
    /// Convenience: default config with the given seed.
    pub fn with_seed(seed: u64) -> Self {
        SimConfig {
            seed,
            ..SimConfig::default()
        }
    }

    /// Convenience: default config with the given loss rate.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not within `[0, 1]`.
    pub fn with_loss(p: f64) -> Self {
        assert!((0.0..=1.0).contains(&p), "drop probability {p} outside [0, 1]");
        SimConfig {
            drop_probability: p,
            ..SimConfig::default()
        }
    }
}
