//! The compound-filter matching engine.
//!
//! "By gathering filters of several subscribers on a given host, a compound
//! filter can be generated which factors out redundancies between these
//! individual filters. By doing so, performance can be significantly
//! improved" (paper §2.3.2, citing [ASS+99]).
//!
//! [`FilterIndex`] implements that compound filter in the style of Aguilera
//! et al.'s counting algorithm, with per-event cost proportional to the
//! *event*, not the subscription population:
//!
//! 1. **predicate deduplication** — syntactically equal predicates from
//!    different subscriptions are stored once and evaluated once per obvent;
//! 2. **attribute-keyed buckets** — predicates are grouped by property path
//!    into `(attribute, op, value-bucket)` buckets: equality predicates in
//!    hash buckets keyed by canonicalized operand, ordered comparisons
//!    (`<`, `<=`, `>`, `>=`) in sorted threshold lists answered by one
//!    binary search, existence tests in a presence list, and everything
//!    else (`!=`, string ops, structured operands) in a small residual set
//!    evaluated individually — still sharing the property fetch;
//! 3. **O(attrs) probing** — when the event can enumerate its own
//!    properties ([`PropertySource::visit_properties`]), `matching` walks
//!    the *event's* attributes and hash-probes the buckets, so the phase-1
//!    cost is O(event attributes), independent of how many filters are
//!    stored; non-enumerable sources fall back to one fetch per indexed
//!    path;
//! 4. **counting with access-predicate gating** — each satisfied predicate
//!    bumps a per-filter counter of its posting-list subscribers.
//!    Conjunctions mixing selective equality predicates with wide-range
//!    ones post *only the equalities*: a wide threshold predicate is
//!    satisfied by half the population on every event, so counting it
//!    would cost O(filters) — instead the narrow hash buckets gate the
//!    counter and a trigger verifies the remaining predicates directly.
//!    All-range conjunctions post everything and match at their arity with
//!    no verification; only predicates some posting list or evaluation DAG
//!    actually consumes occupy probe buckets at all. General trees carry a
//!    *trigger threshold* (a lower bound on how many of their predicates
//!    any satisfying assignment needs) and are only DAG-evaluated when the
//!    counter reaches it; trees satisfiable with zero true predicates
//!    (negation-dominated shapes) sit in a residual set evaluated on every
//!    event, and provably false trees are never evaluated at all;
//! 5. **sub-expression hash-consing** — general evaluation trees are
//!    interned into a shared DAG at insert time (commutative operators
//!    normalized), so identical sub-expressions across subscriptions are
//!    stored once and, via per-obvent memoization, evaluated once. The
//!    evaluations avoided relative to the naive baseline are counted in the
//!    `filter.factored_evals_saved` telemetry counter.
//!
//! Selectivity is observable: `filter.index.probes` counts bucket probes
//! per call, `filter.index.candidates` counts DAG evaluations actually
//! performed, and `filter.index.shortcircuits` counts live filters the
//! engine never touched.
//!
//! [`FilterIndex::naive_matching`] provides the unfactored baseline (every
//! filter evaluated independently, repeating lookups and comparisons); the
//! benchmark suite measures the gap (experiments E1 and E11). Property
//! tests assert the two are extensionally equal, and
//! [`FilterIndex::check_consistency`] audits the posting lists, refcounts
//! and bucket placement against a from-first-principles reconstruction —
//! the churn-storm harness calls it mid-chaos.
//!
//! [`FilterIndex::matching`] takes `&self`: the generation-stamped scratch
//! state (predicate truths, conjunction counters, sub-expression memo) lives
//! in a [`RefCell`], so read-side callers — the publish hot path — do not
//! need a mutable index.

use std::cell::RefCell;
use std::collections::HashMap;

use psc_telemetry::{Inspect, ReportBuilder};

use crate::metrics::metrics;
use crate::{CmpOp, EvalNode, Predicate, PropPath, PropertySource, RemoteFilter, Value};

/// Stable handle for a filter stored in a [`FilterIndex`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct FilterId(u64);

impl FilterId {
    /// The raw numeric id (useful for logging).
    pub fn as_u64(self) -> u64 {
        self.0
    }
}

/// Ablation switches for [`FilterIndex`] (experiment E1 measures each
/// mechanism's contribution; production code uses the default, all-on).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IndexOptions {
    /// Share syntactically equal predicates between filters (one evaluation
    /// per obvent instead of one per filter).
    pub dedup: bool,
    /// Batch equality predicates into hash lookups and ordered comparisons
    /// into binary searches over sorted thresholds.
    pub batch: bool,
}

impl Default for IndexOptions {
    fn default() -> Self {
        IndexOptions {
            dedup: true,
            batch: true,
        }
    }
}

/// Aggregate statistics about sharing and bucket placement inside the index.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct IndexStats {
    /// Number of stored filters.
    pub filters: usize,
    /// Total predicate occurrences across all filters.
    pub total_predicates: usize,
    /// Distinct predicates after deduplication.
    pub unique_predicates: usize,
    /// Distinct property paths fetched per matched obvent.
    pub paths: usize,
    /// Live nodes in the hash-consed sub-expression DAG (general trees
    /// only; a value smaller than the summed tree sizes means cross-filter
    /// sharing).
    pub shared_nodes: usize,
    /// Filters matched purely by counting triggers (pure conjunctions plus
    /// threshold-triggered general trees).
    pub counting_filters: usize,
    /// Filters whose tree must be evaluated on every event (satisfiable
    /// with zero true predicates, e.g. negation-dominated shapes).
    pub residual_filters: usize,
    /// Distinct predicates answered by batched buckets (equality hash,
    /// threshold binary search, existence list).
    pub indexed_preds: usize,
    /// Distinct predicates in the residual per-path sets, evaluated
    /// individually when their path is present.
    pub residual_preds: usize,
}

/// How `matching` decides a stored filter's fate; fixed at insert time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum MatchPlan {
    /// Pass-all / zero-arity conjunction: matches every event.
    Unconditional,
    /// Pure conjunction of `arity` distinct predicates. Ungated, it is
    /// matched by counting alone — every predicate posts, the counter
    /// reaching `arity` is the match. Gated, only the filter's selective
    /// equality predicates ("access predicates") post: the counter reaching
    /// the gate count makes the filter a *verification candidate*, whose
    /// remaining wide-range predicates are checked directly instead of
    /// being counted through threshold buckets that half the population
    /// satisfies on every event.
    Conjunction { arity: u32, gated: bool },
    /// General tree, DAG-evaluated only when at least `threshold` of the
    /// filter's distinct predicates are satisfied (a sound lower bound on
    /// any satisfying assignment).
    CountedTree { threshold: u32, root: u32 },
    /// General tree satisfiable with zero true predicates: DAG-evaluated on
    /// every event.
    ResidualTree { root: u32 },
    /// Tree that is constant-false after interning: never evaluated.
    Never { root: u32 },
}

impl MatchPlan {
    fn root(self) -> Option<u32> {
        match self {
            MatchPlan::CountedTree { root, .. }
            | MatchPlan::ResidualTree { root }
            | MatchPlan::Never { root } => Some(root),
            MatchPlan::Unconditional | MatchPlan::Conjunction { .. } => None,
        }
    }

    /// True when the filter subscribes to posting lists (its counter can
    /// trigger a match or a DAG evaluation).
    fn counted(self) -> bool {
        matches!(
            self,
            MatchPlan::Conjunction { .. } | MatchPlan::CountedTree { .. }
        )
    }
}

#[derive(Debug)]
struct StoredFilter {
    filter: RemoteFilter,
    /// Global predicate ids in the order of the filter's own predicate list.
    globals: Vec<usize>,
    /// The sorted distinct globals this filter posted to (its access
    /// predicates when gated; all counted predicates otherwise).
    posted: Vec<usize>,
    /// Dense counter slot.
    slot: usize,
    plan: MatchPlan,
}

/// Canonical key of one hash-consed sub-expression. `And`/`Or` children are
/// sorted and deduplicated (boolean conjunction/disjunction are commutative
/// and idempotent), so `a && b` and `b && a` intern to the same node.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
enum SharedKey {
    True,
    False,
    /// Global (deduplicated) predicate id.
    Pred(usize),
    And(Vec<u32>),
    Or(Vec<u32>),
    Not(u32),
}

/// `min_true` sentinel: the node is constant-false (no assignment makes it
/// true).
const UNSATISFIABLE: u32 = u32::MAX;

/// `slot_root` sentinel: the slot's filter has no evaluation DAG (pure
/// conjunction or unconditional).
const NO_ROOT: u32 = u32::MAX;

/// `slot_target` sentinel: the slot never triggers by counting (it is
/// unconditional, residual, or constant-false — or vacant).
const NO_TARGET: u32 = u32::MAX;

/// `slot_root` sentinel: the slot is a gated conjunction — on trigger the
/// stored filter is verified directly instead of DAG-evaluated.
const VERIFY: u32 = u32::MAX - 1;

#[derive(Debug)]
struct SharedNode {
    key: SharedKey,
    refcount: usize,
    /// Lower bound on the number of *distinct satisfied predicates* any
    /// assignment making this node true must contain ([`UNSATISFIABLE`] if
    /// none exists). Sound but conservative: `And` takes the max of its
    /// children's bounds and its count of direct distinct predicate leaves
    /// (never the sum — children may share predicates), `Or` the min,
    /// `Not` claims nothing (0).
    min_true: u32,
}

/// Generation-stamped scratch reused across `matching` calls; kept behind a
/// `RefCell` so matching borrows the index immutably.
#[derive(Debug, Default)]
struct Scratch {
    gen: u64,
    /// Per global predicate: generation at which it was last satisfied.
    truth_gen: Vec<u64>,
    /// Per filter slot: generation stamp + count of satisfied conjuncts.
    counter_gen: Vec<u64>,
    counters: Vec<u32>,
    /// Per shared DAG node: memoized truth for the current generation.
    node_gen: Vec<u64>,
    node_truth: Vec<bool>,
    /// Reusable buffers (satisfied predicate ids; counting-triggered slots)
    /// so the hot path does not allocate per call.
    satisfied: Vec<usize>,
    candidates: Vec<usize>,
}

#[derive(Debug)]
struct PredEntry {
    pred: Predicate,
    refcount: usize,
    /// Filters (by slot) counting this predicate: gated conjunctions over
    /// their equality gates, ungated ones over their distinct leaves,
    /// counted trees over their distinct predicates — with multiplicity 1
    /// either way.
    postings: Vec<usize>,
    /// True while the predicate occupies its path group's bucket. Only
    /// predicates whose per-event truth is consumed — posted somewhere, or
    /// referenced by a live DAG node — are bucketed and probed; a gated
    /// conjunction's non-gate predicates cost nothing per event.
    in_bucket: bool,
}

#[derive(Debug, Default)]
struct PathGroup {
    /// `(threshold, pred)` sorted by threshold, per comparison op.
    lt: Vec<(f64, usize)>,
    le: Vec<(f64, usize)>,
    gt: Vec<(f64, usize)>,
    ge: Vec<(f64, usize)>,
    /// Equality predicates keyed by the canonicalized operand.
    eq: HashMap<Value, Vec<usize>>,
    /// Predicates satisfied whenever the property exists.
    exists: Vec<usize>,
    /// Everything else: evaluated individually (still sharing the fetch).
    general: Vec<usize>,
}

impl PathGroup {
    fn is_empty(&self) -> bool {
        self.lt.is_empty()
            && self.le.is_empty()
            && self.gt.is_empty()
            && self.ge.is_empty()
            && self.eq.is_empty()
            && self.exists.is_empty()
            && self.general.is_empty()
    }

    fn indexed_len(&self) -> usize {
        self.lt.len()
            + self.le.len()
            + self.gt.len()
            + self.ge.len()
            + self.eq.values().map(Vec::len).sum::<usize>()
            + self.exists.len()
    }
}

/// The factoring matching index; see the module docs.
///
/// ```
/// use psc_filter::{rfilter, FilterIndex, Value};
///
/// let mut index = FilterIndex::new();
/// let id = index.insert(rfilter!(price >= 10 && price <= 20));
/// let quote = Value::record([("price", Value::from(15))]);
/// assert_eq!(index.matching(&quote), vec![id]);
/// index.remove(id);
/// assert!(index.matching(&quote).is_empty());
/// ```
#[derive(Debug, Default)]
pub struct FilterIndex {
    options: IndexOptions,
    next_id: u64,
    filters: HashMap<FilterId, StoredFilter>,
    /// slot -> FilterId of the occupant (freed slots go on `free_slots`).
    slots: Vec<Option<FilterId>>,
    /// slot -> counter value that triggers the slot (arity or threshold);
    /// [`NO_TARGET`] when counting never triggers it. Dense so the counting
    /// loop never touches the filter hash map.
    slot_target: Vec<u32>,
    /// slot -> evaluation DAG root, [`NO_ROOT`] for counting-only slots.
    slot_root: Vec<u32>,
    free_slots: Vec<usize>,
    preds: Vec<PredEntry>,
    pred_lookup: HashMap<Predicate, usize>,
    free_preds: Vec<usize>,
    groups: HashMap<PropPath, PathGroup>,
    /// Slots whose tree must be evaluated on every event (satisfiable with
    /// zero true predicates).
    residual_trees: Vec<usize>,
    /// Pass-all / zero-arity filters, by slot.
    unconditional: Vec<usize>,
    /// Hash-consed sub-expression DAG shared by all general-tree filters.
    shared_nodes: Vec<SharedNode>,
    shared_lookup: HashMap<SharedKey, u32>,
    free_nodes: Vec<u32>,
    /// Total predicate occurrences across stored filters (naive evaluation
    /// cost per obvent); `live_preds` is the deduplicated count.
    pred_occurrences: usize,
    live_preds: usize,
    scratch: RefCell<Scratch>,
}

impl FilterIndex {
    /// Creates an empty index with all optimizations enabled.
    pub fn new() -> Self {
        FilterIndex::default()
    }

    /// Creates an empty index with explicit ablation switches (see
    /// [`IndexOptions`]); used by the E1 ablation harness.
    pub fn with_options(options: IndexOptions) -> Self {
        FilterIndex {
            options,
            ..FilterIndex::default()
        }
    }

    /// Number of stored filters.
    pub fn len(&self) -> usize {
        self.filters.len()
    }

    /// True when no filters are stored.
    pub fn is_empty(&self) -> bool {
        self.filters.is_empty()
    }

    /// Sharing statistics (how much factoring bought).
    pub fn stats(&self) -> IndexStats {
        IndexStats {
            filters: self.filters.len(),
            total_predicates: self
                .filters
                .values()
                .map(|f| f.filter.predicates().len())
                .sum(),
            unique_predicates: self.preds.iter().filter(|p| p.refcount > 0).count(),
            paths: self.groups.len(),
            shared_nodes: self.shared_nodes.len() - self.free_nodes.len(),
            counting_filters: self
                .filters
                .values()
                .filter(|f| f.plan.counted())
                .count(),
            residual_filters: self.residual_trees.len(),
            indexed_preds: self.groups.values().map(PathGroup::indexed_len).sum(),
            residual_preds: self.groups.values().map(|g| g.general.len()).sum(),
        }
    }

    /// Inserts a filter and returns its handle.
    pub fn insert(&mut self, filter: RemoteFilter) -> FilterId {
        let id = FilterId(self.next_id);
        self.next_id += 1;

        let slot = match self.free_slots.pop() {
            Some(slot) => {
                self.slots[slot] = Some(id);
                slot
            }
            None => {
                self.slots.push(Some(id));
                self.slot_target.push(NO_TARGET);
                self.slot_root.push(NO_ROOT);
                let scratch = self.scratch.get_mut();
                scratch.counter_gen.push(0);
                scratch.counters.push(0);
                self.slots.len() - 1
            }
        };

        self.pred_occurrences += filter.predicates().len();
        let mut globals = Vec::with_capacity(filter.predicates().len());
        for pred in filter.predicates() {
            globals.push(self.intern_pred(pred));
        }

        let (plan, posted) = match conjunction_leaves(filter.eval_tree()) {
            Some(leaves) => {
                // Deduplicate leaves within the filter so the counter target
                // is the number of *distinct* conditions.
                let mut distinct: Vec<usize> = leaves.iter().map(|&l| globals[l]).collect();
                distinct.sort_unstable();
                distinct.dedup();
                if distinct.is_empty() {
                    (MatchPlan::Unconditional, Vec::new())
                } else {
                    // Access-predicate gating: when the conjunction mixes
                    // selective equality predicates with wide-range ones,
                    // only the equalities post. Their narrow hash buckets
                    // gate the counter; a trigger verifies the whole filter
                    // directly rather than counting range predicates that
                    // half the population satisfies on every event.
                    let gates = self.equality_gates(&distinct);
                    let gated = !gates.is_empty() && gates.len() < distinct.len();
                    let arity = distinct.len() as u32;
                    let posted = if gated { gates } else { distinct };
                    for &g in &posted {
                        self.preds[g].postings.push(slot);
                    }
                    (MatchPlan::Conjunction { arity, gated }, posted)
                }
            }
            None => {
                let root = self.intern_node(filter.eval_tree(), &globals);
                match self.shared_nodes[root as usize].min_true {
                    0 => (MatchPlan::ResidualTree { root }, Vec::new()),
                    UNSATISFIABLE => (MatchPlan::Never { root }, Vec::new()),
                    threshold => {
                        // The tree triggers once `threshold` of the filter's
                        // distinct predicates hold, so every distinct
                        // predicate posts to this slot.
                        let mut distinct: Vec<usize> = globals.clone();
                        distinct.sort_unstable();
                        distinct.dedup();
                        for &g in &distinct {
                            self.preds[g].postings.push(slot);
                        }
                        (MatchPlan::CountedTree { threshold, root }, distinct)
                    }
                }
            }
        };

        if let Some(root) = plan.root() {
            self.slot_root[slot] = root;
        }
        match plan {
            MatchPlan::Unconditional => self.unconditional.push(slot),
            MatchPlan::Conjunction { arity, gated } => {
                if gated {
                    self.slot_target[slot] = posted.len() as u32;
                    self.slot_root[slot] = VERIFY;
                } else {
                    self.slot_target[slot] = arity;
                }
            }
            MatchPlan::CountedTree { threshold, .. } => self.slot_target[slot] = threshold,
            MatchPlan::ResidualTree { .. } => self.residual_trees.push(slot),
            MatchPlan::Never { .. } => {}
        }
        for &g in &globals {
            self.sync_pred_bucket(g);
        }

        self.filters.insert(
            id,
            StoredFilter {
                filter,
                globals,
                posted,
                slot,
                plan,
            },
        );
        id
    }

    /// The subset of `distinct` (sorted global ids) that classify into
    /// equality hash buckets — the candidate access predicates of a gated
    /// conjunction.
    fn equality_gates(&self, distinct: &[usize]) -> Vec<usize> {
        distinct
            .iter()
            .copied()
            .filter(|&g| {
                matches!(
                    classify(&self.preds[g].pred, self.options.batch),
                    Bucket::Equality(_)
                )
            })
            .collect()
    }

    /// Removes a filter. Returns the filter if it was present.
    pub fn remove(&mut self, id: FilterId) -> Option<RemoteFilter> {
        let stored = self.filters.remove(&id)?;
        let slot = stored.slot;
        self.slots[slot] = None;
        self.slot_target[slot] = NO_TARGET;
        self.slot_root[slot] = NO_ROOT;
        self.free_slots.push(slot);
        match stored.plan {
            MatchPlan::Unconditional => self.unconditional.retain(|&s| s != slot),
            MatchPlan::Conjunction { .. } | MatchPlan::CountedTree { .. } => {
                for &g in &stored.posted {
                    self.preds[g].postings.retain(|&s| s != slot);
                }
            }
            MatchPlan::ResidualTree { .. } => self.residual_trees.retain(|&s| s != slot),
            MatchPlan::Never { .. } => {}
        }
        if let Some(root) = stored.plan.root() {
            self.release_node(root);
        }
        // Postings and DAG references are gone; predicates nobody consumes
        // per event leave their probe buckets (before the refcounts drop,
        // while the entries are still live).
        for &g in &stored.globals {
            self.sync_pred_bucket(g);
        }
        self.pred_occurrences -= stored.globals.len();
        for &g in &stored.globals {
            self.release_pred(g);
        }
        Some(stored.filter)
    }

    /// Interns `node` into the shared DAG, returning a node id with one
    /// reference owned by the caller. Commutative operators are normalized
    /// (children sorted, duplicates dropped) and trivial shapes collapsed
    /// (single-child `And`/`Or` become the child; empty ones become the
    /// identity constant), maximizing sharing without changing semantics.
    fn intern_node(&mut self, node: &EvalNode, globals: &[usize]) -> u32 {
        let key = match node {
            EvalNode::True => SharedKey::True,
            EvalNode::False => SharedKey::False,
            EvalNode::Pred(i) => SharedKey::Pred(globals[*i]),
            EvalNode::And(children) | EvalNode::Or(children) => {
                let mut ids: Vec<u32> = children
                    .iter()
                    .map(|c| self.intern_node(c, globals))
                    .collect();
                ids.sort_unstable();
                // Idempotence: duplicate children fold into one reference.
                let mut deduped = Vec::with_capacity(ids.len());
                for id in ids {
                    if deduped.last() == Some(&id) {
                        self.release_node(id);
                    } else {
                        deduped.push(id);
                    }
                }
                let is_and = matches!(node, EvalNode::And(_));
                match deduped.len() {
                    0 => {
                        if is_and {
                            SharedKey::True
                        } else {
                            SharedKey::False
                        }
                    }
                    1 => return deduped.pop().expect("one child"),
                    _ => {
                        if is_and {
                            SharedKey::And(deduped)
                        } else {
                            SharedKey::Or(deduped)
                        }
                    }
                }
            }
            EvalNode::Not(child) => SharedKey::Not(self.intern_node(child, globals)),
        };
        self.intern_key(key)
    }

    /// The [`SharedNode::min_true`] lower bound for a node with `key`,
    /// computed from its (already interned) children.
    fn bound_of_key(&self, key: &SharedKey) -> u32 {
        match key {
            SharedKey::True => 0,
            SharedKey::False => UNSATISFIABLE,
            SharedKey::Pred(_) => 1,
            // A negation can hold with nothing satisfied at all.
            SharedKey::Not(_) => 0,
            SharedKey::And(children) => {
                let mut bound = 0u32;
                let mut pred_children = 0u32;
                for &c in children {
                    let child = &self.shared_nodes[c as usize];
                    if matches!(child.key, SharedKey::Pred(_)) {
                        pred_children += 1;
                    }
                    bound = bound.max(child.min_true);
                }
                // Direct predicate children are distinct globals (children
                // are deduplicated node ids) and must all hold, so their
                // count is a second sound lower bound.
                if bound == UNSATISFIABLE {
                    UNSATISFIABLE
                } else {
                    bound.max(pred_children)
                }
            }
            SharedKey::Or(children) => children
                .iter()
                .map(|&c| self.shared_nodes[c as usize].min_true)
                .min()
                .unwrap_or(UNSATISFIABLE),
        }
    }

    fn intern_key(&mut self, key: SharedKey) -> u32 {
        if let Some(&id) = self.shared_lookup.get(&key) {
            // The existing node already owns references to its children;
            // drop the temporary ones taken while building `key`.
            match &key {
                SharedKey::And(children) | SharedKey::Or(children) => {
                    for &c in children.clone().iter() {
                        self.release_node(c);
                    }
                }
                SharedKey::Not(c) => self.release_node(*c),
                _ => {}
            }
            self.shared_nodes[id as usize].refcount += 1;
            metrics().shared_subexprs.add(1);
            return id;
        }
        let min_true = self.bound_of_key(&key);
        let id = match self.free_nodes.pop() {
            Some(id) => {
                self.shared_nodes[id as usize] = SharedNode {
                    key: key.clone(),
                    refcount: 1,
                    min_true,
                };
                id
            }
            None => {
                self.shared_nodes.push(SharedNode {
                    key: key.clone(),
                    refcount: 1,
                    min_true,
                });
                (self.shared_nodes.len() - 1) as u32
            }
        };
        self.shared_lookup.insert(key, id);
        id
    }

    fn release_node(&mut self, id: u32) {
        let node = &mut self.shared_nodes[id as usize];
        node.refcount -= 1;
        if node.refcount > 0 {
            return;
        }
        let key = std::mem::replace(&mut node.key, SharedKey::False);
        self.shared_lookup.remove(&key);
        match key {
            SharedKey::And(children) | SharedKey::Or(children) => {
                for c in children {
                    self.release_node(c);
                }
            }
            SharedKey::Not(c) => self.release_node(c),
            _ => {}
        }
        self.free_nodes.push(id);
    }

    /// Evaluates shared node `id` with per-generation memoization. A memo
    /// hit is an evaluation another filter (or another branch) already paid
    /// for — counted into `saved`.
    fn eval_shared(&self, scratch: &mut Scratch, id: u32, saved: &mut u64) -> bool {
        let i = id as usize;
        if scratch.node_gen[i] == scratch.gen {
            *saved += 1;
            return scratch.node_truth[i];
        }
        let truth = match &self.shared_nodes[i].key {
            SharedKey::True => true,
            SharedKey::False => false,
            SharedKey::Pred(g) => scratch.truth_gen[*g] == scratch.gen,
            SharedKey::And(children) => children
                .iter()
                .all(|&c| self.eval_shared(scratch, c, saved)),
            SharedKey::Or(children) => children
                .iter()
                .any(|&c| self.eval_shared(scratch, c, saved)),
            SharedKey::Not(c) => !self.eval_shared(scratch, *c, saved),
        };
        scratch.node_gen[i] = scratch.gen;
        scratch.node_truth[i] = truth;
        truth
    }

    /// Probes one path group with the value found at its path, appending
    /// the ids of satisfied predicates: hash lookup for equality, binary
    /// search over sorted thresholds for ordered comparisons, individual
    /// evaluation for the residual set.
    fn probe_group(&self, group: &PathGroup, value: &Value, satisfied: &mut Vec<usize>) {
        satisfied.extend_from_slice(&group.exists);
        if let Some(eq_hits) = group.eq.get(&canonical(value)) {
            satisfied.extend_from_slice(eq_hits);
        }
        match exact_f64(value) {
            Some(x) if !x.is_nan() => {
                // lt: x < t  ⇔ t > x
                let start = group.lt.partition_point(|(t, _)| *t <= x);
                satisfied.extend(group.lt[start..].iter().map(|&(_, p)| p));
                // le: x <= t ⇔ t >= x
                let start = group.le.partition_point(|(t, _)| *t < x);
                satisfied.extend(group.le[start..].iter().map(|&(_, p)| p));
                // gt: x > t ⇔ t < x
                let end = group.gt.partition_point(|(t, _)| *t < x);
                satisfied.extend(group.gt[..end].iter().map(|&(_, p)| p));
                // ge: x >= t ⇔ t <= x
                let end = group.ge.partition_point(|(t, _)| *t <= x);
                satisfied.extend(group.ge[..end].iter().map(|&(_, p)| p));
            }
            _ => {
                // Non-numeric, NaN, or not exactly representable as f64:
                // fall back to individual evaluation of the threshold
                // buckets to preserve exact semantics.
                for &(_, p) in group
                    .lt
                    .iter()
                    .chain(&group.le)
                    .chain(&group.gt)
                    .chain(&group.ge)
                {
                    let pred = &self.preds[p].pred;
                    if pred.op.apply(value, &pred.operand) {
                        satisfied.push(p);
                    }
                }
            }
        }
        for &p in &group.general {
            let pred = &self.preds[p].pred;
            if pred.op.apply(value, &pred.operand) {
                satisfied.push(p);
            }
        }
    }

    /// Returns the ids of all filters matching `source`, ascending.
    ///
    /// Takes `&self`: the per-call scratch state lives in a `RefCell`, so
    /// the publish hot path can match against a shared index. Not
    /// re-entrant — `PropertySource` implementations must not call
    /// back into the same index (they are plain data accessors).
    pub fn matching(&self, source: &dyn PropertySource) -> Vec<FilterId> {
        let m = metrics();
        m.matching_calls.add(1);
        let mut scratch = self.scratch.borrow_mut();
        let scratch = &mut *scratch;
        scratch.gen = scratch.gen.wrapping_add(1);
        let gen = scratch.gen;
        if scratch.truth_gen.len() < self.preds.len() {
            scratch.truth_gen.resize(self.preds.len(), 0);
        }
        if scratch.node_gen.len() < self.shared_nodes.len() {
            scratch.node_gen.resize(self.shared_nodes.len(), 0);
            scratch.node_truth.resize(self.shared_nodes.len(), false);
        }
        // Every deduplicated predicate occurrence is an evaluation the
        // naive baseline would have repeated.
        let mut saved = (self.pred_occurrences - self.live_preds) as u64;

        // Phase 1: enumerate satisfied predicates. Fast path: walk the
        // *event's* attributes and hash-probe the per-path buckets —
        // O(attrs) probes, independent of the subscription population.
        // Sources that cannot enumerate themselves fall back to one fetch
        // per indexed path.
        let mut satisfied = std::mem::take(&mut scratch.satisfied);
        satisfied.clear();
        let mut probes = 0u64;
        let enumerated = source.visit_properties(&mut |path, value| {
            if let Some(group) = self.groups.get(path) {
                probes += 1;
                self.probe_group(group, value, &mut satisfied);
            }
        });
        if !enumerated {
            for (path, group) in &self.groups {
                let Some(value) = source.property(path) else { continue };
                probes += 1;
                self.probe_group(group, &value, &mut satisfied);
            }
        }
        m.index_probes.add(probes);

        // Phase 2: counting. Each satisfied predicate bumps the counters of
        // its posting slots; a conjunction reaching its arity matches
        // outright, a counted tree reaching its threshold becomes a DAG
        // candidate. Dense slot arrays: no hash lookups in the loop.
        let mut matched: Vec<FilterId> = Vec::new();
        let mut candidates = std::mem::take(&mut scratch.candidates);
        candidates.clear();
        let mut touched = 0u64;
        for &p in &satisfied {
            if scratch.truth_gen[p] == gen {
                // A source enumerating a path twice must not double-count.
                continue;
            }
            scratch.truth_gen[p] = gen;
            for &slot in &self.preds[p].postings {
                if scratch.counter_gen[slot] != gen {
                    scratch.counter_gen[slot] = gen;
                    scratch.counters[slot] = 0;
                    touched += 1;
                }
                scratch.counters[slot] += 1;
                if scratch.counters[slot] == self.slot_target[slot] {
                    if self.slot_root[slot] == NO_ROOT {
                        if let Some(id) = self.slots[slot] {
                            matched.push(id);
                        }
                    } else {
                        candidates.push(slot);
                    }
                }
            }
        }

        // Phase 3: unconditional filters always match.
        for &slot in &self.unconditional {
            if let Some(id) = self.slots[slot] {
                matched.push(id);
            }
        }

        // Phase 4: counting-triggered candidates plus the residual trees.
        // Gated conjunctions (all access predicates held) verify the stored
        // filter directly; everything else walks the hash-consed DAG with
        // per-generation memoization sharing sub-expression results.
        m.index_candidates
            .add((candidates.len() + self.residual_trees.len()) as u64);
        for &slot in candidates.iter().chain(&self.residual_trees) {
            let Some(id) = self.slots[slot] else { continue };
            let root = self.slot_root[slot];
            debug_assert_ne!(root, NO_ROOT, "evaluated slots carry a DAG root");
            let hit = if root == VERIFY {
                self.filters[&id].filter.matches(source)
            } else {
                self.eval_shared(scratch, root, &mut saved)
            };
            if hit {
                matched.push(id);
            }
        }
        let evaluated =
            touched + (self.unconditional.len() + self.residual_trees.len()) as u64;
        m.index_shortcircuits
            .add((self.filters.len() as u64).saturating_sub(evaluated));
        m.factored_evals_saved.add(saved);

        scratch.satisfied = satisfied;
        scratch.candidates = candidates;

        matched.sort_unstable();
        matched.dedup();
        matched
    }

    /// The unfactored baseline: evaluates every stored filter independently.
    /// Extensionally equal to [`FilterIndex::matching`]; exists for
    /// benchmarking the indexing speedup (experiments E1, E11) and as the
    /// differential oracle of the property tests and the churn-storm
    /// harness.
    pub fn naive_matching(&self, source: &dyn PropertySource) -> Vec<FilterId> {
        let mut matched: Vec<FilterId> = self
            .filters
            .iter()
            .filter(|(_, stored)| stored.filter.matches(source))
            .map(|(&id, _)| id)
            .collect();
        matched.sort_unstable();
        matched
    }

    /// Audits the index's internal bookkeeping — posting lists, predicate
    /// refcounts, bucket placement, DAG refcounts and trigger metadata —
    /// against a reconstruction from the stored filters. Returns the first
    /// discrepancy found; `Ok(())` means a from-scratch rebuild would
    /// produce an equivalent structure.
    ///
    /// Cost is O(index); meant for tests and the harness's mid-chaos
    /// `FilterOracle`, not the hot path.
    pub fn check_consistency(&self) -> Result<(), String> {
        if self.slots.len() != self.slot_target.len() || self.slots.len() != self.slot_root.len()
        {
            return Err(format!(
                "slot tables disagree: slots={} targets={} roots={}",
                self.slots.len(),
                self.slot_target.len(),
                self.slot_root.len()
            ));
        }

        // Slot occupancy: every stored filter sits in its slot, every
        // occupied slot is backed by a stored filter, vacancies are on the
        // free list exactly once.
        let occupied = self.slots.iter().filter(|s| s.is_some()).count();
        if occupied != self.filters.len() {
            return Err(format!(
                "{} occupied slots but {} stored filters",
                occupied,
                self.filters.len()
            ));
        }
        let mut free = self.free_slots.clone();
        free.sort_unstable();
        let dup_free = free.windows(2).any(|w| w[0] == w[1]);
        if dup_free || free.len() != self.slots.len() - occupied {
            return Err(format!(
                "free slot list inconsistent: {} entries (dup={}) for {} vacancies",
                free.len(),
                dup_free,
                self.slots.len() - occupied
            ));
        }
        if let Some(&s) = self.free_slots.iter().find(|&&s| self.slots[s].is_some()) {
            return Err(format!("slot {s} is both free and occupied"));
        }

        // Per-filter: slot back-pointer, plan metadata mirrored in the
        // dense arrays, globals resolving to live predicates with the
        // filter's own predicate content.
        let mut expected_postings: HashMap<usize, Vec<usize>> = HashMap::new();
        let mut expected_refs: HashMap<usize, usize> = HashMap::new();
        let mut expected_unconditional = Vec::new();
        let mut expected_residual = Vec::new();
        let mut expected_occurrences = 0usize;
        for (id, stored) in &self.filters {
            if self.slots.get(stored.slot).copied().flatten() != Some(*id) {
                return Err(format!(
                    "filter {} does not occupy its slot {}",
                    id.as_u64(),
                    stored.slot
                ));
            }
            if stored.globals.len() != stored.filter.predicates().len() {
                return Err(format!(
                    "filter {}: {} globals for {} predicates",
                    id.as_u64(),
                    stored.globals.len(),
                    stored.filter.predicates().len()
                ));
            }
            expected_occurrences += stored.globals.len();
            for (g, pred) in stored.globals.iter().zip(stored.filter.predicates()) {
                let entry = self
                    .preds
                    .get(*g)
                    .ok_or_else(|| format!("filter {}: global {g} out of range", id.as_u64()))?;
                if entry.refcount == 0 {
                    return Err(format!(
                        "filter {}: global {g} points at a freed predicate",
                        id.as_u64()
                    ));
                }
                if entry.pred != *pred {
                    return Err(format!(
                        "filter {}: global {g} stores `{}` but the filter says `{pred}`",
                        id.as_u64(),
                        entry.pred
                    ));
                }
                *expected_refs.entry(*g).or_default() += 1;
            }

            let (want_target, want_root) = match stored.plan {
                MatchPlan::Unconditional => {
                    expected_unconditional.push(stored.slot);
                    (NO_TARGET, NO_ROOT)
                }
                MatchPlan::Conjunction { arity, gated } => {
                    if gated {
                        (stored.posted.len() as u32, VERIFY)
                    } else {
                        (arity, NO_ROOT)
                    }
                }
                MatchPlan::CountedTree { threshold, root } => (threshold, root),
                MatchPlan::ResidualTree { root } => {
                    expected_residual.push(stored.slot);
                    (NO_TARGET, root)
                }
                MatchPlan::Never { root } => (NO_TARGET, root),
            };
            if self.slot_target[stored.slot] != want_target {
                return Err(format!(
                    "filter {}: slot target {} != plan target {want_target}",
                    id.as_u64(),
                    self.slot_target[stored.slot]
                ));
            }
            if self.slot_root[stored.slot] != want_root {
                return Err(format!(
                    "filter {}: slot root {} != plan root {want_root}",
                    id.as_u64(),
                    self.slot_root[stored.slot]
                ));
            }
            if stored.plan.counted() {
                let mut distinct = stored.globals.clone();
                distinct.sort_unstable();
                distinct.dedup();
                let want_posted = match stored.plan {
                    MatchPlan::Conjunction { gated, .. } => {
                        // Conjunctions post their distinct *leaves*; with
                        // `from_parts` the tree may reference a subset of
                        // the predicate list.
                        let leaves = conjunction_leaves(stored.filter.eval_tree())
                            .ok_or_else(|| {
                                format!(
                                    "filter {}: Conjunction plan but tree is not a conjunction",
                                    id.as_u64()
                                )
                            })?;
                        distinct = leaves.iter().map(|&l| stored.globals[l]).collect();
                        distinct.sort_unstable();
                        distinct.dedup();
                        let gates = self.equality_gates(&distinct);
                        let want_gated = !gates.is_empty() && gates.len() < distinct.len();
                        if gated != want_gated {
                            return Err(format!(
                                "filter {}: gated={gated} but {} equality gates of {} leaves",
                                id.as_u64(),
                                gates.len(),
                                distinct.len()
                            ));
                        }
                        if gated {
                            gates
                        } else {
                            distinct
                        }
                    }
                    _ => distinct,
                };
                if stored.posted != want_posted {
                    return Err(format!(
                        "filter {}: posted {:?} but reconstruction says {want_posted:?}",
                        id.as_u64(),
                        stored.posted
                    ));
                }
                for &g in &stored.posted {
                    expected_postings.entry(g).or_default().push(stored.slot);
                }
            } else if !stored.posted.is_empty() {
                return Err(format!(
                    "filter {}: uncounted plan with posted set {:?}",
                    id.as_u64(),
                    stored.posted
                ));
            }
        }
        if expected_occurrences != self.pred_occurrences {
            return Err(format!(
                "pred_occurrences={} but filters hold {expected_occurrences}",
                self.pred_occurrences
            ));
        }

        // Membership lists match the plans exactly.
        for (name, got, want) in [
            ("unconditional", &self.unconditional, &mut expected_unconditional),
            ("residual_trees", &self.residual_trees, &mut expected_residual),
        ] {
            let mut got = got.clone();
            got.sort_unstable();
            want.sort_unstable();
            if got != *want {
                return Err(format!("{name} list {got:?} != expected {want:?}"));
            }
        }

        // Predicate table: refcounts and posting lists reconstruct, freed
        // entries are exactly the free list.
        let live = self.preds.iter().filter(|p| p.refcount > 0).count();
        if live != self.live_preds {
            return Err(format!(
                "live_preds={} but {live} entries have refcount > 0",
                self.live_preds
            ));
        }
        let mut free_preds = self.free_preds.clone();
        free_preds.sort_unstable();
        let dup = free_preds.windows(2).any(|w| w[0] == w[1]);
        if dup || free_preds.len() != self.preds.len() - live {
            return Err(format!(
                "free pred list inconsistent: {} entries (dup={dup}) for {} freed",
                free_preds.len(),
                self.preds.len() - live
            ));
        }
        if let Some(&p) = self.free_preds.iter().find(|&&p| self.preds[p].refcount > 0) {
            return Err(format!("pred {p} is both free and live"));
        }
        for (idx, entry) in self.preds.iter().enumerate() {
            let want_refs = expected_refs.get(&idx).copied().unwrap_or(0);
            if entry.refcount != want_refs {
                return Err(format!(
                    "pred {idx} `{}`: refcount {} but {want_refs} filter occurrences",
                    entry.pred, entry.refcount
                ));
            }
            let mut got = entry.postings.clone();
            got.sort_unstable();
            let mut want = expected_postings.remove(&idx).unwrap_or_default();
            want.sort_unstable();
            if got != want {
                return Err(format!(
                    "pred {idx} `{}`: postings {got:?} != expected {want:?}",
                    entry.pred
                ));
            }
        }
        if self.options.dedup {
            if self.pred_lookup.len() != live {
                return Err(format!(
                    "pred_lookup has {} entries for {live} live predicates",
                    self.pred_lookup.len()
                ));
            }
            for (pred, &idx) in &self.pred_lookup {
                if self.preds.get(idx).map(|e| &e.pred) != Some(pred) {
                    return Err(format!("pred_lookup maps `{pred}` to mismatched entry {idx}"));
                }
            }
        }

        // Bucket placement: every live predicate whose truth is consumed
        // per event (posted, or referenced by a live DAG node) sits in
        // exactly one bucket of its path's group, in the bucket `classify`
        // chooses; every other predicate sits in none.
        let mut placements: HashMap<usize, usize> = HashMap::new();
        for (path, group) in &self.groups {
            if group.is_empty() {
                return Err(format!("empty group retained for path `{path}`"));
            }
            let members = group
                .lt
                .iter()
                .chain(&group.le)
                .chain(&group.gt)
                .chain(&group.ge)
                .map(|&(_, p)| p)
                .chain(group.eq.values().flatten().copied())
                .chain(group.exists.iter().copied())
                .chain(group.general.iter().copied());
            for p in members {
                let entry = self
                    .preds
                    .get(p)
                    .ok_or_else(|| format!("group `{path}` lists out-of-range pred {p}"))?;
                if entry.refcount == 0 {
                    return Err(format!("group `{path}` lists freed pred {p}"));
                }
                if entry.pred.path != *path {
                    return Err(format!(
                        "pred {p} `{}` filed under wrong path `{path}`",
                        entry.pred
                    ));
                }
                *placements.entry(p).or_default() += 1;
            }
        }
        for (idx, entry) in self.preds.iter().enumerate() {
            if entry.refcount == 0 {
                if entry.in_bucket {
                    return Err(format!("freed pred {idx} still flagged in_bucket"));
                }
                continue;
            }
            let needed = !entry.postings.is_empty()
                || self.shared_lookup.contains_key(&SharedKey::Pred(idx));
            if entry.in_bucket != needed {
                return Err(format!(
                    "live pred {idx} `{}`: in_bucket={} but consumption says {needed}",
                    entry.pred, entry.in_bucket
                ));
            }
            let placed = placements.get(&idx).copied().unwrap_or(0);
            if placed != usize::from(needed) {
                return Err(format!(
                    "live pred {idx} `{}` appears {placed} times across buckets (needed={needed})",
                    entry.pred
                ));
            }
        }

        // Shared DAG: refcounts reconstruct from plan roots + live parent
        // edges; lookup covers exactly the live nodes; `min_true` bounds
        // recompute.
        let mut node_refs = vec![0usize; self.shared_nodes.len()];
        for stored in self.filters.values() {
            if let Some(root) = stored.plan.root() {
                node_refs[root as usize] += 1;
            }
        }
        for node in &self.shared_nodes {
            if node.refcount == 0 {
                continue;
            }
            match &node.key {
                SharedKey::And(children) | SharedKey::Or(children) => {
                    for &c in children {
                        node_refs[c as usize] += 1;
                    }
                }
                SharedKey::Not(c) => node_refs[*c as usize] += 1,
                _ => {}
            }
        }
        for (i, node) in self.shared_nodes.iter().enumerate() {
            if node.refcount != node_refs[i] {
                return Err(format!(
                    "DAG node {i} {:?}: refcount {} but {} references",
                    node.key, node.refcount, node_refs[i]
                ));
            }
            if node.refcount > 0 {
                if self.shared_lookup.get(&node.key) != Some(&(i as u32)) {
                    return Err(format!("DAG node {i} {:?} missing from lookup", node.key));
                }
                let bound = self.bound_of_key(&node.key);
                if node.min_true != bound {
                    return Err(format!(
                        "DAG node {i} {:?}: min_true {} but bound recomputes to {bound}",
                        node.key, node.min_true
                    ));
                }
            }
        }
        let live_nodes = self.shared_nodes.iter().filter(|n| n.refcount > 0).count();
        if self.shared_lookup.len() != live_nodes {
            return Err(format!(
                "shared_lookup has {} entries for {live_nodes} live nodes",
                self.shared_lookup.len()
            ));
        }
        if self.free_nodes.len() != self.shared_nodes.len() - live_nodes {
            return Err(format!(
                "free node list has {} entries for {} freed nodes",
                self.free_nodes.len(),
                self.shared_nodes.len() - live_nodes
            ));
        }
        Ok(())
    }

    fn intern_pred(&mut self, pred: &Predicate) -> usize {
        if self.options.dedup {
            if let Some(&idx) = self.pred_lookup.get(pred) {
                self.preds[idx].refcount += 1;
                return idx;
            }
        }
        self.live_preds += 1;
        let idx = match self.free_preds.pop() {
            Some(idx) => {
                self.preds[idx] = PredEntry {
                    pred: pred.clone(),
                    refcount: 1,
                    postings: Vec::new(),
                    in_bucket: false,
                };
                idx
            }
            None => {
                self.preds.push(PredEntry {
                    pred: pred.clone(),
                    refcount: 1,
                    postings: Vec::new(),
                    in_bucket: false,
                });
                self.preds.len() - 1
            }
        };
        if self.options.dedup {
            self.pred_lookup.insert(pred.clone(), idx);
        }
        idx
    }

    fn release_pred(&mut self, idx: usize) {
        self.preds[idx].refcount -= 1;
        if self.preds[idx].refcount == 0 {
            self.live_preds -= 1;
            self.sync_pred_bucket(idx);
            let pred = self.preds[idx].pred.clone();
            self.pred_lookup.remove(&pred);
            self.free_preds.push(idx);
        }
    }

    /// Moves predicate `idx` in or out of its path group's probe bucket
    /// according to whether its per-event truth is consumed at all: by a
    /// posting list (counting) or a live DAG node (evaluation). Everything
    /// else — notably the non-gate predicates of gated conjunctions — stays
    /// out and costs nothing per event.
    fn sync_pred_bucket(&mut self, idx: usize) {
        let entry = &self.preds[idx];
        let needed = entry.refcount > 0
            && (!entry.postings.is_empty()
                || self.shared_lookup.contains_key(&SharedKey::Pred(idx)));
        if needed == entry.in_bucket {
            return;
        }
        if needed {
            self.index_pred(idx);
        } else {
            let pred = self.preds[idx].pred.clone();
            self.unindex_pred(idx, &pred);
        }
    }

    fn index_pred(&mut self, idx: usize) {
        self.preds[idx].in_bucket = true;
        let pred = self.preds[idx].pred.clone();
        let batch = self.options.batch;
        let group = self.groups.entry(pred.path.clone()).or_default();
        match classify(&pred, batch) {
            Bucket::Threshold(op, t) => {
                let vec = match op {
                    CmpOp::Lt => &mut group.lt,
                    CmpOp::Le => &mut group.le,
                    CmpOp::Gt => &mut group.gt,
                    CmpOp::Ge => &mut group.ge,
                    _ => unreachable!("classify returned threshold for non-ordering op"),
                };
                let pos = vec.partition_point(|(x, _)| *x < t);
                vec.insert(pos, (t, idx));
            }
            Bucket::Equality(key) => group.eq.entry(key).or_default().push(idx),
            Bucket::Exists => group.exists.push(idx),
            Bucket::General => group.general.push(idx),
        }
    }

    fn unindex_pred(&mut self, idx: usize, pred: &Predicate) {
        self.preds[idx].in_bucket = false;
        let Some(group) = self.groups.get_mut(&pred.path) else {
            return;
        };
        match classify(pred, self.options.batch) {
            Bucket::Threshold(op, _) => {
                let vec = match op {
                    CmpOp::Lt => &mut group.lt,
                    CmpOp::Le => &mut group.le,
                    CmpOp::Gt => &mut group.gt,
                    CmpOp::Ge => &mut group.ge,
                    _ => unreachable!("classify returned threshold for non-ordering op"),
                };
                vec.retain(|&(_, p)| p != idx);
            }
            Bucket::Equality(key) => {
                if let Some(list) = group.eq.get_mut(&key) {
                    list.retain(|&p| p != idx);
                    if list.is_empty() {
                        group.eq.remove(&key);
                    }
                }
            }
            Bucket::Exists => group.exists.retain(|&p| p != idx),
            Bucket::General => group.general.retain(|&p| p != idx),
        }
        if group.is_empty() {
            self.groups.remove(&pred.path);
        }
    }
}

enum Bucket {
    Threshold(CmpOp, f64),
    Equality(Value),
    Exists,
    General,
}

fn classify(pred: &Predicate, batch: bool) -> Bucket {
    if !batch {
        return match pred.op {
            CmpOp::Exists => Bucket::Exists,
            _ => Bucket::General,
        };
    }
    match pred.op {
        CmpOp::Exists => Bucket::Exists,
        CmpOp::Eq => match &pred.operand {
            Value::Float(f) if f.is_nan() => Bucket::General,
            Value::Int(_) | Value::UInt(_) | Value::Float(_) => {
                Bucket::Equality(canonical(&pred.operand))
            }
            Value::Str(_) | Value::Bool(_) => Bucket::Equality(pred.operand.clone()),
            _ => Bucket::General,
        },
        CmpOp::Lt | CmpOp::Le | CmpOp::Gt | CmpOp::Ge => match exact_f64(&pred.operand) {
            Some(t) if !t.is_nan() => Bucket::Threshold(pred.op, t),
            _ => Bucket::General,
        },
        _ => Bucket::General,
    }
}

/// Canonicalizes numeric values so that `Int(1)`, `UInt(1)` and `Float(1.0)`
/// share one hash-map key, matching [`Value::loose_eq`].
fn canonical(value: &Value) -> Value {
    match value {
        Value::UInt(u) if *u <= i64::MAX as u64 => Value::Int(*u as i64),
        Value::Float(f)
            if f.fract() == 0.0
                && *f >= i64::MIN as f64
                && *f < i64::MAX as f64
                && (*f as i64) as f64 == *f =>
        {
            Value::Int(*f as i64)
        }
        other => other.clone(),
    }
}

/// Returns the value as `f64` only if the conversion is exact, so binary
/// search over thresholds never changes comparison outcomes.
fn exact_f64(value: &Value) -> Option<f64> {
    match value {
        Value::Int(i) => {
            let f = *i as f64;
            (f as i128 == *i as i128).then_some(f)
        }
        Value::UInt(u) => {
            let f = *u as f64;
            (f >= 0.0 && f as u128 == *u as u128).then_some(f)
        }
        Value::Float(f) => Some(*f),
        _ => None,
    }
}

/// Returns the leaf indices if `node` is a pure conjunction (possibly a bare
/// predicate or `True`), else `None`.
fn conjunction_leaves(node: &EvalNode) -> Option<Vec<usize>> {
    fn collect(node: &EvalNode, out: &mut Vec<usize>) -> bool {
        match node {
            EvalNode::True => true,
            EvalNode::Pred(i) => {
                out.push(*i);
                true
            }
            EvalNode::And(children) => children.iter().all(|c| collect(c, out)),
            _ => false,
        }
    }
    let mut leaves = Vec::new();
    collect(node, &mut leaves).then_some(leaves)
}

impl Inspect for FilterIndex {
    fn inspect(&self) -> String {
        let stats = self.stats();
        let mut report = ReportBuilder::new();
        report.section("filter-index");
        report.line(format!(
            "filters={} predicates={} unique={} paths={} shared_nodes={} counting={} residual={} indexed_preds={} residual_preds={}",
            stats.filters,
            stats.total_predicates,
            stats.unique_predicates,
            stats.paths,
            stats.shared_nodes,
            stats.counting_filters,
            stats.residual_filters,
            stats.indexed_preds,
            stats.residual_preds
        ));
        report.end();
        report.finish()
    }
}
