//! The compound-filter matching engine.
//!
//! "By gathering filters of several subscribers on a given host, a compound
//! filter can be generated which factors out redundancies between these
//! individual filters. By doing so, performance can be significantly
//! improved" (paper §2.3.2, citing [ASS+99]).
//!
//! [`FilterIndex`] implements that compound filter in the style of Aguilera
//! et al.'s counting algorithm:
//!
//! 1. **predicate deduplication** — syntactically equal predicates from
//!    different subscriptions are stored once and evaluated once per obvent;
//! 2. **shared property fetches** — predicates are grouped by property path,
//!    so each accessor chain is invoked once per obvent (the shared prefix
//!    structure of the invocation trees);
//! 3. **batched comparisons** — equality predicates on a path are resolved
//!    with one hash lookup, and ordered comparisons (`<`, `<=`, `>`, `>=`)
//!    with one binary search over the sorted thresholds, so only *satisfied*
//!    predicates are enumerated;
//! 4. **counting** — conjunctive filters keep a per-obvent counter of
//!    satisfied conjuncts and match when the counter reaches their arity;
//!    filters with general evaluation trees are evaluated over the shared
//!    truth assignment.
//!
//! 5. **sub-expression hash-consing** — general evaluation trees are
//!    interned into a shared DAG at insert time (commutative operators
//!    normalized), so identical sub-expressions across subscriptions are
//!    stored once and, via per-obvent memoization, evaluated once. The
//!    evaluations avoided relative to the naive baseline are counted in the
//!    `filter.factored_evals_saved` telemetry counter.
//!
//! [`FilterIndex::naive_matching`] provides the unfactored baseline (every
//! filter evaluated independently, repeating lookups and comparisons); the
//! benchmark suite measures the gap (experiment E1). Property tests assert
//! the two are extensionally equal.
//!
//! [`FilterIndex::matching`] takes `&self`: the generation-stamped scratch
//! state (predicate truths, conjunction counters, sub-expression memo) lives
//! in a [`RefCell`], so read-side callers — the publish hot path — do not
//! need a mutable index.

use std::cell::RefCell;
use std::collections::HashMap;

use psc_telemetry::{Inspect, ReportBuilder};

use crate::metrics::metrics;
use crate::{CmpOp, EvalNode, Predicate, PropPath, PropertySource, RemoteFilter, Value};

/// Stable handle for a filter stored in a [`FilterIndex`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct FilterId(u64);

impl FilterId {
    /// The raw numeric id (useful for logging).
    pub fn as_u64(self) -> u64 {
        self.0
    }
}

/// Ablation switches for [`FilterIndex`] (experiment E1 measures each
/// mechanism's contribution; production code uses the default, all-on).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IndexOptions {
    /// Share syntactically equal predicates between filters (one evaluation
    /// per obvent instead of one per filter).
    pub dedup: bool,
    /// Batch equality predicates into hash lookups and ordered comparisons
    /// into binary searches over sorted thresholds.
    pub batch: bool,
}

impl Default for IndexOptions {
    fn default() -> Self {
        IndexOptions {
            dedup: true,
            batch: true,
        }
    }
}

/// Aggregate statistics about sharing inside the index.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct IndexStats {
    /// Number of stored filters.
    pub filters: usize,
    /// Total predicate occurrences across all filters.
    pub total_predicates: usize,
    /// Distinct predicates after deduplication.
    pub unique_predicates: usize,
    /// Distinct property paths fetched per matched obvent.
    pub paths: usize,
    /// Live nodes in the hash-consed sub-expression DAG (general trees
    /// only; a value smaller than the summed tree sizes means cross-filter
    /// sharing).
    pub shared_nodes: usize,
}

#[derive(Debug)]
struct StoredFilter {
    filter: RemoteFilter,
    /// Global predicate ids in the order of the filter's own predicate list.
    globals: Vec<usize>,
    /// Dense counter slot.
    slot: usize,
    /// `Some(arity)` when the evaluation tree is a pure conjunction of
    /// distinct predicates (counting applies); `None` for general trees.
    conjunctive_arity: Option<u32>,
    /// For general trees: root of the filter's hash-consed evaluation DAG
    /// in [`FilterIndex::shared_nodes`].
    shared_root: Option<u32>,
}

/// Canonical key of one hash-consed sub-expression. `And`/`Or` children are
/// sorted and deduplicated (boolean conjunction/disjunction are commutative
/// and idempotent), so `a && b` and `b && a` intern to the same node.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
enum SharedKey {
    True,
    False,
    /// Global (deduplicated) predicate id.
    Pred(usize),
    And(Vec<u32>),
    Or(Vec<u32>),
    Not(u32),
}

#[derive(Debug)]
struct SharedNode {
    key: SharedKey,
    refcount: usize,
}

/// Generation-stamped scratch reused across `matching` calls; kept behind a
/// `RefCell` so matching borrows the index immutably.
#[derive(Debug, Default)]
struct Scratch {
    gen: u64,
    /// Per global predicate: generation at which it was last satisfied.
    truth_gen: Vec<u64>,
    /// Per filter slot: generation stamp + count of satisfied conjuncts.
    counter_gen: Vec<u64>,
    counters: Vec<u32>,
    /// Per shared DAG node: memoized truth for the current generation.
    node_gen: Vec<u64>,
    node_truth: Vec<bool>,
}

#[derive(Debug)]
struct PredEntry {
    pred: Predicate,
    refcount: usize,
    /// Filters (by slot) whose conjunction contains this predicate, with
    /// multiplicity 1 (conjunctive filters deduplicate their own leaves).
    postings: Vec<usize>,
}

#[derive(Debug, Default)]
struct PathGroup {
    /// `(threshold, pred)` sorted by threshold, per comparison op.
    lt: Vec<(f64, usize)>,
    le: Vec<(f64, usize)>,
    gt: Vec<(f64, usize)>,
    ge: Vec<(f64, usize)>,
    /// Equality predicates keyed by the canonicalized operand.
    eq: HashMap<Value, Vec<usize>>,
    /// Predicates satisfied whenever the property exists.
    exists: Vec<usize>,
    /// Everything else: evaluated individually (still sharing the fetch).
    general: Vec<usize>,
}

impl PathGroup {
    fn is_empty(&self) -> bool {
        self.lt.is_empty()
            && self.le.is_empty()
            && self.gt.is_empty()
            && self.ge.is_empty()
            && self.eq.is_empty()
            && self.exists.is_empty()
            && self.general.is_empty()
    }
}

/// The factoring matching index; see the module docs.
///
/// ```
/// use psc_filter::{rfilter, FilterIndex, Value};
///
/// let mut index = FilterIndex::new();
/// let id = index.insert(rfilter!(price >= 10 && price <= 20));
/// let quote = Value::record([("price", Value::from(15))]);
/// assert_eq!(index.matching(&quote), vec![id]);
/// index.remove(id);
/// assert!(index.matching(&quote).is_empty());
/// ```
#[derive(Debug, Default)]
pub struct FilterIndex {
    options: IndexOptions,
    next_id: u64,
    filters: HashMap<FilterId, StoredFilter>,
    /// slot -> FilterId of the occupant (freed slots go on `free_slots`).
    slots: Vec<Option<FilterId>>,
    free_slots: Vec<usize>,
    preds: Vec<PredEntry>,
    pred_lookup: HashMap<Predicate, usize>,
    free_preds: Vec<usize>,
    groups: HashMap<PropPath, PathGroup>,
    /// Filters needing full tree evaluation, by slot.
    tree_filters: Vec<usize>,
    /// Pass-all / zero-arity filters, by slot.
    unconditional: Vec<usize>,
    /// Hash-consed sub-expression DAG shared by all general-tree filters.
    shared_nodes: Vec<SharedNode>,
    shared_lookup: HashMap<SharedKey, u32>,
    free_nodes: Vec<u32>,
    /// Total predicate occurrences across stored filters (naive evaluation
    /// cost per obvent); `live_preds` is the deduplicated count.
    pred_occurrences: usize,
    live_preds: usize,
    scratch: RefCell<Scratch>,
}

impl FilterIndex {
    /// Creates an empty index with all optimizations enabled.
    pub fn new() -> Self {
        FilterIndex::default()
    }

    /// Creates an empty index with explicit ablation switches (see
    /// [`IndexOptions`]); used by the E1 ablation harness.
    pub fn with_options(options: IndexOptions) -> Self {
        FilterIndex {
            options,
            ..FilterIndex::default()
        }
    }

    /// Number of stored filters.
    pub fn len(&self) -> usize {
        self.filters.len()
    }

    /// True when no filters are stored.
    pub fn is_empty(&self) -> bool {
        self.filters.is_empty()
    }

    /// Sharing statistics (how much factoring bought).
    pub fn stats(&self) -> IndexStats {
        IndexStats {
            filters: self.filters.len(),
            total_predicates: self
                .filters
                .values()
                .map(|f| f.filter.predicates().len())
                .sum(),
            unique_predicates: self.preds.iter().filter(|p| p.refcount > 0).count(),
            paths: self.groups.len(),
            shared_nodes: self.shared_nodes.len() - self.free_nodes.len(),
        }
    }

    /// Inserts a filter and returns its handle.
    pub fn insert(&mut self, filter: RemoteFilter) -> FilterId {
        let id = FilterId(self.next_id);
        self.next_id += 1;

        let slot = match self.free_slots.pop() {
            Some(slot) => {
                self.slots[slot] = Some(id);
                slot
            }
            None => {
                self.slots.push(Some(id));
                let scratch = self.scratch.get_mut();
                scratch.counter_gen.push(0);
                scratch.counters.push(0);
                self.slots.len() - 1
            }
        };

        self.pred_occurrences += filter.predicates().len();
        let mut globals = Vec::with_capacity(filter.predicates().len());
        for pred in filter.predicates() {
            globals.push(self.intern_pred(pred));
        }

        let conjunctive_arity = conjunction_leaves(filter.eval_tree()).map(|leaves| {
            // Deduplicate leaves within the filter so the counter target is
            // the number of *distinct* conditions.
            let mut distinct: Vec<usize> = leaves.iter().map(|&l| globals[l]).collect();
            distinct.sort_unstable();
            distinct.dedup();
            for &g in &distinct {
                self.preds[g].postings.push(slot);
            }
            distinct.len() as u32
        });

        let mut shared_root = None;
        match conjunctive_arity {
            Some(0) => self.unconditional.push(slot),
            Some(_) => {}
            None => {
                shared_root = Some(self.intern_node(filter.eval_tree(), &globals));
                self.tree_filters.push(slot);
            }
        }

        self.filters.insert(
            id,
            StoredFilter {
                filter,
                globals,
                slot,
                conjunctive_arity,
                shared_root,
            },
        );
        id
    }

    /// Removes a filter. Returns the filter if it was present.
    pub fn remove(&mut self, id: FilterId) -> Option<RemoteFilter> {
        let stored = self.filters.remove(&id)?;
        self.slots[stored.slot] = None;
        self.free_slots.push(stored.slot);
        match stored.conjunctive_arity {
            Some(0) => self.unconditional.retain(|&s| s != stored.slot),
            Some(_) => {
                let mut distinct: Vec<usize> = stored.globals.clone();
                distinct.sort_unstable();
                distinct.dedup();
                for g in distinct {
                    self.preds[g].postings.retain(|&s| s != stored.slot);
                }
            }
            None => self.tree_filters.retain(|&s| s != stored.slot),
        }
        if let Some(root) = stored.shared_root {
            self.release_node(root);
        }
        self.pred_occurrences -= stored.globals.len();
        for &g in &stored.globals {
            self.release_pred(g);
        }
        Some(stored.filter)
    }

    /// Interns `node` into the shared DAG, returning a node id with one
    /// reference owned by the caller. Commutative operators are normalized
    /// (children sorted, duplicates dropped) and trivial shapes collapsed
    /// (single-child `And`/`Or` become the child; empty ones become the
    /// identity constant), maximizing sharing without changing semantics.
    fn intern_node(&mut self, node: &EvalNode, globals: &[usize]) -> u32 {
        let key = match node {
            EvalNode::True => SharedKey::True,
            EvalNode::False => SharedKey::False,
            EvalNode::Pred(i) => SharedKey::Pred(globals[*i]),
            EvalNode::And(children) | EvalNode::Or(children) => {
                let mut ids: Vec<u32> = children
                    .iter()
                    .map(|c| self.intern_node(c, globals))
                    .collect();
                ids.sort_unstable();
                // Idempotence: duplicate children fold into one reference.
                let mut deduped = Vec::with_capacity(ids.len());
                for id in ids {
                    if deduped.last() == Some(&id) {
                        self.release_node(id);
                    } else {
                        deduped.push(id);
                    }
                }
                let is_and = matches!(node, EvalNode::And(_));
                match deduped.len() {
                    0 => {
                        if is_and {
                            SharedKey::True
                        } else {
                            SharedKey::False
                        }
                    }
                    1 => return deduped.pop().expect("one child"),
                    _ => {
                        if is_and {
                            SharedKey::And(deduped)
                        } else {
                            SharedKey::Or(deduped)
                        }
                    }
                }
            }
            EvalNode::Not(child) => SharedKey::Not(self.intern_node(child, globals)),
        };
        self.intern_key(key)
    }

    fn intern_key(&mut self, key: SharedKey) -> u32 {
        if let Some(&id) = self.shared_lookup.get(&key) {
            // The existing node already owns references to its children;
            // drop the temporary ones taken while building `key`.
            match &key {
                SharedKey::And(children) | SharedKey::Or(children) => {
                    for &c in children.clone().iter() {
                        self.release_node(c);
                    }
                }
                SharedKey::Not(c) => self.release_node(*c),
                _ => {}
            }
            self.shared_nodes[id as usize].refcount += 1;
            metrics().shared_subexprs.add(1);
            return id;
        }
        let id = match self.free_nodes.pop() {
            Some(id) => {
                self.shared_nodes[id as usize] = SharedNode {
                    key: key.clone(),
                    refcount: 1,
                };
                id
            }
            None => {
                self.shared_nodes.push(SharedNode {
                    key: key.clone(),
                    refcount: 1,
                });
                (self.shared_nodes.len() - 1) as u32
            }
        };
        self.shared_lookup.insert(key, id);
        id
    }

    fn release_node(&mut self, id: u32) {
        let node = &mut self.shared_nodes[id as usize];
        node.refcount -= 1;
        if node.refcount > 0 {
            return;
        }
        let key = std::mem::replace(&mut node.key, SharedKey::False);
        self.shared_lookup.remove(&key);
        match key {
            SharedKey::And(children) | SharedKey::Or(children) => {
                for c in children {
                    self.release_node(c);
                }
            }
            SharedKey::Not(c) => self.release_node(c),
            _ => {}
        }
        self.free_nodes.push(id);
    }

    /// Evaluates shared node `id` with per-generation memoization. A memo
    /// hit is an evaluation another filter (or another branch) already paid
    /// for — counted into `saved`.
    fn eval_shared(&self, scratch: &mut Scratch, id: u32, saved: &mut u64) -> bool {
        let i = id as usize;
        if scratch.node_gen[i] == scratch.gen {
            *saved += 1;
            return scratch.node_truth[i];
        }
        let truth = match &self.shared_nodes[i].key {
            SharedKey::True => true,
            SharedKey::False => false,
            SharedKey::Pred(g) => scratch.truth_gen[*g] == scratch.gen,
            SharedKey::And(children) => children
                .iter()
                .all(|&c| self.eval_shared(scratch, c, saved)),
            SharedKey::Or(children) => children
                .iter()
                .any(|&c| self.eval_shared(scratch, c, saved)),
            SharedKey::Not(c) => !self.eval_shared(scratch, *c, saved),
        };
        scratch.node_gen[i] = scratch.gen;
        scratch.node_truth[i] = truth;
        truth
    }

    /// Returns the ids of all filters matching `source`, ascending.
    ///
    /// Takes `&self`: the per-call scratch state lives in a `RefCell`, so
    /// the publish hot path can match against a shared index. Not
    /// re-entrant — `PropertySource::property` implementations must not call
    /// back into the same index (they are plain data accessors).
    pub fn matching(&self, source: &dyn PropertySource) -> Vec<FilterId> {
        metrics().matching_calls.add(1);
        let mut scratch = self.scratch.borrow_mut();
        let scratch = &mut *scratch;
        scratch.gen = scratch.gen.wrapping_add(1);
        let gen = scratch.gen;
        if scratch.truth_gen.len() < self.preds.len() {
            scratch.truth_gen.resize(self.preds.len(), 0);
        }
        if scratch.node_gen.len() < self.shared_nodes.len() {
            scratch.node_gen.resize(self.shared_nodes.len(), 0);
            scratch.node_truth.resize(self.shared_nodes.len(), false);
        }
        // Every deduplicated predicate occurrence is an evaluation the
        // naive baseline would have repeated.
        let mut saved = (self.pred_occurrences - self.live_preds) as u64;

        // Phase 1: enumerate satisfied predicates, path group by path group.
        let mut satisfied: Vec<usize> = Vec::new();
        for (path, group) in &self.groups {
            let value = match source.property(path) {
                Some(v) => v,
                None => continue,
            };
            satisfied.extend_from_slice(&group.exists);
            if let Some(eq_hits) = group.eq.get(&canonical(&value)) {
                satisfied.extend_from_slice(eq_hits);
            }
            match exact_f64(&value) {
                Some(x) if !x.is_nan() => {
                    // lt: x < t  ⇔ t > x
                    let start = group.lt.partition_point(|(t, _)| *t <= x);
                    satisfied.extend(group.lt[start..].iter().map(|&(_, p)| p));
                    // le: x <= t ⇔ t >= x
                    let start = group.le.partition_point(|(t, _)| *t < x);
                    satisfied.extend(group.le[start..].iter().map(|&(_, p)| p));
                    // gt: x > t ⇔ t < x
                    let end = group.gt.partition_point(|(t, _)| *t < x);
                    satisfied.extend(group.gt[..end].iter().map(|&(_, p)| p));
                    // ge: x >= t ⇔ t <= x
                    let end = group.ge.partition_point(|(t, _)| *t <= x);
                    satisfied.extend(group.ge[..end].iter().map(|&(_, p)| p));
                }
                _ => {
                    // Non-numeric, NaN, or not exactly representable as f64:
                    // fall back to individual evaluation of the threshold
                    // buckets to preserve exact semantics.
                    for &(_, p) in group
                        .lt
                        .iter()
                        .chain(&group.le)
                        .chain(&group.gt)
                        .chain(&group.ge)
                    {
                        let pred = &self.preds[p].pred;
                        if pred.op.apply(&value, &pred.operand) {
                            satisfied.push(p);
                        }
                    }
                }
            }
            for &p in &group.general {
                let pred = &self.preds[p].pred;
                if pred.op.apply(&value, &pred.operand) {
                    satisfied.push(p);
                }
            }
        }

        // Phase 2: counting for conjunctive filters.
        let mut matched: Vec<FilterId> = Vec::new();
        for &p in &satisfied {
            scratch.truth_gen[p] = gen;
            for &slot in &self.preds[p].postings {
                if scratch.counter_gen[slot] != gen {
                    scratch.counter_gen[slot] = gen;
                    scratch.counters[slot] = 0;
                }
                scratch.counters[slot] += 1;
                if let Some(id) = self.slots[slot] {
                    let stored = &self.filters[&id];
                    if stored.conjunctive_arity == Some(scratch.counters[slot]) {
                        matched.push(id);
                    }
                }
            }
        }

        // Phase 3: unconditional filters always match.
        for &slot in &self.unconditional {
            if let Some(id) = self.slots[slot] {
                matched.push(id);
            }
        }

        // Phase 4: general evaluation trees over the hash-consed DAG, with
        // per-generation memoization: a sub-expression shared by several
        // filters (or appearing twice inside one tree) is evaluated once.
        for &slot in &self.tree_filters {
            let Some(id) = self.slots[slot] else { continue };
            let stored = &self.filters[&id];
            let root = stored.shared_root.expect("tree filters have a DAG root");
            if self.eval_shared(scratch, root, &mut saved) {
                matched.push(id);
            }
        }
        metrics().factored_evals_saved.add(saved);

        matched.sort_unstable();
        matched.dedup();
        matched
    }

    /// The unfactored baseline: evaluates every stored filter independently.
    /// Extensionally equal to [`FilterIndex::matching`]; exists for
    /// benchmarking the factoring speedup (experiment E1) and as a test
    /// oracle.
    pub fn naive_matching(&self, source: &dyn PropertySource) -> Vec<FilterId> {
        let mut matched: Vec<FilterId> = self
            .filters
            .iter()
            .filter(|(_, stored)| stored.filter.matches(source))
            .map(|(&id, _)| id)
            .collect();
        matched.sort_unstable();
        matched
    }

    fn intern_pred(&mut self, pred: &Predicate) -> usize {
        if self.options.dedup {
            if let Some(&idx) = self.pred_lookup.get(pred) {
                self.preds[idx].refcount += 1;
                return idx;
            }
        }
        self.live_preds += 1;
        let idx = match self.free_preds.pop() {
            Some(idx) => {
                self.preds[idx] = PredEntry {
                    pred: pred.clone(),
                    refcount: 1,
                    postings: Vec::new(),
                };
                idx
            }
            None => {
                self.preds.push(PredEntry {
                    pred: pred.clone(),
                    refcount: 1,
                    postings: Vec::new(),
                });
                self.preds.len() - 1
            }
        };
        if self.options.dedup {
            self.pred_lookup.insert(pred.clone(), idx);
        }
        self.index_pred(idx);
        idx
    }

    fn release_pred(&mut self, idx: usize) {
        self.preds[idx].refcount -= 1;
        if self.preds[idx].refcount == 0 {
            self.live_preds -= 1;
            let pred = self.preds[idx].pred.clone();
            self.pred_lookup.remove(&pred);
            self.unindex_pred(idx, &pred);
            self.free_preds.push(idx);
        }
    }

    fn index_pred(&mut self, idx: usize) {
        let pred = self.preds[idx].pred.clone();
        let batch = self.options.batch;
        let group = self.groups.entry(pred.path.clone()).or_default();
        match classify(&pred, batch) {
            Bucket::Threshold(op, t) => {
                let vec = match op {
                    CmpOp::Lt => &mut group.lt,
                    CmpOp::Le => &mut group.le,
                    CmpOp::Gt => &mut group.gt,
                    CmpOp::Ge => &mut group.ge,
                    _ => unreachable!("classify returned threshold for non-ordering op"),
                };
                let pos = vec.partition_point(|(x, _)| *x < t);
                vec.insert(pos, (t, idx));
            }
            Bucket::Equality(key) => group.eq.entry(key).or_default().push(idx),
            Bucket::Exists => group.exists.push(idx),
            Bucket::General => group.general.push(idx),
        }
    }

    fn unindex_pred(&mut self, idx: usize, pred: &Predicate) {
        let Some(group) = self.groups.get_mut(&pred.path) else {
            return;
        };
        match classify(pred, self.options.batch) {
            Bucket::Threshold(op, _) => {
                let vec = match op {
                    CmpOp::Lt => &mut group.lt,
                    CmpOp::Le => &mut group.le,
                    CmpOp::Gt => &mut group.gt,
                    CmpOp::Ge => &mut group.ge,
                    _ => unreachable!("classify returned threshold for non-ordering op"),
                };
                vec.retain(|&(_, p)| p != idx);
            }
            Bucket::Equality(key) => {
                if let Some(list) = group.eq.get_mut(&key) {
                    list.retain(|&p| p != idx);
                    if list.is_empty() {
                        group.eq.remove(&key);
                    }
                }
            }
            Bucket::Exists => group.exists.retain(|&p| p != idx),
            Bucket::General => group.general.retain(|&p| p != idx),
        }
        if group.is_empty() {
            self.groups.remove(&pred.path);
        }
    }
}

enum Bucket {
    Threshold(CmpOp, f64),
    Equality(Value),
    Exists,
    General,
}

fn classify(pred: &Predicate, batch: bool) -> Bucket {
    if !batch {
        return match pred.op {
            CmpOp::Exists => Bucket::Exists,
            _ => Bucket::General,
        };
    }
    match pred.op {
        CmpOp::Exists => Bucket::Exists,
        CmpOp::Eq => match &pred.operand {
            Value::Float(f) if f.is_nan() => Bucket::General,
            Value::Int(_) | Value::UInt(_) | Value::Float(_) => {
                Bucket::Equality(canonical(&pred.operand))
            }
            Value::Str(_) | Value::Bool(_) => Bucket::Equality(pred.operand.clone()),
            _ => Bucket::General,
        },
        CmpOp::Lt | CmpOp::Le | CmpOp::Gt | CmpOp::Ge => match exact_f64(&pred.operand) {
            Some(t) if !t.is_nan() => Bucket::Threshold(pred.op, t),
            _ => Bucket::General,
        },
        _ => Bucket::General,
    }
}

/// Canonicalizes numeric values so that `Int(1)`, `UInt(1)` and `Float(1.0)`
/// share one hash-map key, matching [`Value::loose_eq`].
fn canonical(value: &Value) -> Value {
    match value {
        Value::UInt(u) if *u <= i64::MAX as u64 => Value::Int(*u as i64),
        Value::Float(f)
            if f.fract() == 0.0
                && *f >= i64::MIN as f64
                && *f < i64::MAX as f64
                && (*f as i64) as f64 == *f =>
        {
            Value::Int(*f as i64)
        }
        other => other.clone(),
    }
}

/// Returns the value as `f64` only if the conversion is exact, so binary
/// search over thresholds never changes comparison outcomes.
fn exact_f64(value: &Value) -> Option<f64> {
    match value {
        Value::Int(i) => {
            let f = *i as f64;
            (f as i128 == *i as i128).then_some(f)
        }
        Value::UInt(u) => {
            let f = *u as f64;
            (f >= 0.0 && f as u128 == *u as u128).then_some(f)
        }
        Value::Float(f) => Some(*f),
        _ => None,
    }
}

/// Returns the leaf indices if `node` is a pure conjunction (possibly a bare
/// predicate or `True`), else `None`.
fn conjunction_leaves(node: &EvalNode) -> Option<Vec<usize>> {
    fn collect(node: &EvalNode, out: &mut Vec<usize>) -> bool {
        match node {
            EvalNode::True => true,
            EvalNode::Pred(i) => {
                out.push(*i);
                true
            }
            EvalNode::And(children) => children.iter().all(|c| collect(c, out)),
            _ => false,
        }
    }
    let mut leaves = Vec::new();
    collect(node, &mut leaves).then_some(leaves)
}

impl Inspect for FilterIndex {
    fn inspect(&self) -> String {
        let stats = self.stats();
        let mut report = ReportBuilder::new();
        report.section("filter-index");
        report.line(format!(
            "filters={} predicates={} unique={} paths={} shared_nodes={}",
            stats.filters,
            stats.total_predicates,
            stats.unique_predicates,
            stats.paths,
            stats.shared_nodes
        ));
        report.end();
        report.finish()
    }
}
