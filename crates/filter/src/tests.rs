use proptest::prelude::*;

use crate::typed::{prop, Expr};
use crate::{
    restrict, CmpOp, EvalNode, FilterIndex, Predicate, PropPath, PropertySource, RemoteFilter,
    Value,
};

fn quote(company: &str, price: f64, amount: i64) -> Value {
    Value::record([
        ("company", Value::from(company)),
        ("price", Value::from(price)),
        ("amount", Value::from(amount)),
    ])
}

mod value_semantics {
    use super::*;
    use std::cmp::Ordering;

    #[test]
    fn numeric_coercion_in_compare() {
        assert_eq!(
            Value::Int(1).compare(&Value::Float(1.0)),
            Some(Ordering::Equal)
        );
        assert_eq!(
            Value::UInt(2).compare(&Value::Int(3)),
            Some(Ordering::Less)
        );
        assert_eq!(
            Value::Int(-1).compare(&Value::UInt(0)),
            Some(Ordering::Less)
        );
        assert_eq!(
            Value::UInt(u64::MAX).compare(&Value::Int(5)),
            Some(Ordering::Greater)
        );
    }

    #[test]
    fn mismatched_types_are_incomparable() {
        assert_eq!(Value::Str("a".into()).compare(&Value::Int(1)), None);
        assert_eq!(Value::Bool(true).compare(&Value::Int(1)), None);
    }

    #[test]
    fn nan_is_incomparable_but_hashable() {
        let nan = Value::Float(f64::NAN);
        assert_eq!(nan.compare(&nan), None);
        assert!(!nan.loose_eq(&nan));
        // Bitwise equality still holds for dedup purposes.
        assert_eq!(nan, Value::Float(f64::NAN));
    }

    #[test]
    fn loose_eq_descends_into_structures() {
        let a = Value::List(vec![Value::Int(1), Value::Float(2.0)]);
        let b = Value::List(vec![Value::Float(1.0), Value::Int(2)]);
        assert!(a.loose_eq(&b));
        let r1 = Value::record([("x", Value::Int(1))]);
        let r2 = Value::record([("x", Value::Float(1.0))]);
        assert!(r1.loose_eq(&r2));
        let r3 = Value::record([("y", Value::Int(1))]);
        assert!(!r1.loose_eq(&r3));
    }

    #[test]
    fn property_lookup_traverses_nested_records() {
        let v = Value::record([(
            "market",
            Value::record([("name", Value::from("ZRH"))]),
        )]);
        assert_eq!(
            v.property(&PropPath::parse("market.name")),
            Some(Value::from("ZRH"))
        );
        assert_eq!(v.property(&PropPath::parse("market.missing")), None);
        assert_eq!(v.property(&PropPath::parse("market.name.deeper")), None);
    }

    #[test]
    fn display_renders_structures() {
        let v = Value::record([("xs", Value::from(vec![1i64, 2]))]);
        assert_eq!(v.to_string(), "{xs: [1, 2]}");
    }
}

mod predicates {
    use super::*;

    #[test]
    fn comparison_operators() {
        let q = quote("Telco Mobiles", 80.0, 10);
        assert!(Predicate::new("price", CmpOp::Lt, 100.0).eval(&q));
        assert!(!Predicate::new("price", CmpOp::Lt, 80.0).eval(&q));
        assert!(Predicate::new("price", CmpOp::Le, 80.0).eval(&q));
        assert!(Predicate::new("price", CmpOp::Gt, 79.9).eval(&q));
        assert!(Predicate::new("price", CmpOp::Ge, 80.0).eval(&q));
        assert!(Predicate::new("amount", CmpOp::Eq, 10).eval(&q));
        assert!(Predicate::new("amount", CmpOp::Ne, 11).eval(&q));
    }

    #[test]
    fn string_operators() {
        let q = quote("Telco Mobiles", 80.0, 10);
        assert!(Predicate::new("company", CmpOp::Contains, "Telco").eval(&q));
        assert!(Predicate::new("company", CmpOp::StartsWith, "Telco").eval(&q));
        assert!(Predicate::new("company", CmpOp::EndsWith, "Mobiles").eval(&q));
        assert!(!Predicate::new("company", CmpOp::Contains, "Bank").eval(&q));
    }

    #[test]
    fn list_contains() {
        let v = Value::record([("tags", Value::from(vec!["a", "b"]))]);
        assert!(Predicate::new("tags", CmpOp::Contains, "a").eval(&v));
        assert!(!Predicate::new("tags", CmpOp::Contains, "c").eval(&v));
    }

    #[test]
    fn missing_property_fails_everything_but_exists_detects_presence() {
        let q = quote("T", 1.0, 1);
        assert!(!Predicate::new("venue", CmpOp::Eq, "x").eval(&q));
        assert!(!Predicate::new("venue", CmpOp::Ne, "x").eval(&q));
        assert!(!Predicate::new("venue", CmpOp::Exists, Value::Unit).eval(&q));
        assert!(Predicate::new("price", CmpOp::Exists, Value::Unit).eval(&q));
    }

    #[test]
    fn type_mismatch_is_false_not_error() {
        let q = quote("T", 1.0, 1);
        assert!(!Predicate::new("company", CmpOp::Lt, 10).eval(&q));
        assert!(!Predicate::new("price", CmpOp::Contains, "1").eval(&q));
    }

    #[test]
    fn display_forms() {
        assert_eq!(
            Predicate::new("price", CmpOp::Lt, 100.0).to_string(),
            "price < 100"
        );
        assert_eq!(
            Predicate::new("x", CmpOp::Exists, Value::Unit).to_string(),
            "x exists"
        );
    }
}

mod filters {
    use super::*;

    #[test]
    fn pass_all_matches_everything() {
        let f = RemoteFilter::pass_all();
        assert!(f.is_pass_all());
        assert!(f.matches(&quote("A", 1.0, 1)));
        assert!(f.matches(&Value::Unit));
    }

    #[test]
    fn paper_example_filter() {
        // §2.3.3: price < 100 && company.indexOf("Telco") != -1
        let f = rfilter!(price < 100.0 && company contains "Telco");
        assert!(f.matches(&quote("Telco Mobiles", 80.0, 10)));
        assert!(!f.matches(&quote("Telco Mobiles", 120.0, 10)));
        assert!(!f.matches(&quote("Banco", 80.0, 10)));
    }

    #[test]
    fn and_or_negate_combinators() {
        let cheap = rfilter!(price < 50.0);
        let telco = rfilter!(company contains "Telco");
        let both = cheap.clone().and(telco.clone());
        let either = cheap.clone().or(telco.clone());
        let not_cheap = cheap.negate();

        let q = quote("Telco", 80.0, 1);
        assert!(!both.matches(&q));
        assert!(either.matches(&q));
        assert!(not_cheap.matches(&q));
    }

    #[test]
    fn or_remaps_predicate_indices() {
        let f = rfilter!(price < 10.0).or(rfilter!(amount > 5));
        assert_eq!(f.predicates().len(), 2);
        assert!(f.matches(&quote("X", 5.0, 1)));
        assert!(f.matches(&quote("X", 50.0, 6)));
        assert!(!f.matches(&quote("X", 50.0, 1)));
    }

    #[test]
    fn matches_with_truths_uses_positional_assignment() {
        let f = rfilter!(price < 10.0 && amount > 5);
        assert!(f.matches_with_truths(&[true, true]));
        assert!(!f.matches_with_truths(&[true, false]));
    }

    #[test]
    #[should_panic(expected = "references predicate")]
    fn from_parts_rejects_out_of_bounds_leaves() {
        RemoteFilter::from_parts(vec![], EvalNode::Pred(0));
    }

    #[test]
    fn display_renders_expression() {
        let f = rfilter!(price < 100.0 && company contains "Telco");
        let s = f.to_string();
        assert!(s.contains("price < 100"));
        assert!(s.contains("&&"));
    }

    #[test]
    fn serde_roundtrip_via_codec() {
        let f = rfilter!(price < 100.0 && market.name == "ZRH");
        let bytes = psc_codec::to_bytes(&f).unwrap();
        let back: RemoteFilter = psc_codec::from_bytes(&bytes).unwrap();
        assert_eq!(f, back);
    }

    #[test]
    fn invocation_tree_shares_prefixes() {
        // §4.4.3: nodes represent invocations; shared accessor prefixes merge.
        let f = rfilter!(market.name == "ZRH" && market.open == true && price < 1.0);
        let tree = f.invocation_tree();
        // Nodes: market, market.name, market.open, price = 4 invocations.
        assert_eq!(tree.invocation_count(), 4);
        let root = &tree.root;
        assert_eq!(root.children.len(), 2); // market, price
        let market = root
            .children
            .iter()
            .find(|c| c.accessor == "market")
            .unwrap();
        assert_eq!(market.children.len(), 2);
    }
}

mod typed_dsl {
    use super::*;

    #[test]
    fn typed_expressions_build_equivalent_filters() {
        let price = prop::<f64>("price");
        let company = prop::<String>("company");
        let f = (price.lt(100.0) & company.contains("Telco")).into_filter();
        assert!(f.matches(&quote("Telco", 80.0, 1)));
        assert!(!f.matches(&quote("Telco", 180.0, 1)));
    }

    #[test]
    fn operators_and_methods_agree() {
        let a = || prop::<i64>("amount").gt(5);
        let b = || prop::<f64>("price").lt(10.0);
        let via_ops = (a() | b()).into_filter();
        let via_methods = a().or(b()).into_filter();
        let q = quote("X", 5.0, 1);
        assert_eq!(via_ops.matches(&q), via_methods.matches(&q));
    }

    #[test]
    fn negation_and_always() {
        let f = (!prop::<f64>("price").lt(10.0)).into_filter();
        assert!(f.matches(&quote("X", 50.0, 1)));
        assert!(Expr::always().into_filter().is_pass_all());
    }

    #[test]
    fn between_is_inclusive() {
        let f = prop::<i64>("amount").between(5, 10).into_filter();
        assert!(f.matches(&quote("X", 1.0, 5)));
        assert!(f.matches(&quote("X", 1.0, 10)));
        assert!(!f.matches(&quote("X", 1.0, 11)));
    }

    #[test]
    fn nested_under_reroots_paths() {
        let name = prop::<String>("name").nested_under(&PropPath::parse("market"));
        let f = name.eq_("ZRH").into_filter();
        let v = Value::record([("market", Value::record([("name", Value::from("ZRH"))]))]);
        assert!(f.matches(&v));
    }

    #[test]
    fn bool_and_list_helpers() {
        let v = Value::record([
            ("open", Value::from(true)),
            ("tags", Value::from(vec!["hot"])),
        ]);
        assert!(prop::<bool>("open").is_true().into_filter().matches(&v));
        assert!(!prop::<bool>("open").is_false().into_filter().matches(&v));
        assert!(prop::<Vec<String>>("tags")
            .has_element("hot")
            .into_filter()
            .matches(&v));
        assert!(prop::<i64>("missing").exists().negate().into_filter().matches(&v));
    }
}

mod restrictions {
    use super::*;
    use restrict::{Restrictions, Violation};

    #[test]
    fn conforming_filter_is_migratable() {
        let f = rfilter!(price < 100.0 && market.name == "ZRH");
        assert!(restrict::is_migratable(&f, &Restrictions::default()));
    }

    #[test]
    fn deep_paths_are_rejected() {
        let limits = Restrictions {
            max_path_depth: 2,
            ..Restrictions::default()
        };
        let f = rfilter!(a.b.c == 1);
        let violations = restrict::check(&f, &limits);
        assert!(matches!(violations[0], Violation::PathTooDeep { .. }));
    }

    #[test]
    fn too_many_predicates_rejected() {
        let limits = Restrictions {
            max_predicates: 1,
            ..Restrictions::default()
        };
        let f = rfilter!(a == 1 && b == 2);
        assert!(restrict::check(&f, &limits)
            .iter()
            .any(|v| matches!(v, Violation::TooManyPredicates { .. })));
    }

    #[test]
    fn oversized_and_structured_operands_rejected() {
        let limits = Restrictions {
            max_operand_size: 4,
            ..Restrictions::default()
        };
        let big = RemoteFilter::conjunction(vec![Predicate::new(
            "s",
            CmpOp::Eq,
            "toolongoperand",
        )]);
        assert!(restrict::check(&big, &limits)
            .iter()
            .any(|v| matches!(v, Violation::OperandTooLarge { .. })));

        let structured = RemoteFilter::conjunction(vec![Predicate::new(
            "xs",
            CmpOp::Contains,
            Value::List(vec![Value::Int(1)]),
        )]);
        assert!(restrict::check(&structured, &Restrictions::default())
            .iter()
            .any(|v| matches!(v, Violation::StructuredOperand { .. })));
        let permissive = Restrictions {
            allow_structured_operands: true,
            ..Restrictions::default()
        };
        assert!(restrict::is_migratable(&structured, &permissive));
    }
}

mod index {
    use super::*;

    #[test]
    fn matching_and_removal() {
        let mut index = FilterIndex::new();
        let telco = index.insert(rfilter!(company contains "Telco"));
        let cheap = index.insert(rfilter!(price < 50.0));
        let all = index.insert(RemoteFilter::pass_all());

        let q = quote("Telco", 80.0, 1);
        assert_eq!(index.matching(&q), vec![telco, all]);

        index.remove(telco).unwrap();
        assert_eq!(index.matching(&q), vec![all]);
        assert_eq!(index.len(), 2);
        assert!(index.remove(telco).is_none());

        let q2 = quote("Banco", 10.0, 1);
        assert_eq!(index.matching(&q2), vec![cheap, all]);
    }

    #[test]
    fn duplicate_predicates_are_shared() {
        let mut index = FilterIndex::new();
        for _ in 0..10 {
            index.insert(rfilter!(price < 100.0 && company contains "Telco"));
        }
        let stats = index.stats();
        assert_eq!(stats.filters, 10);
        assert_eq!(stats.total_predicates, 20);
        assert_eq!(stats.unique_predicates, 2);
        assert_eq!(stats.paths, 2);
        // All ten match at once.
        assert_eq!(index.matching(&quote("Telco", 80.0, 1)).len(), 10);
    }

    #[test]
    fn threshold_boundaries_are_exact() {
        let mut index = FilterIndex::new();
        let lt = index.insert(rfilter!(price < 100.0));
        let le = index.insert(rfilter!(price <= 100.0));
        let gt = index.insert(rfilter!(price > 100.0));
        let ge = index.insert(rfilter!(price >= 100.0));

        let at = index.matching(&quote("X", 100.0, 1));
        assert_eq!(at, {
            let mut v = vec![le, ge];
            v.sort();
            v
        });
        let below = index.matching(&quote("X", 99.0, 1));
        assert_eq!(below, vec![lt, le]);
        let above = index.matching(&quote("X", 101.0, 1));
        assert_eq!(above, vec![gt, ge]);
    }

    #[test]
    fn huge_integers_do_not_lose_precision() {
        // 2^63 - 1 is not exactly representable as f64; ensure the index does
        // not batch it into lossy comparisons.
        let big = i64::MAX;
        let mut index = FilterIndex::new();
        let f = index.insert(RemoteFilter::conjunction(vec![Predicate::new(
            "n",
            CmpOp::Lt,
            big,
        )]));
        let just_below = Value::record([("n", Value::Int(big - 1))]);
        let at = Value::record([("n", Value::Int(big))]);
        assert_eq!(index.matching(&just_below), vec![f]);
        assert!(index.matching(&at).is_empty());
        assert_eq!(index.naive_matching(&just_below), vec![f]);
        assert!(index.naive_matching(&at).is_empty());
    }

    #[test]
    fn general_trees_are_supported() {
        let mut index = FilterIndex::new();
        let f = index.insert(rfilter!(price < 10.0).or(rfilter!(amount > 5)));
        assert_eq!(index.matching(&quote("X", 5.0, 1)), vec![f]);
        assert_eq!(index.matching(&quote("X", 50.0, 6)), vec![f]);
        assert!(index.matching(&quote("X", 50.0, 1)).is_empty());
    }

    #[test]
    fn nan_events_match_nothing_numeric() {
        let mut index = FilterIndex::new();
        index.insert(rfilter!(price < 10.0));
        index.insert(rfilter!(price >= 10.0));
        let nan_quote = quote("X", f64::NAN, 1);
        assert!(index.matching(&nan_quote).is_empty());
        assert_eq!(
            index.naive_matching(&nan_quote),
            index.matching(&nan_quote)
        );
    }

    #[test]
    fn eq_coercion_matches_canonicalized_numerics() {
        let mut index = FilterIndex::new();
        let f = index.insert(rfilter!(amount == 10));
        // Float and unsigned representations of 10 must hit the same key.
        assert_eq!(
            index.matching(&Value::record([("amount", Value::Float(10.0))])),
            vec![f]
        );
        assert_eq!(
            index.matching(&Value::record([("amount", Value::UInt(10))])),
            vec![f]
        );
        assert!(index
            .matching(&Value::record([("amount", Value::Float(10.5))]))
            .is_empty());
    }

    #[test]
    fn slots_are_reused_without_ghost_matches() {
        let mut index = FilterIndex::new();
        let a = index.insert(rfilter!(price < 10.0));
        index.remove(a).unwrap();
        let b = index.insert(rfilter!(price > 90.0));
        assert_ne!(a.as_u64(), b.as_u64());
        assert_eq!(index.matching(&quote("X", 95.0, 1)), vec![b]);
        assert!(index.matching(&quote("X", 5.0, 1)).is_empty());
    }

    #[test]
    fn identical_trees_share_one_dag() {
        // Ten subscriptions with the same disjunction: the hash-consed DAG
        // stores the tree once, so the per-obvent evaluation is memoized
        // across all ten.
        let mut index = FilterIndex::new();
        let ids: Vec<_> = (0..10)
            .map(|_| index.insert(rfilter!(price < 10.0).or(rfilter!(amount > 5))))
            .collect();
        // Or(pred, pred): two leaf nodes + one Or node, regardless of count.
        assert_eq!(index.stats().shared_nodes, 3);
        assert_eq!(index.matching(&quote("X", 5.0, 1)), ids);
        assert_eq!(
            index.matching(&quote("X", 5.0, 1)),
            index.naive_matching(&quote("X", 5.0, 1))
        );
        // Removing all filters drains the DAG.
        for id in ids {
            index.remove(id).unwrap();
        }
        assert_eq!(index.stats().shared_nodes, 0);
    }

    #[test]
    fn commuted_conjuncts_intern_to_the_same_node() {
        // `a && b` vs `b && a` inside a disjunction: normalization sorts
        // commutative children, so both orderings share one And node.
        let a = Predicate::new("price", CmpOp::Lt, 10.0);
        let b = Predicate::new("amount", CmpOp::Gt, 5u32);
        let lhs = RemoteFilter::conjunction(vec![a.clone(), b.clone()])
            .or(rfilter!(company == "X"));
        let rhs = RemoteFilter::conjunction(vec![b, a]).or(rfilter!(company == "X"));
        let mut index = FilterIndex::new();
        let i1 = index.insert(lhs);
        let i2 = index.insert(rhs);
        let nodes_both = index.stats().shared_nodes;
        index.remove(i2).unwrap();
        // Removing the commuted copy frees no DAG nodes beyond refcounts:
        // both filters interned to the identical structure.
        assert_eq!(index.stats().shared_nodes, nodes_both);
        for event in [quote("X", 5.0, 6), quote("Y", 5.0, 6), quote("Y", 50.0, 1)] {
            assert_eq!(index.matching(&event), index.naive_matching(&event));
        }
        index.remove(i1).unwrap();
        assert_eq!(index.stats().shared_nodes, 0);
    }

    #[test]
    fn matching_takes_shared_reference() {
        // The publish hot path matches through `&FilterIndex`; the scratch
        // state is interior. (Compile-time guarantee, exercised here.)
        let mut index = FilterIndex::new();
        let id = index.insert(rfilter!(price < 10.0));
        let shared: &FilterIndex = &index;
        assert_eq!(shared.matching(&quote("X", 5.0, 1)), vec![id]);
        assert_eq!(shared.matching(&quote("X", 50.0, 1)), Vec::new());
    }

    fn arb_operand() -> impl Strategy<Value = Value> {
        prop_oneof![
            (-100i64..100).prop_map(Value::Int),
            (0u64..100).prop_map(Value::UInt),
            (-100.0f64..100.0).prop_map(Value::Float),
            "[a-c]{0,3}".prop_map(Value::Str),
            any::<bool>().prop_map(Value::Bool),
        ]
    }

    /// Adversarial operands for the indexed≡naive battery: NaN (hashable
    /// but incomparable), empty strings, signed zero, and the integer
    /// boundaries where `f64` conversion goes lossy — each one a known way
    /// to knock a predicate off the batched fast path or flip a bucket
    /// comparison. Ordinary operands appear twice as often as edge cases.
    fn arb_edge_operand() -> impl Strategy<Value = Value> {
        let edges = proptest::sample::select(vec![
            Value::Float(f64::NAN),
            Value::Str(String::new()),
            Value::Int(i64::MAX),
            Value::Int(i64::MIN),
            Value::Int(i64::MAX - 1),
            Value::UInt(u64::MAX),
            Value::Int(0),
            Value::UInt(0),
            Value::Float(0.0),
            Value::Float(-0.0),
            Value::Float(f64::INFINITY),
            Value::Float(f64::NEG_INFINITY),
            Value::Float(1e300),
            Value::Unit,
            Value::List(vec![Value::Int(1), Value::Str("a".into())]),
        ]);
        prop_oneof![arb_operand(), arb_operand(), edges]
    }

    fn arb_pred_with(
        operand: impl Strategy<Value = Value>,
    ) -> impl Strategy<Value = Predicate> {
        let path = prop_oneof![
            Just(PropPath::parse("p")),
            Just(PropPath::parse("q")),
            Just(PropPath::parse("r.s")),
        ];
        let op = prop_oneof![
            Just(CmpOp::Eq),
            Just(CmpOp::Ne),
            Just(CmpOp::Lt),
            Just(CmpOp::Le),
            Just(CmpOp::Gt),
            Just(CmpOp::Ge),
            Just(CmpOp::Contains),
            Just(CmpOp::StartsWith),
            Just(CmpOp::EndsWith),
            Just(CmpOp::Exists),
        ];
        (path, op, operand).prop_map(|(path, op, operand)| Predicate {
            path,
            op,
            operand,
        })
    }

    fn arb_pred() -> impl Strategy<Value = Predicate> {
        arb_pred_with(arb_operand())
    }

    fn arb_filter() -> impl Strategy<Value = RemoteFilter> {
        prop_oneof![
            proptest::collection::vec(arb_pred(), 0..4).prop_map(RemoteFilter::conjunction),
            (
                proptest::collection::vec(arb_pred(), 1..3),
                proptest::collection::vec(arb_pred(), 1..3)
            )
                .prop_map(|(a, b)| {
                    RemoteFilter::conjunction(a).or(RemoteFilter::conjunction(b))
                }),
            proptest::collection::vec(arb_pred(), 1..3)
                .prop_map(|p| RemoteFilter::conjunction(p).negate()),
        ]
    }

    fn arb_event() -> impl Strategy<Value = Value> {
        (arb_operand(), arb_operand(), arb_operand()).prop_map(|(p, q, s)| {
            Value::record([
                ("p", p),
                ("q", q),
                ("r", Value::record([("s", s)])),
            ])
        })
    }

    /// An edge operand three times out of four, absent otherwise.
    fn arb_maybe_edge() -> impl Strategy<Value = Option<Value>> {
        prop_oneof![
            Just(None::<Value>),
            arb_edge_operand().prop_map(Some),
            arb_edge_operand().prop_map(Some),
            arb_edge_operand().prop_map(Some),
        ]
    }

    /// Events carrying edge-case values, with each property optionally
    /// absent so `Exists` and missing-path semantics get exercised too.
    fn arb_edge_event() -> impl Strategy<Value = Value> {
        (arb_maybe_edge(), arb_maybe_edge(), arb_maybe_edge())
            .prop_map(|(p, q, s)| {
                let mut fields: Vec<(&str, Value)> = Vec::new();
                if let Some(p) = p {
                    fields.push(("p", p));
                }
                if let Some(q) = q {
                    fields.push(("q", q));
                }
                if let Some(s) = s {
                    fields.push(("r", Value::record([("s", s)])));
                }
                Value::record(fields)
            })
    }

    /// General filter shapes over edge predicates: conjunctions,
    /// disjunctions of conjunctions, and negations — the latter land on the
    /// always-evaluated residual path of the counting engine.
    fn arb_edge_filter() -> impl Strategy<Value = RemoteFilter> {
        let pred = || arb_pred_with(arb_edge_operand());
        prop_oneof![
            proptest::collection::vec(pred(), 0..4).prop_map(RemoteFilter::conjunction),
            (
                proptest::collection::vec(pred(), 1..3),
                proptest::collection::vec(pred(), 1..3)
            )
                .prop_map(|(a, b)| {
                    RemoteFilter::conjunction(a).or(RemoteFilter::conjunction(b))
                }),
            proptest::collection::vec(pred(), 1..3)
                .prop_map(|p| RemoteFilter::conjunction(p).negate()),
        ]
    }

    /// Wraps a source, hiding its enumeration capability: forces the index
    /// down the per-path fallback so both phase-1 strategies are compared.
    struct FetchOnly<'a>(&'a Value);

    impl PropertySource for FetchOnly<'_> {
        fn property(&self, path: &PropPath) -> Option<Value> {
            self.0.property(path)
        }
    }

    proptest! {
        /// The factored index and the naive per-filter evaluation must be
        /// extensionally equal — the factoring is a pure optimization.
        #[test]
        fn prop_factored_equals_naive(
            filters in proptest::collection::vec(arb_filter(), 0..12),
            events in proptest::collection::vec(arb_event(), 1..8),
        ) {
            let mut index = FilterIndex::new();
            for f in filters {
                index.insert(f);
            }
            for event in &events {
                let fast = index.matching(event);
                let slow = index.naive_matching(event);
                prop_assert_eq!(fast, slow);
            }
        }

        /// Insert/remove churn keeps the index consistent with the oracle.
        #[test]
        fn prop_consistent_under_churn(
            filters in proptest::collection::vec(arb_filter(), 4..10),
            remove_mask in proptest::collection::vec(any::<bool>(), 4..10),
            event in arb_event(),
        ) {
            let mut index = FilterIndex::new();
            let ids: Vec<_> = filters.into_iter().map(|f| index.insert(f)).collect();
            for (id, remove) in ids.iter().zip(&remove_mask) {
                if *remove {
                    index.remove(*id);
                }
            }
            prop_assert_eq!(index.matching(&event), index.naive_matching(&event));
        }

        /// The edge-value battery: NaN, empty strings, signed zero,
        /// integer boundaries past f64 precision, Unit/List operands, and
        /// non-indexable ops (`!=`, string suffix tests) that fall to the
        /// residual bucket — the counting engine, the per-path fallback
        /// (non-enumerable source), and the naive oracle must agree on all
        /// of it.
        #[test]
        fn prop_indexed_equals_naive_on_edge_values(
            filters in proptest::collection::vec(arb_edge_filter(), 0..12),
            events in proptest::collection::vec(arb_edge_event(), 1..8),
        ) {
            let mut index = FilterIndex::new();
            for f in filters {
                index.insert(f);
            }
            for event in &events {
                let fast = index.matching(event);
                let fallback = index.matching(&FetchOnly(event));
                let slow = index.naive_matching(event);
                prop_assert_eq!(&fast, &slow, "enumerated probe diverged from naive");
                prop_assert_eq!(&fallback, &slow, "per-path fallback diverged from naive");
            }
            prop_assert_eq!(index.check_consistency(), Ok(()));
        }

        /// Random interleavings of insert / remove / matching leave the
        /// posting lists, refcounts and bucket placement audit-clean after
        /// every step, and the surviving index statistically identical to
        /// one rebuilt from scratch from the live filters.
        #[test]
        fn prop_interleaved_churn_matches_a_rebuilt_index(
            script in proptest::collection::vec(
                prop_oneof![
                    arb_edge_filter().prop_map(ChurnStep::Insert),
                    arb_edge_filter().prop_map(ChurnStep::Insert),
                    arb_edge_filter().prop_map(ChurnStep::Insert),
                    any::<usize>().prop_map(ChurnStep::Remove),
                    any::<usize>().prop_map(ChurnStep::Remove),
                    arb_edge_event().prop_map(ChurnStep::Match),
                    arb_edge_event().prop_map(ChurnStep::Match),
                ],
                1..24,
            ),
        ) {
            let mut index = FilterIndex::new();
            let mut live: Vec<(crate::FilterId, RemoteFilter)> = Vec::new();
            for step in script {
                match step {
                    ChurnStep::Insert(filter) => {
                        let id = index.insert(filter.clone());
                        live.push((id, filter));
                    }
                    ChurnStep::Remove(pick) => {
                        if !live.is_empty() {
                            let (id, filter) = live.swap_remove(pick % live.len());
                            let removed = index.remove(id);
                            prop_assert_eq!(removed, Some(filter));
                        }
                    }
                    ChurnStep::Match(event) => {
                        prop_assert_eq!(
                            index.matching(&event),
                            index.naive_matching(&event)
                        );
                    }
                }
                prop_assert_eq!(index.check_consistency(), Ok(()));
            }
            // A pristine index built from the survivors must agree on every
            // slot-independent statistic — churn may not leak predicates,
            // paths, DAG nodes, or bucket entries.
            let mut rebuilt = FilterIndex::new();
            for (_, filter) in &live {
                rebuilt.insert(filter.clone());
            }
            prop_assert_eq!(index.stats(), rebuilt.stats());
            let event = Value::record([("p", Value::Int(1))]);
            prop_assert_eq!(
                index.matching(&event).len(),
                rebuilt.matching(&event).len()
            );
        }
    }

    #[derive(Debug, Clone)]
    enum ChurnStep {
        Insert(RemoteFilter),
        Remove(usize),
        Match(Value),
    }

    #[test]
    fn non_indexable_predicates_ride_the_residual_bucket() {
        let mut index = FilterIndex::new();
        let ne = index.insert(RemoteFilter::conjunction(vec![Predicate::new(
            "p",
            CmpOp::Ne,
            10,
        )]));
        let ends = index.insert(RemoteFilter::conjunction(vec![Predicate::new(
            "q",
            CmpOp::EndsWith,
            "co",
        )]));
        let stats = index.stats();
        assert_eq!(stats.residual_preds, 2, "Ne and EndsWith are not batchable");
        assert_eq!(stats.indexed_preds, 0);
        for event in [
            Value::record([("p", Value::Int(3)), ("q", Value::from("Telco"))]),
            Value::record([("p", Value::Int(10)), ("q", Value::from("Banco"))]),
            Value::record([("p", Value::from("not a number"))]),
        ] {
            assert_eq!(index.matching(&event), index.naive_matching(&event));
        }
        assert_eq!(
            index.matching(&Value::record([
                ("p", Value::Int(3)),
                ("q", Value::from("Telco")),
            ])),
            vec![ne, ends]
        );
        index.check_consistency().unwrap();
    }

    #[test]
    fn negations_are_evaluated_residually_and_disjunctions_trigger_by_counting() {
        let mut index = FilterIndex::new();
        // ¬(p < 10): satisfiable with zero true predicates → residual.
        let negated = index.insert(rfilter!(p < 10.0).negate());
        // (p < 10 && q > 5) || (p > 90 && q < 2): any satisfying assignment
        // needs ≥ 2 true predicates → counting-triggered.
        let disjunction = index
            .insert(rfilter!(p < 10.0 && q > 5).or(rfilter!(p > 90.0 && q < 2)));
        let stats = index.stats();
        assert_eq!(stats.residual_filters, 1);
        assert_eq!(stats.counting_filters, 1);

        let no_props = Value::record([("x", Value::Int(0))]);
        assert_eq!(index.matching(&no_props), vec![negated]);
        let left_arm = Value::record([("p", Value::Float(5.0)), ("q", Value::Int(9))]);
        assert_eq!(index.matching(&left_arm), vec![disjunction]);
        let one_pred_only = Value::record([("p", Value::Float(5.0)), ("q", Value::Int(3))]);
        assert_eq!(index.matching(&one_pred_only), Vec::new());
        for event in [&no_props, &left_arm, &one_pred_only] {
            assert_eq!(index.matching(event), index.naive_matching(event));
        }
        index.check_consistency().unwrap();
    }

    #[test]
    fn constant_false_trees_are_never_evaluated_but_stay_accounted() {
        // `Or([])` interns to the constant-false node: the filter can never
        // match, and the counting engine knows it without evaluating.
        let mut index = FilterIndex::new();
        let never = index.insert(RemoteFilter::from_parts(vec![], EvalNode::Or(vec![])));
        let live = index.insert(rfilter!(p < 10.0));
        let event = Value::record([("p", Value::Float(5.0))]);
        assert_eq!(index.matching(&event), vec![live]);
        assert_eq!(index.naive_matching(&event), vec![live]);
        index.check_consistency().unwrap();
        index.remove(never).unwrap();
        index.check_consistency().unwrap();
        assert_eq!(index.stats().shared_nodes, 0);
    }

    #[test]
    fn enumerating_and_fetch_only_sources_probe_identically() {
        let mut index = FilterIndex::new();
        for f in [
            rfilter!(p < 10.0),
            rfilter!(q == "x"),
            rfilter!(r.s >= 5),
            rfilter!(p < 10.0).negate(),
            RemoteFilter::pass_all(),
        ] {
            index.insert(f);
        }
        let event = Value::record([
            ("p", Value::Float(3.0)),
            ("q", Value::from("x")),
            ("r", Value::record([("s", Value::Int(7))])),
            ("unindexed", Value::from("ignored")),
        ]);
        assert_eq!(index.matching(&event), index.matching(&FetchOnly(&event)));
        assert_eq!(index.matching(&event), index.naive_matching(&event));
    }
}

mod ablation {
    use super::*;
    use crate::IndexOptions;

    fn all_option_combos() -> [IndexOptions; 4] {
        [
            IndexOptions { dedup: true, batch: true },
            IndexOptions { dedup: true, batch: false },
            IndexOptions { dedup: false, batch: true },
            IndexOptions { dedup: false, batch: false },
        ]
    }

    #[test]
    fn every_option_combo_matches_identically() {
        let filters = [
            rfilter!(price < 100.0 && company contains "Telco"),
            rfilter!(price >= 50.0),
            rfilter!(amount == 10),
            rfilter!(price < 10.0).or(rfilter!(amount > 5)),
            RemoteFilter::pass_all(),
        ];
        let events = [
            quote("Telco", 80.0, 10),
            quote("Banco", 5.0, 1),
            quote("Telco", 200.0, 6),
        ];
        for options in all_option_combos() {
            let mut index = FilterIndex::with_options(options);
            let ids: Vec<_> = filters.iter().map(|f| index.insert(f.clone())).collect();
            for event in &events {
                assert_eq!(
                    index.matching(event),
                    index.naive_matching(event),
                    "options {options:?}"
                );
            }
            index.remove(ids[0]);
            for event in &events {
                assert_eq!(
                    index.matching(event),
                    index.naive_matching(event),
                    "after removal, options {options:?}"
                );
            }
        }
    }

    #[test]
    fn dedup_off_stores_every_predicate_occurrence() {
        let mut with = FilterIndex::with_options(IndexOptions { dedup: true, batch: true });
        let mut without = FilterIndex::with_options(IndexOptions { dedup: false, batch: true });
        for _ in 0..10 {
            with.insert(rfilter!(price < 100.0));
            without.insert(rfilter!(price < 100.0));
        }
        assert_eq!(with.stats().unique_predicates, 1);
        assert_eq!(without.stats().unique_predicates, 10);
    }
}
