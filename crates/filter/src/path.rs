//! Property paths: the serialized form of an accessor chain.
//!
//! `q.getMarket().getCompany()` in the paper's Java becomes the path
//! `market.company` here — a node-to-leaf walk of the invocation tree.

use std::fmt;

use serde::{Deserialize, Serialize};

/// A dot-separated chain of property accessors, e.g. `market.company`.
///
/// Paths are cheap to clone and hash; the factoring index keys its predicate
/// groups by path so each property is fetched once per obvent.
///
/// ```
/// use psc_filter::PropPath;
/// let p = PropPath::parse("market.company");
/// assert_eq!(p.segments(), ["market", "company"]);
/// assert_eq!(p.to_string(), "market.company");
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize, Default)]
pub struct PropPath {
    segments: Vec<String>,
}

impl PropPath {
    /// Creates a single-segment path.
    pub fn new(segment: impl Into<String>) -> Self {
        PropPath {
            segments: vec![segment.into()],
        }
    }

    /// Parses a dot-separated path. Empty segments are dropped, so
    /// `parse("")` yields the root path.
    pub fn parse(path: &str) -> Self {
        PropPath {
            segments: path
                .split('.')
                .filter(|s| !s.is_empty())
                .map(str::to_string)
                .collect(),
        }
    }

    /// Builds a path from an iterator of segments.
    pub fn from_segments<I, S>(segments: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        PropPath {
            segments: segments.into_iter().map(Into::into).collect(),
        }
    }

    /// The path's segments in root-to-leaf order.
    pub fn segments(&self) -> &[String] {
        &self.segments
    }

    /// Number of segments (invocation-tree depth of the leaf).
    pub fn depth(&self) -> usize {
        self.segments.len()
    }

    /// True for the root path (the obvent itself).
    pub fn is_empty(&self) -> bool {
        self.segments.is_empty()
    }

    /// Returns a new path with `segment` appended (a further nested accessor
    /// invocation).
    pub fn child(&self, segment: impl Into<String>) -> Self {
        let mut segments = self.segments.clone();
        segments.push(segment.into());
        PropPath { segments }
    }

    /// Splits off the first segment, returning it and the remaining path.
    pub fn split_first(&self) -> Option<(&str, PropPath)> {
        let (first, rest) = self.segments.split_first()?;
        Some((
            first.as_str(),
            PropPath {
                segments: rest.to_vec(),
            },
        ))
    }

    /// True if `self` is a (non-strict) prefix of `other`: the accessor chain
    /// of `other` passes through `self`'s node in the invocation tree.
    pub fn is_prefix_of(&self, other: &PropPath) -> bool {
        other.segments.len() >= self.segments.len()
            && self.segments.iter().zip(&other.segments).all(|(a, b)| a == b)
    }
}

/// Paths borrow as their segment slice, so hash maps keyed by `PropPath`
/// can be probed with a `&[String]` built during property enumeration —
/// no owned path allocation on the matching hot path. The derived `Hash`
/// of `PropPath` hashes exactly its `segments` vector, which hashes
/// identically to the slice, as `Borrow` requires.
impl std::borrow::Borrow<[String]> for PropPath {
    fn borrow(&self) -> &[String] {
        &self.segments
    }
}

impl fmt::Display for PropPath {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, seg) in self.segments.iter().enumerate() {
            if i > 0 {
                write!(f, ".")?;
            }
            f.write_str(seg)?;
        }
        Ok(())
    }
}

impl From<&str> for PropPath {
    fn from(path: &str) -> Self {
        PropPath::parse(path)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_and_display_roundtrip() {
        let p = PropPath::parse("a.b.c");
        assert_eq!(p.depth(), 3);
        assert_eq!(p.to_string(), "a.b.c");
    }

    #[test]
    fn empty_path_is_root() {
        let p = PropPath::parse("");
        assert!(p.is_empty());
        assert_eq!(p.to_string(), "");
    }

    #[test]
    fn child_appends() {
        let p = PropPath::new("market").child("company");
        assert_eq!(p.segments(), ["market", "company"]);
    }

    #[test]
    fn prefix_relation() {
        let root = PropPath::parse("");
        let a = PropPath::parse("a");
        let ab = PropPath::parse("a.b");
        let ac = PropPath::parse("a.c");
        assert!(root.is_prefix_of(&ab));
        assert!(a.is_prefix_of(&ab));
        assert!(a.is_prefix_of(&a));
        assert!(!ab.is_prefix_of(&a));
        assert!(!ab.is_prefix_of(&ac));
    }

    #[test]
    fn split_first_walks_segments() {
        let p = PropPath::parse("x.y");
        let (first, rest) = p.split_first().unwrap();
        assert_eq!(first, "x");
        assert_eq!(rest, PropPath::parse("y"));
        let (second, rest2) = rest.split_first().unwrap();
        assert_eq!(second, "y");
        assert!(rest2.is_empty());
        assert!(rest2.split_first().is_none());
    }
}
