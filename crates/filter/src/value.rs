//! The dynamic value model filters operate on.
//!
//! Filters never see an obvent's representation (paper LP2 — encapsulation
//! preservation); they see the *results of accessor invocations*, modelled
//! here as [`Value`]s reached through [`PropPath`]s on a [`PropertySource`].
//! The allowed leaf types mirror the paper's mobility restrictions (§3.3.4):
//! primitive types, their object counterparts, and `String` — plus lists and
//! nested records so obvents can "in a nested way, contain other unbound
//! objects" (§2.1.1).

use std::cmp::Ordering;
use std::collections::BTreeMap;
use std::fmt;
use std::hash::{Hash, Hasher};

use serde::{Deserialize, Serialize};

use crate::PropPath;

/// A dynamically typed property value.
///
/// `Value` implements `Eq`/`Hash` with bitwise float semantics so predicates
/// can be deduplicated by the factoring index; filter *comparison* semantics
/// (IEEE ordering, cross-width numeric coercion) live in
/// [`Value::compare`].
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum Value {
    /// Absence of a value (Java `null` analogue inside nested structures).
    Unit,
    /// Boolean.
    Bool(bool),
    /// Signed integer (covers Java's byte/short/int/long).
    Int(i64),
    /// Unsigned integer (Rust-side u64 fields).
    UInt(u64),
    /// IEEE-754 double (covers float/double).
    Float(f64),
    /// UTF-8 string.
    Str(String),
    /// Homogeneous or heterogeneous list.
    List(Vec<Value>),
    /// Nested record: a contained unbound object's properties.
    Record(BTreeMap<String, Value>),
}

impl Value {
    /// Builds a [`Value::Record`] from `(name, value)` pairs.
    ///
    /// ```
    /// use psc_filter::Value;
    /// let v = Value::record([("price", Value::from(80.0))]);
    /// assert!(matches!(v, Value::Record(_)));
    /// ```
    pub fn record<K, I>(fields: I) -> Value
    where
        K: Into<String>,
        I: IntoIterator<Item = (K, Value)>,
    {
        Value::Record(
            fields
                .into_iter()
                .map(|(k, v)| (k.into(), v))
                .collect::<BTreeMap<_, _>>(),
        )
    }

    /// Human-readable name of the value's type, for diagnostics.
    pub fn type_name(&self) -> &'static str {
        match self {
            Value::Unit => "unit",
            Value::Bool(_) => "bool",
            Value::Int(_) => "int",
            Value::UInt(_) => "uint",
            Value::Float(_) => "float",
            Value::Str(_) => "string",
            Value::List(_) => "list",
            Value::Record(_) => "record",
        }
    }

    /// Returns the boolean payload, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Returns the string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Returns the value as an `f64` if it is any numeric variant.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(i) => Some(*i as f64),
            Value::UInt(u) => Some(*u as f64),
            Value::Float(f) => Some(*f),
            _ => None,
        }
    }

    /// Compares two values with *filter semantics*: numeric variants compare
    /// by numeric value regardless of representation, strings and booleans
    /// compare naturally, and mismatched types are incomparable (`None`).
    ///
    /// NaN is incomparable with everything, matching the behaviour a Java
    /// filter body would exhibit with `<` on `double`s.
    pub fn compare(&self, other: &Value) -> Option<Ordering> {
        use Value::*;
        match (self, other) {
            (Int(a), Int(b)) => Some(a.cmp(b)),
            (UInt(a), UInt(b)) => Some(a.cmp(b)),
            (Int(a), UInt(b)) => Some(cmp_i64_u64(*a, *b)),
            (UInt(a), Int(b)) => Some(cmp_i64_u64(*b, *a).reverse()),
            (Float(a), Float(b)) => a.partial_cmp(b),
            (Int(a), Float(b)) => (*a as f64).partial_cmp(b),
            (Float(a), Int(b)) => a.partial_cmp(&(*b as f64)),
            (UInt(a), Float(b)) => (*a as f64).partial_cmp(b),
            (Float(a), UInt(b)) => a.partial_cmp(&(*b as f64)),
            (Str(a), Str(b)) => Some(a.cmp(b)),
            (Bool(a), Bool(b)) => Some(a.cmp(b)),
            (Unit, Unit) => Some(Ordering::Equal),
            _ => None,
        }
    }

    /// Equality with filter semantics (numeric coercion); distinct from the
    /// bitwise `PartialEq` used for deduplication.
    pub fn loose_eq(&self, other: &Value) -> bool {
        match (self, other) {
            (Value::List(a), Value::List(b)) => {
                a.len() == b.len() && a.iter().zip(b).all(|(x, y)| x.loose_eq(y))
            }
            (Value::Record(a), Value::Record(b)) => {
                a.len() == b.len()
                    && a.iter()
                        .zip(b)
                        .all(|((ka, va), (kb, vb))| ka == kb && va.loose_eq(vb))
            }
            _ => self.compare(other) == Some(Ordering::Equal),
        }
    }
}

fn cmp_i64_u64(a: i64, b: u64) -> Ordering {
    if a < 0 {
        Ordering::Less
    } else {
        (a as u64).cmp(&b)
    }
}

/// Bitwise structural equality: floats compare by bit pattern so `Value` can
/// key hash maps in the factoring index. Use [`Value::loose_eq`] for filter
/// semantics.
impl PartialEq for Value {
    fn eq(&self, other: &Self) -> bool {
        use Value::*;
        match (self, other) {
            (Unit, Unit) => true,
            (Bool(a), Bool(b)) => a == b,
            (Int(a), Int(b)) => a == b,
            (UInt(a), UInt(b)) => a == b,
            (Float(a), Float(b)) => a.to_bits() == b.to_bits(),
            (Str(a), Str(b)) => a == b,
            (List(a), List(b)) => a == b,
            (Record(a), Record(b)) => a == b,
            _ => false,
        }
    }
}

impl Eq for Value {}

impl Hash for Value {
    fn hash<H: Hasher>(&self, state: &mut H) {
        std::mem::discriminant(self).hash(state);
        match self {
            Value::Unit => {}
            Value::Bool(b) => b.hash(state),
            Value::Int(i) => i.hash(state),
            Value::UInt(u) => u.hash(state),
            Value::Float(f) => f.to_bits().hash(state),
            Value::Str(s) => s.hash(state),
            Value::List(l) => l.hash(state),
            Value::Record(r) => r.hash(state),
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Unit => write!(f, "()"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Int(i) => write!(f, "{i}"),
            Value::UInt(u) => write!(f, "{u}"),
            Value::Float(v) => write!(f, "{v}"),
            Value::Str(s) => write!(f, "{s:?}"),
            Value::List(l) => {
                write!(f, "[")?;
                for (i, v) in l.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{v}")?;
                }
                write!(f, "]")
            }
            Value::Record(r) => {
                write!(f, "{{")?;
                for (i, (k, v)) in r.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{k}: {v}")?;
                }
                write!(f, "}}")
            }
        }
    }
}

macro_rules! impl_from_int {
    ($($ty:ty),*) => {$(
        impl From<$ty> for Value {
            fn from(v: $ty) -> Value { Value::Int(v as i64) }
        }
    )*};
}
macro_rules! impl_from_uint {
    ($($ty:ty),*) => {$(
        impl From<$ty> for Value {
            fn from(v: $ty) -> Value { Value::UInt(v as u64) }
        }
    )*};
}

impl_from_int!(i8, i16, i32, i64, isize);
impl_from_uint!(u8, u16, u32, u64, usize);

impl From<f32> for Value {
    fn from(v: f32) -> Value {
        Value::Float(v as f64)
    }
}
impl From<f64> for Value {
    fn from(v: f64) -> Value {
        Value::Float(v)
    }
}
impl From<bool> for Value {
    fn from(v: bool) -> Value {
        Value::Bool(v)
    }
}
impl From<&str> for Value {
    fn from(v: &str) -> Value {
        Value::Str(v.to_string())
    }
}
impl From<String> for Value {
    fn from(v: String) -> Value {
        Value::Str(v)
    }
}
impl From<()> for Value {
    fn from(_: ()) -> Value {
        Value::Unit
    }
}

impl<T> From<Vec<T>> for Value
where
    Value: From<T>,
{
    fn from(v: Vec<T>) -> Value {
        Value::List(v.into_iter().map(Value::from).collect())
    }
}

impl<T> From<Option<T>> for Value
where
    Value: From<T>,
{
    fn from(v: Option<T>) -> Value {
        match v {
            None => Value::Unit,
            Some(inner) => Value::from(inner),
        }
    }
}

/// Conversion of a field into its dynamic [`Value`] representation.
///
/// Implemented for all primitive types and `String`; obvent structs generated
/// by the `obvent!` macro implement it by producing a [`Value::Record`] of
/// their properties, so nested obvent fields work transparently.
pub trait IntoValue {
    /// Converts a borrowed field into a [`Value`].
    fn to_value(&self) -> Value;
}

macro_rules! impl_into_value {
    ($($ty:ty),*) => {$(
        impl IntoValue for $ty {
            fn to_value(&self) -> Value { Value::from(self.clone()) }
        }
    )*};
}

impl_into_value!(
    i8, i16, i32, i64, isize, u8, u16, u32, u64, usize, f32, f64, bool, String, ()
);

impl IntoValue for &str {
    fn to_value(&self) -> Value {
        Value::from(*self)
    }
}

impl IntoValue for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl<T: IntoValue> IntoValue for Vec<T> {
    fn to_value(&self) -> Value {
        Value::List(self.iter().map(IntoValue::to_value).collect())
    }
}

impl IntoValue for psc_codec::WireBytes {
    fn to_value(&self) -> Value {
        Value::List(self.iter().map(|&b| Value::UInt(b as u64)).collect())
    }
}

impl<T: IntoValue> IntoValue for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            None => Value::Unit,
            Some(inner) => inner.to_value(),
        }
    }
}

/// Something filters can be evaluated against: a source of named properties.
///
/// The root source is the filtered obvent; nested records are traversed
/// segment by segment. Returning `None` makes every predicate on the path
/// false except [`CmpOp::Exists`](crate::CmpOp::Exists).
pub trait PropertySource {
    /// Looks up the property at `path`, traversing nested records.
    fn property(&self, path: &PropPath) -> Option<Value>;

    /// Enumerates every `(path, value)` pair [`property`](Self::property)
    /// would answer for, calling `visit` once per path with the path's
    /// segments in root-to-leaf order.
    ///
    /// Returning `true` means the enumeration was exhaustive: the matching
    /// index may then probe only the *event's* attributes — O(attrs) per
    /// obvent — instead of fetching every path any filter mentions. The
    /// default returns `false` without visiting anything, which keeps
    /// custom sources correct (the index falls back to per-path fetches).
    ///
    /// Implementations must uphold: `visit` is called with `(p, v)` exactly
    /// when `self.property(&p) == Some(v)`, each path at most once.
    fn visit_properties(&self, visit: &mut dyn FnMut(&[String], &Value)) -> bool {
        let _ = visit;
        false
    }
}

/// Visits `value` at `prefix`, then descends into record fields (the paths
/// [`Value::property`] resolves are exactly the record-field chains).
fn walk_value(value: &Value, prefix: &mut Vec<String>, visit: &mut dyn FnMut(&[String], &Value)) {
    visit(prefix, value);
    if let Value::Record(fields) = value {
        for (name, child) in fields {
            prefix.push(name.clone());
            walk_value(child, prefix, visit);
            prefix.pop();
        }
    }
}

impl PropertySource for Value {
    fn property(&self, path: &PropPath) -> Option<Value> {
        let mut current = self;
        for segment in path.segments() {
            match current {
                Value::Record(fields) => current = fields.get(segment)?,
                _ => return None,
            }
        }
        Some(current.clone())
    }

    fn visit_properties(&self, visit: &mut dyn FnMut(&[String], &Value)) -> bool {
        // The root path resolves to the value itself, so the walk starts by
        // visiting the empty prefix — mirroring `property(&root) == Some(..)`.
        walk_value(self, &mut Vec::new(), visit);
        true
    }
}

impl PropertySource for BTreeMap<String, Value> {
    fn property(&self, path: &PropPath) -> Option<Value> {
        let (first, rest) = path.split_first()?;
        let value = self.get(first)?;
        if rest.is_empty() {
            Some(value.clone())
        } else {
            value.property(&rest)
        }
    }

    fn visit_properties(&self, visit: &mut dyn FnMut(&[String], &Value)) -> bool {
        // Unlike `Value`, a bare map has no root property (`property` on the
        // empty path is `None`), so the walk starts at the fields.
        let mut prefix = Vec::new();
        for (name, child) in self {
            prefix.push(name.clone());
            walk_value(child, &mut prefix, visit);
            prefix.pop();
        }
        true
    }
}
