//! Filter-engine instrumentation: counters in the process-global telemetry
//! registry (`psc_telemetry::global()`), which starts **disabled** — until a
//! host opts in with `psc_telemetry::set_global_enabled(true)`, each site
//! costs one relaxed load and a branch.
//!
//! Like the codec, the matching engine has no per-component registry to
//! record into (a [`FilterIndex`](crate::FilterIndex) is a plain data
//! structure, not a node-owned service).

use std::sync::OnceLock;

use psc_telemetry::Counter;

pub(crate) struct FilterMetrics {
    /// `filter.factored_evals_saved` — predicate and sub-expression
    /// evaluations avoided by factoring, relative to the naive per-filter
    /// baseline: deduplicated predicate occurrences plus memoized
    /// sub-expression hits, summed per `matching` call.
    pub factored_evals_saved: Counter,
    /// `filter.matching_calls` — `FilterIndex::matching` invocations.
    pub matching_calls: Counter,
    /// `filter.shared_subexprs` — hash-cons hits at insert time: a filter's
    /// sub-expression was already present in the index's shared DAG.
    pub shared_subexprs: Counter,
    /// `filter.index.probes` — attribute buckets probed per `matching` call:
    /// path groups actually hit by the obvent's properties (the O(attrs)
    /// work of the counting engine).
    pub index_probes: Counter,
    /// `filter.index.candidates` — filters whose evaluation DAG was walked:
    /// counting-triggered general trees plus the always-evaluated residual
    /// trees. The gap to the live filter count is work the index skipped.
    pub index_candidates: Counter,
    /// `filter.index.shortcircuits` — live filters `matching` never touched:
    /// no counter increment, no DAG walk, no membership scan.
    pub index_shortcircuits: Counter,
}

/// Handles are created once and cached; the hot path never touches the
/// registry's name map.
pub(crate) fn metrics() -> &'static FilterMetrics {
    static METRICS: OnceLock<FilterMetrics> = OnceLock::new();
    METRICS.get_or_init(|| {
        let global = psc_telemetry::global();
        FilterMetrics {
            factored_evals_saved: global.counter("filter.factored_evals_saved"),
            matching_calls: global.counter("filter.matching_calls"),
            shared_subexprs: global.counter("filter.shared_subexprs"),
            index_probes: global.counter("filter.index.probes"),
            index_candidates: global.counter("filter.index.candidates"),
            index_shortcircuits: global.counter("filter.index.shortcircuits"),
        }
    })
}
