//! Reified filters: predicates, evaluation trees and invocation trees.
//!
//! A [`RemoteFilter`] is the serializable output of the "precompiler" path
//! (paper §4.4.3): a flat list of [`Predicate`] leaves (the conditions at the
//! leaves of the invocation tree) plus an [`EvalNode`] tree (the evaluation
//! tree combining the leaves). A [`LocalFilter`] is the fallback for filters
//! that do not satisfy the mobility restrictions: an opaque closure applied
//! at the subscriber (paper §3.3.4).

use std::fmt;
use std::sync::Arc;

use serde::{Deserialize, Serialize};

use crate::{PropPath, PropertySource, Value};

/// Comparison / test operator of a predicate leaf.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CmpOp {
    /// Property equals operand (numeric coercion, like Java `equals`).
    Eq,
    /// Property differs from operand.
    Ne,
    /// Property `<` operand.
    Lt,
    /// Property `<=` operand.
    Le,
    /// Property `>` operand.
    Gt,
    /// Property `>=` operand.
    Ge,
    /// String property contains the operand substring (the paper's
    /// `indexOf(..) != -1` idiom), or list property contains the operand.
    Contains,
    /// String property starts with the operand.
    StartsWith,
    /// String property ends with the operand.
    EndsWith,
    /// Property is present (operand ignored).
    Exists,
}

impl CmpOp {
    /// Applies the operator to a property value and operand.
    pub fn apply(self, property: &Value, operand: &Value) -> bool {
        use std::cmp::Ordering::*;
        match self {
            CmpOp::Eq => property.loose_eq(operand),
            CmpOp::Ne => !property.loose_eq(operand),
            CmpOp::Lt => property.compare(operand) == Some(Less),
            CmpOp::Le => matches!(property.compare(operand), Some(Less | Equal)),
            CmpOp::Gt => property.compare(operand) == Some(Greater),
            CmpOp::Ge => matches!(property.compare(operand), Some(Greater | Equal)),
            CmpOp::Contains => match (property, operand) {
                (Value::Str(haystack), Value::Str(needle)) => haystack.contains(needle.as_str()),
                (Value::List(items), needle) => items.iter().any(|v| v.loose_eq(needle)),
                _ => false,
            },
            CmpOp::StartsWith => match (property, operand) {
                (Value::Str(s), Value::Str(prefix)) => s.starts_with(prefix.as_str()),
                _ => false,
            },
            CmpOp::EndsWith => match (property, operand) {
                (Value::Str(s), Value::Str(suffix)) => s.ends_with(suffix.as_str()),
                _ => false,
            },
            CmpOp::Exists => true,
        }
    }

    /// Symbolic rendering used by `Display`.
    pub fn symbol(self) -> &'static str {
        match self {
            CmpOp::Eq => "==",
            CmpOp::Ne => "!=",
            CmpOp::Lt => "<",
            CmpOp::Le => "<=",
            CmpOp::Gt => ">",
            CmpOp::Ge => ">=",
            CmpOp::Contains => "contains",
            CmpOp::StartsWith => "starts_with",
            CmpOp::EndsWith => "ends_with",
            CmpOp::Exists => "exists",
        }
    }
}

/// A leaf condition: `property(path) OP operand`.
///
/// A missing property makes every predicate false except `Exists`, which is
/// true exactly when the property is present.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Predicate {
    /// Accessor chain to the tested value.
    pub path: PropPath,
    /// Test operator.
    pub op: CmpOp,
    /// Constant operand (per §3.3.4 only constants and final outer variables
    /// of primitive/string type may appear — both are constants by the time
    /// the filter is reified).
    pub operand: Value,
}

impl Predicate {
    /// Creates a predicate leaf.
    pub fn new(path: impl Into<PropPath>, op: CmpOp, operand: impl Into<Value>) -> Self {
        Predicate {
            path: path.into(),
            op,
            operand: operand.into(),
        }
    }

    /// Evaluates the predicate against a property source.
    pub fn eval(&self, source: &dyn PropertySource) -> bool {
        match source.property(&self.path) {
            Some(value) => self.op.apply(&value, &self.operand),
            None => false,
        }
    }
}

impl fmt::Display for Predicate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.op == CmpOp::Exists {
            write!(f, "{} exists", self.path)
        } else {
            write!(f, "{} {} {}", self.path, self.op.symbol(), self.operand)
        }
    }
}

/// A node of the evaluation tree: logical combinations of predicate leaves.
///
/// Leaves are indices into the owning [`RemoteFilter`]'s predicate list —
/// mirroring the paper's "leaves are references to the leaves of the former
/// \[invocation\] tree".
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum EvalNode {
    /// Constant true (the paper's `return true;` subscribe-to-all filter).
    True,
    /// Constant false.
    False,
    /// Reference to predicate `i`.
    Pred(usize),
    /// Conjunction of sub-nodes.
    And(Vec<EvalNode>),
    /// Disjunction of sub-nodes.
    Or(Vec<EvalNode>),
    /// Negation.
    Not(Box<EvalNode>),
}

impl EvalNode {
    fn eval(&self, truths: &[bool]) -> bool {
        match self {
            EvalNode::True => true,
            EvalNode::False => false,
            EvalNode::Pred(i) => truths.get(*i).copied().unwrap_or(false),
            EvalNode::And(children) => children.iter().all(|c| c.eval(truths)),
            EvalNode::Or(children) => children.iter().any(|c| c.eval(truths)),
            EvalNode::Not(child) => !child.eval(truths),
        }
    }

    fn visit_preds(&self, f: &mut impl FnMut(usize)) {
        match self {
            EvalNode::Pred(i) => f(*i),
            EvalNode::And(children) | EvalNode::Or(children) => {
                for c in children {
                    c.visit_preds(f);
                }
            }
            EvalNode::Not(child) => child.visit_preds(f),
            EvalNode::True | EvalNode::False => {}
        }
    }

    fn remap(&mut self, map: &[usize]) {
        match self {
            EvalNode::Pred(i) => *i = map[*i],
            EvalNode::And(children) | EvalNode::Or(children) => {
                for c in children {
                    c.remap(map);
                }
            }
            EvalNode::Not(child) => child.remap(map),
            EvalNode::True | EvalNode::False => {}
        }
    }
}

/// A reified, serializable, migratable filter (paper `RemoteFilter`).
///
/// Construct with [`RemoteFilter::pass_all`], the typed DSL in
/// [`typed`](crate::typed), or the [`rfilter!`](crate::rfilter) macro.
///
/// ```
/// use psc_filter::{CmpOp, Predicate, RemoteFilter, Value};
///
/// let f = RemoteFilter::conjunction(vec![
///     Predicate::new("price", CmpOp::Lt, 100.0),
///     Predicate::new("company", CmpOp::Contains, "Telco"),
/// ]);
/// let quote = Value::record([
///     ("company", Value::from("Telco Mobiles")),
///     ("price", Value::from(80.0)),
/// ]);
/// assert!(f.matches(&quote));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct RemoteFilter {
    predicates: Vec<Predicate>,
    eval: EvalNode,
}

impl RemoteFilter {
    /// Filter that accepts every obvent of the subscribed type.
    pub fn pass_all() -> Self {
        RemoteFilter {
            predicates: Vec::new(),
            eval: EvalNode::True,
        }
    }

    /// Filter that is the conjunction of `predicates`.
    pub fn conjunction(predicates: Vec<Predicate>) -> Self {
        let eval = EvalNode::And((0..predicates.len()).map(EvalNode::Pred).collect());
        RemoteFilter { predicates, eval }
    }

    /// Filter with an explicit evaluation tree over `predicates`.
    ///
    /// # Panics
    ///
    /// Panics if the tree references a predicate index out of bounds —
    /// such a filter would be structurally corrupt.
    pub fn from_parts(predicates: Vec<Predicate>, eval: EvalNode) -> Self {
        let mut max = None::<usize>;
        eval.visit_preds(&mut |i| max = Some(max.map_or(i, |m| m.max(i))));
        if let Some(max) = max {
            assert!(
                max < predicates.len(),
                "evaluation tree references predicate {max} but only {} exist",
                predicates.len()
            );
        }
        RemoteFilter { predicates, eval }
    }

    /// The predicate leaves (the invocation-tree leaves).
    pub fn predicates(&self) -> &[Predicate] {
        &self.predicates
    }

    /// The evaluation tree.
    pub fn eval_tree(&self) -> &EvalNode {
        &self.eval
    }

    /// True if the filter accepts everything regardless of content.
    pub fn is_pass_all(&self) -> bool {
        matches!(self.eval, EvalNode::True)
    }

    /// Evaluates the filter against a property source, fetching each distinct
    /// property exactly once.
    pub fn matches(&self, source: &dyn PropertySource) -> bool {
        let truths: Vec<bool> = self.predicates.iter().map(|p| p.eval(source)).collect();
        self.eval.eval(&truths)
    }

    /// Evaluates the filter given precomputed predicate truth values, in the
    /// same order as [`RemoteFilter::predicates`]. Used by the factoring
    /// index.
    pub fn matches_with_truths(&self, truths: &[bool]) -> bool {
        self.eval.eval(truths)
    }

    /// Combines two filters into their conjunction (both must pass).
    pub fn and(self, other: RemoteFilter) -> RemoteFilter {
        let RemoteFilter {
            mut predicates,
            eval,
        } = self;
        let offset = predicates.len();
        let mut other_eval = other.eval;
        let map: Vec<usize> = (0..other.predicates.len()).map(|i| i + offset).collect();
        other_eval.remap(&map);
        predicates.extend(other.predicates);
        RemoteFilter {
            predicates,
            eval: EvalNode::And(vec![eval, other_eval]),
        }
    }

    /// Combines two filters into their disjunction (either may pass).
    pub fn or(self, other: RemoteFilter) -> RemoteFilter {
        let RemoteFilter {
            mut predicates,
            eval,
        } = self;
        let offset = predicates.len();
        let mut other_eval = other.eval;
        let map: Vec<usize> = (0..other.predicates.len()).map(|i| i + offset).collect();
        other_eval.remap(&map);
        predicates.extend(other.predicates);
        RemoteFilter {
            predicates,
            eval: EvalNode::Or(vec![eval, other_eval]),
        }
    }

    /// Negates the filter.
    pub fn negate(self) -> RemoteFilter {
        RemoteFilter {
            predicates: self.predicates,
            eval: EvalNode::Not(Box::new(self.eval)),
        }
    }

    /// Builds the paper-shaped [`InvocationTree`] view of this filter.
    pub fn invocation_tree(&self) -> InvocationTree {
        InvocationTree::from_filter(self)
    }
}

impl fmt::Display for RemoteFilter {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fn rec(
            node: &EvalNode,
            preds: &[Predicate],
            f: &mut fmt::Formatter<'_>,
        ) -> fmt::Result {
            match node {
                EvalNode::True => write!(f, "true"),
                EvalNode::False => write!(f, "false"),
                EvalNode::Pred(i) => match preds.get(*i) {
                    Some(p) => write!(f, "{p}"),
                    None => write!(f, "<pred {i}>"),
                },
                EvalNode::And(children) => {
                    write!(f, "(")?;
                    for (i, c) in children.iter().enumerate() {
                        if i > 0 {
                            write!(f, " && ")?;
                        }
                        rec(c, preds, f)?;
                    }
                    write!(f, ")")
                }
                EvalNode::Or(children) => {
                    write!(f, "(")?;
                    for (i, c) in children.iter().enumerate() {
                        if i > 0 {
                            write!(f, " || ")?;
                        }
                        rec(c, preds, f)?;
                    }
                    write!(f, ")")
                }
                EvalNode::Not(child) => {
                    write!(f, "!")?;
                    rec(child, preds, f)
                }
            }
        }
        rec(&self.eval, &self.predicates, f)
    }
}

/// The invocation tree of a filter (paper §4.4.3): "the root represents the
/// filtered obvent, and every node represents a method invocation. A leaf
/// node stands for the outcome of a condition on the value obtained by
/// applying the methods of the nodes on the path down to that leaf".
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InvocationTree {
    /// Root node: the filtered obvent itself.
    pub root: InvocationNode,
}

/// A node of the invocation tree: one accessor invocation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InvocationNode {
    /// Accessor (property) name; empty at the root.
    pub accessor: String,
    /// Nested invocations on the value this node produces.
    pub children: Vec<InvocationNode>,
    /// Conditions applied to this node's value: indices into the filter's
    /// predicate list.
    pub conditions: Vec<usize>,
}

impl InvocationTree {
    /// Builds the tree by merging the accessor chains of all predicates, so
    /// shared prefixes (e.g. `market.company` and `market.symbol`) become a
    /// shared node — the structural property factoring exploits.
    pub fn from_filter(filter: &RemoteFilter) -> Self {
        let mut root = InvocationNode {
            accessor: String::new(),
            children: Vec::new(),
            conditions: Vec::new(),
        };
        for (idx, pred) in filter.predicates().iter().enumerate() {
            let mut node = &mut root;
            for segment in pred.path.segments() {
                let pos = match node.children.iter().position(|c| &c.accessor == segment) {
                    Some(pos) => pos,
                    None => {
                        node.children.push(InvocationNode {
                            accessor: segment.clone(),
                            children: Vec::new(),
                            conditions: Vec::new(),
                        });
                        node.children.len() - 1
                    }
                };
                node = &mut node.children[pos];
            }
            node.conditions.push(idx);
        }
        InvocationTree { root }
    }

    /// Total number of invocation nodes (excluding the root) — i.e. how many
    /// accessor calls a single evaluation performs after prefix sharing.
    pub fn invocation_count(&self) -> usize {
        fn count(node: &InvocationNode) -> usize {
            node.children.len() + node.children.iter().map(count).sum::<usize>()
        }
        count(&self.root)
    }
}

/// An opaque subscriber-side filter: the fallback for closures that violate
/// the mobility restrictions of §3.3.4 ("the filter is applied locally").
pub struct LocalFilter<T: ?Sized> {
    func: Arc<dyn Fn(&T) -> bool + Send + Sync>,
}

impl<T: ?Sized> Clone for LocalFilter<T> {
    fn clone(&self) -> Self {
        LocalFilter {
            func: Arc::clone(&self.func),
        }
    }
}

impl<T: ?Sized> LocalFilter<T> {
    /// Wraps an arbitrary closure as a local filter.
    pub fn new(func: impl Fn(&T) -> bool + Send + Sync + 'static) -> Self {
        LocalFilter {
            func: Arc::new(func),
        }
    }

    /// Applies the filter.
    pub fn eval(&self, value: &T) -> bool {
        (self.func)(value)
    }
}

impl<T: ?Sized> fmt::Debug for LocalFilter<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("LocalFilter(<opaque closure>)")
    }
}
