//! The `rfilter!` macro: the reproduction's filter "precompiler".
//!
//! In the paper, `psc` recognises filter blocks whose statements follow the
//! §3.3.4 restrictions and reifies them into invocation/evaluation trees.
//! `rfilter!` plays that role for the common conjunctive filter shape: a
//! `&&`-separated list of clauses, each testing one (possibly nested)
//! property against a literal. The output is a [`RemoteFilter`]
//! (serializable, migratable, factorable); anything the grammar cannot
//! express stays a [`LocalFilter`] closure, exactly like non-conforming
//! filters in the paper.
//!
//! Because paths are resolved by name at match time, `rfilter!` corresponds
//! to the paper's *reflection-style* filters (§5.5.1); the statically typed
//! alternative is the schema DSL in [`typed`](crate::typed). Disjunctions are
//! built by combining reified filters with [`RemoteFilter::or`].
//!
//! [`RemoteFilter`]: crate::RemoteFilter
//! [`RemoteFilter::or`]: crate::RemoteFilter::or
//! [`LocalFilter`]: crate::LocalFilter

/// Reifies a conjunctive content filter into a [`RemoteFilter`].
///
/// Grammar: `clause ( && clause )*` where each clause is one of
///
/// - `path == literal`, `path != literal`
/// - `path < literal`, `path <= literal`, `path > literal`, `path >= literal`
/// - `path contains literal`, `path starts_with literal`,
///   `path ends_with literal`
/// - `path exists`
///
/// and `path` is a dot-separated chain of identifiers (`market.company`),
/// mirroring nested accessor invocations.
///
/// ```
/// use psc_filter::{rfilter, Value};
///
/// let f = rfilter!(price < 100.0 && company contains "Telco");
/// let quote = Value::record([
///     ("company", Value::from("Telco Mobiles")),
///     ("price", Value::from(80.0)),
/// ]);
/// assert!(f.matches(&quote));
/// assert_eq!(f.predicates().len(), 2);
/// ```
///
/// [`RemoteFilter`]: crate::RemoteFilter
#[macro_export]
macro_rules! rfilter {
    ($($tokens:tt)+) => {
        $crate::RemoteFilter::conjunction($crate::__rfilter_clauses!([] $($tokens)+))
    };
}

/// Internal clause muncher for [`rfilter!`]; not part of the public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __rfilter_clauses {
    // --- binary operator clauses, more input follows ---
    ([$($acc:expr,)*] $($seg:ident).+ == $lit:literal && $($rest:tt)+) => {
        $crate::__rfilter_clauses!([$($acc,)* $crate::__rfilter_pred!([$($seg)+] Eq $lit),] $($rest)+)
    };
    ([$($acc:expr,)*] $($seg:ident).+ != $lit:literal && $($rest:tt)+) => {
        $crate::__rfilter_clauses!([$($acc,)* $crate::__rfilter_pred!([$($seg)+] Ne $lit),] $($rest)+)
    };
    ([$($acc:expr,)*] $($seg:ident).+ <= $lit:literal && $($rest:tt)+) => {
        $crate::__rfilter_clauses!([$($acc,)* $crate::__rfilter_pred!([$($seg)+] Le $lit),] $($rest)+)
    };
    ([$($acc:expr,)*] $($seg:ident).+ < $lit:literal && $($rest:tt)+) => {
        $crate::__rfilter_clauses!([$($acc,)* $crate::__rfilter_pred!([$($seg)+] Lt $lit),] $($rest)+)
    };
    ([$($acc:expr,)*] $($seg:ident).+ >= $lit:literal && $($rest:tt)+) => {
        $crate::__rfilter_clauses!([$($acc,)* $crate::__rfilter_pred!([$($seg)+] Ge $lit),] $($rest)+)
    };
    ([$($acc:expr,)*] $($seg:ident).+ > $lit:literal && $($rest:tt)+) => {
        $crate::__rfilter_clauses!([$($acc,)* $crate::__rfilter_pred!([$($seg)+] Gt $lit),] $($rest)+)
    };
    ([$($acc:expr,)*] $($seg:ident).+ contains $lit:literal && $($rest:tt)+) => {
        $crate::__rfilter_clauses!([$($acc,)* $crate::__rfilter_pred!([$($seg)+] Contains $lit),] $($rest)+)
    };
    ([$($acc:expr,)*] $($seg:ident).+ starts_with $lit:literal && $($rest:tt)+) => {
        $crate::__rfilter_clauses!([$($acc,)* $crate::__rfilter_pred!([$($seg)+] StartsWith $lit),] $($rest)+)
    };
    ([$($acc:expr,)*] $($seg:ident).+ ends_with $lit:literal && $($rest:tt)+) => {
        $crate::__rfilter_clauses!([$($acc,)* $crate::__rfilter_pred!([$($seg)+] EndsWith $lit),] $($rest)+)
    };
    ([$($acc:expr,)*] $($seg:ident).+ exists && $($rest:tt)+) => {
        $crate::__rfilter_clauses!([$($acc,)* $crate::__rfilter_pred!([$($seg)+] Exists),] $($rest)+)
    };
    // --- terminal clauses ---
    ([$($acc:expr,)*] $($seg:ident).+ == $lit:literal) => {
        vec![$($acc,)* $crate::__rfilter_pred!([$($seg)+] Eq $lit)]
    };
    ([$($acc:expr,)*] $($seg:ident).+ != $lit:literal) => {
        vec![$($acc,)* $crate::__rfilter_pred!([$($seg)+] Ne $lit)]
    };
    ([$($acc:expr,)*] $($seg:ident).+ <= $lit:literal) => {
        vec![$($acc,)* $crate::__rfilter_pred!([$($seg)+] Le $lit)]
    };
    ([$($acc:expr,)*] $($seg:ident).+ < $lit:literal) => {
        vec![$($acc,)* $crate::__rfilter_pred!([$($seg)+] Lt $lit)]
    };
    ([$($acc:expr,)*] $($seg:ident).+ >= $lit:literal) => {
        vec![$($acc,)* $crate::__rfilter_pred!([$($seg)+] Ge $lit)]
    };
    ([$($acc:expr,)*] $($seg:ident).+ > $lit:literal) => {
        vec![$($acc,)* $crate::__rfilter_pred!([$($seg)+] Gt $lit)]
    };
    ([$($acc:expr,)*] $($seg:ident).+ contains $lit:literal) => {
        vec![$($acc,)* $crate::__rfilter_pred!([$($seg)+] Contains $lit)]
    };
    ([$($acc:expr,)*] $($seg:ident).+ starts_with $lit:literal) => {
        vec![$($acc,)* $crate::__rfilter_pred!([$($seg)+] StartsWith $lit)]
    };
    ([$($acc:expr,)*] $($seg:ident).+ ends_with $lit:literal) => {
        vec![$($acc,)* $crate::__rfilter_pred!([$($seg)+] EndsWith $lit)]
    };
    ([$($acc:expr,)*] $($seg:ident).+ exists) => {
        vec![$($acc,)* $crate::__rfilter_pred!([$($seg)+] Exists)]
    };
}

/// Internal predicate constructor for [`rfilter!`]; not part of the public
/// API.
#[doc(hidden)]
#[macro_export]
macro_rules! __rfilter_pred {
    ([$($seg:ident)+] Exists) => {
        $crate::Predicate::new(
            $crate::PropPath::from_segments([$(stringify!($seg)),+]),
            $crate::CmpOp::Exists,
            $crate::Value::Unit,
        )
    };
    ([$($seg:ident)+] $op:ident $lit:literal) => {
        $crate::Predicate::new(
            $crate::PropPath::from_segments([$(stringify!($seg)),+]),
            $crate::CmpOp::$op,
            $lit,
        )
    };
}
