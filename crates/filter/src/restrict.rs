//! Mobility restrictions on filters (paper §3.3.4).
//!
//! "Any variable used in a filter might reference an object … of a type
//! which is not known on a host where that filter is evaluated, forcing the
//! transfer of code." The paper therefore restricts migratable filters to
//! (nested) accessor invocations on the filtered obvent, with operands of
//! primitive/string type. Filters built through this crate's AST satisfy the
//! *structural* restrictions by construction; this module adds the
//! *quantitative* policy a filtering host applies before accepting a foreign
//! filter (resource bounds against hostile or degenerate subscriptions) and
//! reports violations precisely.

use std::fmt;

use crate::{RemoteFilter, Value};

/// Policy limits a filtering host imposes on foreign filters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Restrictions {
    /// Maximum accessor-chain depth (nested invocations, §3.3.4
    /// "invocations: the only method invocations allowed in a filter are
    /// (nested) invocations on its variables").
    pub max_path_depth: usize,
    /// Maximum number of predicate leaves.
    pub max_predicates: usize,
    /// Maximum operand string/list size in bytes/elements.
    pub max_operand_size: usize,
    /// Whether structured operands (lists, records) are accepted. Plain
    /// §3.3.4 limits operands to primitives and strings.
    pub allow_structured_operands: bool,
}

impl Default for Restrictions {
    /// The paper-faithful default: depth 8, 256 predicates, 4 KiB operands,
    /// primitive/string operands only.
    fn default() -> Self {
        Restrictions {
            max_path_depth: 8,
            max_predicates: 256,
            max_operand_size: 4096,
            allow_structured_operands: false,
        }
    }
}

/// A violation of the mobility restrictions.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum Violation {
    /// A predicate's accessor chain is deeper than allowed.
    PathTooDeep {
        /// Offending path rendered as text.
        path: String,
        /// Its depth.
        depth: usize,
        /// The allowed maximum.
        max: usize,
    },
    /// The filter has too many predicate leaves.
    TooManyPredicates {
        /// Number of leaves present.
        count: usize,
        /// The allowed maximum.
        max: usize,
    },
    /// An operand exceeds the size limit.
    OperandTooLarge {
        /// Offending predicate index.
        predicate: usize,
        /// Operand size in bytes/elements.
        size: usize,
        /// The allowed maximum.
        max: usize,
    },
    /// A structured operand (list/record) was used while disallowed.
    StructuredOperand {
        /// Offending predicate index.
        predicate: usize,
    },
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Violation::PathTooDeep { path, depth, max } => {
                write!(f, "accessor chain `{path}` has depth {depth}, max {max}")
            }
            Violation::TooManyPredicates { count, max } => {
                write!(f, "filter has {count} predicates, max {max}")
            }
            Violation::OperandTooLarge {
                predicate,
                size,
                max,
            } => write!(
                f,
                "operand of predicate {predicate} has size {size}, max {max}"
            ),
            Violation::StructuredOperand { predicate } => write!(
                f,
                "predicate {predicate} uses a structured operand, which this host rejects"
            ),
        }
    }
}

impl std::error::Error for Violation {}

/// Checks `filter` against `limits`, returning every violation found.
///
/// An empty result means the filter may be migrated to (and evaluated on)
/// the restricting host; otherwise the subscriber must apply it locally —
/// the paper's "in such a scenario, the filter is applied locally".
///
/// ```
/// use psc_filter::{restrict, rfilter};
///
/// let f = rfilter!(price < 100.0);
/// assert!(restrict::check(&f, &restrict::Restrictions::default()).is_empty());
/// ```
pub fn check(filter: &RemoteFilter, limits: &Restrictions) -> Vec<Violation> {
    let mut violations = Vec::new();
    let preds = filter.predicates();
    if preds.len() > limits.max_predicates {
        violations.push(Violation::TooManyPredicates {
            count: preds.len(),
            max: limits.max_predicates,
        });
    }
    for (i, pred) in preds.iter().enumerate() {
        if pred.path.depth() > limits.max_path_depth {
            violations.push(Violation::PathTooDeep {
                path: pred.path.to_string(),
                depth: pred.path.depth(),
                max: limits.max_path_depth,
            });
        }
        match &pred.operand {
            Value::Str(s) if s.len() > limits.max_operand_size => {
                violations.push(Violation::OperandTooLarge {
                    predicate: i,
                    size: s.len(),
                    max: limits.max_operand_size,
                });
            }
            Value::List(items) => {
                if !limits.allow_structured_operands {
                    violations.push(Violation::StructuredOperand { predicate: i });
                } else if items.len() > limits.max_operand_size {
                    violations.push(Violation::OperandTooLarge {
                        predicate: i,
                        size: items.len(),
                        max: limits.max_operand_size,
                    });
                }
            }
            Value::Record(_) if !limits.allow_structured_operands => {
                violations.push(Violation::StructuredOperand { predicate: i });
            }
            _ => {}
        }
    }
    violations
}

/// Convenience: true when [`check`] reports no violations.
pub fn is_migratable(filter: &RemoteFilter, limits: &Restrictions) -> bool {
    check(filter, limits).is_empty()
}
