use psc_harness::runner;
use psc_harness::{ProtocolKind, Scenario};

fn main() {
    for (seed, kind) in [
        (11u64, ProtocolKind::Fifo),
        (8, ProtocolKind::Causal),
        (340, ProtocolKind::Causal),
        (56, ProtocolKind::Total),
    ] {
        let mut s = Scenario::generate(seed);
        s.protocol = kind;
        let outcome = runner::run_scenario(&s);
        println!("==== seed {seed} {} ====\n{}\n", kind.name(), runner::report(&s, &outcome));
    }
}
