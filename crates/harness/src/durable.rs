//! Durable-channel fuzzing: certified publishes against a durable
//! subscriber whose node is crash-restarted **with disk faults**.
//!
//! Where [`stack`](crate::stack) checks routing over a healthy cluster,
//! this module attacks the write-ahead log under the paper's §3.1.2
//! certified contract: a subscriber that re-attaches under the same
//! durable identity after a power-loss restart must resume the stream
//! **exactly once** — no acked-certified publish lost (the WAL replay
//! must recover parked obvents and durable subscriptions), and no obvent
//! delivered twice across incarnations (the persistent delivered set must
//! survive the fault).
//!
//! Each seed derives a scenario: a publish workload, a message-loss rate
//! for the chaos window, and one or two restart cycles of the subscriber
//! node, each with a sampled [`DiskFault`] (lost un-fsynced suffixes,
//! torn tail writes, whole-segment loss) and a re-attach delay during
//! which arrivals are parked. Loss is phased — lossless warmup so the
//! subscription announcement converges, lossy chaos window, lossless
//! settle — so the completeness half of the oracle is sound: once the
//! network heals, certified retransmission guarantees eventual delivery,
//! and anything still missing was genuinely lost by the disk.

use std::sync::{Arc, Mutex};

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use psc_dace::{DaceConfig, DaceNode};
use psc_obvent::builtin::Certified;
use psc_obvent::declare_obvent_model;
use psc_simnet::Duration as SimDuration;
use psc_simnet::{DiskFault, LatencyModel, NodeId, SimConfig, SimNet, SimTime};
use pubsub_core::FilterSpec;

declare_obvent_model! {
    /// The durable fuzz workload: a certified obvent carrying its publish
    /// index.
    pub class DurTick implements [Certified] { n: u64 }
}

/// The durable identity every subscriber incarnation re-attaches under.
const DURABLE_ID: u64 = 0xD0B1;

/// The node hosting the durable subscription (and eating the disk faults).
const SUB_NODE: usize = 1;

/// One certified publication of a durable scenario.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DurablePub {
    /// Publishing node (never [`SUB_NODE`]).
    pub node: usize,
    /// Virtual time of the publish (ms).
    pub at_ms: u64,
}

/// One crash–restart cycle of the subscriber node.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RestartPlan {
    /// Crash time (ms).
    pub at_ms: u64,
    /// Outage length; the node recovers at `at_ms + down_ms`.
    pub down_ms: u64,
    /// Parking window: the application re-attaches under [`DURABLE_ID`]
    /// this long after recovery, so certified retransmissions arriving in
    /// between are parked (and must survive the *next* fault).
    pub reattach_after_ms: u64,
    /// Disk damage applied at the crash.
    pub fault: DiskFault,
}

impl RestartPlan {
    fn fault_name(&self) -> String {
        match self.fault {
            DiskFault::None => "none".into(),
            DiskFault::LoseUnsynced => "lose-unsynced".into(),
            DiskFault::TornTail { drop_bytes } => format!("torn-tail({drop_bytes})"),
            DiskFault::DropUnsyncedSegments => "drop-unsynced-segments".into(),
        }
    }
}

/// A seed-derived durable-restart scenario.
#[derive(Debug, Clone, PartialEq)]
pub struct DurableScenario {
    /// Generating seed (also seeds the network).
    pub seed: u64,
    /// Cluster size (2 or 3; node [`SUB_NODE`] subscribes, the rest publish).
    pub nodes: usize,
    /// Message-loss probability during the chaos window (the warmup and
    /// the final settle run lossless).
    pub loss: f64,
    /// Certified publish workload; publish `i` carries value `i`.
    pub pubs: Vec<DurablePub>,
    /// Restart cycles of the subscriber node, in time order.
    pub restarts: Vec<RestartPlan>,
}

impl DurableScenario {
    /// Samples a durable-restart scenario from `seed`.
    pub fn generate(seed: u64) -> DurableScenario {
        let mut rng = StdRng::seed_from_u64(seed ^ 0xd07a_b1e5_d5ee_d003);
        let nodes = rng.gen_range(2..=3usize);
        let loss = [0.0, 0.05, 0.1, 0.2][rng.gen_range(0..4usize)];
        let pubs: Vec<DurablePub> = (0..rng.gen_range(4..=10usize))
            .map(|i| DurablePub {
                node: if nodes == 3 && rng.gen_bool(0.3) { 2 } else { 0 },
                at_ms: 50 + i as u64 * 60 + rng.gen_range(0..40u64),
            })
            .collect();
        let last_pub = pubs.last().expect("non-empty workload").at_ms;
        let mut restarts = Vec::new();
        let mut cursor = 80u64;
        for _ in 0..rng.gen_range(1..=2usize) {
            let slack = last_pub.saturating_sub(cursor).min(250);
            let at_ms = cursor + rng.gen_range(0..=slack);
            let down_ms = rng.gen_range(40..=160u64);
            let reattach_after_ms = rng.gen_range(20..=120u64);
            let fault = match rng.gen_range(0..6u32) {
                0 => DiskFault::None,
                1 | 2 => DiskFault::LoseUnsynced,
                3 => DiskFault::TornTail { drop_bytes: rng.gen_range(1..=64usize) },
                _ => DiskFault::DropUnsyncedSegments,
            };
            restarts.push(RestartPlan { at_ms, down_ms, reattach_after_ms, fault });
            cursor = at_ms + down_ms + reattach_after_ms + 40;
        }
        DurableScenario { seed, nodes, loss, pubs, restarts }
    }

    /// Deterministic description used in reports.
    pub fn describe(&self) -> String {
        let mut out = format!(
            "durable scenario seed={} nodes={} loss={}\n",
            self.seed, self.nodes, self.loss
        );
        for (i, p) in self.pubs.iter().enumerate() {
            out.push_str(&format!("  pub#{i} node={} at={}ms\n", p.node, p.at_ms));
        }
        for (i, r) in self.restarts.iter().enumerate() {
            out.push_str(&format!(
                "  restart#{i} crash={}ms down={}ms reattach_after={}ms fault={}\n",
                r.at_ms,
                r.down_ms,
                r.reattach_after_ms,
                r.fault_name()
            ));
        }
        out
    }
}

/// What a durable run observed.
#[derive(Debug, Clone)]
pub struct DurableOutcome {
    /// Values delivered to each subscriber incarnation, in delivery order
    /// (incarnation 0 runs from startup to the first crash).
    pub got: Vec<Vec<u64>>,
    /// Durability-oracle findings, empty on a healthy run.
    pub violations: Vec<String>,
}

impl DurableOutcome {
    /// Canonical rendering (the determinism check compares these).
    pub fn render(&self) -> String {
        let mut out = String::new();
        for (i, got) in self.got.iter().enumerate() {
            out.push_str(&format!("  inc#{i} got={got:?}\n"));
        }
        out
    }
}

type Sink = Arc<Mutex<Vec<u64>>>;

/// Attaches one subscriber incarnation under the durable identity.
fn attach(sim: &mut SimNet, node: NodeId) -> Sink {
    let sink: Sink = Arc::new(Mutex::new(Vec::new()));
    let recorder = Arc::clone(&sink);
    DaceNode::drive(sim, node, move |domain| {
        let sub = domain.subscribe(FilterSpec::accept_all(), move |e: DurTick| {
            recorder.lock().unwrap().push(*e.n());
        });
        sub.activate_with_id(DURABLE_ID).expect("durable attach");
        sub.detach();
    });
    sink
}

/// The DACE configuration durable runs use: WAL on, small segments so
/// realistic workloads cross rotation (and sometimes compaction)
/// boundaries, and the fsync discipline under test.
pub fn durable_config(wal_sync: bool) -> DaceConfig {
    DaceConfig {
        wal_sync,
        wal_segment_bytes: 1024,
        wal_compact_threshold: 4096,
        ..DaceConfig::default()
    }
}

/// Executes a durable scenario with a correct fsync discipline and applies
/// the durability oracle.
pub fn run_durable(scenario: &DurableScenario) -> DurableOutcome {
    run_durable_config(scenario, true)
}

/// [`run_durable`] with the fsync barrier switchable: `wal_sync == false`
/// deliberately models a broken disk discipline, and the oracle must catch
/// the ghost/dup it eventually produces (see the pinned regression seed in
/// `harness_smoke`).
pub fn run_durable_config(scenario: &DurableScenario, wal_sync: bool) -> DurableOutcome {
    let _ = DurTick::kind();
    let mut sim = SimNet::new(SimConfig {
        seed: scenario.seed,
        latency: LatencyModel::Uniform {
            min: SimDuration::from_millis(1),
            max: SimDuration::from_millis(5),
        },
        drop_probability: 0.0,
    });
    let ids: Vec<NodeId> = (0..scenario.nodes as u64).map(NodeId).collect();
    let config = durable_config(wal_sync);
    for i in 0..scenario.nodes {
        sim.add_node(format!("d{i}"), DaceNode::factory(ids.clone(), config.clone()));
    }
    let mut sinks = vec![attach(&mut sim, ids[SUB_NODE])];

    enum Ev {
        Pub(usize),
        Crash(usize),
        Recover,
        Reattach,
    }
    let mut timeline: Vec<(u64, usize, Ev)> = Vec::new();
    for (i, p) in scenario.pubs.iter().enumerate() {
        timeline.push((p.at_ms, timeline.len(), Ev::Pub(i)));
    }
    for (i, r) in scenario.restarts.iter().enumerate() {
        timeline.push((r.at_ms, timeline.len(), Ev::Crash(i)));
        timeline.push((r.at_ms + r.down_ms, timeline.len(), Ev::Recover));
        timeline.push((
            r.at_ms + r.down_ms + r.reattach_after_ms,
            timeline.len(),
            Ev::Reattach,
        ));
    }
    timeline.sort_by_key(|&(at, k, _)| (at, k));

    // Lossless warmup: the durable subscription's announcement converges
    // before any publish, so every certified publish durably targets it.
    sim.run_until(SimTime::from_millis(30));
    sim.set_drop_probability(scenario.loss);

    let mut last_at = 30;
    for (at, _, ev) in timeline {
        sim.run_until(SimTime::from_millis(at));
        match ev {
            Ev::Pub(i) => {
                let p = scenario.pubs[i];
                DaceNode::publish_from(&mut sim, ids[p.node], DurTick::new(i as u64));
            }
            Ev::Crash(i) => sim.crash_with_fault(ids[SUB_NODE], scenario.restarts[i].fault),
            Ev::Recover => sim.recover(ids[SUB_NODE]),
            Ev::Reattach => sinks.push(attach(&mut sim, ids[SUB_NODE])),
        }
        last_at = at;
    }
    // Lossless settle: certified retransmission now guarantees eventual
    // delivery of everything the disk still knows about.
    sim.set_drop_probability(0.0);
    sim.run_until(SimTime::from_millis(last_at + 3_000));

    let got: Vec<Vec<u64>> = sinks.iter().map(|s| s.lock().unwrap().clone()).collect();

    // The cross-restart exactly-once oracle: over the union of all
    // incarnations, every certified publish appears exactly once.
    let mut counts = vec![0usize; scenario.pubs.len()];
    let mut violations = Vec::new();
    for (inc, values) in got.iter().enumerate() {
        for &v in values {
            match counts.get_mut(v as usize) {
                Some(c) => *c += 1,
                None => violations.push(format!("inc#{inc}: ghost delivery of unknown value {v}")),
            }
        }
    }
    for (i, &c) in counts.iter().enumerate() {
        if c == 0 {
            violations.push(format!(
                "durability: certified publish #{i} lost across restarts (never delivered)"
            ));
        } else if c > 1 {
            violations.push(format!(
                "durability: publish #{i} delivered {c} times across incarnations \
                 (exactly-once broken)"
            ));
        }
    }
    DurableOutcome { got, violations }
}

/// Greedy shrinking for durable counterexamples: while the failure
/// reproduces, delete publishes and restart cycles, weaken each surviving
/// fault toward [`DiskFault::None`], and zero the loss rate.
pub fn shrink_durable(scenario: &DurableScenario, wal_sync: bool) -> DurableScenario {
    let violates =
        |s: &DurableScenario| !run_durable_config(s, wal_sync).violations.is_empty();
    let mut current = scenario.clone();
    loop {
        let mut progressed = false;
        let mut i = 0;
        while i < current.pubs.len() {
            if current.pubs.len() == 1 {
                break; // the oracle needs at least one publish to count
            }
            let mut candidate = current.clone();
            candidate.pubs.remove(i);
            if violates(&candidate) {
                current = candidate;
                progressed = true;
            } else {
                i += 1;
            }
        }
        let mut i = 0;
        while i < current.restarts.len() {
            let mut candidate = current.clone();
            candidate.restarts.remove(i);
            if violates(&candidate) {
                current = candidate;
                progressed = true;
            } else {
                i += 1;
            }
        }
        for i in 0..current.restarts.len() {
            for weaker in [DiskFault::LoseUnsynced, DiskFault::None] {
                if current.restarts[i].fault == weaker {
                    break;
                }
                let mut candidate = current.clone();
                candidate.restarts[i].fault = weaker;
                if violates(&candidate) {
                    current = candidate;
                    progressed = true;
                    break;
                }
            }
        }
        if current.loss > 0.0 {
            let mut candidate = current.clone();
            candidate.loss = 0.0;
            if violates(&candidate) {
                current = candidate;
                progressed = true;
            }
        }
        if !progressed {
            return current;
        }
    }
}

/// Writes the text post-mortem of a failing durable run under
/// `HARNESS_DUMP_DIR` (if set); returns the context line for the report.
fn dump_durable_failure(
    seed: u64,
    scenario: &DurableScenario,
    outcome: &DurableOutcome,
) -> String {
    let Ok(dir) = std::env::var("HARNESS_DUMP_DIR") else {
        return String::new();
    };
    let base = std::path::PathBuf::from(dir);
    if std::fs::create_dir_all(&base).is_err() {
        return String::new();
    }
    let path = base.join(format!("durable_postmortem_seed{seed}.txt"));
    let mut dump = format!("=== durable post-mortem seed={seed} ===\n");
    dump.push_str(&scenario.describe());
    dump.push_str(&outcome.render());
    for v in &outcome.violations {
        dump.push_str(&format!("  {v}\n"));
    }
    if std::fs::write(&path, dump).is_ok() {
        format!("post-mortem dumped to: {}\n", path.display())
    } else {
        String::new()
    }
}

/// Determinism + durability oracle for one seed; `Err` carries a full
/// replayable report with a shrunk counterexample.
pub fn check_durable_seed(seed: u64) -> Result<(), String> {
    let scenario = DurableScenario::generate(seed);
    let first = run_durable(&scenario);
    let second = run_durable(&scenario);
    if first.render() != second.render() {
        return Err(format!(
            "durable seed {seed}: NONDETERMINISM across identical runs\n{}{}",
            scenario.describe(),
            first.render()
        ));
    }
    if first.violations.is_empty() {
        return Ok(());
    }
    let shrunk = shrink_durable(&scenario, true);
    let shrunk_outcome = run_durable(&shrunk);
    Err(format!(
        "durable seed {seed}: {} durability violation(s)\n\
         replay with: HARNESS_SEED={seed} cargo test --test harness_smoke\n\
         {}{}{}{}\
         === shrunk counterexample ({} pubs, {} restarts) ===\n{}{}",
        first.violations.len(),
        dump_durable_failure(seed, &scenario, &first),
        scenario.describe(),
        first.render(),
        first
            .violations
            .iter()
            .map(|v| format!("  {v}\n"))
            .collect::<String>(),
        shrunk.pubs.len(),
        shrunk.restarts.len(),
        shrunk.describe(),
        shrunk_outcome.render(),
    ))
}
