#![warn(missing_docs)]

//! # psc-harness — deterministic simulation harness
//!
//! A FoundationDB-style simulation-testing harness for the whole stack:
//! from one `u64` seed it derives a complete scenario — cluster size, loss
//! rate, latency distribution, partition windows, crash/recovery schedules
//! and a publish workload — executes it inside the deterministic
//! `psc-simnet` discrete-event simulator against a chosen `psc-group`
//! protocol (or the full DACE dissemination stack), and checks the
//! delivered traces against the paper's §3.1.2 delivery/ordering contracts:
//!
//! - **integrity** — no ghost deliveries, no duplicates, correct origin
//!   attribution (all protocols);
//! - **FIFO** — per-publisher delivery is a contiguous, in-order prefix of
//!   the publish order (`Fifo`, and `Causal` via the Fig. 4 lattice);
//! - **causal** — a delivered obvent is preceded by every publication its
//!   publisher had delivered when publishing (`Causal`);
//! - **total order** — any two processes agree on the relative order of
//!   every pair of messages they both deliver (`Total`);
//! - **completeness / certified durability** — everything published is
//!   delivered everywhere, exactly once, including across subscriber and
//!   publisher crash–recovery (`Certified` always; the others whenever the
//!   sampled fault load is within their tolerance).
//!
//! Three layers, mirroring the crate modules:
//!
//! 1. [`scenario`] — the seed-derived scenario model (plain data, so failing
//!    schedules can be shrunk and replayed);
//! 2. [`oracle`] + [`trace`] — invariant checking over recorded traces;
//! 3. [`runner`] — execution, **seed replay** (`HARNESS_SEED=N cargo test`),
//!    greedy schedule shrinking and a deterministic trace pretty-printer
//!    (the byte-identical rendering is itself the determinism check).
//!
//! [`stack`] runs the same idea end-to-end through `psc-dace` domains:
//! random subscription sets (supertype subscriptions, remote content
//! filters) against random subtype publications, with a routing oracle.
//! [`broken`] contains deliberately defective protocols used to prove the
//! oracles are sensitive, not vacuous. [`durable`] crash-restarts a
//! durable certified subscriber **with injected disk faults** (torn tail
//! writes, lost un-fsynced suffixes, whole-segment loss) and checks the
//! cross-restart exactly-once oracle over the write-ahead log.
//! [`snapshot`] takes Chandy–Lamport cuts mid-chaos and checks global
//! invariants (clock consistency, no ghosts, three-way publish coverage)
//! over the assembled byte-stable cluster image.
//!
//! ```
//! use psc_harness::{runner, Scenario};
//!
//! let scenario = Scenario::generate(7);
//! let outcome = runner::run_scenario(&scenario);
//! assert!(outcome.violations.is_empty(), "{}", runner::report(&scenario, &outcome));
//! ```

pub mod broken;
pub mod durable;
pub mod oracle;
pub mod runner;
pub mod scenario;
pub mod snapshot;
pub mod stack;
pub mod trace;

pub use oracle::{HealthFinding, Violation};
pub use runner::{
    check_scenario_with, post_mortem, post_mortem_json, report, run_scenario, run_scenario_with,
    run_seed, shrink, RunOutcome,
};
pub use scenario::{Op, ProtocolKind, Scenario};
pub use trace::{Delivery, PubRecord, Trace};
