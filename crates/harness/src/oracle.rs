//! Invariant oracles over delivered traces.
//!
//! Each check returns every violation it finds (not just the first), so a
//! report shows the full blast radius of a defect and the shrinker can keep
//! minimizing as long as *any* violation survives.

use std::collections::{HashMap, HashSet};
use std::fmt;

use crate::trace::Trace;

/// A single invariant violation found in a trace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Violation {
    /// A node delivered a payload no scenario publish produced.
    Ghost {
        /// Delivering node.
        node: u64,
        /// The decoded (nonexistent) publish index.
        index: usize,
    },
    /// A delivery attributed to the wrong origin.
    MisattributedOrigin {
        /// Delivering node.
        node: u64,
        /// Publish index.
        index: usize,
        /// Origin claimed by the protocol.
        claimed: u64,
        /// Origin that actually published it.
        actual: u64,
    },
    /// The same publish delivered more than once at one node.
    Duplicate {
        /// Delivering node.
        node: u64,
        /// Publish index delivered repeatedly.
        index: usize,
    },
    /// Per-publisher order broken: a later publish delivered before an
    /// earlier one of the same origin (or over a gap).
    FifoOrder {
        /// Delivering node.
        node: u64,
        /// Publishing origin.
        origin: u64,
        /// Origin-sequence number expected next.
        expected_seq: u64,
        /// Origin-sequence number actually delivered.
        got_seq: u64,
    },
    /// Causal precedence broken: a publish was delivered although one of
    /// its happened-before predecessors was not delivered first.
    CausalOrder {
        /// Delivering node.
        node: u64,
        /// The delivered publish index.
        index: usize,
        /// The predecessor that should have come first (or at all).
        dep: usize,
    },
    /// Two nodes disagree on the relative order of two messages both
    /// delivered.
    TotalOrderDisagreement {
        /// First node.
        a: u64,
        /// Second node.
        b: u64,
        /// Publish index `a` delivered first.
        first: usize,
        /// Publish index `a` delivered second (and `b` first).
        second: usize,
    },
    /// A publish the scenario guarantees was never delivered at a node.
    MissingDelivery {
        /// The node that missed it.
        node: u64,
        /// The missing publish index.
        index: usize,
    },
    /// A node's telemetry `group.delivered` counter disagrees with the
    /// deliveries the trace observed at that node — the observability layer
    /// and the protocol disagree about what happened.
    TelemetryMismatch {
        /// The node whose counter diverged.
        node: u64,
        /// What the telemetry counter says.
        counted: u64,
        /// What the delivery log says.
        observed: u64,
    },
}

impl Violation {
    /// The node a violation implicates — where to look first in the
    /// per-node flight recorders when assembling a post-mortem. For
    /// [`Violation::TotalOrderDisagreement`] (two nodes) this is the first.
    pub fn node(&self) -> u64 {
        match *self {
            Violation::Ghost { node, .. }
            | Violation::MisattributedOrigin { node, .. }
            | Violation::Duplicate { node, .. }
            | Violation::FifoOrder { node, .. }
            | Violation::CausalOrder { node, .. }
            | Violation::MissingDelivery { node, .. }
            | Violation::TelemetryMismatch { node, .. } => node,
            Violation::TotalOrderDisagreement { a, .. } => a,
        }
    }
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            Violation::Ghost { node, index } => {
                write!(f, "node {node} delivered ghost message #{index}")
            }
            Violation::MisattributedOrigin { node, index, claimed, actual } => write!(
                f,
                "node {node} delivered #{index} attributed to {claimed}, published by {actual}"
            ),
            Violation::Duplicate { node, index } => {
                write!(f, "node {node} delivered #{index} more than once")
            }
            Violation::FifoOrder { node, origin, expected_seq, got_seq } => write!(
                f,
                "node {node} broke FIFO for origin {origin}: expected seq {expected_seq}, delivered seq {got_seq}"
            ),
            Violation::CausalOrder { node, index, dep } => write!(
                f,
                "node {node} delivered #{index} before its causal predecessor #{dep}"
            ),
            Violation::TotalOrderDisagreement { a, b, first, second } => write!(
                f,
                "nodes {a} and {b} disagree on the order of #{first} and #{second}"
            ),
            Violation::MissingDelivery { node, index } => {
                write!(f, "node {node} never delivered #{index}")
            }
            Violation::TelemetryMismatch { node, counted, observed } => write!(
                f,
                "node {node} telemetry counted {counted} deliveries, trace observed {observed}"
            ),
        }
    }
}

/// A non-fatal finding of the stall watchdog ([`check_health`]): some
/// `health.*` counter fired during the run. Unlike a [`Violation`] this
/// does not fail a seed — a queue legitimately backs up while a peer is
/// crashed — but it is rendered into the report so a stalled obvent is
/// visible next to the invariant verdicts, and the post-mortem names the
/// stuck queue.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HealthFinding {
    /// The health counter that fired (`health.stall.<queue>` or
    /// `health.retransmit_storm`), summed over every node.
    pub name: String,
    /// How many sweeps flagged it.
    pub count: u64,
    /// Publish indices at least one node never delivered — the candidate
    /// unprogressed obvents a stall points at.
    pub undelivered: Vec<usize>,
}

impl fmt::Display for HealthFinding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} flagged {} sweep(s)", self.name, self.count)?;
        if self.undelivered.is_empty() {
            write!(f, "; every publish delivered everywhere")
        } else {
            write!(f, "; undelivered publishes: {:?}", self.undelivered)
        }
    }
}

/// The stall-watchdog oracle: scans the trace's folded wire counters for
/// `health.stall.*` and `health.retransmit_storm` hits and pairs them with
/// the publishes that never reached every node. Non-fatal — the findings
/// ride along in [`RunOutcome`](crate::RunOutcome) instead of the
/// violations list.
pub fn check_health(trace: &Trace) -> Vec<HealthFinding> {
    let mut undelivered: Vec<usize> = Vec::new();
    for publish in &trace.publishes {
        let everywhere = trace
            .deliveries
            .values()
            .all(|log| log.iter().any(|d| d.index == publish.index));
        if !everywhere {
            undelivered.push(publish.index);
        }
    }
    trace
        .wire
        .iter()
        .filter(|(name, &count)| {
            count > 0 && (name.starts_with("health.stall.") || *name == "health.retransmit_storm")
        })
        .map(|(name, &count)| HealthFinding {
            name: name.clone(),
            count,
            undelivered: undelivered.clone(),
        })
        .collect()
}

/// No ghosts, no duplicates, correct origin attribution — holds for every
/// protocol in the menu.
///
/// Duplicates are judged **per receiver incarnation**: a volatile protocol
/// cannot remember across its own crash what it already delivered, so a
/// straggling retransmission re-delivered by the next incarnation is within
/// contract. Cross-incarnation exactly-once is a *stronger* guarantee,
/// asserted separately by [`check_no_cross_incarnation_redelivery`] for the
/// protocols that promise it.
pub fn check_integrity(trace: &Trace) -> Vec<Violation> {
    let mut violations = Vec::new();
    for (&node, log) in &trace.deliveries {
        let mut seen = HashSet::new();
        for d in log {
            match trace.publishes.get(d.index) {
                None => violations.push(Violation::Ghost { node, index: d.index }),
                Some(p) => {
                    if p.origin != d.origin {
                        violations.push(Violation::MisattributedOrigin {
                            node,
                            index: d.index,
                            claimed: d.origin,
                            actual: p.origin,
                        });
                    }
                }
            }
            if !seen.insert((d.incarnation, d.index)) {
                violations.push(Violation::Duplicate { node, index: d.index });
            }
        }
    }
    violations
}

/// Exactly-once across the receiver's own crashes: no publish may be
/// delivered twice at a node even in *different* incarnations. `Certified`
/// promises this via its persistent delivered set; `Total` achieves it for
/// recovered receivers by adopting the stream horizon instead of replaying
/// sequencer history.
pub fn check_no_cross_incarnation_redelivery(trace: &Trace) -> Vec<Violation> {
    let mut violations = Vec::new();
    for (&node, log) in &trace.deliveries {
        // index → incarnation of the first delivery. Same-incarnation
        // repeats are already reported by `check_integrity`.
        let mut first: HashMap<usize, u64> = HashMap::new();
        for d in log {
            match first.get(&d.index) {
                None => {
                    first.insert(d.index, d.incarnation);
                }
                Some(&inc) if inc != d.incarnation => {
                    violations.push(Violation::Duplicate { node, index: d.index });
                }
                Some(_) => {}
            }
        }
    }
    violations
}

/// Per-publisher FIFO: at every node, each origin's deliveries must be its
/// publishes in order *without gaps* — the hold-back queue releases only
/// contiguous prefixes, so a gap means the protocol delivered over a
/// missing message instead of waiting for it.
///
/// Crash severance, both sides:
/// - a **publisher** crash may legitimately lose the tail of its previous
///   incarnation, so a gap is a violation only when some *skipped* publish
///   belongs to the **same** publisher incarnation as the delivered one
///   (a same-incarnation hole is a protocol bug; a hole that exactly spans
///   dead-incarnation publishes is the crash itself);
/// - a **receiver** crash wipes the receiver's sequencing state, so
///   expectations restart at each receiver incarnation. Inversions inside
///   one receiver incarnation are always violations.
pub fn check_fifo(trace: &Trace) -> Vec<Violation> {
    // origin → (origin_seq → publisher incarnation), to classify skipped
    // publishes inside a gap.
    let mut inc_of: HashMap<u64, HashMap<u64, u64>> = HashMap::new();
    for p in &trace.publishes {
        inc_of.entry(p.origin).or_default().insert(p.origin_seq, p.incarnation);
    }
    let mut violations = Vec::new();
    for (&node, log) in &trace.deliveries {
        let mut expected: HashMap<u64, u64> = HashMap::new();
        let mut receiver_inc = 0;
        for d in log {
            if d.incarnation != receiver_inc {
                receiver_inc = d.incarnation;
                expected.clear();
            }
            let Some(p) = trace.publishes.get(d.index) else {
                continue; // ghosts are reported by check_integrity
            };
            let next = expected.entry(p.origin).or_insert(1);
            let violation = if p.origin_seq < *next {
                true // inversion: delivered after a later same-origin publish
            } else {
                // Gap: fine iff every skipped publish died with an older
                // publisher incarnation.
                (*next..p.origin_seq).any(|seq| {
                    inc_of
                        .get(&p.origin)
                        .and_then(|m| m.get(&seq))
                        .is_some_and(|&inc| inc == p.incarnation)
                })
            };
            if violation {
                violations.push(Violation::FifoOrder {
                    node,
                    origin: p.origin,
                    expected_seq: *next,
                    got_seq: p.origin_seq,
                });
            }
            *next = p.origin_seq + 1;
        }
    }
    violations
}

/// Causal precedence: a node delivering publish `m` must already have
/// delivered every publish `m`'s origin had delivered when it published
/// `m`. Delivering `m` while a predecessor is missing entirely is equally
/// a violation — causal protocols hold `m` back instead.
///
/// Crash severance: a dependency is excused when the node delivered, before
/// `m`, a publish from the dependency's origin belonging to a **newer**
/// incarnation. Superseding an incarnation proves its undelivered tail is
/// permanently lost (volatile state died with the crash), and the protocol
/// deliberately stops waiting for it — the epoch-tagged clock carries only
/// the newest incarnation per origin.
pub fn check_causal(trace: &Trace) -> Vec<Violation> {
    let mut violations = Vec::new();
    for (&node, log) in &trace.deliveries {
        let position: HashMap<usize, usize> =
            log.iter().enumerate().map(|(pos, d)| (d.index, pos)).collect();
        for (pos, d) in log.iter().enumerate() {
            let Some(p) = trace.publishes.get(d.index) else {
                continue;
            };
            for &dep in &p.deps {
                match position.get(&dep) {
                    Some(&dep_pos) if dep_pos < pos => continue,
                    _ => {}
                }
                let severed = trace.publishes.get(dep).is_some_and(|dep_p| {
                    log[..pos].iter().any(|earlier| {
                        trace.publishes.get(earlier.index).is_some_and(|q| {
                            q.origin == dep_p.origin && q.incarnation > dep_p.incarnation
                        })
                    })
                });
                if !severed {
                    violations.push(Violation::CausalOrder { node, index: d.index, dep });
                }
            }
        }
    }
    violations
}

/// Total-order agreement: for any two nodes and any two publishes both
/// delivered, the relative delivery order matches. Reports the first
/// disagreement per node pair (one witness is enough to shrink on).
pub fn check_total(trace: &Trace) -> Vec<Violation> {
    let mut violations = Vec::new();
    let nodes: Vec<u64> = trace.deliveries.keys().copied().collect();
    let orders: HashMap<u64, HashMap<usize, usize>> = trace
        .deliveries
        .iter()
        .map(|(&node, log)| {
            (node, log.iter().enumerate().map(|(pos, d)| (d.index, pos)).collect())
        })
        .collect();
    for (i, &a) in nodes.iter().enumerate() {
        for &b in &nodes[i + 1..] {
            let (oa, ob) = (&orders[&a], &orders[&b]);
            let mut common: Vec<usize> = oa.keys().filter(|k| ob.contains_key(k)).copied().collect();
            common.sort_unstable();
            'pair: for (x_i, &x) in common.iter().enumerate() {
                for &y in &common[x_i + 1..] {
                    let in_a = oa[&x] < oa[&y];
                    let in_b = ob[&x] < ob[&y];
                    if in_a != in_b {
                        let (first, second) = if in_a { (x, y) } else { (y, x) };
                        violations.push(Violation::TotalOrderDisagreement { a, b, first, second });
                        break 'pair;
                    }
                }
            }
        }
    }
    violations
}

/// Telemetry consistency: each node's wire-level `group.delivered` counter
/// (read from its `psc-telemetry` registry, which survives crash rebuilds)
/// must equal the number of deliveries the trace observed at that node.
/// Vacuous for hand-built traces with no wire stats.
pub fn check_telemetry(trace: &Trace) -> Vec<Violation> {
    let mut violations = Vec::new();
    for (&node, &counted) in &trace.wire_delivered {
        let observed = trace.deliveries.get(&node).map_or(0, |log| log.len()) as u64;
        if counted != observed {
            violations.push(Violation::TelemetryMismatch { node, counted, observed });
        }
    }
    violations
}

/// Completeness: every node delivered every publish. Only applied when the
/// scenario's fault load is within the protocol's delivery guarantee (see
/// [`Scenario::expects_completeness`](crate::Scenario::expects_completeness)).
pub fn check_complete(trace: &Trace) -> Vec<Violation> {
    let mut violations = Vec::new();
    for (&node, log) in &trace.deliveries {
        let delivered: HashSet<usize> = log.iter().map(|d| d.index).collect();
        for p in &trace.publishes {
            if !delivered.contains(&p.index) {
                violations.push(Violation::MissingDelivery { node, index: p.index });
            }
        }
    }
    violations
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::{Delivery, PubRecord};

    fn publish(index: usize, origin: u64, origin_seq: u64, deps: Vec<usize>) -> PubRecord {
        PubRecord { index, origin, origin_seq, incarnation: 0, deps }
    }

    fn publish_inc(
        index: usize,
        origin: u64,
        origin_seq: u64,
        incarnation: u64,
        deps: Vec<usize>,
    ) -> PubRecord {
        PubRecord { index, origin, origin_seq, incarnation, deps }
    }

    fn trace(publishes: Vec<PubRecord>, logs: Vec<(u64, Vec<(u64, usize)>)>) -> Trace {
        Trace {
            publishes,
            deliveries: logs
                .into_iter()
                .map(|(node, log)| {
                    (
                        node,
                        log.into_iter()
                            .map(|(origin, index)| Delivery { origin, index, incarnation: 0 })
                            .collect(),
                    )
                })
                .collect(),
            ..Trace::default()
        }
    }

    #[test]
    fn clean_trace_passes_everything() {
        let t = trace(
            vec![publish(0, 0, 1, vec![]), publish(1, 0, 2, vec![0])],
            vec![(0, vec![(0, 0), (0, 1)]), (1, vec![(0, 0), (0, 1)])],
        );
        assert!(check_integrity(&t).is_empty());
        assert!(check_fifo(&t).is_empty());
        assert!(check_causal(&t).is_empty());
        assert!(check_total(&t).is_empty());
        assert!(check_complete(&t).is_empty());
    }

    #[test]
    fn ghost_duplicate_and_misattribution_are_flagged() {
        let t = trace(
            vec![publish(0, 0, 1, vec![])],
            vec![(1, vec![(0, 0), (0, 0), (0, 9), (2, 0)])],
        );
        let v = check_integrity(&t);
        assert!(v.contains(&Violation::Duplicate { node: 1, index: 0 }));
        assert!(v.contains(&Violation::Ghost { node: 1, index: 9 }));
        assert!(v
            .iter()
            .any(|x| matches!(x, Violation::MisattributedOrigin { claimed: 2, .. })));
    }

    #[test]
    fn fifo_catches_inversions_and_gaps() {
        let publishes = vec![
            publish(0, 0, 1, vec![]),
            publish(1, 0, 2, vec![]),
            publish(2, 0, 3, vec![]),
        ];
        let inverted = trace(publishes.clone(), vec![(1, vec![(0, 1), (0, 0)])]);
        assert!(!check_fifo(&inverted).is_empty());
        let gapped = trace(publishes, vec![(1, vec![(0, 0), (0, 2)])]);
        assert!(!check_fifo(&gapped).is_empty());
    }

    #[test]
    fn causal_requires_predecessors_first() {
        let publishes = vec![publish(0, 0, 1, vec![]), publish(1, 1, 1, vec![0])];
        let wrong_order = trace(publishes.clone(), vec![(2, vec![(1, 1), (0, 0)])]);
        assert_eq!(
            check_causal(&wrong_order),
            vec![Violation::CausalOrder { node: 2, index: 1, dep: 0 }]
        );
        let missing_dep = trace(publishes, vec![(2, vec![(1, 1)])]);
        assert_eq!(
            check_causal(&missing_dep),
            vec![Violation::CausalOrder { node: 2, index: 1, dep: 0 }]
        );
    }

    #[test]
    fn total_order_disagreement_is_flagged() {
        let publishes = vec![publish(0, 0, 1, vec![]), publish(1, 1, 1, vec![])];
        let t = trace(
            publishes,
            vec![(0, vec![(0, 0), (1, 1)]), (1, vec![(1, 1), (0, 0)])],
        );
        assert_eq!(check_total(&t).len(), 1);
    }

    #[test]
    fn fifo_gap_over_a_dead_incarnation_is_severed() {
        // Origin 0 published #0,#1 before a crash (incarnation 0) and #2
        // after recovery (incarnation 1). A node that lost #1 with the
        // crash may deliver #2 right after #0 — but a node skipping the
        // same-incarnation #1 → #2 jump within incarnation 1 is broken.
        let publishes = vec![
            publish_inc(0, 0, 1, 0, vec![]),
            publish_inc(1, 0, 2, 0, vec![]),
            publish_inc(2, 0, 3, 1, vec![]),
            publish_inc(3, 0, 4, 1, vec![]),
        ];
        let severed = trace(publishes.clone(), vec![(1, vec![(0, 0), (0, 2), (0, 3)])]);
        assert!(check_fifo(&severed).is_empty(), "cross-incarnation gap is legitimate");
        let same_inc_gap = trace(publishes, vec![(1, vec![(0, 0), (0, 1), (0, 3)])]);
        assert!(
            !check_fifo(&same_inc_gap).is_empty(),
            "skipping #2 inside incarnation 1 must be flagged"
        );
    }

    #[test]
    fn fifo_expectations_restart_at_receiver_recovery() {
        // Receiver crashes after #0,#1 and its next incarnation re-delivers
        // the stream from the start: per-incarnation at-most-once, not an
        // inversion.
        let publishes = vec![publish(0, 0, 1, vec![]), publish(1, 0, 2, vec![])];
        let t = Trace {
            publishes,
            deliveries: [(
                1u64,
                vec![
                    Delivery { origin: 0, index: 0, incarnation: 0 },
                    Delivery { origin: 0, index: 1, incarnation: 0 },
                    Delivery { origin: 0, index: 0, incarnation: 1 },
                    Delivery { origin: 0, index: 1, incarnation: 1 },
                ],
            )]
            .into_iter()
            .collect(),
            ..Trace::default()
        };
        assert!(check_fifo(&t).is_empty());
        assert!(check_integrity(&t).is_empty(), "per-incarnation dedup passes");
        assert_eq!(
            check_no_cross_incarnation_redelivery(&t).len(),
            2,
            "the stronger exactly-once contract still sees both re-deliveries"
        );
    }

    #[test]
    fn causal_dependency_on_a_superseded_incarnation_is_severed() {
        // #0 from origin 0's first incarnation is a dependency of #2, but
        // node 2 delivered #1 (origin 0's *second* incarnation) before #2:
        // the old incarnation's tail is provably lost, the dep is severed.
        let publishes = vec![
            publish_inc(0, 0, 1, 0, vec![]),
            publish_inc(1, 0, 2, 1, vec![]),
            publish_inc(2, 1, 1, 0, vec![0]),
        ];
        let severed = trace(publishes.clone(), vec![(2, vec![(0, 1), (1, 2)])]);
        assert!(check_causal(&severed).is_empty());
        // Without the superseding delivery the missing dep stays a
        // violation.
        let unsevered = trace(publishes, vec![(2, vec![(1, 2)])]);
        assert_eq!(
            check_causal(&unsevered),
            vec![Violation::CausalOrder { node: 2, index: 2, dep: 0 }]
        );
    }

    #[test]
    fn telemetry_mismatch_is_flagged() {
        let mut t = trace(vec![publish(0, 0, 1, vec![])], vec![(1, vec![(0, 0)])]);
        assert!(check_telemetry(&t).is_empty(), "no wire stats: vacuously clean");
        t.wire_delivered.insert(1, 1);
        assert!(check_telemetry(&t).is_empty(), "counter agrees with the log");
        t.wire_delivered.insert(1, 2);
        assert_eq!(
            check_telemetry(&t),
            vec![Violation::TelemetryMismatch { node: 1, counted: 2, observed: 1 }]
        );
    }

    #[test]
    fn completeness_reports_missing_deliveries() {
        let t = trace(
            vec![publish(0, 0, 1, vec![]), publish(1, 0, 2, vec![])],
            vec![(0, vec![(0, 0), (0, 1)]), (1, vec![(0, 0)])],
        );
        assert_eq!(
            check_complete(&t),
            vec![Violation::MissingDelivery { node: 1, index: 1 }]
        );
    }
}
