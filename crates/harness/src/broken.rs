//! Deliberately defective protocols.
//!
//! An oracle that never fires is worse than none: these protocols exist so
//! tests can demonstrate that the invariant checks actually catch the
//! defect class they claim to (and that the shrinker reduces the failing
//! schedule to something readable).

use std::collections::HashSet;

use serde::{Deserialize, Serialize};

use psc_codec::WireBytes;
use psc_dace::DaceConfig;
use psc_simnet::NodeId;

use psc_group::{GroupIo, Multicast};

/// A deployment with a deliberately broken snapshot-capture discipline:
/// the Lai–Yang rule ("capture *before* processing a message tagged with
/// a newer wave") is disabled, so a node captures only when the marker
/// itself arrives — the classic Chandy–Lamport misuse over non-FIFO
/// links. Wave-tagged data frames that outrace their marker are processed
/// into the pre-cut state, and the snapshot oracles must see the result:
/// a cut-inconsistent clock pair and/or a ghost delivery (`seq >` the
/// origin's captured `next_seq`).
#[derive(Debug, Default)]
pub struct SkewedMarkers;

impl SkewedMarkers {
    /// The DACE configuration with the capture-before-processing rule
    /// turned off; pass to
    /// [`snapshot::run_snapshot_config`](crate::snapshot::run_snapshot_config).
    pub fn config() -> DaceConfig {
        DaceConfig { snapshot_skew: true, ..DaceConfig::default() }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
struct BrokenId {
    origin: u64,
    seq: u64,
}

#[derive(Debug, Serialize, Deserialize)]
struct BrokenData {
    id: BrokenId,
    payload: WireBytes,
}

/// A "FIFO" broadcast with the sequence check disabled: it numbers and
/// relays messages exactly like [`psc_group::Fifo`] but delivers in
/// arrival order, without the hold-back queue. Under latency jitter this
/// reorders per-publisher messages — the defect the FIFO oracle must
/// catch.
#[derive(Debug, Default)]
pub struct BrokenFifo {
    next_seq: u64,
    seen: HashSet<BrokenId>,
}

impl BrokenFifo {
    /// Creates a broken-FIFO instance.
    pub fn new() -> Self {
        BrokenFifo::default()
    }

    fn relay(&self, io: &mut dyn GroupIo, data: &BrokenData) {
        let me = io.self_id();
        let bytes = psc_codec::to_wire_bytes(data).expect("broken-fifo message encodes");
        for member in io.members().to_vec() {
            if member != me {
                io.send(member, bytes.clone());
            }
        }
    }
}

impl Multicast for BrokenFifo {
    fn broadcast(&mut self, io: &mut dyn GroupIo, payload: WireBytes) {
        let me = io.self_id();
        self.next_seq += 1;
        let data = BrokenData {
            id: BrokenId { origin: me.0, seq: self.next_seq },
            payload: payload.clone(),
        };
        self.seen.insert(data.id);
        self.relay(io, &data);
        if io.members().contains(&me) {
            io.deliver(me, payload);
        }
    }

    fn on_message(&mut self, io: &mut dyn GroupIo, _from: NodeId, bytes: &[u8]) {
        let Ok(data) = psc_codec::from_bytes::<BrokenData>(bytes) else {
            return;
        };
        if !self.seen.insert(data.id) {
            return;
        }
        self.relay(io, &data);
        // The defect: immediate delivery, no per-origin sequencing.
        io.deliver(NodeId(data.id.origin), data.payload);
    }

    fn proto_name(&self) -> &'static str {
        "broken-fifo"
    }

    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }
}

/// A broadcast that relays but **never delivers** foreign messages: every
/// remote publication is parked in an internal buffer forever. The
/// completeness oracle sees the missing deliveries; the *point* of this
/// defect is the stall watchdog — `stalling.buffer` is non-empty and
/// non-draining sweep after sweep, so the run's health findings name the
/// stuck queue and the flight-recorder post-mortem shows the obvents that
/// went in and never came out.
#[derive(Debug, Default)]
pub struct Stalling {
    next_seq: u64,
    seen: HashSet<BrokenId>,
    buffer: Vec<BrokenData>,
}

impl Stalling {
    /// Creates a stalling instance.
    pub fn new() -> Self {
        Stalling::default()
    }

    fn relay(&self, io: &mut dyn GroupIo, data: &BrokenData) {
        let me = io.self_id();
        let bytes = psc_codec::to_wire_bytes(data).expect("stalling message encodes");
        for member in io.members().to_vec() {
            if member != me {
                io.send(member, bytes.clone());
            }
        }
    }
}

impl Multicast for Stalling {
    fn broadcast(&mut self, io: &mut dyn GroupIo, payload: WireBytes) {
        let me = io.self_id();
        self.next_seq += 1;
        let data = BrokenData {
            id: BrokenId { origin: me.0, seq: self.next_seq },
            payload: payload.clone(),
        };
        self.seen.insert(data.id);
        self.relay(io, &data);
        if io.members().contains(&me) {
            io.deliver(me, payload);
        }
    }

    fn on_message(&mut self, io: &mut dyn GroupIo, _from: NodeId, bytes: &[u8]) {
        let Ok(data) = psc_codec::from_bytes::<BrokenData>(bytes) else {
            return;
        };
        if !self.seen.insert(data.id) {
            return;
        }
        self.relay(io, &data);
        // The defect: park forever instead of delivering.
        self.buffer.push(data);
    }

    fn proto_name(&self) -> &'static str {
        "stalling"
    }

    fn queue_depths(&self) -> Vec<(&'static str, u64)> {
        vec![("stalling.buffer", self.buffer.len() as u64)]
    }

    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }
}
