//! Full-stack fuzzing: random subscription sets against random subtype
//! publications through real DACE domains.
//!
//! Where [`runner`](crate::runner) exercises the group protocols below the
//! dissemination layer, this module drives the complete pipeline — obvent
//! classes with a subtype hierarchy, typed adapters, kind registry,
//! per-class multicast channels, remote content filters — and checks the
//! **routing oracle**: a subscriber to kind `K` with filter `f` receives
//! exactly the publications whose class is a subtype of `K` and whose
//! content passes `f`, each exactly once.

use std::sync::{Arc, Mutex};

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use psc_dace::{DaceConfig, DaceNode};
use psc_filter::{rfilter, Value};
use psc_obvent::builtin::Reliable;
use psc_obvent::declare_obvent_model;
use psc_simnet::{Duration, NodeId, SimConfig, SimNet, SimTime};
use psc_telemetry::{
    record_tracer_spans, FlightRecorder, HealthConfig, HealthMonitor, Registry, Tracer,
    DEFAULT_FLIGHT_CAPACITY,
};
use pubsub_core::{FilterSpec, Subscription};

declare_obvent_model! {
    /// Root of the fuzz hierarchy; every publication carries a unique tag
    /// plus a filterable value.
    pub class FuzzBase implements [Reliable] { tag: u64, value: i64 }
}
declare_obvent_model! {
    /// Middle of the main chain.
    pub class FuzzMid extends FuzzBase {}
}
declare_obvent_model! {
    /// Leaf of the main chain.
    pub class FuzzLeaf extends FuzzMid {}
}
declare_obvent_model! {
    /// A sibling branch: visible to `FuzzBase` subscribers only.
    pub class FuzzSide extends FuzzBase {}
}

/// Which class of the hierarchy a subscription or publication names.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Level {
    /// `FuzzBase` — the root, sees everything.
    Base,
    /// `FuzzMid` — sees itself and `FuzzLeaf`.
    Mid,
    /// `FuzzLeaf` — sees only itself.
    Leaf,
    /// `FuzzSide` — the sibling branch.
    Side,
}

impl Level {
    const ALL: [Level; 4] = [Level::Base, Level::Mid, Level::Leaf, Level::Side];

    fn name(self) -> &'static str {
        match self {
            Level::Base => "Base",
            Level::Mid => "Mid",
            Level::Leaf => "Leaf",
            Level::Side => "Side",
        }
    }

    /// Subtype routing: does a subscription at `self` receive a
    /// publication of class `published`?
    pub fn receives(self, published: Level) -> bool {
        match self {
            Level::Base => true,
            Level::Mid => matches!(published, Level::Mid | Level::Leaf),
            Level::Leaf => published == Level::Leaf,
            Level::Side => published == Level::Side,
        }
    }
}

/// Content filter attached to a subscription (a small menu of reified
/// remote filters — the paper's migratable filter objects).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FilterKind {
    /// Accept everything.
    None,
    /// `value < 0`.
    Negative,
    /// `value > 50`.
    Large,
}

impl FilterKind {
    fn name(self) -> &'static str {
        match self {
            FilterKind::None => "none",
            FilterKind::Negative => "value<0",
            FilterKind::Large => "value>50",
        }
    }

    /// Reference semantics the routing oracle expects.
    pub fn passes(self, value: i64) -> bool {
        match self {
            FilterKind::None => true,
            FilterKind::Negative => value < 0,
            FilterKind::Large => value > 50,
        }
    }

    /// The reified filter a subscription installs for this kind (public
    /// so transport-level replays can install identical subscriptions).
    pub fn spec<O>(self) -> FilterSpec<O> {
        match self {
            FilterKind::None => FilterSpec::accept_all(),
            FilterKind::Negative => FilterSpec::remote(rfilter!(value < 0)),
            FilterKind::Large => FilterSpec::remote(rfilter!(value > 50)),
        }
    }
}

/// One subscription of a stack scenario.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SubPlan {
    /// Hosting node.
    pub node: usize,
    /// Subscribed kind.
    pub level: Level,
    /// Content filter.
    pub filter: FilterKind,
}

/// One publication of a stack scenario.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PubPlan {
    /// Publishing node.
    pub node: usize,
    /// Concrete class published.
    pub level: Level,
    /// Filterable content.
    pub value: i64,
    /// Unique tag (the publish index).
    pub tag: u64,
}

/// A seed-derived full-stack scenario.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StackScenario {
    /// Generating seed (also seeds the network).
    pub seed: u64,
    /// Cluster size.
    pub nodes: usize,
    /// Subscription set.
    pub subs: Vec<SubPlan>,
    /// Publication workload.
    pub pubs: Vec<PubPlan>,
}

impl StackScenario {
    /// Samples a stack scenario from `seed`. The network is kept lossless
    /// so the routing oracle can assert the exact delivery sets; loss and
    /// fault tolerance are the group-layer fuzzer's department.
    pub fn generate(seed: u64) -> StackScenario {
        let mut rng = StdRng::seed_from_u64(seed ^ 0x57ac_f022_d5ee_d002);
        let nodes = rng.gen_range(2..=4usize);
        let subs = (0..rng.gen_range(1..=4usize))
            .map(|_| SubPlan {
                node: rng.gen_range(0..nodes),
                level: Level::ALL[rng.gen_range(0..Level::ALL.len())],
                filter: match rng.gen_range(0..4u32) {
                    0 | 1 => FilterKind::None,
                    2 => FilterKind::Negative,
                    _ => FilterKind::Large,
                },
            })
            .collect();
        let pubs = (0..rng.gen_range(2..=8usize))
            .map(|tag| PubPlan {
                node: rng.gen_range(0..nodes),
                level: Level::ALL[rng.gen_range(0..Level::ALL.len())],
                value: rng.gen_range(-100..=100i64),
                tag: tag as u64,
            })
            .collect();
        StackScenario { seed, nodes, subs, pubs }
    }

    /// Deterministic description used in reports.
    pub fn describe(&self) -> String {
        let mut out = format!("stack scenario seed={} nodes={}\n", self.seed, self.nodes);
        for (i, s) in self.subs.iter().enumerate() {
            out.push_str(&format!(
                "  sub#{i} node={} kind={} filter={}\n",
                s.node,
                s.level.name(),
                s.filter.name()
            ));
        }
        for p in &self.pubs {
            out.push_str(&format!(
                "  pub#{} node={} class={} value={}\n",
                p.tag,
                p.node,
                p.level.name(),
                p.value
            ));
        }
        out
    }

    /// The tags each subscription must receive, per the routing oracle.
    pub fn expected(&self) -> Vec<Vec<u64>> {
        self.subs
            .iter()
            .map(|s| {
                self.pubs
                    .iter()
                    .filter(|p| s.level.receives(p.level) && s.filter.passes(p.value))
                    .map(|p| p.tag)
                    .collect()
            })
            .collect()
    }
}

/// What a stack run observed.
#[derive(Debug, Clone)]
pub struct StackOutcome {
    /// Tags each subscription should have received (sorted).
    pub expected: Vec<Vec<u64>>,
    /// Tags each subscription did receive (sorted).
    pub got: Vec<Vec<u64>>,
    /// Routing-oracle findings, empty on a healthy run.
    pub violations: Vec<String>,
    /// Number of obvent spans derived from the run's trace stream.
    pub spans: usize,
    /// End-to-end latency samples across those spans (one per delivery).
    pub e2e_samples: usize,
}

impl StackOutcome {
    /// Canonical rendering (the determinism check compares these — span
    /// derivation included, so a non-reproducible span breaks the seed).
    pub fn render(&self) -> String {
        let mut out = String::new();
        for (i, (got, expected)) in self.got.iter().zip(&self.expected).enumerate() {
            out.push_str(&format!("  sub#{i} got={got:?} expected={expected:?}\n"));
        }
        out.push_str(&format!(
            "  spans={} e2e_samples={}\n",
            self.spans, self.e2e_samples
        ));
        out
    }
}

type Sink = Arc<Mutex<Vec<u64>>>;

fn install(sim: &mut SimNet, node: NodeId, level: Level, filter: FilterKind) -> Sink {
    let sink: Sink = Arc::new(Mutex::new(Vec::new()));
    let recorder = Arc::clone(&sink);
    DaceNode::drive(sim, node, move |domain| {
        let sub = match level {
            Level::Base => domain.subscribe(filter.spec(), move |e: FuzzBase| {
                recorder.lock().unwrap().push(*e.tag());
            }),
            Level::Mid => domain.subscribe(filter.spec(), move |e: FuzzMid| {
                recorder.lock().unwrap().push(*e.tag());
            }),
            Level::Leaf => domain.subscribe(filter.spec(), move |e: FuzzLeaf| {
                recorder.lock().unwrap().push(*e.tag());
            }),
            Level::Side => domain.subscribe(filter.spec(), move |e: FuzzSide| {
                recorder.lock().unwrap().push(*e.tag());
            }),
        };
        sub.activate().unwrap();
        sub.detach();
    });
    sink
}

fn publish(sim: &mut SimNet, node: NodeId, plan: &PubPlan) {
    let base = FuzzBase::new(plan.tag, plan.value);
    match plan.level {
        Level::Base => DaceNode::publish_from(sim, node, base),
        Level::Mid => DaceNode::publish_from(sim, node, FuzzMid::new(base)),
        Level::Leaf => DaceNode::publish_from(sim, node, FuzzLeaf::new(FuzzMid::new(base))),
        Level::Side => DaceNode::publish_from(sim, node, FuzzSide::new(base)),
    }
}

/// Executes a stack scenario and applies the routing oracle.
pub fn run_stack(scenario: &StackScenario) -> StackOutcome {
    run_stack_sharded(scenario, 1)
}

/// [`run_stack`] with the broker hot path split over `shards` worker
/// threads. `shards == 1` is the inline engine (identical to `run_stack`);
/// any other value exercises the deterministic (shard, sequence) effect
/// merge — the outcome must not depend on the shard count.
pub fn run_stack_sharded(scenario: &StackScenario, shards: usize) -> StackOutcome {
    // Advertise the whole hierarchy before any subscription is installed.
    let _ = (FuzzBase::kind(), FuzzMid::kind(), FuzzLeaf::kind(), FuzzSide::kind());

    let mut sim = SimNet::new(SimConfig::with_seed(scenario.seed));
    let ids: Vec<NodeId> = (0..scenario.nodes as u64).map(NodeId).collect();
    // Full observability wiring: a cluster-wide tracer feeding span
    // derivation, plus a per-node registry / flight recorder / health
    // monitor with the stall watchdog on — the stack fuzzer doubles as the
    // determinism check for the whole diagnosis layer.
    let tracer = Arc::new(Tracer::default());
    let config = DaceConfig {
        watchdog: Some(Duration::from_millis(50)),
        shards,
        ..DaceConfig::default()
    };
    for i in 0..scenario.nodes {
        let registry = Arc::new(Registry::new());
        let recorder = Arc::new(FlightRecorder::new(format!("n{i}"), DEFAULT_FLIGHT_CAPACITY));
        let monitor = Arc::new(HealthMonitor::new(
            registry.as_ref().clone(),
            Some(Arc::clone(&recorder)),
            HealthConfig::default(),
        ));
        sim.add_node(
            format!("s{i}"),
            DaceNode::factory_observable(
                ids.clone(),
                config.clone(),
                registry,
                Arc::clone(&tracer),
                Some(recorder),
                Some(monitor),
            ),
        );
    }
    let sinks: Vec<Sink> = scenario
        .subs
        .iter()
        .map(|s| install(&mut sim, ids[s.node], s.level, s.filter))
        .collect();
    sim.run_until(SimTime::from_millis(30));

    let mut at = 50;
    for plan in &scenario.pubs {
        sim.run_until(SimTime::from_millis(at));
        publish(&mut sim, ids[plan.node], plan);
        at += 40;
    }
    sim.run_until(SimTime::from_millis(at + 800));

    let mut expected = scenario.expected();
    for tags in &mut expected {
        tags.sort_unstable();
    }
    let got: Vec<Vec<u64>> = sinks
        .iter()
        .map(|sink| {
            let mut tags = sink.lock().unwrap().clone();
            tags.sort_unstable();
            tags
        })
        .collect();

    let mut violations = Vec::new();
    for (i, (g, e)) in got.iter().zip(&expected).enumerate() {
        if g != e {
            let s = &scenario.subs[i];
            violations.push(format!(
                "sub#{i} (node {}, kind {}, filter {}): got {g:?}, expected {e:?}",
                s.node,
                s.level.name(),
                s.filter.name()
            ));
        }
    }

    // Fold the trace stream into latency spans; a scratch registry absorbs
    // the histograms (per-run, the counts are what the determinism check
    // renders).
    let span_registry = Registry::new();
    let spans = record_tracer_spans(&tracer, &span_registry);
    let e2e_samples = spans.iter().map(|s| s.e2e.len()).sum();

    StackOutcome {
        expected,
        got,
        violations,
        spans: spans.len(),
        e2e_samples,
    }
}

/// Determinism + routing oracle for one stack seed; `Err` carries a full
/// replayable report.
pub fn check_stack_seed(seed: u64) -> Result<(), String> {
    check_stack_seed_sharded(seed, 1)
}

/// [`check_stack_seed`] at an explicit shard count: two identical sharded
/// runs must render byte-for-byte equal (thread scheduling must not leak
/// into the outcome) and the routing oracle must hold.
pub fn check_stack_seed_sharded(seed: u64, shards: usize) -> Result<(), String> {
    let scenario = StackScenario::generate(seed);
    let first = run_stack_sharded(&scenario, shards);
    let second = run_stack_sharded(&scenario, shards);
    if first.render() != second.render() {
        return Err(format!(
            "stack seed {seed} (shards={shards}): NONDETERMINISM across identical runs\n{}{}",
            scenario.describe(),
            first.render()
        ));
    }
    if first.violations.is_empty() {
        return Ok(());
    }
    Err(format!(
        "stack seed {seed} (shards={shards}): {} routing violation(s)\n\
         replay with: HARNESS_SEED={seed} cargo test --test harness_smoke\n{}{}{}",
        first.violations.len(),
        scenario.describe(),
        first.render(),
        first
            .violations
            .iter()
            .map(|v| format!("  {v}\n"))
            .collect::<String>(),
    ))
}

// ---- churn storms ------------------------------------------------------

/// One transient subscription of a churn storm. It is created (inactive)
/// at start-up, activated shortly before publish window `join_before`, and
/// deactivated shortly before window `leave_before` — so the broker-side
/// filter index is churned by insert/remove bursts *while* publications are
/// matched through it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChurnPlan {
    /// Hosting node.
    pub node: usize,
    /// Subscribed kind.
    pub level: Level,
    /// Content filter.
    pub filter: FilterKind,
    /// Publish window before which the subscription activates.
    pub join_before: usize,
    /// Publish window before which it deactivates (`pubs.len()` means it
    /// stays active through the settle phase).
    pub leave_before: usize,
}

/// A stack scenario plus a seed-derived churn storm over it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChurnScenario {
    /// The stable part: long-lived subscriptions and the publish workload
    /// (identical to [`StackScenario::generate`] for the same seed, so the
    /// exact routing oracle still applies to it).
    pub stack: StackScenario,
    /// The transient subscriptions flapping across publish windows.
    pub churn: Vec<ChurnPlan>,
}

impl ChurnScenario {
    /// Samples a churn storm from `seed`: the stable scenario from the same
    /// seed, plus 3–8 transient subscriptions with random activity windows.
    pub fn generate(seed: u64) -> ChurnScenario {
        let stack = StackScenario::generate(seed);
        // A distinct stream keeps the stable part byte-identical to the
        // plain stack scenario of the same seed.
        let mut rng = StdRng::seed_from_u64(seed ^ 0xc42a_0157_0217_ed11);
        let windows = stack.pubs.len();
        let churn = (0..rng.gen_range(3..=8usize))
            .map(|_| {
                let join_before = rng.gen_range(0..windows);
                ChurnPlan {
                    node: rng.gen_range(0..stack.nodes),
                    level: Level::ALL[rng.gen_range(0..Level::ALL.len())],
                    filter: match rng.gen_range(0..4u32) {
                        0 | 1 => FilterKind::None,
                        2 => FilterKind::Negative,
                        _ => FilterKind::Large,
                    },
                    join_before,
                    leave_before: rng.gen_range(join_before..=windows),
                }
            })
            .collect();
        ChurnScenario { stack, churn }
    }

    /// Deterministic description used in reports.
    pub fn describe(&self) -> String {
        let mut out = self.stack.describe();
        for (i, c) in self.churn.iter().enumerate() {
            out.push_str(&format!(
                "  churn#{i} node={} kind={} filter={} join_before={} leave_before={}\n",
                c.node,
                c.level.name(),
                c.filter.name(),
                c.join_before,
                c.leave_before
            ));
        }
        out
    }
}

/// What a churn-storm run observed.
#[derive(Debug, Clone)]
pub struct ChurnOutcome {
    /// The stable subscriptions' outcome (exact routing oracle).
    pub stable: StackOutcome,
    /// Tags each churn subscription received (sorted).
    pub churn_got: Vec<Vec<u64>>,
    /// Churn-integrity and filter-oracle findings, empty on a healthy run.
    pub violations: Vec<String>,
    /// Filter-oracle probes executed mid-storm.
    pub oracle_probes: usize,
}

impl ChurnOutcome {
    /// Canonical rendering (the determinism check compares these).
    pub fn render(&self) -> String {
        let mut out = self.stable.render();
        for (i, got) in self.churn_got.iter().enumerate() {
            out.push_str(&format!("  churn#{i} got={got:?}\n"));
        }
        out.push_str(&format!("  oracle_probes={}\n", self.oracle_probes));
        out
    }
}

/// Shared slot for a subscription handle that is activated/deactivated
/// from later simulation callbacks.
type SubSlot = Arc<Mutex<Option<Subscription>>>;

fn install_inactive(sim: &mut SimNet, node: NodeId, level: Level, filter: FilterKind) -> (Sink, SubSlot) {
    let sink: Sink = Arc::new(Mutex::new(Vec::new()));
    let slot: SubSlot = Arc::new(Mutex::new(None));
    let recorder = Arc::clone(&sink);
    let stash = Arc::clone(&slot);
    DaceNode::drive(sim, node, move |domain| {
        let sub = match level {
            Level::Base => domain.subscribe(filter.spec(), move |e: FuzzBase| {
                recorder.lock().unwrap().push(*e.tag());
            }),
            Level::Mid => domain.subscribe(filter.spec(), move |e: FuzzMid| {
                recorder.lock().unwrap().push(*e.tag());
            }),
            Level::Leaf => domain.subscribe(filter.spec(), move |e: FuzzLeaf| {
                recorder.lock().unwrap().push(*e.tag());
            }),
            Level::Side => domain.subscribe(filter.spec(), move |e: FuzzSide| {
                recorder.lock().unwrap().push(*e.tag());
            }),
        };
        *stash.lock().unwrap() = Some(sub);
    });
    (sink, slot)
}

fn flip_sub(sim: &mut SimNet, node: NodeId, slot: &SubSlot, activate: bool) {
    let slot = Arc::clone(slot);
    DaceNode::drive(sim, node, move |_domain| {
        let guard = slot.lock().unwrap();
        let sub = guard.as_ref().expect("churn subscription installed");
        if activate {
            sub.activate().expect("churn activation");
        } else {
            sub.deactivate().expect("churn deactivation");
        }
    });
}

/// Probes the sampled `FilterOracle` on every node: each channel's index
/// must pass its structural audit and agree with `naive_matching` on the
/// probe. Returns the number of probes run; findings go into `violations`.
fn sample_filter_oracle(
    sim: &mut SimNet,
    ids: &[NodeId],
    probes: &[Value],
    when: &str,
    violations: &mut Vec<String>,
) -> usize {
    let mut ran = 0;
    for &id in ids {
        for probe in probes {
            ran += 1;
            for finding in DaceNode::filter_oracle_of(sim, id, probe) {
                violations.push(format!("filter oracle ({when}, node n{}): {finding}", id.0));
            }
        }
    }
    ran
}

/// Executes a churn-storm scenario: the stable stack workload with
/// transient subscriptions flapping between publish windows, the sampled
/// indexed-vs-naive `FilterOracle` running mid-storm, an exact routing
/// oracle on the stable subscriptions and an integrity oracle on the
/// transient ones.
pub fn run_churn(scenario: &ChurnScenario) -> ChurnOutcome {
    let stack = &scenario.stack;
    let _ = (FuzzBase::kind(), FuzzMid::kind(), FuzzLeaf::kind(), FuzzSide::kind());

    let mut sim = SimNet::new(SimConfig::with_seed(stack.seed));
    let ids: Vec<NodeId> = (0..stack.nodes as u64).map(NodeId).collect();
    let config = DaceConfig {
        watchdog: Some(Duration::from_millis(50)),
        ..DaceConfig::default()
    };
    for i in 0..stack.nodes {
        sim.add_node(format!("c{i}"), DaceNode::factory(ids.clone(), config.clone()));
    }
    let sinks: Vec<Sink> = stack
        .subs
        .iter()
        .map(|s| install(&mut sim, ids[s.node], s.level, s.filter))
        .collect();
    let churn_slots: Vec<(Sink, SubSlot)> = scenario
        .churn
        .iter()
        .map(|c| install_inactive(&mut sim, ids[c.node], c.level, c.filter))
        .collect();
    sim.run_until(SimTime::from_millis(30));

    let mut violations = Vec::new();
    let mut oracle_probes = 0;
    let mut at = 50;
    for (window, plan) in stack.pubs.iter().enumerate() {
        // Churn burst: flips happen 20 ms before the window's publish, so
        // (de)activation announcements race real traffic but local handler
        // state is settled before the next publication is even made.
        sim.run_until(SimTime::from_millis(at - 20));
        for (c, (_, slot)) in scenario.churn.iter().zip(&churn_slots) {
            if c.join_before == window {
                flip_sub(&mut sim, ids[c.node], slot, true);
            }
            if c.leave_before == window {
                flip_sub(&mut sim, ids[c.node], slot, false);
            }
        }
        sim.run_until(SimTime::from_millis(at));
        publish(&mut sim, ids[plan.node], plan);
        // Mid-storm filter oracle: one typical probe mirroring the window's
        // publication, plus edge probes (NaN content, missing fields)
        // exercising the index's residual and fallback paths.
        let probes = [
            Value::record([
                ("tag", Value::UInt(plan.tag)),
                ("value", Value::Int(plan.value)),
            ]),
            Value::record([
                ("tag", Value::UInt(plan.tag)),
                ("value", Value::Float(f64::NAN)),
            ]),
            Value::record([("unrelated", Value::Int(plan.value))]),
        ];
        oracle_probes += sample_filter_oracle(
            &mut sim,
            &ids,
            &probes,
            &format!("window {window}"),
            &mut violations,
        );
        at += 40;
    }
    sim.run_until(SimTime::from_millis(at + 800));
    oracle_probes += sample_filter_oracle(
        &mut sim,
        &ids,
        &[Value::record([("value", Value::Int(0))])],
        "settled",
        &mut violations,
    );

    let mut expected = stack.expected();
    for tags in &mut expected {
        tags.sort_unstable();
    }
    let got: Vec<Vec<u64>> = sinks
        .iter()
        .map(|sink| {
            let mut tags = sink.lock().unwrap().clone();
            tags.sort_unstable();
            tags
        })
        .collect();
    for (i, (g, e)) in got.iter().zip(&expected).enumerate() {
        if g != e {
            let s = &stack.subs[i];
            violations.push(format!(
                "stable sub#{i} (node {}, kind {}, filter {}): got {g:?}, expected {e:?}",
                s.node,
                s.level.name(),
                s.filter.name()
            ));
        }
    }

    // Churn integrity: a transient subscription may miss publications near
    // its activity boundaries (announcements race the traffic), but every
    // tag it *did* receive must be unique, must pass its kind and filter,
    // and cannot come from a window at/after its deactivation point —
    // deactivation takes local effect strictly before that window's
    // publication exists.
    let churn_got: Vec<Vec<u64>> = churn_slots
        .iter()
        .map(|(sink, _)| {
            let mut tags = sink.lock().unwrap().clone();
            tags.sort_unstable();
            tags
        })
        .collect();
    for (i, (tags, c)) in churn_got.iter().zip(&scenario.churn).enumerate() {
        for pair in tags.windows(2) {
            if pair[0] == pair[1] {
                violations.push(format!("churn#{i}: duplicate delivery of tag {}", pair[0]));
            }
        }
        for &tag in tags {
            let plan = &stack.pubs[tag as usize];
            if !c.level.receives(plan.level) {
                violations.push(format!(
                    "churn#{i} (kind {}): ghost delivery of class {} (tag {tag})",
                    c.level.name(),
                    plan.level.name()
                ));
            }
            if !c.filter.passes(plan.value) {
                violations.push(format!(
                    "churn#{i} (filter {}): delivery violating filter (tag {tag}, value {})",
                    c.filter.name(),
                    plan.value
                ));
            }
            if tag as usize >= c.leave_before {
                violations.push(format!(
                    "churn#{i}: delivery from window {tag} at/after deactivation before window {}",
                    c.leave_before
                ));
            }
        }
    }

    let stable = StackOutcome {
        expected,
        got,
        violations: Vec::new(),
        spans: 0,
        e2e_samples: 0,
    };
    ChurnOutcome {
        stable,
        churn_got,
        violations,
        oracle_probes,
    }
}

/// Determinism + routing/churn/filter oracles for one churn-storm seed;
/// `Err` carries a full replayable report.
pub fn check_churn_seed(seed: u64) -> Result<(), String> {
    let scenario = ChurnScenario::generate(seed);
    let first = run_churn(&scenario);
    let second = run_churn(&scenario);
    if first.render() != second.render() {
        return Err(format!(
            "churn seed {seed}: NONDETERMINISM across identical runs\n{}{}",
            scenario.describe(),
            first.render()
        ));
    }
    if first.violations.is_empty() {
        return Ok(());
    }
    Err(format!(
        "churn seed {seed}: {} violation(s)\n\
         replay with: HARNESS_SEED={seed} cargo test --test harness_smoke\n{}{}{}",
        first.violations.len(),
        scenario.describe(),
        first.render(),
        first
            .violations
            .iter()
            .map(|v| format!("  {v}\n"))
            .collect::<String>(),
    ))
}
