//! Full-stack fuzzing: random subscription sets against random subtype
//! publications through real DACE domains.
//!
//! Where [`runner`](crate::runner) exercises the group protocols below the
//! dissemination layer, this module drives the complete pipeline — obvent
//! classes with a subtype hierarchy, typed adapters, kind registry,
//! per-class multicast channels, remote content filters — and checks the
//! **routing oracle**: a subscriber to kind `K` with filter `f` receives
//! exactly the publications whose class is a subtype of `K` and whose
//! content passes `f`, each exactly once.

use std::sync::{Arc, Mutex};

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use psc_dace::{DaceConfig, DaceNode};
use psc_filter::rfilter;
use psc_obvent::builtin::Reliable;
use psc_obvent::declare_obvent_model;
use psc_simnet::{Duration, NodeId, SimConfig, SimNet, SimTime};
use psc_telemetry::{
    record_tracer_spans, FlightRecorder, HealthConfig, HealthMonitor, Registry, Tracer,
    DEFAULT_FLIGHT_CAPACITY,
};
use pubsub_core::FilterSpec;

declare_obvent_model! {
    /// Root of the fuzz hierarchy; every publication carries a unique tag
    /// plus a filterable value.
    pub class FuzzBase implements [Reliable] { tag: u64, value: i64 }
}
declare_obvent_model! {
    /// Middle of the main chain.
    pub class FuzzMid extends FuzzBase {}
}
declare_obvent_model! {
    /// Leaf of the main chain.
    pub class FuzzLeaf extends FuzzMid {}
}
declare_obvent_model! {
    /// A sibling branch: visible to `FuzzBase` subscribers only.
    pub class FuzzSide extends FuzzBase {}
}

/// Which class of the hierarchy a subscription or publication names.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Level {
    /// `FuzzBase` — the root, sees everything.
    Base,
    /// `FuzzMid` — sees itself and `FuzzLeaf`.
    Mid,
    /// `FuzzLeaf` — sees only itself.
    Leaf,
    /// `FuzzSide` — the sibling branch.
    Side,
}

impl Level {
    const ALL: [Level; 4] = [Level::Base, Level::Mid, Level::Leaf, Level::Side];

    fn name(self) -> &'static str {
        match self {
            Level::Base => "Base",
            Level::Mid => "Mid",
            Level::Leaf => "Leaf",
            Level::Side => "Side",
        }
    }

    /// Subtype routing: does a subscription at `self` receive a
    /// publication of class `published`?
    pub fn receives(self, published: Level) -> bool {
        match self {
            Level::Base => true,
            Level::Mid => matches!(published, Level::Mid | Level::Leaf),
            Level::Leaf => published == Level::Leaf,
            Level::Side => published == Level::Side,
        }
    }
}

/// Content filter attached to a subscription (a small menu of reified
/// remote filters — the paper's migratable filter objects).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FilterKind {
    /// Accept everything.
    None,
    /// `value < 0`.
    Negative,
    /// `value > 50`.
    Large,
}

impl FilterKind {
    fn name(self) -> &'static str {
        match self {
            FilterKind::None => "none",
            FilterKind::Negative => "value<0",
            FilterKind::Large => "value>50",
        }
    }

    /// Reference semantics the routing oracle expects.
    pub fn passes(self, value: i64) -> bool {
        match self {
            FilterKind::None => true,
            FilterKind::Negative => value < 0,
            FilterKind::Large => value > 50,
        }
    }

    fn spec<O>(self) -> FilterSpec<O> {
        match self {
            FilterKind::None => FilterSpec::accept_all(),
            FilterKind::Negative => FilterSpec::remote(rfilter!(value < 0)),
            FilterKind::Large => FilterSpec::remote(rfilter!(value > 50)),
        }
    }
}

/// One subscription of a stack scenario.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SubPlan {
    /// Hosting node.
    pub node: usize,
    /// Subscribed kind.
    pub level: Level,
    /// Content filter.
    pub filter: FilterKind,
}

/// One publication of a stack scenario.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PubPlan {
    /// Publishing node.
    pub node: usize,
    /// Concrete class published.
    pub level: Level,
    /// Filterable content.
    pub value: i64,
    /// Unique tag (the publish index).
    pub tag: u64,
}

/// A seed-derived full-stack scenario.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StackScenario {
    /// Generating seed (also seeds the network).
    pub seed: u64,
    /// Cluster size.
    pub nodes: usize,
    /// Subscription set.
    pub subs: Vec<SubPlan>,
    /// Publication workload.
    pub pubs: Vec<PubPlan>,
}

impl StackScenario {
    /// Samples a stack scenario from `seed`. The network is kept lossless
    /// so the routing oracle can assert the exact delivery sets; loss and
    /// fault tolerance are the group-layer fuzzer's department.
    pub fn generate(seed: u64) -> StackScenario {
        let mut rng = StdRng::seed_from_u64(seed ^ 0x57ac_f022_d5ee_d002);
        let nodes = rng.gen_range(2..=4usize);
        let subs = (0..rng.gen_range(1..=4usize))
            .map(|_| SubPlan {
                node: rng.gen_range(0..nodes),
                level: Level::ALL[rng.gen_range(0..Level::ALL.len())],
                filter: match rng.gen_range(0..4u32) {
                    0 | 1 => FilterKind::None,
                    2 => FilterKind::Negative,
                    _ => FilterKind::Large,
                },
            })
            .collect();
        let pubs = (0..rng.gen_range(2..=8usize))
            .map(|tag| PubPlan {
                node: rng.gen_range(0..nodes),
                level: Level::ALL[rng.gen_range(0..Level::ALL.len())],
                value: rng.gen_range(-100..=100i64),
                tag: tag as u64,
            })
            .collect();
        StackScenario { seed, nodes, subs, pubs }
    }

    /// Deterministic description used in reports.
    pub fn describe(&self) -> String {
        let mut out = format!("stack scenario seed={} nodes={}\n", self.seed, self.nodes);
        for (i, s) in self.subs.iter().enumerate() {
            out.push_str(&format!(
                "  sub#{i} node={} kind={} filter={}\n",
                s.node,
                s.level.name(),
                s.filter.name()
            ));
        }
        for p in &self.pubs {
            out.push_str(&format!(
                "  pub#{} node={} class={} value={}\n",
                p.tag,
                p.node,
                p.level.name(),
                p.value
            ));
        }
        out
    }

    /// The tags each subscription must receive, per the routing oracle.
    pub fn expected(&self) -> Vec<Vec<u64>> {
        self.subs
            .iter()
            .map(|s| {
                self.pubs
                    .iter()
                    .filter(|p| s.level.receives(p.level) && s.filter.passes(p.value))
                    .map(|p| p.tag)
                    .collect()
            })
            .collect()
    }
}

/// What a stack run observed.
#[derive(Debug, Clone)]
pub struct StackOutcome {
    /// Tags each subscription should have received (sorted).
    pub expected: Vec<Vec<u64>>,
    /// Tags each subscription did receive (sorted).
    pub got: Vec<Vec<u64>>,
    /// Routing-oracle findings, empty on a healthy run.
    pub violations: Vec<String>,
    /// Number of obvent spans derived from the run's trace stream.
    pub spans: usize,
    /// End-to-end latency samples across those spans (one per delivery).
    pub e2e_samples: usize,
}

impl StackOutcome {
    /// Canonical rendering (the determinism check compares these — span
    /// derivation included, so a non-reproducible span breaks the seed).
    pub fn render(&self) -> String {
        let mut out = String::new();
        for (i, (got, expected)) in self.got.iter().zip(&self.expected).enumerate() {
            out.push_str(&format!("  sub#{i} got={got:?} expected={expected:?}\n"));
        }
        out.push_str(&format!(
            "  spans={} e2e_samples={}\n",
            self.spans, self.e2e_samples
        ));
        out
    }
}

type Sink = Arc<Mutex<Vec<u64>>>;

fn install(sim: &mut SimNet, node: NodeId, level: Level, filter: FilterKind) -> Sink {
    let sink: Sink = Arc::new(Mutex::new(Vec::new()));
    let recorder = Arc::clone(&sink);
    DaceNode::drive(sim, node, move |domain| {
        let sub = match level {
            Level::Base => domain.subscribe(filter.spec(), move |e: FuzzBase| {
                recorder.lock().unwrap().push(*e.tag());
            }),
            Level::Mid => domain.subscribe(filter.spec(), move |e: FuzzMid| {
                recorder.lock().unwrap().push(*e.tag());
            }),
            Level::Leaf => domain.subscribe(filter.spec(), move |e: FuzzLeaf| {
                recorder.lock().unwrap().push(*e.tag());
            }),
            Level::Side => domain.subscribe(filter.spec(), move |e: FuzzSide| {
                recorder.lock().unwrap().push(*e.tag());
            }),
        };
        sub.activate().unwrap();
        sub.detach();
    });
    sink
}

fn publish(sim: &mut SimNet, node: NodeId, plan: &PubPlan) {
    let base = FuzzBase::new(plan.tag, plan.value);
    match plan.level {
        Level::Base => DaceNode::publish_from(sim, node, base),
        Level::Mid => DaceNode::publish_from(sim, node, FuzzMid::new(base)),
        Level::Leaf => DaceNode::publish_from(sim, node, FuzzLeaf::new(FuzzMid::new(base))),
        Level::Side => DaceNode::publish_from(sim, node, FuzzSide::new(base)),
    }
}

/// Executes a stack scenario and applies the routing oracle.
pub fn run_stack(scenario: &StackScenario) -> StackOutcome {
    // Advertise the whole hierarchy before any subscription is installed.
    let _ = (FuzzBase::kind(), FuzzMid::kind(), FuzzLeaf::kind(), FuzzSide::kind());

    let mut sim = SimNet::new(SimConfig::with_seed(scenario.seed));
    let ids: Vec<NodeId> = (0..scenario.nodes as u64).map(NodeId).collect();
    // Full observability wiring: a cluster-wide tracer feeding span
    // derivation, plus a per-node registry / flight recorder / health
    // monitor with the stall watchdog on — the stack fuzzer doubles as the
    // determinism check for the whole diagnosis layer.
    let tracer = Arc::new(Tracer::default());
    let config = DaceConfig {
        watchdog: Some(Duration::from_millis(50)),
        ..DaceConfig::default()
    };
    for i in 0..scenario.nodes {
        let registry = Arc::new(Registry::new());
        let recorder = Arc::new(FlightRecorder::new(format!("n{i}"), DEFAULT_FLIGHT_CAPACITY));
        let monitor = Arc::new(HealthMonitor::new(
            registry.as_ref().clone(),
            Some(Arc::clone(&recorder)),
            HealthConfig::default(),
        ));
        sim.add_node(
            format!("s{i}"),
            DaceNode::factory_observable(
                ids.clone(),
                config.clone(),
                registry,
                Arc::clone(&tracer),
                Some(recorder),
                Some(monitor),
            ),
        );
    }
    let sinks: Vec<Sink> = scenario
        .subs
        .iter()
        .map(|s| install(&mut sim, ids[s.node], s.level, s.filter))
        .collect();
    sim.run_until(SimTime::from_millis(30));

    let mut at = 50;
    for plan in &scenario.pubs {
        sim.run_until(SimTime::from_millis(at));
        publish(&mut sim, ids[plan.node], plan);
        at += 40;
    }
    sim.run_until(SimTime::from_millis(at + 800));

    let mut expected = scenario.expected();
    for tags in &mut expected {
        tags.sort_unstable();
    }
    let got: Vec<Vec<u64>> = sinks
        .iter()
        .map(|sink| {
            let mut tags = sink.lock().unwrap().clone();
            tags.sort_unstable();
            tags
        })
        .collect();

    let mut violations = Vec::new();
    for (i, (g, e)) in got.iter().zip(&expected).enumerate() {
        if g != e {
            let s = &scenario.subs[i];
            violations.push(format!(
                "sub#{i} (node {}, kind {}, filter {}): got {g:?}, expected {e:?}",
                s.node,
                s.level.name(),
                s.filter.name()
            ));
        }
    }

    // Fold the trace stream into latency spans; a scratch registry absorbs
    // the histograms (per-run, the counts are what the determinism check
    // renders).
    let span_registry = Registry::new();
    let spans = record_tracer_spans(&tracer, &span_registry);
    let e2e_samples = spans.iter().map(|s| s.e2e.len()).sum();

    StackOutcome {
        expected,
        got,
        violations,
        spans: spans.len(),
        e2e_samples,
    }
}

/// Determinism + routing oracle for one stack seed; `Err` carries a full
/// replayable report.
pub fn check_stack_seed(seed: u64) -> Result<(), String> {
    let scenario = StackScenario::generate(seed);
    let first = run_stack(&scenario);
    let second = run_stack(&scenario);
    if first.render() != second.render() {
        return Err(format!(
            "stack seed {seed}: NONDETERMINISM across identical runs\n{}{}",
            scenario.describe(),
            first.render()
        ));
    }
    if first.violations.is_empty() {
        return Ok(());
    }
    Err(format!(
        "stack seed {seed}: {} routing violation(s)\n\
         replay with: HARNESS_SEED={seed} cargo test --test harness_smoke\n{}{}{}",
        first.violations.len(),
        scenario.describe(),
        first.render(),
        first
            .violations
            .iter()
            .map(|v| format!("  {v}\n"))
            .collect::<String>(),
    ))
}
