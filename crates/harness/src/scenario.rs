//! Seed-derived scenario model.
//!
//! A [`Scenario`] is plain data: the protocol under test, the cluster
//! shape, the network conditions and an explicit list of timed operations.
//! Everything is sampled from a single `u64` seed, so a failing run is
//! reproduced by its seed alone — and because the operations are explicit
//! values (not re-derived from the RNG at execution time), the shrinker in
//! [`runner`](crate::runner) can delete them one by one while keeping the
//! rest of the schedule byte-identical.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use psc_group::{Causal, Certified, Fifo, Multicast, Reliable, Total};

/// The group-communication protocol a scenario exercises.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProtocolKind {
    /// Eager re-forwarding reliable broadcast.
    Reliable,
    /// Per-publisher FIFO order on top of reliable.
    Fifo,
    /// Vector-clock causal order.
    Causal,
    /// Fixed-sequencer total order with NACK gap repair.
    Total,
    /// Persistent-log certified delivery surviving crashes.
    Certified,
}

impl ProtocolKind {
    /// Every protocol the generator can pick.
    pub const ALL: [ProtocolKind; 5] = [
        ProtocolKind::Reliable,
        ProtocolKind::Fifo,
        ProtocolKind::Causal,
        ProtocolKind::Total,
        ProtocolKind::Certified,
    ];

    /// Stable lowercase name used in reports.
    pub fn name(self) -> &'static str {
        match self {
            ProtocolKind::Reliable => "reliable",
            ProtocolKind::Fifo => "fifo",
            ProtocolKind::Causal => "causal",
            ProtocolKind::Total => "total",
            ProtocolKind::Certified => "certified",
        }
    }

    /// Builds a fresh protocol instance.
    pub fn make(self) -> Box<dyn Multicast> {
        match self {
            ProtocolKind::Reliable => Box::new(Reliable::new()),
            ProtocolKind::Fifo => Box::new(Fifo::new()),
            ProtocolKind::Causal => Box::new(Causal::new()),
            ProtocolKind::Total => Box::new(Total::new()),
            ProtocolKind::Certified => Box::new(Certified::new()),
        }
    }
}

/// One timed operation of a scenario schedule.
///
/// Crash and partition windows are single operations (not separate
/// begin/end events) so the shrinker can never produce a schedule where a
/// node stays down or a partition stays open to the end of the run — every
/// sampled fault heals, which is what makes the completeness oracles
/// applicable.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Op {
    /// `node` broadcasts one uniquely numbered payload at `at_ms`.
    Publish {
        /// Index of the publishing node.
        node: usize,
        /// Virtual time of the publish.
        at_ms: u64,
    },
    /// `node` crashes at `at_ms` (volatile state lost, stable storage
    /// kept) and recovers `down_ms` later.
    CrashWindow {
        /// Index of the crashing node.
        node: usize,
        /// Virtual time of the crash.
        at_ms: u64,
        /// Outage length; recovery happens at `at_ms + down_ms`.
        down_ms: u64,
    },
    /// The cluster splits into `[0, split)` vs `[split, n)` at `at_ms` and
    /// heals `dur_ms` later.
    PartitionWindow {
        /// First node of the second component.
        split: usize,
        /// Virtual time the partition forms.
        at_ms: u64,
        /// Partition length; the network heals at `at_ms + dur_ms`.
        dur_ms: u64,
    },
}

impl Op {
    fn describe(&self) -> String {
        match *self {
            Op::Publish { node, at_ms } => format!("publish node={node} at={at_ms}ms"),
            Op::CrashWindow { node, at_ms, down_ms } => {
                format!("crash node={node} at={at_ms}ms down={down_ms}ms")
            }
            Op::PartitionWindow { split, at_ms, dur_ms } => {
                format!("partition split={split} at={at_ms}ms dur={dur_ms}ms")
            }
        }
    }
}

/// A complete seed-derived test scenario.
#[derive(Debug, Clone, PartialEq)]
pub struct Scenario {
    /// The seed this scenario was generated from (also seeds the network).
    pub seed: u64,
    /// Protocol under test.
    pub protocol: ProtocolKind,
    /// Cluster size.
    pub nodes: usize,
    /// Independent per-message drop probability.
    pub loss: f64,
    /// Uniform one-way latency bounds in milliseconds (inclusive).
    pub latency_ms: (u64, u64),
    /// Quiet tail after the last operation before the final trace capture.
    pub settle_ms: u64,
    /// Timed operations, ordered by `at_ms`.
    pub ops: Vec<Op>,
}

impl Scenario {
    /// Samples a scenario from `seed`.
    ///
    /// The fault load is drawn from the protocol's tolerated envelope:
    /// loss and healed partitions for everyone, crash/recovery windows for
    /// `Certified` (the only §3.1.2 semantics that promises delivery
    /// across failures) and for the volatile epoch-tagged protocols
    /// (`Reliable`/`Fifo`/`Causal`, safety-only) — completeness is only
    /// asserted where the drawn faults stay inside the protocol's
    /// guarantee (see [`Scenario::expects_completeness`]); outside it the
    /// run still checks every safety oracle.
    pub fn generate(seed: u64) -> Scenario {
        let mut rng = StdRng::seed_from_u64(seed ^ 0x9a55_c0de_d5ee_d001);
        let protocol = ProtocolKind::ALL[rng.gen_range(0..ProtocolKind::ALL.len())];
        let nodes = rng.gen_range(2..=6usize);
        let latency_ms = (1, rng.gen_range(2..=12u64));

        let mut ops = Vec::new();
        let mut loss = 0.0;
        let mut crash_windows: Vec<(usize, u64, u64)> = Vec::new();
        match protocol {
            ProtocolKind::Certified => {
                if rng.gen_bool(0.5) {
                    loss = rng.gen_range(0.05..0.25);
                }
                for _ in 0..rng.gen_range(0..=2usize) {
                    let node = rng.gen_range(0..nodes);
                    let at_ms = rng.gen_range(50..=900u64);
                    let down_ms = rng.gen_range(100..=500u64);
                    crash_windows.push((node, at_ms, down_ms));
                    ops.push(Op::CrashWindow { node, at_ms, down_ms });
                }
                if nodes >= 3 && rng.gen_bool(0.3) {
                    ops.push(Op::PartitionWindow {
                        split: rng.gen_range(1..nodes),
                        at_ms: rng.gen_range(50..=800u64),
                        dur_ms: rng.gen_range(100..=400u64),
                    });
                }
            }
            _ => {
                // Half the scenarios are benign (completeness asserted);
                // the other half add loss, sometimes a healed partition,
                // and — for the epoch-tagged volatile protocols — crash
                // windows, checking safety only. `Total` is excluded from
                // crashes: its fixed sequencer keeps no stable state, so a
                // sequencer restart can legitimately re-order messages two
                // survivors saw in different prefixes — agreement across a
                // sequencer crash is out of its volatile contract (the
                // receiver-side horizon adoption is still covered by unit
                // and e2e tests).
                if !rng.gen_bool(0.5) {
                    loss = rng.gen_range(0.02..0.3);
                    if nodes >= 3 && rng.gen_bool(0.4) {
                        ops.push(Op::PartitionWindow {
                            split: rng.gen_range(1..nodes),
                            at_ms: rng.gen_range(50..=800u64),
                            dur_ms: rng.gen_range(100..=400u64),
                        });
                    }
                    if protocol != ProtocolKind::Total && rng.gen_bool(0.5) {
                        for _ in 0..rng.gen_range(1..=2usize) {
                            let node = rng.gen_range(0..nodes);
                            let at_ms = rng.gen_range(50..=900u64);
                            let down_ms = rng.gen_range(100..=500u64);
                            crash_windows.push((node, at_ms, down_ms));
                            ops.push(Op::CrashWindow { node, at_ms, down_ms });
                        }
                    }
                }
            }
        }

        for _ in 0..rng.gen_range(3..=10usize) {
            // Publishes never land inside the publisher's own outage: a
            // crashed process cannot publish, so such an op would be a
            // no-op by construction, not a protocol obligation.
            loop {
                let node = rng.gen_range(0..nodes);
                let at_ms = rng.gen_range(10..=1200u64);
                let down = crash_windows
                    .iter()
                    .any(|&(n, at, dur)| n == node && at_ms >= at && at_ms <= at + dur);
                if !down {
                    ops.push(Op::Publish { node, at_ms });
                    break;
                }
            }
        }

        // Stable sort: fault windows stay ahead of publishes that share a
        // timestamp, keeping execution order independent of sampling order.
        ops.sort_by_key(|op| match *op {
            Op::Publish { at_ms, .. } => at_ms,
            Op::CrashWindow { at_ms, .. } => at_ms,
            Op::PartitionWindow { at_ms, .. } => at_ms,
        });

        let faulty = loss > 0.0 || !crash_windows.is_empty();
        Scenario {
            seed,
            protocol,
            nodes,
            loss,
            latency_ms,
            settle_ms: if faulty { 6_000 } else { 4_000 },
            ops,
        }
    }

    /// Whether the completeness oracle (everything published is delivered
    /// everywhere) applies to this scenario.
    ///
    /// `Certified` promises delivery across every fault the generator can
    /// draw (all crashes recover, all partitions heal, loss is repaired by
    /// retransmission). The other protocols only guarantee completeness on
    /// a fault-free network; under loss or partitions the run checks their
    /// ordering/integrity contracts only.
    pub fn expects_completeness(&self) -> bool {
        match self.protocol {
            ProtocolKind::Certified => true,
            _ => {
                self.loss == 0.0
                    && !self.ops.iter().any(|op| {
                        matches!(op, Op::CrashWindow { .. } | Op::PartitionWindow { .. })
                    })
            }
        }
    }

    /// Deterministic one-line-per-op description used in reports.
    pub fn describe(&self) -> String {
        let mut out = format!(
            "scenario seed={} protocol={} nodes={} loss={:.3} latency={}..{}ms settle={}ms\n",
            self.seed,
            self.protocol.name(),
            self.nodes,
            self.loss,
            self.latency_ms.0,
            self.latency_ms.1,
            self.settle_ms,
        );
        for op in &self.ops {
            out.push_str("  ");
            out.push_str(&op.describe());
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        for seed in 0..20 {
            assert_eq!(Scenario::generate(seed), Scenario::generate(seed));
        }
    }

    #[test]
    fn distinct_seeds_vary_the_schedule() {
        let distinct: std::collections::HashSet<String> =
            (0..50).map(|s| Scenario::generate(s).describe()).collect();
        assert!(distinct.len() >= 45, "only {} distinct scenarios", distinct.len());
    }

    #[test]
    fn publishes_never_land_in_the_publishers_outage() {
        for seed in 0..200 {
            let s = Scenario::generate(seed);
            let windows: Vec<(usize, u64, u64)> = s
                .ops
                .iter()
                .filter_map(|op| match *op {
                    Op::CrashWindow { node, at_ms, down_ms } => Some((node, at_ms, down_ms)),
                    _ => None,
                })
                .collect();
            for op in &s.ops {
                if let Op::Publish { node, at_ms } = *op {
                    assert!(
                        !windows
                            .iter()
                            .any(|&(n, at, dur)| n == node && at_ms >= at && at_ms <= at + dur),
                        "seed {seed}: publish during outage"
                    );
                }
            }
        }
    }
}
