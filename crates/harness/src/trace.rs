//! Execution traces: what was published and what every node delivered.
//!
//! The trace is the single source of truth for the oracles *and* for the
//! determinism check: [`Trace::render`] is a canonical byte-stable
//! rendering, so two runs of the same scenario must produce identical
//! strings.

use std::collections::BTreeMap;

/// One publish performed during a run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PubRecord {
    /// Global publish index; also the wire payload.
    pub index: usize,
    /// Raw id of the publishing node.
    pub origin: u64,
    /// 1-based sequence number among this origin's publishes (counted
    /// across the origin's whole lifetime, not per incarnation).
    pub origin_seq: u64,
    /// Incarnation of the origin at publish time: 0 until its first crash,
    /// +1 per recovery. Volatile protocols lose a publisher's in-flight
    /// state with its incarnation, so the oracles sever their guarantees at
    /// incarnation boundaries.
    pub incarnation: u64,
    /// Publish indices the origin had delivered before publishing — the
    /// happened-before set the causal oracle checks against. Cleared at a
    /// crash: a recovered publisher's causal past restarts empty.
    pub deps: Vec<usize>,
}

/// One delivery observed at a node, in local delivery order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Delivery {
    /// Origin node the protocol attributed the payload to.
    pub origin: u64,
    /// Decoded publish index.
    pub index: usize,
    /// Incarnation of the *delivering* node when it delivered (0 until its
    /// first crash, +1 per recovery). Volatile delivery guarantees are per
    /// receiver incarnation.
    pub incarnation: u64,
}

/// The observable outcome of a run: the publish log plus each node's
/// delivery log (accumulated across crashes — the runner snapshots the
/// volatile log right before every crash).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Trace {
    /// All publishes, in execution order (`publishes[i].index == i`).
    pub publishes: Vec<PubRecord>,
    /// Per-node delivery logs, keyed by raw node id.
    pub deliveries: BTreeMap<u64, Vec<Delivery>>,
    /// Protocol wire counters (`group.*`) summed over every node's
    /// `psc-telemetry` snapshot at the end of the run. The registries are
    /// owned outside the node factories, so the counts accumulate across
    /// crash rebuilds — like the delivery logs above.
    pub wire: BTreeMap<String, u64>,
    /// Each node's `group.delivered` counter, cross-checked against its
    /// delivery log by the telemetry oracle.
    pub wire_delivered: BTreeMap<u64, u64>,
}

impl Trace {
    /// Canonical, byte-stable rendering of the trace.
    pub fn render(&self) -> String {
        let mut out = String::from("publishes:\n");
        for p in &self.publishes {
            out.push_str(&format!(
                "  #{} origin={} seq={} inc={} deps={:?}\n",
                p.index, p.origin, p.origin_seq, p.incarnation, p.deps
            ));
        }
        out.push_str("deliveries:\n");
        for (node, log) in &self.deliveries {
            out.push_str(&format!("  node {node}:"));
            for d in log {
                if d.incarnation == 0 {
                    out.push_str(&format!(" #{}(o{})", d.index, d.origin));
                } else {
                    out.push_str(&format!(" #{}(o{}/r{})", d.index, d.origin, d.incarnation));
                }
            }
            out.push('\n');
        }
        out.push_str("wire:\n");
        for (name, value) in &self.wire {
            out.push_str(&format!("  {name} = {value}\n"));
        }
        for (node, value) in &self.wire_delivered {
            out.push_str(&format!("  node {node} delivered = {value}\n"));
        }
        out
    }
}
