//! Consistent-cut fuzzing: Chandy–Lamport snapshots taken mid-chaos, with
//! global-invariant oracles over the assembled [`ClusterCut`].
//!
//! Where [`durable`](crate::durable) attacks the write-ahead log, this
//! module attacks the snapshot plane itself: each seed derives a certified
//! publish workload, a loss rate, an optional subscriber crash–recovery
//! cycle, and one snapshot initiated from the publishing node while the
//! traffic (and possibly the outage) is still in flight. The run must
//! produce a *complete*, *byte-stable*, and *globally consistent* cluster
//! image:
//!
//! - **determinism** — two replays of one seed render byte-identical cuts;
//! - **completeness** — the wave terminates with a fragment from every
//!   node despite loss and crashes (marker re-floods + force-close);
//! - **clock consistency** — no fragment observed another node past that
//!   node's own capture ([`ClusterCut::consistency_violations`]);
//! - **no ghosts** — no fragment captured a delivery of a publish the
//!   origin's own fragment had not yet issued (`seq > next_seq` means a
//!   post-cut send landed in a pre-cut state);
//! - **three-way coverage** — every certified publish issued pre-cut is,
//!   for every subscriber, *somewhere* in the cut: in the subscriber's
//!   delivered set, still owed in the origin's retransmission log, or
//!   recorded in flight on a link — nothing falls through the image;
//! - **ack ⇒ delivered** — an acknowledgement the origin captured implies
//!   the acking subscriber's captured delivered set contains the message;
//! - **end-state exactly-once** — after the lossless settle, every
//!   certified publish reached every subscriber incarnation-union exactly
//!   once (the snapshot machinery must not perturb delivery).
//!
//! The capture discipline under test is the Lai–Yang colouring in
//! `psc-dace`: every transport message carries its sender's wave tag, and
//! a receiver seeing a higher tag captures *before* processing. The
//! deliberately broken deployment ([`broken::SkewedMarkers`]
//! (crate::broken::SkewedMarkers)) disables exactly that rule — a receiver
//! processes first and captures on the marker only, the classic
//! Chandy–Lamport misuse over non-FIFO links — and the clock/ghost oracles
//! must catch the resulting inconsistent cut.

use std::collections::BTreeSet;
use std::sync::{Arc, Mutex};

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use psc_dace::{DaceConfig, DaceNode};
use psc_obvent::builtin::Certified;
use psc_obvent::{declare_obvent_model, Obvent};
use psc_simnet::Duration as SimDuration;
use psc_simnet::{LatencyModel, NodeId, SimConfig, SimNet, SimTime};
use psc_snapshot::{ClusterCut, MsgRef};
use pubsub_core::FilterSpec;

declare_obvent_model! {
    /// The snapshot fuzz workload: a certified obvent carrying its publish
    /// index.
    pub class SnapTick implements [Certified] { n: u64 }
}

/// The publishing (and snapshot-initiating) node. Every other node
/// subscribes.
const PUB_NODE: usize = 0;

/// One certified publication of a snapshot scenario.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SnapPub {
    /// Virtual time of the publish (ms); always from [`PUB_NODE`].
    pub at_ms: u64,
}

/// One crash–recovery cycle of a subscriber node (no disk fault: the
/// durability dimension lives in [`durable`](crate::durable); here the
/// outage stresses wave liveness and the `recovered` fragment exemption).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SnapCrash {
    /// Crashing subscriber node (never [`PUB_NODE`]).
    pub node: usize,
    /// Crash time (ms).
    pub at_ms: u64,
    /// Outage length; the node recovers (and immediately re-subscribes)
    /// at `at_ms + down_ms`.
    pub down_ms: u64,
}

/// A seed-derived snapshot scenario.
#[derive(Debug, Clone, PartialEq)]
pub struct SnapScenario {
    /// Generating seed (also seeds the network).
    pub seed: u64,
    /// Cluster size (3 or 4; node [`PUB_NODE`] publishes, the rest
    /// subscribe).
    pub nodes: usize,
    /// Message-loss probability during the chaos window (the warmup and
    /// the final settle run lossless).
    pub loss: f64,
    /// Certified publish workload; publish `i` carries value `i`.
    pub pubs: Vec<SnapPub>,
    /// Crash cycles of subscriber nodes, in time order.
    pub crashes: Vec<SnapCrash>,
    /// Virtual time the snapshot wave is initiated from [`PUB_NODE`] —
    /// placed just before a mid-workload publish, so wave-tagged traffic
    /// races the markers.
    pub snap_at_ms: u64,
}

impl SnapScenario {
    /// Samples a snapshot scenario from `seed`.
    pub fn generate(seed: u64) -> SnapScenario {
        let mut rng = StdRng::seed_from_u64(seed ^ 0x5ee0_c47c_04a7_0001);
        let nodes = rng.gen_range(3..=4usize);
        let loss = [0.0, 0.05, 0.1, 0.2][rng.gen_range(0..4usize)];
        let pubs: Vec<SnapPub> = (0..rng.gen_range(6..=12usize))
            .map(|i| SnapPub { at_ms: 40 + i as u64 * 30 + rng.gen_range(0..20u64) })
            .collect();
        let last_pub = pubs.last().expect("non-empty workload").at_ms;
        // Ignite just before a publish from the middle of the workload:
        // data frames tagged with the new wave immediately race the
        // markers across every link.
        let snap_idx = rng.gen_range(pubs.len() / 3..pubs.len() - 1);
        let snap_at_ms = pubs[snap_idx].at_ms.saturating_sub(1);
        let mut crashes = Vec::new();
        if rng.gen_bool(0.5) {
            let at_ms = rng.gen_range(40..=last_pub);
            crashes.push(SnapCrash {
                node: rng.gen_range(1..nodes),
                at_ms,
                down_ms: rng.gen_range(30..=120u64),
            });
        }
        SnapScenario { seed, nodes, loss, pubs, crashes, snap_at_ms }
    }

    /// Deterministic description used in reports.
    pub fn describe(&self) -> String {
        let mut out = format!(
            "snapshot scenario seed={} nodes={} loss={} snap_at={}ms\n",
            self.seed, self.nodes, self.loss, self.snap_at_ms
        );
        for (i, p) in self.pubs.iter().enumerate() {
            out.push_str(&format!("  pub#{i} at={}ms\n", p.at_ms));
        }
        for (i, c) in self.crashes.iter().enumerate() {
            out.push_str(&format!(
                "  crash#{i} node={} at={}ms down={}ms\n",
                c.node, c.at_ms, c.down_ms
            ));
        }
        out
    }
}

/// What a snapshot run observed.
#[derive(Debug, Clone)]
pub struct SnapOutcome {
    /// The completed cut, when the wave terminated.
    pub cut: Option<ClusterCut>,
    /// Values delivered to each subscriber incarnation, in delivery order
    /// (a crash cycle opens a new incarnation for the crashed node).
    pub got: Vec<(usize, Vec<u64>)>,
    /// Snapshot-oracle findings, empty on a healthy run.
    pub violations: Vec<String>,
}

impl SnapOutcome {
    /// Canonical rendering (the determinism check compares these): the
    /// byte-stable cluster image followed by the delivery log.
    pub fn render(&self) -> String {
        let mut out = match &self.cut {
            Some(cut) => cut.render(),
            None => "  (no completed cut)\n".to_string(),
        };
        for (i, (node, got)) in self.got.iter().enumerate() {
            out.push_str(&format!("  inc#{i} node={node} got={got:?}\n"));
        }
        out
    }
}

type Sink = Arc<Mutex<Vec<u64>>>;

/// Attaches one (volatile) subscriber incarnation.
fn attach(sim: &mut SimNet, node: NodeId) -> Sink {
    let sink: Sink = Arc::new(Mutex::new(Vec::new()));
    let recorder = Arc::clone(&sink);
    DaceNode::drive(sim, node, move |domain| {
        let sub = domain.subscribe(FilterSpec::accept_all(), move |e: SnapTick| {
            recorder.lock().unwrap().push(*e.n());
        });
        sub.activate().expect("subscriber attach");
        sub.detach();
    });
    sink
}

/// Executes a snapshot scenario with the correct capture discipline and
/// applies the cut oracles.
pub fn run_snapshot(scenario: &SnapScenario) -> SnapOutcome {
    run_snapshot_config(scenario, DaceConfig::default())
}

/// [`run_snapshot`] with the deployment configuration switchable — pass
/// [`broken::SkewedMarkers::config`](crate::broken::SkewedMarkers::config)
/// to run the deliberately broken marker discipline the oracles must
/// catch.
pub fn run_snapshot_config(scenario: &SnapScenario, config: DaceConfig) -> SnapOutcome {
    let _ = SnapTick::kind();
    let mut sim = SimNet::new(SimConfig {
        seed: scenario.seed,
        latency: LatencyModel::Uniform {
            min: SimDuration::from_millis(1),
            max: SimDuration::from_millis(5),
        },
        drop_probability: 0.0,
    });
    let ids: Vec<NodeId> = (0..scenario.nodes as u64).map(NodeId).collect();
    for i in 0..scenario.nodes {
        sim.add_node(format!("s{i}"), DaceNode::factory(ids.clone(), config.clone()));
    }
    let mut sinks: Vec<(usize, Sink)> = (1..scenario.nodes)
        .map(|n| (n, attach(&mut sim, ids[n])))
        .collect();

    enum Ev {
        Pub(usize),
        Snap,
        Crash(usize),
        Recover(usize),
    }
    let mut timeline: Vec<(u64, usize, Ev)> = Vec::new();
    timeline.push((scenario.snap_at_ms, 0, Ev::Snap));
    for (i, p) in scenario.pubs.iter().enumerate() {
        timeline.push((p.at_ms, timeline.len(), Ev::Pub(i)));
    }
    for c in &scenario.crashes {
        timeline.push((c.at_ms, timeline.len(), Ev::Crash(c.node)));
        timeline.push((c.at_ms + c.down_ms, timeline.len(), Ev::Recover(c.node)));
    }
    timeline.sort_by_key(|&(at, k, _)| (at, k));

    // Lossless warmup: subscription announcements converge, so every
    // certified publish targets every subscriber.
    sim.run_until(SimTime::from_millis(30));
    sim.set_drop_probability(scenario.loss);

    let mut last_at = 30;
    for (at, _, ev) in timeline {
        sim.run_until(SimTime::from_millis(at.max(30)));
        match ev {
            Ev::Pub(i) => {
                DaceNode::publish_from(&mut sim, ids[PUB_NODE], SnapTick::new(i as u64));
            }
            Ev::Snap => DaceNode::snapshot_from(&mut sim, ids[PUB_NODE]),
            Ev::Crash(n) => sim.crash(ids[n]),
            Ev::Recover(n) => {
                sim.recover(ids[n]);
                // Re-subscribe in the same virtual instant: a plain
                // subscription is volatile, and certified retransmissions
                // resume as soon as the node is back.
                sinks.push((n, attach(&mut sim, ids[n])));
            }
        }
        last_at = at.max(30);
    }
    // Lossless settle: certified retransmission finishes delivery and the
    // marker re-floods terminate the wave.
    sim.set_drop_probability(0.0);
    sim.run_until(SimTime::from_millis(last_at + 3_000));

    let cut = DaceNode::snapshot_cut_of(&mut sim, ids[PUB_NODE]);
    let got: Vec<(usize, Vec<u64>)> =
        sinks.iter().map(|(n, s)| (*n, s.lock().unwrap().clone())).collect();
    let violations = cut_violations(scenario, cut.as_ref(), &got);
    SnapOutcome { cut, got, violations }
}

/// The global-invariant oracles over one run's cut and delivery log.
fn cut_violations(
    scenario: &SnapScenario,
    cut: Option<&ClusterCut>,
    got: &[(usize, Vec<u64>)],
) -> Vec<String> {
    let mut violations = Vec::new();
    let kind = SnapTick::kind_id().as_u64();
    let origin = PUB_NODE as u64;
    let all: Vec<u64> = (0..scenario.nodes as u64).collect();

    let Some(cut) = cut else {
        violations.push("snapshot: the wave never completed at the initiator".into());
        return violations;
    };
    if !cut.complete(&all) {
        let missing: Vec<String> = all
            .iter()
            .filter(|n| !cut.frags.contains_key(n))
            .map(|n| format!("n{n}"))
            .collect();
        violations.push(format!(
            "snapshot: cut incomplete, missing fragment(s) from {}",
            missing.join(" ")
        ));
    }
    violations.extend(cut.consistency_violations());

    // Every cross-channel oracle is anchored at the origin's own capture.
    let ocap = cut
        .frags
        .get(&origin)
        .and_then(|f| f.channel(kind))
        .map(|c| c.capture.clone());
    if let Some(ocap) = ocap {
        let pre_cut = ocap.next_seq; // certified seqs are 1..=next_seq
        let in_flight: BTreeSet<MsgRef> = cut
            .frags
            .values()
            .flat_map(|f| f.inflight.iter())
            .flat_map(|r| r.obvents.iter())
            .filter(|o| o.channel == kind)
            .map(|o| o.id)
            .collect();
        for (&m, frag) in &cut.frags {
            if m == origin {
                continue;
            }
            let Some(cap) = frag.channel(kind).map(|c| &c.capture) else {
                continue;
            };
            let delivered: BTreeSet<u64> = cap
                .delivered
                .iter()
                .filter(|r| r.origin == origin && r.epoch == ocap.epoch)
                .map(|r| r.seq)
                .collect();
            // No ghosts: a non-recovered fragment captured before any
            // post-cut send could be processed, so it cannot know a seq
            // the origin's fragment had not issued. (A crash-recovered
            // fragment re-captured late over a persisted delivered set,
            // so it is exempt — its `recovered` flag is in the image.)
            if !frag.recovered {
                for &s in delivered.iter().filter(|&&s| s > pre_cut) {
                    violations.push(format!(
                        "ghost: n{m} captured delivery of o{origin}:{s} but the \
                         origin had only issued {pre_cut} pre-cut"
                    ));
                }
            }
            // Three-way coverage: each pre-cut publish is delivered,
            // owed, or in flight — the cut loses nothing.
            for s in 1..=pre_cut {
                let owed = ocap.retransmit.iter().any(|e| {
                    e.id.seq == s
                        && e.id.origin == origin
                        && e.targets.contains(&m)
                        && !e.acked.contains(&m)
                });
                if !delivered.contains(&s)
                    && !owed
                    && !in_flight.contains(&MsgRef::new(origin, ocap.epoch, s))
                {
                    violations.push(format!(
                        "coverage: certified publish o{origin}:{s} is neither \
                         delivered at n{m}, owed in the origin's retransmit log, \
                         nor recorded in flight"
                    ));
                }
            }
            // Ack ⇒ delivered: an ack the origin saw pre-cut was sent
            // pre-cut at the subscriber (else the cut is inconsistent),
            // and certified subscribers persist delivery before acking.
            for e in &ocap.retransmit {
                if e.acked.contains(&m) && !delivered.contains(&e.id.seq) {
                    violations.push(format!(
                        "ack without delivery: the origin captured n{m}'s ack of \
                         o{origin}:{} but n{m}'s delivered set is missing it",
                        e.id.seq
                    ));
                }
            }
        }
    }

    // End-state exactly-once: the snapshot machinery must not perturb
    // certified delivery — per subscriber node, the union across its
    // incarnations delivers every publish exactly once.
    for node in 1..scenario.nodes {
        let mut counts = vec![0usize; scenario.pubs.len()];
        for (_, values) in got.iter().filter(|(n, _)| *n == node) {
            for &v in values {
                match counts.get_mut(v as usize) {
                    Some(c) => *c += 1,
                    None => violations
                        .push(format!("n{node}: ghost delivery of unknown value {v}")),
                }
            }
        }
        for (i, &c) in counts.iter().enumerate() {
            if c == 0 {
                violations.push(format!(
                    "delivery: certified publish #{i} never reached n{node}"
                ));
            } else if c > 1 {
                violations.push(format!(
                    "delivery: publish #{i} delivered {c} times at n{node} \
                     (exactly-once broken)"
                ));
            }
        }
    }
    violations
}

/// Greedy shrinking for snapshot counterexamples: while the failure
/// reproduces, delete publishes and crash cycles, then zero the loss rate.
pub fn shrink_snapshot(scenario: &SnapScenario, config: &DaceConfig) -> SnapScenario {
    let violates =
        |s: &SnapScenario| !run_snapshot_config(s, config.clone()).violations.is_empty();
    let mut current = scenario.clone();
    loop {
        let mut progressed = false;
        let mut i = 0;
        while i < current.pubs.len() {
            if current.pubs.len() == 1 {
                break; // the oracle needs at least one publish to count
            }
            let mut candidate = current.clone();
            candidate.pubs.remove(i);
            if violates(&candidate) {
                current = candidate;
                progressed = true;
            } else {
                i += 1;
            }
        }
        let mut i = 0;
        while i < current.crashes.len() {
            let mut candidate = current.clone();
            candidate.crashes.remove(i);
            if violates(&candidate) {
                current = candidate;
                progressed = true;
            } else {
                i += 1;
            }
        }
        if current.loss > 0.0 {
            let mut candidate = current.clone();
            candidate.loss = 0.0;
            if violates(&candidate) {
                current = candidate;
                progressed = true;
            }
        }
        if !progressed {
            return current;
        }
    }
}

/// Writes the text post-mortem of a failing snapshot run under
/// `HARNESS_DUMP_DIR` (if set); returns the context line for the report.
fn dump_snapshot_failure(
    seed: u64,
    scenario: &SnapScenario,
    outcome: &SnapOutcome,
) -> String {
    let Ok(dir) = std::env::var("HARNESS_DUMP_DIR") else {
        return String::new();
    };
    let base = std::path::PathBuf::from(dir);
    if std::fs::create_dir_all(&base).is_err() {
        return String::new();
    }
    let path = base.join(format!("snapshot_postmortem_seed{seed}.txt"));
    let mut dump = format!("=== snapshot post-mortem seed={seed} ===\n");
    dump.push_str(&scenario.describe());
    dump.push_str(&outcome.render());
    for v in &outcome.violations {
        dump.push_str(&format!("  {v}\n"));
    }
    if std::fs::write(&path, dump).is_ok() {
        format!("post-mortem dumped to: {}\n", path.display())
    } else {
        String::new()
    }
}

/// Determinism + snapshot oracles for one seed; `Err` carries a full
/// replayable report with a shrunk counterexample.
pub fn check_snapshot_seed(seed: u64) -> Result<(), String> {
    let scenario = SnapScenario::generate(seed);
    let first = run_snapshot(&scenario);
    let second = run_snapshot(&scenario);
    if first.render() != second.render() {
        return Err(format!(
            "snapshot seed {seed}: NONDETERMINISM across identical runs\n{}{}",
            scenario.describe(),
            first.render()
        ));
    }
    if first.violations.is_empty() {
        return Ok(());
    }
    let shrunk = shrink_snapshot(&scenario, &DaceConfig::default());
    let shrunk_outcome = run_snapshot(&shrunk);
    Err(format!(
        "snapshot seed {seed}: {} cut violation(s)\n\
         replay with: HARNESS_SEED={seed} cargo test --test harness_smoke\n\
         {}{}{}{}\
         === shrunk counterexample ({} pubs, {} crashes) ===\n{}{}",
        first.violations.len(),
        dump_snapshot_failure(seed, &scenario, &first),
        scenario.describe(),
        first.render(),
        first
            .violations
            .iter()
            .map(|v| format!("  {v}\n"))
            .collect::<String>(),
        shrunk.pubs.len(),
        shrunk.crashes.len(),
        shrunk.describe(),
        shrunk_outcome.render(),
    ))
}
