//! Scenario execution, seed replay, shrinking and reporting.
//!
//! The runner drives a [`Scenario`](crate::Scenario) through the
//! deterministic simulator against real `psc-group` protocol instances,
//! collects a [`Trace`], and applies the oracles the protocol's QoS
//! position warrants (Fig. 4 lattice: `Causal` is also checked for FIFO,
//! every protocol for integrity, completeness wherever guaranteed).
//!
//! Failure workflow:
//! 1. [`check_seed`] runs the scenario **twice** and compares the rendered
//!    traces byte-for-byte (the determinism oracle), then checks
//!    invariants;
//! 2. on a violation, [`shrink`] greedily deletes schedule operations and
//!    simplifies the network while the failure reproduces;
//! 3. the returned report carries the seed (`HARNESS_SEED=<seed>` replays
//!    exactly this scenario) and the shrunk schedule.

use std::sync::Arc;

use psc_group::sim_host::{GroupNode, Watchdog};
use psc_group::{GroupIo, Multicast, TimerToken};
use psc_simnet::{LatencyModel, NodeId, SimConfig, SimNet, SimTime};
use psc_simnet::Duration as SimDuration;
use psc_telemetry::json::JsonValue;
use psc_telemetry::{
    FlightRecorder, HealthConfig, HealthMonitor, Registry, DEFAULT_FLIGHT_CAPACITY,
};

use crate::oracle::{self, HealthFinding, Violation};
use crate::scenario::{Op, ProtocolKind, Scenario};
use crate::trace::{Delivery, PubRecord, Trace};

/// Shared protocol factory, clonable into every node's rebuild closure.
pub type ProtoFactory = Arc<dyn Fn() -> Box<dyn Multicast> + Send + Sync>;

/// Adapts a boxed protocol to `GroupNode::boxed`, which takes
/// `impl Multicast`. Downcasts pass through to the inner protocol so
/// `GroupNode::with_proto` still reaches it.
struct BoxedProto(Box<dyn Multicast>);

impl Multicast for BoxedProto {
    fn broadcast(&mut self, io: &mut dyn GroupIo, payload: psc_codec::WireBytes) {
        self.0.broadcast(io, payload);
    }
    fn on_message(&mut self, io: &mut dyn GroupIo, from: NodeId, bytes: &[u8]) {
        self.0.on_message(io, from, bytes);
    }
    fn on_timer(&mut self, io: &mut dyn GroupIo, token: TimerToken) {
        self.0.on_timer(io, token);
    }
    fn on_recover(&mut self, io: &mut dyn GroupIo) {
        self.0.on_recover(io);
    }
    fn on_start(&mut self, io: &mut dyn GroupIo) {
        self.0.on_start(io);
    }
    fn proto_name(&self) -> &'static str {
        self.0.proto_name()
    }
    fn queue_depths(&self) -> Vec<(&'static str, u64)> {
        self.0.queue_depths()
    }
    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self.0.as_any_mut()
    }
}

/// The stall-watchdog sweep period used by harness runs.
const WATCHDOG_SWEEP: SimDuration = SimDuration::from_millis(50);

/// What a run produced: the trace plus every oracle violation.
#[derive(Debug, Clone)]
pub struct RunOutcome {
    /// Everything published and delivered.
    pub trace: Trace,
    /// Oracle findings, empty on a healthy run.
    pub violations: Vec<Violation>,
    /// Non-fatal stall-watchdog findings ([`oracle::check_health`]).
    pub health: Vec<HealthFinding>,
    /// Each node's flight recorder (index = node id), for post-mortems.
    pub recorders: Vec<Arc<FlightRecorder>>,
}

fn encode_payload(index: usize) -> Vec<u8> {
    (index as u64).to_le_bytes().to_vec()
}

fn decode_payload(bytes: &[u8]) -> Option<usize> {
    let arr: [u8; 8] = bytes.try_into().ok()?;
    Some(u64::from_le_bytes(arr) as usize)
}

/// Runs `scenario` with its own protocol.
pub fn run_scenario(scenario: &Scenario) -> RunOutcome {
    let protocol = scenario.protocol;
    run_scenario_with(scenario, Arc::new(move || protocol.make()))
}

/// Runs `scenario` from the given seed.
pub fn run_seed(seed: u64) -> (Scenario, RunOutcome) {
    let scenario = Scenario::generate(seed);
    let outcome = run_scenario(&scenario);
    (scenario, outcome)
}

/// Runs `scenario` with an injected protocol factory — this is how tests
/// prove oracle sensitivity by substituting a deliberately broken protocol
/// (see [`broken`](crate::broken)).
pub fn run_scenario_with(scenario: &Scenario, make: ProtoFactory) -> RunOutcome {
    let config = SimConfig {
        seed: scenario.seed,
        latency: LatencyModel::Uniform {
            min: SimDuration::from_millis(scenario.latency_ms.0),
            max: SimDuration::from_millis(scenario.latency_ms.1),
        },
        drop_probability: scenario.loss,
    };
    let mut sim = SimNet::new(config);
    let ids: Vec<NodeId> = (0..scenario.nodes as u64).map(NodeId).collect();
    // One registry per node, owned out here so `group.*` counters survive
    // crash rebuilds (the factories clone a handle into every incarnation).
    let registries: Vec<Arc<Registry>> = (0..scenario.nodes)
        .map(|_| Arc::new(Registry::new()))
        .collect();
    // Per-node flight recorders and health monitors, owned out here like
    // the registries so the diagnosis state survives crash rebuilds. The
    // monitors write `health.*` into the same per-node registries, which is
    // how stall counters end up folded into the trace for `check_health`.
    let recorders: Vec<Arc<FlightRecorder>> = (0..scenario.nodes)
        .map(|i| Arc::new(FlightRecorder::new(format!("n{i}"), DEFAULT_FLIGHT_CAPACITY)))
        .collect();
    let monitors: Vec<Arc<HealthMonitor>> = (0..scenario.nodes)
        .map(|i| {
            Arc::new(HealthMonitor::new(
                registries[i].as_ref().clone(),
                Some(Arc::clone(&recorders[i])),
                HealthConfig::default(),
            ))
        })
        .collect();
    for i in 0..scenario.nodes {
        let mk = Arc::clone(&make);
        let registry = Arc::clone(&registries[i]);
        let recorder = Arc::clone(&recorders[i]);
        let watchdog = Watchdog {
            monitor: Arc::clone(&monitors[i]),
            interval: WATCHDOG_SWEEP,
        };
        sim.add_node(format!("h{i}"), move || {
            GroupNode::boxed_observable(
                BoxedProto(mk()),
                Arc::clone(&registry),
                Some(Arc::clone(&recorder)),
                Some(watchdog.clone()),
            )
        });
    }
    for &id in &ids {
        GroupNode::set_members(&mut sim, id, ids.clone());
    }

    // Expand fault windows into a begin/end timeline. The expansion index
    // breaks timestamp ties in schedule order (faults were sorted ahead of
    // same-time publishes by the generator).
    enum Ev {
        Pub(usize),
        Crash(usize),
        Recover(usize),
        Part(usize),
        Heal,
    }
    let mut timeline: Vec<(u64, usize, Ev)> = Vec::new();
    for op in &scenario.ops {
        let k = timeline.len();
        match *op {
            Op::Publish { node, at_ms } => timeline.push((at_ms, k, Ev::Pub(node))),
            Op::CrashWindow { node, at_ms, down_ms } => {
                timeline.push((at_ms, k, Ev::Crash(node)));
                timeline.push((at_ms + down_ms, k + 1, Ev::Recover(node)));
            }
            Op::PartitionWindow { split, at_ms, dur_ms } => {
                timeline.push((at_ms, k, Ev::Part(split)));
                timeline.push((at_ms + dur_ms, k + 1, Ev::Heal));
            }
        }
    }
    timeline.sort_by_key(|&(at, k, _)| (at, k));

    let mut trace = Trace::default();
    for &id in &ids {
        trace.deliveries.insert(id.0, Vec::new());
    }
    // The sim host's delivery log is volatile (a crash rebuilds the node),
    // so the trace accumulates increments: `consumed[i]` marks how much of
    // node i's current log incarnation is already recorded.
    let mut consumed = vec![0usize; scenario.nodes];
    let mut down = vec![false; scenario.nodes];
    let mut origin_seq = vec![0u64; scenario.nodes];
    // Incarnation counters (0 until the first crash, +1 per recovery) stamp
    // publishes and deliveries so the oracles can sever volatile guarantees
    // at crash boundaries.
    let mut incarnation = vec![0u64; scenario.nodes];
    // The causal dependency view of each node: what its *current*
    // incarnation has delivered. Cleared at a crash — a recovered process's
    // causal past restarts empty, exactly like its protocol state.
    let mut deps_view: Vec<Vec<usize>> = vec![Vec::new(); scenario.nodes];

    fn drain(
        sim: &mut SimNet,
        ids: &[NodeId],
        consumed: &mut [usize],
        incarnation: &[u64],
        deps_view: &mut [Vec<usize>],
        trace: &mut Trace,
    ) {
        for (i, &id) in ids.iter().enumerate() {
            let log = GroupNode::delivered(sim, id);
            for (origin, payload) in log.iter().skip(consumed[i]) {
                if let Some(index) = decode_payload(payload) {
                    trace
                        .deliveries
                        .get_mut(&id.0)
                        .expect("node registered")
                        .push(Delivery {
                            origin: origin.0,
                            index,
                            incarnation: incarnation[i],
                        });
                    deps_view[i].push(index);
                }
            }
            consumed[i] = log.len();
        }
    }

    let mut last_at = 0;
    for (at, _, ev) in timeline {
        sim.run_until(SimTime::from_millis(at));
        drain(&mut sim, &ids, &mut consumed, &incarnation, &mut deps_view, &mut trace);
        match ev {
            Ev::Pub(node) => {
                if down[node] {
                    continue; // defensive; the generator avoids this
                }
                let index = trace.publishes.len();
                origin_seq[node] += 1;
                trace.publishes.push(PubRecord {
                    index,
                    origin: ids[node].0,
                    origin_seq: origin_seq[node],
                    incarnation: incarnation[node],
                    deps: deps_view[node].clone(),
                });
                GroupNode::broadcast(&mut sim, ids[node], encode_payload(index));
            }
            Ev::Crash(node) => {
                // Sampled crash windows may overlap; a crash landing inside
                // an existing outage is a no-op (`SimNet::crash` on a dead
                // node does nothing), and treating it as a fresh incarnation
                // would desynchronize the trace's incarnation stamps from
                // the node's real lifecycle (discovered by fuzz seed 12805).
                if down[node] {
                    continue;
                }
                down[node] = true;
                consumed[node] = 0;
                deps_view[node].clear();
                sim.crash(ids[node]);
            }
            Ev::Recover(node) => {
                // The matching guard: the recovery of an already-skipped
                // crash (or of a node revived by an earlier overlapping
                // window) must not bump the incarnation of a live node.
                if !down[node] {
                    continue;
                }
                down[node] = false;
                incarnation[node] += 1;
                sim.recover(ids[node]);
                // Membership is host-managed; a real deployment's
                // membership service would re-announce the view.
                GroupNode::set_members(&mut sim, ids[node], ids.clone());
            }
            Ev::Part(split) => {
                let (left, right) = ids.split_at(split);
                sim.partition(&[left, right]);
            }
            Ev::Heal => sim.heal_partition(),
        }
        last_at = at;
    }
    sim.run_until(SimTime::from_millis(last_at + scenario.settle_ms));
    drain(&mut sim, &ids, &mut consumed, &incarnation, &mut deps_view, &mut trace);

    // Fold every node's telemetry snapshot into the trace: aggregated
    // `group.*` wire counters plus the per-node delivered counter the
    // telemetry oracle cross-checks against the delivery logs.
    for (i, registry) in registries.iter().enumerate() {
        let snapshot = registry.snapshot();
        for (name, value) in &snapshot.counters {
            *trace.wire.entry(name.clone()).or_insert(0) += value;
        }
        trace
            .wire_delivered
            .insert(ids[i].0, snapshot.counter("group.delivered"));
    }

    let mut violations = oracle::check_integrity(&trace);
    violations.extend(oracle::check_telemetry(&trace));
    match scenario.protocol {
        ProtocolKind::Reliable => {}
        ProtocolKind::Fifo => violations.extend(oracle::check_fifo(&trace)),
        ProtocolKind::Causal => {
            violations.extend(oracle::check_fifo(&trace));
            violations.extend(oracle::check_causal(&trace));
        }
        // Total (horizon adoption) and Certified (persistent delivered set)
        // must not re-deliver across a receiver's own crash either.
        ProtocolKind::Total => {
            violations.extend(oracle::check_total(&trace));
            violations.extend(oracle::check_no_cross_incarnation_redelivery(&trace));
        }
        ProtocolKind::Certified => {
            violations.extend(oracle::check_no_cross_incarnation_redelivery(&trace));
        }
    }
    if scenario.expects_completeness() {
        violations.extend(oracle::check_complete(&trace));
    }
    let health = oracle::check_health(&trace);
    RunOutcome { trace, violations, health, recorders }
}

/// Renders a scenario and its outcome into the canonical report format.
pub fn report(scenario: &Scenario, outcome: &RunOutcome) -> String {
    let mut out = scenario.describe();
    out.push_str(&outcome.trace.render());
    if outcome.violations.is_empty() {
        out.push_str("violations: none\n");
    } else {
        out.push_str("violations:\n");
        for v in &outcome.violations {
            out.push_str(&format!("  {v}\n"));
        }
    }
    if outcome.health.is_empty() {
        out.push_str("health: ok\n");
    } else {
        out.push_str("health:\n");
        for finding in &outcome.health {
            out.push_str(&format!("  {finding}\n"));
        }
    }
    out
}

/// The full deterministic text post-mortem of a run: the canonical report
/// followed by every node's flight-recorder dump. Byte-stable across two
/// runs of the same seed (everything in it derives from virtual time).
pub fn post_mortem(scenario: &Scenario, outcome: &RunOutcome) -> String {
    let mut out = format!("=== post-mortem seed={} ===\n", scenario.seed);
    out.push_str(&report(scenario, outcome));
    for recorder in &outcome.recorders {
        out.push_str(&recorder.dump_text());
    }
    out
}

/// JSON rendering of [`post_mortem`] (same content, machine-readable).
pub fn post_mortem_json(scenario: &Scenario, outcome: &RunOutcome) -> String {
    let mut violations = JsonValue::arr();
    for v in &outcome.violations {
        violations = violations.push(v.to_string());
    }
    let mut health = JsonValue::arr();
    for finding in &outcome.health {
        health = health.push(finding.to_string());
    }
    let mut nodes = JsonValue::arr();
    for recorder in &outcome.recorders {
        nodes = nodes.push(recorder.dump_json());
    }
    JsonValue::obj()
        .set("seed", scenario.seed)
        .set("protocol", scenario.protocol.name())
        .set("nodes_in_cluster", scenario.nodes)
        .set("violations", violations)
        .set("health", health)
        .set("nodes", nodes)
        .render()
}

/// Writes the text + JSON post-mortems of a failing run under
/// `HARNESS_DUMP_DIR` (if set) and renders the failure context that goes
/// into the seed's error report: the dump paths plus the last flight
/// recorder events of the node the first violation implicates.
fn dump_failure(seed: u64, scenario: &Scenario, outcome: &RunOutcome) -> String {
    let mut out = String::new();
    if let Some(v) = outcome.violations.first() {
        let node = v.node();
        if let Some(recorder) = outcome.recorders.get(node as usize) {
            out.push_str(&format!("last flight-recorder events of node {node}:\n"));
            for event in recorder.last(10) {
                out.push_str(&format!("  {}\n", event.render()));
            }
        }
    }
    if let Ok(dir) = std::env::var("HARNESS_DUMP_DIR") {
        let base = std::path::PathBuf::from(dir);
        if std::fs::create_dir_all(&base).is_ok() {
            let txt = base.join(format!("postmortem_seed{seed}.txt"));
            let json = base.join(format!("postmortem_seed{seed}.json"));
            let txt_ok = std::fs::write(&txt, post_mortem(scenario, outcome)).is_ok();
            let json_ok = std::fs::write(&json, post_mortem_json(scenario, outcome)).is_ok();
            if txt_ok && json_ok {
                out.push_str(&format!(
                    "post-mortem dumped to: {} and {}\n",
                    txt.display(),
                    json.display()
                ));
            }
        }
    }
    out
}

/// Greedy schedule shrinking: while the failure reproduces, delete
/// operations one at a time, then try zero loss and fixed latency. The
/// result is the smallest schedule this pass structure can reach — enough
/// to read a counterexample at a glance.
pub fn shrink(scenario: &Scenario, make: &ProtoFactory) -> Scenario {
    let violates = |s: &Scenario| !run_scenario_with(s, Arc::clone(make)).violations.is_empty();
    let mut current = scenario.clone();
    loop {
        let mut progressed = false;
        let mut i = 0;
        while i < current.ops.len() {
            let mut candidate = current.clone();
            candidate.ops.remove(i);
            if violates(&candidate) {
                current = candidate;
                progressed = true;
            } else {
                i += 1;
            }
        }
        if current.loss > 0.0 {
            let mut candidate = current.clone();
            candidate.loss = 0.0;
            if violates(&candidate) {
                current = candidate;
                progressed = true;
            }
        }
        if current.latency_ms.0 != current.latency_ms.1 {
            let mut candidate = current.clone();
            candidate.latency_ms = (1, 1);
            if violates(&candidate) {
                current = candidate;
                progressed = true;
            }
        }
        if !progressed {
            return current;
        }
    }
}

/// Runs one seed end to end: determinism check (two runs must render
/// byte-identical traces), then the invariant oracles; on failure, shrinks
/// and returns a replayable report.
pub fn check_seed(seed: u64) -> Result<(), String> {
    let scenario = Scenario::generate(seed);
    let protocol = scenario.protocol;
    check_scenario_with(&scenario, Arc::new(move || protocol.make()))
}

/// The full [`check_seed`] pipeline — determinism check, invariant
/// oracles, schedule shrinking, post-mortem dumping (`HARNESS_DUMP_DIR`) —
/// against an arbitrary protocol factory, so defective or experimental
/// protocols can be regression-pinned with the same failure workflow the
/// fuzzer uses.
pub fn check_scenario_with(scenario: &Scenario, make: ProtoFactory) -> Result<(), String> {
    let seed = scenario.seed;
    let first = run_scenario_with(scenario, Arc::clone(&make));
    let second = run_scenario_with(scenario, Arc::clone(&make));
    let rendered = report(scenario, &first);
    if rendered != report(scenario, &second) {
        return Err(format!(
            "seed {seed}: NONDETERMINISM — two runs of the same scenario diverged\n\
             first run:\n{rendered}"
        ));
    }
    if first.violations.is_empty() {
        return Ok(());
    }
    let shrunk = shrink(scenario, &make);
    let shrunk_outcome = run_scenario_with(&shrunk, make);
    Err(format!(
        "seed {seed} ({}, {} nodes): {} invariant violation(s)\n\
         replay with: HARNESS_SEED={seed} cargo test --test harness_smoke\n\
         {}\
         === original run ===\n{}\
         === shrunk counterexample ({} ops) ===\n{}",
        scenario.protocol.name(),
        scenario.nodes,
        first.violations.len(),
        dump_failure(seed, scenario, &first),
        rendered,
        shrunk.ops.len(),
        report(&shrunk, &shrunk_outcome),
    ))
}

/// Smoke entry point: checks each seed in turn, stopping at the first
/// failure with its full report.
pub fn smoke(seeds: &[u64]) -> Result<(), String> {
    for &seed in seeds {
        check_seed(seed)?;
    }
    Ok(())
}

/// The seed list for the tier-1 smoke test: `HARNESS_SEED` (replay one
/// seed) overrides the default `0..count` sweep.
pub fn smoke_seeds(count: u64) -> Vec<u64> {
    match std::env::var("HARNESS_SEED") {
        Ok(value) => {
            let seed = value
                .trim()
                .parse()
                .unwrap_or_else(|_| panic!("HARNESS_SEED must be a u64, got {value:?}"));
            vec![seed]
        }
        Err(_) => (0..count).collect(),
    }
}

/// Seeds for the long fuzz mode: `HARNESS_FUZZ=N` enables a sweep of `N`
/// fresh seeds (offset away from the smoke range); unset means skip.
pub fn fuzz_seeds() -> Option<Vec<u64>> {
    let value = std::env::var("HARNESS_FUZZ").ok()?;
    let count: u64 = value
        .trim()
        .parse()
        .unwrap_or_else(|_| panic!("HARNESS_FUZZ must be a u64, got {value:?}"));
    Some((10_000..10_000 + count).collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Regression for fuzz seed 12805: the generator drew two overlapping
    /// crash windows for one node. The second window's crash is a no-op on
    /// an already-dead node, so its recovery must not bump the incarnation
    /// of the (by then live) node — the phantom incarnation made the FIFO
    /// oracle misread an in-order delivery as a post-restart gap.
    #[test]
    fn seed_12805_overlapping_crash_windows() {
        assert!(check_seed(12805).is_ok(), "{}", check_seed(12805).unwrap_err());
    }

    /// The same defect as a literal schedule, immune to future generator
    /// re-tuning: windows [165, 495] and [471, 959] overlap, and both
    /// publishes arrive while the receiver is continuously up.
    #[test]
    fn overlapping_crash_windows_keep_incarnation_stamps_truthful() {
        let scenario = Scenario {
            seed: 12805,
            protocol: ProtocolKind::Fifo,
            nodes: 2,
            loss: 0.0,
            latency_ms: (1, 1),
            settle_ms: 6_000,
            ops: vec![
                Op::CrashWindow { node: 0, at_ms: 165, down_ms: 330 },
                Op::CrashWindow { node: 0, at_ms: 471, down_ms: 488 },
                Op::Publish { node: 1, at_ms: 614 },
                Op::Publish { node: 1, at_ms: 1_194 },
            ],
        };
        let outcome = run_scenario(&scenario);
        assert!(
            outcome.violations.is_empty(),
            "{}",
            report(&scenario, &outcome)
        );
        // Both deliveries at node 0 carry the single real incarnation.
        let log = &outcome.trace.deliveries[&0];
        assert_eq!(log.len(), 2);
        assert!(log.iter().all(|d| d.incarnation == 1), "{}", outcome.trace.render());
    }
}
