//! Lightweight probabilistic broadcast (gossip), after [EGH+01].
//!
//! DACE's scalable substrate: "primitives with weaker guarantees but strong
//! focus on scalability … gossip-based protocols, e.g. [EGH+01]" (§4.2).
//! Each process buffers recently seen events and, every gossip period,
//! pushes its buffer to `fanout` randomly chosen members. Events carry a
//! hop-limited round counter; the buffer is bounded, evicting oldest events
//! first. Delivery is probabilistic: with fanout ≈ ln(n) + c the delivery
//! ratio approaches 1 — experiment E4 sweeps exactly that trade-off.

use std::collections::HashSet;

use rand::seq::SliceRandom;
use serde::{Deserialize, Serialize};

use psc_codec::WireBytes;
use psc_simnet::{Duration, NodeId};

use crate::io::{decode_msg, encode_msg, GroupIo, Multicast, TimerToken};
use crate::reliable::MsgId;

const GOSSIP: TimerToken = TimerToken(3);

/// Tuning parameters of [`Lpbcast`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LpbcastConfig {
    /// Number of members gossiped to per round.
    pub fanout: usize,
    /// Gossip period.
    pub interval: Duration,
    /// Rounds an event stays in the buffer (hop limit).
    pub rounds: u32,
    /// Maximum buffered events; oldest evicted beyond this.
    pub max_buffer: usize,
}

impl Default for LpbcastConfig {
    fn default() -> Self {
        LpbcastConfig {
            fanout: 4,
            interval: Duration::from_millis(10),
            rounds: 8,
            max_buffer: 256,
        }
    }
}

#[derive(Debug, Clone, Serialize, Deserialize)]
struct Event {
    id: MsgId,
    rounds_left: u32,
    payload: WireBytes,
}

#[derive(Debug, Serialize, Deserialize)]
struct Gossip {
    events: Vec<Event>,
}

/// Push-gossip probabilistic broadcast with a bounded event buffer.
#[derive(Debug)]
pub struct Lpbcast {
    config: LpbcastConfig,
    /// This incarnation's epoch (see [`MsgId`]).
    epoch: u64,
    next_seq: u64,
    seen: HashSet<MsgId>,
    buffer: Vec<Event>,
}

impl Lpbcast {
    /// Creates an instance with the given tuning.
    pub fn new(config: LpbcastConfig) -> Self {
        Lpbcast {
            config,
            epoch: 0,
            next_seq: 0,
            seen: HashSet::new(),
            buffer: Vec::new(),
        }
    }

    /// Current buffer occupancy (diagnostics).
    pub fn buffer_len(&self) -> usize {
        self.buffer.len()
    }

    fn buffer_event(&mut self, event: Event) {
        if event.rounds_left == 0 {
            return;
        }
        if self.buffer.len() >= self.config.max_buffer {
            // Evict the oldest (front) — [EGH+01]'s bounded buffers.
            self.buffer.remove(0);
        }
        self.buffer.push(event);
    }

    fn gossip_round(&mut self, io: &mut dyn GroupIo) {
        if !self.buffer.is_empty() {
            io.metric("lpbcast.gossip_rounds", 1);
            let me = io.self_id();
            let mut others: Vec<NodeId> =
                io.members().iter().copied().filter(|&m| m != me).collect();
            let fanout = self.config.fanout.min(others.len());
            // Partial-view selection: `fanout` random targets per round.
            others.shuffle(io.rng());
            let targets: Vec<NodeId> = others.into_iter().take(fanout).collect();
            let bytes = encode_msg(&Gossip {
                events: self.buffer.clone(),
            });
            for target in targets {
                io.send(target, bytes.clone());
            }
            // Age out events.
            for event in &mut self.buffer {
                event.rounds_left = event.rounds_left.saturating_sub(1);
            }
            self.buffer.retain(|e| e.rounds_left > 0);
        }
        io.set_timer(self.config.interval, GOSSIP);
    }
}

impl Multicast for Lpbcast {
    fn broadcast(&mut self, io: &mut dyn GroupIo, payload: WireBytes) {
        io.metric("lpbcast.broadcasts", 1);
        let me = io.self_id();
        self.next_seq += 1;
        let id = MsgId {
            origin: me,
            epoch: self.epoch,
            seq: self.next_seq,
        };
        self.seen.insert(id);
        self.buffer_event(Event {
            id,
            rounds_left: self.config.rounds,
            payload: payload.clone(),
        });
        if io.members().contains(&me) {
            io.deliver(me, payload);
        }
    }

    fn on_message(&mut self, io: &mut dyn GroupIo, _from: NodeId, bytes: &[u8]) {
        let Some(gossip) = decode_msg::<Gossip>(bytes) else {
            return;
        };
        for event in gossip.events {
            if !self.seen.insert(event.id) {
                io.metric("lpbcast.duplicates", 1);
                continue;
            }
            io.deliver(event.id.origin, event.payload.clone());
            self.buffer_event(Event {
                rounds_left: event.rounds_left.saturating_sub(1),
                ..event
            });
        }
    }

    fn on_timer(&mut self, io: &mut dyn GroupIo, token: TimerToken) {
        if token == GOSSIP {
            self.gossip_round(io);
        }
    }

    fn on_start(&mut self, io: &mut dyn GroupIo) {
        self.epoch = io.now().as_millis();
        io.set_timer(self.config.interval, GOSSIP);
    }

    fn on_recover(&mut self, io: &mut dyn GroupIo) {
        self.epoch = io.now().as_millis();
        io.set_timer(self.config.interval, GOSSIP);
    }

    fn proto_name(&self) -> &'static str {
        "lpbcast"
    }

    fn queue_depths(&self) -> Vec<(&'static str, u64)> {
        vec![("lpbcast.buffer", self.buffer_len() as u64)]
    }

    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }
}
