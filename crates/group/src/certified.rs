//! Certified delivery: the paper's *Certified* semantics.
//!
//! "With such obvents, even if a notifiable temporarily disconnects or
//! fails, it will eventually deliver the obvent" (§3.1.2). The publisher
//! logs every message in stable storage together with the member set it
//! must reach, retransmits periodically until each member acknowledges, and
//! survives its own crashes by rebuilding the log on recovery. Subscribers
//! persist the set of delivered message ids so a retransmission after
//! recovery is acknowledged but not re-delivered (exactly-once delivery
//! across failures).

use std::collections::{BTreeMap, HashSet};

use serde::{Deserialize, Serialize};

use psc_codec::WireBytes;
use psc_simnet::{Duration, NodeId};

use crate::io::{decode_msg, encode_msg, GroupIo, Multicast, TimerToken};
use crate::reliable::MsgId;

const RETRANSMIT: TimerToken = TimerToken(2);

const KEY_SEQ: &str = "cert/seq";
const KEY_DELIVERED: &str = "cert/delivered";
const KEY_LOG_PREFIX: &str = "cert/log/";

#[derive(Debug, Serialize, Deserialize)]
enum Msg {
    Data { id: MsgId, payload: WireBytes },
    Ack { id: MsgId },
}

/// A logged outgoing message awaiting acknowledgements.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct LogEntry {
    id: MsgId,
    payload: WireBytes,
    /// Members that must acknowledge.
    targets: Vec<NodeId>,
    /// Members that have acknowledged.
    acked: Vec<NodeId>,
}

/// Certified (crash-surviving, exactly-once) broadcast.
#[derive(Debug)]
pub struct Certified {
    retransmit_interval: Duration,
    /// Outgoing log, mirrored in stable storage.
    log: BTreeMap<u64, LogEntry>,
    /// Ids delivered locally, mirrored in stable storage.
    delivered: HashSet<MsgId>,
    timer_armed: bool,
    loaded: bool,
}

impl Default for Certified {
    fn default() -> Self {
        Certified::new()
    }
}

impl Certified {
    /// Creates a certified-broadcast instance with the default 50 ms
    /// retransmission interval.
    pub fn new() -> Self {
        Certified::with_interval(Duration::from_millis(50))
    }

    /// Creates an instance with a custom retransmission interval.
    pub fn with_interval(retransmit_interval: Duration) -> Self {
        Certified {
            retransmit_interval,
            log: BTreeMap::new(),
            delivered: HashSet::new(),
            timer_armed: false,
            loaded: false,
        }
    }

    /// Outgoing messages not yet fully acknowledged (diagnostics).
    pub fn unacked_len(&self) -> usize {
        self.log.len()
    }

    /// Number of distinct messages delivered locally (diagnostics).
    pub fn delivered_len(&self) -> usize {
        self.delivered.len()
    }

    fn load(&mut self, io: &mut dyn GroupIo) {
        if self.loaded {
            return;
        }
        self.loaded = true;
        let storage = io.storage();
        if let Ok(Some(ids)) = storage.get::<Vec<MsgId>>(KEY_DELIVERED) {
            self.delivered = ids.into_iter().collect();
        }
        for key in storage.keys_with_prefix(KEY_LOG_PREFIX) {
            if let Ok(Some(entry)) = storage.get::<LogEntry>(&key) {
                self.log.insert(entry.id.seq, entry);
            }
        }
    }

    fn persist_entry(&self, io: &mut dyn GroupIo, entry: &LogEntry) {
        io.storage()
            .put(&format!("{KEY_LOG_PREFIX}{:020}", entry.id.seq), entry)
            .expect("log entry serialization cannot fail");
    }

    fn persist_delivered(&self, io: &mut dyn GroupIo) {
        let ids: Vec<MsgId> = self.delivered.iter().copied().collect();
        io.storage()
            .put(KEY_DELIVERED, &ids)
            .expect("delivered-set serialization cannot fail");
    }

    fn arm_timer(&mut self, io: &mut dyn GroupIo) {
        if !self.timer_armed && !self.log.is_empty() {
            self.timer_armed = true;
            io.set_timer(self.retransmit_interval, RETRANSMIT);
        }
    }

    /// The data-message identity inside `bytes`, if it is a `Data` frame
    /// (snapshot in-flight recording).
    pub(crate) fn peek_id(bytes: &[u8]) -> Option<MsgId> {
        match decode_msg::<Msg>(bytes)? {
            Msg::Data { id, .. } => Some(id),
            Msg::Ack { .. } => None,
        }
    }

    fn send_entry(io: &mut dyn GroupIo, entry: &LogEntry) {
        let bytes = encode_msg(&Msg::Data {
            id: entry.id,
            payload: entry.payload.clone(),
        });
        for &target in &entry.targets {
            if !entry.acked.contains(&target) && target != io.self_id() {
                io.send(target, bytes.clone());
            }
        }
    }
}

impl Multicast for Certified {
    fn broadcast(&mut self, io: &mut dyn GroupIo, payload: WireBytes) {
        io.metric("certified.broadcasts", 1);
        self.load(io);
        let me = io.self_id();
        let seq: u64 = io
            .storage()
            .get(KEY_SEQ)
            .expect("sequence entry readable")
            .unwrap_or(0)
            + 1;
        io.storage()
            .put(KEY_SEQ, &seq)
            .expect("sequence serialization cannot fail");
        // Constant epoch: the persistent counter makes cross-incarnation id
        // collisions impossible, and the delivered set must keep suppressing
        // pre-crash retransmissions after recovery (see `MsgId`).
        let id = MsgId {
            origin: me,
            epoch: 0,
            seq,
        };
        let targets: Vec<NodeId> = io.members().iter().copied().filter(|&m| m != me).collect();
        let entry = LogEntry {
            id,
            payload: payload.clone(),
            targets,
            acked: Vec::new(),
        };
        self.persist_entry(io, &entry);
        Certified::send_entry(io, &entry);
        let fully_acked = entry.targets.is_empty();
        self.log.insert(seq, entry);
        if fully_acked {
            self.log.remove(&seq);
            io.storage().remove(&format!("{KEY_LOG_PREFIX}{seq:020}"));
        }
        // Local delivery if the publisher is a member.
        if io.members().contains(&me) && self.delivered.insert(id) {
            self.persist_delivered(io);
            io.deliver(me, payload);
        }
        self.arm_timer(io);
    }

    fn on_message(&mut self, io: &mut dyn GroupIo, from: NodeId, bytes: &[u8]) {
        self.load(io);
        let Some(msg) = decode_msg::<Msg>(bytes) else {
            return;
        };
        match msg {
            Msg::Data { id, payload } => {
                // Always (re-)acknowledge; deliver only the first time.
                io.metric("certified.acks_sent", 1);
                io.send(from, encode_msg(&Msg::Ack { id }));
                if self.delivered.insert(id) {
                    self.persist_delivered(io);
                    io.deliver(id.origin, payload);
                } else {
                    io.metric("certified.duplicates", 1);
                }
            }
            Msg::Ack { id } => {
                let Some(entry) = self.log.get_mut(&id.seq) else {
                    return;
                };
                if entry.id != id {
                    return;
                }
                if !entry.acked.contains(&from) {
                    entry.acked.push(from);
                }
                if entry.targets.iter().all(|t| entry.acked.contains(t)) {
                    self.log.remove(&id.seq);
                    io.storage().remove(&format!("{KEY_LOG_PREFIX}{:020}", id.seq));
                } else {
                    let entry = entry.clone();
                    self.persist_entry(io, &entry);
                }
            }
        }
    }

    fn on_timer(&mut self, io: &mut dyn GroupIo, token: TimerToken) {
        if token != RETRANSMIT {
            return;
        }
        self.timer_armed = false;
        self.load(io);
        io.metric("certified.retransmits", self.log.len() as u64);
        for entry in self.log.values() {
            Certified::send_entry(io, entry);
        }
        self.arm_timer(io);
    }

    fn on_start(&mut self, io: &mut dyn GroupIo) {
        self.load(io);
        self.arm_timer(io);
    }

    fn on_recover(&mut self, io: &mut dyn GroupIo) {
        // Fresh instance: rebuild volatile state from stable storage and
        // resume retransmission of anything unacknowledged.
        self.loaded = false;
        self.load(io);
        self.arm_timer(io);
    }

    fn capture(&mut self, io: &mut dyn GroupIo) -> psc_snapshot::ProtoCapture {
        self.load(io);
        let mut cap = psc_snapshot::ProtoCapture::new(self.proto_name());
        // Constant epoch 0 and a persistent counter; see `broadcast`.
        cap.next_seq = io.storage().get::<u64>(KEY_SEQ).ok().flatten().unwrap_or(0);
        cap.delivered = self
            .delivered
            .iter()
            .map(|id| psc_snapshot::MsgRef::new(id.origin.0, id.epoch, id.seq))
            .collect();
        cap.retransmit = self
            .log
            .values()
            .map(|entry| psc_snapshot::RetransmitEntry {
                id: psc_snapshot::MsgRef::new(entry.id.origin.0, entry.id.epoch, entry.id.seq),
                targets: entry.targets.iter().map(|n| n.0).collect(),
                acked: entry.acked.iter().map(|n| n.0).collect(),
            })
            .collect();
        cap.normalize();
        cap
    }

    fn proto_name(&self) -> &'static str {
        "certified"
    }

    fn queue_depths(&self) -> Vec<(&'static str, u64)> {
        vec![("certified.unacked", self.unacked_len() as u64)]
    }

    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }
}
