//! Causally ordered broadcast: the paper's *Causally ordered* semantics.
//!
//! "This type of obvents are delivered in the order they are published, as
//! determined by the happens-before relationship [Lam78]" (§3.1.2). The
//! classic vector-clock construction: each broadcast carries the origin's
//! vector clock; a receiver holds a message from origin `j` back until it
//! has delivered (a) `j`'s previous broadcast and (b) every broadcast that
//! happened-before it at other processes. Transport is the eager reliable
//! relay, since causal order subsumes reliability in the paper's lattice
//! (`CausalOrder extends FIFOOrder extends Reliable`).
//!
//! Clock entries are tagged with the counted process's *incarnation epoch*
//! (see [`MsgId`]): a crashed process loses its counters, so its next
//! incarnation restarts at 1 under a strictly greater epoch. Receivers
//! treat a dependency on a dead incarnation as *severed* — messages of an
//! abandoned incarnation that never arrived are permanently lost in a
//! volatile protocol, and waiting for them would block the new incarnation
//! forever.

use std::collections::{HashMap, HashSet};

use serde::{Deserialize, Serialize};

use psc_codec::WireBytes;
use psc_simnet::NodeId;

use crate::io::{decode_msg, encode_msg, GroupIo, Multicast};
use crate::reliable::MsgId;

/// One component of an epoch-tagged vector clock: `count` broadcasts
/// delivered from `node`'s incarnation `epoch`.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
struct ClockEntry {
    node: NodeId,
    epoch: u64,
    count: u64,
}

#[derive(Debug, Serialize, Deserialize)]
struct Data {
    id: MsgId,
    /// Causal dependencies on processes other than the origin; the origin
    /// component is `id` itself (`id.epoch`/`id.seq`).
    deps: Vec<ClockEntry>,
    payload: WireBytes,
}

/// Vector-clock causal broadcast over eager reliable relay.
#[derive(Debug, Default)]
pub struct Causal {
    /// This incarnation's epoch (see [`MsgId`]).
    epoch: u64,
    next_seq: u64,
    seen: HashSet<MsgId>,
    /// Latest delivered broadcast per origin: (incarnation epoch, counter
    /// within that incarnation).
    delivered: HashMap<NodeId, (u64, u64)>,
    /// Messages awaiting their causal predecessors.
    pending: Vec<Data>,
}

impl Causal {
    /// Creates a causal-broadcast instance.
    pub fn new() -> Self {
        Causal::default()
    }

    /// Number of messages currently held back (diagnostics).
    pub fn pending_len(&self) -> usize {
        self.pending.len()
    }

    /// Delivered counter for `node`'s *current* known incarnation
    /// (diagnostics / assertions).
    pub fn delivered_count(&self, node: NodeId) -> u64 {
        self.delivered.get(&node).map_or(0, |&(_, c)| c)
    }

    fn relay(&self, io: &mut dyn GroupIo, data: &Data) {
        let me = io.self_id();
        let bytes = encode_msg(data);
        for member in io.members().to_vec() {
            if member != me {
                io.send(member, bytes.clone());
            }
        }
    }

    /// True when `data` is deliverable given the local delivered-clock.
    fn deliverable(&self, data: &Data) -> bool {
        // Origin component: the next message of the incarnation we are
        // tracking — or the first message of a newer incarnation, which
        // severs the (unrecoverable) tail of the old one.
        let (le, lc) = *self.delivered.get(&data.id.origin).unwrap_or(&(0, 0));
        let origin_ok = (data.id.epoch == le && data.id.seq == lc + 1)
            || (data.id.epoch > le && data.id.seq == 1);
        if !origin_ok {
            return false;
        }
        // Other components: satisfied once we delivered at least as much of
        // that incarnation, or once that incarnation is already superseded
        // locally (its undelivered tail is lost for good).
        data.deps.iter().all(|dep| {
            let (le, lc) = *self.delivered.get(&dep.node).unwrap_or(&(0, 0));
            dep.epoch < le || (dep.epoch == le && dep.count <= lc)
        })
    }

    fn accept(&mut self, io: &mut dyn GroupIo, data: Data) {
        if !self.deliverable(&data) {
            io.metric("causal.held_back", 1);
        }
        self.pending.push(data);
        // Drain everything that became deliverable, to fixpoint.
        while let Some(pos) = self.pending.iter().position(|d| self.deliverable(d)) {
            let data = self.pending.swap_remove(pos);
            self.delivered
                .insert(data.id.origin, (data.id.epoch, data.id.seq));
            io.deliver(data.id.origin, data.payload);
        }
        // Drop stragglers of incarnations we have already moved past; they
        // can never become deliverable.
        let delivered = &self.delivered;
        self.pending.retain(|d| {
            delivered
                .get(&d.id.origin)
                .is_none_or(|&(le, _)| d.id.epoch >= le)
        });
    }
}

impl Multicast for Causal {
    fn broadcast(&mut self, io: &mut dyn GroupIo, payload: WireBytes) {
        io.metric("causal.broadcasts", 1);
        let me = io.self_id();
        self.next_seq += 1;
        let id = MsgId {
            origin: me,
            epoch: self.epoch,
            seq: self.next_seq,
        };
        // Dependencies: everything delivered here from other processes.
        let deps: Vec<ClockEntry> = self
            .delivered
            .iter()
            .filter(|&(&node, _)| node != me)
            .map(|(&node, &(epoch, count))| ClockEntry { node, epoch, count })
            .collect();
        let data = Data { id, deps, payload };
        self.seen.insert(id);
        self.relay(io, &data);
        if io.members().contains(&me) {
            self.accept(io, data);
        }
    }

    fn on_message(&mut self, io: &mut dyn GroupIo, _from: NodeId, bytes: &[u8]) {
        let Some(data) = decode_msg::<Data>(bytes) else {
            return;
        };
        if !self.seen.insert(data.id) {
            io.metric("causal.duplicates", 1);
            return;
        }
        self.relay(io, &data);
        self.accept(io, data);
    }

    fn on_start(&mut self, io: &mut dyn GroupIo) {
        self.epoch = io.now().as_millis();
    }

    fn on_recover(&mut self, io: &mut dyn GroupIo) {
        self.epoch = io.now().as_millis();
    }

    fn proto_name(&self) -> &'static str {
        "causal"
    }

    fn queue_depths(&self) -> Vec<(&'static str, u64)> {
        vec![("causal.pending", self.pending_len() as u64)]
    }

    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }
}
