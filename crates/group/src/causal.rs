//! Causally ordered broadcast: the paper's *Causally ordered* semantics.
//!
//! "This type of obvents are delivered in the order they are published, as
//! determined by the happens-before relationship [Lam78]" (§3.1.2). The
//! classic vector-clock construction: each broadcast carries the origin's
//! vector clock; a receiver holds a message from origin `j` back until it
//! has delivered (a) `j`'s previous broadcast and (b) every broadcast that
//! happened-before it at other processes. Transport is the eager reliable
//! relay, since causal order subsumes reliability in the paper's lattice
//! (`CausalOrder extends FIFOOrder extends Reliable`).
//!
//! Clock entries are tagged with the counted process's *incarnation epoch*
//! (see [`MsgId`]): a crashed process loses its counters, so its next
//! incarnation restarts at 1 under a strictly greater epoch. Receivers
//! treat a dependency on a dead incarnation as *severed* — messages of an
//! abandoned incarnation that never arrived are permanently lost in a
//! volatile protocol, and waiting for them would block the new incarnation
//! forever.
//!
//! ## Bounded duplicate suppression (matrix-clock GC)
//!
//! The eager relay needs a `seen` set to stop relay storms and duplicate
//! deliveries — but kept naively it grows with every message ever
//! broadcast, which is unbounded retention on a long-lived group. The
//! classic matrix-clock bound [SES89-style] fixes this: every broadcast
//! already carries its origin's delivered vector (the `deps`), so each
//! receipt teaches us a row of the *matrix clock* — what the origin had
//! delivered when it published. The column-wise minimum over all members
//! is then a floor: every member has delivered the origin's messages up
//! to it, so no correct member will ever relay them again, and their
//! `seen` entries can be dropped. A *watermark guard* in `accept` makes
//! the GC safe against the bounded number of copies still in flight: any
//! arrival at or below the delivered watermark (or from a dead
//! incarnation) is discarded before it can re-deliver or park forever.

use std::collections::{HashMap, HashSet};

use serde::{Deserialize, Serialize};

use psc_codec::WireBytes;
use psc_simnet::NodeId;
use psc_snapshot::MatrixClock;

use crate::io::{decode_msg, encode_msg, GroupIo, Multicast};
use crate::reliable::MsgId;

/// One component of an epoch-tagged vector clock: `count` broadcasts
/// delivered from `node`'s incarnation `epoch`.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
struct ClockEntry {
    node: NodeId,
    epoch: u64,
    count: u64,
}

#[derive(Debug, Serialize, Deserialize)]
struct Data {
    id: MsgId,
    /// Causal dependencies on processes other than the origin; the origin
    /// component is `id` itself (`id.epoch`/`id.seq`).
    deps: Vec<ClockEntry>,
    payload: WireBytes,
}

/// Vector-clock causal broadcast over eager reliable relay.
#[derive(Debug, Default)]
pub struct Causal {
    /// This incarnation's epoch (see [`MsgId`]).
    epoch: u64,
    next_seq: u64,
    seen: HashSet<MsgId>,
    /// Latest delivered broadcast per origin: (incarnation epoch, counter
    /// within that incarnation).
    delivered: HashMap<NodeId, (u64, u64)>,
    /// Messages awaiting their causal predecessors.
    pending: Vec<Data>,
    /// What each member is known to have delivered (its row, learned from
    /// the dependency vectors its broadcasts carry); the column minimum
    /// bounds `seen` GC. Entries always refer to the incarnation this node
    /// currently tracks for the counted process.
    matrix: MatrixClock,
    /// Total `seen` entries reclaimed by the matrix-clock bound.
    gc_reclaimed: u64,
}

impl Causal {
    /// Creates a causal-broadcast instance.
    pub fn new() -> Self {
        Causal::default()
    }

    /// Number of messages currently held back (diagnostics).
    pub fn pending_len(&self) -> usize {
        self.pending.len()
    }

    /// Current size of the duplicate-suppression set (diagnostics; bounded
    /// by the matrix-clock GC under all-to-all traffic).
    pub fn seen_len(&self) -> usize {
        self.seen.len()
    }

    /// Total `seen` entries reclaimed so far (diagnostics).
    pub fn gc_reclaimed(&self) -> u64 {
        self.gc_reclaimed
    }

    /// Delivered counter for `node`'s *current* known incarnation
    /// (diagnostics / assertions).
    pub fn delivered_count(&self, node: NodeId) -> u64 {
        self.delivered.get(&node).map_or(0, |&(_, c)| c)
    }

    /// The data-message identity inside `bytes` (snapshot in-flight
    /// recording; every causal frame is a data frame).
    pub(crate) fn peek_id(bytes: &[u8]) -> Option<MsgId> {
        decode_msg::<Data>(bytes).map(|data| data.id)
    }

    fn relay(&self, io: &mut dyn GroupIo, data: &Data) {
        let me = io.self_id();
        let bytes = encode_msg(data);
        for member in io.members().to_vec() {
            if member != me {
                io.send(member, bytes.clone());
            }
        }
    }

    /// True when `data` is deliverable given the local delivered-clock.
    fn deliverable(&self, data: &Data) -> bool {
        // Origin component: the next message of the incarnation we are
        // tracking — or the first message of a newer incarnation, which
        // severs the (unrecoverable) tail of the old one.
        let (le, lc) = *self.delivered.get(&data.id.origin).unwrap_or(&(0, 0));
        let origin_ok = (data.id.epoch == le && data.id.seq == lc + 1)
            || (data.id.epoch > le && data.id.seq == 1);
        if !origin_ok {
            return false;
        }
        // Other components: satisfied once we delivered at least as much of
        // that incarnation, or once that incarnation is already superseded
        // locally (its undelivered tail is lost for good).
        data.deps.iter().all(|dep| {
            let (le, lc) = *self.delivered.get(&dep.node).unwrap_or(&(0, 0));
            dep.epoch < le || (dep.epoch == le && dep.count <= lc)
        })
    }

    fn accept(&mut self, io: &mut dyn GroupIo, data: Data) {
        // Watermark duplicate guard: `seen` is GC'd below the matrix-clock
        // floor, so a straggling relay of an old message can get past the
        // set again. Anything at or below the delivered watermark (or from
        // a dead incarnation) was already delivered or is permanently lost
        // — drop it before it can re-deliver or park in `pending` forever.
        let (le, lc) = *self.delivered.get(&data.id.origin).unwrap_or(&(0, 0));
        if data.id.epoch < le || (data.id.epoch == le && data.id.seq <= lc) {
            io.metric("causal.watermark_drops", 1);
            return;
        }
        if !self.deliverable(&data) {
            io.metric("causal.held_back", 1);
        }
        self.pending.push(data);
        let me = io.self_id();
        // Drain everything that became deliverable, to fixpoint.
        while let Some(pos) = self.pending.iter().position(|d| self.deliverable(d)) {
            let data = self.pending.swap_remove(pos);
            let prev = self
                .delivered
                .insert(data.id.origin, (data.id.epoch, data.id.seq));
            if prev.is_some_and(|(pe, _)| pe != data.id.epoch) {
                // An incarnation we track changed: matrix entries counting
                // the old incarnation are now overstatements (the new one
                // restarted at 1). Start the matrix over from this node's
                // own delivered state; peers' rows repopulate from their
                // subsequent traffic.
                self.matrix = MatrixClock::new();
                for (&node, &(_, count)) in &self.delivered {
                    self.matrix.observe_entry(me.0, node.0, count);
                }
            } else {
                self.matrix.observe_entry(me.0, data.id.origin.0, data.id.seq);
            }
            io.deliver(data.id.origin, data.payload);
        }
        // Drop stragglers of incarnations we have already moved past; they
        // can never become deliverable.
        let delivered = &self.delivered;
        self.pending.retain(|d| {
            delivered
                .get(&d.id.origin)
                .is_none_or(|&(le, _)| d.id.epoch >= le)
        });
        self.gc_seen(io);
    }

    /// Teaches the matrix `data`'s origin's row: the dependency vector is a
    /// faithful image of what the origin had delivered when it broadcast.
    /// Entries are only incorporated when they refer to the incarnation
    /// this node currently tracks for the counted process — skipping a
    /// mismatched entry just delays GC, never unsounds it.
    fn learn(&mut self, data: &Data) {
        let origin = data.id.origin;
        let (le, _) = *self.delivered.get(&origin).unwrap_or(&(0, 0));
        if data.id.epoch == le {
            self.matrix.observe_entry(origin.0, origin.0, data.id.seq);
        }
        for dep in &data.deps {
            let (le, _) = *self.delivered.get(&dep.node).unwrap_or(&(0, 0));
            if dep.epoch == le {
                self.matrix.observe_entry(origin.0, dep.node.0, dep.count);
            }
        }
    }

    /// Reclaims `seen` entries below the matrix-clock floor: an id every
    /// member is known to have delivered can never be relayed again by a
    /// correct member, and the watermark guard in [`Causal::accept`]
    /// swallows the bounded number of copies still in flight.
    fn gc_seen(&mut self, io: &mut dyn GroupIo) {
        let members = io.members();
        if members.is_empty() {
            return;
        }
        let before = self.seen.len();
        let delivered = &self.delivered;
        let matrix = &self.matrix;
        self.seen.retain(|id| {
            let (le, _) = *delivered.get(&id.origin).unwrap_or(&(0, 0));
            if id.epoch != le {
                // Dead incarnations are unconditionally reclaimable (the
                // guard drops their stragglers); newer ones are kept.
                return id.epoch > le;
            }
            id.seq > matrix.min_entry(id.origin.0, members.iter().map(|n| n.0))
        });
        let reclaimed = (before - self.seen.len()) as u64;
        if reclaimed > 0 {
            self.gc_reclaimed += reclaimed;
            io.metric("causal.seen_gced", reclaimed);
        }
    }
}

impl Multicast for Causal {
    fn broadcast(&mut self, io: &mut dyn GroupIo, payload: WireBytes) {
        io.metric("causal.broadcasts", 1);
        let me = io.self_id();
        self.next_seq += 1;
        let id = MsgId {
            origin: me,
            epoch: self.epoch,
            seq: self.next_seq,
        };
        // Dependencies: everything delivered here from other processes.
        let deps: Vec<ClockEntry> = self
            .delivered
            .iter()
            .filter(|&(&node, _)| node != me)
            .map(|(&node, &(epoch, count))| ClockEntry { node, epoch, count })
            .collect();
        let data = Data { id, deps, payload };
        self.seen.insert(id);
        self.relay(io, &data);
        if io.members().contains(&me) {
            self.accept(io, data);
        }
    }

    fn on_message(&mut self, io: &mut dyn GroupIo, _from: NodeId, bytes: &[u8]) {
        let Some(data) = decode_msg::<Data>(bytes) else {
            return;
        };
        if !self.seen.insert(data.id) {
            io.metric("causal.duplicates", 1);
            return;
        }
        self.learn(&data);
        self.relay(io, &data);
        self.accept(io, data);
    }

    fn on_start(&mut self, io: &mut dyn GroupIo) {
        self.epoch = io.now().as_millis();
    }

    fn on_recover(&mut self, io: &mut dyn GroupIo) {
        self.epoch = io.now().as_millis();
    }

    fn capture(&mut self, _io: &mut dyn GroupIo) -> psc_snapshot::ProtoCapture {
        let mut cap = psc_snapshot::ProtoCapture::new(self.proto_name());
        cap.epoch = self.epoch;
        cap.next_seq = self.next_seq;
        cap.watermarks = self
            .delivered
            .iter()
            .map(|(&node, &(epoch, count))| (node.0, epoch, count))
            .collect();
        cap.pending = self.pending_len() as u64;
        cap.extra.push(("seen".to_string(), self.seen.len() as u64));
        cap.extra
            .push(("seen_gced".to_string(), self.gc_reclaimed));
        cap.normalize();
        cap
    }

    fn proto_name(&self) -> &'static str {
        "causal"
    }

    fn queue_depths(&self) -> Vec<(&'static str, u64)> {
        vec![
            ("causal.pending", self.pending_len() as u64),
            ("causal.seen", self.seen_len() as u64),
        ]
    }

    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }
}
