//! Causally ordered broadcast: the paper's *Causally ordered* semantics.
//!
//! "This type of obvents are delivered in the order they are published, as
//! determined by the happens-before relationship [Lam78]" (§3.1.2). The
//! classic vector-clock construction: each broadcast carries the origin's
//! vector clock; a receiver holds a message from origin `j` back until it
//! has delivered (a) `j`'s previous broadcast and (b) every broadcast that
//! happened-before it at other processes. Transport is the eager reliable
//! relay, since causal order subsumes reliability in the paper's lattice
//! (`CausalOrder extends FIFOOrder extends Reliable`).

use std::collections::HashSet;

use serde::{Deserialize, Serialize};

use psc_simnet::NodeId;

use crate::io::{decode_msg, encode_msg, GroupIo, Multicast};
use crate::reliable::MsgId;
use crate::vclock::VectorClock;

#[derive(Debug, Serialize, Deserialize)]
struct Data {
    id: MsgId,
    clock: VectorClock,
    payload: Vec<u8>,
}

/// Vector-clock causal broadcast over eager reliable relay.
#[derive(Debug, Default)]
pub struct Causal {
    next_seq: u64,
    seen: HashSet<MsgId>,
    /// Clock of broadcasts *delivered* locally (per-origin counters).
    delivered: VectorClock,
    /// Messages awaiting their causal predecessors.
    pending: Vec<Data>,
}

impl Causal {
    /// Creates a causal-broadcast instance.
    pub fn new() -> Self {
        Causal::default()
    }

    /// Number of messages currently held back (diagnostics).
    pub fn pending_len(&self) -> usize {
        self.pending.len()
    }

    /// The local delivered-clock (diagnostics / assertions).
    pub fn delivered_clock(&self) -> &VectorClock {
        &self.delivered
    }

    fn relay(&self, io: &mut dyn GroupIo, data: &Data) {
        let me = io.self_id();
        let bytes = encode_msg(data);
        for member in io.members().to_vec() {
            if member != me {
                io.send(member, bytes.clone());
            }
        }
    }

    /// True when `data` is deliverable given the local delivered-clock.
    fn deliverable(&self, data: &Data) -> bool {
        let origin = data.id.origin;
        if data.clock.get(origin) != self.delivered.get(origin) + 1 {
            return false;
        }
        data.clock
            .iter()
            .all(|(node, counter)| node == origin || counter <= self.delivered.get(node))
    }

    fn accept(&mut self, io: &mut dyn GroupIo, data: Data) {
        self.pending.push(data);
        // Drain everything that became deliverable, to fixpoint.
        loop {
            let Some(pos) = self.pending.iter().position(|d| self.deliverable(d)) else {
                break;
            };
            let data = self.pending.swap_remove(pos);
            self.delivered.set(data.id.origin, data.clock.get(data.id.origin));
            io.deliver(data.id.origin, data.payload);
        }
    }
}

impl Multicast for Causal {
    fn broadcast(&mut self, io: &mut dyn GroupIo, payload: Vec<u8>) {
        let me = io.self_id();
        self.next_seq += 1;
        let id = MsgId {
            origin: me,
            seq: self.next_seq,
        };
        // The broadcast's clock: everything delivered here, plus this event.
        let mut clock = self.delivered.clone();
        clock.set(me, self.next_seq);
        let data = Data {
            id,
            clock,
            payload,
        };
        self.seen.insert(id);
        self.relay(io, &data);
        if io.members().contains(&me) {
            self.accept(io, data);
        }
    }

    fn on_message(&mut self, io: &mut dyn GroupIo, _from: NodeId, bytes: &[u8]) {
        let Some(data) = decode_msg::<Data>(bytes) else {
            return;
        };
        if !self.seen.insert(data.id) {
            return;
        }
        self.relay(io, &data);
        self.accept(io, data);
    }

    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }
}
