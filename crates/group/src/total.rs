//! Totally ordered broadcast: the paper's *Totally ordered* semantics.
//!
//! "Two notifiables n1 and n2 which deliver two obvents o1 and o2 both
//! deliver o1 and o2 in the same order (subscriber-side order)" (§3.1.2).
//! Implemented with a **fixed sequencer**: the lowest-id member orders all
//! broadcasts with a global sequence number; receivers deliver strictly in
//! sequence. Loss is repaired at three points:
//!
//! - *lost submissions*: publishers retransmit un-sequenced submissions
//!   until they see their own message come back ordered (the sequencer
//!   deduplicates by `(origin, origin_epoch, local_seq)`);
//! - *interior gaps*: a receiver holding back out-of-order messages NACKs
//!   the missing range after a timeout;
//! - *trailing gaps*: the sequencer heartbeats its highest sequence number,
//!   so a receiver that lost the last message discovers the gap.
//!
//! Because one process orders everything and submissions are retried in
//! order, total order here also preserves per-publisher FIFO submission
//! order.
//!
//! State is volatile, so crash–recovery is handled with *incarnation
//! epochs* (see [`MsgId`](crate::reliable)):
//!
//! - every `Ordered` message carries the sequencer incarnation's
//!   `seq_epoch`; a receiver follows one sequencer stream at a time and
//!   switches (clearing its hold-back) when a strictly newer stream
//!   appears — a restarted sequencer renumbers from `gseq = 1`;
//! - a **recovered receiver adopts the stream horizon** instead of
//!   NACK-replaying history it already consumed in its previous life: the
//!   first `Ordered` or `Heartbeat` it sees fixes where delivery resumes;
//! - submissions carry the publisher's `origin_epoch`, so a restarted
//!   publisher's `local_seq = 1` cannot be deduplicated against its
//!   pre-crash submissions.
//!
//! A fresh instance (first `on_start`, e.g. a DACE channel created late)
//! does *not* adopt the horizon: it NACKs from the beginning of the stream
//! and catches up on the full history, which is the loss-repair path the
//! engine relies on for channels instantiated after traffic began.

use std::collections::{BTreeMap, HashSet};

use serde::{Deserialize, Serialize};

use psc_codec::WireBytes;
use psc_simnet::{Duration, NodeId};

use crate::io::{decode_msg, encode_msg, GroupIo, Multicast, TimerToken};

const GAP_CHECK: TimerToken = TimerToken(1);
const SUBMIT_RETRY: TimerToken = TimerToken(4);
const HEARTBEAT: TimerToken = TimerToken(5);

const GAP_TIMEOUT: Duration = Duration::from_millis(20);
const SUBMIT_TIMEOUT: Duration = Duration::from_millis(30);
const HEARTBEAT_PERIOD: Duration = Duration::from_millis(50);
/// Idle heartbeats sent after the last sequenced message before the beat
/// pauses (each repairs trailing loss; see `on_timer`).
const IDLE_HEARTBEAT_LIMIT: u32 = 5;

#[derive(Debug, Serialize, Deserialize)]
enum Msg {
    /// Publisher → sequencer: please order this payload.
    Submit {
        origin: NodeId,
        origin_epoch: u64,
        local_seq: u64,
        payload: WireBytes,
    },
    /// Sequencer → everyone: globally ordered message.
    Ordered {
        seq_epoch: u64,
        gseq: u64,
        origin: NodeId,
        origin_epoch: u64,
        local_seq: u64,
        payload: WireBytes,
    },
    /// Receiver → sequencer: retransmit `[from, to]` (inclusive) of stream
    /// `seq_epoch`.
    Nack { seq_epoch: u64, from: u64, to: u64 },
    /// Sequencer → everyone: highest assigned sequence number.
    Heartbeat { seq_epoch: u64, max_gseq: u64 },
}

/// Fixed-sequencer total-order broadcast with NACK-based gap repair.
#[derive(Debug, Default)]
pub struct Total {
    /// This incarnation's epoch; stamps submissions (as `origin_epoch`) and,
    /// when acting as sequencer, the `Ordered` stream (as `seq_epoch`).
    epoch: u64,
    /// True between `on_recover` and the first stream message seen: the
    /// receiver adopts the horizon instead of NACKing history.
    rejoining: bool,
    // -- publisher state --
    next_local: u64,
    /// Submitted but not yet seen ordered: local_seq → payload.
    pending_submits: BTreeMap<u64, WireBytes>,
    submit_timer_armed: bool,
    // -- sequencer state --
    next_gseq: u64,
    history: BTreeMap<u64, (NodeId, u64, u64, WireBytes)>,
    sequenced: HashSet<(NodeId, u64, u64)>,
    heartbeat_armed: bool,
    /// Consecutive heartbeats without new sequencing activity; the beat
    /// stops after [`IDLE_HEARTBEAT_LIMIT`] so an idle group quiesces, and
    /// re-arms on the next sequenced message.
    idle_heartbeats: u32,
    last_heartbeat_gseq: u64,
    // -- receiver state --
    /// Sequencer incarnation whose stream is currently followed.
    seq_epoch: u64,
    next_deliver: u64,
    holdback: BTreeMap<u64, (NodeId, u64, u64, WireBytes)>,
    /// Submissions already delivered, keyed by (origin, origin_epoch,
    /// local_seq) — suppresses re-delivery when a restarted sequencer
    /// re-orders submissions that were already ordered in its previous
    /// stream.
    delivered_keys: HashSet<(NodeId, u64, u64)>,
    gap_timer_armed: bool,
}

impl Total {
    /// Creates a total-order instance.
    pub fn new() -> Self {
        Total {
            next_gseq: 1,
            next_deliver: 1,
            next_local: 1,
            ..Total::default()
        }
    }

    /// The current sequencer: the lowest member id.
    pub fn sequencer(io: &dyn GroupIo) -> Option<NodeId> {
        io.members().iter().min().copied()
    }

    /// Number of messages currently held back (diagnostics).
    pub fn holdback_len(&self) -> usize {
        self.holdback.len()
    }

    /// Number of submissions awaiting sequencing (diagnostics).
    pub fn pending_submits(&self) -> usize {
        self.pending_submits.len()
    }

    fn sequence(
        &mut self,
        io: &mut dyn GroupIo,
        origin: NodeId,
        origin_epoch: u64,
        local_seq: u64,
        payload: WireBytes,
    ) {
        if !self.sequenced.insert((origin, origin_epoch, local_seq)) {
            io.metric("total.duplicate_submits", 1);
            return; // retried submission already ordered
        }
        io.metric("total.sequenced", 1);
        let gseq = self.next_gseq;
        self.next_gseq += 1;
        self.history
            .insert(gseq, (origin, origin_epoch, local_seq, payload.clone()));
        let me = io.self_id();
        let bytes = encode_msg(&Msg::Ordered {
            seq_epoch: self.epoch,
            gseq,
            origin,
            origin_epoch,
            local_seq,
            payload: payload.clone(),
        });
        for member in io.members().to_vec() {
            if member != me {
                io.send(member, bytes.clone());
            }
        }
        if !self.heartbeat_armed {
            self.heartbeat_armed = true;
            self.idle_heartbeats = 0;
            io.set_timer(HEARTBEAT_PERIOD, HEARTBEAT);
        }
        // The sequencer is typically a member too.
        if io.members().contains(&me) {
            self.accept(io, self.epoch, gseq, origin, origin_epoch, local_seq, payload);
        }
    }

    /// Re-synchronizes the receiver with stream `seq_epoch` before ordinary
    /// in-sequence processing; returns `false` when the message belongs to
    /// a stream older than the one being followed.
    fn sync_stream(&mut self, seq_epoch: u64, resume_at: u64) -> bool {
        if self.rejoining {
            // Horizon adoption: whatever this incarnation already consumed
            // died with it — resume at the first point the new life
            // observes instead of replaying the stream from its start.
            self.rejoining = false;
            self.seq_epoch = seq_epoch;
            self.next_deliver = resume_at;
            self.holdback.clear();
            return true;
        }
        if seq_epoch < self.seq_epoch {
            return false; // dead sequencer incarnation
        }
        if seq_epoch > self.seq_epoch {
            // The sequencer restarted and renumbered from 1: follow the new
            // stream; `delivered_keys` keeps re-ordered submissions from
            // being delivered twice.
            self.seq_epoch = seq_epoch;
            self.next_deliver = 1;
            self.holdback.clear();
        }
        true
    }

    #[allow(clippy::too_many_arguments)]
    fn accept(
        &mut self,
        io: &mut dyn GroupIo,
        seq_epoch: u64,
        gseq: u64,
        origin: NodeId,
        origin_epoch: u64,
        local_seq: u64,
        payload: WireBytes,
    ) {
        if origin == io.self_id() && origin_epoch == self.epoch {
            self.pending_submits.remove(&local_seq);
        }
        if !self.sync_stream(seq_epoch, gseq) {
            return;
        }
        if gseq < self.next_deliver {
            return; // duplicate / already delivered
        }
        self.holdback
            .insert(gseq, (origin, origin_epoch, local_seq, payload));
        while let Some((origin, origin_epoch, local_seq, payload)) =
            self.holdback.remove(&self.next_deliver)
        {
            self.next_deliver += 1;
            if self.delivered_keys.insert((origin, origin_epoch, local_seq)) {
                io.deliver(origin, payload);
            }
        }
        // A hole ahead of us: arm the gap check.
        if !self.holdback.is_empty() && !self.gap_timer_armed {
            self.gap_timer_armed = true;
            io.set_timer(GAP_TIMEOUT, GAP_CHECK);
        }
    }

    fn submit(&mut self, io: &mut dyn GroupIo, local_seq: u64, payload: WireBytes) {
        let me = io.self_id();
        match Total::sequencer(io) {
            Some(seq_node) if seq_node == me => {
                self.sequence(io, me, self.epoch, local_seq, payload)
            }
            Some(seq_node) => {
                io.send(
                    seq_node,
                    encode_msg(&Msg::Submit {
                        origin: me,
                        origin_epoch: self.epoch,
                        local_seq,
                        payload,
                    }),
                );
            }
            None => { /* no members: nothing to do */ }
        }
    }

    /// The submission identity inside `bytes`, if it is a payload-carrying
    /// frame (snapshot in-flight recording). Both the submit leg and the
    /// ordered leg carry the same `(origin, origin_epoch, local_seq)`
    /// identity; NACKs and heartbeats are control traffic.
    pub(crate) fn peek_id(bytes: &[u8]) -> Option<crate::reliable::MsgId> {
        match decode_msg::<Msg>(bytes)? {
            Msg::Submit {
                origin,
                origin_epoch,
                local_seq,
                ..
            }
            | Msg::Ordered {
                origin,
                origin_epoch,
                local_seq,
                ..
            } => Some(crate::reliable::MsgId {
                origin,
                epoch: origin_epoch,
                seq: local_seq,
            }),
            Msg::Nack { .. } | Msg::Heartbeat { .. } => None,
        }
    }

    fn nack(&self, io: &mut dyn GroupIo, from: u64, to: u64) {
        if let Some(seq_node) = Total::sequencer(io) {
            if seq_node != io.self_id() {
                io.metric("total.nacks", 1);
                io.send(
                    seq_node,
                    encode_msg(&Msg::Nack {
                        seq_epoch: self.seq_epoch,
                        from,
                        to,
                    }),
                );
            }
        }
    }
}

impl Multicast for Total {
    fn broadcast(&mut self, io: &mut dyn GroupIo, payload: WireBytes) {
        io.metric("total.broadcasts", 1);
        let local_seq = self.next_local;
        self.next_local += 1;
        let me = io.self_id();
        if Total::sequencer(io) != Some(me) {
            self.pending_submits.insert(local_seq, payload.clone());
            if !self.submit_timer_armed {
                self.submit_timer_armed = true;
                io.set_timer(SUBMIT_TIMEOUT, SUBMIT_RETRY);
            }
        }
        self.submit(io, local_seq, payload);
    }

    fn on_message(&mut self, io: &mut dyn GroupIo, from: NodeId, bytes: &[u8]) {
        let Some(msg) = decode_msg::<Msg>(bytes) else {
            return;
        };
        match msg {
            Msg::Submit {
                origin,
                origin_epoch,
                local_seq,
                payload,
            } => {
                let me = io.self_id();
                if Total::sequencer(io) == Some(me) {
                    self.sequence(io, origin, origin_epoch, local_seq, payload);
                } else if let Some(seq_node) = Total::sequencer(io) {
                    // Not the sequencer (e.g. after a membership change):
                    // forward.
                    io.send(
                        seq_node,
                        encode_msg(&Msg::Submit {
                            origin,
                            origin_epoch,
                            local_seq,
                            payload,
                        }),
                    );
                }
            }
            Msg::Ordered {
                seq_epoch,
                gseq,
                origin,
                origin_epoch,
                local_seq,
                payload,
            } => self.accept(io, seq_epoch, gseq, origin, origin_epoch, local_seq, payload),
            Msg::Nack {
                seq_epoch,
                from: lo,
                to: hi,
            } => {
                if seq_epoch != self.epoch {
                    return; // NACK for a stream this incarnation did not order
                }
                io.metric("total.nack_repairs", 1);
                for gseq in lo..=hi {
                    if let Some((origin, origin_epoch, local_seq, payload)) =
                        self.history.get(&gseq)
                    {
                        let bytes = encode_msg(&Msg::Ordered {
                            seq_epoch: self.epoch,
                            gseq,
                            origin: *origin,
                            origin_epoch: *origin_epoch,
                            local_seq: *local_seq,
                            payload: payload.clone(),
                        });
                        io.send(from, bytes);
                    }
                }
            }
            Msg::Heartbeat { seq_epoch, max_gseq } => {
                if !self.sync_stream(seq_epoch, max_gseq + 1) {
                    return;
                }
                // Trailing gap: we have not even seen max_gseq yet.
                if max_gseq >= self.next_deliver && !self.holdback.contains_key(&max_gseq) {
                    self.nack(io, self.next_deliver, max_gseq);
                }
            }
        }
    }

    fn on_timer(&mut self, io: &mut dyn GroupIo, token: TimerToken) {
        match token {
            GAP_CHECK => {
                self.gap_timer_armed = false;
                if self.holdback.is_empty() {
                    return;
                }
                let highest_held = *self.holdback.keys().next_back().expect("non-empty");
                self.nack(io, self.next_deliver, highest_held);
                self.gap_timer_armed = true;
                io.set_timer(GAP_TIMEOUT, GAP_CHECK);
            }
            SUBMIT_RETRY => {
                self.submit_timer_armed = false;
                if self.pending_submits.is_empty() {
                    return;
                }
                for (local_seq, payload) in self.pending_submits.clone() {
                    self.submit(io, local_seq, payload);
                }
                self.submit_timer_armed = true;
                io.set_timer(SUBMIT_TIMEOUT, SUBMIT_RETRY);
            }
            HEARTBEAT => {
                self.heartbeat_armed = false;
                if self.next_gseq <= 1 {
                    return;
                }
                let me = io.self_id();
                if Total::sequencer(io) != Some(me) {
                    return; // lost sequencer role
                }
                let max_gseq = self.next_gseq - 1;
                if max_gseq == self.last_heartbeat_gseq {
                    self.idle_heartbeats += 1;
                } else {
                    self.idle_heartbeats = 0;
                    self.last_heartbeat_gseq = max_gseq;
                }
                io.metric("total.heartbeats", 1);
                let bytes = encode_msg(&Msg::Heartbeat {
                    seq_epoch: self.epoch,
                    max_gseq,
                });
                for member in io.members().to_vec() {
                    if member != me {
                        io.send(member, bytes.clone());
                    }
                }
                // A few idle beats flush trailing gaps; then go quiet until
                // the next sequenced message (liveness for quiescence).
                if self.idle_heartbeats < IDLE_HEARTBEAT_LIMIT {
                    self.heartbeat_armed = true;
                    io.set_timer(HEARTBEAT_PERIOD, HEARTBEAT);
                }
            }
            _ => {}
        }
    }

    fn on_start(&mut self, io: &mut dyn GroupIo) {
        self.epoch = io.now().as_millis();
    }

    fn on_recover(&mut self, io: &mut dyn GroupIo) {
        self.epoch = io.now().as_millis();
        self.rejoining = true;
    }

    fn capture(&mut self, _io: &mut dyn GroupIo) -> psc_snapshot::ProtoCapture {
        let mut cap = psc_snapshot::ProtoCapture::new(self.proto_name());
        cap.epoch = self.epoch;
        cap.next_seq = self.next_local.saturating_sub(1);
        cap.pending = (self.holdback_len() + self.pending_submits()) as u64;
        cap.extra.push(("delivered".to_string(), self.delivered_keys.len() as u64));
        cap.extra.push(("next_deliver".to_string(), self.next_deliver));
        cap.extra.push(("next_gseq".to_string(), self.next_gseq));
        cap.extra.push(("seq_epoch".to_string(), self.seq_epoch));
        cap.normalize();
        cap
    }

    fn proto_name(&self) -> &'static str {
        "total"
    }

    fn queue_depths(&self) -> Vec<(&'static str, u64)> {
        vec![
            ("total.holdback", self.holdback_len() as u64),
            ("total.pending_submits", self.pending_submits() as u64),
        ]
    }

    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }
}
