//! Totally ordered broadcast: the paper's *Totally ordered* semantics.
//!
//! "Two notifiables n1 and n2 which deliver two obvents o1 and o2 both
//! deliver o1 and o2 in the same order (subscriber-side order)" (§3.1.2).
//! Implemented with a **fixed sequencer**: the lowest-id member orders all
//! broadcasts with a global sequence number; receivers deliver strictly in
//! sequence. Loss is repaired at three points:
//!
//! - *lost submissions*: publishers retransmit un-sequenced submissions
//!   until they see their own message come back ordered (the sequencer
//!   deduplicates by `(origin, local_seq)`);
//! - *interior gaps*: a receiver holding back out-of-order messages NACKs
//!   the missing range after a timeout;
//! - *trailing gaps*: the sequencer heartbeats its highest sequence number,
//!   so a receiver that lost the last message discovers the gap.
//!
//! Because one process orders everything and submissions are retried in
//! order, total order here also preserves per-publisher FIFO submission
//! order.

use std::collections::{BTreeMap, HashSet};

use serde::{Deserialize, Serialize};

use psc_simnet::{Duration, NodeId};

use crate::io::{decode_msg, encode_msg, GroupIo, Multicast, TimerToken};

const GAP_CHECK: TimerToken = TimerToken(1);
const SUBMIT_RETRY: TimerToken = TimerToken(4);
const HEARTBEAT: TimerToken = TimerToken(5);

const GAP_TIMEOUT: Duration = Duration::from_millis(20);
const SUBMIT_TIMEOUT: Duration = Duration::from_millis(30);
const HEARTBEAT_PERIOD: Duration = Duration::from_millis(50);
/// Idle heartbeats sent after the last sequenced message before the beat
/// pauses (each repairs trailing loss; see `on_timer`).
const IDLE_HEARTBEAT_LIMIT: u32 = 5;

#[derive(Debug, Serialize, Deserialize)]
enum Msg {
    /// Publisher → sequencer: please order this payload.
    Submit {
        origin: NodeId,
        local_seq: u64,
        payload: Vec<u8>,
    },
    /// Sequencer → everyone: globally ordered message.
    Ordered {
        gseq: u64,
        origin: NodeId,
        local_seq: u64,
        payload: Vec<u8>,
    },
    /// Receiver → sequencer: retransmit `[from, to]` (inclusive).
    Nack { from: u64, to: u64 },
    /// Sequencer → everyone: highest assigned sequence number.
    Heartbeat { max_gseq: u64 },
}

/// Fixed-sequencer total-order broadcast with NACK-based gap repair.
#[derive(Debug, Default)]
pub struct Total {
    // -- publisher state --
    next_local: u64,
    /// Submitted but not yet seen ordered: local_seq → payload.
    pending_submits: BTreeMap<u64, Vec<u8>>,
    submit_timer_armed: bool,
    // -- sequencer state --
    next_gseq: u64,
    history: BTreeMap<u64, (NodeId, u64, Vec<u8>)>,
    sequenced: HashSet<(NodeId, u64)>,
    heartbeat_armed: bool,
    /// Consecutive heartbeats without new sequencing activity; the beat
    /// stops after [`IDLE_HEARTBEAT_LIMIT`] so an idle group quiesces, and
    /// re-arms on the next sequenced message.
    idle_heartbeats: u32,
    last_heartbeat_gseq: u64,
    // -- receiver state --
    next_deliver: u64,
    holdback: BTreeMap<u64, (NodeId, u64, Vec<u8>)>,
    gap_timer_armed: bool,
}

impl Total {
    /// Creates a total-order instance.
    pub fn new() -> Self {
        Total {
            next_gseq: 1,
            next_deliver: 1,
            next_local: 1,
            ..Total::default()
        }
    }

    /// The current sequencer: the lowest member id.
    pub fn sequencer(io: &dyn GroupIo) -> Option<NodeId> {
        io.members().iter().min().copied()
    }

    /// Number of messages currently held back (diagnostics).
    pub fn holdback_len(&self) -> usize {
        self.holdback.len()
    }

    /// Number of submissions awaiting sequencing (diagnostics).
    pub fn pending_submits(&self) -> usize {
        self.pending_submits.len()
    }

    fn sequence(&mut self, io: &mut dyn GroupIo, origin: NodeId, local_seq: u64, payload: Vec<u8>) {
        if !self.sequenced.insert((origin, local_seq)) {
            return; // retried submission already ordered
        }
        let gseq = self.next_gseq;
        self.next_gseq += 1;
        self.history.insert(gseq, (origin, local_seq, payload.clone()));
        let me = io.self_id();
        let bytes = encode_msg(&Msg::Ordered {
            gseq,
            origin,
            local_seq,
            payload: payload.clone(),
        });
        for member in io.members().to_vec() {
            if member != me {
                io.send(member, bytes.clone());
            }
        }
        if !self.heartbeat_armed {
            self.heartbeat_armed = true;
            self.idle_heartbeats = 0;
            io.set_timer(HEARTBEAT_PERIOD, HEARTBEAT);
        }
        // The sequencer is typically a member too.
        if io.members().contains(&me) {
            self.accept(io, gseq, origin, local_seq, payload);
        }
    }

    fn accept(
        &mut self,
        io: &mut dyn GroupIo,
        gseq: u64,
        origin: NodeId,
        local_seq: u64,
        payload: Vec<u8>,
    ) {
        if origin == io.self_id() {
            self.pending_submits.remove(&local_seq);
        }
        if gseq < self.next_deliver {
            return; // duplicate / already delivered
        }
        self.holdback.insert(gseq, (origin, local_seq, payload));
        while let Some((origin, _local, payload)) = self.holdback.remove(&self.next_deliver) {
            io.deliver(origin, payload);
            self.next_deliver += 1;
        }
        // A hole ahead of us: arm the gap check.
        if !self.holdback.is_empty() && !self.gap_timer_armed {
            self.gap_timer_armed = true;
            io.set_timer(GAP_TIMEOUT, GAP_CHECK);
        }
    }

    fn submit(&mut self, io: &mut dyn GroupIo, local_seq: u64, payload: Vec<u8>) {
        let me = io.self_id();
        match Total::sequencer(io) {
            Some(seq_node) if seq_node == me => self.sequence(io, me, local_seq, payload),
            Some(seq_node) => {
                io.send(
                    seq_node,
                    encode_msg(&Msg::Submit {
                        origin: me,
                        local_seq,
                        payload,
                    }),
                );
            }
            None => { /* no members: nothing to do */ }
        }
    }

    fn nack(&self, io: &mut dyn GroupIo, from: u64, to: u64) {
        if let Some(seq_node) = Total::sequencer(io) {
            if seq_node != io.self_id() {
                io.send(seq_node, encode_msg(&Msg::Nack { from, to }));
            }
        }
    }
}

impl Multicast for Total {
    fn broadcast(&mut self, io: &mut dyn GroupIo, payload: Vec<u8>) {
        let local_seq = self.next_local;
        self.next_local += 1;
        let me = io.self_id();
        if Total::sequencer(io) != Some(me) {
            self.pending_submits.insert(local_seq, payload.clone());
            if !self.submit_timer_armed {
                self.submit_timer_armed = true;
                io.set_timer(SUBMIT_TIMEOUT, SUBMIT_RETRY);
            }
        }
        self.submit(io, local_seq, payload);
    }

    fn on_message(&mut self, io: &mut dyn GroupIo, from: NodeId, bytes: &[u8]) {
        let Some(msg) = decode_msg::<Msg>(bytes) else {
            return;
        };
        match msg {
            Msg::Submit {
                origin,
                local_seq,
                payload,
            } => {
                let me = io.self_id();
                if Total::sequencer(io) == Some(me) {
                    self.sequence(io, origin, local_seq, payload);
                } else if let Some(seq_node) = Total::sequencer(io) {
                    // Not the sequencer (e.g. after a membership change):
                    // forward.
                    io.send(
                        seq_node,
                        encode_msg(&Msg::Submit {
                            origin,
                            local_seq,
                            payload,
                        }),
                    );
                }
            }
            Msg::Ordered {
                gseq,
                origin,
                local_seq,
                payload,
            } => self.accept(io, gseq, origin, local_seq, payload),
            Msg::Nack { from: lo, to: hi } => {
                for gseq in lo..=hi {
                    if let Some((origin, local_seq, payload)) = self.history.get(&gseq) {
                        let bytes = encode_msg(&Msg::Ordered {
                            gseq,
                            origin: *origin,
                            local_seq: *local_seq,
                            payload: payload.clone(),
                        });
                        io.send(from, bytes);
                    }
                }
            }
            Msg::Heartbeat { max_gseq } => {
                // Trailing gap: we have not even seen max_gseq yet.
                if max_gseq >= self.next_deliver && !self.holdback.contains_key(&max_gseq) {
                    self.nack(io, self.next_deliver, max_gseq);
                }
            }
        }
    }

    fn on_timer(&mut self, io: &mut dyn GroupIo, token: TimerToken) {
        match token {
            GAP_CHECK => {
                self.gap_timer_armed = false;
                if self.holdback.is_empty() {
                    return;
                }
                let highest_held = *self.holdback.keys().next_back().expect("non-empty");
                self.nack(io, self.next_deliver, highest_held);
                self.gap_timer_armed = true;
                io.set_timer(GAP_TIMEOUT, GAP_CHECK);
            }
            SUBMIT_RETRY => {
                self.submit_timer_armed = false;
                if self.pending_submits.is_empty() {
                    return;
                }
                for (local_seq, payload) in self.pending_submits.clone() {
                    self.submit(io, local_seq, payload);
                }
                self.submit_timer_armed = true;
                io.set_timer(SUBMIT_TIMEOUT, SUBMIT_RETRY);
            }
            HEARTBEAT => {
                self.heartbeat_armed = false;
                if self.next_gseq <= 1 {
                    return;
                }
                let me = io.self_id();
                if Total::sequencer(io) != Some(me) {
                    return; // lost sequencer role
                }
                let max_gseq = self.next_gseq - 1;
                if max_gseq == self.last_heartbeat_gseq {
                    self.idle_heartbeats += 1;
                } else {
                    self.idle_heartbeats = 0;
                    self.last_heartbeat_gseq = max_gseq;
                }
                let bytes = encode_msg(&Msg::Heartbeat { max_gseq });
                for member in io.members().to_vec() {
                    if member != me {
                        io.send(member, bytes.clone());
                    }
                }
                // A few idle beats flush trailing gaps; then go quiet until
                // the next sequenced message (liveness for quiescence).
                if self.idle_heartbeats < IDLE_HEARTBEAT_LIMIT {
                    self.heartbeat_armed = true;
                    io.set_timer(HEARTBEAT_PERIOD, HEARTBEAT);
                }
            }
            _ => {}
        }
    }

    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }
}
