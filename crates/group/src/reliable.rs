//! Reliable broadcast: the paper's *Reliable* semantics.
//!
//! "Once successfully published, a reliable obvent will be received by any
//! notifiable that is 'up for long enough'" (§3.1.2). Two mechanisms
//! combine:
//!
//! - **eager re-forwarding** [BJ87]: on first receipt every member relays
//!   the message to every other member, so one successful link suffices for
//!   group-wide agreement (and a crashed origin cannot strand a partially
//!   delivered message);
//! - **origin-side retransmission**: the origin keeps the message until
//!   every member acknowledged it, retransmitting periodically — this is
//!   what makes delivery deterministic under message loss even for small
//!   groups, where relay redundancy alone is a single network path.
//!
//! Unlike [`Certified`](crate::Certified), all state is volatile: a crashed
//! subscriber loses the message (reliability only covers processes that
//! stay "up for long enough").

use std::collections::{BTreeMap, HashSet};

use serde::{Deserialize, Serialize};

use psc_codec::WireBytes;
use psc_simnet::{Duration, NodeId};

use crate::io::{decode_msg, encode_msg, GroupIo, Multicast, TimerToken};

const RETRANSMIT: TimerToken = TimerToken(6);
const RETRANSMIT_INTERVAL: Duration = Duration::from_millis(40);

/// Globally unique message id: origin, incarnation epoch, and per-origin
/// sequence number.
///
/// The epoch disambiguates incarnations of the same process: volatile
/// protocols lose their sequence counters on a crash, so a recovered
/// publisher restarts at `seq = 1` — without the epoch those ids would
/// collide with its pre-crash messages and survivors' duplicate-suppression
/// sets would silently swallow the new, distinct messages. Each incarnation
/// stamps its ids with its start time (strictly later than any previous
/// incarnation's), keeping ids unique across crash–recover cycles.
/// Persistent protocols ([`Certified`](crate::Certified)) recover their
/// counters from stable storage and use a constant epoch of 0.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize, PartialOrd, Ord)]
pub(crate) struct MsgId {
    pub origin: NodeId,
    pub epoch: u64,
    pub seq: u64,
}

#[derive(Debug, Serialize, Deserialize)]
enum Msg {
    Data {
        id: MsgId,
        payload: WireBytes,
        /// True when this copy comes straight from the origin (receivers
        /// acknowledge those; relayed copies are not re-acked).
        from_origin: bool,
    },
    Ack {
        id: MsgId,
    },
}

#[derive(Debug)]
struct Outgoing {
    payload: WireBytes,
    unacked: Vec<NodeId>,
}

/// Eager-push reliable broadcast with origin retransmission; see the module
/// docs.
#[derive(Debug, Default)]
pub struct Reliable {
    /// This incarnation's epoch (see [`MsgId`]).
    epoch: u64,
    next_seq: u64,
    seen: HashSet<MsgId>,
    /// Origin state: messages not yet acknowledged by every member.
    outgoing: BTreeMap<u64, Outgoing>,
    timer_armed: bool,
}

impl Reliable {
    /// Creates a reliable-broadcast instance.
    pub fn new() -> Self {
        Reliable::default()
    }

    /// Number of distinct messages seen (diagnostics).
    pub fn seen_count(&self) -> usize {
        self.seen.len()
    }

    /// Own messages not yet fully acknowledged (diagnostics).
    pub fn unacked_len(&self) -> usize {
        self.outgoing.len()
    }

    fn relay(&self, io: &mut dyn GroupIo, id: MsgId, payload: &WireBytes) {
        io.metric("reliable.relays", 1);
        let me = io.self_id();
        let bytes = encode_msg(&Msg::Data {
            id,
            payload: payload.clone(),
            from_origin: false,
        });
        for member in io.members().to_vec() {
            if member != me && member != id.origin {
                io.send(member, bytes.clone());
            }
        }
    }

    fn send_from_origin(io: &mut dyn GroupIo, id: MsgId, payload: &WireBytes, targets: &[NodeId]) {
        let bytes = encode_msg(&Msg::Data {
            id,
            payload: payload.clone(),
            from_origin: true,
        });
        for &member in targets {
            io.send(member, bytes.clone());
        }
    }

    fn arm_timer(&mut self, io: &mut dyn GroupIo) {
        if !self.timer_armed && !self.outgoing.is_empty() {
            self.timer_armed = true;
            io.set_timer(RETRANSMIT_INTERVAL, RETRANSMIT);
        }
    }

    /// The data-message identity inside `bytes`, if it is a `Data` frame
    /// (snapshot in-flight recording).
    pub(crate) fn peek_id(bytes: &[u8]) -> Option<MsgId> {
        match decode_msg::<Msg>(bytes)? {
            Msg::Data { id, .. } => Some(id),
            Msg::Ack { .. } => None,
        }
    }
}

impl Multicast for Reliable {
    fn broadcast(&mut self, io: &mut dyn GroupIo, payload: WireBytes) {
        io.metric("reliable.broadcasts", 1);
        let me = io.self_id();
        self.next_seq += 1;
        let id = MsgId {
            origin: me,
            epoch: self.epoch,
            seq: self.next_seq,
        };
        self.seen.insert(id);
        let targets: Vec<NodeId> = io.members().iter().copied().filter(|&m| m != me).collect();
        Reliable::send_from_origin(io, id, &payload, &targets);
        if !targets.is_empty() {
            self.outgoing.insert(
                id.seq,
                Outgoing {
                    payload: payload.clone(),
                    unacked: targets,
                },
            );
            self.arm_timer(io);
        }
        if io.members().contains(&me) {
            io.deliver(me, payload);
        }
    }

    fn on_message(&mut self, io: &mut dyn GroupIo, from: NodeId, bytes: &[u8]) {
        let Some(msg) = decode_msg::<Msg>(bytes) else {
            return;
        };
        match msg {
            Msg::Data {
                id,
                payload,
                from_origin,
            } => {
                // Acknowledge every copy arriving straight from the origin
                // (covers lost acks via the origin's retransmissions).
                if from_origin {
                    io.metric("reliable.acks_sent", 1);
                    io.send(from, encode_msg(&Msg::Ack { id }));
                }
                if !self.seen.insert(id) {
                    io.metric("reliable.duplicates", 1);
                    return; // duplicate
                }
                // Re-forward before delivering: the agreement step.
                self.relay(io, id, &payload);
                io.deliver(id.origin, payload);
            }
            Msg::Ack { id } => {
                if id.origin != io.self_id() || id.epoch != self.epoch {
                    return;
                }
                if let Some(outgoing) = self.outgoing.get_mut(&id.seq) {
                    outgoing.unacked.retain(|&m| m != from);
                    if outgoing.unacked.is_empty() {
                        self.outgoing.remove(&id.seq);
                    }
                }
            }
        }
    }

    fn on_timer(&mut self, io: &mut dyn GroupIo, token: TimerToken) {
        if token != RETRANSMIT {
            return;
        }
        self.timer_armed = false;
        io.metric("reliable.retransmits", self.outgoing.len() as u64);
        let me = io.self_id();
        for (&seq, outgoing) in &self.outgoing {
            let id = MsgId {
                origin: me,
                epoch: self.epoch,
                seq,
            };
            Reliable::send_from_origin(io, id, &outgoing.payload, &outgoing.unacked);
        }
        self.arm_timer(io);
    }

    fn on_start(&mut self, io: &mut dyn GroupIo) {
        self.epoch = io.now().as_millis();
    }

    fn on_recover(&mut self, io: &mut dyn GroupIo) {
        self.epoch = io.now().as_millis();
    }

    fn capture(&mut self, io: &mut dyn GroupIo) -> psc_snapshot::ProtoCapture {
        let me = io.self_id();
        let mut cap = psc_snapshot::ProtoCapture::new(self.proto_name());
        cap.epoch = self.epoch;
        cap.next_seq = self.next_seq;
        cap.retransmit = self
            .outgoing
            .iter()
            .map(|(&seq, outgoing)| psc_snapshot::RetransmitEntry {
                id: psc_snapshot::MsgRef::new(me.0, self.epoch, seq),
                targets: outgoing.unacked.iter().map(|n| n.0).collect(),
                acked: Vec::new(),
            })
            .collect();
        cap.extra.push(("seen".to_string(), self.seen.len() as u64));
        cap.normalize();
        cap
    }

    fn proto_name(&self) -> &'static str {
        "reliable"
    }

    fn queue_depths(&self) -> Vec<(&'static str, u64)> {
        vec![("reliable.unacked", self.unacked_len() as u64)]
    }

    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }
}
