//! Vector clocks for causal ordering [Lam78].

use std::collections::BTreeMap;
use std::fmt;

use serde::{Deserialize, Serialize};

use psc_simnet::NodeId;

/// A vector clock: one logical-event counter per process.
///
/// Missing entries count as zero, so clocks over different member sets
/// compare sensibly.
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct VectorClock {
    entries: BTreeMap<NodeId, u64>,
}

/// Result of comparing two vector clocks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Causality {
    /// Identical clocks.
    Equal,
    /// `self` happens-before `other`.
    Before,
    /// `other` happens-before `self`.
    After,
    /// Neither precedes the other.
    Concurrent,
}

impl VectorClock {
    /// Creates an all-zero clock.
    pub fn new() -> Self {
        VectorClock::default()
    }

    /// The counter for `node` (zero when absent).
    pub fn get(&self, node: NodeId) -> u64 {
        self.entries.get(&node).copied().unwrap_or(0)
    }

    /// Sets the counter for `node`.
    pub fn set(&mut self, node: NodeId, value: u64) {
        if value == 0 {
            self.entries.remove(&node);
        } else {
            self.entries.insert(node, value);
        }
    }

    /// Increments `node`'s counter, returning the new value.
    pub fn increment(&mut self, node: NodeId) -> u64 {
        let counter = self.entries.entry(node).or_insert(0);
        *counter += 1;
        *counter
    }

    /// Pointwise maximum with `other` (the merge on message receipt).
    pub fn merge(&mut self, other: &VectorClock) {
        for (&node, &value) in &other.entries {
            let mine = self.entries.entry(node).or_insert(0);
            if value > *mine {
                *mine = value;
            }
        }
    }

    /// Compares two clocks under the happens-before partial order.
    pub fn causality(&self, other: &VectorClock) -> Causality {
        let mut less = false;
        let mut greater = false;
        let keys: std::collections::BTreeSet<NodeId> = self
            .entries
            .keys()
            .chain(other.entries.keys())
            .copied()
            .collect();
        for node in keys {
            let a = self.get(node);
            let b = other.get(node);
            if a < b {
                less = true;
            }
            if a > b {
                greater = true;
            }
        }
        match (less, greater) {
            (false, false) => Causality::Equal,
            (true, false) => Causality::Before,
            (false, true) => Causality::After,
            (true, true) => Causality::Concurrent,
        }
    }

    /// True when `self` ≤ `other` pointwise.
    pub fn le(&self, other: &VectorClock) -> bool {
        matches!(self.causality(other), Causality::Before | Causality::Equal)
    }

    /// Number of non-zero entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when all counters are zero.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterates `(node, counter)` pairs in node order.
    pub fn iter(&self) -> impl Iterator<Item = (NodeId, u64)> + '_ {
        self.entries.iter().map(|(&n, &c)| (n, c))
    }
}

impl fmt::Display for VectorClock {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[")?;
        for (i, (node, counter)) in self.iter().enumerate() {
            if i > 0 {
                write!(f, " ")?;
            }
            write!(f, "{node}:{counter}")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn n(i: u64) -> NodeId {
        NodeId(i)
    }

    #[test]
    fn increment_and_get() {
        let mut vc = VectorClock::new();
        assert_eq!(vc.get(n(0)), 0);
        assert_eq!(vc.increment(n(0)), 1);
        assert_eq!(vc.increment(n(0)), 2);
        assert_eq!(vc.get(n(0)), 2);
        assert!(!vc.is_empty());
    }

    #[test]
    fn set_zero_removes_entry() {
        let mut vc = VectorClock::new();
        vc.set(n(1), 5);
        vc.set(n(1), 0);
        assert!(vc.is_empty());
        assert_eq!(vc.len(), 0);
    }

    #[test]
    fn merge_takes_pointwise_max() {
        let mut a = VectorClock::new();
        a.set(n(0), 3);
        a.set(n(1), 1);
        let mut b = VectorClock::new();
        b.set(n(1), 4);
        b.set(n(2), 2);
        a.merge(&b);
        assert_eq!(a.get(n(0)), 3);
        assert_eq!(a.get(n(1)), 4);
        assert_eq!(a.get(n(2)), 2);
    }

    #[test]
    fn causality_classification() {
        let mut a = VectorClock::new();
        a.set(n(0), 1);
        let mut b = a.clone();
        assert_eq!(a.causality(&b), Causality::Equal);
        b.increment(n(0));
        assert_eq!(a.causality(&b), Causality::Before);
        assert_eq!(b.causality(&a), Causality::After);
        let mut c = VectorClock::new();
        c.set(n(1), 1);
        assert_eq!(a.causality(&c), Causality::Concurrent);
    }

    #[test]
    fn missing_entries_compare_as_zero() {
        let empty = VectorClock::new();
        let mut one = VectorClock::new();
        one.set(n(7), 1);
        assert_eq!(empty.causality(&one), Causality::Before);
        assert!(empty.le(&one));
        assert!(!one.le(&empty));
    }

    #[test]
    fn display_is_compact() {
        let mut vc = VectorClock::new();
        vc.set(n(1), 2);
        vc.set(n(3), 1);
        assert_eq!(vc.to_string(), "[n1:2 n3:1]");
    }

    fn arb_clock() -> impl Strategy<Value = VectorClock> {
        proptest::collection::btree_map(0u64..5, 0u64..6, 0..5).prop_map(|m| {
            let mut vc = VectorClock::new();
            for (k, v) in m {
                vc.set(NodeId(k), v);
            }
            vc
        })
    }

    proptest! {
        /// merge is the least upper bound: both inputs ≤ merged.
        #[test]
        fn prop_merge_is_upper_bound(a in arb_clock(), b in arb_clock()) {
            let mut merged = a.clone();
            merged.merge(&b);
            prop_assert!(a.le(&merged));
            prop_assert!(b.le(&merged));
        }

        /// merge is commutative and idempotent.
        #[test]
        fn prop_merge_laws(a in arb_clock(), b in arb_clock()) {
            let mut ab = a.clone();
            ab.merge(&b);
            let mut ba = b.clone();
            ba.merge(&a);
            prop_assert_eq!(&ab, &ba);
            let mut aa = a.clone();
            aa.merge(&a);
            prop_assert_eq!(&aa, &a);
        }

        /// causality is antisymmetric: Before in one direction is After in
        /// the other, Concurrent is symmetric.
        #[test]
        fn prop_causality_antisymmetric(a in arb_clock(), b in arb_clock()) {
            let fwd = a.causality(&b);
            let bwd = b.causality(&a);
            let expected = match fwd {
                Causality::Equal => Causality::Equal,
                Causality::Before => Causality::After,
                Causality::After => Causality::Before,
                Causality::Concurrent => Causality::Concurrent,
            };
            prop_assert_eq!(bwd, expected);
        }

        /// serde roundtrip through the codec.
        #[test]
        fn prop_codec_roundtrip(a in arb_clock()) {
            let bytes = psc_codec::to_bytes(&a).unwrap();
            let back: VectorClock = psc_codec::from_bytes(&bytes).unwrap();
            prop_assert_eq!(back, a);
        }
    }
}
