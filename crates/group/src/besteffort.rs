//! Best-effort multicast: the paper's default *Unreliable* semantics.

use serde::{Deserialize, Serialize};

use psc_codec::WireBytes;
use psc_simnet::NodeId;

use crate::io::{decode_msg, encode_msg, GroupIo, Multicast};

#[derive(Debug, Serialize, Deserialize)]
struct Data {
    origin: NodeId,
    payload: WireBytes,
}

/// One send per member, no retransmission, no ordering: "there is only a
/// best-effort attempt to deliver it" (§3.1.2).
#[derive(Debug, Default)]
pub struct BestEffort {
    delivered_count: u64,
}

impl BestEffort {
    /// Creates a best-effort instance.
    pub fn new() -> Self {
        BestEffort::default()
    }

    /// Number of payloads delivered so far (diagnostics).
    pub fn delivered_count(&self) -> u64 {
        self.delivered_count
    }
}

impl Multicast for BestEffort {
    fn broadcast(&mut self, io: &mut dyn GroupIo, payload: WireBytes) {
        io.metric("besteffort.broadcasts", 1);
        let me = io.self_id();
        let msg = encode_msg(&Data {
            origin: me,
            payload: payload.clone(),
        });
        for &member in io.members().to_vec().iter() {
            if member == me {
                continue;
            }
            io.send(member, msg.clone());
        }
        // A broadcaster that is itself a member delivers locally.
        if io.members().contains(&me) {
            self.delivered_count += 1;
            io.deliver(me, payload);
        }
    }

    fn on_message(&mut self, io: &mut dyn GroupIo, _from: NodeId, bytes: &[u8]) {
        let Some(Data { origin, payload }) = decode_msg(bytes) else {
            return;
        };
        self.delivered_count += 1;
        io.deliver(origin, payload);
    }

    fn proto_name(&self) -> &'static str {
        "besteffort"
    }

    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }
}
