//! FIFO-ordered broadcast: the paper's *FIFO ordered* semantics.
//!
//! "Two obvents o1 and o2 that are published through the same object are
//! delivered … in the same order they were published (publisher-side
//! order)" (§3.1.2). Built on the eager reliable layer's message ids: a
//! hold-back queue per origin releases messages strictly by per-origin
//! sequence number.

use std::collections::{BTreeMap, HashMap, HashSet};

use serde::{Deserialize, Serialize};

use psc_codec::WireBytes;
use psc_simnet::NodeId;

use crate::io::{decode_msg, encode_msg, GroupIo, Multicast};
use crate::reliable::MsgId;

#[derive(Debug, Serialize, Deserialize)]
struct Data {
    id: MsgId,
    payload: WireBytes,
}

/// Reliable broadcast with per-publisher FIFO delivery.
///
/// Sequencing is per publisher *incarnation* (see [`MsgId`]): when a
/// publisher crashes its counters are lost, so a receiver that spots a
/// higher epoch from an origin abandons that origin's old hold-back queue
/// and restarts the expected counter at 1. FIFO order is guaranteed within
/// an incarnation; messages of a dead incarnation still in flight are
/// dropped rather than delivered out of a now-meaningless order.
#[derive(Debug, Default)]
pub struct Fifo {
    /// This incarnation's epoch (see [`MsgId`]).
    epoch: u64,
    next_seq: u64,
    seen: HashSet<MsgId>,
    /// Per origin: the incarnation epoch being tracked and the next
    /// expected sequence number within it.
    expected: HashMap<NodeId, (u64, u64)>,
    /// Held-back out-of-order messages per origin (current epoch only).
    holdback: HashMap<NodeId, BTreeMap<u64, WireBytes>>,
}

impl Fifo {
    /// Creates a FIFO-broadcast instance.
    pub fn new() -> Self {
        Fifo::default()
    }

    /// Number of messages currently held back (diagnostics).
    pub fn holdback_len(&self) -> usize {
        self.holdback.values().map(BTreeMap::len).sum()
    }

    fn relay(&self, io: &mut dyn GroupIo, data: &Data) {
        let me = io.self_id();
        let bytes = encode_msg(data);
        for member in io.members().to_vec() {
            if member != me {
                io.send(member, bytes.clone());
            }
        }
    }

    /// The data-message identity inside `bytes` (snapshot in-flight
    /// recording; every FIFO frame is a data frame).
    pub(crate) fn peek_id(bytes: &[u8]) -> Option<MsgId> {
        decode_msg::<Data>(bytes).map(|data| data.id)
    }

    fn accept(&mut self, io: &mut dyn GroupIo, id: MsgId, payload: WireBytes) {
        let (epoch, expected) = self.expected.entry(id.origin).or_insert((id.epoch, 1));
        if id.epoch < *epoch {
            return; // straggler from a dead incarnation
        }
        if id.epoch > *epoch {
            // The origin restarted: its old counters are gone for good.
            *epoch = id.epoch;
            *expected = 1;
            self.holdback.remove(&id.origin);
        }
        if id.seq < self.expected[&id.origin].1 {
            return; // stale duplicate
        }
        if id.seq > self.expected[&id.origin].1 {
            io.metric("fifo.out_of_order", 1);
        }
        self.holdback
            .entry(id.origin)
            .or_default()
            .insert(id.seq, payload);
        // Release the contiguous prefix.
        let queue = self.holdback.get_mut(&id.origin).expect("just inserted");
        let (_, expected) = self.expected.get_mut(&id.origin).expect("just inserted");
        while let Some(payload) = queue.remove(expected) {
            io.deliver(id.origin, payload);
            *expected += 1;
        }
    }
}

impl Multicast for Fifo {
    fn broadcast(&mut self, io: &mut dyn GroupIo, payload: WireBytes) {
        io.metric("fifo.broadcasts", 1);
        let me = io.self_id();
        self.next_seq += 1;
        let id = MsgId {
            origin: me,
            epoch: self.epoch,
            seq: self.next_seq,
        };
        let data = Data {
            id,
            payload: payload.clone(),
        };
        self.seen.insert(id);
        self.relay(io, &data);
        if io.members().contains(&me) {
            self.accept(io, id, payload);
        }
    }

    fn on_message(&mut self, io: &mut dyn GroupIo, _from: NodeId, bytes: &[u8]) {
        let Some(data) = decode_msg::<Data>(bytes) else {
            return;
        };
        if !self.seen.insert(data.id) {
            io.metric("fifo.duplicates", 1);
            return;
        }
        self.relay(io, &data);
        self.accept(io, data.id, data.payload);
    }

    fn on_start(&mut self, io: &mut dyn GroupIo) {
        self.epoch = io.now().as_millis();
    }

    fn on_recover(&mut self, io: &mut dyn GroupIo) {
        self.epoch = io.now().as_millis();
    }

    fn capture(&mut self, _io: &mut dyn GroupIo) -> psc_snapshot::ProtoCapture {
        let mut cap = psc_snapshot::ProtoCapture::new(self.proto_name());
        cap.epoch = self.epoch;
        cap.next_seq = self.next_seq;
        cap.watermarks = self
            .expected
            .iter()
            .map(|(&node, &(epoch, expected))| (node.0, epoch, expected - 1))
            .collect();
        cap.pending = self.holdback_len() as u64;
        cap.extra.push(("seen".to_string(), self.seen.len() as u64));
        cap.normalize();
        cap
    }

    fn proto_name(&self) -> &'static str {
        "fifo"
    }

    fn queue_depths(&self) -> Vec<(&'static str, u64)> {
        vec![("fifo.holdback", self.holdback_len() as u64)]
    }

    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }
}
