//! FIFO-ordered broadcast: the paper's *FIFO ordered* semantics.
//!
//! "Two obvents o1 and o2 that are published through the same object are
//! delivered … in the same order they were published (publisher-side
//! order)" (§3.1.2). Built on the eager reliable layer's message ids: a
//! hold-back queue per origin releases messages strictly by per-origin
//! sequence number.

use std::collections::{BTreeMap, HashMap, HashSet};

use serde::{Deserialize, Serialize};

use psc_simnet::NodeId;

use crate::io::{decode_msg, encode_msg, GroupIo, Multicast};
use crate::reliable::MsgId;

#[derive(Debug, Serialize, Deserialize)]
struct Data {
    id: MsgId,
    payload: Vec<u8>,
}

/// Reliable broadcast with per-publisher FIFO delivery.
#[derive(Debug, Default)]
pub struct Fifo {
    next_seq: u64,
    seen: HashSet<MsgId>,
    /// Next expected sequence number per origin.
    expected: HashMap<NodeId, u64>,
    /// Held-back out-of-order messages per origin.
    holdback: HashMap<NodeId, BTreeMap<u64, Vec<u8>>>,
}

impl Fifo {
    /// Creates a FIFO-broadcast instance.
    pub fn new() -> Self {
        Fifo::default()
    }

    /// Number of messages currently held back (diagnostics).
    pub fn holdback_len(&self) -> usize {
        self.holdback.values().map(BTreeMap::len).sum()
    }

    fn relay(&self, io: &mut dyn GroupIo, data: &Data) {
        let me = io.self_id();
        let bytes = encode_msg(data);
        for member in io.members().to_vec() {
            if member != me {
                io.send(member, bytes.clone());
            }
        }
    }

    fn accept(&mut self, io: &mut dyn GroupIo, id: MsgId, payload: Vec<u8>) {
        let expected = self.expected.entry(id.origin).or_insert(1);
        if id.seq < *expected {
            return; // stale duplicate
        }
        self.holdback
            .entry(id.origin)
            .or_default()
            .insert(id.seq, payload);
        // Release the contiguous prefix.
        let queue = self.holdback.get_mut(&id.origin).expect("just inserted");
        let expected = self.expected.get_mut(&id.origin).expect("just inserted");
        while let Some(payload) = queue.remove(expected) {
            io.deliver(id.origin, payload);
            *expected += 1;
        }
    }
}

impl Multicast for Fifo {
    fn broadcast(&mut self, io: &mut dyn GroupIo, payload: Vec<u8>) {
        let me = io.self_id();
        self.next_seq += 1;
        let id = MsgId {
            origin: me,
            seq: self.next_seq,
        };
        let data = Data {
            id,
            payload: payload.clone(),
        };
        self.seen.insert(id);
        self.relay(io, &data);
        if io.members().contains(&me) {
            self.accept(io, id, payload);
        }
    }

    fn on_message(&mut self, io: &mut dyn GroupIo, _from: NodeId, bytes: &[u8]) {
        let Some(data) = decode_msg::<Data>(bytes) else {
            return;
        };
        if !self.seen.insert(data.id) {
            return;
        }
        self.relay(io, &data);
        self.accept(io, data.id, data.payload);
    }

    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }
}
